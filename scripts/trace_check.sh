#!/usr/bin/env bash
# Validate a Chrome trace_event JSON file emitted by dsv3serve
# -trace-out or the serve-trace study: parses the document, checks the
# Perfetto process metadata, and requires at least one event for every
# name passed after the path.
#
#   scripts/trace_check.sh trace.json prefill decode-step reload retry crash
set -euo pipefail
cd "$(dirname "$0")/.."
go run ./scripts/tracecheck "$@"
