// Command tracecheck validates a Chrome trace_event JSON file emitted
// by the serving simulator's trace recorder: the document must parse,
// carry a non-empty traceEvents array with the process-name metadata,
// and contain at least one event for every name given on the command
// line. CI uses it (via scripts/trace_check.sh) to smoke-test
// dsv3serve -trace-out output without golden-pinning a multi-megabyte
// trace.
//
// Usage:
//
//	tracecheck trace.json [required-event-name ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [required-event-name ...]")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("%s: not valid trace JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		fail("%s: no trace events", path)
	}
	seen := make(map[string]int, len(doc.TraceEvents))
	meta := 0
	for _, ev := range doc.TraceEvents {
		seen[ev.Name]++
		if ev.Name == "process_name" && ev.Ph == "M" {
			meta++
		}
		if ev.Ts < 0 {
			fail("%s: event %q at negative timestamp %g", path, ev.Name, ev.Ts)
		}
	}
	if meta == 0 {
		fail("%s: missing process_name metadata (Perfetto would show bare pids)", path)
	}
	status := 0
	for _, name := range os.Args[2:] {
		if seen[name] == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: no %q events\n", path, name)
			status = 1
		}
	}
	if status != 0 {
		os.Exit(status)
	}
	fmt.Printf("tracecheck: %s ok (%d events, %d processes)\n", path, len(doc.TraceEvents), meta)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
