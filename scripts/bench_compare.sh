#!/usr/bin/env bash
# Compare two BENCH_*.json snapshots (current vs baseline) produced by
# scripts/bench.sh. Prints a per-benchmark ratio table and the suite
# wall-time ratio, and exits non-zero when the current snapshot
# regresses beyond the thresholds:
#
#   BENCH_MAX_SUITE_RATIO  suite wall time ratio gate   (default 2.0)
#   BENCH_MAX_NSOP_RATIO   per-benchmark ns/op gate     (default 3.0)
#   BENCH_MIN_GATE_NS      baseline ns/op below which a benchmark is
#                          reported but not gated      (default 100000)
#
# Thresholds are deliberately loose: CI runners are noisy and shared;
# the gate exists to catch order-of-magnitude regressions, while the
# printed table tracks the finer trajectory across snapshots.
# Microsecond-scale benchmarks are never gated — at that scale the
# ratio measures scheduler noise, not the code.
#
# Usage: scripts/bench_compare.sh CURRENT.json BASELINE.json
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 CURRENT.json BASELINE.json" >&2
  exit 2
fi
current="$1"
baseline="$2"
max_suite="${BENCH_MAX_SUITE_RATIO:-2.0}"
max_nsop="${BENCH_MAX_NSOP_RATIO:-3.0}"
min_gate_ns="${BENCH_MIN_GATE_NS:-100000}"

# Extract "suite_wall_seconds_parallel": <v> from the flat snapshot JSON.
wall() {
  awk -F': ' '/"suite_wall_seconds_parallel"/ { gsub(/[,"]/, "", $2); print $2 }' "$1"
}

# Emit "name ns_per_op" pairs from the benchmarks array.
nsops() {
  awk '
    /"name":/ {
      line=$0
      name=line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      ns=line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
      print name, ns
    }' "$1"
}

cur_wall="$(wall "$current")"
base_wall="$(wall "$baseline")"

status=0

echo "suite wall time (parallel): current=${cur_wall}s baseline=${base_wall}s"
if ! awk -v c="$cur_wall" -v b="$base_wall" -v m="$max_suite" \
    'BEGIN { exit !(b > 0 && c / b <= m) }'; then
  echo "FAIL: suite wall time regressed beyond ${max_suite}x baseline" >&2
  status=1
fi

# Join the two benchmark lists by name and gate only on the
# intersection. Benchmarks present in just one snapshot are listed
# explicitly as added/removed — never silently skipped, never gated —
# so a growing suite cannot break the nightly gate and a vanished
# benchmark cannot hide a regression unnoticed.
cur_names="$(nsops "$current" | awk '{print $1}')"
base_names="$(nsops "$baseline" | awk '{print $1}')"

added="$(comm -23 <(sort <<<"$cur_names") <(sort <<<"$base_names"))"
removed="$(comm -13 <(sort <<<"$cur_names") <(sort <<<"$base_names"))"
if [ -n "$added" ]; then
  echo
  echo "benchmarks added since baseline (reported, not gated):"
  sed 's/^/  + /' <<<"$added"
fi
if [ -n "$removed" ]; then
  echo
  echo "benchmarks removed since baseline (reported, not gated):"
  sed 's/^/  - /' <<<"$removed"
fi

echo
printf '%-40s %14s %14s %8s\n' benchmark current_ns baseline_ns ratio
while read -r name cur_ns; do
  base_ns="$(nsops "$baseline" | awk -v n="$name" '$1 == n { print $2; exit }')"
  if [ -z "$base_ns" ]; then
    printf '%-40s %14s %14s %8s\n' "$name" "$cur_ns" "-" "new"
    continue
  fi
  ratio="$(awk -v c="$cur_ns" -v b="$base_ns" 'BEGIN { if (b > 0) printf "%.2f", c / b; else print "inf" }')"
  printf '%-40s %14s %14s %8s\n' "$name" "$cur_ns" "$base_ns" "$ratio"
  if ! awk -v r="$ratio" -v m="$max_nsop" -v b="$base_ns" -v f="$min_gate_ns" \
      'BEGIN { exit !(b < f || r <= m) }'; then
    echo "FAIL: $name regressed ${ratio}x beyond ${max_nsop}x baseline" >&2
    status=1
  fi
done < <(nsops "$current")

exit "$status"
