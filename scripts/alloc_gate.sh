#!/usr/bin/env bash
# Allocation-regression smoke: run the allocation-sensitive benchmarks
# once (-benchtime=1x -benchmem) and fail if any reports more
# allocs/op than its pinned budget. ns/op at 1x is meaningless noise —
# only the allocation counts are checked, and those are deterministic,
# so this gate is cheap enough for every CI run.
#
# Budgets (see DESIGN.md "Performance engineering"):
#   BenchmarkGateRoute     0  — MoE routing hot path, fully scratch-backed
#   BenchmarkE4M3Quantize  0  — FP8 quantization kernel, in-place
#   BenchmarkServeEngine   6  — one serving run on a warm engine:
#                               the Report + its Timeline copy + the
#                               workload RNG/stepper closures
#   BenchmarkServeEngineTiered 10 — the same run with KV tiers, sessions
#                               and the prefix cache live; the extra
#                               allocs are the multi-turn generator's
#                               stable sort, not the tier machinery
#   BenchmarkServeEngineTraced 20 — the tiered+faulted run with the trace
#                               recorder and metrics registry attached;
#                               a warm recorder appends into reused
#                               buffers, so the overhead is O(1) per run
#                               (the per-tier metric-name strings), not
#                               per event
#   BenchmarkServeEngineHazard 8 — the run with the cross-layer hazard
#                               stack live (plane derate, SDC +
#                               Freivalds verify, EWMA gray-failure
#                               detection, p95-tracked hedging,
#                               retries); hazard state is engine-owned
#                               and recycled, so the overhead over the
#                               clean engine is the hazard plan's
#                               per-run RNG plus the hedge tracker
#   BenchmarkServeFleet    48 — the 1000-instance sharded run on a warm
#                               engine; the extra allocs over the serial
#                               engine are the per-run shard group (its
#                               goroutines and channels) plus per-shard
#                               calendar re-bucketing
#   BenchmarkEventQueue/*  0  — a steady-state hold op (pop + push) on
#                               either scheduler touches only retained
#                               buckets/heap storage
set -euo pipefail
cd "$(dirname "$0")/.."

budgets="
BenchmarkGateRoute 0
BenchmarkE4M3Quantize 0
BenchmarkServeEngine 6
BenchmarkServeEngineTiered 10
BenchmarkServeEngineTraced 20
BenchmarkServeEngineHazard 8
BenchmarkServeFleet 48
BenchmarkEventQueue/heap/n=100000 0
BenchmarkEventQueue/heap/n=1000000 0
BenchmarkEventQueue/calendar/n=100000 0
BenchmarkEventQueue/calendar/n=1000000 0
"

pattern="$(awk 'NF && $1 !~ /\// { printf "%s%s", sep, $1; sep = "|" }' <<<"$budgets")"
out="$(go test -run=NONE -bench="^(${pattern})\$" -benchmem -benchtime=1x .
       go test -run=NONE -bench='^BenchmarkEventQueue$' -benchmem -benchtime=1x ./internal/servesim)"
echo "$out"

status=0
while read -r name budget; do
  [ -z "$name" ] && continue
  allocs="$(awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" {
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
  }' <<<"$out")"
  if [ -z "$allocs" ]; then
    echo "FAIL: $name did not run (pattern or -benchmem problem)" >&2
    status=1
    continue
  fi
  if [ "$allocs" -gt "$budget" ]; then
    echo "FAIL: $name reports $allocs allocs/op, budget is $budget" >&2
    status=1
  else
    echo "OK: $name $allocs allocs/op (budget $budget)"
  fi
done <<<"$budgets"

exit "$status"
