#!/usr/bin/env bash
# Golden-corpus management. The corpus under testdata/golden pins the
# deterministic quick-mode output of every experiment in all three
# emitter formats (json, csv, text); CI and the root-package golden
# test diff freshly generated output against it, so any change to the
# numbers or the emitters must be accompanied by a regeneration.
#
# Usage:
#   scripts/golden.sh           # regenerate testdata/golden in place
#   scripts/golden.sh -check    # regenerate into a temp dir and diff;
#                               # non-zero exit + per-experiment diff on drift
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"
golden=testdata/golden

generate() {
  local dir="$1"
  local bin
  bin="$(mktemp -d)/dsv3bench"
  go build -o "$bin" ./cmd/dsv3bench
  for fmt in json csv text; do
    "$bin" -quick -deterministic -format "$fmt" -out "$dir" 2>/dev/null
  done
}

case "$mode" in
  "")
    rm -rf "$golden"
    generate "$golden"
    echo "regenerated $golden ($(ls "$golden" | wc -l) files)" >&2
    ;;
  -check)
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    generate "$tmp"
    status=0
    # Per-experiment readable diff: report every drifted, missing, or
    # untracked file rather than stopping at the first.
    for f in "$golden"/*; do
      b="$(basename "$f")"
      if [ ! -f "$tmp/$b" ]; then
        echo "golden: $b missing from regenerated output" >&2
        status=1
      elif ! diff -u "$f" "$tmp/$b" >&2; then
        echo "golden: $b drifted (regenerate with scripts/golden.sh)" >&2
        status=1
      fi
    done
    for f in "$tmp"/*; do
      b="$(basename "$f")"
      if [ ! -f "$golden/$b" ]; then
        echo "golden: $b generated but not checked in (run scripts/golden.sh)" >&2
        status=1
      fi
    done
    if [ "$status" -eq 0 ]; then
      echo "golden corpus clean ($(ls "$golden" | wc -l) files)" >&2
    fi
    exit "$status"
    ;;
  *)
    echo "usage: $0 [-check]" >&2
    exit 2
    ;;
esac
