#!/usr/bin/env bash
# Profile snapshot: captures CPU and allocation profiles for the
# fleet-scale serving benchmark (BenchmarkServeFleet — the 1000-instance
# sharded run), the hot path the sharded coordinator and calendar queue
# were built for, and prints the top entries of each.
#
# Usage:
#   scripts/profile.sh                       # profile BenchmarkServeFleet
#   scripts/profile.sh -bench BenchmarkServeEngine
#   scripts/profile.sh -dir /tmp/prof        # keep profiles somewhere else
#   COUNT=5 scripts/profile.sh               # more iterations, steadier profile
#
# The profiles land in <dir>/{cpu,mem}.pprof next to the test binary
# (<dir>/bench.test), ready for interactive drill-down:
#   go tool pprof <dir>/bench.test <dir>/cpu.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

bench="BenchmarkServeFleet"
dir="profiles"
while [ $# -gt 0 ]; do
  case "$1" in
    -bench) bench="$2"; shift 2 ;;
    -dir) dir="$2"; shift 2 ;;
    *) echo "usage: $0 [-bench name] [-dir path]" >&2; exit 1 ;;
  esac
done
count="${COUNT:-3}"
mkdir -p "$dir"

echo "profiling ${bench} (${count} iterations)..." >&2
go test -run=NONE -bench="^${bench}\$" -benchtime="${count}x" \
  -cpuprofile "$dir/cpu.pprof" -memprofile "$dir/mem.pprof" \
  -o "$dir/bench.test" .

echo
echo "=== CPU (top 15) ==="
go tool pprof -top -nodecount=15 "$dir/bench.test" "$dir/cpu.pprof" | tail -n +8
echo
echo "=== Allocations (top 10, alloc_space) ==="
go tool pprof -top -nodecount=10 -sample_index=alloc_space "$dir/bench.test" "$dir/mem.pprof" | tail -n +8
echo
echo "profiles written to $dir/{cpu,mem}.pprof (binary: $dir/bench.test)" >&2
