#!/usr/bin/env bash
# Benchmark snapshot: runs the microbenchmark suite (-benchmem) and the
# end-to-end dsv3bench wall clock, and emits BENCH_<date>[_label].json
# so the performance trajectory is trackable across PRs.
#
# Usage:
#   scripts/bench.sh                  # BENCH_<date>.json
#   scripts/bench.sh -label before    # BENCH_<date>_before.json
#   BENCHTIME=1s scripts/bench.sh     # heavier, steadier numbers
set -euo pipefail
cd "$(dirname "$0")/.."

label=""
while [ $# -gt 0 ]; do
  case "$1" in
    -label) label="$2"; shift 2 ;;
    *) echo "usage: $0 [-label name]" >&2; exit 1 ;;
  esac
done

benchtime="${BENCHTIME:-5x}"
date_tag="$(date +%Y-%m-%d)"
out="BENCH_${date_tag}${label:+_$label}.json"

echo "running microbenchmarks (benchtime=$benchtime)..." >&2
bench_raw="$(go test -run=NONE -bench=. -benchmem -benchtime="$benchtime" . ./internal/servesim)"

echo "timing dsv3bench suite..." >&2
go build -o /tmp/dsv3bench-snapshot ./cmd/dsv3bench
t0="$(date +%s.%N)"
/tmp/dsv3bench-snapshot >/dev/null 2>&1
t1="$(date +%s.%N)"
suite_parallel="$(echo "$t1 $t0" | awk '{printf "%.3f", $1-$2}')"
t0="$(date +%s.%N)"
/tmp/dsv3bench-snapshot -parallel=false >/dev/null 2>&1
t1="$(date +%s.%N)"
suite_serial="$(echo "$t1 $t0" | awk '{printf "%.3f", $1-$2}')"

{
  printf '{\n'
  printf '  "label": "%s",\n' "${label:-snapshot}"
  printf '  "date": "%s",\n' "$date_tag"
  printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
  printf '  "cpus": %s,\n' "$(nproc)"
  printf '  "suite_wall_seconds_parallel": %s,\n' "$suite_parallel"
  printf '  "suite_wall_seconds_serial": %s,\n' "$suite_serial"
  printf '  "benchmarks": [\n'
  echo "$bench_raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($i == "ns/op") ns=$(i-1)
        if ($i == "B/op") bytes=$(i-1)
        if ($i == "allocs/op") allocs=$(i-1)
      }
      if (ns == "") next
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bytes==""?"null":bytes), (allocs==""?"null":allocs)
    }
    END { printf "\n" }'
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out" >&2
