// topology_planner: reproduce Table 3 and then use the cost model the
// way an infrastructure team would — sweeping plane counts and switch
// radices to find the cheapest fabric that reaches a target GPU count.
package main

import (
	"fmt"

	"dsv3"
)

func main() {
	out, err := dsv3.RenderTable3()
	if err != nil {
		panic(err)
	}
	fmt.Println(out)

	m := dsv3.DefaultCostModel()
	const target = 10000 // endpoints needed

	fmt.Printf("Cheapest fabric reaching %d endpoints:\n", target)
	best := ""
	bestCost := 0.0
	consider := func(name string, c dsv3.TopologyCounts) {
		if c.Endpoints < target {
			return
		}
		cost := m.Cost(c)
		fmt.Printf("  %-22s %6d endpoints  %7.1f M$  %5.2f k$/EP\n",
			name, c.Endpoints, cost/1e6, m.CostPerEndpoint(c)/1e3)
		if best == "" || cost < bestCost {
			best, bestCost = name, cost
		}
	}
	for _, planes := range []int{2, 4, 8} {
		consider(fmt.Sprintf("MPFT radix64 x%d", planes), dsv3.MPFTCounts(64, planes))
	}
	consider("FT3 radix64", dsv3.FT3Counts(64))
	if sf, err := dsv3.SlimFlyCounts(28); err == nil {
		consider("SlimFly q=28", sf)
	}
	fmt.Printf("-> %s wins at %.1f M$\n", best, bestCost/1e6)
}
