// trace: observing the serving simulator from the inside. Aggregate
// percentiles say *that* TTFT degraded; a lifecycle trace says *why* —
// which phase (queue, prefill, KV-transfer, reload, decode, retry
// backoff) ate the time, on which instance, and around which incident.
// This walkthrough attaches the trace recorder and the metrics
// registry to an engine, replays a tiered+faulted run, prints the
// per-request phase breakdown and the event census, and writes the
// Chrome trace_event JSON (open it at https://ui.perfetto.dev) plus
// the sampled time-series CSV.
//
// Observability is strictly additive: the engine drives nil-checked
// hooks, so a run with a recorder attached produces byte-identical
// reports — and identical trace bytes for any worker count.
package main

import (
	"fmt"
	"log"
	"os"

	"dsv3"
)

func main() {
	// A deliberately stressed configuration: HBM small enough to force
	// KV offload to a DRAM spill tier, multi-turn sessions re-hitting
	// their cached prefixes, and a decode crash at t=6s with retries —
	// every phase and incident kind shows up in one trace.
	cfg := dsv3.V3ServeConfig()
	cfg.Seed = 7
	cfg.KV.HBM.CapacityBytes = 0.08e9
	cfg.KV.Tiers = []dsv3.ServeKVTierConfig{
		{Name: "dram", CapacityBytes: 8e9, ReadBW: 24e9, WriteBW: 16e9, ChunkLatency: 0.0001},
	}
	cfg.KV.PrefixCache = true
	cfg.Resilience.Faults = &dsv3.ServeFaultPlan{
		Events: []dsv3.ServeFaultEvent{
			{At: 6, Kind: dsv3.FaultCrash, Instance: 1},
			{At: 14, Kind: dsv3.FaultRecover, Instance: 1},
		},
	}
	cfg.Resilience.Retry = dsv3.DefaultServeRetryPolicy()
	// Narrow uniform lengths keep the worst-case session close to the
	// mean, so the deliberately tight HBM pool admits requests but
	// stays under KV pressure — the regime the spill tier exists for.
	workload := dsv3.ServeWorkload{
		Arrival:    dsv3.ArrivalPoisson,
		RatePerSec: 4,
		Requests:   150,
		Prompt:     dsv3.ServeLengthDist{Kind: dsv3.DistUniform, Mean: 256, Min: 192, Max: 320},
		Output:     dsv3.ServeLengthDist{Kind: dsv3.DistUniform, Mean: 256, Min: 192, Max: 320},
		Turns:      3,
		ThinkTime:  2,
	}

	// Attach observers before Run. The recorder captures every
	// lifecycle transition; the registry samples engine gauges and
	// counters every half simulated second.
	eng := dsv3.NewServeEngine()
	rec := dsv3.NewServeTraceRecorder()
	reg := dsv3.NewServeMetricsRegistry(0.5)
	eng.AttachTracer(rec)
	eng.AttachMetrics(reg)
	rep, err := eng.Run(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %d completed, %d failed, %d retried, %d KV offloads, %d reloads\n\n",
		rep.Completed, rep.Failed, rep.Retried, rep.KVOffloads, rep.KVReloads)

	// The event census: one line per distinct trace event. Spans are
	// phase occupations, marks are lifecycle instants, computes are
	// prefill/decode-step kernel slices, incidents are fault
	// transitions.
	fmt.Println("event census:")
	for _, c := range rec.EventCounts() {
		fmt.Printf("  %-9s %-12s %5d\n", c.Kind, c.Name, c.N)
	}

	// Per-request phase breakdowns. The phases tile [arrival, done]
	// exactly: queue + prefill + transfer + reload + decode + backoff
	// sums to E2E for every resolved request — no unattributed time.
	bds := rec.Breakdowns()
	fmt.Println("\nslowest requests by end-to-end latency:")
	slowest := append([]dsv3.ServeReqBreakdown(nil), bds...)
	for i := 0; i < 5 && i < len(slowest); i++ {
		max := i
		for j := i + 1; j < len(slowest); j++ {
			if slowest[j].E2E() > slowest[max].E2E() {
				max = j
			}
		}
		slowest[i], slowest[max] = slowest[max], slowest[i]
		b := slowest[i]
		fmt.Printf("  req %3d: e2e %6.2fs  queue %5.2f  prefill %5.2f  reload %5.2f  decode %5.2f  backoff %5.2f  (%s, %d retries)\n",
			b.ID, b.E2E(), b.Phases[dsv3.ServePhaseQueue], b.Phases[dsv3.ServePhasePrefill],
			b.Phases[dsv3.ServePhaseReload], b.Phases[dsv3.ServePhaseDecode],
			b.Phases[dsv3.ServePhaseBackoff], b.Outcome, b.Retries)
	}

	// Export: the trace as Chrome trace_event JSON — drag into
	// https://ui.perfetto.dev to see requests as async spans over the
	// instance timelines — and the metrics as a time,metric,... CSV.
	trace, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteJSON(trace); err != nil {
		log.Fatal(err)
	}
	if err := trace.Close(); err != nil {
		log.Fatal(err)
	}
	metrics, err := os.Create("metrics.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.WriteCSV(metrics); err != nil {
		log.Fatal(err)
	}
	if err := metrics.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote trace.json (%d samples of %d metrics in metrics.csv)\n",
		reg.Samples(), reg.Metrics())
	fmt.Println("the same run is available as: dsv3bench -run serve-trace")
}
