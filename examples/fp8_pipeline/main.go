// fp8_pipeline: the low-precision story of §3 — quantized GEMM error
// under the DeepSeek-V3 recipe, the accumulation ablation, LogFMT
// compression accuracy, and the toy training-run validation.
package main

import (
	"fmt"

	"dsv3"
	"dsv3/internal/stats"
)

func main() {
	// GEMM error of the production recipe vs a float64 reference.
	rng := dsv3.NewSeededRand(5)
	a := dsv3.NewMatrix(16, 1024)
	b := dsv3.NewMatrix(1024, 16)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	ref := dsv3.RefGEMM(a, b)
	fp8 := dsv3.FP8GEMM(a, b, dsv3.DeepSeekV3Recipe())
	bf16 := dsv3.BF16GEMM(a, b)
	relFP8, _ := stats.RMSRelativeError(fp8.Data, ref.Data)
	relBF16, _ := stats.RMSRelativeError(bf16.Data, ref.Data)
	fmt.Printf("GEMM (16x1024x16) RMS relative error: FP8 recipe %.2e, BF16 %.2e\n\n", relFP8, relBF16)

	if out, err := dsv3.RenderAccumulation(13); err == nil {
		fmt.Println(out)
	}
	if out, err := dsv3.RenderLogFMT(17); err == nil {
		fmt.Println(out)
	}
	if out, err := dsv3.RenderFP8Accuracy(); err == nil {
		fmt.Println(out)
	}
}
