// inference_limits: the §2.3.2 analysis end to end — the EP decode
// ceiling on the H800's IB scale-out vs a GB200 NVL72 scale-up fabric,
// a bandwidth sweep in between, and the MTP multiplier (§2.3.3) on top.
package main

import (
	"fmt"

	"dsv3"
)

func main() {
	out, err := dsv3.RenderInferenceLimits()
	if err != nil {
		panic(err)
	}
	fmt.Println(out)

	// Sweep interconnect bandwidth between the two systems.
	cfg := dsv3.V3EPInference()
	fmt.Println("Interconnect bandwidth sweep (dual-micro-batch overlap, compute-free bound):")
	for _, gbps := range []float64{40, 50, 100, 200, 400, 900} {
		a, err := cfg.Analyze(gbps * 1e9)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %4.0f GB/s -> TPOT %7.3f ms, %7.0f TPS\n", gbps, a.TPOT*1e3, a.TPS)
	}
	fmt.Println()

	// MTP stacks on top of whatever the network allows (§2.3.3).
	mtpCfg := dsv3.MTPV3()
	sim, err := dsv3.SimulateMTP(mtpCfg, 100000, dsv3.NewSeededRand(1))
	if err != nil {
		panic(err)
	}
	base, _ := cfg.Analyze(50e9)
	fmt.Printf("MTP at %.0f%% acceptance: %.2fx -> IB ceiling becomes %.0f TPS\n",
		mtpCfg.Acceptance*100, sim.Speedup, base.TPS*sim.Speedup)
}
