// kvcache: the memory-efficiency analysis of §2.1 — Table 1 plus the
// serving consequences: how many concurrent long-context requests fit
// in one GPU's HBM under each attention design, and why decode is
// memory-bound for conventional attention (the GEMV problem).
package main

import (
	"fmt"

	"dsv3"
)

func main() {
	fmt.Println(dsv3.RenderTable1())

	// How many 32k-context conversations fit in 64 GiB of KV budget?
	const ctx = 32768
	const budget = 64 << 30
	fmt.Println("Concurrent 32k-token contexts in a 64 GiB KV budget:")
	for _, cfg := range []*dsv3.ModelConfig{dsv3.DeepSeekV3(), dsv3.Qwen72B(), dsv3.LLaMA405B()} {
		perReq := cfg.KVCacheBytesPerToken(2) * ctx
		fmt.Printf("  %-28s %6.1f GiB/request -> %3.0f requests\n",
			cfg.Name, perReq/(1<<30), budget/perReq)
	}
	fmt.Println()

	// The §2.1.2 roofline story: arithmetic intensity of decode
	// attention vs the H800 ridge point.
	acc := dsv3.H800Accelerator()
	fmt.Printf("H800 ridge intensity: %.0f FLOP/byte\n", acc.PeakFLOPS/acc.MemBandwidth)
	for _, cfg := range []*dsv3.ModelConfig{dsv3.DeepSeekV3(), dsv3.Qwen72B(), dsv3.LLaMA405B()} {
		dc := dsv3.AttentionDecodeCost(cfg, 4096, 2)
		fmt.Printf("  %-28s intensity %6.1f FLOP/byte (memory-bound: %v)\n",
			cfg.Name, dc.Intensity, dc.Intensity < acc.PeakFLOPS/acc.MemBandwidth)
	}
}
