// capacity: sizing a serving fleet against an SLO. The serving
// simulator answers "what does this deployment do at rate X"; the
// capacity planner inverts the question into the one production
// actually asks — how much traffic can a given fleet shape sustain
// within SLO. This walkthrough finds the goodput knee of the reference
// deployment, compares routing policies under KV pressure, and shows
// what bursty (on/off) traffic does to the knee at the same mean rate.
package main

import (
	"fmt"
	"log"

	"dsv3"
)

func main() {
	// A KV-constrained reference fleet: 2 prefill + 4 decode instances
	// with 0.4 GB of KV per decode instance, so placement matters.
	cfg := dsv3.V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	workload := dsv3.ServeWorkload{
		Arrival:  dsv3.ArrivalPoisson,
		Requests: 250,
		Prompt:   dsv3.LogNormalLength(1024, 0.5),
		Output:   dsv3.LogNormalLength(512, 0.5),
	}

	// The knee: bisect for the highest Poisson rate whose SLO
	// attainment still meets the 90% target. Every probe is a full
	// deterministic simulation, so rerunning reproduces the search.
	planner := dsv3.DefaultServeCapacityPlanner()
	res, err := planner.Find(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2P+4D knee: %.2f req/s at %.1f%% SLO attainment (%d probes)\n",
		res.MaxRate, res.Attainment*100, len(res.Probes))
	for _, p := range res.Probes {
		verdict := "break"
		if p.Sustainable {
			verdict = "ok"
		}
		fmt.Printf("  probe %6.2f req/s  ->  %5.1f%%  %s\n", p.RatePerSec, p.Attainment*100, verdict)
	}
	fmt.Println()

	// Routing policy moves the knee when KV binds: least-KV balances
	// cache pressure across decode instances, round-robin ignores it.
	for _, policy := range dsv3.ServeRouterPolicies() {
		c := cfg
		c.Fleet.Router = policy
		r, err := planner.Find(c, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("router %-14s  knee %.2f req/s  (SLO %.1f%%, %d preemptions at knee)\n",
			policy, r.MaxRate, r.Attainment*100, r.Report.Preemptions)
	}
	fmt.Println()

	// Burstiness costs capacity: an on/off arrival process with the
	// same mean rate concentrates traffic into ON dwells, so the knee
	// sits below the smooth-Poisson knee — provisioning to the mean
	// underestimates the fleet a bursty workload needs.
	bursty := workload
	bursty.Arrival = dsv3.ArrivalBursty
	bursty.BurstOnMean, bursty.BurstOffMean = 2, 6
	rb, err := planner.Find(cfg, bursty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smooth Poisson knee:   %.2f req/s\n", res.MaxRate)
	fmt.Printf("bursty (2s on, 6s off) knee: %.2f req/s at the same mean rate\n", rb.MaxRate)
}
