// serving: the request-level view of the paper's inference analyses.
// Where examples/inference_limits derives the steady-state §2.3.2
// decode ceiling, this walkthrough puts the same models under Poisson
// traffic with the discrete-event serving simulator: continuous
// batching, a paged MLA-sized KV cache, disaggregated prefill/decode,
// and MTP speculation — and reads off TTFT/TPOT percentiles, goodput
// and KV occupancy.
package main

import (
	"fmt"
	"log"

	"dsv3"
)

func main() {
	// A small reference deployment: 2 prefill + 4 decode instances of
	// the DeepSeek-V3 latency model (H800 roofline, 400G IB EP traffic).
	cfg := dsv3.V3ServeConfig()
	workload := dsv3.ServeWorkload{
		Arrival:  dsv3.ArrivalPoisson,
		Requests: 300,
		Prompt:   dsv3.LogNormalLength(1024, 0.5),
		Output:   dsv3.LogNormalLength(512, 0.5),
	}

	// Sweep the arrival rate toward saturation. The sweep fans out over
	// the deterministic worker pool; rerunning this program reproduces
	// every number exactly.
	rates := []float64{2, 4, 6, 8}
	pts, err := dsv3.ServeRateSweep(cfg, workload, rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Poisson load sweep (2 prefill + 4 decode instances):")
	for _, p := range pts {
		r := p.Report
		fmt.Printf("  %4.0f req/s  TTFT p99 %6.0fms  TPOT p99 %5.2fms  goodput %5.2f req/s  SLO %5.1f%%\n",
			p.RatePerSec, r.TTFT.P99*1e3, r.TPOT.P99*1e3, r.GoodputRPS, r.SLOAttainment*100)
	}
	fmt.Println()

	// Why the paper deploys prefill and decode disaggregated: colocated
	// continuous batching must either stall decodes on every prefill
	// (TPOT interference) or defer prefills (TTFT starvation).
	colocated := cfg
	colocated.Fleet.Colocated = true
	colocated.Fleet.PrefillInstances, colocated.Fleet.DecodeInstances = 2, 4
	workload.RatePerSec = 8
	col, err := dsv3.RunServe(colocated, workload)
	if err != nil {
		log.Fatal(err)
	}
	dis, err := dsv3.RunServe(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("At 8 req/s, colocated 6x:    TTFT p99 %6.0fms  TPOT p99 %5.2fms\n",
		col.TTFT.P99*1e3, col.TPOT.P99*1e3)
	fmt.Printf("At 8 req/s, disaggregated:   TTFT p99 %6.0fms  TPOT p99 %5.2fms\n\n",
		dis.TTFT.P99*1e3, dis.TPOT.P99*1e3)

	// MTP speculation (§2.3.3) at the serving level: accepted drafts
	// multiply tokens per step and cut TPOT.
	spec := dsv3.MTPV3()
	mtpCfg := cfg
	mtpCfg.MTP = &spec
	on, err := dsv3.RunServe(mtpCfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTP at 85%% acceptance: %.3f tokens/step (analytic %.3f), TPOT p50 %.2fms -> %.2fms\n",
		on.TokensPerStep, spec.ExpectedTokensPerStep(), dis.TPOT.P50*1e3, on.TPOT.P50*1e3)

	// KV occupancy over time, from the sampled timeline.
	peak := 0.0
	for _, s := range on.Timeline {
		if s.KVOccupancy > peak {
			peak = s.KVOccupancy
		}
	}
	fmt.Printf("KV pages: peak occupancy %.1f%% (allocator high-water %.1f%%), %d preemptions\n",
		peak*100, on.PeakKVOccupancy*100, on.Preemptions)
}
