// Quickstart: a tour of the dsv3 public API — model analytics,
// numerics, network simulation and the headline experiment runners.
package main

import (
	"fmt"

	"dsv3"
)

func main() {
	// 1. Model analytics: the closed-form results (Tables 1 and 2).
	v3 := dsv3.DeepSeekV3()
	fmt.Printf("DeepSeek-V3: %.1fB total params, %.1fB activated, %.1f KB KV cache/token\n",
		v3.Params().Total/1e9, v3.Params().Active/1e9, v3.KVCacheBytesPerToken(2)/1e3)
	fmt.Printf("Training cost: %.0f GFLOPs/token (causal, seq 4096)\n\n",
		v3.TrainingFLOPsPerToken(4096, true)/1e9)

	// 2. Numerics: quantize a value through the paper's formats.
	x := 0.3333
	fmt.Printf("quantize(%v): E4M3=%v  E5M2=%v  BF16=%v\n",
		x, dsv3.E4M3.Quantize(x), dsv3.E5M2.Quantize(x), dsv3.BF16.Quantize(x))
	codec := dsv3.NewLogFMT(8)
	tile := []float64{0.1, -0.2, 0.4, 0.8}
	fmt.Printf("LogFMT-8 roundtrip of %v: %v\n\n", tile, codec.Roundtrip(tile))

	// 3. Network simulation: a 32-GPU all-to-all on the deployed MPFT.
	c, err := dsv3.BuildCluster(dsv3.H800Config(4, dsv3.MPFT))
	if err != nil {
		panic(err)
	}
	res, err := dsv3.AllToAll(c, 32, 1<<30, dsv3.DefaultCollectiveOpts())
	if err != nil {
		panic(err)
	}
	fmt.Printf("32-GPU all-to-all, 1 GiB/rank: %.2f GB/s algorithm bandwidth\n\n", res.AlgBW/1e9)

	// 4. Experiment runners: regenerate a paper table.
	fmt.Println(dsv3.RenderTable1())
}
