// incident: replaying an instance failure through the serving
// simulator. Availability under component failure is a first-class
// datacenter-inference constraint — the paper survives plane failures
// in the network and SDC on the accelerator, and the serving layer has
// to survive an instance dying mid-traffic. This walkthrough kills a
// decode instance under load, measures the blast radius (KV tokens
// lost, orphaned requests) and the recovery time once it comes back,
// shows how the retry budget turns failed requests into retried ones,
// and bounds tail latency under overload with admission shedding.
package main

import (
	"fmt"
	"log"

	"dsv3"
)

func main() {
	// The same KV-constrained reference fleet as examples/capacity,
	// lightly loaded so the incident — not saturation — dominates.
	cfg := dsv3.V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Seed = 1
	workload := dsv3.ServeWorkload{
		Arrival:    dsv3.ArrivalPoisson,
		RatePerSec: 5,
		Requests:   200,
		Prompt:     dsv3.LogNormalLength(1024, 0.5),
		Output:     dsv3.LogNormalLength(512, 0.5),
	}

	// The incident: decode instance 1 crashes at t=6s — its in-flight
	// batch is orphaned and its KV pool wiped — and is repaired at
	// t=14s. The schedule is part of the config, so the replay is
	// deterministic: same seed, same incident, same report.
	cfg.Resilience.Faults = &dsv3.ServeFaultPlan{
		Events: []dsv3.ServeFaultEvent{
			{At: 6, Kind: dsv3.FaultCrash, Instance: 1},
			{At: 14, Kind: dsv3.FaultRecover, Instance: 1},
		},
	}

	// Without retries, every orphaned request is a failed request.
	rep, err := dsv3.RunServe(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("no retries:")
	show(rep)

	// The default retry policy (3 attempts, 0.25s exponential backoff)
	// re-queues orphans through dispatch: failures become retries, at
	// the cost of retry amplification — extra prefill traffic on the
	// survivors.
	cfg.Resilience.Retry = dsv3.DefaultServeRetryPolicy()
	rep, err = dsv3.RunServe(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith retries (3x, 0.25s backoff):")
	show(rep)

	// Routing policy changes the blast radius: each router concentrates
	// a different share of work on the doomed instance, so KV lost,
	// amplification and recovery time all move with the policy.
	fmt.Println("\nblast radius by router:")
	for _, policy := range dsv3.ServeRouterPolicies() {
		c := cfg
		c.Fleet.Router = policy
		r, err := dsv3.RunServe(c, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s  affected %2d  kv lost %5d tok  amp %.3f  recovery %.2fs\n",
			policy, r.AffectedRequests, r.KVTokensLost,
			r.RetryAmplification, r.Incidents[0].Recovery)
	}

	// Graceful degradation: at 2.5x the load the fleet is past its
	// knee. Admit-all lets queueing collapse everyone's TTFT; shedding
	// at a queue depth of 24 rejects a known fraction and keeps the
	// admitted requests' latency bounded.
	over := workload
	over.RatePerSec = 12.5
	c := cfg
	c.Resilience.Faults, c.Resilience.Retry = nil, dsv3.ServeRetryPolicy{}
	base, err := dsv3.RunServe(c, over)
	if err != nil {
		log.Fatal(err)
	}
	c.Resilience.Admission = dsv3.ServeAdmissionPolicy{MaxQueueDepth: 24}
	shed, err := dsv3.RunServe(c, over)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverload at %.1f req/s:\n", over.RatePerSec)
	fmt.Printf("  admit-all: shed %3d  TTFT p99 %6.0f ms  SLO %5.1f%%\n",
		base.Shed, base.TTFT.P99*1e3, base.SLOAttainment*100)
	fmt.Printf("  queue<=24: shed %3d  TTFT p99 %6.0f ms  SLO %5.1f%%\n",
		shed.Shed, shed.TTFT.P99*1e3, shed.SLOAttainment*100)
}

// show prints the failure-mode block of one report.
func show(r *dsv3.ServeReport) {
	fmt.Printf("  offered %d  completed %d  failed %d  affected %d  retried %d (amp %.3f)\n",
		r.Requests, r.Completed, r.Failed, r.AffectedRequests, r.Retried, r.RetryAmplification)
	for _, in := range r.Incidents {
		fmt.Printf("  incident at %.1fs on d%d: %d orphaned, %d KV tokens lost, recovered in %.2fs\n",
			in.At, in.Instance, in.Orphaned, in.KVTokensLost, in.Recovery)
	}
	fmt.Printf("  SLO healthy epoch %.1f%%, faulted epoch %.1f%%\n",
		r.SLOHealthy*100, r.SLOFaulted*100)
}
