// moe_routing: the §4.3 co-design — node-limited routing's IB traffic
// deduplication, the group-limit sweep, and its effect on DeepEP
// dispatch time at EP64.
package main

import (
	"fmt"

	"dsv3"
	"dsv3/internal/moe"
)

func main() {
	if out, err := dsv3.RenderNodeLimited(19); err == nil {
		fmt.Println(out)
	}

	// Extension: sweep the group limit from 1 to 8.
	place := moe.Placement{Experts: 256, Nodes: 8, GPUsPerNode: 8}
	fmt.Println("Group-limit sweep (8 nodes, 256 experts, top-8):")
	for _, limit := range []int{1, 2, 3, 4, 6, 8} {
		g := dsv3.V3Gate()
		g.GroupTopK = limit
		if err := g.Validate(); err != nil {
			fmt.Printf("  limit %d: %v\n", limit, err)
			continue
		}
		st := moe.CollectStats(g, place, 3000, 0, nil, dsv3.NewSeededRand(int64(limit)))
		fmt.Printf("  limit %d: E[M]=%.2f  E[remote]=%.2f  max=%d\n",
			limit, st.MeanNodes, st.MeanRemoteNodes, st.MaxNodes)
	}
	fmt.Println()

	// The communication consequence at EP64.
	c, err := dsv3.BuildCluster(dsv3.H800Config(8, dsv3.MPFT))
	if err != nil {
		panic(err)
	}
	cfg := dsv3.DeepEPV3Config()
	cfg.DeterministicTraffic = true
	cfg.SampleTokens = 512
	limited, err := dsv3.DeepEPDispatch(c, cfg, 23)
	if err != nil {
		panic(err)
	}
	cfg.Gate.GroupTopK = 0
	free, err := dsv3.DeepEPDispatch(c, cfg, 23)
	if err != nil {
		panic(err)
	}
	fmt.Printf("EP64 dispatch: node-limited %.2f ms (%.1f MB IB/GPU) vs unrestricted %.2f ms (%.1f MB IB/GPU)\n",
		limited.Time*1e3, limited.WireBytesPerGPU/1e6, free.Time*1e3, free.WireBytesPerGPU/1e6)
	fmt.Printf("IB traffic reduction: %.2fx\n", free.WireBytesPerGPU/limited.WireBytesPerGPU)
}
