module dsv3

go 1.23
