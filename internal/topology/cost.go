package topology

import "fmt"

// Counts summarizes a topology for the Table 3 cost comparison:
// endpoint count, switch count, and the number of inter-switch cables
// (the "Links" row of Table 3 counts switch-to-switch cables only;
// endpoint cables are folded into the per-endpoint cost).
type Counts struct {
	Name             string
	Endpoints        int
	Switches         int
	InterSwitchLinks int
}

// FT2Counts returns the closed-form counts for a two-layer fat-tree of
// switch radix k: k leaves (k/2 down, k/2 up) and k/2 spines.
func FT2Counts(radix int) Counts {
	k := radix
	return Counts{
		Name:             "FT2",
		Endpoints:        k * k / 2,
		Switches:         k + k/2,
		InterSwitchLinks: k * k / 2,
	}
}

// FT3Counts returns counts for a three-layer fat-tree of radix k:
// k²/2 leaves, k²/2 spines, k²/4 cores, k³/4 endpoints.
func FT3Counts(radix int) Counts {
	k := radix
	return Counts{
		Name:             "FT3",
		Endpoints:        k * k * k / 4,
		Switches:         5 * k * k / 4,
		InterSwitchLinks: k * k * k / 2,
	}
}

// MPFTCounts returns counts for a multi-plane fat-tree: planes
// independent FT2 fabrics. Each endpoint (GPU+NIC pair) belongs to one
// plane, so capacities add across planes.
func MPFTCounts(radix, planes int) Counts {
	ft2 := FT2Counts(radix)
	return Counts{
		Name:             "MPFT",
		Endpoints:        ft2.Endpoints * planes,
		Switches:         ft2.Switches * planes,
		InterSwitchLinks: ft2.InterSwitchLinks * planes,
	}
}

// SlimFlyCounts returns counts for an MMS Slim Fly with parameter q
// (q = 4w + δ, δ ∈ {-1, 0, 1}): 2q² switches of network degree
// (3q-δ)/2, with ceil(degree/2) endpoints per switch (the balanced
// p = k'/2 concentration from the Slim Fly paper).
func SlimFlyCounts(q int) (Counts, error) {
	delta, err := slimFlyDelta(q)
	if err != nil {
		return Counts{}, err
	}
	degree := (3*q - delta) / 2
	perSwitch := (degree + 1) / 2
	switches := 2 * q * q
	return Counts{
		Name:             "SF",
		Endpoints:        switches * perSwitch,
		Switches:         switches,
		InterSwitchLinks: switches * degree / 2,
	}, nil
}

func slimFlyDelta(q int) (int, error) {
	switch q % 4 {
	case 0:
		return 0, nil
	case 1:
		return 1, nil
	case 3:
		return -1, nil
	}
	return 0, fmt.Errorf("topology: invalid Slim Fly q=%d (q mod 4 must be 0, 1 or 3)", q)
}

// DragonflyCounts returns counts for a canonical dragonfly with p
// endpoints per router, a routers per group, h global links per router
// and g groups: local links form a complete graph inside each group,
// global links connect groups.
func DragonflyCounts(p, a, h, g int) Counts {
	return Counts{
		Name:             "DF",
		Endpoints:        p * a * g,
		Switches:         a * g,
		InterSwitchLinks: g*a*(a-1)/2 + a*h*g/2,
	}
}

// CostModel prices a topology following the Slim Fly paper methodology:
// a per-endpoint cost (NIC plus endpoint cable share), a per-switch cost
// and a per-inter-switch-cable cost (optics dominate). The default
// values are calibrated once so that all five Table 3 rows reproduce;
// see DESIGN.md §4.
type CostModel struct {
	EndpointCost float64 // $ per endpoint (NIC + DAC share)
	SwitchCost   float64 // $ per 64-port 400G switch
	LinkCost     float64 // $ per inter-switch optical cable
}

// DefaultCostModel returns the calibrated Table 3 model.
func DefaultCostModel() CostModel {
	return CostModel{EndpointCost: 514, SwitchCost: 50000, LinkCost: 1536}
}

// Cost returns the total fabric cost in dollars.
func (m CostModel) Cost(c Counts) float64 {
	return float64(c.Endpoints)*m.EndpointCost +
		float64(c.Switches)*m.SwitchCost +
		float64(c.InterSwitchLinks)*m.LinkCost
}

// CostPerEndpoint returns dollars per endpoint.
func (m CostModel) CostPerEndpoint(c Counts) float64 {
	if c.Endpoints == 0 {
		return 0
	}
	return m.Cost(c) / float64(c.Endpoints)
}

// Table3Topologies returns the five topologies of the paper's Table 3:
// FT2 and MPFT with 64-port switches, FT3 with 64-port switches, Slim
// Fly with q=28, and the canonical dragonfly with p=16, a=32, h=16,
// g=511.
func Table3Topologies() ([]Counts, error) {
	sf, err := SlimFlyCounts(28)
	if err != nil {
		return nil, err
	}
	return []Counts{
		FT2Counts(64),
		MPFTCounts(64, 8),
		FT3Counts(64),
		sf,
		DragonflyCounts(16, 32, 16, 511),
	}, nil
}
