package topology

import (
	"math"
	"testing"

	"dsv3/internal/units"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Endpoint, "a", 0, -1)
	sw := g.AddNode(Switch, "sw", 1, -1)
	b := g.AddNode(Endpoint, "b", 0, -1)
	g.AddDuplex(a, sw, 1, 1)
	g.AddDuplex(sw, b, 1, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	eps := g.Endpoints()
	if len(eps) != 2 || eps[0] != a || eps[1] != b {
		t.Fatalf("endpoints wrong: %v", eps)
	}
	paths, err := g.ShortestPaths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("expected one 2-hop path, got %v", paths)
	}
	if g.PathLatency(paths[0]) != 2 {
		t.Errorf("path latency = %v", g.PathLatency(paths[0]))
	}
}

func TestShortestPathsSelf(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Endpoint, "a", 0, -1)
	paths, err := g.ShortestPaths(a, a)
	if err != nil || len(paths) != 1 || len(paths[0]) != 0 {
		t.Fatalf("self path should be one empty path: %v, %v", paths, err)
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Endpoint, "a", 0, -1)
	b := g.AddNode(Endpoint, "b", 0, -1)
	if _, err := g.ShortestPaths(a, b); err == nil {
		t.Error("expected unreachable error")
	}
}

func TestFatTree2Structure(t *testing.T) {
	ft := FatTree2{Leaves: 4, Spines: 2, EndpointsPerLeaf: 8, Params: IB400G()}
	g := ft.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Endpoints()); got != 32 {
		t.Fatalf("endpoints = %d, want 32", got)
	}
	switches := 0
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			switches++
		}
	}
	if switches != 6 {
		t.Errorf("switches = %d, want 6", switches)
	}
}

func TestFatTree2PathDiversity(t *testing.T) {
	ft := FatTree2{Leaves: 4, Spines: 3, EndpointsPerLeaf: 2, Params: IB400G()}
	g := ft.Build()
	eps := g.Endpoints()
	// Same-leaf endpoints: one 2-hop path through the shared leaf.
	paths, err := g.ShortestPaths(eps[0], eps[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Errorf("same-leaf: expected one 2-hop path, got %d paths", len(paths))
	}
	// Cross-leaf: one path per spine, 4 hops each.
	paths, err = g.ShortestPaths(eps[0], eps[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Errorf("cross-leaf: expected 3 equal-cost paths, got %d", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Errorf("cross-leaf path should have 4 hops, got %d", len(p))
		}
	}
}

func TestFatTree2LeafOf(t *testing.T) {
	ft := FatTree2{Leaves: 2, Spines: 1, EndpointsPerLeaf: 4, Params: IB400G()}
	if ft.LeafOf(0) != 0 || ft.LeafOf(3) != 0 || ft.LeafOf(4) != 1 {
		t.Error("LeafOf mapping wrong")
	}
}

// Table 3 counts must reproduce the paper's rows exactly.
func TestTable3CountsExact(t *testing.T) {
	rows, err := Table3Topologies()
	if err != nil {
		t.Fatal(err)
	}
	want := []Counts{
		{"FT2", 2048, 96, 2048},
		{"MPFT", 16384, 768, 16384},
		{"FT3", 65536, 5120, 131072},
		{"SF", 32928, 1568, 32928},
		{"DF", 261632, 16352, 384272},
	}
	if len(rows) != len(want) {
		t.Fatalf("row count = %d", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %s: got %+v, want %+v", w.Name, rows[i], w)
		}
	}
}

// Table 3 costs: the calibrated model must land within 1.5% of every
// paper figure (cost in M$ and k$/endpoint).
func TestTable3Costs(t *testing.T) {
	rows, _ := Table3Topologies()
	m := DefaultCostModel()
	paperCost := []float64{9e6, 72e6, 491e6, 146e6, 1522e6}
	paperPerEp := []float64{4390, 4390, 7500, 4400, 5800}
	for i, c := range rows {
		cost := m.Cost(c)
		if math.Abs(cost-paperCost[i]) > 0.015*paperCost[i] {
			t.Errorf("%s cost = %.1fM$, paper %.0fM$", c.Name, cost/1e6, paperCost[i]/1e6)
		}
		perEp := m.CostPerEndpoint(c)
		if math.Abs(perEp-paperPerEp[i]) > 0.02*paperPerEp[i] {
			t.Errorf("%s cost/endpoint = %.0f$, paper %.0f$", c.Name, perEp, paperPerEp[i])
		}
	}
}

func TestCostPerEndpointZero(t *testing.T) {
	if got := DefaultCostModel().CostPerEndpoint(Counts{}); got != 0 {
		t.Errorf("zero endpoints should cost 0/ep, got %v", got)
	}
}

func TestMPFTCostMatchesFT2PerEndpoint(t *testing.T) {
	// The headline of Table 3: MPFT scales FT2 8x at identical
	// cost-per-endpoint.
	m := DefaultCostModel()
	ft2 := FT2Counts(64)
	mpft := MPFTCounts(64, 8)
	if math.Abs(m.CostPerEndpoint(ft2)-m.CostPerEndpoint(mpft)) > 1e-9 {
		t.Error("MPFT and FT2 must have identical cost/endpoint")
	}
	ft3 := FT3Counts(64)
	if m.CostPerEndpoint(ft3) < 1.5*m.CostPerEndpoint(mpft) {
		t.Error("FT3 should be much more expensive per endpoint")
	}
}

func TestSlimFlyDeltaValidation(t *testing.T) {
	if _, err := SlimFlyCounts(28); err != nil {
		t.Errorf("q=28 valid: %v", err)
	}
	if _, err := SlimFlyCounts(6); err == nil {
		t.Error("q=6 (q mod 4 == 2) must be rejected")
	}
}

func TestSlimFlyGraphSmall(t *testing.T) {
	sf := SlimFly{Q: 5, EndpointsPerSwitch: 2, Params: IB400G()}
	g, err := sf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	switches := 0
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			switches++
		}
	}
	if switches != 50 { // 2q²
		t.Errorf("switches = %d, want 50", switches)
	}
	// Network degree of every switch must be (3q-δ)/2 = 7 for q=5.
	for _, n := range g.Nodes {
		if n.Kind != Switch {
			continue
		}
		deg := 0
		for _, lid := range g.Out[n.ID] {
			if g.Nodes[g.Links[lid].To].Kind == Switch {
				deg++
			}
		}
		if deg != 7 {
			t.Fatalf("switch %d degree = %d, want 7", n.ID, deg)
		}
	}
	// The MMS graph has diameter 2.
	if d := SwitchDiameter(g); d != 2 {
		t.Errorf("Slim Fly diameter = %d, want 2", d)
	}
}

func TestSlimFlyRejectsBadQ(t *testing.T) {
	for _, q := range []int{4, 7, 9} { // not prime ≡ 1 mod 4
		sf := SlimFly{Q: q, EndpointsPerSwitch: 1, Params: IB400G()}
		if _, err := sf.Build(); err == nil {
			t.Errorf("q=%d should be rejected by the builder", q)
		}
	}
}

func TestDragonflySmall(t *testing.T) {
	df := Dragonfly{EndpointsPerRouter: 2, RoutersPerGroup: 4, GlobalPerRouter: 2, Groups: 9, Params: IB400G()}
	g, err := df.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := DragonflyCounts(2, 4, 2, 9)
	if got := len(g.Endpoints()); got != want.Endpoints {
		t.Errorf("endpoints = %d, want %d", got, want.Endpoints)
	}
	switches, interLinks := 0, 0
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			switches++
		}
	}
	for _, l := range g.Links {
		if g.Nodes[l.From].Kind == Switch && g.Nodes[l.To].Kind == Switch && l.From < l.To {
			interLinks++
		}
	}
	if switches != want.Switches {
		t.Errorf("switches = %d, want %d", switches, want.Switches)
	}
	if interLinks != want.InterSwitchLinks {
		t.Errorf("inter-switch cables = %d, want %d", interLinks, want.InterSwitchLinks)
	}
	// Every group pair shares exactly one global cable => switch
	// diameter is at most 3 (local, global, local).
	if d := SwitchDiameter(g); d > 3 {
		t.Errorf("dragonfly diameter = %d, want <= 3", d)
	}
}

func TestDragonflyRejectsWrongGroups(t *testing.T) {
	df := Dragonfly{EndpointsPerRouter: 1, RoutersPerGroup: 4, GlobalPerRouter: 2, Groups: 5, Params: IB400G()}
	if _, err := df.Build(); err == nil {
		t.Error("g != a*h+1 must be rejected")
	}
}

func TestFabricParamValues(t *testing.T) {
	ib := IB400G()
	if ib.EndpointLinkCap != 50*units.GB {
		t.Errorf("400G IB should be 50 GB/s, got %v", ib.EndpointLinkCap)
	}
	roce := RoCE400G()
	if roce.SwitchHopLat <= ib.SwitchHopLat {
		t.Error("RoCE per-hop latency must exceed IB (Table 5)")
	}
}
