package topology

import "fmt"

// SlimFly builds the McKay–Miller–Širáň (MMS) graph underlying the Slim
// Fly topology referenced by Table 3. The construction here supports
// prime q with q ≡ 1 (mod 4), which covers the small instances the
// tests and simulations use (q = 5, 13, 17, 29); the closed-form
// SlimFlyCounts handles arbitrary valid q for the cost table.
//
// Vertices are (0, x, y) "row" routers and (1, m, c) "column" routers,
// x, y, m, c ∈ F_q:
//
//	(0,x,y) ~ (0,x,y')  iff  y-y'  ∈ X  (even powers of a primitive root)
//	(1,m,c) ~ (1,m,c')  iff  c-c' ∈ X' (odd powers)
//	(0,x,y) ~ (1,m,c)   iff  y = m·x + c
type SlimFly struct {
	Q                  int
	EndpointsPerSwitch int
	Params             FabricParams
}

// Build constructs the MMS graph plus attached endpoints. It returns an
// error when q is not a prime ≡ 1 (mod 4).
func (sf SlimFly) Build() (*Graph, error) {
	q := sf.Q
	if !isPrime(q) || q%4 != 1 {
		return nil, fmt.Errorf("topology: SlimFly builder requires prime q ≡ 1 (mod 4), got %d", q)
	}
	xi, err := primitiveRoot(q)
	if err != nil {
		return nil, err
	}
	// Even and odd powers of the primitive root.
	inX := make([]bool, q)  // even powers
	inXp := make([]bool, q) // odd powers
	v := 1
	for i := 0; i < q-1; i++ {
		if i%2 == 0 {
			inX[v] = true
		} else {
			inXp[v] = true
		}
		v = v * xi % q
	}

	g := NewGraph()
	// switchID[s][a][b] with s in {0,1}.
	id := func(s, a, b int) int { return s*q*q + a*q + b }
	ids := make([]int, 2*q*q)
	for s := 0; s < 2; s++ {
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				ids[id(s, a, b)] = g.AddNode(Switch, fmt.Sprintf("sf%d-%d-%d", s, a, b), 1, -1)
			}
		}
	}
	addEdge := func(u, w int) { g.AddDuplex(ids[u], ids[w], sf.Params.SwitchLinkCap, sf.Params.SwitchHopLat) }
	// Intra-"row" edges.
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			for yp := y + 1; yp < q; yp++ {
				if inX[(y-yp+q)%q] {
					addEdge(id(0, x, y), id(0, x, yp))
				}
			}
		}
	}
	// Intra-"column" edges.
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			for cp := c + 1; cp < q; cp++ {
				if inXp[(c-cp+q)%q] {
					addEdge(id(1, m, c), id(1, m, cp))
				}
			}
		}
	}
	// Cross edges: y = m·x + c.
	for x := 0; x < q; x++ {
		for m := 0; m < q; m++ {
			for c := 0; c < q; c++ {
				y := (m*x + c) % q
				addEdge(id(0, x, y), id(1, m, c))
			}
		}
	}
	// Attach endpoints.
	for _, sw := range ids {
		for e := 0; e < sf.EndpointsPerSwitch; e++ {
			ep := g.AddNode(Endpoint, fmt.Sprintf("sfep%d-%d", sw, e), 0, -1)
			g.AddDuplex(ep, sw, sf.Params.EndpointLinkCap, sf.Params.EndpointLinkLat)
		}
	}
	return g, nil
}

// SwitchDiameter returns the maximum switch-to-switch hop distance —
// the Slim Fly design target is 2.
func SwitchDiameter(g *Graph) int {
	max := 0
	for _, n := range g.Nodes {
		if n.Kind != Switch {
			continue
		}
		dist := g.hopDistances(n.ID)
		for _, m := range g.Nodes {
			if m.Kind != Switch || m.ID == n.ID {
				continue
			}
			if dist[m.ID] > max {
				max = dist[m.ID]
			}
		}
	}
	return max
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func primitiveRoot(q int) (int, error) {
	for cand := 2; cand < q; cand++ {
		seen := make([]bool, q)
		v, count := 1, 0
		for i := 0; i < q-1; i++ {
			v = v * cand % q
			if !seen[v] {
				seen[v] = true
				count++
			}
		}
		if count == q-1 {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("topology: no primitive root mod %d", q)
}

// Dragonfly builds a canonical dragonfly: groups of a routers in a
// complete graph, h global ports per router, g = a·h+1 groups so every
// pair of groups shares exactly one global cable (the arrangement used
// in Table 3's DF column).
type Dragonfly struct {
	EndpointsPerRouter int // p
	RoutersPerGroup    int // a
	GlobalPerRouter    int // h
	Groups             int // g; must be a·h + 1 for this builder
	Params             FabricParams
}

// Build constructs the dragonfly graph.
func (df Dragonfly) Build() (*Graph, error) {
	p, a, h, gg := df.EndpointsPerRouter, df.RoutersPerGroup, df.GlobalPerRouter, df.Groups
	if gg != a*h+1 {
		return nil, fmt.Errorf("topology: Dragonfly builder requires g = a·h+1 (got g=%d, a·h+1=%d)", gg, a*h+1)
	}
	g := NewGraph()
	routers := make([][]int, gg)
	for gi := 0; gi < gg; gi++ {
		routers[gi] = make([]int, a)
		for r := 0; r < a; r++ {
			routers[gi][r] = g.AddNode(Switch, fmt.Sprintf("df%d-%d", gi, r), 1, -1)
		}
		// Local complete graph.
		for r := 0; r < a; r++ {
			for r2 := r + 1; r2 < a; r2++ {
				g.AddDuplex(routers[gi][r], routers[gi][r2], df.Params.SwitchLinkCap, df.Params.SwitchHopLat)
			}
		}
	}
	// Global links: group gi's slot s (0..a·h-1) reaches group
	// (gi+s+1) mod g; the router owning the slot is s/h.
	for gi := 0; gi < gg; gi++ {
		for s := 0; s < a*h; s++ {
			target := (gi + s + 1) % gg
			if gi >= target {
				continue // the lower-numbered group adds the cable
			}
			backSlot := (gi - target - 1 + 2*gg) % gg
			g.AddDuplex(routers[gi][s/h], routers[target][backSlot/h], df.Params.SwitchLinkCap, df.Params.SwitchHopLat)
		}
	}
	// Endpoints.
	for gi := 0; gi < gg; gi++ {
		for r := 0; r < a; r++ {
			for e := 0; e < p; e++ {
				ep := g.AddNode(Endpoint, fmt.Sprintf("dfep%d-%d-%d", gi, r, e), 0, -1)
				g.AddDuplex(ep, routers[gi][r], df.Params.EndpointLinkCap, df.Params.EndpointLinkLat)
			}
		}
	}
	return g, nil
}
