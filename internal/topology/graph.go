// Package topology builds the network fabrics discussed in §5 of the
// paper — two- and three-layer fat-trees, the Multi-Plane Fat-Tree
// (MPFT) deployed for DeepSeek-V3, the single-plane Multi-Rail Fat-Tree
// (MRFT) it is compared against, and the Slim Fly and Dragonfly
// topologies from the cost comparison in Table 3.
//
// Graphs are directed: a physical cable is two Link records, one per
// direction, so full-duplex contention is modelled naturally by the
// flow simulator in internal/netsim.
package topology

import (
	"fmt"

	"dsv3/internal/units"
)

// NodeKind distinguishes traffic sources/sinks from forwarding elements.
type NodeKind int

const (
	// Endpoint nodes originate and terminate flows (GPUs, NICs-as-hosts).
	Endpoint NodeKind = iota
	// Switch nodes only forward.
	Switch
)

// Node is a vertex in the fabric.
type Node struct {
	ID    int
	Kind  NodeKind
	Label string
	// Level annotates fat-tree tiers (0 endpoint, 1 leaf, 2 spine, 3
	// core) and is informational.
	Level int
	// Plane tags multi-plane fabrics; -1 when not applicable.
	Plane int
}

// Link is one direction of a physical cable.
type Link struct {
	ID       int
	From, To int
	Capacity units.BytesPerSecond
	// Latency is the one-way propagation + forwarding latency
	// contribution of this hop.
	Latency units.Seconds
}

// Graph is a directed multigraph with adjacency indexed by node.
type Graph struct {
	Nodes []Node
	Links []Link
	// Out[n] lists link IDs leaving node n.
	Out [][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind NodeKind, label string, level, plane int) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Label: label, Level: level, Plane: plane})
	g.Out = append(g.Out, nil)
	return id
}

// AddLink adds a single directed link and returns its ID.
func (g *Graph) AddLink(from, to int, capacity units.BytesPerSecond, latency units.Seconds) int {
	id := len(g.Links)
	g.Links = append(g.Links, Link{ID: id, From: from, To: to, Capacity: capacity, Latency: latency})
	g.Out[from] = append(g.Out[from], id)
	return id
}

// AddDuplex adds both directions of a cable and returns the two link IDs.
func (g *Graph) AddDuplex(a, b int, capacity units.BytesPerSecond, latency units.Seconds) (ab, ba int) {
	return g.AddLink(a, b, capacity, latency), g.AddLink(b, a, capacity, latency)
}

// Endpoints returns the IDs of all endpoint nodes, in creation order.
func (g *Graph) Endpoints() []int {
	var eps []int
	for _, n := range g.Nodes {
		if n.Kind == Endpoint {
			eps = append(eps, n.ID)
		}
	}
	return eps
}

// hopDistances computes hop counts from every node TO dst (BFS on the
// reversed graph).
func (g *Graph) hopDistances(dst int) []int {
	const unreachable = 1 << 30
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = unreachable
	}
	dist[dst] = 0
	queue := []int{dst}
	// Reverse adjacency on the fly: for BFS-to-dst we need incoming
	// links, so precompute once per call.
	in := make([][]int, len(g.Nodes))
	for _, l := range g.Links {
		in[l.To] = append(in[l.To], l.ID)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, lid := range in[n] {
			from := g.Links[lid].From
			if dist[from] > dist[n]+1 {
				dist[from] = dist[n] + 1
				queue = append(queue, from)
			}
		}
	}
	return dist
}

// MaxPathsPerPair caps equal-cost path enumeration; the two-layer
// fabrics simulated here have at most a few dozen spines, so hitting
// this cap indicates a misuse (e.g. trying to enumerate an FT3).
const MaxPathsPerPair = 512

// ShortestPaths enumerates all equal-cost shortest paths from src to dst
// as slices of link IDs. It returns an error if the path count exceeds
// MaxPathsPerPair.
func (g *Graph) ShortestPaths(src, dst int) ([][]int, error) {
	if src == dst {
		return [][]int{{}}, nil
	}
	dist := g.hopDistances(dst)
	const unreachable = 1 << 30
	if dist[src] >= unreachable {
		return nil, fmt.Errorf("topology: no path from %d to %d", src, dst)
	}
	var paths [][]int
	var walk func(node int, acc []int) error
	walk = func(node int, acc []int) error {
		if node == dst {
			path := append([]int(nil), acc...)
			paths = append(paths, path)
			if len(paths) > MaxPathsPerPair {
				return fmt.Errorf("topology: more than %d equal-cost paths between %d and %d", MaxPathsPerPair, src, dst)
			}
			return nil
		}
		for _, lid := range g.Out[node] {
			next := g.Links[lid].To
			if dist[next] == dist[node]-1 {
				if err := walk(next, append(acc, lid)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(src, nil); err != nil {
		return nil, err
	}
	return paths, nil
}

// PathLatency sums the latencies along a path of link IDs.
func (g *Graph) PathLatency(path []int) units.Seconds {
	var total units.Seconds
	for _, lid := range path {
		total += g.Links[lid].Latency
	}
	return total
}

// Validate checks structural invariants: link endpoints in range and
// every endpoint reachable from every other. It is O(V·E) and intended
// for tests.
func (g *Graph) Validate() error {
	for _, l := range g.Links {
		if l.From < 0 || l.From >= len(g.Nodes) || l.To < 0 || l.To >= len(g.Nodes) {
			return fmt.Errorf("topology: link %d endpoints out of range", l.ID)
		}
		if l.Capacity <= 0 {
			return fmt.Errorf("topology: link %d has non-positive capacity", l.ID)
		}
	}
	eps := g.Endpoints()
	if len(eps) == 0 {
		return nil
	}
	dist := g.hopDistances(eps[0])
	const unreachable = 1 << 30
	for _, e := range eps {
		if dist[e] >= unreachable {
			return fmt.Errorf("topology: endpoint %d cannot reach endpoint %d", e, eps[0])
		}
	}
	return nil
}
