package topology

import (
	"fmt"

	"dsv3/internal/units"
)

// FabricParams carries the link-level constants of a fabric build.
type FabricParams struct {
	// EndpointLinkCap is the NIC line rate (one direction).
	EndpointLinkCap units.BytesPerSecond
	// SwitchLinkCap is the inter-switch line rate (one direction).
	SwitchLinkCap units.BytesPerSecond
	// EndpointLinkLat and SwitchHopLat are per-hop one-way latencies.
	EndpointLinkLat units.Seconds
	SwitchHopLat    units.Seconds
}

// IB400G returns fabric parameters for the paper's 400G NDR InfiniBand:
// 50 GB/s line rate and sub-microsecond hops (calibrated so the Table 5
// CPU-side latencies reproduce: see internal/cluster).
func IB400G() FabricParams {
	return FabricParams{
		EndpointLinkCap: 50 * units.GB,
		SwitchLinkCap:   50 * units.GB,
		EndpointLinkLat: 0.2 * units.Microsecond,
		SwitchHopLat:    0.45 * units.Microsecond,
	}
}

// RoCE400G returns parameters for 400G RoCE Ethernet: same line rate,
// higher per-hop latency (Table 5: Ethernet switches add ~1 µs/hop).
func RoCE400G() FabricParams {
	return FabricParams{
		EndpointLinkCap: 50 * units.GB,
		SwitchLinkCap:   50 * units.GB,
		EndpointLinkLat: 0.3 * units.Microsecond,
		SwitchHopLat:    1.0 * units.Microsecond,
	}
}

// FatTree2 describes a two-layer (leaf-spine) fat-tree build.
type FatTree2 struct {
	Leaves           int
	Spines           int
	EndpointsPerLeaf int
	Params           FabricParams
}

// Build constructs the graph: endpoints under leaves, every leaf
// connected to every spine.
func (ft FatTree2) Build() *Graph {
	g := NewGraph()
	leafIDs := make([]int, ft.Leaves)
	spineIDs := make([]int, ft.Spines)
	for s := 0; s < ft.Spines; s++ {
		spineIDs[s] = g.AddNode(Switch, fmt.Sprintf("spine%d", s), 2, -1)
	}
	for l := 0; l < ft.Leaves; l++ {
		leafIDs[l] = g.AddNode(Switch, fmt.Sprintf("leaf%d", l), 1, -1)
		for s := 0; s < ft.Spines; s++ {
			g.AddDuplex(leafIDs[l], spineIDs[s], ft.Params.SwitchLinkCap, ft.Params.SwitchHopLat)
		}
		for e := 0; e < ft.EndpointsPerLeaf; e++ {
			ep := g.AddNode(Endpoint, fmt.Sprintf("ep%d-%d", l, e), 0, -1)
			g.AddDuplex(ep, leafIDs[l], ft.Params.EndpointLinkCap, ft.Params.EndpointLinkLat)
		}
	}
	return g
}

// LeafOf returns the leaf index an endpoint (by position in
// g.Endpoints()) belongs to.
func (ft FatTree2) LeafOf(endpointIdx int) int { return endpointIdx / ft.EndpointsPerLeaf }
