package trainsim

import (
	"math"
	"testing"

	"dsv3/internal/model"
	"dsv3/internal/pipeline"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (±%.1f%%)", name, got, want, relTol*100)
	}
}

// Table 4 (MPFT column): the production metrics must reproduce within
// ~1-2%.
func TestTable4Reproduction(t *testing.T) {
	m, err := V3Config().Run()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "time/step", m.TimePerStep, 19.926, 0.01)
	approx(t, "tokens/day", m.TokensPerDay, 272.80e9, 0.01)
	approx(t, "1F", m.Phases.F1, 1.13, 0.01)
	approx(t, "1F1B", m.Phases.F1B1, 13.95, 0.01)
	approx(t, "1B", m.Phases.B1, 1.99, 0.01)
	approx(t, "1W", m.Phases.W1, 0.48, 0.01)
	approx(t, "bubble", m.Phases.Bubble, 2.06, 0.02)
	approx(t, "TFLOPS (non-causal)", m.TFLOPSNonCausal, 432e12, 0.01)
	approx(t, "TFLOPS (causal)", m.TFLOPSCausal, 385e12, 0.01)
	approx(t, "MFU (non-causal)", m.MFUNonCausal, 0.4373, 0.01)
	approx(t, "MFU (causal)", m.MFUCausal, 0.3894, 0.01)
}

// The MPFT vs MRFT comparison: identical overlapped communication gives
// identical metrics — the fabric does not change the step time. The
// paper's two columns differ by <0.2%, within measurement noise.
func TestMPFTvsMRFTParity(t *testing.T) {
	a, err := V3Config().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := V3Config().Run() // same overlapped comm on either fabric
	if err != nil {
		t.Fatal(err)
	}
	if a.TimePerStep != b.TimePerStep {
		t.Error("identical configs must give identical step times")
	}
}

func TestExposedCommSlowsStep(t *testing.T) {
	cfg := V3Config()
	base, _ := cfg.Run()
	cfg.UnoverlappedCommPerMB = 0.01
	slow, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if slow.TimePerStep <= base.TimePerStep {
		t.Error("exposed communication must slow the step")
	}
	if slow.MFUCausal >= base.MFUCausal {
		t.Error("exposed communication must cost MFU")
	}
}

func TestDualPipeBubbleBeats1F1B(t *testing.T) {
	// The schedule-level claim (§4.2): DualPipe reduces pipeline
	// bubbles. The production DualPipe bubble (2.06 s) must be well
	// below 1F1B's on the same costs (the ideal 1F1B already idles
	// (PP-1)(F+B) ≈ 3.8 s per step). End-to-end step times are not
	// directly comparable because the calibrated DualPipe timeline
	// carries measured production overheads while the 1F1B event sim
	// is ideal.
	cfg := V3Config()
	dp, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	ofb, err := cfg.RunOneFOneB()
	if err != nil {
		t.Fatal(err)
	}
	if dp.Phases.Bubble >= ofb.Phases.Bubble {
		t.Errorf("DualPipe bubble (%v) must beat 1F1B's (%v)", dp.Phases.Bubble, ofb.Phases.Bubble)
	}
	// Ideal-vs-ideal, DualPipe wins the makespan too.
	costs, _ := cfg.Costs()
	ideal := pipeline.IdealDualPipeMakespan(cfg.PPStages, cfg.Microbatches, costs)
	if ideal+float64(cfg.OptimizerTime) >= ofb.TimePerStep {
		t.Errorf("ideal DualPipe (%v) must beat ideal 1F1B (%v)", ideal, ofb.TimePerStep)
	}
}

func TestValidation(t *testing.T) {
	cfg := V3Config()
	cfg.GPUs = 2047
	if err := cfg.Validate(); err == nil {
		t.Error("PPxDP != GPUs must fail")
	}
	cfg = V3Config()
	cfg.Microbatches = 7 // 15360/128 = 120 not divisible by 7
	if err := cfg.Validate(); err == nil {
		t.Error("non-divisible microbatches must fail")
	}
	cfg = V3Config()
	cfg.KernelEfficiency = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("efficiency > 1 must fail")
	}
	cfg = V3Config()
	cfg.Model = nil
	if _, err := cfg.Run(); err == nil {
		t.Error("nil model must fail")
	}
}

func TestCostsScaleWithModel(t *testing.T) {
	small := V3Config()
	small.Model = model.DeepSeekV2()
	cSmall, err := small.Costs()
	if err != nil {
		t.Fatal(err)
	}
	cBig, _ := V3Config().Costs()
	if cSmall.F >= cBig.F {
		t.Error("V2 microbatches must be cheaper than V3's")
	}
}

func TestKernelEfficiencyMonotone(t *testing.T) {
	fast := V3Config()
	fast.KernelEfficiency = 0.6
	a, _ := fast.Run()
	b, _ := V3Config().Run()
	if a.TimePerStep >= b.TimePerStep {
		t.Error("higher kernel efficiency must shorten the step")
	}
}
