// Package trainsim assembles the end-to-end training-step model behind
// the paper's Table 4: DeepSeek-V3 on 2,048 H800 GPUs with 16 pipeline
// stages, DualPipe scheduling and expert-parallel all-to-all overlapped
// with compute. The FLOPs come from internal/model, the schedule from
// internal/pipeline, and the communication feasibility check from the
// fabric's measured all-to-all bandwidth — which is how the MPFT vs
// MRFT comparison is made: identical overlapped communication on both
// fabrics yields identical step time.
package trainsim

import (
	"fmt"

	"dsv3/internal/model"
	"dsv3/internal/pipeline"
	"dsv3/internal/units"
)

// H800PeakBF16 is the dense BF16 peak used for MFU accounting
// (the paper computes MFU against BF16 peak).
const H800PeakBF16 = 989.4e12

// Config sizes a production training run.
type Config struct {
	Model *model.Config
	GPUs  int // 2048
	// PPStages, DPRanks: 16 x 128 = 2048 (EP lives inside DP x PP).
	PPStages int
	DPRanks  int
	SeqLen   int
	// SeqsPerStep is the global batch in sequences (15360).
	SeqsPerStep int
	// Microbatches per DP rank per step (60 => microbatch of 2 seqs).
	Microbatches int
	// KernelEfficiency is the fraction of peak the fused kernels reach
	// on causal-attention accounting (~0.50 measured for V3-class
	// kernels on H800).
	KernelEfficiency float64
	// TimeRatioB and TimeRatioW are the per-microbatch time ratios of
	// backward-input and backward-weight relative to forward. Forward is
	// 1. The V3 production profile gives ~1.76 and ~0.425.
	TimeRatioB, TimeRatioW float64
	// OptimizerTime is the per-step optimizer/gradient-sync cost.
	OptimizerTime units.Seconds
	// UnoverlappedCommPerMB adds per-microbatch-per-stage exposed
	// communication (zero when DualPipe fully hides EP all-to-all,
	// which holds when comm time < backward time — checked by caller).
	UnoverlappedCommPerMB units.Seconds
}

// V3Config returns the production configuration of the paper.
func V3Config() Config {
	return Config{
		Model:            model.DeepSeekV3(),
		GPUs:             2048,
		PPStages:         16,
		DPRanks:          128,
		SeqLen:           4096,
		SeqsPerStep:      15360,
		Microbatches:     60,
		KernelEfficiency: 0.5025,
		TimeRatioB:       1.76,
		TimeRatioW:       0.425,
		OptimizerTime:    0.29,
	}
}

// Validate checks dimension consistency.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("trainsim: nil model")
	}
	if c.PPStages*c.DPRanks != c.GPUs {
		return fmt.Errorf("trainsim: PP(%d) x DP(%d) != GPUs(%d)", c.PPStages, c.DPRanks, c.GPUs)
	}
	if c.SeqsPerStep%(c.DPRanks*c.Microbatches) != 0 {
		return fmt.Errorf("trainsim: %d seqs/step not divisible into %d ranks x %d microbatches",
			c.SeqsPerStep, c.DPRanks, c.Microbatches)
	}
	if c.KernelEfficiency <= 0 || c.KernelEfficiency > 1 {
		return fmt.Errorf("trainsim: kernel efficiency %v out of (0,1]", c.KernelEfficiency)
	}
	return nil
}

// Costs derives the per-microbatch, per-stage task durations from the
// model FLOPs, the kernel efficiency and the B/W time ratios.
func (c Config) Costs() (pipeline.Costs, error) {
	if err := c.Validate(); err != nil {
		return pipeline.Costs{}, err
	}
	mbTokens := float64(c.SeqsPerStep) / float64(c.DPRanks) / float64(c.Microbatches) * float64(c.SeqLen)
	flopsPerStage := mbTokens * c.Model.TrainingFLOPsPerToken(c.SeqLen, true) / float64(c.PPStages)
	total := flopsPerStage / (H800PeakBF16 * c.KernelEfficiency)
	den := 1 + c.TimeRatioB + c.TimeRatioW
	f := total / den
	return pipeline.Costs{
		F: f + c.UnoverlappedCommPerMB,
		B: f*c.TimeRatioB + c.UnoverlappedCommPerMB,
		W: f * c.TimeRatioW,
	}, nil
}

// Metrics is the Table 4 row set.
type Metrics struct {
	TimePerStep     units.Seconds
	TokensPerStep   float64
	TokensPerDay    float64
	Phases          pipeline.Phases
	OptimizerTime   units.Seconds
	TFLOPSNonCausal float64 // achieved per GPU
	TFLOPSCausal    float64
	MFUNonCausal    float64
	MFUCausal       float64
}

// Run executes the analytic DualPipe schedule and assembles the
// metrics.
func (c Config) Run() (Metrics, error) {
	costs, err := c.Costs()
	if err != nil {
		return Metrics{}, err
	}
	sched, err := pipeline.AnalyticDualPipe(c.PPStages, c.Microbatches, costs)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		TokensPerStep: float64(c.SeqsPerStep) * float64(c.SeqLen),
		Phases:        sched.Phases,
		OptimizerTime: c.OptimizerTime,
	}
	m.TimePerStep = sched.Makespan + c.OptimizerTime
	m.TokensPerDay = m.TokensPerStep / m.TimePerStep * 86400
	perGPU := m.TokensPerStep / (float64(c.GPUs) * m.TimePerStep)
	m.TFLOPSCausal = perGPU * c.Model.TrainingFLOPsPerToken(c.SeqLen, true)
	m.TFLOPSNonCausal = perGPU * c.Model.TrainingFLOPsPerToken(c.SeqLen, false)
	m.MFUCausal = m.TFLOPSCausal / H800PeakBF16
	m.MFUNonCausal = m.TFLOPSNonCausal / H800PeakBF16
	return m, nil
}

// RunOneFOneB runs the same configuration under the classic 1F1B
// schedule via the event simulator — the baseline DualPipe improves on.
func (c Config) RunOneFOneB() (Metrics, error) {
	costs, err := c.Costs()
	if err != nil {
		return Metrics{}, err
	}
	sched, err := pipeline.Simulate(pipeline.OneFOneB, c.PPStages, c.Microbatches, costs)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		TokensPerStep: float64(c.SeqsPerStep) * float64(c.SeqLen),
		Phases:        sched.Phases,
		OptimizerTime: c.OptimizerTime,
	}
	m.TimePerStep = sched.Makespan + c.OptimizerTime
	m.TokensPerDay = m.TokensPerStep / m.TimePerStep * 86400
	perGPU := m.TokensPerStep / (float64(c.GPUs) * m.TimePerStep)
	m.TFLOPSCausal = perGPU * c.Model.TrainingFLOPsPerToken(c.SeqLen, true)
	m.TFLOPSNonCausal = perGPU * c.Model.TrainingFLOPsPerToken(c.SeqLen, false)
	m.MFUCausal = m.TFLOPSCausal / H800PeakBF16
	m.MFUNonCausal = m.TFLOPSNonCausal / H800PeakBF16
	return m, nil
}
