// Package moe implements the DeepSeekMoE router: sigmoid expert
// affinities, the group-limited ("node-limited") top-k selection of
// §4.3, expert placement across an EP group, and the aux-loss-free
// bias-based load balancing used by DeepSeek-V3. The routing statistics
// this package produces (how many distinct nodes a token touches) drive
// the DeepEP communication model and the §4.3 traffic-deduplication
// experiment.
package moe

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dsv3/internal/parallel"
)

// Gate is the expert router configuration.
type Gate struct {
	Experts int // routed experts (256 in V3)
	TopK    int // routed experts activated per token (8 in V3)
	// Groups partitions experts into contiguous groups (8 in V3, one
	// per node in the reference deployment).
	Groups int
	// GroupTopK limits each token to this many groups (4 in V3).
	// Zero disables the limit (the ablation baseline).
	GroupTopK int
}

// V3Gate returns DeepSeek-V3's gate: 256 experts, top-8, 8 groups,
// at most 4 groups per token.
func V3Gate() Gate { return Gate{Experts: 256, TopK: 8, Groups: 8, GroupTopK: 4} }

// Validate checks the configuration is routable.
func (g Gate) Validate() error {
	if g.Experts <= 0 || g.TopK <= 0 || g.TopK > g.Experts {
		return fmt.Errorf("moe: bad gate sizes %+v", g)
	}
	if g.Groups > 0 {
		if g.Experts%g.Groups != 0 {
			return fmt.Errorf("moe: experts (%d) must divide into groups (%d)", g.Experts, g.Groups)
		}
		if g.GroupTopK > 0 && g.TopK > g.GroupTopK*(g.Experts/g.Groups) {
			return fmt.Errorf("moe: top-%d cannot fit in %d groups of %d", g.TopK, g.GroupTopK, g.Experts/g.Groups)
		}
	}
	return nil
}

// GroupOf returns the group index of an expert.
func (g Gate) GroupOf(expert int) int { return expert / (g.Experts / g.Groups) }

// Route selects the top-k experts for one token given its per-expert
// affinity scores (higher is better; V3 uses sigmoid affinities).
// bias, if non-nil, is added to scores for *selection only* — the
// aux-loss-free balancing mechanism. The group limit is applied first:
// groups are ranked by the sum of their top-2 biased scores, the best
// GroupTopK groups survive, then the global top-k is taken inside them.
//
// Route allocates its result and a scratch Router per call; hot loops
// should hold a Router and call its Route method instead.
func (g Gate) Route(scores, bias []float64) []int {
	r := NewRouter(g)
	return append([]int(nil), r.Route(scores, bias)...)
}

// Router carries the reusable scratch of the routing computation so the
// per-token hot path (DeepEP traffic generation, Monte-Carlo routing
// statistics) runs without allocating. A Router is NOT safe for
// concurrent use; parallel runners hold one per worker task.
type Router struct {
	g          Gate
	groupScore []float64 // per-group top-2 sum
	groupTaken []bool    // groups already selected
	groupOK    []bool    // experts in selected groups are eligible
	topScore   []float64 // running top-k scores, descending
	out        []int     // result buffer, len TopK
}

// NewRouter allocates a Router for the gate. The gate should be valid;
// Route panics on malformed inputs exactly like Gate.Route.
func NewRouter(g Gate) *Router {
	r := &Router{g: g, topScore: make([]float64, 0, g.TopK), out: make([]int, 0, g.TopK)}
	if g.Groups > 0 {
		r.groupScore = make([]float64, g.Groups)
		r.groupTaken = make([]bool, g.Groups)
		r.groupOK = make([]bool, g.Groups)
	}
	return r
}

// Route selects the token's experts exactly like Gate.Route but without
// allocating: the returned slice (ascending expert IDs) aliases the
// Router's internal buffer and is valid until the next call.
func (r *Router) Route(scores, bias []float64) []int {
	g := r.g
	if len(scores) != g.Experts {
		panic(fmt.Sprintf("moe: got %d scores for %d experts", len(scores), g.Experts))
	}

	grouped := g.Groups > 0 && g.GroupTopK > 0 && g.GroupTopK < g.Groups
	perGroup := 0
	if grouped {
		perGroup = g.Experts / g.Groups
		for grp := 0; grp < g.Groups; grp++ {
			// Group score = sum of the top-2 member affinities (V3 rule).
			best, second := math.Inf(-1), math.Inf(-1)
			members := scores[grp*perGroup : (grp+1)*perGroup]
			if bias == nil {
				for _, s := range members {
					if s > best {
						best, second = s, best
					} else if s > second {
						second = s
					}
				}
			} else {
				gb := bias[grp*perGroup : (grp+1)*perGroup]
				for m, s := range members {
					s += gb[m]
					if s > best {
						best, second = s, best
					} else if s > second {
						second = s
					}
				}
			}
			r.groupScore[grp] = best + second
			r.groupTaken[grp] = false
			r.groupOK[grp] = false
		}
		// Pick the top GroupTopK groups by (score desc, index asc):
		// repeated argmax with strict > keeps the lowest index on ties,
		// matching a stable descending sort. The best < 0 clause accepts
		// the first unpicked group even when every score is -Inf (one
		// expert per group makes the top-2 sum -Inf across the board).
		for pick := 0; pick < g.GroupTopK; pick++ {
			best, bestScore := -1, math.Inf(-1)
			for grp := 0; grp < g.Groups; grp++ {
				if !r.groupTaken[grp] && (best < 0 || r.groupScore[grp] > bestScore) {
					best, bestScore = grp, r.groupScore[grp]
				}
			}
			r.groupTaken[best] = true
			r.groupOK[best] = true
		}
	}

	// Global top-k inside the surviving groups in one pass, maintaining
	// a small descending-ordered buffer. Candidates arrive in ascending
	// expert index; a candidate is inserted strictly after every kept
	// entry with an equal-or-higher score, so the buffer realizes the
	// (score desc, index asc) total order a stable sort would produce.
	r.topScore = r.topScore[:0]
	r.out = r.out[:0]
	consider := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			s := scores[e]
			if bias != nil {
				s += bias[e]
			}
			n := len(r.out)
			if n == g.TopK {
				if s <= r.topScore[n-1] {
					continue
				}
				n--
				r.topScore = r.topScore[:n]
				r.out = r.out[:n]
			}
			pos := n
			for pos > 0 && r.topScore[pos-1] < s {
				pos--
			}
			r.topScore = append(r.topScore, 0)
			r.out = append(r.out, 0)
			copy(r.topScore[pos+1:], r.topScore[pos:])
			copy(r.out[pos+1:], r.out[pos:])
			r.topScore[pos] = s
			r.out[pos] = e
		}
	}
	if grouped {
		for grp := 0; grp < g.Groups; grp++ {
			if r.groupOK[grp] {
				consider(grp*perGroup, (grp+1)*perGroup)
			}
		}
	} else {
		consider(0, g.Experts)
	}
	if len(r.out) < g.TopK {
		panic(fmt.Sprintf("moe: top-%d does not fit the allowed groups of %+v", g.TopK, g))
	}
	// Return ascending expert IDs (insertion sort; TopK is small).
	sortSmall(r.out)
	return r.out
}

// sortSmall is an allocation-free insertion sort for the tiny result
// slices the router produces (sort.Ints forces an interface escape).
func sortSmall(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// RandomScores draws i.i.d. sigmoid-like affinities in (0,1).
func (g Gate) RandomScores(rng *rand.Rand) []float64 {
	s := make([]float64, g.Experts)
	g.RandomScoresInto(s, rng)
	return s
}

// RandomScoresInto fills dst with i.i.d. affinities in (0,1), drawing
// exactly Experts variates; dst must have length Experts.
func (g Gate) RandomScoresInto(dst []float64, rng *rand.Rand) {
	if len(dst) != g.Experts {
		panic(fmt.Sprintf("moe: scores buffer %d for %d experts", len(dst), g.Experts))
	}
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

// Placement maps experts onto an EP group: Nodes hosts of GPUsPerNode
// GPUs, experts distributed contiguously (experts-per-GPU =
// Experts / (Nodes·GPUsPerNode)).
type Placement struct {
	Experts     int
	Nodes       int
	GPUsPerNode int
}

// Validate checks divisibility.
func (p Placement) Validate() error {
	total := p.Nodes * p.GPUsPerNode
	if total <= 0 || p.Experts%total != 0 {
		return fmt.Errorf("moe: %d experts cannot spread evenly over %d GPUs", p.Experts, total)
	}
	return nil
}

// PerGPU returns experts per GPU.
func (p Placement) PerGPU() int { return p.Experts / (p.Nodes * p.GPUsPerNode) }

// GPUOf returns the (node, gpu) hosting an expert.
func (p Placement) GPUOf(expert int) (node, gpu int) {
	g := expert / p.PerGPU()
	return g / p.GPUsPerNode, g % p.GPUsPerNode
}

// NodeOf returns the node hosting an expert.
func (p Placement) NodeOf(expert int) int {
	n, _ := p.GPUOf(expert)
	return n
}

// TokenDispatch summarizes where one token's experts live.
type TokenDispatch struct {
	Experts []int
	// Nodes is the deduplicated set of target nodes.
	Nodes []int
	// GPUsByNode maps a target node to the deduplicated GPU indices the
	// token must reach there (for NVLink forwarding fan-out).
	GPUsByNode map[int][]int
}

// Dispatch computes the dedup structure of a routed token.
func (p Placement) Dispatch(experts []int) TokenDispatch {
	td := TokenDispatch{Experts: experts, GPUsByNode: make(map[int][]int)}
	seenNode := map[int]bool{}
	seenGPU := map[[2]int]bool{}
	for _, e := range experts {
		n, g := p.GPUOf(e)
		if !seenNode[n] {
			seenNode[n] = true
			td.Nodes = append(td.Nodes, n)
		}
		if !seenGPU[[2]int{n, g}] {
			seenGPU[[2]int{n, g}] = true
			td.GPUsByNode[n] = append(td.GPUsByNode[n], g)
		}
	}
	sort.Ints(td.Nodes)
	for _, gpus := range td.GPUsByNode {
		sort.Ints(gpus)
	}
	return td
}

// Dispatcher computes the dedup structure of routed tokens without
// allocating: node and GPU target sets live in reusable mark arrays.
// Results alias internal buffers and are valid until the next Dispatch
// call. Not safe for concurrent use — hold one per worker task.
type Dispatcher struct {
	p        Placement
	nodeMark []bool
	gpuMark  []bool // [node*GPUsPerNode+gpu]
	nodes    []int  // deduplicated target nodes, ascending
	fanout   int
}

// NewDispatcher allocates a Dispatcher for a validated placement.
func NewDispatcher(p Placement) *Dispatcher {
	return &Dispatcher{
		p:        p,
		nodeMark: make([]bool, p.Nodes),
		gpuMark:  make([]bool, p.Nodes*p.GPUsPerNode),
		nodes:    make([]int, 0, p.Nodes),
	}
}

// Dispatch computes the dedup structure of one routed token. Target
// nodes are returned ascending via Nodes; per-node GPU membership is
// queried with HasGPU.
func (d *Dispatcher) Dispatch(experts []int) {
	for _, n := range d.nodes {
		d.nodeMark[n] = false
		base := n * d.p.GPUsPerNode
		for g := 0; g < d.p.GPUsPerNode; g++ {
			d.gpuMark[base+g] = false
		}
	}
	d.nodes = d.nodes[:0]
	d.fanout = 0
	for _, e := range experts {
		n, g := d.p.GPUOf(e)
		if !d.nodeMark[n] {
			d.nodeMark[n] = true
			// Insertion into ascending order (at most TopK nodes).
			d.nodes = append(d.nodes, n)
			for i := len(d.nodes) - 1; i > 0 && d.nodes[i-1] > d.nodes[i]; i-- {
				d.nodes[i-1], d.nodes[i] = d.nodes[i], d.nodes[i-1]
			}
		}
		if idx := n*d.p.GPUsPerNode + g; !d.gpuMark[idx] {
			d.gpuMark[idx] = true
			d.fanout++
		}
	}
}

// Nodes returns the deduplicated target nodes of the last Dispatch,
// ascending. The slice aliases internal state.
func (d *Dispatcher) Nodes() []int { return d.nodes }

// HasGPU reports whether the last Dispatch targets (node, gpu).
func (d *Dispatcher) HasGPU(node, gpu int) bool {
	return d.gpuMark[node*d.p.GPUsPerNode+gpu]
}

// GPUFanout returns the number of distinct (node, gpu) targets of the
// last Dispatch.
func (d *Dispatcher) GPUFanout() int { return d.fanout }

// RoutingStats aggregates dispatch structure over many tokens.
type RoutingStats struct {
	Tokens int
	// MeanNodes is E[M]: distinct target nodes per token (source node
	// included when targeted) — the paper's deduplicated IB cost factor.
	MeanNodes float64
	// MeanRemoteNodes excludes the source node: actual IB transfers.
	MeanRemoteNodes float64
	// MaxNodes is the worst-case M observed.
	MaxNodes int
	// MeanGPUFanout is the mean number of distinct (node,gpu) targets.
	MeanGPUFanout float64
	// ExpertLoad[e] counts how many tokens selected expert e.
	ExpertLoad []int
}

// CollectStats routes `tokens` synthetic tokens from the given source
// node and aggregates dispatch statistics. bias may be nil. The caller
// owns the RNG stream, so this path is inherently serial; the
// experiment runners use CollectStatsSeeded, which chunks the trials
// over the parallel engine.
func CollectStats(g Gate, p Placement, tokens, srcNode int, bias []float64, rng *rand.Rand) RoutingStats {
	acc := newStatsAccumulator(g, p, srcNode, bias)
	acc.routeTokens(tokens, rng)
	return acc.finish(tokens)
}

// statsChunkTokens is the Monte-Carlo granularity of
// CollectStatsSeeded: one RNG stream (and one scratch Router +
// Dispatcher) per 256-token chunk.
const statsChunkTokens = 256

// CollectStatsSeeded is CollectStats with per-chunk seed derivation:
// trials run in fixed 256-token chunks, each on its own RNG stream
// derived from (seed, chunk), fanned out over the parallel worker
// pool. Counters are integers, so the chunk merge is exact and the
// result is bit-identical for every worker count — including 1.
func CollectStatsSeeded(g Gate, p Placement, tokens, srcNode int, bias []float64, seed int64) RoutingStats {
	chunks := (tokens + statsChunkTokens - 1) / statsChunkTokens
	parts, _ := parallel.Map(chunks, func(ci int) (*statsAccumulator, error) {
		n := statsChunkTokens
		if rem := tokens - ci*statsChunkTokens; rem < n {
			n = rem
		}
		acc := newStatsAccumulator(g, p, srcNode, bias)
		acc.routeTokens(n, parallel.TaskRand(seed, ci))
		return acc, nil
	})
	total := newStatsAccumulator(g, p, srcNode, bias)
	for _, part := range parts {
		total.merge(part)
	}
	return total.finish(tokens)
}

// statsAccumulator holds integer routing counters (exact under any
// merge order) plus the per-task routing scratch.
type statsAccumulator struct {
	router  *Router
	disp    *Dispatcher
	scores  []float64
	bias    []float64
	srcNode int

	nodes, remote, fanout int
	maxNodes              int
	load                  []int
}

func newStatsAccumulator(g Gate, p Placement, srcNode int, bias []float64) *statsAccumulator {
	return &statsAccumulator{
		router:  NewRouter(g),
		disp:    NewDispatcher(p),
		scores:  make([]float64, g.Experts),
		bias:    bias,
		srcNode: srcNode,
		load:    make([]int, g.Experts),
	}
}

func (a *statsAccumulator) routeTokens(n int, rng *rand.Rand) {
	for t := 0; t < n; t++ {
		a.router.g.RandomScoresInto(a.scores, rng)
		experts := a.router.Route(a.scores, a.bias)
		a.disp.Dispatch(experts)
		targets := a.disp.Nodes()
		a.nodes += len(targets)
		if len(targets) > a.maxNodes {
			a.maxNodes = len(targets)
		}
		for _, node := range targets {
			if node != a.srcNode {
				a.remote++
			}
		}
		a.fanout += a.disp.GPUFanout()
		for _, e := range experts {
			a.load[e]++
		}
	}
}

func (a *statsAccumulator) merge(b *statsAccumulator) {
	a.nodes += b.nodes
	a.remote += b.remote
	a.fanout += b.fanout
	if b.maxNodes > a.maxNodes {
		a.maxNodes = b.maxNodes
	}
	for e, c := range b.load {
		a.load[e] += c
	}
}

func (a *statsAccumulator) finish(tokens int) RoutingStats {
	n := float64(tokens)
	return RoutingStats{
		Tokens:          tokens,
		MeanNodes:       float64(a.nodes) / n,
		MeanRemoteNodes: float64(a.remote) / n,
		MaxNodes:        a.maxNodes,
		MeanGPUFanout:   float64(a.fanout) / n,
		ExpertLoad:      a.load,
	}
}

// LoadBalancer implements DeepSeek-V3's aux-loss-free load balancing:
// a per-expert bias adjusted by a fixed step in the direction that
// evens out expert load. The bias only affects selection, never the
// gate weights.
type LoadBalancer struct {
	Bias []float64
	Step float64
}

// NewLoadBalancer creates a balancer for n experts.
func NewLoadBalancer(n int, step float64) *LoadBalancer {
	return &LoadBalancer{Bias: make([]float64, n), Step: step}
}

// Update nudges biases after observing a batch of expert loads:
// overloaded experts get pushed down, underloaded ones up.
func (lb *LoadBalancer) Update(load []int) {
	if len(load) != len(lb.Bias) {
		panic("moe: load/bias length mismatch")
	}
	total := 0
	for _, c := range load {
		total += c
	}
	mean := float64(total) / float64(len(load))
	for e, c := range load {
		switch {
		case float64(c) > mean:
			lb.Bias[e] -= lb.Step
		case float64(c) < mean:
			lb.Bias[e] += lb.Step
		}
	}
}

// LoadImbalance returns max/mean expert load, 1.0 being perfect.
func LoadImbalance(load []int) float64 {
	if len(load) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, c := range load {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(load))
	return float64(max) / mean
}
