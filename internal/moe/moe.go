// Package moe implements the DeepSeekMoE router: sigmoid expert
// affinities, the group-limited ("node-limited") top-k selection of
// §4.3, expert placement across an EP group, and the aux-loss-free
// bias-based load balancing used by DeepSeek-V3. The routing statistics
// this package produces (how many distinct nodes a token touches) drive
// the DeepEP communication model and the §4.3 traffic-deduplication
// experiment.
package moe

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Gate is the expert router configuration.
type Gate struct {
	Experts int // routed experts (256 in V3)
	TopK    int // routed experts activated per token (8 in V3)
	// Groups partitions experts into contiguous groups (8 in V3, one
	// per node in the reference deployment).
	Groups int
	// GroupTopK limits each token to this many groups (4 in V3).
	// Zero disables the limit (the ablation baseline).
	GroupTopK int
}

// V3Gate returns DeepSeek-V3's gate: 256 experts, top-8, 8 groups,
// at most 4 groups per token.
func V3Gate() Gate { return Gate{Experts: 256, TopK: 8, Groups: 8, GroupTopK: 4} }

// Validate checks the configuration is routable.
func (g Gate) Validate() error {
	if g.Experts <= 0 || g.TopK <= 0 || g.TopK > g.Experts {
		return fmt.Errorf("moe: bad gate sizes %+v", g)
	}
	if g.Groups > 0 {
		if g.Experts%g.Groups != 0 {
			return fmt.Errorf("moe: experts (%d) must divide into groups (%d)", g.Experts, g.Groups)
		}
		if g.GroupTopK > 0 && g.TopK > g.GroupTopK*(g.Experts/g.Groups) {
			return fmt.Errorf("moe: top-%d cannot fit in %d groups of %d", g.TopK, g.GroupTopK, g.Experts/g.Groups)
		}
	}
	return nil
}

// GroupOf returns the group index of an expert.
func (g Gate) GroupOf(expert int) int { return expert / (g.Experts / g.Groups) }

// Route selects the top-k experts for one token given its per-expert
// affinity scores (higher is better; V3 uses sigmoid affinities).
// bias, if non-nil, is added to scores for *selection only* — the
// aux-loss-free balancing mechanism. The group limit is applied first:
// groups are ranked by the sum of their top-2 biased scores, the best
// GroupTopK groups survive, then the global top-k is taken inside them.
func (g Gate) Route(scores, bias []float64) []int {
	if len(scores) != g.Experts {
		panic(fmt.Sprintf("moe: got %d scores for %d experts", len(scores), g.Experts))
	}
	sel := func(e int) float64 {
		if bias != nil {
			return scores[e] + bias[e]
		}
		return scores[e]
	}

	allowed := make([]bool, g.Experts)
	if g.Groups > 0 && g.GroupTopK > 0 && g.GroupTopK < g.Groups {
		perGroup := g.Experts / g.Groups
		type groupScore struct {
			group int
			score float64
		}
		gs := make([]groupScore, g.Groups)
		for grp := 0; grp < g.Groups; grp++ {
			// Group score = sum of the top-2 member affinities (V3 rule).
			best, second := math.Inf(-1), math.Inf(-1)
			for e := grp * perGroup; e < (grp+1)*perGroup; e++ {
				s := sel(e)
				if s > best {
					best, second = s, best
				} else if s > second {
					second = s
				}
			}
			gs[grp] = groupScore{grp, best + second}
		}
		sort.Slice(gs, func(a, b int) bool {
			if gs[a].score != gs[b].score {
				return gs[a].score > gs[b].score
			}
			return gs[a].group < gs[b].group
		})
		for _, x := range gs[:g.GroupTopK] {
			grp := x.group
			for e := grp * perGroup; e < (grp+1)*perGroup; e++ {
				allowed[e] = true
			}
		}
	} else {
		for e := range allowed {
			allowed[e] = true
		}
	}

	candidates := make([]int, 0, g.Experts)
	for e := 0; e < g.Experts; e++ {
		if allowed[e] {
			candidates = append(candidates, e)
		}
	}
	sort.Slice(candidates, func(a, b int) bool {
		sa, sb := sel(candidates[a]), sel(candidates[b])
		if sa != sb {
			return sa > sb
		}
		return candidates[a] < candidates[b]
	})
	out := append([]int(nil), candidates[:g.TopK]...)
	sort.Ints(out)
	return out
}

// RandomScores draws i.i.d. sigmoid-like affinities in (0,1).
func (g Gate) RandomScores(rng *rand.Rand) []float64 {
	s := make([]float64, g.Experts)
	for i := range s {
		s[i] = rng.Float64()
	}
	return s
}

// Placement maps experts onto an EP group: Nodes hosts of GPUsPerNode
// GPUs, experts distributed contiguously (experts-per-GPU =
// Experts / (Nodes·GPUsPerNode)).
type Placement struct {
	Experts     int
	Nodes       int
	GPUsPerNode int
}

// Validate checks divisibility.
func (p Placement) Validate() error {
	total := p.Nodes * p.GPUsPerNode
	if total <= 0 || p.Experts%total != 0 {
		return fmt.Errorf("moe: %d experts cannot spread evenly over %d GPUs", p.Experts, total)
	}
	return nil
}

// PerGPU returns experts per GPU.
func (p Placement) PerGPU() int { return p.Experts / (p.Nodes * p.GPUsPerNode) }

// GPUOf returns the (node, gpu) hosting an expert.
func (p Placement) GPUOf(expert int) (node, gpu int) {
	g := expert / p.PerGPU()
	return g / p.GPUsPerNode, g % p.GPUsPerNode
}

// NodeOf returns the node hosting an expert.
func (p Placement) NodeOf(expert int) int {
	n, _ := p.GPUOf(expert)
	return n
}

// TokenDispatch summarizes where one token's experts live.
type TokenDispatch struct {
	Experts []int
	// Nodes is the deduplicated set of target nodes.
	Nodes []int
	// GPUsByNode maps a target node to the deduplicated GPU indices the
	// token must reach there (for NVLink forwarding fan-out).
	GPUsByNode map[int][]int
}

// Dispatch computes the dedup structure of a routed token.
func (p Placement) Dispatch(experts []int) TokenDispatch {
	td := TokenDispatch{Experts: experts, GPUsByNode: make(map[int][]int)}
	seenNode := map[int]bool{}
	seenGPU := map[[2]int]bool{}
	for _, e := range experts {
		n, g := p.GPUOf(e)
		if !seenNode[n] {
			seenNode[n] = true
			td.Nodes = append(td.Nodes, n)
		}
		if !seenGPU[[2]int{n, g}] {
			seenGPU[[2]int{n, g}] = true
			td.GPUsByNode[n] = append(td.GPUsByNode[n], g)
		}
	}
	sort.Ints(td.Nodes)
	for _, gpus := range td.GPUsByNode {
		sort.Ints(gpus)
	}
	return td
}

// RoutingStats aggregates dispatch structure over many tokens.
type RoutingStats struct {
	Tokens int
	// MeanNodes is E[M]: distinct target nodes per token (source node
	// included when targeted) — the paper's deduplicated IB cost factor.
	MeanNodes float64
	// MeanRemoteNodes excludes the source node: actual IB transfers.
	MeanRemoteNodes float64
	// MaxNodes is the worst-case M observed.
	MaxNodes int
	// MeanGPUFanout is the mean number of distinct (node,gpu) targets.
	MeanGPUFanout float64
	// ExpertLoad[e] counts how many tokens selected expert e.
	ExpertLoad []int
}

// CollectStats routes `tokens` synthetic tokens from the given source
// node and aggregates dispatch statistics. bias may be nil.
func CollectStats(g Gate, p Placement, tokens, srcNode int, bias []float64, rng *rand.Rand) RoutingStats {
	st := RoutingStats{Tokens: tokens, ExpertLoad: make([]int, g.Experts)}
	for t := 0; t < tokens; t++ {
		experts := g.Route(g.RandomScores(rng), bias)
		td := p.Dispatch(experts)
		st.MeanNodes += float64(len(td.Nodes))
		if len(td.Nodes) > st.MaxNodes {
			st.MaxNodes = len(td.Nodes)
		}
		remote := 0
		fan := 0
		for _, n := range td.Nodes {
			if n != srcNode {
				remote++
			}
			fan += len(td.GPUsByNode[n])
		}
		st.MeanRemoteNodes += float64(remote)
		st.MeanGPUFanout += float64(fan)
		for _, e := range experts {
			st.ExpertLoad[e]++
		}
	}
	n := float64(tokens)
	st.MeanNodes /= n
	st.MeanRemoteNodes /= n
	st.MeanGPUFanout /= n
	return st
}

// LoadBalancer implements DeepSeek-V3's aux-loss-free load balancing:
// a per-expert bias adjusted by a fixed step in the direction that
// evens out expert load. The bias only affects selection, never the
// gate weights.
type LoadBalancer struct {
	Bias []float64
	Step float64
}

// NewLoadBalancer creates a balancer for n experts.
func NewLoadBalancer(n int, step float64) *LoadBalancer {
	return &LoadBalancer{Bias: make([]float64, n), Step: step}
}

// Update nudges biases after observing a batch of expert loads:
// overloaded experts get pushed down, underloaded ones up.
func (lb *LoadBalancer) Update(load []int) {
	if len(load) != len(lb.Bias) {
		panic("moe: load/bias length mismatch")
	}
	total := 0
	for _, c := range load {
		total += c
	}
	mean := float64(total) / float64(len(load))
	for e, c := range load {
		switch {
		case float64(c) > mean:
			lb.Bias[e] -= lb.Step
		case float64(c) < mean:
			lb.Bias[e] += lb.Step
		}
	}
}

// LoadImbalance returns max/mean expert load, 1.0 being perfect.
func LoadImbalance(load []int) float64 {
	if len(load) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, c := range load {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(load))
	return float64(max) / mean
}
