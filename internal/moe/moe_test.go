package moe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestV3GateValidates(t *testing.T) {
	if err := V3Gate().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGateValidateRejects(t *testing.T) {
	bad := []Gate{
		{Experts: 0, TopK: 1},
		{Experts: 8, TopK: 9},
		{Experts: 10, TopK: 2, Groups: 3},              // 10 % 3 != 0
		{Experts: 8, TopK: 8, Groups: 8, GroupTopK: 4}, // 8 experts can't fit in 4 groups of 1
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d (%+v) should fail validation", i, g)
		}
	}
}

func TestRouteReturnsTopKDistinct(t *testing.T) {
	g := V3Gate()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		experts := g.Route(g.RandomScores(rng), nil)
		if len(experts) != g.TopK {
			t.Fatalf("got %d experts, want %d", len(experts), g.TopK)
		}
		seen := map[int]bool{}
		for _, e := range experts {
			if e < 0 || e >= g.Experts {
				t.Fatalf("expert %d out of range", e)
			}
			if seen[e] {
				t.Fatalf("duplicate expert %d", e)
			}
			seen[e] = true
		}
	}
}

func TestRouteRespectsGroupLimit(t *testing.T) {
	g := V3Gate()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		experts := g.Route(g.RandomScores(rng), nil)
		groups := map[int]bool{}
		for _, e := range experts {
			groups[g.GroupOf(e)] = true
		}
		if len(groups) > g.GroupTopK {
			t.Fatalf("token touched %d groups, limit %d", len(groups), g.GroupTopK)
		}
	}
}

func TestRoutePicksHighestScores(t *testing.T) {
	g := Gate{Experts: 8, TopK: 2, Groups: 2, GroupTopK: 2}
	scores := []float64{0.1, 0.9, 0.2, 0.3, 0.8, 0.1, 0.1, 0.1}
	experts := g.Route(scores, nil)
	if len(experts) != 2 || experts[0] != 1 || experts[1] != 4 {
		t.Errorf("Route = %v, want [1 4]", experts)
	}
}

func TestRouteGroupLimitExcludesBestExpert(t *testing.T) {
	// Group limiting can exclude a high-scoring expert when its group
	// loses the group-level competition. 4 groups of 2, limit 1 group,
	// top-2: group scores (top-2 sums): g0 = 1.4, g1 = 0.95 even though
	// g1 holds the single best expert 0.90? No — make g0's pair beat
	// g1's: selection must stay within the winning group.
	g := Gate{Experts: 8, TopK: 2, Groups: 4, GroupTopK: 1}
	scores := []float64{0.7, 0.7, 0.9, 0.0, 0.1, 0.1, 0.1, 0.1}
	experts := g.Route(scores, nil)
	// g0 sum = 1.4 > g1 sum = 0.9: both picks come from group 0.
	if experts[0] != 0 || experts[1] != 1 {
		t.Errorf("Route = %v, want [0 1] (group-limited)", experts)
	}
}

// One expert per group makes every group's top-2 sum -Inf (no second
// member); selection must still pick the leading groups rather than
// none (regression: the argmax over all-(-Inf) scores used to panic).
func TestRouteSingleExpertGroups(t *testing.T) {
	g := Gate{Experts: 4, TopK: 2, Groups: 4, GroupTopK: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	experts := g.Route([]float64{0.1, 0.9, 0.5, 0.7}, nil)
	// Groups tie at -Inf, so groups 0 and 1 survive; top-2 inside them
	// is experts 0 and 1.
	if len(experts) != 2 || experts[0] != 0 || experts[1] != 1 {
		t.Errorf("Route = %v, want [0 1]", experts)
	}
}

func TestRouteDeterministic(t *testing.T) {
	g := V3Gate()
	rng := rand.New(rand.NewSource(43))
	scores := g.RandomScores(rng)
	a := g.Route(scores, nil)
	b := g.Route(scores, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("routing must be deterministic")
		}
	}
}

func TestRouteBiasChangesSelection(t *testing.T) {
	g := Gate{Experts: 4, TopK: 1, Groups: 1, GroupTopK: 1}
	scores := []float64{0.5, 0.4, 0.3, 0.2}
	bias := []float64{0, 0.2, 0, 0}
	if e := g.Route(scores, nil); e[0] != 0 {
		t.Errorf("unbiased pick = %v, want 0", e)
	}
	if e := g.Route(scores, bias); e[0] != 1 {
		t.Errorf("biased pick = %v, want 1", e)
	}
}

func TestPlacement(t *testing.T) {
	p := Placement{Experts: 256, Nodes: 8, GPUsPerNode: 8}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PerGPU() != 4 {
		t.Errorf("experts per GPU = %d, want 4", p.PerGPU())
	}
	if p.NodeOf(0) != 0 || p.NodeOf(255) != 7 {
		t.Error("node mapping endpoints wrong")
	}
	n, g := p.GPUOf(5)
	if n != 0 || g != 1 {
		t.Errorf("GPUOf(5) = (%d,%d), want (0,1)", n, g)
	}
}

func TestPlacementValidateRejects(t *testing.T) {
	if err := (Placement{Experts: 10, Nodes: 3, GPUsPerNode: 1}).Validate(); err == nil {
		t.Error("uneven placement must be rejected")
	}
}

func TestDispatchDedup(t *testing.T) {
	p := Placement{Experts: 16, Nodes: 2, GPUsPerNode: 2} // 4 per GPU
	td := p.Dispatch([]int{0, 1, 4, 8})
	// experts 0,1 -> (0,0); 4 -> (0,1); 8 -> (1,0)
	if len(td.Nodes) != 2 {
		t.Fatalf("nodes = %v, want 2 distinct", td.Nodes)
	}
	if got := td.GPUsByNode[0]; len(got) != 2 {
		t.Errorf("node 0 GPUs = %v, want [0 1]", got)
	}
	if got := td.GPUsByNode[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("node 1 GPUs = %v, want [0]", got)
	}
}

// §4.3's core claim: node-limited routing caps M at 4 and reduces the
// mean IB traffic factor vs unrestricted top-k.
func TestNodeLimitedRoutingReducesIBTraffic(t *testing.T) {
	p := Placement{Experts: 256, Nodes: 8, GPUsPerNode: 8}
	rng := rand.New(rand.NewSource(44))
	limited := CollectStats(V3Gate(), p, 2000, 0, nil, rng)
	free := V3Gate()
	free.GroupTopK = 0
	rng2 := rand.New(rand.NewSource(44))
	unlimited := CollectStats(free, p, 2000, 0, nil, rng2)

	if limited.MaxNodes > 4 {
		t.Errorf("node-limited routing exceeded 4 nodes: %d", limited.MaxNodes)
	}
	if unlimited.MaxNodes <= 4 {
		t.Errorf("unrestricted routing should exceed 4 nodes sometimes, max %d", unlimited.MaxNodes)
	}
	if limited.MeanRemoteNodes >= unlimited.MeanRemoteNodes {
		t.Errorf("dedup factor should improve: limited %v vs unlimited %v",
			limited.MeanRemoteNodes, unlimited.MeanRemoteNodes)
	}
	// Unrestricted top-8 over 8 nodes touches ~5.2 nodes on average;
	// limited routing caps near 4.
	if limited.MeanNodes > 4.0 || unlimited.MeanNodes < 4.6 {
		t.Errorf("means off: limited %v, unlimited %v", limited.MeanNodes, unlimited.MeanNodes)
	}
}

func TestCollectStatsLoadSums(t *testing.T) {
	p := Placement{Experts: 256, Nodes: 4, GPUsPerNode: 8}
	rng := rand.New(rand.NewSource(45))
	st := CollectStats(V3Gate(), p, 500, 0, nil, rng)
	total := 0
	for _, c := range st.ExpertLoad {
		total += c
	}
	if total != 500*8 {
		t.Errorf("expert load total = %d, want %d", total, 500*8)
	}
}

func TestLoadBalancerConvergesUnderSkew(t *testing.T) {
	// Skewed affinities (some experts systematically hotter) must be
	// flattened by the bias updates — the aux-loss-free mechanism.
	g := Gate{Experts: 32, TopK: 4, Groups: 4, GroupTopK: 4}
	rng := rand.New(rand.NewSource(46))
	hot := make([]float64, g.Experts)
	for e := range hot {
		if e%8 == 0 {
			hot[e] = 0.3 // systematically advantaged experts
		}
	}
	score := func() []float64 {
		s := g.RandomScores(rng)
		for e := range s {
			s[e] += hot[e]
		}
		return s
	}
	lb := NewLoadBalancer(g.Experts, 0.01)
	var before, after float64
	for round := 0; round < 60; round++ {
		load := make([]int, g.Experts)
		for tok := 0; tok < 200; tok++ {
			for _, e := range g.Route(score(), lb.Bias) {
				load[e]++
			}
		}
		if round == 0 {
			before = LoadImbalance(load)
		}
		after = LoadImbalance(load)
		lb.Update(load)
	}
	if before < 2 {
		t.Fatalf("skew not severe enough to test: imbalance %v", before)
	}
	if after > before*0.6 {
		t.Errorf("balancer should cut imbalance: before %v, after %v", before, after)
	}
}

func TestLoadImbalanceEdgeCases(t *testing.T) {
	if LoadImbalance(nil) != 0 {
		t.Error("empty load should be 0")
	}
	if LoadImbalance([]int{0, 0}) != 0 {
		t.Error("zero load should be 0")
	}
	if LoadImbalance([]int{2, 2}) != 1 {
		t.Error("uniform load should be exactly 1")
	}
}

// Property: routing never violates the group cap, for random gate shapes.
func TestRouteGroupCapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		groups := 2 + r.Intn(6)          // 2..7
		perGroup := 2 + r.Intn(6)        // 2..7
		gtk := 1 + r.Intn(groups)        // 1..groups
		topk := 1 + r.Intn(gtk*perGroup) // fits in the allowed groups
		g := Gate{Experts: groups * perGroup, TopK: topk, Groups: groups, GroupTopK: gtk}
		if err := g.Validate(); err != nil {
			return false
		}
		experts := g.Route(g.RandomScores(r), nil)
		seen := map[int]bool{}
		for _, e := range experts {
			seen[g.GroupOf(e)] = true
		}
		return len(seen) <= gtk && len(experts) == topk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
