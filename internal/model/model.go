// Package model describes transformer model architectures at the level
// of detail the paper's analyses need: parameter counts, per-token KV
// cache footprints (Table 1), per-token training cost (Table 2), and
// decode-time memory rooflines (§2.2.2).
//
// The published configurations of the models the paper compares —
// DeepSeek-V2/V3, Qwen2.5-72B and LLaMA-3.1-405B — are provided as
// constructors and are the ground truth for the Table 1/2 reproductions.
package model

import "fmt"

// AttentionKind identifies the attention memory layout, which determines
// the KV cache footprint (§2.1.2).
type AttentionKind int

const (
	// MHA is classic multi-head attention: every head caches its own KV.
	MHA AttentionKind = iota
	// GQA shares one KV head among a group of query heads.
	GQA
	// MQA shares a single KV head across all query heads.
	MQA
	// MLA caches a single compressed latent vector plus the shared RoPE
	// key per token (DeepSeek-V2/V3).
	MLA
)

// String implements fmt.Stringer.
func (k AttentionKind) String() string {
	switch k {
	case MHA:
		return "MHA"
	case GQA:
		return "GQA"
	case MQA:
		return "MQA"
	case MLA:
		return "MLA"
	}
	return fmt.Sprintf("AttentionKind(%d)", int(k))
}

// Attention holds the attention-block hyperparameters. For GQA/MQA/MHA
// only NumQueryHeads, NumKVHeads and HeadDim are used. For MLA the
// low-rank and decoupled-RoPE dimensions apply.
type Attention struct {
	Kind          AttentionKind
	NumQueryHeads int
	NumKVHeads    int // GQA group count; equals NumQueryHeads for MHA, 1 for MQA
	HeadDim       int

	// MLA-specific dimensions (DeepSeek-V2/V3 naming).
	QLoraRank  int // query low-rank compression dim
	KVLoraRank int // KV latent dim (the cached vector)
	QKNopeDim  int // per-head non-positional QK dim
	QKRopeDim  int // shared RoPE key dim (also cached)
	VHeadDim   int // per-head value dim
}

// QKDim returns the per-head query/key dot-product width.
func (a Attention) QKDim() int {
	if a.Kind == MLA {
		return a.QKNopeDim + a.QKRopeDim
	}
	return a.HeadDim
}

// VDim returns the per-head value width.
func (a Attention) VDim() int {
	if a.Kind == MLA {
		return a.VHeadDim
	}
	return a.HeadDim
}

// MoE holds the sparse-FFN hyperparameters of a DeepSeekMoE-style model.
type MoE struct {
	RoutedExperts   int // total routed experts (256 in V3)
	SharedExperts   int // always-active experts (1 in V3)
	ActivatedRouted int // top-k routed experts per token (8 in V3)
	ExpertInter     int // FFN intermediate size of one expert
	// Groups and GroupTopK encode node-limited routing (§4.3): experts
	// are split into Groups groups (one per node) and each token may
	// touch at most GroupTopK groups (4 in V3).
	Groups    int
	GroupTopK int
	// FirstDenseLayers replaces the first k layers' MoE with a dense FFN
	// of DenseInter width (3 layers in V3).
	FirstDenseLayers int
	DenseInter       int
}

// Config is a complete model description.
type Config struct {
	Name   string
	Hidden int
	Layers int
	Vocab  int

	Attention Attention
	// MoE is nil for dense models; DenseInter then gives the FFN width.
	MoE        *MoE
	DenseInter int

	TiedEmbeddings bool
	// MTPModules counts the multi-token-prediction modules (1 in V3);
	// each is one extra single-layer transformer plus a projection.
	MTPModules int
}

// DeepSeekV3 returns the published DeepSeek-V3 configuration
// (671B total, 37B activated).
func DeepSeekV3() *Config {
	return &Config{
		Name:   "DeepSeek-V3 (MLA, MoE-671B)",
		Hidden: 7168,
		Layers: 61,
		Vocab:  129280,
		Attention: Attention{
			Kind:          MLA,
			NumQueryHeads: 128,
			QLoraRank:     1536,
			KVLoraRank:    512,
			QKNopeDim:     128,
			QKRopeDim:     64,
			VHeadDim:      128,
		},
		MoE: &MoE{
			RoutedExperts:    256,
			SharedExperts:    1,
			ActivatedRouted:  8,
			ExpertInter:      2048,
			Groups:           8,
			GroupTopK:        4,
			FirstDenseLayers: 3,
			DenseInter:       18432,
		},
		MTPModules: 1,
	}
}

// DeepSeekV2 returns the published DeepSeek-V2 configuration
// (236B total, 21B activated).
func DeepSeekV2() *Config {
	return &Config{
		Name:   "DeepSeek-V2 (MLA, MoE-236B)",
		Hidden: 5120,
		Layers: 60,
		Vocab:  102400,
		Attention: Attention{
			Kind:          MLA,
			NumQueryHeads: 128,
			QLoraRank:     1536,
			KVLoraRank:    512,
			QKNopeDim:     128,
			QKRopeDim:     64,
			VHeadDim:      128,
		},
		MoE: &MoE{
			RoutedExperts:    160,
			SharedExperts:    2,
			ActivatedRouted:  6,
			ExpertInter:      1536,
			Groups:           8,
			GroupTopK:        3,
			FirstDenseLayers: 1,
			DenseInter:       12288,
		},
	}
}

// Qwen72B returns the published Qwen2.5-72B dense configuration.
func Qwen72B() *Config {
	return &Config{
		Name:   "Qwen-2.5 72B (GQA, dense)",
		Hidden: 8192,
		Layers: 80,
		Vocab:  152064,
		Attention: Attention{
			Kind:          GQA,
			NumQueryHeads: 64,
			NumKVHeads:    8,
			HeadDim:       128,
		},
		DenseInter: 29568,
	}
}

// LLaMA405B returns the published LLaMA-3.1 405B dense configuration.
func LLaMA405B() *Config {
	return &Config{
		Name:   "LLaMA-3.1 405B (GQA, dense)",
		Hidden: 16384,
		Layers: 126,
		Vocab:  128256,
		Attention: Attention{
			Kind:          GQA,
			NumQueryHeads: 128,
			NumKVHeads:    8,
			HeadDim:       128,
		},
		DenseInter: 53248,
	}
}

// Dense70B returns a LLaMA-2-70B-like dense proxy, used by the §2.2.2
// local-deployment comparison ("dense models of similar capability,
// e.g. 70B parameters").
func Dense70B() *Config {
	return &Config{
		Name:   "Dense-70B proxy (GQA)",
		Hidden: 8192,
		Layers: 80,
		Vocab:  32000,
		Attention: Attention{
			Kind:          GQA,
			NumQueryHeads: 64,
			NumKVHeads:    8,
			HeadDim:       128,
		},
		DenseInter: 28672,
	}
}

// Dense7B returns the ~7B dense model the paper used to validate LogFMT
// (§3.2: "dense language models with around 7 billion parameters").
func Dense7B() *Config {
	return &Config{
		Name:   "Dense-7B proxy (MHA)",
		Hidden: 4096,
		Layers: 32,
		Vocab:  32000,
		Attention: Attention{
			Kind:          MHA,
			NumQueryHeads: 32,
			NumKVHeads:    32,
			HeadDim:       128,
		},
		DenseInter: 11008,
	}
}

// ParamCounts is the parameter inventory of a Config, in parameters
// (multiply by bytes/param for memory).
type ParamCounts struct {
	Embedding          float64 // input (+output if untied) embeddings
	AttentionPerLayer  float64
	DenseFFNPerLayer   float64 // dense FFN width (dense layers / dense model)
	ExpertParams       float64 // one expert's FFN params (MoE only)
	RouterPerLayer     float64 // gate projection (MoE only)
	MTP                float64 // multi-token-prediction module params
	Total              float64
	TotalNonEmbedding  float64
	Active             float64 // activated per token (main model), embeddings included
	ActiveNonEmbedding float64
}

// Params computes the parameter inventory.
func (c *Config) Params() ParamCounts {
	var p ParamCounts
	h := float64(c.Hidden)
	a := c.Attention

	switch a.Kind {
	case MLA:
		qDown := h * float64(a.QLoraRank)
		qUp := float64(a.QLoraRank) * float64(a.NumQueryHeads*(a.QKNopeDim+a.QKRopeDim))
		kvDown := h * float64(a.KVLoraRank+a.QKRopeDim)
		kvUp := float64(a.KVLoraRank) * float64(a.NumQueryHeads*(a.QKNopeDim+a.VHeadDim))
		out := float64(a.NumQueryHeads*a.VHeadDim) * h
		p.AttentionPerLayer = qDown + qUp + kvDown + kvUp + out
	default:
		q := h * float64(a.NumQueryHeads*a.HeadDim)
		kv := 2 * h * float64(a.NumKVHeads*a.HeadDim)
		out := float64(a.NumQueryHeads*a.HeadDim) * h
		p.AttentionPerLayer = q + kv + out
	}

	embeds := float64(c.Vocab) * h
	if !c.TiedEmbeddings {
		embeds *= 2
	}
	p.Embedding = embeds

	ffn := func(inter int) float64 { return 3 * h * float64(inter) } // SwiGLU: gate, up, down

	if c.MoE == nil {
		p.DenseFFNPerLayer = ffn(c.DenseInter)
		layers := float64(c.Layers)
		p.Total = p.Embedding + layers*(p.AttentionPerLayer+p.DenseFFNPerLayer)
		p.Active = p.Total
	} else {
		m := c.MoE
		p.DenseFFNPerLayer = ffn(m.DenseInter)
		p.ExpertParams = ffn(m.ExpertInter)
		p.RouterPerLayer = h * float64(m.RoutedExperts)
		moeLayers := float64(c.Layers - m.FirstDenseLayers)
		denseLayers := float64(m.FirstDenseLayers)

		moeFFNTotal := float64(m.RoutedExperts+m.SharedExperts) * p.ExpertParams
		moeFFNActive := float64(m.ActivatedRouted+m.SharedExperts) * p.ExpertParams

		p.Total = p.Embedding +
			float64(c.Layers)*p.AttentionPerLayer +
			denseLayers*p.DenseFFNPerLayer +
			moeLayers*(moeFFNTotal+p.RouterPerLayer)
		p.Active = p.Embedding +
			float64(c.Layers)*p.AttentionPerLayer +
			denseLayers*p.DenseFFNPerLayer +
			moeLayers*(moeFFNActive+p.RouterPerLayer)
	}

	// Each MTP module is one more transformer layer plus the
	// concatenation projection (2h -> h). It contributes to the total
	// parameter count and to training cost, but the official "activated
	// per token" figure (37B for V3) refers to the main model only, so
	// it is kept out of Active.
	if c.MTPModules > 0 {
		perLayerActive := p.AttentionPerLayer + c.perLayerActiveFFN()
		p.MTP = float64(c.MTPModules) * (perLayerActive + 2*h*h)
		p.Total += p.MTP
	}

	p.TotalNonEmbedding = p.Total - p.Embedding
	p.ActiveNonEmbedding = p.Active - p.Embedding
	return p
}

// perLayerActiveFFN returns the activated FFN params of a typical layer.
func (c *Config) perLayerActiveFFN() float64 {
	h := float64(c.Hidden)
	if c.MoE == nil {
		return 3 * h * float64(c.DenseInter)
	}
	m := c.MoE
	return float64(m.ActivatedRouted+m.SharedExperts)*3*h*float64(m.ExpertInter) + h*float64(m.RoutedExperts)
}

// KVCacheBytesPerToken returns the KV cache footprint of one token at
// the given element width (2 bytes for the BF16 comparison in Table 1).
func (c *Config) KVCacheBytesPerToken(bytesPerElem float64) float64 {
	a := c.Attention
	var elems int
	switch a.Kind {
	case MLA:
		// Only the latent vector and the shared RoPE key are cached.
		elems = a.KVLoraRank + a.QKRopeDim
	case MQA:
		elems = 2 * a.HeadDim
	default: // MHA, GQA
		elems = 2 * a.NumKVHeads * a.HeadDim
	}
	return float64(elems) * bytesPerElem * float64(c.Layers)
}

// TrainingFLOPsPerToken estimates the training cost of one token at the
// given sequence length, following the standard 6N + attention
// decomposition the paper's Table 2 uses:
//
//	cost = 6 × (active non-embedding params)
//	     + 3 × 2 × heads × (qkDim + vDim) × ctx × layers
//
// where ctx is seqLen/2 for causal attention (FlashAttention-style
// lower-triangle counting) and seqLen for non-causal (Megatron-style).
// During training the MTP modules run on every token, so their
// parameters and attention layers are included here even though they are
// excluded from the "activated per token" inference figure.
func (c *Config) TrainingFLOPsPerToken(seqLen int, causal bool) float64 {
	p := c.Params()
	linear := 6 * (p.ActiveNonEmbedding + p.MTP)

	ctx := float64(seqLen)
	if causal {
		ctx /= 2
	}
	a := c.Attention
	perLayer := 2 * float64(a.NumQueryHeads) * float64(a.QKDim()+a.VDim()) * ctx
	attnLayers := float64(c.Layers + c.MTPModules)
	attn := 3 * perLayer * attnLayers

	return linear + attn
}
