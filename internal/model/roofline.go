package model

import "dsv3/internal/units"

// Deployment describes a local/on-premises inference target for the
// §2.2.2 analysis. Decode on such systems is memory-bandwidth bound:
// every generated token streams the activated parameters through the
// memory system once, so TPS ≈ effective bandwidth / bytes-per-token.
type Deployment struct {
	Name string
	// MemBandwidth is the peak bandwidth of the memory that holds the
	// streamed parameters (unified memory for an AI SoC; host DRAM for a
	// KTransformers-style CPU+GPU split).
	MemBandwidth units.BytesPerSecond
	// Efficiency is the achieved fraction of peak bandwidth (0..1].
	Efficiency float64
	// BytesPerParam is the stored width: 2 (BF16), 1 (FP8), 0.5 (Q4).
	BytesPerParam float64
	// OffloadExperts models the KTransformers split (§2.2.2): attention
	// and shared experts live in GPU VRAM (fast), and only the routed
	// experts stream from host memory — so only they count against
	// MemBandwidth.
	OffloadExperts bool
}

// AISoC returns a 2024-class AI PC SoC (Apple M4-Max / Ryzen AI Max
// class): ~500 GB/s unified memory.
func AISoC() Deployment {
	return Deployment{
		Name:          "AI SoC (unified memory ~546 GB/s)",
		MemBandwidth:  546 * units.GB,
		Efficiency:    0.85,
		BytesPerParam: 1, // FP8 weights
	}
}

// ConsumerGPUServer returns the ~$10k KTransformers deployment from the
// paper: one consumer GPU plus a dual-socket server whose DRAM streams
// the routed experts (4-bit quantized).
func ConsumerGPUServer() Deployment {
	return Deployment{
		Name:           "Consumer-GPU server (KTransformers, DDR5 ~560 GB/s)",
		MemBandwidth:   560 * units.GB,
		Efficiency:     0.65,
		BytesPerParam:  0.5, // Q4 experts
		OffloadExperts: true,
	}
}

// BytesPerToken returns how many bytes one decoded token streams from
// the deployment's bandwidth-limiting memory.
func (d Deployment) BytesPerToken(c *Config) float64 {
	p := c.Params()
	params := p.Active
	if d.OffloadExperts && c.MoE != nil {
		// Only the routed experts stream from host memory.
		moeLayers := float64(c.Layers - c.MoE.FirstDenseLayers)
		params = float64(c.MoE.ActivatedRouted) * p.ExpertParams * moeLayers
	}
	return params * d.BytesPerParam
}

// DecodeTPS returns the roofline decode speed, in tokens per second, of
// the model on this deployment for a single request (batch 1).
func (d Deployment) DecodeTPS(c *Config) float64 {
	bytes := d.BytesPerToken(c)
	if bytes == 0 {
		return 0
	}
	return d.MemBandwidth * d.Efficiency / bytes
}
