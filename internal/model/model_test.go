package model

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestDeepSeekV3ParamCounts(t *testing.T) {
	p := DeepSeekV3().Params()
	within(t, "total params", p.Total, 671e9, 0.01)
	within(t, "active params", p.Active, 37e9, 0.02)
}

func TestDeepSeekV2ParamCounts(t *testing.T) {
	p := DeepSeekV2().Params()
	within(t, "total params", p.Total, 236e9, 0.01)
	within(t, "active params", p.Active, 21e9, 0.03)
}

func TestQwen72BParamCounts(t *testing.T) {
	p := Qwen72B().Params()
	within(t, "total params", p.Total, 72.7e9, 0.02)
	if p.Active != p.Total {
		t.Error("dense model must activate all parameters")
	}
}

func TestLLaMA405BParamCounts(t *testing.T) {
	p := LLaMA405B().Params()
	within(t, "total params", p.Total, 405e9, 0.01)
}

func TestDense7BParamCounts(t *testing.T) {
	p := Dense7B().Params()
	within(t, "total params", p.Total, 6.7e9, 0.05)
}

// Table 1: KV cache per token at BF16.
func TestTable1KVCacheExact(t *testing.T) {
	cases := []struct {
		cfg  *Config
		want float64 // bytes
	}{
		{DeepSeekV3(), 70272},
		{Qwen72B(), 327680},
		{LLaMA405B(), 516096},
	}
	for _, c := range cases {
		if got := c.cfg.KVCacheBytesPerToken(2); got != c.want {
			t.Errorf("%s KV cache = %v B, want %v B", c.cfg.Name, got, c.want)
		}
	}
}

func TestKVCacheMultipliers(t *testing.T) {
	v3 := DeepSeekV3().KVCacheBytesPerToken(2)
	qwen := Qwen72B().KVCacheBytesPerToken(2)
	llama := LLaMA405B().KVCacheBytesPerToken(2)
	within(t, "Qwen multiplier", qwen/v3, 4.66, 0.01)
	// The paper prints 7.28x; the configs give 516096/70272 = 7.34x.
	within(t, "LLaMA multiplier", llama/v3, 7.34, 0.01)
}

func TestKVCacheKinds(t *testing.T) {
	base := Dense7B() // MHA: 32 KV heads
	mha := base.KVCacheBytesPerToken(2)
	gqaCfg := *base
	gqaCfg.Attention.Kind = GQA
	gqaCfg.Attention.NumKVHeads = 8
	gqa := gqaCfg.KVCacheBytesPerToken(2)
	mqaCfg := *base
	mqaCfg.Attention.Kind = MQA
	mqa := mqaCfg.KVCacheBytesPerToken(2)
	if !(mqa < gqa && gqa < mha) {
		t.Errorf("expected MQA < GQA < MHA, got %v, %v, %v", mqa, gqa, mha)
	}
	if mha/gqa != 4 {
		t.Errorf("GQA with 8 of 32 heads should be 4x smaller, got %v", mha/gqa)
	}
	if mha/mqa != 32 {
		t.Errorf("MQA should be 32x smaller than MHA, got %v", mha/mqa)
	}
}

// Table 2: training GFLOPs per token at sequence length 4096, causal.
func TestTable2TrainingCost(t *testing.T) {
	cases := []struct {
		cfg   *Config
		paper float64 // GFLOPs/token
		tol   float64
	}{
		{DeepSeekV2(), 155, 0.05},
		{DeepSeekV3(), 250, 0.05},
		// The paper's Qwen number (394) implies ~65.7B non-embedding
		// params, below the published 70B; our principled count lands
		// ~10% above. Documented in EXPERIMENTS.md.
		{Qwen72B(), 394, 0.12},
		{LLaMA405B(), 2448, 0.02},
	}
	for _, c := range cases {
		got := c.cfg.TrainingFLOPsPerToken(4096, true) / 1e9
		within(t, c.cfg.Name+" GFLOPs/token", got, c.paper, c.tol)
	}
}

func TestMoEVsDenseCostGap(t *testing.T) {
	// The qualitative claim of §2.2.1: the 671B MoE trains cheaper per
	// token than a 72B dense model, and ~10x cheaper than 405B dense.
	v3 := DeepSeekV3().TrainingFLOPsPerToken(4096, true)
	qwen := Qwen72B().TrainingFLOPsPerToken(4096, true)
	llama := LLaMA405B().TrainingFLOPsPerToken(4096, true)
	if v3 >= qwen {
		t.Errorf("V3 (%v) must cost less than Qwen-72B dense (%v)", v3, qwen)
	}
	if llama/v3 < 8 {
		t.Errorf("405B dense should be ~10x V3, got %vx", llama/v3)
	}
}

func TestCausalVsNonCausal(t *testing.T) {
	cfg := DeepSeekV3()
	causal := cfg.TrainingFLOPsPerToken(4096, true)
	nonCausal := cfg.TrainingFLOPsPerToken(4096, false)
	if nonCausal <= causal {
		t.Error("non-causal attention counts more FLOPs")
	}
	// The gap is exactly the attention term: nc - c = 3*perLayer*ctx/2.
	gap := nonCausal - causal
	p := cfg.Params()
	linear := 6 * (p.ActiveNonEmbedding + p.MTP)
	if causal-linear <= 0 || math.Abs(gap-(causal-linear)) > 1e-6*gap {
		t.Errorf("attention accounting inconsistent: gap %v, causal attn %v", gap, causal-linear)
	}
}

func TestTrainingCostScalesWithSeqLen(t *testing.T) {
	cfg := Qwen72B()
	short := cfg.TrainingFLOPsPerToken(1024, true)
	long := cfg.TrainingFLOPsPerToken(8192, true)
	if long <= short {
		t.Error("longer sequences must cost more per token (attention term)")
	}
}

func TestAttentionKindString(t *testing.T) {
	if MLA.String() != "MLA" || GQA.String() != "GQA" || MHA.String() != "MHA" || MQA.String() != "MQA" {
		t.Error("AttentionKind string names wrong")
	}
	if AttentionKind(42).String() != "AttentionKind(42)" {
		t.Error("unknown kind should be explicit")
	}
}

// §2.2.2: local deployment rooflines.
func TestLocalDeploymentTPS(t *testing.T) {
	soc := AISoC()
	v2 := soc.DecodeTPS(DeepSeekV2())
	if v2 < 15 || v2 > 40 {
		t.Errorf("V2 on AI SoC should reach ~20 TPS, got %v", v2)
	}
	dense := soc.DecodeTPS(Dense70B())
	if dense >= 10 {
		t.Errorf("dense 70B should be single-digit TPS, got %v", dense)
	}
	if v2 < 2*dense {
		t.Errorf("MoE advantage should be large: %v vs %v", v2, dense)
	}
}

func TestKTransformersDeployment(t *testing.T) {
	srv := ConsumerGPUServer()
	v3 := srv.DecodeTPS(DeepSeekV3())
	if v3 < 10 || v3 > 40 {
		t.Errorf("V3 on consumer-GPU server should be near 20 TPS, got %v", v3)
	}
	// Offloading must stream fewer bytes than the full active set.
	full := Deployment{MemBandwidth: srv.MemBandwidth, Efficiency: srv.Efficiency, BytesPerParam: srv.BytesPerParam}
	if srv.BytesPerToken(DeepSeekV3()) >= full.BytesPerToken(DeepSeekV3()) {
		t.Error("expert offload should reduce streamed bytes")
	}
}

func TestDeploymentZeroModel(t *testing.T) {
	d := Deployment{MemBandwidth: 1, Efficiency: 1, BytesPerParam: 0}
	if got := d.DecodeTPS(Dense7B()); got != 0 {
		t.Errorf("zero bytes/param should yield 0 TPS, got %v", got)
	}
}

func TestMTPModuleCountsInParams(t *testing.T) {
	with := DeepSeekV3()
	without := DeepSeekV3()
	without.MTPModules = 0
	if with.Params().Total <= without.Params().Total {
		t.Error("MTP module must add parameters")
	}
	if with.Params().Active != without.Params().Active {
		t.Error("MTP module must not count as activated inference params")
	}
	if with.TrainingFLOPsPerToken(4096, true) <= without.TrainingFLOPsPerToken(4096, true) {
		t.Error("MTP module must add training cost")
	}
}
