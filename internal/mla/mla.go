// Package mla analyzes decode-time attention: the KV-cache-driven
// memory-bound behaviour of §2.1.2. Incremental decoding turns
// attention into GEMV-shaped work whose arithmetic intensity is far
// below modern accelerators' compute:bandwidth ratio — unless the KV
// representation is compressed and shared the way MLA does it.
//
// The package quantifies, for any model.Config: FLOPs and KV bytes per
// decoded token, arithmetic intensity, and the roofline decode time on
// a given accelerator. Table 1 (KV bytes) lives in internal/model; this
// package explains *why* those bytes matter.
package mla

import (
	"dsv3/internal/model"
	"dsv3/internal/units"
)

// Accelerator is the roofline hardware description.
type Accelerator struct {
	Name string
	// PeakFLOPS is the dense BF16 throughput (FLOP/s).
	PeakFLOPS float64
	// MemBandwidth is HBM bandwidth (B/s).
	MemBandwidth units.BytesPerSecond
}

// H800 returns the H800 SXM roofline point: ~990 TFLOPS BF16 and
// ~3.35 TB/s HBM3.
func H800() Accelerator {
	return Accelerator{Name: "H800", PeakFLOPS: 990e12, MemBandwidth: 3.35e12}
}

// Ridge returns the accelerator's ridge intensity (FLOP/byte): work
// below it is memory-bound.
func (a Accelerator) Ridge() float64 { return a.PeakFLOPS / a.MemBandwidth }

// DecodeCost is the per-decoded-token attention cost at a given context
// length (all layers, batch size 1 unless scaled).
type DecodeCost struct {
	// FLOPs is the attention compute per generated token.
	FLOPs float64
	// KVBytes is the KV cache volume read per generated token.
	KVBytes units.Bytes
	// Intensity = FLOPs / KVBytes.
	Intensity float64
}

// AttentionDecodeCost computes the attention-score/value portion of one
// decode step at context length ctx with the given KV element width.
// For MLA the absorbed-weight decode path is assumed: scores and values
// are computed directly against the cached latent, so every query head
// reuses the same compressed cache — that reuse is what multiplies MLA's
// arithmetic intensity.
func AttentionDecodeCost(c *model.Config, ctx int, kvBytesPerElem float64) DecodeCost {
	kv := c.KVCacheBytesPerToken(kvBytesPerElem) // all layers, per ctx token
	flops := DecodeFLOPsPerCtxTokenLayer(c) * float64(ctx) * float64(c.Layers)
	bytes := kv * float64(ctx)
	dc := DecodeCost{FLOPs: flops, KVBytes: bytes}
	if bytes > 0 {
		dc.Intensity = flops / bytes
	}
	return dc
}

// DecodeFLOPsPerCtxTokenLayer returns the attention-decode FLOPs one
// context token costs per layer — the coefficient AttentionDecodeCost
// scales by ctx and layer count. Exposed so per-step simulators can
// cache it instead of re-deriving it every event.
func DecodeFLOPsPerCtxTokenLayer(c *model.Config) float64 {
	a := c.Attention
	switch a.Kind {
	case model.MLA:
		latent := float64(a.KVLoraRank)
		rope := float64(a.QKRopeDim)
		heads := float64(a.NumQueryHeads)
		// scores: q·[latent;rope]; values: attn·latent.
		return 2*heads*(latent+rope) + 2*heads*latent
	default:
		heads := float64(a.NumQueryHeads)
		qk := float64(a.QKDim())
		v := float64(a.VDim())
		return 2*heads*qk + 2*heads*v
	}
}

// DecodeTime returns the roofline attention time of one decode step for
// a batch of concurrent requests at the same context length: the
// maximum of compute time and memory time. Each request reads its own
// KV cache (no cross-request reuse), so memory scales with batch while
// the intensity per request is unchanged.
func DecodeTime(c *model.Config, acc Accelerator, ctx, batch int, kvBytesPerElem float64) units.Seconds {
	dc := AttentionDecodeCost(c, ctx, kvBytesPerElem)
	compute := dc.FLOPs * float64(batch) / acc.PeakFLOPS
	memory := dc.KVBytes * float64(batch) / acc.MemBandwidth
	if compute > memory {
		return compute
	}
	return memory
}

// MemoryBound reports whether attention decode is memory-bound on the
// accelerator (intensity below the ridge).
func MemoryBound(c *model.Config, acc Accelerator, ctx int, kvBytesPerElem float64) bool {
	return AttentionDecodeCost(c, ctx, kvBytesPerElem).Intensity < acc.Ridge()
}
