package mla

import (
	"testing"

	"dsv3/internal/model"
)

func TestGQADecodeIsMemoryBound(t *testing.T) {
	// §2.1.2: incremental decode is GEMV-shaped and memory-bound on
	// modern hardware for conventional attention.
	if !MemoryBound(model.Qwen72B(), H800(), 4096, 2) {
		t.Error("GQA decode must be memory-bound on H800")
	}
	if !MemoryBound(model.LLaMA405B(), H800(), 4096, 2) {
		t.Error("LLaMA-405B decode must be memory-bound on H800")
	}
}

func TestMLAIntensityFarAboveGQA(t *testing.T) {
	v3 := AttentionDecodeCost(model.DeepSeekV3(), 4096, 2)
	qwen := AttentionDecodeCost(model.Qwen72B(), 4096, 2)
	if v3.Intensity < 20*qwen.Intensity {
		t.Errorf("MLA intensity (%v) should dwarf GQA's (%v): shared latent across 128 heads", v3.Intensity, qwen.Intensity)
	}
}

func TestIntensityIndependentOfContext(t *testing.T) {
	a := AttentionDecodeCost(model.DeepSeekV3(), 1024, 2)
	b := AttentionDecodeCost(model.DeepSeekV3(), 8192, 2)
	if a.Intensity != b.Intensity {
		t.Errorf("intensity should not depend on ctx: %v vs %v", a.Intensity, b.Intensity)
	}
	if b.KVBytes != 8*a.KVBytes {
		t.Errorf("KV bytes must scale linearly with ctx")
	}
}

func TestDecodeTimeRoofline(t *testing.T) {
	acc := H800()
	cfg := model.Qwen72B()
	// Memory-bound: time should equal KV bytes / bandwidth.
	dc := AttentionDecodeCost(cfg, 4096, 2)
	got := DecodeTime(cfg, acc, 4096, 1, 2)
	want := dc.KVBytes / acc.MemBandwidth
	if got != want {
		t.Errorf("memory-bound decode time = %v, want %v", got, want)
	}
	// Batch scales memory time linearly.
	if DecodeTime(cfg, acc, 4096, 8, 2) != 8*want {
		t.Error("batched decode should scale linearly while memory-bound")
	}
}

func TestMLADecodeFasterThanGQAPerContext(t *testing.T) {
	// The practical consequence of Table 1: per decoded token at equal
	// context, MLA's attention reads ~5-7x less and finishes faster.
	acc := H800()
	v3 := DecodeTime(model.DeepSeekV3(), acc, 4096, 1, 2)
	llama := DecodeTime(model.LLaMA405B(), acc, 4096, 1, 2)
	if v3 >= llama {
		t.Errorf("V3 decode (%v) should beat LLaMA-405B (%v)", v3, llama)
	}
}

func TestRidge(t *testing.T) {
	acc := H800()
	ridge := acc.Ridge()
	if ridge < 200 || ridge > 400 {
		t.Errorf("H800 ridge intensity %v out of plausible range", ridge)
	}
}

func TestZeroContext(t *testing.T) {
	dc := AttentionDecodeCost(model.DeepSeekV3(), 0, 2)
	if dc.FLOPs != 0 || dc.KVBytes != 0 || dc.Intensity != 0 {
		t.Errorf("zero context should cost nothing: %+v", dc)
	}
}
