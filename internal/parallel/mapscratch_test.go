package parallel

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestMapScratchOrdered: results come back in index order regardless of
// worker count, and each task sees a usable scratch value.
func TestMapScratchOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		prev := SetWorkers(workers)
		got, err := MapScratch(50, func() *[]int { return new([]int) }, func(i int, s *[]int) (int, error) {
			// Reuse the scratch buffer the way a real task would: fully
			// overwrite before reading.
			*s = append((*s)[:0], i, i*i)
			return (*s)[1], nil
		})
		SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, 50)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: got %v", workers, got)
		}
	}
}

// TestMapScratchOnePerWorker: newScratch runs at most once per worker,
// and exactly once on the serial path.
func TestMapScratchOnePerWorker(t *testing.T) {
	var made atomic.Int64
	newScratch := func() int { return int(made.Add(1)) }

	prev := SetWorkers(1)
	if _, err := MapScratch(20, newScratch, func(i, s int) (int, error) { return s, nil }); err != nil {
		t.Fatal(err)
	}
	SetWorkers(prev)
	if made.Load() != 1 {
		t.Fatalf("serial path built %d scratches, want 1", made.Load())
	}

	made.Store(0)
	prev = SetWorkers(4)
	if _, err := MapScratch(64, newScratch, func(i, s int) (int, error) { return s, nil }); err != nil {
		t.Fatal(err)
	}
	SetWorkers(prev)
	if n := made.Load(); n < 1 || n > 4 {
		t.Fatalf("parallel path built %d scratches, want 1..4", n)
	}
}

// TestMapScratchError mirrors Map's error contract: lowest-index error
// wins, all tasks still run.
func TestMapScratchError(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var ran atomic.Int64
	_, err := MapScratch(16, func() struct{} { return struct{}{} }, func(i int, _ struct{}) (int, error) {
		ran.Add(1)
		if i%2 == 1 {
			return 0, fmt.Errorf("task %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "task 1" {
		t.Fatalf("want lowest-index error 'task 1', got %v", err)
	}
	if ran.Load() != 16 {
		t.Fatalf("only %d of 16 tasks ran", ran.Load())
	}
}
