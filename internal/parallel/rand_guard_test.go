package parallel

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Non-test library and command code must construct RNGs through
// parallel.NewRand/TaskRand rather than bare rand.New(rand.NewSource(...)):
// the constructor is what keeps every experiment stream explicit,
// seeded, and derivable (never the process-global source). This test
// scans the repository's non-test Go sources — internal packages,
// commands, and examples — and fails on any bare construction outside
// this package. Tests are exempt: ad-hoc fixed-seed streams are fine
// in test fixtures.
func TestNoBareRandSourceOutsideParallel(t *testing.T) {
	root := "../.."
	var offenders []string
	for _, dir := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if filepath.Base(filepath.Dir(path)) == "parallel" {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if strings.Contains(string(src), "rand.NewSource(") {
				offenders = append(offenders, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(offenders) > 0 {
		t.Errorf("bare rand.NewSource outside internal/parallel (use parallel.NewRand / parallel.TaskRand):\n  %s",
			strings.Join(offenders, "\n  "))
	}
}

// TaskRand must be exactly NewRand over DeriveSeed — the equivalence
// the migration of pre-existing call sites relies on.
func TestTaskRandMatchesDerivedNewRand(t *testing.T) {
	for _, base := range []int64{0, 7, -3, 1 << 40} {
		for _, idx := range []int{0, 1, 17} {
			a := TaskRand(base, idx)
			b := NewRand(DeriveSeed(base, idx))
			for i := 0; i < 8; i++ {
				if av, bv := a.Uint64(), b.Uint64(); av != bv {
					t.Fatalf("TaskRand(%d,%d) diverges from NewRand(DeriveSeed): %d != %d", base, idx, av, bv)
				}
			}
		}
	}
}
