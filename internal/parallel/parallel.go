// Package parallel is the deterministic fan-out engine every
// sweep-shaped experiment runner is built on: a bounded worker pool
// with ordered fan-out/fan-in and per-task seeded RNG derivation.
//
// Determinism contract: Map runs fn(0..n-1) with results delivered in
// index order, and every task must depend only on its index (plus
// inputs captured at call time). Randomized tasks derive their RNG
// stream from DeriveSeed(base, index) instead of sharing one stream.
// Under that contract the output is bit-identical for any worker
// count — parallel execution is an invisible optimization, which is
// what lets the experiment suite assert byte-for-byte parity between
// its serial and parallel paths (see DESIGN.md).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the pool width used by Map. Guarded by mu; 1 means serial.
var (
	mu      sync.RWMutex
	workers = runtime.GOMAXPROCS(0)
)

// Workers returns the current pool width.
func Workers() int {
	mu.RLock()
	defer mu.RUnlock()
	return workers
}

// SetWorkers sets the pool width and returns the previous value.
// n <= 1 forces serial in-order execution (the parity baseline);
// n == 0 is treated as 1. The default is GOMAXPROCS.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	prev := workers
	workers = n
	return prev
}

// Map runs fn for every index in [0, n) on the worker pool and returns
// the results in index order. All tasks run to completion even when
// some fail; the returned error is the failing task with the lowest
// index, so the error too is independent of scheduling. With a pool
// width of 1 (or n <= 1) tasks run inline, in order, on the caller's
// goroutine.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			r, err := fn(i)
			results[i] = r
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return results, firstErr
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Run is Map for tasks without a result value.
func Run(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}

// MapScratch is Map with per-worker scratch state: each worker
// goroutine calls newScratch once and hands the same value to every
// task it runs, so tasks can reuse allocation-heavy buffers (flow
// builders, simulator contexts) without any cross-task synchronization.
//
// The determinism contract extends to scratch: fn's result must be a
// pure function of its index — scratch may only carry buffers whose
// contents are fully overwritten (or explicitly reset) before use, never
// values that leak one task's data into another's result. Under that
// rule worker count and task-to-worker assignment remain invisible, and
// the serial path (one scratch for all tasks) is byte-identical to any
// parallel schedule.
func MapScratch[T, S any](n int, newScratch func() S, fn func(i int, scratch S) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		scratch := newScratch()
		var firstErr error
		for i := 0; i < n; i++ {
			r, err := fn(i, scratch)
			results[i] = r
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return results, firstErr
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i, scratch)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ShardGroup is a barrier-stepped worker group: n goroutines that stay
// parked between Step calls, so a caller can run thousands of short
// synchronized phases (the sharded serving engine's conservative time
// windows) without paying goroutine creation per phase. Each Step
// releases every worker to run fn(shard) exactly once and returns after
// all have finished, establishing a happens-before edge in both
// directions — shard-owned state written inside fn is visible to the
// caller after Step, and caller writes before Step are visible to fn.
//
// Step and Close must be called from one goroutine. A group with n <= 1
// spawns nothing and runs fn(0) inline — the serial parity baseline.
type ShardGroup struct {
	n     int
	fn    func(shard int)
	start []chan struct{}
	done  chan struct{}
}

// NewShardGroup spawns the group's workers. Close must be called to
// release them.
func NewShardGroup(n int, fn func(shard int)) *ShardGroup {
	g := &ShardGroup{n: n, fn: fn}
	if n <= 1 {
		return g
	}
	g.start = make([]chan struct{}, n)
	g.done = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		g.start[i] = make(chan struct{}, 1)
		go func(shard int) {
			for range g.start[shard] {
				g.fn(shard)
				g.done <- struct{}{}
			}
		}(i)
	}
	return g
}

// Step runs fn(0..n-1) concurrently and returns when all are done.
func (g *ShardGroup) Step() {
	if g.n <= 1 {
		if g.n == 1 {
			g.fn(0)
		}
		return
	}
	for i := 0; i < g.n; i++ {
		g.start[i] <- struct{}{}
	}
	for i := 0; i < g.n; i++ {
		<-g.done
	}
}

// Close terminates the worker goroutines. The group must not be
// stepped afterwards.
func (g *ShardGroup) Close() {
	for i := 0; i < len(g.start); i++ {
		close(g.start[i])
	}
}

// DeriveSeed derives a statistically independent child seed from a base
// seed and a task index using the splitmix64 finalizer (the same mixer
// the routing layers use for ECMP hashing). Two properties matter:
// derivation is pure (parallel == serial), and nearby (base, index)
// pairs land far apart, so per-task rand streams do not overlap in
// practice the way base+index seeding would.
func DeriveSeed(base int64, index int) int64 {
	x := uint64(base)*0x9e3779b97f4a7c15 + uint64(index) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
