package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		prev := SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

// The reported error must be the lowest failing index regardless of
// scheduling — otherwise parallel runs could surface different errors.
func TestMapErrorDeterministic(t *testing.T) {
	for _, w := range []int{1, 8} {
		prev := SetWorkers(w)
		_, err := Map(50, func(i int) (int, error) {
			if i%7 == 3 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		SetWorkers(prev)
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", w, err)
		}
	}
}

func TestMapAllTasksRunDespiteError(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var ran atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(64, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 64 {
		t.Fatalf("ran %d tasks, want 64", got)
	}
}

func TestRun(t *testing.T) {
	var sum atomic.Int64
	if err := Run(10, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestSetWorkersClamps(t *testing.T) {
	prev := SetWorkers(-3)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-3), want 1", got)
	}
	SetWorkers(prev)
}

// Parallel results must be bit-identical to serial for seeded tasks —
// the core contract the experiment parity suite relies on.
func TestSeededParityAcrossWorkerCounts(t *testing.T) {
	task := func(i int) (float64, error) {
		rng := rand.New(rand.NewSource(DeriveSeed(42, i)))
		var s float64
		for j := 0; j < 1000; j++ {
			s += rng.NormFloat64()
		}
		return s, nil
	}
	prev := SetWorkers(1)
	serial, err := Map(32, task)
	SetWorkers(8)
	par, err2 := Map(32, task)
	SetWorkers(prev)
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("index %d: serial %v != parallel %v", i, serial[i], par[i])
		}
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 64; base++ {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(0, 1) {
		t.Error("base and index must not be interchangeable")
	}
}

// Stress the pool under the race detector: concurrent Maps, nested
// worker reconfiguration, and shared-result writes.
func TestPoolRaceStress(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	err := Run(8, func(outer int) error {
		out, err := Map(200, func(i int) (int64, error) {
			return int64(outer*1000 + i), nil
		})
		if err != nil {
			return err
		}
		for i, v := range out {
			if v != int64(outer*1000+i) {
				return fmt.Errorf("outer %d index %d: got %d", outer, i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
