package parallel

import "math/rand"

// NewRand is the repo's only sanctioned way to construct a seeded RNG
// in non-test code: an explicit, deterministic stream that can never be
// the process-global source. Experiments and simulators build their
// streams through this constructor (or TaskRand for fan-out tasks) so
// a new runner cannot accidentally depend on global RNG state — the
// guard test in this package scans the source tree for bare
// rand.New(rand.NewSource(...)) outside this file.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TaskRand returns the RNG stream of fan-out task index under base:
// NewRand(DeriveSeed(base, index)). Per-task streams are statistically
// independent and derivation is pure, so results are identical for any
// worker count (see the package determinism contract).
func TaskRand(base int64, index int) *rand.Rand {
	return NewRand(DeriveSeed(base, index))
}
