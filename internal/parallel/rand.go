package parallel

import "math/rand"

// NewRand is the repo's only sanctioned way to construct a seeded RNG
// in non-test code: an explicit, deterministic stream that can never be
// the process-global source. Experiments and simulators build their
// streams through this constructor (or TaskRand for fan-out tasks) so
// a new runner cannot accidentally depend on global RNG state — the
// guard test in this package scans the source tree for bare
// rand.New(rand.NewSource(...)) outside this file.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TaskRand returns the RNG stream of fan-out task index under base:
// NewRand(DeriveSeed(base, index)). Per-task streams are statistically
// independent and derivation is pure, so results are identical for any
// worker count (see the package determinism contract).
func TaskRand(base int64, index int) *rand.Rand {
	return NewRand(DeriveSeed(base, index))
}

// NewReseedable returns a seeded RNG together with a reseed function
// that restarts the stream in place: reseed(s) leaves the RNG in
// exactly the state of a fresh NewRand(s), without allocating. Long-
// lived simulation engines reuse one RNG across runs this way while
// keeping the per-run streams byte-identical to fresh construction.
func NewReseedable(seed int64) (*rand.Rand, func(int64)) {
	rng := rand.New(rand.NewSource(seed))
	// Rand.Seed (not just Source.Seed) so the Rand's buffered Read()
	// cursor is reset too — reseeding must be indistinguishable from
	// fresh construction for every draw kind, bytes included.
	//lint:ignore SA1019 Seed-with-known-value is exactly the documented reseed contract here; the deprecation targets global-Seed misuse.
	return rng, rng.Seed
}
