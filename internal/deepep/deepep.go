// Package deepep models DeepEP, DeepSeek's expert-parallel all-to-all
// library, on top of the cluster graph and flow simulator: FP8 token
// dispatch and BF16 combine with IB deduplication (one copy per target
// node) and NVLink forwarding at the receiver (§4.3, §4.4). It
// regenerates Figure 7 and the node-limited-routing ablation.
//
// Reported bandwidth follows DeepEP's convention: the byte count
// credits one hidden-vector copy per *distinct target node* (the
// RDMA-level token count, source node included when targeted), divided
// by the measured completion time. Because NVLink forwarding dedups the
// wire traffic to remote nodes only, this figure can exceed the NIC
// line rate — exactly as in the paper's Figure 7.
package deepep

import (
	"fmt"
	"math/rand"

	"dsv3/internal/cluster"
	"dsv3/internal/moe"
	"dsv3/internal/netsim"
	"dsv3/internal/units"
)

// Config parametrizes one dispatch/combine measurement.
type Config struct {
	// TokensPerGPU is the per-rank batch (4096 in Figure 7).
	TokensPerGPU int
	// DispatchBytes is the per-token payload for dispatch: FP8 hidden
	// vector, 7168 bytes for DeepSeek-V3.
	DispatchBytes units.Bytes
	// CombineBytes is the per-token payload for combine: BF16, 14336 B.
	CombineBytes units.Bytes
	// Gate routes tokens to experts.
	Gate moe.Gate
	// LaunchOverhead is the per-kernel software cost.
	LaunchOverhead units.Seconds
	// PerPeerRateCap bounds each (rank, remote node) RDMA stream: QP
	// pipelining limits keep a single-peer stream well below line rate,
	// which is why EP16 (one remote peer) sits lowest in Figure 7.
	// DeepEP's own EP16 point implies ~21.5 GB/s per peer.
	PerPeerRateCap units.BytesPerSecond
	// DeterministicTraffic replaces each flow's sampled byte count with
	// its category mean (IB / receiver-forward / local). At 4096
	// tokens/GPU the sampled counts sit within ~2% of the mean anyway
	// (symmetry makes every flow in a category i.i.d.), and collapsing
	// them lets the fluid simulator finish whole categories in single
	// events — orders of magnitude fewer rate recomputations at EP128.
	DeterministicTraffic bool
	// SampleTokens, when positive and below TokensPerGPU, routes only
	// this many tokens per GPU and scales the traffic matrix up to the
	// full TokensPerGPU. Useful with DeterministicTraffic, where only
	// the category means matter.
	SampleTokens int
}

// V3Config returns the Figure 7 configuration.
func V3Config() Config {
	return Config{
		TokensPerGPU:   4096,
		DispatchBytes:  7168,
		CombineBytes:   14336,
		Gate:           moe.V3Gate(),
		LaunchOverhead: 20 * units.Microsecond,
		PerPeerRateCap: 21.5 * units.GB,
	}
}

// Result reports one kernel's simulated execution.
type Result struct {
	// Time is the completion time of the slowest flow plus launch.
	Time units.Seconds
	// CountedBytesPerGPU is the DeepEP-convention byte credit per rank.
	CountedBytesPerGPU units.Bytes
	// WireBytesPerGPU is the actual IB bytes injected per rank.
	WireBytesPerGPU units.Bytes
	// NVLinkBytesPerGPU is the intra-node forwarding volume per rank.
	NVLinkBytesPerGPU units.Bytes
	// Bandwidth = CountedBytesPerGPU / Time (the Figure 7 y-axis).
	Bandwidth units.BytesPerSecond
	// MeanNodes / MeanRemoteNodes are the dedup factors (§4.3).
	MeanNodes       float64
	MeanRemoteNodes float64
}

// traffic is the aggregated flow matrix one kernel induces.
type traffic struct {
	ib      map[[2]int]units.Bytes // (srcRank, dstNode) -> bytes
	forward map[[3]int]units.Bytes // (node, fromGPU, toGPU) -> bytes (receiver side)
	local   map[[3]int]units.Bytes // (node, fromGPU, toGPU) -> bytes (source side)
	counted units.Bytes            // DeepEP byte credit, all ranks
	nodes   float64                // sum of M over tokens
	remote  float64                // sum of remote nodes over tokens
	tokens  int
}

// route builds the traffic matrix by routing every token of every rank.
func route(c *cluster.Cluster, cfg Config, payload units.Bytes, rng *rand.Rand) (*traffic, error) {
	if err := cfg.Gate.Validate(); err != nil {
		return nil, err
	}
	place := moe.Placement{Experts: cfg.Gate.Experts, Nodes: c.Cfg.Nodes, GPUsPerNode: c.Cfg.GPUsPerNode}
	if err := place.Validate(); err != nil {
		return nil, err
	}
	tr := &traffic{
		ib:      make(map[[2]int]units.Bytes),
		forward: make(map[[3]int]units.Bytes),
		local:   make(map[[3]int]units.Bytes),
	}
	sample := cfg.TokensPerGPU
	if cfg.SampleTokens > 0 && cfg.SampleTokens < sample {
		sample = cfg.SampleTokens
	}
	scale := float64(cfg.TokensPerGPU) / float64(sample)
	for rank := 0; rank < c.NumRanks(); rank++ {
		srcNode, srcGPU := c.RankOf(rank)
		for t := 0; t < sample; t++ {
			experts := cfg.Gate.Route(cfg.Gate.RandomScores(rng), nil)
			td := place.Dispatch(experts)
			tr.tokens++
			tr.nodes += float64(len(td.Nodes))
			tr.counted += float64(len(td.Nodes)) * payload
			for _, node := range td.Nodes {
				if node == srcNode {
					// Source-side NVLink multicast to local experts.
					for _, gpu := range td.GPUsByNode[node] {
						if gpu != srcGPU {
							tr.local[[3]int{node, srcGPU, gpu}] += payload
						}
					}
					continue
				}
				tr.remote++
				// One deduplicated IB copy to the peer GPU in the same
				// plane, then receiver-side NVLink forwarding.
				tr.ib[[2]int{rank, node}] += payload
				for _, gpu := range td.GPUsByNode[node] {
					if gpu != srcGPU {
						tr.forward[[3]int{node, srcGPU, gpu}] += payload
					}
				}
			}
		}
	}
	if scale != 1 {
		for k := range tr.ib {
			tr.ib[k] *= scale
		}
		for k := range tr.forward {
			tr.forward[k] *= scale
		}
		for k := range tr.local {
			tr.local[k] *= scale
		}
		tr.counted *= scale
	}
	return tr, nil
}

// flatten replaces each category's flow sizes with the category mean.
func (tr *traffic) flatten() {
	mean := func(m map[[2]int]units.Bytes) {
		var sum units.Bytes
		for _, b := range m {
			sum += b
		}
		avg := sum / float64(len(m))
		for k := range m {
			m[k] = avg
		}
	}
	mean3 := func(m map[[3]int]units.Bytes) {
		var sum units.Bytes
		for _, b := range m {
			sum += b
		}
		avg := sum / float64(len(m))
		for k := range m {
			m[k] = avg
		}
	}
	if len(tr.ib) > 0 {
		mean(tr.ib)
	}
	if len(tr.forward) > 0 {
		mean3(tr.forward)
	}
	if len(tr.local) > 0 {
		mean3(tr.local)
	}
}

// Dispatch simulates the EP dispatch kernel across the whole cluster.
func Dispatch(c *cluster.Cluster, cfg Config, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	tr, err := route(c, cfg, cfg.DispatchBytes, rng)
	if err != nil {
		return Result{}, err
	}
	if cfg.DeterministicTraffic {
		tr.flatten()
	}
	flows := tr.flows(c, cfg, false)
	return tr.measure(c, cfg, flows), nil
}

// Combine simulates the EP combine kernel: the exact mirror of
// dispatch (NVLink gather at the expert node, deduplicated IB return,
// BF16 payload).
func Combine(c *cluster.Cluster, cfg Config, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	tr, err := route(c, cfg, cfg.CombineBytes, rng)
	if err != nil {
		return Result{}, err
	}
	if cfg.DeterministicTraffic {
		tr.flatten()
	}
	flows := tr.flows(c, cfg, true)
	return tr.measure(c, cfg, flows), nil
}

// flows materializes the traffic matrix. reverse=false is dispatch
// (token owner -> experts); reverse=true is combine (experts -> owner).
func (tr *traffic) flows(c *cluster.Cluster, cfg Config, reverse bool) []netsim.Flow {
	var flows []netsim.Flow
	lat := cluster.DefaultLatencyParams()
	add := func(src, dst int, paths [][]int, bytes units.Bytes, rateCap units.BytesPerSecond) {
		flows = append(flows, netsim.Flow{
			Src: src, Dst: dst, Bytes: bytes, Paths: paths,
			StartupLatency: lat.HostOverheadIB + c.G.PathLatency(paths[0]),
			RateCap:        rateCap,
		})
	}
	for key, bytes := range tr.ib {
		rank, node := key[0], key[1]
		srcNode, srcGPU := c.RankOf(rank)
		if reverse {
			paths := c.ForwardPaths(node, srcGPU, srcNode, srcGPU)
			add(c.GPUID(node, srcGPU), c.GPUID(srcNode, srcGPU), paths, bytes, cfg.PerPeerRateCap)
		} else {
			paths := c.ForwardPaths(srcNode, srcGPU, node, srcGPU)
			add(c.GPUID(srcNode, srcGPU), c.GPUID(node, srcGPU), paths, bytes, cfg.PerPeerRateCap)
		}
	}
	nvlink := func(m map[[3]int]units.Bytes) {
		for key, bytes := range m {
			node, from, to := key[0], key[1], key[2]
			if reverse {
				from, to = to, from
			}
			paths := [][]int{c.NVLinkPath(node, from, to)}
			add(c.GPUID(node, from), c.GPUID(node, to), paths, bytes, 0)
		}
	}
	nvlink(tr.forward)
	nvlink(tr.local)
	return flows
}

func (tr *traffic) measure(c *cluster.Cluster, cfg Config, flows []netsim.Flow) Result {
	res := netsim.Simulate(c.G, flows)
	ranks := float64(c.NumRanks())
	var wire, nv units.Bytes
	for _, b := range tr.ib {
		wire += b
	}
	for _, b := range tr.forward {
		nv += b
	}
	for _, b := range tr.local {
		nv += b
	}
	t := res.Makespan + cfg.LaunchOverhead
	out := Result{
		Time:               t,
		CountedBytesPerGPU: tr.counted / ranks,
		WireBytesPerGPU:    wire / ranks,
		NVLinkBytesPerGPU:  nv / ranks,
		MeanNodes:          tr.nodes / float64(tr.tokens),
		MeanRemoteNodes:    tr.remote / float64(tr.tokens),
	}
	out.Bandwidth = out.CountedBytesPerGPU / t
	return out
}

// EPSweepPoint is one Figure 7 x-axis entry.
type EPSweepPoint struct {
	Ranks    int
	Dispatch Result
	Combine  Result
}

// Sweep runs dispatch and combine at each EP size (GPU count; must be a
// multiple of 8). Clusters are built fresh per point on the MPFT fabric.
func Sweep(cfg Config, epSizes []int, seed int64) ([]EPSweepPoint, error) {
	var out []EPSweepPoint
	for _, ranks := range epSizes {
		if ranks%cluster.GPUsPerNode != 0 {
			return nil, fmt.Errorf("deepep: EP size %d not a multiple of %d", ranks, cluster.GPUsPerNode)
		}
		c, err := cluster.Build(cluster.H800Config(ranks/cluster.GPUsPerNode, cluster.MPFT))
		if err != nil {
			return nil, err
		}
		d, err := Dispatch(c, cfg, seed)
		if err != nil {
			return nil, err
		}
		cb, err := Combine(c, cfg, seed+1)
		if err != nil {
			return nil, err
		}
		out = append(out, EPSweepPoint{Ranks: ranks, Dispatch: d, Combine: cb})
	}
	return out, nil
}
