// Package deepep models DeepEP, DeepSeek's expert-parallel all-to-all
// library, on top of the cluster graph and flow simulator: FP8 token
// dispatch and BF16 combine with IB deduplication (one copy per target
// node) and NVLink forwarding at the receiver (§4.3, §4.4). It
// regenerates Figure 7 and the node-limited-routing ablation.
//
// Reported bandwidth follows DeepEP's convention: the byte count
// credits one hidden-vector copy per *distinct target node* (the
// RDMA-level token count, source node included when targeted), divided
// by the measured completion time. Because NVLink forwarding dedups the
// wire traffic to remote nodes only, this figure can exceed the NIC
// line rate — exactly as in the paper's Figure 7.
//
// Token routing is embarrassingly parallel across ranks, and this
// package exploits that: each rank draws its gate scores from an RNG
// stream derived from (seed, rank), so per-rank traffic matrices can be
// generated on the worker pool and merged in rank order with bit-exact
// results for any worker count (all counters are integers scaled by
// integral payloads). See DESIGN.md for the determinism model.
package deepep

import (
	"fmt"
	"sync"

	"dsv3/internal/cluster"
	"dsv3/internal/moe"
	"dsv3/internal/netsim"
	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

// Config parametrizes one dispatch/combine measurement.
type Config struct {
	// TokensPerGPU is the per-rank batch (4096 in Figure 7).
	TokensPerGPU int
	// DispatchBytes is the per-token payload for dispatch: FP8 hidden
	// vector, 7168 bytes for DeepSeek-V3.
	DispatchBytes units.Bytes
	// CombineBytes is the per-token payload for combine: BF16, 14336 B.
	CombineBytes units.Bytes
	// Gate routes tokens to experts.
	Gate moe.Gate
	// LaunchOverhead is the per-kernel software cost.
	LaunchOverhead units.Seconds
	// PerPeerRateCap bounds each (rank, remote node) RDMA stream: QP
	// pipelining limits keep a single-peer stream well below line rate,
	// which is why EP16 (one remote peer) sits lowest in Figure 7.
	// DeepEP's own EP16 point implies ~21.5 GB/s per peer.
	PerPeerRateCap units.BytesPerSecond
	// DeterministicTraffic replaces each flow's sampled byte count with
	// its category mean (IB / receiver-forward / local). At 4096
	// tokens/GPU the sampled counts sit within ~2% of the mean anyway
	// (symmetry makes every flow in a category i.i.d.), and collapsing
	// them lets the fluid simulator finish whole categories in single
	// events — orders of magnitude fewer rate recomputations at EP128.
	DeterministicTraffic bool
	// SampleTokens, when positive and below TokensPerGPU, routes only
	// this many tokens per GPU and scales the traffic matrix up to the
	// full TokensPerGPU. Useful with DeterministicTraffic, where only
	// the category means matter.
	SampleTokens int
}

// sampleTokens returns how many tokens per GPU are actually routed:
// the full batch, or the SampleTokens subsample. Traffic is later
// scaled back up by TokensPerGPU/sampleTokens in one place (bytes and
// measure share this helper, so the scale cannot drift).
func (cfg Config) sampleTokens() int {
	if cfg.SampleTokens > 0 && cfg.SampleTokens < cfg.TokensPerGPU {
		return cfg.SampleTokens
	}
	return cfg.TokensPerGPU
}

// V3Config returns the Figure 7 configuration.
func V3Config() Config {
	return Config{
		TokensPerGPU:   4096,
		DispatchBytes:  7168,
		CombineBytes:   14336,
		Gate:           moe.V3Gate(),
		LaunchOverhead: 20 * units.Microsecond,
		PerPeerRateCap: 21.5 * units.GB,
	}
}

// Result reports one kernel's simulated execution.
type Result struct {
	// Time is the completion time of the slowest flow plus launch.
	Time units.Seconds
	// CountedBytesPerGPU is the DeepEP-convention byte credit per rank.
	CountedBytesPerGPU units.Bytes
	// WireBytesPerGPU is the actual IB bytes injected per rank.
	WireBytesPerGPU units.Bytes
	// NVLinkBytesPerGPU is the intra-node forwarding volume per rank.
	NVLinkBytesPerGPU units.Bytes
	// Bandwidth = CountedBytesPerGPU / Time (the Figure 7 y-axis).
	Bandwidth units.BytesPerSecond
	// MeanNodes / MeanRemoteNodes are the dedup factors (§4.3).
	MeanNodes       float64
	MeanRemoteNodes float64
}

// traffic is the aggregated flow matrix one kernel induces, held in
// flat dense arrays: indices are deterministic (no map iteration), and
// counters are integers until the final byte scaling, so merging
// per-rank contributions is exact in any association.
type traffic struct {
	nodes, gpus int
	// ibCount[rank*nodes+node] counts deduplicated IB token copies from
	// a rank to a remote node.
	ibCount []int
	// fwdCount[(node*gpus+from)*gpus+to] counts receiver-side NVLink
	// forwards on a node from the plane-peer GPU to an expert GPU.
	fwdCount []int
	// localCount uses the same indexing for source-side NVLink
	// multicasts on the sender's own node.
	localCount []int
	// countedTokens is the DeepEP byte-credit token count (sum of M).
	countedTokens int
	remote        int // sum of remote-node copies over tokens
	tokens        int
}

func newTraffic(c *cluster.Cluster) *traffic {
	nodes, gpus := c.Cfg.Nodes, c.Cfg.GPUsPerNode
	return &traffic{
		nodes:      nodes,
		gpus:       gpus,
		ibCount:    make([]int, c.NumRanks()*nodes),
		fwdCount:   make([]int, nodes*gpus*gpus),
		localCount: make([]int, nodes*gpus*gpus),
	}
}

// merge adds b into tr. Integer counters make the result independent
// of merge grouping.
func (tr *traffic) merge(b *traffic) {
	for i, v := range b.ibCount {
		tr.ibCount[i] += v
	}
	for i, v := range b.fwdCount {
		tr.fwdCount[i] += v
	}
	for i, v := range b.localCount {
		tr.localCount[i] += v
	}
	tr.countedTokens += b.countedTokens
	tr.remote += b.remote
	tr.tokens += b.tokens
}

// routeRank routes one rank's token sample into a fresh traffic using
// the rank-derived RNG stream.
func routeRank(c *cluster.Cluster, cfg Config, place moe.Placement, rank, sample int, seed int64) *traffic {
	tr := newTraffic(c)
	rng := parallel.TaskRand(seed, rank)
	router := moe.NewRouter(cfg.Gate)
	disp := moe.NewDispatcher(place)
	scores := make([]float64, cfg.Gate.Experts)
	srcNode, srcGPU := c.RankOf(rank)
	for t := 0; t < sample; t++ {
		cfg.Gate.RandomScoresInto(scores, rng)
		disp.Dispatch(router.Route(scores, nil))
		targets := disp.Nodes()
		tr.tokens++
		tr.countedTokens += len(targets)
		for _, node := range targets {
			base := node * tr.gpus
			if node == srcNode {
				// Source-side NVLink multicast to local experts.
				for gpu := 0; gpu < tr.gpus; gpu++ {
					if gpu != srcGPU && disp.HasGPU(node, gpu) {
						tr.localCount[(base+srcGPU)*tr.gpus+gpu]++
					}
				}
				continue
			}
			tr.remote++
			// One deduplicated IB copy to the peer GPU in the same
			// plane, then receiver-side NVLink forwarding.
			tr.ibCount[rank*tr.nodes+node]++
			for gpu := 0; gpu < tr.gpus; gpu++ {
				if gpu != srcGPU && disp.HasGPU(node, gpu) {
					tr.fwdCount[(base+srcGPU)*tr.gpus+gpu]++
				}
			}
		}
	}
	return tr
}

// routeKey identifies a token-routing plan: the cluster layout, the
// gate, the per-rank sample size, and the RNG seed fully determine the
// integer traffic matrix (payload bytes only scale it later).
type routeKey struct {
	cluster cluster.Config
	gate    moe.Gate
	sample  int
	seed    int64
}

var (
	routeMu    sync.Mutex
	routeCache = map[routeKey]*traffic{}
)

// routeCacheLimit bounds the memoization map. A full sweep touches a
// handful of keys; when a long-lived process probes past the bound
// (many seeds or cluster shapes), the cache resets wholesale — plans
// are recomputed deterministically on demand, so eviction can never
// change results, only amortization.
const routeCacheLimit = 64

// route returns the traffic matrix for routing every rank's token
// sample, fanning the ranks out over the parallel worker pool. Per-rank
// seed derivation makes the result identical for any worker count.
//
// Plans are memoized per (cluster config, gate, sample, seed): a sweep
// probing the same EP configuration repeatedly (dispatch vs combine
// reuse different seeds, but benchmarks, tests and layered experiments
// revisit identical keys) pays the Monte-Carlo routing cost once. The
// cached traffic is immutable after publication — every consumer only
// reads it. Two goroutines racing on the same cold key both compute the
// identical plan and one wins the store; determinism is unaffected.
func route(c *cluster.Cluster, cfg Config, seed int64) (*traffic, error) {
	if err := cfg.Gate.Validate(); err != nil {
		return nil, err
	}
	place := moe.Placement{Experts: cfg.Gate.Experts, Nodes: c.Cfg.Nodes, GPUsPerNode: c.Cfg.GPUsPerNode}
	if err := place.Validate(); err != nil {
		return nil, err
	}
	sample := cfg.sampleTokens()
	key := routeKey{cluster: c.Cfg, gate: cfg.Gate, sample: sample, seed: seed}
	routeMu.Lock()
	cached := routeCache[key]
	routeMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	parts, err := parallel.Map(c.NumRanks(), func(rank int) (*traffic, error) {
		return routeRank(c, cfg, place, rank, sample, seed), nil
	})
	if err != nil {
		return nil, err
	}
	tr := newTraffic(c)
	for _, part := range parts {
		tr.merge(part)
	}
	routeMu.Lock()
	if len(routeCache) >= routeCacheLimit {
		routeCache = map[routeKey]*traffic{}
	}
	routeCache[key] = tr
	routeMu.Unlock()
	return tr, nil
}

// byteMatrix scales the integer traffic counts into per-flow byte
// sizes: bytes = count × payload × (TokensPerGPU / sample). When
// flatten is set, each category's sizes collapse to the category mean
// over its non-zero entries.
type byteMatrix struct {
	ib, fwd, local []units.Bytes
}

func (tr *traffic) bytes(cfg Config, payload units.Bytes, flatten bool) byteMatrix {
	scale := payload * float64(cfg.TokensPerGPU) / float64(cfg.sampleTokens())
	conv := func(counts []int) []units.Bytes {
		out := make([]units.Bytes, len(counts))
		if flatten {
			sum, n := 0, 0
			for _, c := range counts {
				if c > 0 {
					sum += c
					n++
				}
			}
			if n == 0 {
				return out
			}
			mean := float64(sum) / float64(n) * scale
			for i, c := range counts {
				if c > 0 {
					out[i] = mean
				}
			}
			return out
		}
		for i, c := range counts {
			if c > 0 {
				out[i] = float64(c) * scale
			}
		}
		return out
	}
	return byteMatrix{ib: conv(tr.ibCount), fwd: conv(tr.fwdCount), local: conv(tr.localCount)}
}

// Dispatch simulates the EP dispatch kernel across the whole cluster.
func Dispatch(c *cluster.Cluster, cfg Config, seed int64) (Result, error) {
	tr, err := route(c, cfg, seed)
	if err != nil {
		return Result{}, err
	}
	bm := tr.bytes(cfg, cfg.DispatchBytes, cfg.DeterministicTraffic)
	return tr.measure(c, cfg, cfg.DispatchBytes, bm, tr.flows(c, cfg, bm, false)), nil
}

// Combine simulates the EP combine kernel: the exact mirror of
// dispatch (NVLink gather at the expert node, deduplicated IB return,
// BF16 payload).
func Combine(c *cluster.Cluster, cfg Config, seed int64) (Result, error) {
	tr, err := route(c, cfg, seed)
	if err != nil {
		return Result{}, err
	}
	bm := tr.bytes(cfg, cfg.CombineBytes, cfg.DeterministicTraffic)
	return tr.measure(c, cfg, cfg.CombineBytes, bm, tr.flows(c, cfg, bm, true)), nil
}

// flows materializes the byte matrix in deterministic index order.
// reverse=false is dispatch (token owner -> experts); reverse=true is
// combine (experts -> owner).
func (tr *traffic) flows(c *cluster.Cluster, cfg Config, bm byteMatrix, reverse bool) []netsim.Flow {
	var flows []netsim.Flow
	lat := cluster.DefaultLatencyParams()
	add := func(src, dst int, paths [][]int, bytes units.Bytes, rateCap units.BytesPerSecond) {
		flows = append(flows, netsim.Flow{
			Src: src, Dst: dst, Bytes: bytes, Paths: paths,
			StartupLatency: lat.HostOverheadIB + c.G.PathLatency(paths[0]),
			RateCap:        rateCap,
		})
	}
	for rank := 0; rank < c.NumRanks(); rank++ {
		srcNode, srcGPU := c.RankOf(rank)
		for node := 0; node < tr.nodes; node++ {
			bytes := bm.ib[rank*tr.nodes+node]
			if bytes == 0 {
				continue
			}
			if reverse {
				paths := c.ForwardPaths(node, srcGPU, srcNode, srcGPU)
				add(c.GPUID(node, srcGPU), c.GPUID(srcNode, srcGPU), paths, bytes, cfg.PerPeerRateCap)
			} else {
				paths := c.ForwardPaths(srcNode, srcGPU, node, srcGPU)
				add(c.GPUID(srcNode, srcGPU), c.GPUID(node, srcGPU), paths, bytes, cfg.PerPeerRateCap)
			}
		}
	}
	nvlink := func(sizes []units.Bytes) {
		for idx, bytes := range sizes {
			if bytes == 0 {
				continue
			}
			node := idx / (tr.gpus * tr.gpus)
			from := idx / tr.gpus % tr.gpus
			to := idx % tr.gpus
			if reverse {
				from, to = to, from
			}
			paths := [][]int{c.NVLinkPath(node, from, to)}
			add(c.GPUID(node, from), c.GPUID(node, to), paths, bytes, 0)
		}
	}
	nvlink(bm.fwd)
	nvlink(bm.local)
	return flows
}

func (tr *traffic) measure(c *cluster.Cluster, cfg Config, payload units.Bytes, bm byteMatrix, flows []netsim.Flow) Result {
	res := netsim.Simulate(c.G, flows)
	ranks := float64(c.NumRanks())
	var wire, nv units.Bytes
	for _, b := range bm.ib {
		wire += b
	}
	for _, b := range bm.fwd {
		nv += b
	}
	for _, b := range bm.local {
		nv += b
	}
	counted := float64(tr.countedTokens) * payload * float64(cfg.TokensPerGPU) / float64(cfg.sampleTokens())
	t := res.Makespan + cfg.LaunchOverhead
	out := Result{
		Time:               t,
		CountedBytesPerGPU: counted / ranks,
		WireBytesPerGPU:    wire / ranks,
		NVLinkBytesPerGPU:  nv / ranks,
		MeanNodes:          float64(tr.countedTokens) / float64(tr.tokens),
		MeanRemoteNodes:    float64(tr.remote) / float64(tr.tokens),
	}
	out.Bandwidth = out.CountedBytesPerGPU / t
	return out
}

// EPSweepPoint is one Figure 7 x-axis entry.
type EPSweepPoint struct {
	Ranks    int
	Dispatch Result
	Combine  Result
}

// Sweep runs dispatch and combine at each EP size (GPU count; must be a
// multiple of 8) on the shared MPFT fabric, fanning the EP points out
// over the parallel worker pool (each point's rank routing fans out a
// second level below it).
func Sweep(cfg Config, epSizes []int, seed int64) ([]EPSweepPoint, error) {
	return parallel.Map(len(epSizes), func(pi int) (EPSweepPoint, error) {
		ranks := epSizes[pi]
		if ranks%cluster.GPUsPerNode != 0 {
			return EPSweepPoint{}, fmt.Errorf("deepep: EP size %d not a multiple of %d", ranks, cluster.GPUsPerNode)
		}
		c, err := cluster.Cached(cluster.H800Config(ranks/cluster.GPUsPerNode, cluster.MPFT))
		if err != nil {
			return EPSweepPoint{}, err
		}
		d, err := Dispatch(c, cfg, seed)
		if err != nil {
			return EPSweepPoint{}, err
		}
		cb, err := Combine(c, cfg, seed+1)
		if err != nil {
			return EPSweepPoint{}, err
		}
		return EPSweepPoint{Ranks: ranks, Dispatch: d, Combine: cb}, nil
	})
}
