package deepep

import (
	"reflect"
	"testing"

	"dsv3/internal/cluster"
)

// TestRouteCacheStableAndKeyed: repeated Dispatch/Combine calls (cache
// hits) must reproduce the cold-start results exactly, and different
// seeds or EP sizes must not collide in the cache.
func TestRouteCacheStableAndKeyed(t *testing.T) {
	cfg := V3Config()
	cfg.DeterministicTraffic = true
	cfg.SampleTokens = 64
	c16, err := cluster.Cached(cluster.H800Config(2, cluster.MPFT))
	if err != nil {
		t.Fatal(err)
	}
	c32, err := cluster.Cached(cluster.H800Config(4, cluster.MPFT))
	if err != nil {
		t.Fatal(err)
	}

	cold, err := Dispatch(c16, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Dispatch(c16, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cache hit changed the result:\n%+v\n%+v", cold, warm)
	}

	otherSeed, err := Dispatch(c16, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(cold, otherSeed) {
		t.Fatal("different seeds returned identical traffic — cache key too coarse")
	}
	otherEP, err := Dispatch(c32, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(cold, otherEP) {
		t.Fatal("different EP sizes returned identical traffic — cache key too coarse")
	}
}
