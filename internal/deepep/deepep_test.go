package deepep

import (
	"testing"

	"dsv3/internal/cluster"
	"dsv3/internal/moe"
	"dsv3/internal/units"
)

// testConfig keeps the Figure 7 batch size but routes a 256-token
// sample per GPU with deterministic traffic so tests stay fast.
func testConfig() Config {
	cfg := V3Config()
	cfg.SampleTokens = 256
	cfg.DeterministicTraffic = true
	return cfg
}

func buildEP(t *testing.T, ranks int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Build(cluster.H800Config(ranks/8, cluster.MPFT))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDispatchBasicInvariants(t *testing.T) {
	c := buildEP(t, 32)
	res, err := Dispatch(c, testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("non-positive time")
	}
	if res.MeanNodes > 4 {
		t.Errorf("node-limited routing violated: M = %v", res.MeanNodes)
	}
	if res.MeanRemoteNodes >= res.MeanNodes {
		t.Errorf("remote nodes (%v) must be below total (%v)", res.MeanRemoteNodes, res.MeanNodes)
	}
	// Counted bytes credit M copies; wire carries only remote ones.
	if res.WireBytesPerGPU >= res.CountedBytesPerGPU {
		t.Errorf("wire bytes (%v) should be below counted bytes (%v)", res.WireBytesPerGPU, res.CountedBytesPerGPU)
	}
}

func TestDispatchBandwidthCanExceedNIC(t *testing.T) {
	// The Figure 7 signature: dedup lets the reported bandwidth beat
	// the 50 GB/s line rate at EP32.
	c := buildEP(t, 32)
	res, err := Dispatch(c, testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth < cluster.NICLine {
		t.Errorf("EP32 dispatch bandwidth %v should exceed the NIC line rate", res.Bandwidth)
	}
	if res.Bandwidth > 1.6*cluster.NICLine {
		t.Errorf("EP32 dispatch bandwidth %v implausibly high", res.Bandwidth)
	}
}

func TestFigure7Shape(t *testing.T) {
	// Peak at EP32, decline toward EP128, EP16 lowest (single peer);
	// every point within the paper's 40-65 GB/s band.
	points, err := Sweep(testConfig(), []int{16, 32, 64, 128}, 3)
	if err != nil {
		t.Fatal(err)
	}
	bw := map[int]float64{}
	for _, p := range points {
		bw[p.Ranks] = p.Dispatch.Bandwidth / units.GB
		if p.Dispatch.Bandwidth < 38*units.GB || p.Dispatch.Bandwidth > 66*units.GB {
			t.Errorf("EP%d dispatch %v GB/s outside the plausible Figure 7 band", p.Ranks, p.Dispatch.Bandwidth/units.GB)
		}
		if p.Combine.Bandwidth < 38*units.GB || p.Combine.Bandwidth > 66*units.GB {
			t.Errorf("EP%d combine %v GB/s outside the plausible Figure 7 band", p.Ranks, p.Combine.Bandwidth/units.GB)
		}
	}
	if !(bw[32] > bw[16] && bw[32] > bw[64] && bw[64] > bw[128]) {
		t.Errorf("Figure 7 shape wrong: %v", bw)
	}
	if bw[16] >= bw[128] {
		t.Errorf("EP16 should be the low point: %v", bw)
	}
}

func TestCombineMirrorsDispatch(t *testing.T) {
	c := buildEP(t, 32)
	cfg := testConfig()
	d, err := Dispatch(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Combine(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Same routing statistics (same seed), double payload.
	if cb.CountedBytesPerGPU < 1.9*d.CountedBytesPerGPU {
		t.Errorf("combine bytes (%v) should be ~2x dispatch (%v)", cb.CountedBytesPerGPU, d.CountedBytesPerGPU)
	}
	// Bandwididth convention keeps the two within the same band.
	ratio := cb.Bandwidth / d.Bandwidth
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("combine/dispatch bandwidth ratio %v out of band", ratio)
	}
}

func TestNodeLimitAblationReducesWireBytes(t *testing.T) {
	// §4.3: disabling the group limit inflates IB traffic.
	c := buildEP(t, 64)
	cfg := testConfig()
	limited, err := Dispatch(c, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gate.GroupTopK = 0
	free, err := Dispatch(c, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if limited.WireBytesPerGPU >= free.WireBytesPerGPU {
		t.Errorf("node-limited wire bytes (%v) should be below unrestricted (%v)",
			limited.WireBytesPerGPU, free.WireBytesPerGPU)
	}
	if limited.Time >= free.Time {
		t.Errorf("node-limited dispatch (%v) should be faster than unrestricted (%v)",
			limited.Time, free.Time)
	}
}

func TestSweepRejectsNonMultipleOf8(t *testing.T) {
	if _, err := Sweep(testConfig(), []int{12}, 1); err == nil {
		t.Error("EP size 12 must be rejected")
	}
}

func TestDispatchRejectsBadGate(t *testing.T) {
	c := buildEP(t, 16)
	cfg := testConfig()
	cfg.Gate = moe.Gate{Experts: 10, TopK: 3, Groups: 3}
	if _, err := Dispatch(c, cfg, 1); err == nil {
		t.Error("invalid gate must be rejected")
	}
}

func TestDispatchDeterministicPerSeed(t *testing.T) {
	c := buildEP(t, 16)
	a, _ := Dispatch(c, testConfig(), 7)
	b, _ := Dispatch(c, testConfig(), 7)
	if a.Time != b.Time || a.CountedBytesPerGPU != b.CountedBytesPerGPU {
		t.Error("same seed must reproduce identical results")
	}
}
