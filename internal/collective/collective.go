// Package collective implements the communication patterns the paper
// measures: NCCL-style all-to-all with PXN rail alignment (Figures 5
// and 6), and ring AllGather/ReduceScatter under different routing
// policies (Figure 8). The collectives construct explicit flow sets and
// hand them to the netsim fluid simulator.
package collective

import (
	"fmt"

	"dsv3/internal/cluster"
	"dsv3/internal/netsim"
	"dsv3/internal/units"
)

// Options tunes the protocol model shared by the collectives.
type Options struct {
	// LaunchOverhead is the per-collective software cost (kernel launch,
	// NCCL group handling). Dominates tiny-message latency (Figure 6's
	// flat region).
	LaunchOverhead units.Seconds
	// PerFlowOverheadBytes is a per-connection byte tax modelling
	// protocol/pipelining inefficiency at mid-sized per-peer messages;
	// it produces NCCL's characteristic rising bandwidth curve
	// (Figure 5). The tax is capped at the chunk size itself so tiny
	// (latency-protocol) messages are not penalized.
	PerFlowOverheadBytes units.Bytes
	// HostLatency is the per-flow endpoint software latency added on top
	// of path propagation.
	HostLatency units.Seconds
	// Multipath sprays each flow across all equal-cost paths (IB
	// adaptive routing). When false, each flow is pinned to one path
	// chosen by FlowSeed hashing.
	Multipath bool
	// FlowSeed perturbs single-path (ECMP-like) choices.
	FlowSeed uint64
}

// DefaultOptions matches the calibration used by the Figure 5/6
// experiments (see DESIGN.md).
func DefaultOptions() Options {
	return Options{
		LaunchOverhead:       80 * units.Microsecond,
		PerFlowOverheadBytes: 2 * units.MiB,
		HostLatency:          0.85 * units.Microsecond,
		Multipath:            true,
	}
}

// AllToAllResult reports one all-to-all execution.
type AllToAllResult struct {
	// Time is the wall-clock completion time including launch overhead.
	Time units.Seconds
	// AlgBW is NCCL's "algorithm bandwidth": per-rank buffer / time.
	AlgBW units.BytesPerSecond
	// MaxLinkBytes exposes the fabric hotspot for isolation studies.
	MaxLinkBytes units.Bytes
}

// Scratch is a reusable collective-execution context: it owns the flow
// table handed to the simulator and a netsim.Sim with the water-filling
// scratch, so sweeping many collectives (the Figure 5 grid, the plane-
// failure rounds) reuses one set of buffers instead of rebuilding the
// flow graph per round. A Scratch is not safe for concurrent use;
// sweeps thread one per worker via parallel.MapScratch. Results are
// byte-identical to the package-level functions.
type Scratch struct {
	sim       netsim.Sim
	flows     []netsim.Flow
	flowGroup []int
	stage     []units.Seconds
}

// NewScratch returns an empty context whose buffers grow to the largest
// collective it executes.
func NewScratch() *Scratch { return &Scratch{} }

// Sim exposes the embedded simulator context for callers (the plane-
// failure experiment) that build their own flow sets but still want to
// reuse the water-filling scratch.
func (s *Scratch) Sim() *netsim.Sim { return &s.sim }

// AllToAll runs an NCCL-style all-to-all over the first `ranks` GPUs of
// the cluster. Each rank holds a buffer of perRankBytes, sending
// perRankBytes/ranks to every peer (itself included — the self chunk is
// a local copy). Cross-node transfers use sender-side PXN: NVLink to
// the rail-aligned local GPU, then the destination GPU's plane.
func AllToAll(c *cluster.Cluster, ranks int, perRankBytes units.Bytes, opts Options) (AllToAllResult, error) {
	return NewScratch().AllToAll(c, ranks, perRankBytes, opts)
}

// AllToAll is the scratch-reusing form of the package-level AllToAll.
func (s *Scratch) AllToAll(c *cluster.Cluster, ranks int, perRankBytes units.Bytes, opts Options) (AllToAllResult, error) {
	if ranks < 2 || ranks > c.NumRanks() {
		return AllToAllResult{}, fmt.Errorf("collective: ranks=%d out of range (cluster has %d)", ranks, c.NumRanks())
	}
	chunk := perRankBytes / float64(ranks)
	if need := ranks * (ranks - 1); cap(s.flows) < need {
		s.flows = make([]netsim.Flow, 0, need)
	}
	flows := s.flows[:0]
	for r := 0; r < ranks; r++ {
		srcNode, srcGPU := c.RankOf(r)
		for q := 0; q < ranks; q++ {
			if q == r {
				continue // local copy, no fabric time
			}
			dstNode, dstGPU := c.RankOf(q)
			paths := c.PXNPaths(srcNode, srcGPU, dstNode, dstGPU)
			paths = selectPaths(paths, opts, uint64(r)<<20|uint64(q))
			flows = append(flows, netsim.Flow{
				Src:            c.GPUID(srcNode, srcGPU),
				Dst:            c.GPUID(dstNode, dstGPU),
				Bytes:          chunk + wireTax(chunk, opts),
				Paths:          paths,
				StartupLatency: opts.HostLatency + c.G.PathLatency(paths[0]),
			})
		}
	}
	s.flows = flows[:0]
	res := s.sim.Simulate(c.G, flows)
	t := res.Makespan + opts.LaunchOverhead
	return AllToAllResult{
		Time:         t,
		AlgBW:        perRankBytes / t,
		MaxLinkBytes: res.MaxLinkBytes,
	}, nil
}

// wireTax returns the protocol-overhead bytes for one flow, capped at
// the chunk size (tiny messages ride the latency protocol untaxed).
func wireTax(chunk units.Bytes, opts Options) units.Bytes {
	if chunk < opts.PerFlowOverheadBytes {
		return chunk
	}
	return opts.PerFlowOverheadBytes
}

// selectPaths applies the multipath option: either all equal-cost paths
// (adaptive routing) or a deterministic hash pick.
func selectPaths(paths [][]int, opts Options, key uint64) [][]int {
	if opts.Multipath || len(paths) <= 1 {
		return paths
	}
	idx := int(mix(key^opts.FlowSeed) % uint64(len(paths)))
	return paths[idx : idx+1]
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RingResult reports a concurrent ring-collective execution.
type RingResult struct {
	// GroupTime[g] is group g's completion time for all N-1 stages.
	GroupTime []units.Seconds
	// GroupBusBW[g] is the aggregate bus bandwidth of group g: total
	// bytes moved by the group divided by its time.
	GroupBusBW []units.BytesPerSecond
	// MeanBusBW averages GroupBusBW.
	MeanBusBW units.BytesPerSecond
}

// RingCollective runs ring AllGather/ReduceScatter (they are wire-time
// twins: N-1 stages of neighbour chunk exchange) for several concurrent
// groups over an arbitrary fabric. groups lists the member endpoint
// node IDs of each ring; perRankBytes is each rank's full buffer, moved
// in chunks of perRankBytes/N per stage.
//
// The routing policy is applied per ring edge (NCCL opens one QP per
// neighbour connection, hashed once): ECMP keeps whatever the hash
// picked for all stages, which is exactly how DP traffic "lacks
// randomness" and congests (§5.2.2).
func RingCollective(router *netsim.Router, groups [][]int, perRankBytes units.Bytes, policy netsim.Policy, opts Options) (RingResult, error) {
	return NewScratch().RingCollective(router, groups, perRankBytes, policy, opts)
}

// RingCollective is the scratch-reusing form of the package-level
// RingCollective.
func (s *Scratch) RingCollective(router *netsim.Router, groups [][]int, perRankBytes units.Bytes, policy netsim.Policy, opts Options) (RingResult, error) {
	g := router.Graph()
	flows := s.flows[:0]
	flowGroup := s.flowGroup[:0]
	for gi, members := range groups {
		n := len(members)
		if n < 2 {
			return RingResult{}, fmt.Errorf("collective: ring group %d needs >= 2 members", gi)
		}
		chunk := perRankBytes / float64(n)
		for i, src := range members {
			dst := members[(i+1)%n]
			// ECMP hashes the connection 5-tuple; static routing uses a
			// per-destination route table (spread by destination, the
			// way an operator would configure it).
			key := mix(uint64(gi)<<32 | uint64(i)<<16 | opts.FlowSeed)
			if policy == netsim.PolicyStatic {
				key = uint64(dst)
			}
			paths, err := router.Select(src, dst, policy, key)
			if err != nil {
				return RingResult{}, err
			}
			flows = append(flows, netsim.Flow{
				Src:            src,
				Dst:            dst,
				Bytes:          chunk + wireTax(chunk, opts),
				Paths:          paths,
				StartupLatency: opts.HostLatency + g.PathLatency(paths[0]),
			})
			flowGroup = append(flowGroup, gi)
		}
	}
	// One stage simulated with every group's edges active; a group's
	// stage time is its slowest edge. All N-1 stages repeat the same
	// contention pattern (QPs are pinned), so the total is (N-1)×stage.
	s.flows, s.flowGroup = flows[:0], flowGroup[:0]
	res := s.sim.Simulate(g, flows)
	out := RingResult{
		GroupTime:  make([]units.Seconds, len(groups)),
		GroupBusBW: make([]units.BytesPerSecond, len(groups)),
	}
	if cap(s.stage) < len(groups) {
		s.stage = make([]units.Seconds, len(groups))
	}
	stage := s.stage[:len(groups)]
	clear(stage)
	for fi, t := range res.FlowFinish {
		gi := flowGroup[fi]
		if t > stage[gi] {
			stage[gi] = t
		}
	}
	var sum float64
	for gi, members := range groups {
		n := float64(len(members))
		out.GroupTime[gi] = stage[gi]*(n-1) + opts.LaunchOverhead
		// Aggregate bus bandwidth: every rank moves one chunk per stage
		// for n-1 stages; total group bytes = n·(n-1)·chunk.
		out.GroupBusBW[gi] = n * (n - 1) * (perRankBytes / n) / out.GroupTime[gi]
		sum += out.GroupBusBW[gi]
	}
	out.MeanBusBW = sum / float64(len(groups))
	return out, nil
}
