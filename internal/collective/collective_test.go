package collective

import (
	"math"
	"testing"

	"dsv3/internal/cluster"
	"dsv3/internal/netsim"
	"dsv3/internal/topology"
	"dsv3/internal/units"
)

func mustCluster(t *testing.T, nodes int, kind cluster.FabricKind) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Build(cluster.H800Config(nodes, kind))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllToAllRejectsBadRanks(t *testing.T) {
	c := mustCluster(t, 2, cluster.MPFT)
	if _, err := AllToAll(c, 1, 1*units.MiB, DefaultOptions()); err == nil {
		t.Error("ranks=1 must be rejected")
	}
	if _, err := AllToAll(c, 17, 1*units.MiB, DefaultOptions()); err == nil {
		t.Error("ranks beyond cluster must be rejected")
	}
}

func TestAllToAllIntraNodeIsNVLinkBound(t *testing.T) {
	c := mustCluster(t, 1, cluster.MPFT)
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	opts.LaunchOverhead = 0
	size := units.Bytes(8 * units.GiB)
	res, err := AllToAll(c, 8, size, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Each GPU sends 7/8 of its buffer over its NVLink at 160 GB/s.
	want := size * 7 / 8 / cluster.NVLinkEffective
	if math.Abs(res.Time-want) > 0.02*want {
		t.Errorf("intra-node a2a time = %v, want ~%v", res.Time, want)
	}
}

func TestAllToAllCrossNodeIsNICBound(t *testing.T) {
	c := mustCluster(t, 4, cluster.MPFT)
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	opts.LaunchOverhead = 0
	size := units.Bytes(4 * units.GiB)
	res, err := AllToAll(c, 32, size, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 24 of 31 peers are remote: the NIC carries 24/32 of the buffer.
	want := size * 24 / 32 / cluster.NICEffective
	if math.Abs(res.Time-want) > 0.05*want {
		t.Errorf("cross-node a2a time = %v, want ~%v", res.Time, want)
	}
	// Algorithm bandwidth therefore exceeds the NIC rate (Figure 5's
	// >50 GB/s values): algbw = size/time = NIC * 32/24.
	if res.AlgBW < cluster.NICEffective {
		t.Errorf("algbw %v should exceed NIC rate thanks to NVLink locality", res.AlgBW)
	}
}

func TestAllToAllBandwidthRisesWithSize(t *testing.T) {
	c := mustCluster(t, 4, cluster.MPFT)
	opts := DefaultOptions()
	small, err := AllToAll(c, 32, 128*units.MiB, opts)
	if err != nil {
		t.Fatal(err)
	}
	large, err := AllToAll(c, 32, 8*units.GiB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if small.AlgBW >= large.AlgBW {
		t.Errorf("algbw should rise with message size: %v vs %v", small.AlgBW, large.AlgBW)
	}
}

func TestAllToAllMPFTvsMRFTParity(t *testing.T) {
	// Figure 5/6's claim: with PXN, the two fabrics are within noise.
	// Our simulator reproduces parity structurally: under 1% apart.
	for _, size := range []units.Bytes{64, 1 * units.MiB, 1 * units.GiB} {
		a, err := AllToAll(mustCluster(t, 4, cluster.MPFT), 32, size, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := AllToAll(mustCluster(t, 4, cluster.MRFT), 32, size, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(a.Time-b.Time) / b.Time
		if diff > 0.015 {
			t.Errorf("size %v: MPFT vs MRFT diff %.2f%% exceeds the paper's ±1.5%%", size, diff*100)
		}
	}
}

func TestAllToAllLatencyFloor(t *testing.T) {
	c := mustCluster(t, 2, cluster.MPFT)
	opts := DefaultOptions()
	res, err := AllToAll(c, 16, 64, opts) // 64 B total per rank
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < opts.LaunchOverhead {
		t.Errorf("tiny message should be launch-bound: %v < %v", res.Time, opts.LaunchOverhead)
	}
	if res.Time > 3*opts.LaunchOverhead {
		t.Errorf("tiny message latency too high: %v", res.Time)
	}
}

func buildRoCEFabric(leaves, spines, perLeaf int) (*netsim.Router, []int) {
	ft := topology.FatTree2{
		Leaves: leaves, Spines: spines, EndpointsPerLeaf: perLeaf,
		Params: topology.FabricParams{
			EndpointLinkCap: 22 * units.GB, // 200GbE effective
			SwitchLinkCap:   22 * units.GB,
			EndpointLinkLat: 1.2 * units.Microsecond,
			SwitchHopLat:    1.0 * units.Microsecond,
		},
	}
	g := ft.Build()
	return netsim.NewRouter(g), g.Endpoints()
}

// spread groups: member i of group g is endpoint g + i*groupCount, so
// every ring edge crosses leaves — the congestion-prone DP/TP layout.
func makeGroups(eps []int, tp int) [][]int {
	count := len(eps) / tp
	groups := make([][]int, count)
	for gi := 0; gi < count; gi++ {
		for i := 0; i < tp; i++ {
			groups[gi] = append(groups[gi], eps[gi+i*count])
		}
	}
	return groups
}

func TestRingCollectivePolicies(t *testing.T) {
	router, eps := buildRoCEFabric(4, 4, 8)
	groups := makeGroups(eps, 8)
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0

	size := units.Bytes(256 * units.MiB)
	ecmp, err := RingCollective(router, groups, size, netsim.PolicyECMP, opts)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RingCollective(router, groups, size, netsim.PolicyAdaptive, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8's ordering: AR must clearly beat ECMP.
	if ar.MeanBusBW < 1.3*ecmp.MeanBusBW {
		t.Errorf("AR (%v) should clearly beat ECMP (%v)", ar.MeanBusBW, ecmp.MeanBusBW)
	}
}

func TestRingCollectiveStaticNearAR(t *testing.T) {
	router, eps := buildRoCEFabric(4, 4, 8)
	groups := makeGroups(eps, 8)
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	size := units.Bytes(256 * units.MiB)
	ar, _ := RingCollective(router, groups, size, netsim.PolicyAdaptive, opts)
	static, _ := RingCollective(router, groups, size, netsim.PolicyStatic, opts)
	if static.MeanBusBW < 0.5*ar.MeanBusBW {
		t.Errorf("static routing (%v) should be in AR's neighbourhood (%v)", static.MeanBusBW, ar.MeanBusBW)
	}
}

func TestRingCollectiveRejectsTinyGroup(t *testing.T) {
	router, eps := buildRoCEFabric(2, 2, 2)
	if _, err := RingCollective(router, [][]int{{eps[0]}}, 1*units.MiB, netsim.PolicyAdaptive, DefaultOptions()); err == nil {
		t.Error("1-member ring must be rejected")
	}
}

func TestRingBusBWScalesWithTP(t *testing.T) {
	// Larger TP rings aggregate more NICs: TP8's group bandwidth should
	// exceed TP2's under adaptive routing.
	router, eps := buildRoCEFabric(4, 4, 8)
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	size := units.Bytes(256 * units.MiB)
	bw8, _ := RingCollective(router, makeGroups(eps, 8), size, netsim.PolicyAdaptive, opts)
	bw2, _ := RingCollective(router, makeGroups(eps, 2), size, netsim.PolicyAdaptive, opts)
	if bw8.MeanBusBW <= bw2.MeanBusBW {
		t.Errorf("TP8 aggregate (%v) should exceed TP2 (%v)", bw8.MeanBusBW, bw2.MeanBusBW)
	}
}

func TestECMPWorseWithMoreConcurrency(t *testing.T) {
	// More concurrent groups => more hash collisions => lower mean bw.
	router, eps := buildRoCEFabric(4, 4, 8)
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	size := units.Bytes(256 * units.MiB)
	all := makeGroups(eps, 8)
	few, _ := RingCollective(router, all[:1], size, netsim.PolicyECMP, opts)
	many, _ := RingCollective(router, all, size, netsim.PolicyECMP, opts)
	if many.MeanBusBW > few.MeanBusBW*1.001 {
		t.Errorf("concurrency should not improve ECMP: %v vs %v", many.MeanBusBW, few.MeanBusBW)
	}
}
