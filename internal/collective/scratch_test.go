package collective

import (
	"reflect"
	"testing"

	"dsv3/internal/cluster"
	"dsv3/internal/netsim"
	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// TestScratchAllToAllMatchesFresh reuses one Scratch across different
// cluster sizes, fabrics and message sizes (grow and shrink) and pins
// every result against the scratch-free entry point.
func TestScratchAllToAllMatchesFresh(t *testing.T) {
	opts := DefaultOptions()
	sc := NewScratch()
	cases := []struct {
		nodes int
		kind  cluster.FabricKind
		ranks int
		bytes units.Bytes
	}{
		{4, cluster.MPFT, 32, 256 * units.MiB},
		{8, cluster.MRFT, 64, 1 * units.GiB},
		{2, cluster.MPFT, 16, 64 * units.MiB},
		{4, cluster.MPFT, 32, 256 * units.MiB},
	}
	for i, tc := range cases {
		c, err := cluster.Cached(cluster.H800Config(tc.nodes, tc.kind))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.AllToAll(c, tc.ranks, tc.bytes, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := AllToAll(c, tc.ranks, tc.bytes, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: scratch result %+v != fresh %+v", i, got, want)
		}
	}
}

// TestScratchRingCollectiveMatchesFresh does the same for the ring
// collectives (flow-group bookkeeping and stage buffers included).
func TestScratchRingCollectiveMatchesFresh(t *testing.T) {
	ft := topology.FatTree2{
		Leaves: 4, Spines: 4, EndpointsPerLeaf: 8,
		Params: topology.FabricParams{
			EndpointLinkCap: 22 * units.GB,
			SwitchLinkCap:   22 * units.GB,
			EndpointLinkLat: 1.2 * units.Microsecond,
			SwitchHopLat:    1.0 * units.Microsecond,
		},
	}
	opts := DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	sc := NewScratch()
	for _, pol := range []netsim.Policy{netsim.PolicyECMP, netsim.PolicyAdaptive, netsim.PolicyStatic} {
		// Fresh fabric/router per run: the router's path cache mutates.
		scratchRouter := netsim.NewRouter(ft.Build())
		eps := scratchRouter.Graph().Endpoints()
		groups := [][]int{{eps[0], eps[9], eps[17]}, {eps[1], eps[10], eps[18]}}
		got, err := sc.RingCollective(scratchRouter, groups, 64*units.MiB, pol, opts)
		if err != nil {
			t.Fatal(err)
		}
		freshRouter := netsim.NewRouter(ft.Build())
		want, err := RingCollective(freshRouter, groups, 64*units.MiB, pol, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %v: scratch result %+v != fresh %+v", pol, got, want)
		}
	}
}
