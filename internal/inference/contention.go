package inference

import (
	"fmt"

	"dsv3/internal/units"
)

// This file models §4.5 (bandwidth contention) and the §2.3.1 overlap
// analysis:
//
//   - during decode, KV-cache transfers from CPU memory can saturate
//     PCIe at tens of GB/s; when EP traffic shares the same PCIe path
//     to the NIC, the contention inflates communication time and TPOT
//     ("latency spikes"). §4.5.2's suggestion — dynamic traffic
//     prioritization — restores the EP reservation.
//   - dual micro-batch overlap (§2.3.1) hides communication under
//     computation (or vice versa); the ablation here quantifies the
//     gain over serial execution.

// ContentionConfig describes the PCIe sharing scenario of §4.5.1.
type ContentionConfig struct {
	// PCIeBandwidth is the host-link capacity shared by NIC traffic and
	// KV-cache transfers (~64 GB/s for PCIe 5.0 x16).
	PCIeBandwidth units.BytesPerSecond
	// KVTransferRate is the KV-cache fetch demand ("tens of GB/s").
	KVTransferRate units.BytesPerSecond
	// EPDemand is the NIC-bound EP traffic demand (≤ NIC line rate).
	EPDemand units.BytesPerSecond
}

// EffectiveEPBandwidth returns the EP bandwidth under fair sharing
// (prioritized=false: both flows shrink proportionally when the sum
// exceeds PCIe capacity) or with EP traffic prioritized (§4.5.2).
func (c ContentionConfig) EffectiveEPBandwidth(prioritized bool) (units.BytesPerSecond, error) {
	if c.PCIeBandwidth <= 0 || c.EPDemand <= 0 || c.KVTransferRate < 0 {
		return 0, fmt.Errorf("inference: bad contention config %+v", c)
	}
	if prioritized {
		// EP gets its demand first; KV takes the remainder.
		if c.EPDemand > c.PCIeBandwidth {
			return c.PCIeBandwidth, nil
		}
		return c.EPDemand, nil
	}
	total := c.EPDemand + c.KVTransferRate
	if total <= c.PCIeBandwidth {
		return c.EPDemand, nil
	}
	return c.EPDemand / total * c.PCIeBandwidth, nil
}

// TPOTUnderContention recomputes the §2.3.2 TPOT with EP bandwidth
// degraded by PCIe contention.
func (c EPConfig) TPOTUnderContention(nicBW units.BytesPerSecond, cc ContentionConfig, prioritized bool) (Analysis, error) {
	eff, err := cc.EffectiveEPBandwidth(prioritized)
	if err != nil {
		return Analysis{}, err
	}
	if eff > nicBW {
		eff = nicBW
	}
	return c.Analyze(eff)
}

// OverlapAblation quantifies §2.3.1: serial execution exposes
// communication (per layer: compute + 2·comm), dual micro-batch overlap
// pays 2·max(comm, compute) for two micro-batches.
type OverlapAblation struct {
	SerialTPOT    units.Seconds
	OverlapTPOT   units.Seconds
	SpeedupFactor float64
}

// AnalyzeOverlap compares the two execution modes at a given bandwidth
// and per-layer compute time.
func (c EPConfig) AnalyzeOverlap(bw units.BytesPerSecond, computePerLayer units.Seconds) (OverlapAblation, error) {
	if err := c.Validate(); err != nil {
		return OverlapAblation{}, err
	}
	if bw <= 0 || computePerLayer < 0 {
		return OverlapAblation{}, fmt.Errorf("inference: bad overlap inputs")
	}
	comm := c.CommTimePerStep(bw)
	layers := float64(c.Layers)
	// Serial: one batch pays its compute and both all-to-alls in
	// sequence; per layer = compute + 2·comm.
	serial := layers * (computePerLayer + 2*comm)
	// Overlapped: the batch splits into two micro-batches (half the
	// compute each); while one computes, the other communicates. Each
	// layer runs two phases of max(comm, compute/2).
	per := comm
	if computePerLayer/2 > per {
		per = computePerLayer / 2
	}
	overlap := layers * 2 * per
	return OverlapAblation{
		SerialTPOT:    serial,
		OverlapTPOT:   overlap,
		SpeedupFactor: serial / overlap,
	}, nil
}
