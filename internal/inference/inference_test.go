package inference

import (
	"math"
	"testing"

	"dsv3/internal/units"
)

// §2.3.2: the paper's own arithmetic must reproduce to the digit.
func TestPaperIBNumbers(t *testing.T) {
	cfg := V3EPConfig()
	a, err := cfg.Analyze(50 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.CommTime-120.96*units.Microsecond) > 1e-9 {
		t.Errorf("comm time = %v, want 120.96us", units.FormatSeconds(a.CommTime))
	}
	if math.Abs(a.TimePerLayer-241.92*units.Microsecond) > 1e-9 {
		t.Errorf("time/layer = %v, want 241.92us", units.FormatSeconds(a.TimePerLayer))
	}
	if math.Abs(a.TPOT-14.75712*units.Millisecond) > 1e-6 {
		t.Errorf("TPOT = %v, want 14.76ms", units.FormatSeconds(a.TPOT))
	}
	if math.Abs(a.TPS-67.76) > 0.1 {
		t.Errorf("TPS = %v, want ~67", a.TPS)
	}
}

func TestPaperNVL72Numbers(t *testing.T) {
	cfg := V3EPConfig()
	a, err := cfg.Analyze(900 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.CommTime-6.72*units.Microsecond) > 1e-9 {
		t.Errorf("comm time = %v, want 6.72us", units.FormatSeconds(a.CommTime))
	}
	if math.Abs(a.TPOT-0.81984*units.Millisecond) > 1e-7 {
		t.Errorf("TPOT = %v, want 0.82ms", units.FormatSeconds(a.TPOT))
	}
	if a.TPS < 1190 || a.TPS > 1230 {
		t.Errorf("TPS = %v, want ~1200", a.TPS)
	}
}

func TestCommBytes(t *testing.T) {
	cfg := V3EPConfig()
	// (1+2) bytes × 32 tokens × 9 copies × 7000 (the paper's "7K").
	want := 3.0 * 32 * 9 * 7000
	if got := cfg.CommBytesPerStep(); got != want {
		t.Errorf("comm bytes = %v, want %v", got, want)
	}
}

func TestSweepMonotone(t *testing.T) {
	cfg := V3EPConfig()
	pts, err := cfg.Sweep([]units.BytesPerSecond{40 * units.GB, 50 * units.GB, 400 * units.GB, 900 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Analysis.TPS <= pts[i-1].Analysis.TPS {
			t.Errorf("TPS must rise with bandwidth: %+v", pts)
		}
	}
	// 18x bandwidth => exactly 18x TPS in the latency-free model.
	ratio := pts[3].Analysis.TPS / pts[1].Analysis.TPS
	if math.Abs(ratio-18) > 1e-9 {
		t.Errorf("TPS ratio = %v, want 18", ratio)
	}
}

func TestAnalyzeWithCompute(t *testing.T) {
	cfg := V3EPConfig()
	free, _ := cfg.Analyze(50 * units.GB)
	// Compute below comm time: fully hidden by overlap.
	hidden, err := cfg.AnalyzeWithCompute(50*units.GB, 100*units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.TPOT != free.TPOT {
		t.Errorf("sub-comm compute should be hidden: %v vs %v", hidden.TPOT, free.TPOT)
	}
	// Compute above comm time: compute-bound.
	bound, _ := cfg.AnalyzeWithCompute(50*units.GB, 200*units.Microsecond)
	if math.Abs(bound.TimePerLayer-400*units.Microsecond) > 1e-12 {
		t.Errorf("compute-bound layer time = %v, want 400us", bound.TimePerLayer)
	}
}

func TestValidation(t *testing.T) {
	bad := V3EPConfig()
	bad.Layers = 0
	if _, err := bad.Analyze(50 * units.GB); err == nil {
		t.Error("zero layers must fail")
	}
	if _, err := V3EPConfig().Analyze(0); err == nil {
		t.Error("zero bandwidth must fail")
	}
	if _, err := V3EPConfig().Sweep([]units.BytesPerSecond{-1}); err == nil {
		t.Error("negative bandwidth must fail in sweep")
	}
}
