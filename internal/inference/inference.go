// Package inference implements the §2.3.2 analysis: the theoretical
// decode-speed ceiling of expert-parallel MoE inference as dictated by
// interconnect bandwidth. It reproduces the paper's arithmetic —
// 14.76 ms TPOT (~67 tokens/s) on 400G IB, 0.82 ms (~1200 tokens/s) on
// a GB200 NVL72-class scale-up fabric — and generalizes it into a
// bandwidth sweep plus a dual-micro-batch overlap model.
package inference

import (
	"fmt"

	"dsv3/internal/units"
)

// EPConfig captures the expert-parallel deployment of §2.3.2.
type EPConfig struct {
	// TokensPerDevice is the per-step batch each expert device handles
	// (32 in the paper: compute/latency balance point).
	TokensPerDevice int
	// HiddenBytes is the token hidden size in bytes at 1 B/element
	// (~7K for DeepSeek-V3).
	HiddenBytes units.Bytes
	// DispatchBytesPerElem / CombineBytesPerElem: FP8 dispatch (1) and
	// BF16 combine (2).
	DispatchBytesPerElem float64
	CombineBytesPerElem  float64
	// Copies is the number of expert destinations per token: 8 routed
	// plus 1 shared in the paper's calculation.
	Copies int
	// Layers is the model depth (61).
	Layers int
}

// V3EPConfig returns the paper's numbers. Note the paper rounds the
// hidden size to "approximately 7K" and computes with exactly 7000
// (3 B × 32 × 9 × 7000 / 50 GB/s = 120.96 µs); we keep that value so the
// derivation reproduces to the digit. The true hidden size is 7168.
func V3EPConfig() EPConfig {
	return EPConfig{
		TokensPerDevice:      32,
		HiddenBytes:          7000,
		DispatchBytesPerElem: 1,
		CombineBytesPerElem:  2,
		Copies:               9,
		Layers:               61,
	}
}

// Validate checks the configuration.
func (c EPConfig) Validate() error {
	if c.TokensPerDevice <= 0 || c.HiddenBytes <= 0 || c.Copies <= 0 || c.Layers <= 0 {
		return fmt.Errorf("inference: non-positive EP config %+v", c)
	}
	return nil
}

// CommBytesPerStep returns the bytes one device moves for one EP step
// (dispatch + combine together).
func (c EPConfig) CommBytesPerStep() units.Bytes {
	perToken := (c.DispatchBytesPerElem + c.CombineBytesPerElem) * c.HiddenBytes * float64(c.Copies)
	return perToken * float64(c.TokensPerDevice)
}

// CommTimePerStep returns the paper's "Comm. Time": the two all-to-all
// transfers of one layer at the given per-device bandwidth. Network
// latency is deliberately excluded, as in the paper.
func (c EPConfig) CommTimePerStep(bw units.BytesPerSecond) units.Seconds {
	return c.CommBytesPerStep() / bw
}

// Analysis is the full §2.3.2 derivation for one interconnect.
type Analysis struct {
	CommTime     units.Seconds // one dispatch+combine pass
	TimePerLayer units.Seconds // 2x comm under dual-micro-batch overlap
	TPOT         units.Seconds // TimePerLayer x Layers
	TPS          float64       // 1 / TPOT
}

// Analyze computes the decode ceiling at a per-device bandwidth.
// Under dual-micro-batch overlap with negligible compute, each layer
// costs two communication passes (one per micro-batch phase).
func (c EPConfig) Analyze(bw units.BytesPerSecond) (Analysis, error) {
	if err := c.Validate(); err != nil {
		return Analysis{}, err
	}
	if bw <= 0 {
		return Analysis{}, fmt.Errorf("inference: bandwidth must be positive")
	}
	comm := c.CommTimePerStep(bw)
	a := Analysis{
		CommTime:     comm,
		TimePerLayer: 2 * comm,
	}
	a.TPOT = a.TimePerLayer * float64(c.Layers)
	a.TPS = 1 / a.TPOT
	return a, nil
}

// AnalyzeWithCompute refines the ceiling with a per-layer compute time:
// under dual-micro-batch overlap the layer cost is twice the max of
// communication and computation — the overlap hides the smaller one.
func (c EPConfig) AnalyzeWithCompute(bw units.BytesPerSecond, computePerLayer units.Seconds) (Analysis, error) {
	a, err := c.Analyze(bw)
	if err != nil {
		return Analysis{}, err
	}
	per := a.CommTime
	if computePerLayer > per {
		per = computePerLayer
	}
	a.TimePerLayer = 2 * per
	a.TPOT = a.TimePerLayer * float64(c.Layers)
	a.TPS = 1 / a.TPOT
	return a, nil
}

// SweepPoint is one bandwidth point of the interconnect sweep.
type SweepPoint struct {
	Bandwidth units.BytesPerSecond
	Analysis  Analysis
}

// Sweep analyzes a set of interconnect bandwidths (e.g. 50 GB/s IB,
// 400 GB/s NVLink-class, 900 GB/s NVL72-class).
func (c EPConfig) Sweep(bws []units.BytesPerSecond) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(bws))
	for _, bw := range bws {
		a, err := c.Analyze(bw)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Bandwidth: bw, Analysis: a})
	}
	return out, nil
}
