package inference

import (
	"math"
	"testing"

	"dsv3/internal/units"
)

func TestContentionFairSharing(t *testing.T) {
	cc := ContentionConfig{
		PCIeBandwidth:  64 * units.GB,
		KVTransferRate: 40 * units.GB,
		EPDemand:       50 * units.GB,
	}
	eff, err := cc.EffectiveEPBandwidth(false)
	if err != nil {
		t.Fatal(err)
	}
	// 90 GB/s demanded over 64: EP gets 50/90*64 ≈ 35.6 GB/s.
	want := 50.0 / 90 * 64 * units.GB
	if math.Abs(eff-want) > 1e-6*want {
		t.Errorf("fair-shared EP bandwidth = %v, want %v", eff, want)
	}
}

func TestContentionPrioritized(t *testing.T) {
	cc := ContentionConfig{
		PCIeBandwidth:  64 * units.GB,
		KVTransferRate: 40 * units.GB,
		EPDemand:       50 * units.GB,
	}
	eff, err := cc.EffectiveEPBandwidth(true)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 50*units.GB {
		t.Errorf("prioritized EP should keep its demand: %v", eff)
	}
}

func TestContentionNoOversubscription(t *testing.T) {
	cc := ContentionConfig{
		PCIeBandwidth:  64 * units.GB,
		KVTransferRate: 5 * units.GB,
		EPDemand:       50 * units.GB,
	}
	eff, _ := cc.EffectiveEPBandwidth(false)
	if eff != 50*units.GB {
		t.Errorf("under-subscribed link must not throttle EP: %v", eff)
	}
}

func TestContentionValidation(t *testing.T) {
	if _, err := (ContentionConfig{}).EffectiveEPBandwidth(false); err == nil {
		t.Error("zero config must fail")
	}
}

// §4.5.1's latency-spike scenario: heavy KV fetches inflate TPOT;
// §4.5.2's traffic prioritization restores it.
func TestTPOTUnderContention(t *testing.T) {
	cfg := V3EPConfig()
	cc := ContentionConfig{
		PCIeBandwidth:  64 * units.GB,
		KVTransferRate: 40 * units.GB,
		EPDemand:       50 * units.GB,
	}
	base, _ := cfg.Analyze(50 * units.GB)
	contended, err := cfg.TPOTUnderContention(50*units.GB, cc, false)
	if err != nil {
		t.Fatal(err)
	}
	prioritized, err := cfg.TPOTUnderContention(50*units.GB, cc, true)
	if err != nil {
		t.Fatal(err)
	}
	if contended.TPOT <= base.TPOT {
		t.Error("contention must inflate TPOT")
	}
	if contended.TPOT < 1.3*base.TPOT {
		t.Errorf("40 GB/s of KV traffic should inflate TPOT substantially: %v vs %v", contended.TPOT, base.TPOT)
	}
	if prioritized.TPOT != base.TPOT {
		t.Errorf("prioritization should restore the baseline: %v vs %v", prioritized.TPOT, base.TPOT)
	}
}

// §2.3.1 overlap ablation.
func TestAnalyzeOverlap(t *testing.T) {
	cfg := V3EPConfig()
	comm := cfg.CommTimePerStep(50 * units.GB)

	// Balance point: compute/2 == comm gives the maximal 2x win.
	r, err := cfg.AnalyzeOverlap(50*units.GB, 2*comm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.SpeedupFactor-2) > 1e-9 {
		t.Errorf("balanced overlap should be exactly 2x, got %v", r.SpeedupFactor)
	}

	// Comm-dominated: speedup tends to (2c)/(2c) + compute share.
	r, _ = cfg.AnalyzeOverlap(50*units.GB, 0.1*comm)
	if r.SpeedupFactor < 1 || r.SpeedupFactor > 1.2 {
		t.Errorf("comm-dominated speedup should be modest: %v", r.SpeedupFactor)
	}

	// Compute-dominated: communication fully hidden; speedup toward
	// (compute+2comm)/compute.
	r, _ = cfg.AnalyzeOverlap(50*units.GB, 20*comm)
	want := (20*comm + 2*comm) / (20 * comm)
	if math.Abs(r.SpeedupFactor-want) > 1e-9 {
		t.Errorf("compute-dominated speedup = %v, want %v", r.SpeedupFactor, want)
	}

	// Overlap never loses.
	for _, mult := range []float64{0, 0.5, 1, 2, 5, 50} {
		r, err := cfg.AnalyzeOverlap(50*units.GB, mult*comm)
		if err != nil {
			t.Fatal(err)
		}
		if r.SpeedupFactor < 1-1e-12 {
			t.Errorf("overlap must never lose: compute=%v*comm gives %v", mult, r.SpeedupFactor)
		}
	}
}

func TestAnalyzeOverlapValidation(t *testing.T) {
	if _, err := V3EPConfig().AnalyzeOverlap(0, 1); err == nil {
		t.Error("zero bandwidth must fail")
	}
	if _, err := V3EPConfig().AnalyzeOverlap(1, -1); err == nil {
		t.Error("negative compute must fail")
	}
}
