package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestE4M3KnownValues(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{-1, -1},
		{448, 448},   // max finite
		{500, 448},   // saturates, no inf in E4M3 training convention
		{-500, -448}, // symmetric saturation
		{0.0625, 1.0 / 16},
		{1.0 / 512, 1.0 / 512},  // min subnormal 2^-9
		{1.0 / 2048, 0},         // below half of min subnormal rounds to 0
		{3.0 / 1024, 1.0 / 256}, // 2^-9 * 3 rounds within subnormal grid
		{240, 240},              // 1.875 * 128
		{17, 16},                // RNE: halfway between 16 and 18 -> 16
		{19, 20},                // RNE: halfway between 18 and 20 -> 20
	}
	for _, c := range cases {
		if got := E4M3.Quantize(c.in); got != c.want {
			t.Errorf("E4M3.Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestE5M2KnownValues(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{57344, 57344}, // max finite
		{1e9, 57344},   // saturates
		{1.25, 1.25},   // 1 + 1/4 exactly representable
		{1.1, 1.0},     // rounds to nearest of {1, 1.25}: 1.1 -> 1.0
		{1.2, 1.25},
		{math.Ldexp(1, -16), math.Ldexp(1, -16)}, // min subnormal
	}
	for _, c := range cases {
		if got := E5M2.Quantize(c.in); got != c.want {
			t.Errorf("E5M2.Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBF16MatchesFloat32Truncation(t *testing.T) {
	// BF16 is the top 16 bits of an IEEE float32 with RNE; cross-check
	// our generic minifloat against the bit-twiddling definition.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64() * math.Exp(rng.NormFloat64()*8)
		want := bf16ViaBits(float32(x))
		got := BF16.Quantize(float64(float32(x)))
		if got != float64(want) {
			t.Fatalf("BF16 mismatch for %v: generic %v, bits %v", x, got, want)
		}
	}
}

func bf16ViaBits(f float32) float32 {
	u := math.Float32bits(f)
	// round-to-nearest-even on the low 16 bits
	r := u + 0x7fff + (u>>16)&1
	return math.Float32frombits(r &^ 0xffff)
}

func TestFormatMetadata(t *testing.T) {
	if E4M3.Bits() != 8 || E5M2.Bits() != 8 {
		t.Error("FP8 formats must be 8 bits wide")
	}
	if E5M6.Bits() != 12 {
		t.Errorf("E5M6 is 12 bits, got %d", E5M6.Bits())
	}
	if BF16.Bits() != 16 || FP16.Bits() != 16 {
		t.Error("16-bit formats must be 16 bits wide")
	}
	if E4M3.MinNormal() != math.Ldexp(1, -6) {
		t.Errorf("E4M3 min normal = %v", E4M3.MinNormal())
	}
	if E4M3.MinSubnormal() != math.Ldexp(1, -9) {
		t.Errorf("E4M3 min subnormal = %v", E4M3.MinSubnormal())
	}
	if E4M3.Epsilon() != 0.125 {
		t.Errorf("E4M3 epsilon = %v", E4M3.Epsilon())
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	formats := []Format{E4M3, E5M2, E5M6, FP16, BF16}
	for _, f := range formats {
		for i := 0; i < 2000; i++ {
			x := rng.NormFloat64() * math.Exp(rng.NormFloat64()*6)
			q := f.Quantize(x)
			if qq := f.Quantize(q); qq != q {
				t.Fatalf("%s not idempotent at %v: %v -> %v", f.Name, x, q, qq)
			}
			if !f.Representable(q) {
				t.Fatalf("%s: Quantize output not representable: %v", f.Name, q)
			}
		}
	}
}

func TestQuantizeMonotonic(t *testing.T) {
	// Rounding must be monotone: x <= y implies Q(x) <= Q(y).
	rng := rand.New(rand.NewSource(3))
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		return E4M3.Quantize(x) <= E4M3.Quantize(y)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuantizeSymmetric(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		return E4M3.Quantize(-x) == -E4M3.Quantize(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeErrorBound(t *testing.T) {
	// For values in the normal range, the relative error of RNE is at
	// most 2^-(mant+1) (half an ulp).
	rng := rand.New(rand.NewSource(4))
	for _, f := range []Format{E4M3, E5M2, BF16, FP16, E5M6} {
		bound := math.Ldexp(1, -f.MantBits-1) * (1 + 1e-12)
		for i := 0; i < 3000; i++ {
			x := (rng.Float64()*2 - 1) * f.MaxFinite * 0.9
			if math.Abs(x) < f.MinNormal() {
				continue
			}
			q := f.Quantize(x)
			rel := math.Abs(q-x) / math.Abs(x)
			if rel > bound {
				t.Fatalf("%s: relative error %v exceeds half-ulp bound %v at x=%v", f.Name, rel, bound, x)
			}
		}
	}
}

func TestQuantizeSpecials(t *testing.T) {
	if !math.IsNaN(E4M3.Quantize(math.NaN())) {
		t.Error("NaN should pass through")
	}
	if got := E4M3.Quantize(math.Inf(1)); got != 448 {
		t.Errorf("saturating format should clamp +inf to max, got %v", got)
	}
	if got := FP16.Quantize(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("IEEE-style format should keep +inf, got %v", got)
	}
	if got := FP16.Quantize(1e9); !math.IsInf(got, 1) {
		t.Errorf("IEEE-style overflow should go to +inf, got %v", got)
	}
}

func TestQuantizeSlice(t *testing.T) {
	src := []float64{0.1, 0.2, 0.3}
	dst := make([]float64, 3)
	E4M3.QuantizeSlice(dst, src)
	for i := range src {
		if dst[i] != E4M3.Quantize(src[i]) {
			t.Errorf("slice quantization mismatch at %d", i)
		}
	}
	// aliasing is allowed
	E4M3.QuantizeSlice(src, src)
	for i := range src {
		if src[i] != dst[i] {
			t.Errorf("aliased quantization mismatch at %d", i)
		}
	}
}

func TestQuantizeSliceLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched lengths")
		}
	}()
	E4M3.QuantizeSlice(make([]float64, 2), make([]float64, 3))
}

// Every positive E4M3 code must round-trip through Quantize: enumerate
// all 126 positive finite values directly from the bit layout.
func TestE4M3ExhaustiveRoundTrip(t *testing.T) {
	var values []float64
	for expField := 0; expField <= 15; expField++ {
		for mant := 0; mant < 8; mant++ {
			if expField == 15 && mant == 7 {
				continue // NaN code
			}
			var v float64
			if expField == 0 {
				v = float64(mant) / 8 * math.Ldexp(1, -6)
			} else {
				v = (1 + float64(mant)/8) * math.Ldexp(1, expField-7)
			}
			values = append(values, v)
		}
	}
	if len(values) != 127 { // 126 nonzero + zero (mant 0 exp 0)
		t.Fatalf("expected 127 non-negative codes, got %d", len(values))
	}
	if values[len(values)-1] != 448 {
		t.Fatalf("max enumerated value = %v, want 448", values[len(values)-1])
	}
	for _, v := range values {
		if got := E4M3.Quantize(v); got != v {
			t.Errorf("E4M3 code %v not preserved (got %v)", v, got)
		}
	}
}
