package quant

import (
	"math"
	"math/rand"
	"testing"
)

func gaussianTile(rng *rand.Rand, n int, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * sigma
	}
	return xs
}

func TestQuantizeTileScaleMapsMaxToFormatMax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tile := gaussianTile(rng, TileWidth, 3)
	q := QuantizeTile(E4M3, tile)
	maxAbs := 0.0
	for _, x := range tile {
		maxAbs = math.Max(maxAbs, math.Abs(x))
	}
	if math.Abs(q.Scale-maxAbs/448) > 1e-15 {
		t.Errorf("scale = %v, want %v", q.Scale, maxAbs/448)
	}
	// The max-magnitude element must be exactly preserved (it maps to
	// the format's max finite value).
	for i, x := range tile {
		if math.Abs(x) == maxAbs && math.Abs(q.Values[i]) != maxAbs {
			t.Errorf("tile max not preserved: %v -> %v", x, q.Values[i])
		}
	}
}

func TestQuantizeTileErrorBound(t *testing.T) {
	// With a per-tile scale, every element's absolute error is bounded by
	// half an ulp at the tile max: |err| <= maxAbs * 2^-(mant) (loose).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		tile := gaussianTile(rng, TileWidth, math.Exp(rng.NormFloat64()*3))
		q := QuantizeTile(E4M3, tile)
		maxAbs := 0.0
		for _, x := range tile {
			maxAbs = math.Max(maxAbs, math.Abs(x))
		}
		bound := maxAbs * math.Ldexp(1, -E4M3.MantBits)
		for i := range tile {
			if err := math.Abs(q.Values[i] - tile[i]); err > bound {
				t.Fatalf("tile error %v exceeds bound %v", err, bound)
			}
		}
	}
}

func TestQuantizeTileZero(t *testing.T) {
	q := QuantizeTile(E4M3, make([]float64, 8))
	if q.Scale != 1 {
		t.Errorf("zero tile scale = %v, want 1", q.Scale)
	}
	for _, v := range q.Values {
		if v != 0 {
			t.Errorf("zero tile should quantize to zeros, got %v", v)
		}
	}
}

func TestQuantizeRowTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	row := gaussianTile(rng, 300, 1) // 3 tiles: 128 + 128 + 44
	tiles := QuantizeRowTiles(E4M3, row)
	if len(tiles) != 3 {
		t.Fatalf("expected 3 tiles, got %d", len(tiles))
	}
	if len(tiles[0].Values) != 128 || len(tiles[2].Values) != 44 {
		t.Errorf("tile lengths wrong: %d, %d", len(tiles[0].Values), len(tiles[2].Values))
	}
	// Tiles must be independent: scaling one region must not affect
	// another tile's scale.
	row2 := append([]float64(nil), row...)
	for i := 0; i < 128; i++ {
		row2[i] *= 1000
	}
	tiles2 := QuantizeRowTiles(E4M3, row2)
	if tiles2[1].Scale != tiles[1].Scale {
		t.Error("tile scales are not independent across tiles")
	}
}

func TestFineGrainedBeatsPerTensorWithOutlier(t *testing.T) {
	// The motivation for tile-wise quantization: FP8 is a float format,
	// so a shared scale only hurts when it pushes small-magnitude tiles
	// into the subnormal/underflow range. LLM activations have exactly
	// that structure — outlier channels hundreds of times larger than
	// quiet channels. Build a row with one loud tile (outlier 300) and
	// three quiet tiles (σ=1e-4): per-tensor scaling must crush the
	// quiet tiles' relative precision; per-tile scaling must not.
	rng := rand.New(rand.NewSource(8))
	row := make([]float64, 512)
	copy(row[:128], gaussianTile(rng, 128, 1))
	row[0] = 300 // outlier pinning the global scale
	for i := 128; i < 512; i++ {
		row[i] = rng.NormFloat64() * 1e-4
	}
	meanRel := func(got []float64) float64 {
		var sum float64
		for i := range got {
			if row[i] == 0 {
				continue
			}
			sum += math.Abs(got[i]-row[i]) / math.Abs(row[i])
		}
		return sum / float64(len(got))
	}
	var fineVals []float64
	for _, tile := range QuantizeRowTiles(E4M3, row) {
		fineVals = append(fineVals, tile.Values...)
	}
	coarse := QuantizePerTensor(E4M3, row)
	fineErr, coarseErr := meanRel(fineVals), meanRel(coarse.Values)
	if fineErr*5 > coarseErr {
		t.Errorf("fine-grained (mean rel err %v) should be far better than per-tensor (%v)", fineErr, coarseErr)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At mismatch")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Error("Row view wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must be deep")
	}
}

func TestQuantizeBlockwiseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMatrix(256, 200)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	q, scales := QuantizeBlockwise(E4M3, m, 128, 128)
	if q.Rows != 256 || q.Cols != 200 {
		t.Fatal("blockwise output shape wrong")
	}
	// 2 block-rows × 2 block-cols
	if len(scales) != 4 {
		t.Fatalf("expected 4 block scales, got %d", len(scales))
	}
	for i := range m.Data {
		if math.Abs(q.Data[i]-m.Data[i]) > math.Abs(m.Data[i])*0.07+1e-3 {
			t.Fatalf("blockwise error too large at %d: %v vs %v", i, q.Data[i], m.Data[i])
		}
	}
}

func TestQuantizeBlockwiseBlockIndependence(t *testing.T) {
	m := NewMatrix(256, 256)
	for i := range m.Data {
		m.Data[i] = 1
	}
	m.Set(0, 0, 1000) // outlier in block (0,0)
	q, scales := QuantizeBlockwise(E4M3, m, 128, 128)
	if len(scales) != 4 {
		t.Fatalf("expected 4 scales, got %d", len(scales))
	}
	// Blocks without the outlier keep exact 1s (1 is representable after
	// scaling by 1/448... the scale is 1/448 so codes are 448, exact).
	if got := q.At(200, 200); math.Abs(got-1) > 1e-12 {
		t.Errorf("outlier leaked across blocks: %v", got)
	}
	if scales[0] == scales[3] {
		t.Error("blocks should have distinct scales")
	}
}
