// Package quant implements the low-precision numerics from §3 of the
// paper, bit-exactly in software:
//
//   - the OCP FP8 formats (E4M3, E5M2) used for activations and weights,
//     plus the custom E5M6 format the paper mentions testing for the
//     combine stage, BF16 and FP16;
//   - fine-grained scaled quantization (tile-wise 1×128 for activations,
//     block-wise 128×128 for weights), as used by DeepSeek-V3's FP8
//     training recipe;
//   - a simulation of the Hopper tensor core accumulation path (§3.1.1):
//     32 mantissa products aligned to the maximum exponent, truncated to
//     13 fraction bits, accumulated into an FP22-style register
//     (1 sign / 8 exponent / 13 mantissa bits).
//
// Everything operates on float64 carriers: a float64 holds any FP8/BF16
// value exactly, so "quantize" means "round to the nearest representable
// value of the target format and return it as float64".
package quant

import "math"

// Format describes a binary minifloat format with subnormals.
type Format struct {
	Name     string
	ExpBits  int
	MantBits int
	Bias     int
	// MaxFinite is the largest finite representable magnitude. For E4M3
	// the all-ones mantissa in the top binade encodes NaN, so MaxFinite
	// is 448 rather than 480.
	MaxFinite float64
	// Saturate selects the ML-training convention of clamping overflow
	// to MaxFinite instead of producing infinity.
	Saturate bool
}

// The formats discussed in the paper. E4M3 is used for dispatch/weights,
// E5M2 is the wide-range FP8 variant, E5M6 is the custom combine format
// under evaluation in §3.2, BF16 is the baseline training precision.
var (
	E4M3 = Format{Name: "E4M3", ExpBits: 4, MantBits: 3, Bias: 7, MaxFinite: 448, Saturate: true}
	E5M2 = Format{Name: "E5M2", ExpBits: 5, MantBits: 2, Bias: 15, MaxFinite: 57344, Saturate: true}
	E5M6 = Format{Name: "E5M6", ExpBits: 5, MantBits: 6, Bias: 15, MaxFinite: (2 - 1.0/64) * 32768, Saturate: true}
	FP16 = Format{Name: "FP16", ExpBits: 5, MantBits: 10, Bias: 15, MaxFinite: 65504}
	BF16 = Format{Name: "BF16", ExpBits: 8, MantBits: 7, Bias: 127, MaxFinite: math.Ldexp(2-1.0/128, 127)}
	FP32 = Format{Name: "FP32", ExpBits: 8, MantBits: 23, Bias: 127, MaxFinite: math.MaxFloat32}
)

// MinNormal returns the smallest positive normal value of the format.
func (f Format) MinNormal() float64 { return math.Ldexp(1, 1-f.Bias) }

// MinSubnormal returns the smallest positive subnormal value.
func (f Format) MinSubnormal() float64 { return math.Ldexp(1, 1-f.Bias-f.MantBits) }

// Epsilon returns the relative spacing at 1.0 (2^-MantBits).
func (f Format) Epsilon() float64 { return math.Ldexp(1, -f.MantBits) }

// Bits returns the total storage width of the format, including sign.
func (f Format) Bits() int { return 1 + f.ExpBits + f.MantBits }

// Quantize rounds x to the nearest representable value (round-to-nearest-
// even), respecting subnormals and the format's overflow behaviour.
func (f Format) Quantize(x float64) float64 {
	// Fast path for format-normal finite x: rounding to MantBits bits of
	// the leading-1 mantissa is round-to-nearest-even at the float64
	// mantissa's (52-MantBits)-bit boundary, which the classic add-and-
	// mask carry trick computes directly — a mantissa overflow carries
	// into the exponent field exactly as the arithmetic version would.
	// Format-subnormal, float64-subnormal, zero, Inf and NaN inputs take
	// the general path; the overflow clamp below matches it bit for bit.
	bits := math.Float64bits(x)
	if e := int(bits>>52) & 0x7ff; e != 0 && e != 0x7ff && e-1023 >= 1-f.Bias && f.MantBits < 52 {
		drop := uint(52 - f.MantBits)
		r := bits + ((bits>>drop)&1 + (1<<(drop-1) - 1))
		r &^= 1<<drop - 1
		q := math.Float64frombits(r)
		if q > f.MaxFinite || q < -f.MaxFinite {
			if f.Saturate {
				if q > 0 {
					return f.MaxFinite
				}
				return -f.MaxFinite
			}
			return math.Inf(1) * q
		}
		return q
	}
	return f.quantizeSlow(x)
}

// quantizeSlow is the general quantization path: format-subnormal
// magnitudes, zeros, and non-finite values.
func (f Format) quantizeSlow(x float64) float64 {
	if x == 0 || math.IsNaN(x) {
		return x
	}
	sign := 1.0
	a := x
	if x < 0 {
		sign = -1
		a = -x
	}
	if math.IsInf(a, 0) {
		if f.Saturate {
			return sign * f.MaxFinite
		}
		return x
	}
	// a = frac × 2^exp with frac in [0.5, 1) => normalized exponent
	// exp-1, read straight from the float64 bit pattern (Frexp only for
	// float64-subnormal a, far below any format's quantum anyway).
	var normExp int
	if e := int(math.Float64bits(a)>>52) & 0x7ff; e != 0 {
		normExp = e - 1023
	} else {
		_, exp := math.Frexp(a)
		normExp = exp - 1
	}
	minNormExp := 1 - f.Bias
	qexp := normExp
	if qexp < minNormExp {
		qexp = minNormExp // subnormal range: fixed quantum
	}
	shift := qexp - f.MantBits
	var q float64
	if shift >= -1021 && shift <= 1022 {
		// quantum is a power of two, so multiplying by its inverse is
		// exact and bit-identical to dividing by it.
		quantum, invQuantum := pow2(shift), pow2(-shift)
		q = math.RoundToEven(a*invQuantum) * quantum
	} else {
		quantum := math.Ldexp(1, shift)
		q = math.RoundToEven(a/quantum) * quantum
	}
	if q > f.MaxFinite {
		if f.Saturate {
			q = f.MaxFinite
		} else {
			q = math.Inf(1)
		}
	}
	return sign * q
}

// QuantizeSlice writes the quantization of each src element into dst.
// dst and src may alias. It panics if the lengths differ, matching the
// stdlib copy-semantics expectation of equal-shaped buffers.
func (f Format) QuantizeSlice(dst, src []float64) {
	if len(dst) != len(src) {
		panic("quant: QuantizeSlice length mismatch")
	}
	for i, x := range src {
		dst[i] = f.Quantize(x)
	}
}

// Representable reports whether x is exactly representable in the format.
func (f Format) Representable(x float64) bool { return f.Quantize(x) == x }
