package quant

import (
	"math"
	"testing"

	"dsv3/internal/parallel"
)

// refQuantize is the pre-fast-path quantization, kept verbatim as the
// semantic reference for the bit-trick path.
func refQuantize(f Format, x float64) float64 {
	if x == 0 || math.IsNaN(x) {
		return x
	}
	sign := 1.0
	a := x
	if x < 0 {
		sign = -1
		a = -x
	}
	if math.IsInf(a, 0) {
		if f.Saturate {
			return sign * f.MaxFinite
		}
		return x
	}
	_, exp := math.Frexp(a)
	normExp := exp - 1
	minNormExp := 1 - f.Bias
	qexp := normExp
	if qexp < minNormExp {
		qexp = minNormExp
	}
	quantum := math.Ldexp(1, qexp-f.MantBits)
	q := math.RoundToEven(a/quantum) * quantum
	if q > f.MaxFinite {
		if f.Saturate {
			q = f.MaxFinite
		} else {
			q = math.Inf(1)
		}
	}
	return sign * q
}

func quantizeEdgeCases(f Format) []float64 {
	cases := []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		1, -1, 0.5, -0.5, math.Nextafter(1, 2), math.Nextafter(1, 0),
		f.MaxFinite, -f.MaxFinite, f.MaxFinite * (1 + 1e-3), f.MaxFinite * 2,
		f.MinNormal(), f.MinNormal() * (1 - 1e-9), f.MinSubnormal(), f.MinSubnormal() / 2,
		f.MinSubnormal() * 1.5,  // rounds up to a subnormal step
		5e-324, -5e-324, 1e-310, // float64 subnormals
		math.MaxFloat64, -math.MaxFloat64,
	}
	// Values straddling every rounding boundary near the format's
	// epsilon, both signs.
	for _, m := range []float64{1, 3, 7, 100, 447, 448, 449} {
		for _, d := range []float64{-1e-12, 0, 1e-12} {
			cases = append(cases, m+d, -(m + d))
		}
	}
	return cases
}

// TestQuantizeFastPathMatchesReference sweeps edge cases plus a large
// random sample through every format and demands bit-identical results
// (NaN compared as NaN).
func TestQuantizeFastPathMatchesReference(t *testing.T) {
	rng := parallel.NewRand(11)
	formats := []Format{E4M3, E5M2, E5M6, FP16, BF16, FP32}
	for _, f := range formats {
		xs := quantizeEdgeCases(f)
		for i := 0; i < 20000; i++ {
			xs = append(xs, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(13)-6)))
		}
		for _, x := range xs {
			got, want := f.Quantize(x), refQuantize(f, x)
			if math.IsNaN(want) {
				if !math.IsNaN(got) {
					t.Fatalf("%s.Quantize(%g) = %g, want NaN", f.Name, x, got)
				}
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s.Quantize(%g) = %g (%#x), want %g (%#x)",
					f.Name, x, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestAlignedGroupSumFastMatchesSlow pins the reassociated integer-sum
// fast path against the sequential general path across accumulator
// configurations, including zero-heavy, subnormal and mixed-magnitude
// groups.
func TestAlignedGroupSumFastMatchesSlow(t *testing.T) {
	rng := parallel.NewRand(12)
	accs := []Accumulator{
		HopperFP8(),
		FP32Reference(),
		{GroupSize: 16, AlignFracBits: 10, RegisterMantBits: 10},
		{GroupSize: 32, AlignFracBits: 13, RegisterMantBits: 13, RoundRegister: true},
	}
	groups := [][]float64{
		{},
		{0, 0, 0},
		{1.5},
		{1e-320, 2e-320, -1e-320},      // all float64-subnormal
		{1e-320, 1.0, -3.5},            // subnormal mixed with normals
		{math.Inf(1), 1, 2},            // non-finite
		{1e300, -1e300, 1e284, -1e284}, // huge exponents
	}
	for g := 0; g < 200; g++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Pow(2, float64(rng.Intn(40)-20))
			if rng.Intn(5) == 0 {
				xs[i] = 0
			}
		}
		groups = append(groups, xs)
	}
	for _, a := range accs {
		for i, g := range groups {
			got := a.alignedGroupSum(g)
			want := a.alignedGroupSumSlow(g)
			if math.IsNaN(want) && math.IsNaN(got) {
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("acc %+v group %d: fast %g (%#x) != slow %g (%#x)",
					a, i, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestDotProductScratchMatchesDotProduct: the chunked, fused form must
// equal the public DotProduct on every length, including partial final
// groups.
func TestDotProductScratchMatchesDotProduct(t *testing.T) {
	rng := parallel.NewRand(13)
	a := HopperFP8()
	for _, n := range []int{0, 1, 7, 31, 32, 33, 64, 100, 129} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = E4M3.Quantize(rng.NormFloat64())
			y[i] = E4M3.Quantize(rng.NormFloat64())
		}
		got := a.DotProductScratch(x, y, make([]float64, 0, a.GroupSize))
		want := a.DotProduct(x, y)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: scratch %g != %g", n, got, want)
		}
	}
}

// TestTileScaleMatchesMaxScan pins the bit-pattern magnitude scan
// against the math.Max/math.Abs definition, NaN and Inf included.
func TestTileScaleMatchesMaxScan(t *testing.T) {
	ref := func(f Format, tile []float64) float64 {
		maxAbs := 0.0
		for _, x := range tile {
			maxAbs = math.Max(maxAbs, math.Abs(x))
		}
		scale := 1.0
		if maxAbs > 0 {
			scale = maxAbs / f.MaxFinite
		}
		return scale
	}
	rng := parallel.NewRand(14)
	tiles := [][]float64{
		{},
		{0, 0},
		{math.NaN(), 3, math.Inf(1)},
		{math.Inf(-1), 2},
		{-5, 4.9},
	}
	for i := 0; i < 100; i++ {
		tile := make([]float64, 1+rng.Intn(128))
		for j := range tile {
			tile[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
		}
		tiles = append(tiles, tile)
	}
	for i, tile := range tiles {
		got := tileScale(E4M3, tile)
		want := ref(E4M3, tile)
		if math.IsNaN(want) && math.IsNaN(got) {
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("tile %d: scale %g != %g", i, got, want)
		}
	}
}
