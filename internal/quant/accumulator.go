package quant

import "math"

// Accumulator simulates the tensor-core accumulation data path described
// in §3.1.1 of the paper. On Hopper, an FP8 WGMMA instruction multiplies
// FP8 operands exactly, then:
//
//  1. groups of GroupSize (32) products are aligned by right-shifting to
//     the maximum exponent in the group,
//  2. only the highest AlignFracBits (13) fraction bits of each aligned
//     product are kept; lower bits are truncated,
//  3. the group sum is accumulated into a register with RegisterMantBits
//     (13) mantissa bits — the "FP22" register (1 sign / 8 exp / 13 mant).
//
// Setting RegisterMantBits and AlignFracBits to 23 models a true FP32
// tensor-core accumulator; the §3.1.1 ablation runner sweeps these.
type Accumulator struct {
	// GroupSize is the number of products aligned and added as one unit.
	GroupSize int
	// AlignFracBits is the number of fraction bits kept, relative to the
	// largest exponent in the group, when aligning addends (13 on Hopper).
	AlignFracBits int
	// RegisterMantBits is the mantissa width of the accumulation register
	// (13 for Hopper's FP22 behaviour, 23 for FP32).
	RegisterMantBits int
	// RoundRegister selects round-to-nearest-even when folding into the
	// register. Hopper truncates, so the default (false) truncates.
	RoundRegister bool
}

// HopperFP8 is the accumulator configuration matching the paper's
// description of H800 FP8 tensor cores.
func HopperFP8() Accumulator {
	return Accumulator{GroupSize: 32, AlignFracBits: 13, RegisterMantBits: 13}
}

// FP32Reference is an accumulator with FP32-register behaviour — the
// "increased accumulation precision" hardware suggestion from §3.1.2.
func FP32Reference() Accumulator {
	return Accumulator{GroupSize: 32, AlignFracBits: 23, RegisterMantBits: 23}
}

// normExponent returns the normalized exponent of a finite non-zero v
// (v = ±frac·2^(e+1), frac in [0.5,1) — i.e. math.Frexp's exp minus 1)
// straight from the float64 bit pattern; subnormals fall back to Frexp.
func normExponent(v float64) int {
	e := int(math.Float64bits(v)>>52) & 0x7ff
	if e == 0 { // subnormal
		_, exp := math.Frexp(v)
		return exp - 1
	}
	return e - 1023
}

// pow2 builds 2^n directly from the exponent bits. n must lie in the
// normal range [-1022, 1023]; callers guard it. Unlike math.Ldexp this
// inlines to a shift and an add.
func pow2(n int) float64 { return math.Float64frombits(uint64(n+1023) << 52) }

// truncateToRegister rounds v to RegisterMantBits mantissa bits,
// truncating toward zero unless RoundRegister is set.
func (a Accumulator) truncateToRegister(v float64) float64 {
	// Normal-range fast path: exponent straight from the bit pattern,
	// zero / subnormal / Inf / NaN (e-field 0 or 0x7ff) drop to the
	// general path below.
	if e := int(math.Float64bits(v)>>52) & 0x7ff; e != 0 && e != 0x7ff {
		if shift := (e - 1023) - a.RegisterMantBits; shift >= -1021 && shift <= 1022 {
			// quantum is a power of two, so scaling by it (either way)
			// is exact: multiplying by the inverse matches dividing
			// bit-for-bit.
			quantum, invQuantum := pow2(shift), pow2(-shift)
			if a.RoundRegister {
				return math.RoundToEven(v*invQuantum) * quantum
			}
			return math.Trunc(v*invQuantum) * quantum
		}
	}
	return a.truncateToRegisterSlow(v)
}

func (a Accumulator) truncateToRegisterSlow(v float64) float64 {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	shift := normExponent(v) - a.RegisterMantBits
	if shift >= -1021 && shift <= 1022 {
		quantum, invQuantum := pow2(shift), pow2(-shift)
		if a.RoundRegister {
			return math.RoundToEven(v*invQuantum) * quantum
		}
		return math.Trunc(v*invQuantum) * quantum
	}
	quantum := math.Ldexp(1, shift)
	if a.RoundRegister {
		return math.RoundToEven(v/quantum) * quantum
	}
	return math.Trunc(v/quantum) * quantum
}

// alignedGroupSum adds one group of products with exponent alignment:
// every addend is truncated to AlignFracBits fraction bits relative to
// the group's maximum exponent.
func (a Accumulator) alignedGroupSum(products []float64) float64 {
	// The group's maximum exponent is the exponent of its largest-
	// magnitude element, and IEEE-754 magnitude order is the order of
	// the sign-masked bit patterns — one branch-predictable max per
	// element, no per-element exponent decoding.
	var maxBits uint64
	for _, p := range products {
		if b := math.Float64bits(p) &^ (1 << 63); b > maxBits {
			maxBits = b
		}
	}
	return a.groupSumWithMax(products, maxBits)
}

// groupSumWithMax is alignedGroupSum after the maximum-magnitude scan;
// maxBits is the largest sign-masked float64 bit pattern in products.
func (a Accumulator) groupSumWithMax(products []float64, maxBits uint64) float64 {
	if maxBits == 0 {
		return 0 // every product is exactly zero
	}
	maxE := int(maxBits >> 52)
	// The fast path needs a normal maximum (subnormal exponents take a
	// Frexp), and bounds under which the reassociated sum below is
	// provably exact and finite; real GEMM shapes never leave them.
	if maxE == 0 || maxE > 1000+1023 || a.AlignFracBits > 30 || len(products) > 1<<20 {
		return a.alignedGroupSumSlow(products)
	}
	maxExp := maxE - 1023
	shift := a.AlignFracBits - maxExp
	if shift < -1021 || shift > 1022 {
		return a.alignedGroupSumSlow(products)
	}
	// Each aligned addend Trunc(p·2^shift) is an integer of magnitude
	// < 2^(AlignFracBits+1), so partial sums of a group stay far inside
	// float64's exact integer range: every addition is exact, the sum
	// is associative, and one final multiply by the (power-of-two)
	// quantum is bit-identical to scaling each addend — the classic
	// sequential loop, reassociated for free. (Subnormal non-maximum
	// elements are fine here: power-of-two multiplication and division
	// are both correctly rounded to the same value, and Trunc keeps the
	// addends integral either way.)
	quantum, invQuantum := pow2(-shift), pow2(shift)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(products); i += 4 {
		s0 += math.Trunc(products[i] * invQuantum)
		s1 += math.Trunc(products[i+1] * invQuantum)
		s2 += math.Trunc(products[i+2] * invQuantum)
		s3 += math.Trunc(products[i+3] * invQuantum)
	}
	for ; i < len(products); i++ {
		s0 += math.Trunc(products[i] * invQuantum)
	}
	return (s0 + s1 + s2 + s3) * quantum
}

// alignedGroupSumSlow is the fully general alignment loop: float64-
// subnormal products and out-of-range shifts (alignment quanta beyond
// the normal float64 range) are handled exactly as written.
func (a Accumulator) alignedGroupSumSlow(products []float64) float64 {
	maxExp := math.MinInt32
	for _, p := range products {
		// Exponent straight from the bit pattern (sign masked off);
		// e == 0 covers both zeros and subnormals.
		e := int(math.Float64bits(p)>>52) & 0x7ff
		if e == 0 {
			if p != 0 {
				if ne := normExponent(math.Abs(p)); ne > maxExp {
					maxExp = ne
				}
			}
			continue
		}
		if e-1023 > maxExp {
			maxExp = e - 1023
		}
	}
	if maxExp == math.MinInt32 {
		return 0
	}
	var sum float64
	if shift := a.AlignFracBits - maxExp; shift >= -1021 && shift <= 1022 {
		// Common case: 2^shift is a normal float64, so multiplying by the
		// inverse is exact and bit-identical to dividing by quantum.
		quantum, invQuantum := pow2(-shift), pow2(shift)
		for _, p := range products {
			sum += math.Trunc(p*invQuantum) * quantum
		}
		return sum
	}
	quantum := math.Ldexp(1, maxExp-a.AlignFracBits)
	for _, p := range products {
		sum += math.Trunc(p/quantum) * quantum
	}
	return sum
}

// DotProduct computes sum(x[i]*y[i]) through the simulated tensor-core
// path. The operands are expected to already be representable in the
// source format (e.g. FP8); products of two FP8 values are exact in
// float64, matching the hardware's exact multiplier array.
func (a Accumulator) DotProduct(x, y []float64) float64 {
	group := a.GroupSize
	if group <= 0 {
		group = 32
	}
	return a.DotProductScratch(x, y, make([]float64, 0, group))
}

// DotProductScratch is DotProduct with a caller-provided product buffer
// (capacity >= GroupSize), so GEMM inner loops run allocation-free. The
// arithmetic sequence is identical to DotProduct's.
func (a Accumulator) DotProductScratch(x, y, scratch []float64) float64 {
	if len(x) != len(y) {
		panic("quant: DotProduct length mismatch")
	}
	group := a.GroupSize
	if group <= 0 {
		group = 32
	}
	if cap(scratch) < group {
		scratch = make([]float64, group)
	}
	var acc float64
	for start := 0; start < len(x); start += group {
		end := start + group
		if end > len(x) {
			end = len(x)
		}
		xs := x[start:end]
		ys := y[start:end:end]
		products := scratch[:len(xs)]
		// One fused pass: form the exact products and track the largest
		// magnitude (max of sign-masked bit patterns = max |product|).
		var maxBits uint64
		for i, xv := range xs {
			p := xv * ys[i]
			products[i] = p
			if b := math.Float64bits(p) &^ (1 << 63); b > maxBits {
				maxBits = b
			}
		}
		acc = a.truncateToRegister(acc + a.groupSumWithMax(products, maxBits))
	}
	return acc
}

// PromotedDotProduct computes the same dot product using the two-level
// accumulation strategy DeepGEMM uses on Hopper: the tensor-core (FP22)
// accumulator runs for promoteEvery elements, then the partial result is
// promoted into an FP32 accumulator and the register is cleared. With
// promoteEvery = 128 this matches DeepSeek-V3's fine-grained recipe, and
// neatly composes with the 1×128 tile scales: scale[i] multiplies each
// promoted partial (dequantization on CUDA cores, §3.1.1's "large
// dequantization overhead").
//
// scales must have one entry per promoteEvery-sized chunk (the last chunk
// may be short); pass nil for unit scales.
func (a Accumulator) PromotedDotProduct(x, y []float64, promoteEvery int, scales []float64) float64 {
	if len(x) != len(y) {
		panic("quant: PromotedDotProduct length mismatch")
	}
	if promoteEvery <= 0 {
		promoteEvery = len(x)
	}
	var total float32 // the CUDA-core FP32 accumulator
	chunk := 0
	for start := 0; start < len(x); start += promoteEvery {
		end := start + promoteEvery
		if end > len(x) {
			end = len(x)
		}
		partial := a.DotProduct(x[start:end], y[start:end])
		scale := 1.0
		if scales != nil {
			scale = scales[chunk]
		}
		total += float32(partial * scale)
		chunk++
	}
	return float64(total)
}
