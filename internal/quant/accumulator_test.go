package quant

import (
	"math"
	"math/rand"
	"testing"
)

func fp8Vector(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = E4M3.Quantize(rng.NormFloat64())
	}
	return xs
}

func refDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func TestFP32ReferenceAccumulatorIsAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := fp8Vector(rng, 4096), fp8Vector(rng, 4096)
	got := FP32Reference().DotProduct(x, y)
	want := refDot(x, y)
	if math.Abs(got-want) > 1e-3*math.Abs(want)+1e-3 {
		t.Errorf("FP32 reference accumulator too lossy: %v vs %v", got, want)
	}
}

func TestHopperAccumulatorLosesPrecisionOnLongK(t *testing.T) {
	// §3.1.1: FP22 registers (13 mantissa bits) accumulate error as K
	// grows; the FP32-register configuration does not. The Hopper error
	// must be visibly larger.
	rng := rand.New(rand.NewSource(11))
	const k = 8192
	hopperErr, fp32Err := 0.0, 0.0
	for trial := 0; trial < 10; trial++ {
		x, y := fp8Vector(rng, k), fp8Vector(rng, k)
		want := refDot(x, y)
		hopperErr += math.Abs(HopperFP8().DotProduct(x, y) - want)
		fp32Err += math.Abs(FP32Reference().DotProduct(x, y) - want)
	}
	if hopperErr <= fp32Err {
		t.Errorf("expected Hopper FP22 accumulation to be lossier: hopper %v vs fp32 %v", hopperErr, fp32Err)
	}
}

func TestPromotionRecoversAccuracy(t *testing.T) {
	// DeepGEMM's fix: promote to an FP32 accumulator every 128 elements.
	// The promoted path must be much closer to the reference than the
	// raw FP22 path on long reductions.
	rng := rand.New(rand.NewSource(12))
	const k = 8192
	var raw, promoted float64
	for trial := 0; trial < 10; trial++ {
		x, y := fp8Vector(rng, k), fp8Vector(rng, k)
		want := refDot(x, y)
		raw += math.Abs(HopperFP8().DotProduct(x, y) - want)
		promoted += math.Abs(HopperFP8().PromotedDotProduct(x, y, 128, nil) - want)
	}
	if promoted*2 > raw {
		t.Errorf("promotion should cut accumulation error: raw %v, promoted %v", raw, promoted)
	}
}

func TestDotProductZeroVectors(t *testing.T) {
	x := make([]float64, 64)
	if got := HopperFP8().DotProduct(x, x); got != 0 {
		t.Errorf("zero dot product = %v", got)
	}
}

func TestDotProductShortGroup(t *testing.T) {
	// Lengths that do not divide the group size must still be handled.
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	got := HopperFP8().DotProduct(x, y)
	if math.Abs(got-32) > 0.01 {
		t.Errorf("short-group dot = %v, want 32", got)
	}
}

func TestDotProductLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	HopperFP8().DotProduct(make([]float64, 2), make([]float64, 3))
}

func TestPromotedDotProductScales(t *testing.T) {
	// Scales multiply each promoted 128-chunk, mirroring tile-wise
	// dequantization.
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i], y[i] = 1, 1
	}
	got := HopperFP8().PromotedDotProduct(x, y, 128, []float64{2, 3})
	if math.Abs(got-(128*2+128*3)) > 1e-3 {
		t.Errorf("scaled promoted dot = %v, want 640", got)
	}
}

func TestTruncateToRegisterBehaviour(t *testing.T) {
	a := Accumulator{GroupSize: 32, AlignFracBits: 13, RegisterMantBits: 13}
	// 1 + 2^-14 truncates to 1 in a 13-mantissa-bit register.
	v := 1 + math.Ldexp(1, -14)
	if got := a.truncateToRegister(v); got != 1 {
		t.Errorf("truncate(1+2^-14) = %v, want 1", got)
	}
	// 1 + 2^-13 is exactly representable.
	v = 1 + math.Ldexp(1, -13)
	if got := a.truncateToRegister(v); got != v {
		t.Errorf("truncate(1+2^-13) = %v, want %v", got, v)
	}
	if got := a.truncateToRegister(0); got != 0 {
		t.Errorf("truncate(0) = %v", got)
	}
}

func TestAlignedGroupSumTruncatesSmallAddends(t *testing.T) {
	a := HopperFP8()
	// With a dominant product of magnitude 2^0, addends below
	// 2^(0-13) are truncated away entirely.
	products := make([]float64, 32)
	products[0] = 1
	for i := 1; i < 32; i++ {
		products[i] = math.Ldexp(1, -15) // below the kept fraction range
	}
	got := a.alignedGroupSum(products)
	if got != 1 {
		t.Errorf("aligned sum = %v, want exactly 1 (small addends truncated)", got)
	}
	// An FP32-style alignment keeps them.
	wide := Accumulator{GroupSize: 32, AlignFracBits: 30, RegisterMantBits: 30}
	got = wide.alignedGroupSum(products)
	want := 1 + 31*math.Ldexp(1, -15)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("wide aligned sum = %v, want %v", got, want)
	}
}

func TestAccumulatorBiasIsNegative(t *testing.T) {
	// Truncation toward zero on positive sums biases the result low —
	// the systematic underestimate the paper attributes to FP22
	// accumulation. Check the direction of the bias on all-positive data.
	rng := rand.New(rand.NewSource(13))
	low := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 2048)
		y := make([]float64, 2048)
		for i := range x {
			x[i] = E4M3.Quantize(math.Abs(rng.NormFloat64()) + 0.1)
			y[i] = E4M3.Quantize(math.Abs(rng.NormFloat64()) + 0.1)
		}
		if HopperFP8().DotProduct(x, y) < refDot(x, y) {
			low++
		}
	}
	if low < trials*3/4 {
		t.Errorf("expected systematic low bias, saw %d/%d low", low, trials)
	}
}
