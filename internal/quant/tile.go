package quant

import "math"

// TileWidth is the activation quantization tile width used by
// DeepSeek-V3: activations are scaled per 1×128 tile along the inner
// (contraction) dimension, weights per 128×128 block (§3.1).
const TileWidth = 128

// ScaledTile is a quantized 1×TileWidth tile: the dequantized values
// (scale already applied) plus the per-tile scale that was used. Keeping
// the dequantized form makes error analysis direct; the scale is retained
// because the GEMM path needs it to model dequantization placement.
type ScaledTile struct {
	Values []float64 // dequantized values, each Scale × (an FP8 value)
	Scale  float64
}

// QuantizeTile quantizes one tile with a shared power-free scale chosen
// so the tile maximum maps to the format's maximum finite value. This is
// the "fine-grained quantization" of §3.1. A zero tile gets scale 1.
func QuantizeTile(f Format, tile []float64) ScaledTile {
	maxAbs := 0.0
	for _, x := range tile {
		maxAbs = math.Max(maxAbs, math.Abs(x))
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = maxAbs / f.MaxFinite
	}
	out := ScaledTile{Values: make([]float64, len(tile)), Scale: scale}
	for i, x := range tile {
		out.Values[i] = f.Quantize(x/scale) * scale
	}
	return out
}

// QuantizeRowTiles quantizes a length-n row into ceil(n/TileWidth) tiles.
// The final tile may be short. This mirrors the 1×128 activation layout.
func QuantizeRowTiles(f Format, row []float64) []ScaledTile {
	var tiles []ScaledTile
	for start := 0; start < len(row); start += TileWidth {
		end := start + TileWidth
		if end > len(row) {
			end = len(row)
		}
		tiles = append(tiles, QuantizeTile(f, row[start:end]))
	}
	return tiles
}

// QuantizePerTensor quantizes with a single scale for the whole tensor —
// the coarse baseline the paper's fine-grained scheme improves on. Used
// by the quantization-granularity ablation.
func QuantizePerTensor(f Format, xs []float64) ScaledTile {
	return QuantizeTile(f, xs)
}

// QuantizeTileCodes quantizes one tile into raw format codes — the
// unscaled values the tensor cores consume — writing them into codes
// (same length as tile; may alias it) and returning the tile scale.
// This is the allocation-free form of QuantizeTile used by the GEMM
// hot path: dequantized value = code × scale.
func QuantizeTileCodes(f Format, tile, codes []float64) float64 {
	scale := tileScale(f, tile)
	for i, x := range tile {
		codes[i] = f.Quantize(x / scale)
	}
	return scale
}

// tileScale returns the shared scale mapping the tile's maximum
// magnitude onto the format's largest finite value (1 for a zero tile).
// The magnitude scan compares sign-masked bit patterns — IEEE-754
// magnitude order — instead of going through math.Max/math.Abs; the
// non-finite corner (NaN bit patterns order above Inf, while math.Max
// gives Inf precedence over NaN) rescans to reproduce the original
// semantics exactly.
func tileScale(f Format, tile []float64) float64 {
	var maxBits uint64
	for _, x := range tile {
		if b := math.Float64bits(x) &^ (1 << 63); b > maxBits {
			maxBits = b
		}
	}
	if maxBits > infBits {
		return nanMaxScale(f, tile)
	}
	return scaleFromMaxBits(f, maxBits)
}

const infBits = uint64(0x7ff) << 52

// scaleFromMaxBits finalizes a sign-masked bit-pattern magnitude scan
// into the tile/block scale. maxBits must be finite or exactly Inf;
// the NaN case (maxBits > infBits) is resolved by nanMaxScale.
func scaleFromMaxBits(f Format, maxBits uint64) float64 {
	if maxBits == 0 {
		return 1
	}
	return math.Float64frombits(maxBits) / f.MaxFinite
}

// nanMaxScale handles a magnitude scan that saw a NaN: math.Max gives
// an infinity precedence over NaN (so any Inf element still yields an
// Inf max and an Inf scale), while a NaN max fails the `maxAbs > 0`
// guard and leaves the scale at 1.
func nanMaxScale(f Format, tile []float64) float64 {
	for _, x := range tile {
		if math.IsInf(x, 0) {
			return math.Inf(1) / f.MaxFinite
		}
	}
	return 1
}

// QuantizeBlockCodes quantizes m per blockRows×blockCols block into raw
// format codes, writing them into codes (same shape as m) and returning
// one scale per block in block-row-major order. It is the raw-code
// counterpart of QuantizeBlockwise, sized for reuse in GEMM inner loops
// where the scale is applied once per promoted partial rather than per
// element.
func QuantizeBlockCodes(f Format, m *Matrix, blockRows, blockCols int, codes *Matrix) []float64 {
	return QuantizeBlockCodesScratch(f, m, blockRows, blockCols, codes, nil)
}

// QuantizeBlockCodesScratch is QuantizeBlockCodes with a caller-provided
// scale buffer: scales are appended to scratch[:0] (reallocating only if
// its capacity is short), so repeated GEMM calls reuse one buffer.
func QuantizeBlockCodesScratch(f Format, m *Matrix, blockRows, blockCols int, codes *Matrix, scratch []float64) []float64 {
	if codes.Rows != m.Rows || codes.Cols != m.Cols {
		panic("quant: QuantizeBlockCodes shape mismatch")
	}
	blocksPerRow := (m.Cols + blockCols - 1) / blockCols
	blocksPerCol := (m.Rows + blockRows - 1) / blockRows
	scales := scratch[:0]
	if cap(scales) < blocksPerRow*blocksPerCol {
		scales = make([]float64, 0, blocksPerRow*blocksPerCol)
	}
	for br := 0; br < m.Rows; br += blockRows {
		rEnd := br + blockRows
		if rEnd > m.Rows {
			rEnd = m.Rows
		}
		for bc := 0; bc < m.Cols; bc += blockCols {
			cEnd := bc + blockCols
			if cEnd > m.Cols {
				cEnd = m.Cols
			}
			var maxBits uint64
			for r := br; r < rEnd; r++ {
				row := m.Row(r)[bc:cEnd]
				for _, x := range row {
					if b := math.Float64bits(x) &^ (1 << 63); b > maxBits {
						maxBits = b
					}
				}
			}
			var scale float64
			if maxBits > infBits {
				scale = 1
				for r := br; r < rEnd && scale == 1; r++ {
					scale = nanMaxScale(f, m.Row(r)[bc:cEnd])
				}
			} else {
				scale = scaleFromMaxBits(f, maxBits)
			}
			scales = append(scales, scale)
			for r := br; r < rEnd; r++ {
				src := m.Row(r)[bc:cEnd]
				dst := codes.Row(r)[bc:cEnd]
				for i, x := range src {
					dst[i] = f.Quantize(x / scale)
				}
			}
		}
	}
	return scales
}

// Matrix is a dense row-major float64 matrix. It is the carrier type for
// the GEMM and quantization experiments.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// QuantizeBlockwise quantizes a matrix with per-block scales over
// blockRows×blockCols blocks (128×128 for DeepSeek-V3 weights). The
// returned matrix holds dequantized values; scales holds one scale per
// block in block-row-major order.
func QuantizeBlockwise(f Format, m *Matrix, blockRows, blockCols int) (*Matrix, []float64) {
	out := NewMatrix(m.Rows, m.Cols)
	var scales []float64
	for br := 0; br < m.Rows; br += blockRows {
		rEnd := br + blockRows
		if rEnd > m.Rows {
			rEnd = m.Rows
		}
		for bc := 0; bc < m.Cols; bc += blockCols {
			cEnd := bc + blockCols
			if cEnd > m.Cols {
				cEnd = m.Cols
			}
			maxAbs := 0.0
			for r := br; r < rEnd; r++ {
				for c := bc; c < cEnd; c++ {
					maxAbs = math.Max(maxAbs, math.Abs(m.At(r, c)))
				}
			}
			scale := 1.0
			if maxAbs > 0 {
				scale = maxAbs / f.MaxFinite
			}
			scales = append(scales, scale)
			for r := br; r < rEnd; r++ {
				for c := bc; c < cEnd; c++ {
					out.Set(r, c, f.Quantize(m.At(r, c)/scale)*scale)
				}
			}
		}
	}
	return out, scales
}
