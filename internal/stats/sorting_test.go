package stats

import (
	"math/rand"
	"testing"
)

// TestSummarizeSortingMatchesSummarize: the in-place variant must be
// field-for-field bit-identical to Summarize (the report path depends
// on it), and must leave the slice sorted.
func TestSummarizeSortingMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	samples := [][]float64{
		nil,
		{},
		{1},
		{2, 1},
		{3, 1, 2, 2},
	}
	for i := 0; i < 50; i++ {
		xs := make([]float64, 1+rng.Intn(200))
		for j := range xs {
			xs[j] = rng.NormFloat64() * 100
		}
		samples = append(samples, xs)
	}
	for i, xs := range samples {
		want := Summarize(xs) // copies; xs untouched
		mut := append([]float64(nil), xs...)
		got := SummarizeSorting(mut)
		if got != want {
			// Summary is all comparable fields; bitwise check for NaN-free data.
			t.Fatalf("sample %d: %+v != %+v", i, got, want)
		}
		for j := 1; j < len(mut); j++ {
			if mut[j-1] > mut[j] {
				t.Fatalf("sample %d: slice not sorted at %d", i, j)
			}
		}
	}
}
