// Package stats provides the small statistics toolkit shared by the
// experiments: summaries, error metrics (relative error, RMS, SNR) and
// histograms. The quantization studies in the paper (§3.1, §3.2) are
// phrased in terms of relative accuracy loss and signal-to-noise ratios;
// this package defines those measurements once so every experiment uses
// the same definitions.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample,
// including the tail percentiles every latency report needs.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary over xs. It returns a zero Summary for an
// empty sample; xs is left untouched (the quantile sort happens on a
// copy).
func Summarize(xs []float64) Summary {
	return SummarizeSorting(append([]float64(nil), xs...))
}

// SummarizeSorting is Summarize without the defensive copy: the
// order-sensitive moments (sum, variance) are computed over xs as
// given, then xs itself is sorted in place for the quantile fields.
// The result is bit-identical to Summarize; the caller's slice is
// reordered. Report builders that own their sample scratch use this to
// keep percentile assembly allocation-free.
func SummarizeSorting(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		s.Median = xs[mid]
	} else {
		s.Median = (xs[mid-1] + xs[mid]) / 2
	}
	s.P50 = s.Median // percentileSorted(sorted, 50) reduces to the median for every n
	s.P95 = percentileSorted(xs, 95)
	s.P99 = percentileSorted(xs, 99)
	return s
}

// ErrMismatchedLengths is returned when two samples that must align do not.
var ErrMismatchedLengths = errors.New("stats: mismatched sample lengths")

// RMS returns the root mean square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// RelativeError returns |got-want| / |want|. When want is zero it returns
// |got| so that exact zeros compare as zero error.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// MaxRelativeError returns the largest elementwise relative error between
// got and want.
func MaxRelativeError(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return 0, ErrMismatchedLengths
	}
	var m float64
	for i := range got {
		m = math.Max(m, RelativeError(got[i], want[i]))
	}
	return m, nil
}

// RMSRelativeError returns ||got-want||_2 / ||want||_2, the normwise
// relative error used for GEMM accuracy comparisons.
func RMSRelativeError(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return 0, ErrMismatchedLengths
	}
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num), nil
	}
	return math.Sqrt(num / den), nil
}

// SNRdB returns the signal-to-noise ratio, in decibels, of a quantized
// sample vs its reference: 10*log10(sum(x^2)/sum((x-q)^2)). Higher is
// better; +inf when the reconstruction is exact.
func SNRdB(reference, quantized []float64) (float64, error) {
	if len(reference) != len(quantized) {
		return 0, ErrMismatchedLengths
	}
	var sig, noise float64
	for i := range reference {
		sig += reference[i] * reference[i]
		d := reference[i] - quantized[i]
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns the requested percentiles of xs, sorting the
// sample once — the bulk form of Percentile for reporters that need
// quantiles beyond Summary's P50/P95/P99 fields. An empty sample
// yields all zeros.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// percentileSorted is Percentile over an already-sorted non-empty
// sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // finite samples below Lo
	Over    int // finite samples >= Hi
	Dropped int // non-finite samples (NaN, ±Inf)
	samples int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		return &Histogram{Lo: lo, Hi: hi}
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample. Non-finite samples have no position on the
// axis (a NaN in particular passes both range guards, and int(NaN) is
// a huge negative index); they are tallied in Dropped instead of
// Under/Over or any bin.
func (h *Histogram) Add(x float64) {
	h.samples++
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.Dropped++
		return
	}
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi || len(h.Counts) == 0 {
		h.Over++
		return
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	if idx < 0 { // defensive clamp: unreachable while the x < Lo guard precedes it
		idx = 0
	}
	h.Counts[idx]++
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.samples }
