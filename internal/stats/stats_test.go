package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary should have N=0, got %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.Median != 3 {
		t.Errorf("median = %v, want 3", s.Median)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(101, 100); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("RelativeError = %v, want 0.01", got)
	}
	if got := RelativeError(0.5, 0); got != 0.5 {
		t.Errorf("RelativeError with zero want = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", got)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v", got)
	}
}

func TestMaxRelativeError(t *testing.T) {
	got, err := MaxRelativeError([]float64{1, 2.2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-9 {
		t.Errorf("MaxRelativeError = %v, want 0.1", got)
	}
	if _, err := MaxRelativeError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestRMSRelativeError(t *testing.T) {
	got, err := RMSRelativeError([]float64{1.1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.01 / 5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSRelativeError = %v, want %v", got, want)
	}
}

func TestRMSRelativeErrorZeroReference(t *testing.T) {
	got, err := RMSRelativeError([]float64{0.3, 0.4}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("zero-reference error = %v, want 0.5", got)
	}
}

func TestSNRdB(t *testing.T) {
	ref := []float64{1, -1, 2, -2}
	exact, err := SNRdB(ref, ref)
	if err != nil || !math.IsInf(exact, 1) {
		t.Errorf("exact reconstruction should give +inf SNR, got %v (%v)", exact, err)
	}
	noisy := []float64{1.1, -1, 2, -2}
	snr, err := SNRdB(ref, noisy)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(10/0.01)
	if math.Abs(snr-want) > 1e-9 {
		t.Errorf("SNR = %v, want %v", snr, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 || h.Under != 1 || h.Over != 1 {
		t.Fatalf("histogram bookkeeping wrong: %+v", h)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
}

// A NaN passes both range guards (NaN < Lo and NaN >= Hi are both
// false) and int(NaN) is a huge negative index; before the Dropped
// counter this panicked on Counts[idx]. Non-finite samples must land
// in Dropped, not in a bin or the Under/Over tallies.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(0.5)
	if h.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", h.Dropped)
	}
	if h.Under != 0 || h.Over != 0 {
		t.Errorf("non-finite samples leaked into Under/Over: %+v", h)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h.Counts[0] != 1 {
		t.Errorf("finite sample not recorded: %+v", h.Counts)
	}
}

// The low-side index is clamped: a sample at exactly Lo (or rounding
// slightly below bin zero) lands in bin 0, never at a negative index.
func TestHistogramLowEdge(t *testing.T) {
	h := NewHistogram(-1e18, 1e18, 7)
	h.Add(-1e18)
	h.Add(math.Nextafter(-1e18, 0))
	if h.Counts[0] != 2 || h.Under != 0 {
		t.Errorf("low-edge samples not clamped into bin 0: %+v", h)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0)
	h.Add(5)
	if h.Total() != 1 || h.Over != 1 {
		t.Errorf("degenerate histogram should route to Over: %+v", h)
	}
}

// Property: mean is within [min, max] and shifting the data shifts the
// mean while leaving std unchanged.
func TestSummaryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8, shiftRaw int8) bool {
		size := int(n%32) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		shift := float64(shiftRaw)
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		shifted := make([]float64, size)
		for i := range xs {
			shifted[i] = xs[i] + shift
		}
		s2 := Summarize(shifted)
		return math.Abs(s2.Mean-(s.Mean+shift)) < 1e-6 && math.Abs(s2.Std-s.Std) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SNR is symmetric under scaling of both signals.
func TestSNRScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 16
		ref := make([]float64, n)
		q := make([]float64, n)
		for i := range ref {
			ref[i] = rng.NormFloat64()
			q[i] = ref[i] + 0.01*rng.NormFloat64()
		}
		s1, _ := SNRdB(ref, q)
		scaled := 3.7
		ref2 := make([]float64, n)
		q2 := make([]float64, n)
		for i := range ref {
			ref2[i] = ref[i] * scaled
			q2[i] = q[i] * scaled
		}
		s2, _ := SNRdB(ref2, q2)
		if math.Abs(s1-s2) > 1e-9 {
			t.Fatalf("SNR not scale-invariant: %v vs %v", s1, s2)
		}
	}
}

func TestSummaryPercentileFields(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(100 - i) // 0..100, reversed to exercise sorting
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("percentile fields = %v/%v/%v, want 50/95/99", s.P50, s.P95, s.P99)
	}
	if s.P50 != s.Median {
		t.Errorf("P50 %v != Median %v", s.P50, s.Median)
	}
}

func TestSummaryPercentilesMatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 37)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := Summarize(xs)
	for _, c := range []struct{ p, got float64 }{{50, s.P50}, {95, s.P95}, {99, s.P99}} {
		if want := Percentile(xs, c.p); c.got != want {
			t.Errorf("Summary p%.0f = %v, want Percentile's %v", c.p, c.got, want)
		}
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	got := Percentiles(xs, 0, 50, 100)
	want := []float64{1, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// One sort, same answers as repeated Percentile calls.
	for _, p := range []float64{10, 25, 75, 90, 99} {
		if a, b := Percentiles(xs, p)[0], Percentile(xs, p); a != b {
			t.Errorf("Percentiles(%v) = %v, Percentile = %v", p, a, b)
		}
	}
	if out := Percentiles(nil, 50, 99); out[0] != 0 || out[1] != 0 {
		t.Errorf("empty Percentiles = %v, want zeros", out)
	}
	if out := Percentiles(xs); len(out) != 0 {
		t.Errorf("no-ps Percentiles = %v, want empty", out)
	}
}
