package pipeline

import (
	"math"
	"testing"
)

func costs(f float64) Costs { return Costs{F: f, B: 1.76 * f, W: 0.425 * f} }

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(OneFOneB, 1, 4, costs(1)); err == nil {
		t.Error("single stage must be rejected")
	}
	if _, err := Simulate(OneFOneB, 4, 0, costs(1)); err == nil {
		t.Error("zero microbatches must be rejected")
	}
	if _, err := Simulate(OneFOneB, 4, 4, Costs{}); err == nil {
		t.Error("zero costs must be rejected")
	}
}

func TestOneFOneBBubbleFormula(t *testing.T) {
	// Classic 1F1B: bubble fraction = (PP-1)/(m+PP-1) when F==B.
	c := Costs{F: 1, B: 1, W: 0}
	for _, m := range []int{8, 16, 32} {
		r, err := Simulate(OneFOneB, 8, m, c)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(7) / float64(m+7)
		if math.Abs(r.BubbleFraction()-want) > 0.02 {
			t.Errorf("m=%d: bubble fraction %v, want ~%v", m, r.BubbleFraction(), want)
		}
	}
}

func TestOneFOneBMakespanLowerBound(t *testing.T) {
	c := costs(0.1)
	r, err := Simulate(OneFOneB, 16, 60, c)
	if err != nil {
		t.Fatal(err)
	}
	work := 60 * (c.F + c.B + c.W)
	if r.Makespan < work {
		t.Errorf("makespan %v below per-stage work %v", r.Makespan, work)
	}
	// All stages perform identical work.
	for s, b := range r.StageBusy {
		if math.Abs(b-work) > 1e-9 {
			t.Errorf("stage %d busy %v, want %v", s, b, work)
		}
	}
}

func TestOneFOneBPhasesPartitionStep(t *testing.T) {
	r, err := Simulate(OneFOneB, 8, 24, costs(0.2))
	if err != nil {
		t.Fatal(err)
	}
	p := r.Phases
	sum := p.F1 + p.F1B1 + p.B1 + p.W1
	// Stage-0 timeline: phases cover the whole busy window; bubble is
	// stage-0 idle. The two accountings must be consistent.
	if sum > r.Makespan+1e-9 {
		t.Errorf("phases (%v) exceed makespan (%v)", sum, r.Makespan)
	}
	if p.Bubble < 0 {
		t.Errorf("negative bubble %v", p.Bubble)
	}
}

func TestMoreMicrobatchesAmortizeBubble(t *testing.T) {
	small, _ := Simulate(OneFOneB, 8, 8, costs(1))
	large, _ := Simulate(OneFOneB, 8, 64, costs(1))
	if large.BubbleFraction() >= small.BubbleFraction() {
		t.Errorf("bubble fraction should fall with m: %v vs %v",
			small.BubbleFraction(), large.BubbleFraction())
	}
}

func TestDualPipeGreedyRuns(t *testing.T) {
	r, err := Simulate(DualPipe, 8, 32, costs(1))
	if err != nil {
		t.Fatal(err)
	}
	work := 32 * (costs(1).F + costs(1).B + costs(1).W)
	if r.Makespan < work {
		t.Errorf("makespan %v below work bound %v", r.Makespan, work)
	}
	// The bidirectional warmup is much shorter than 1F1B's: the first
	// backward on stage 0 arrives after a single pipe traversal.
	base, _ := Simulate(OneFOneB, 8, 32, costs(1))
	if r.Phases.F1 >= base.Phases.F1 {
		t.Errorf("DualPipe warmup (%v) should beat 1F1B (%v)", r.Phases.F1, base.Phases.F1)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := Simulate(DualPipe, 8, 24, costs(0.3))
	b, _ := Simulate(DualPipe, 8, 24, costs(0.3))
	if a.Makespan != b.Makespan || a.Phases != b.Phases {
		t.Error("simulation must be deterministic")
	}
}

func TestAnalyticDualPipeValidation(t *testing.T) {
	if _, err := AnalyticDualPipe(7, 60, costs(1)); err == nil {
		t.Error("odd stage count must be rejected")
	}
	if _, err := AnalyticDualPipe(16, 8, costs(1)); err == nil {
		t.Error("microbatches < stages must be rejected")
	}
	if _, err := AnalyticDualPipe(16, 60, Costs{}); err == nil {
		t.Error("zero costs must be rejected")
	}
}

func TestAnalyticDualPipePhaseStructure(t *testing.T) {
	c := costs(0.1)
	r, err := AnalyticDualPipe(16, 60, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Phases.F1-14*c.F) > 1e-12 {
		t.Errorf("1F = %v, want 14F", r.Phases.F1)
	}
	if math.Abs(r.Phases.B1-14*c.B) > 1e-12 {
		t.Errorf("1B = %v, want 14B", r.Phases.B1)
	}
	if math.Abs(r.Phases.W1-14*c.W) > 1e-12 {
		t.Errorf("1W = %v, want 14W", r.Phases.W1)
	}
	sum := r.Phases.F1 + r.Phases.F1B1 + r.Phases.B1 + r.Phases.W1 + r.Phases.Bubble
	if math.Abs(sum-r.Makespan) > 1e-9 {
		t.Errorf("phases must partition the makespan: %v vs %v", sum, r.Makespan)
	}
}

func TestIdealDualPipeBeatsIdealOneFOneB(t *testing.T) {
	// Like-for-like: the overhead-free DualPipe bound vs the ideal 1F1B
	// event simulation. DualPipe's half-depth bubble must win.
	c := costs(0.08)
	ideal := IdealDualPipeMakespan(16, 60, c)
	ofb, err := Simulate(OneFOneB, 16, 60, c)
	if err != nil {
		t.Fatal(err)
	}
	if ideal >= ofb.Makespan {
		t.Errorf("ideal DualPipe (%v) must beat ideal 1F1B (%v)", ideal, ofb.Makespan)
	}
	work := 60 * (c.F + c.B + c.W)
	if ideal <= work {
		t.Errorf("ideal DualPipe %v below the work bound %v", ideal, work)
	}
	// The calibrated production model carries measured overheads on top
	// of the ideal bound.
	dp, err := AnalyticDualPipe(16, 60, c)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Makespan < ideal {
		t.Errorf("production timeline (%v) cannot beat the ideal bound (%v)", dp.Makespan, ideal)
	}
}

func TestScheduleString(t *testing.T) {
	if OneFOneB.String() != "1F1B" || DualPipe.String() != "DualPipe" {
		t.Error("schedule names wrong")
	}
}
