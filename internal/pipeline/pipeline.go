// Package pipeline simulates pipeline-parallel training schedules: the
// classic 1F1B baseline and a DualPipe-style bidirectional schedule
// with split backward (input-gradient vs weight-gradient) and deferred
// weight work filling bubbles, as used to train DeepSeek-V3 (§4.2).
//
// The simulator is dependency-driven: each stage is a serial resource;
// tasks (F, B, W per microbatch per stage) become ready when their
// predecessors finish; ready tasks are picked by priority (drain
// backwards first, defer weight work). The timeline is then decomposed
// into the phases reported in the paper's Table 4: 1F (warmup), 1F1B
// (steady), 1B (backward drain), 1W (weight tail) and bubble.
package pipeline

import (
	"fmt"
	"math"

	"dsv3/internal/units"
)

// Costs are per-microbatch, per-stage task durations. Communication
// that cannot be overlapped is folded into F/B by the caller; DualPipe
// overlaps EP communication with compute, so its unoverlapped share is
// normally zero (§4.2).
type Costs struct {
	F units.Seconds // forward
	B units.Seconds // backward for inputs (activation gradients)
	W units.Seconds // backward for weights
}

// Schedule selects the pipeline algorithm.
type Schedule int

const (
	// OneFOneB is the classic 1F1B schedule with backward = B+W fused.
	OneFOneB Schedule = iota
	// DualPipe is the bidirectional schedule: microbatches stream from
	// both pipeline ends, weight-gradient tasks are split off and
	// deferred into bubbles.
	DualPipe
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	if s == OneFOneB {
		return "1F1B"
	}
	return "DualPipe"
}

// Phases decomposes one stage's step timeline (Table 4 rows).
type Phases struct {
	F1     units.Seconds // warmup: start of step to the stage's first B
	F1B1   units.Seconds // steady window: first B to last F
	B1     units.Seconds // backward drain: last F to last B
	W1     units.Seconds // weight tail: last B to end of stage work
	Bubble units.Seconds // idle time on the stage within the step
}

// Result is one simulated training step (excluding the optimizer).
type Result struct {
	Makespan units.Seconds
	// Phases are measured on the first stage, which is the convention
	// the paper's step decomposition follows.
	Phases Phases
	// StageBusy is each stage's total busy time.
	StageBusy []units.Seconds
}

type taskKind int

const (
	taskF taskKind = iota
	taskB
	taskW
)

type task struct {
	kind  taskKind
	mb    int
	stage int
}

// Simulate runs the schedule with the given stage count and microbatch
// count and returns the timeline decomposition.
func Simulate(sched Schedule, stages, microbatches int, c Costs) (Result, error) {
	if stages < 2 || microbatches < 1 {
		return Result{}, fmt.Errorf("pipeline: need >=2 stages and >=1 microbatch, got %d/%d", stages, microbatches)
	}
	if c.F <= 0 || c.B <= 0 || c.W < 0 {
		return Result{}, fmt.Errorf("pipeline: non-positive task costs %+v", c)
	}

	// doneAt[kind][mb][stage]; NaN = not yet scheduled.
	doneAt := make([][][]float64, 3)
	for k := range doneAt {
		doneAt[k] = make([][]float64, microbatches)
		for m := range doneAt[k] {
			doneAt[k][m] = make([]float64, stages)
			for s := range doneAt[k][m] {
				doneAt[k][m][s] = math.NaN()
			}
		}
	}
	stageFree := make([]float64, stages)
	stageBusy := make([]float64, stages)

	// Direction of each microbatch: 1F1B all forward; DualPipe
	// alternates injection ends.
	dirOf := func(mb int) int {
		if sched == DualPipe && mb%2 == 1 {
			return 1 // enters at the last stage
		}
		return 0
	}
	// stage order helpers.
	fwdPrev := func(mb, s int) (int, bool) {
		if dirOf(mb) == 0 {
			if s == 0 {
				return 0, false
			}
			return s - 1, true
		}
		if s == stages-1 {
			return 0, false
		}
		return s + 1, true
	}
	bwdPrev := func(mb, s int) (int, bool) {
		if dirOf(mb) == 0 {
			if s == stages-1 {
				return 0, false
			}
			return s + 1, true
		}
		if s == 0 {
			return 0, false
		}
		return s - 1, true
	}

	ready := func(t task, now float64) (float64, bool) {
		switch t.kind {
		case taskF:
			prev, ok := fwdPrev(t.mb, t.stage)
			if !ok {
				return 0, true
			}
			at := doneAt[taskF][t.mb][prev]
			return at, !math.IsNaN(at)
		case taskB:
			// B needs this stage's own F, plus the downstream B.
			own := doneAt[taskF][t.mb][t.stage]
			if math.IsNaN(own) {
				return 0, false
			}
			prev, ok := bwdPrev(t.mb, t.stage)
			if !ok {
				return own, true
			}
			at := doneAt[taskB][t.mb][prev]
			if math.IsNaN(at) {
				return 0, false
			}
			return math.Max(own, at), true
		default: // taskW needs the stage's own B.
			at := doneAt[taskB][t.mb][t.stage]
			return at, !math.IsNaN(at)
		}
	}

	// The activation-memory window caps how many of a stage's forwards
	// may be unretired by backwards, per direction. 1F1B uses the
	// classic stages-s window; DualPipe gives each direction a window
	// proportional to its remaining depth, which balances per-stage
	// memory across the pipeline (one of DualPipe's design goals).
	window := func(dir, s int) int {
		if sched != DualPipe {
			return stages - s
		}
		var depth int
		if dir == 0 {
			depth = stages - s // distance to this direction's exit
		} else {
			depth = s + 1
		}
		return depth/2 + 2
	}

	durations := map[taskKind]float64{taskF: c.F, taskB: c.B, taskW: c.W}
	if sched == OneFOneB {
		durations[taskB] = c.B + c.W // fused backward
		durations[taskW] = 0
	}

	pending := make(map[task]bool)
	for m := 0; m < microbatches; m++ {
		for s := 0; s < stages; s++ {
			pending[task{taskF, m, s}] = true
			pending[task{taskB, m, s}] = true
			if sched == DualPipe {
				pending[task{taskW, m, s}] = true
			}
		}
	}

	fwdIssued := make([][2]int, stages) // forwards started per stage per direction
	bwdDone := make([][2]int, stages)   // backwards finished per stage per direction
	firstB := make([]float64, stages)   // first B start per stage
	lastFEnd := make([]float64, stages)
	lastBEnd := make([]float64, stages)
	lastEnd := make([]float64, stages)
	for s := range firstB {
		firstB[s] = math.NaN()
	}

	// Event loop: repeatedly pick, for the earliest-free stage with
	// runnable work, the best-priority runnable task.
	remaining := len(pending)
	for remaining > 0 {
		best := task{}
		bestStart := math.Inf(1)
		bestRank := math.Inf(1)
		found := false
		for t := range pending {
			depAt, ok := ready(t, stageFree[t.stage])
			if !ok {
				continue
			}
			// Memory window: a stage may not run F if too many of its
			// forwards have not been retired by backwards yet.
			if t.kind == taskF {
				d := dirOf(t.mb)
				if fwdIssued[t.stage][d]-bwdDone[t.stage][d] >= window(d, t.stage) {
					continue
				}
			}
			start := math.Max(depAt, stageFree[t.stage])
			// Priority: earliest start wins; ties prefer B, then F,
			// then W (defer weight work into bubbles), then lower mb,
			// then lower stage (for determinism).
			rank := float64(t.mb) + float64(t.stage)*1e-3
			switch t.kind {
			case taskB:
				rank -= 1e6
			case taskW:
				rank += 1e6
			}
			if start < bestStart-1e-15 || (math.Abs(start-bestStart) <= 1e-15 && rank < bestRank) {
				best, bestStart, bestRank, found = t, start, rank, true
			}
		}
		if !found {
			return Result{}, fmt.Errorf("pipeline: schedule deadlock with %d tasks left", remaining)
		}
		d := durations[best.kind]
		end := bestStart + d
		doneAt[best.kind][best.mb][best.stage] = end
		stageFree[best.stage] = end
		stageBusy[best.stage] += d
		delete(pending, best)
		remaining--

		s := best.stage
		switch best.kind {
		case taskF:
			fwdIssued[s][dirOf(best.mb)]++
			if end > lastFEnd[s] {
				lastFEnd[s] = end
			}
		case taskB:
			bwdDone[s][dirOf(best.mb)]++
			if math.IsNaN(firstB[s]) {
				firstB[s] = bestStart
			}
			if end > lastBEnd[s] {
				lastBEnd[s] = end
			}
		}
		if end > lastEnd[s] {
			lastEnd[s] = end
		}
	}

	res := Result{StageBusy: stageBusy}
	for s := range stageFree {
		if stageFree[s] > res.Makespan {
			res.Makespan = stageFree[s]
		}
	}
	// Phase decomposition on stage 0.
	res.Phases = Phases{
		F1:     firstB[0],
		F1B1:   math.Max(0, lastFEnd[0]-firstB[0]),
		B1:     math.Max(0, lastBEnd[0]-lastFEnd[0]),
		W1:     math.Max(0, lastEnd[0]-lastBEnd[0]),
		Bubble: res.Makespan - stageBusy[0],
	}
	return res, nil
}

// BubbleFraction returns the idle share of the pipeline: mean stage
// idle time over the makespan.
func (r Result) BubbleFraction() float64 {
	if r.Makespan == 0 {
		return 0
	}
	var idle float64
	for _, b := range r.StageBusy {
		idle += r.Makespan - b
	}
	return idle / (r.Makespan * float64(len(r.StageBusy)))
}
