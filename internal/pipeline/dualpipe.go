package pipeline

import (
	"fmt"

	"dsv3/internal/units"
)

// AnalyticDualPipe computes the DualPipe step timeline in closed form,
// following the schedule structure published with DualPipe (bidirectional
// injection, split backward, weight work deferred into bubbles). The
// greedy event simulator in Simulate gives a *feasible* bidirectional
// schedule; this model gives the *designed* one, whose phase
// decomposition matches the production measurements in the paper's
// Table 4:
//
//	1F     = (PP-2)·F            — warmup ramp of forwards
//	1F1B   = (m+3)·(F+B)         — steady interleave window
//	1B     = (PP-2)·B            — backward drain
//	1W     = (PP-2)·W            — weight-gradient tail
//	bubble = (PP/2-1)·(F+2B-2W)  — half-depth bubble, partially
//	                               back-filled by deferred W work
//
// The bubble term is the DualPipe/zero-bubble family formula with the
// W-fill credit calibrated against the production measurement (the
// published variants differ in how much W can sink into the ramp).
func AnalyticDualPipe(stages, microbatches int, c Costs) (Result, error) {
	if stages < 4 || stages%2 != 0 {
		return Result{}, fmt.Errorf("pipeline: DualPipe needs an even stage count >= 4, got %d", stages)
	}
	if microbatches < stages {
		return Result{}, fmt.Errorf("pipeline: DualPipe needs microbatches (%d) >= stages (%d)", microbatches, stages)
	}
	if c.F <= 0 || c.B <= 0 || c.W < 0 {
		return Result{}, fmt.Errorf("pipeline: non-positive task costs %+v", c)
	}
	p := float64(stages)
	m := float64(microbatches)
	ph := Phases{
		F1:     (p - 2) * c.F,
		F1B1:   (m + 3) * (c.F + c.B),
		B1:     (p - 2) * c.B,
		W1:     (p - 2) * c.W,
		Bubble: (p/2 - 1) * (c.F + 2*c.B - 2*c.W),
	}
	res := Result{
		Makespan: ph.F1 + ph.F1B1 + ph.B1 + ph.W1 + ph.Bubble,
		Phases:   ph,
	}
	// Stage busy time: every stage executes m·(F+B+W) of work.
	res.StageBusy = make([]units.Seconds, stages)
	for s := range res.StageBusy {
		res.StageBusy[s] = m * (c.F + c.B + c.W)
	}
	return res, nil
}

// IdealDualPipeMakespan returns the overhead-free DualPipe step time:
// per-stage work plus the published bubble term
// (PP/2-1)·(F&B + B - 3W) with F&B = F+B. This is the bound to compare
// against the ideal 1F1B event simulation; AnalyticDualPipe, in
// contrast, reproduces the *measured* production timeline, which
// carries straggler/launch overheads on top of the ideal schedule.
func IdealDualPipeMakespan(stages, microbatches int, c Costs) units.Seconds {
	m := float64(microbatches)
	p := float64(stages)
	work := m * (c.F + c.B + c.W)
	bubble := (p/2 - 1) * (c.F + 2*c.B - 3*c.W)
	if bubble < 0 {
		bubble = 0
	}
	return work + bubble
}
