// Package cluster models the hardware platform of the paper: H800 nodes
// (8 GPUs behind an NVSwitch, 8×400G IB NICs, one NIC per GPU) attached
// to either the deployed Multi-Plane Fat-Tree (MPFT) or the single-plane
// Multi-Rail Fat-Tree (MRFT) it was evaluated against, plus the GB200
// NVL72 reference point used by the §2.3.2 analysis and the link-layer
// latency model behind Table 5.
package cluster

import (
	"fmt"
	"sync"

	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// H800 platform constants (§4.1, §4.3).
const (
	// GPUsPerNode is fixed by the H800 SXM platform.
	GPUsPerNode = 8
	// NVLinkLine is the H800's regulatory-capped NVLink bandwidth
	// (down from 900 GB/s on GB200-class parts): 400 GB/s bidirectional
	// = 200 GB/s per direction.
	NVLinkLine = 200 * units.GB
	// NVLinkEffective is the achieved NVLink bandwidth the paper quotes
	// ("about 160 GB/s can actually be achieved").
	NVLinkEffective = 160 * units.GB
	// NICLine is the 400 Gbps CX7 line rate.
	NICLine = 50 * units.GB
	// NICEffective is the achieved large-message rate; the paper uses
	// 40 GB/s as a conservative effective figure and DeepEP sustains
	// >40; 47 GB/s matches NCCL's large-message efficiency.
	NICEffective = 47 * units.GB
	// GB200NVL72Bandwidth is the scale-up bandwidth of the GB200 NVL72
	// comparison system (900 GB/s unidirectional across 72 GPUs).
	GB200NVL72Bandwidth = 900 * units.GB
)

// FabricKind selects the scale-out fabric layout.
type FabricKind int

const (
	// MPFT is the deployed eight-plane two-layer fat-tree (Figure 3).
	MPFT FabricKind = iota
	// MRFT is the single-plane multi-rail fat-tree baseline: same leaf
	// layer, but one shared spine group interconnecting all rails.
	MRFT
)

// String implements fmt.Stringer.
func (k FabricKind) String() string {
	if k == MPFT {
		return "MPFT"
	}
	return "MRFT"
}

// Config sizes a cluster build.
type Config struct {
	Nodes          int
	GPUsPerNode    int // = plane count; 8 on H800
	NICsPerLeaf    int
	SpinesPerPlane int
	Fabric         FabricKind

	Net       topology.FabricParams
	NVLinkCap units.BytesPerSecond
	NVLinkLat units.Seconds
}

// H800Config returns the default simulation configuration for n nodes
// (8n GPUs) on the chosen fabric. Leaf/spine counts are scaled-down but
// non-blocking, mirroring the real 1:1 two-layer design.
func H800Config(nodes int, fabric FabricKind) Config {
	return Config{
		Nodes:          nodes,
		GPUsPerNode:    GPUsPerNode,
		NICsPerLeaf:    4,
		SpinesPerPlane: 4,
		Fabric:         fabric,
		Net: topology.FabricParams{
			EndpointLinkCap: NICEffective,
			SwitchLinkCap:   NICEffective,
			EndpointLinkLat: 0.975 * units.Microsecond, // NIC + cable + half-switch
			SwitchHopLat:    0.45 * units.Microsecond,  // IB switch hop
		},
		NVLinkCap: NVLinkEffective,
		NVLinkLat: 0.1 * units.Microsecond,
	}
}

// Cluster is a built cluster graph with the bookkeeping needed to
// construct explicit paths (PXN, receiver-side forwarding) without
// re-deriving the topology.
type Cluster struct {
	Cfg Config
	G   *topology.Graph

	// GPU[n][g] is the graph node ID of GPU g on host n (endpoints).
	GPU [][]int

	nvsw      []int   // [node]
	nic       [][]int // [node][plane]
	leaf      [][]int // [plane][leafIdx]
	planes    int
	leafCount int // leaves per plane

	gpuToNVSw [][]int // link IDs [node][gpu]
	nvswToGPU [][]int
	gpuToNIC  [][]int // [node][plane]
	nicToGPU  [][]int
	nicToLeaf [][]int // [node][plane]
	leafToNIC [][]int
	// leafUp[plane][leafIdx] lists uplink link IDs, one per reachable
	// spine (plane-local spines for MPFT; all shared spines for MRFT).
	leafUp [][][]int
	// spineDown[(spineNode,leafNode)] is the matching down link.
	spineDown map[[2]int]int

	// pathMu guards the lazily built path caches below. Path
	// construction is pure, so caching keyed by the (src, dst) GPU
	// coordinates makes repeated collective/EP traffic generation on a
	// shared cluster allocation-free after warm-up. Cached slices are
	// shared: callers must treat returned paths as immutable.
	pathMu   sync.RWMutex
	pxnCache map[[4]int][][]int
	fwdCache map[[4]int][][]int
}

// Build constructs the cluster graph.
func Build(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 || cfg.GPUsPerNode <= 0 || cfg.NICsPerLeaf <= 0 || cfg.SpinesPerPlane <= 0 {
		return nil, fmt.Errorf("cluster: all counts must be positive: %+v", cfg)
	}
	planes := cfg.GPUsPerNode
	leafCount := (cfg.Nodes + cfg.NICsPerLeaf - 1) / cfg.NICsPerLeaf

	c := &Cluster{
		Cfg:       cfg,
		G:         topology.NewGraph(),
		planes:    planes,
		leafCount: leafCount,
		spineDown: make(map[[2]int]int),
		pxnCache:  make(map[[4]int][][]int),
		fwdCache:  make(map[[4]int][][]int),
	}
	g := c.G

	// Spines. MPFT: SpinesPerPlane per plane, isolated. MRFT: one shared
	// pool of planes*SpinesPerPlane spines; leaf uplink capacity is
	// divided across them so aggregate uplink bandwidth matches MPFT.
	var spineIDs [][]int // [plane] -> spine node IDs reachable from that plane's leaves
	uplinkCap := cfg.Net.SwitchLinkCap
	switch cfg.Fabric {
	case MPFT:
		spineIDs = make([][]int, planes)
		for p := 0; p < planes; p++ {
			for s := 0; s < cfg.SpinesPerPlane; s++ {
				id := g.AddNode(topology.Switch, fmt.Sprintf("spine-p%d-%d", p, s), 2, p)
				spineIDs[p] = append(spineIDs[p], id)
			}
		}
	case MRFT:
		shared := make([]int, 0, planes*cfg.SpinesPerPlane)
		for s := 0; s < planes*cfg.SpinesPerPlane; s++ {
			shared = append(shared, g.AddNode(topology.Switch, fmt.Sprintf("spine-%d", s), 2, -1))
		}
		spineIDs = make([][]int, planes)
		for p := 0; p < planes; p++ {
			spineIDs[p] = shared
		}
		uplinkCap = cfg.Net.SwitchLinkCap / float64(planes)
	default:
		return nil, fmt.Errorf("cluster: unknown fabric kind %d", cfg.Fabric)
	}

	// Leaves.
	c.leaf = make([][]int, planes)
	c.leafUp = make([][][]int, planes)
	for p := 0; p < planes; p++ {
		c.leaf[p] = make([]int, leafCount)
		c.leafUp[p] = make([][]int, leafCount)
		for l := 0; l < leafCount; l++ {
			id := g.AddNode(topology.Switch, fmt.Sprintf("leaf-p%d-%d", p, l), 1, p)
			c.leaf[p][l] = id
			for _, sp := range spineIDs[p] {
				up, down := g.AddDuplex(id, sp, uplinkCap, cfg.Net.SwitchHopLat)
				c.leafUp[p][l] = append(c.leafUp[p][l], up)
				c.spineDown[[2]int{sp, id}] = down
			}
		}
	}

	// Hosts: GPUs, NVSwitch, NICs.
	for n := 0; n < cfg.Nodes; n++ {
		nvsw := g.AddNode(topology.Switch, fmt.Sprintf("nvsw-%d", n), 0, -1)
		c.nvsw = append(c.nvsw, nvsw)
		gpus := make([]int, cfg.GPUsPerNode)
		nics := make([]int, planes)
		g2n, n2g := make([]int, cfg.GPUsPerNode), make([]int, cfg.GPUsPerNode)
		g2nic, nic2g := make([]int, planes), make([]int, planes)
		nicUp, nicDn := make([]int, planes), make([]int, planes)
		for i := 0; i < cfg.GPUsPerNode; i++ {
			gpu := g.AddNode(topology.Endpoint, fmt.Sprintf("gpu-%d-%d", n, i), 0, i)
			gpus[i] = gpu
			g2n[i], n2g[i] = g.AddDuplex(gpu, nvsw, cfg.NVLinkCap, cfg.NVLinkLat)

			nic := g.AddNode(topology.Switch, fmt.Sprintf("nic-%d-%d", n, i), 0, i)
			nics[i] = nic
			// GPU->NIC is PCIe/direct; not the bottleneck, so line rate.
			g2nic[i], nic2g[i] = g.AddDuplex(gpu, nic, cfg.Net.EndpointLinkCap, 0)
			leafIdx := n / cfg.NICsPerLeaf
			nicUp[i], nicDn[i] = g.AddDuplex(nic, c.leaf[i][leafIdx], cfg.Net.EndpointLinkCap, cfg.Net.EndpointLinkLat)
		}
		c.GPU = append(c.GPU, gpus)
		c.nic = append(c.nic, nics)
		c.gpuToNVSw = append(c.gpuToNVSw, g2n)
		c.nvswToGPU = append(c.nvswToGPU, n2g)
		c.gpuToNIC = append(c.gpuToNIC, g2nic)
		c.nicToGPU = append(c.nicToGPU, nic2g)
		c.nicToLeaf = append(c.nicToLeaf, nicUp)
		c.leafToNIC = append(c.leafToNIC, nicDn)
	}
	return c, nil
}

// Planes returns the plane count.
func (c *Cluster) Planes() int { return c.planes }

// LeafOf returns the leaf index of a host.
func (c *Cluster) LeafOf(node int) int { return node / c.Cfg.NICsPerLeaf }

// SpineSlots returns how many spines a leaf in the given plane can
// reach (the fan-out available for multipathing).
func (c *Cluster) SpineSlots(plane int) int { return len(c.leafUp[plane][0]) }

// GPUID returns the graph node ID of (host, gpu).
func (c *Cluster) GPUID(node, gpu int) int { return c.GPU[node][gpu] }

// RankOf maps a global rank to (host, gpu) in the usual packed order.
func (c *Cluster) RankOf(rank int) (node, gpu int) {
	return rank / c.Cfg.GPUsPerNode, rank % c.Cfg.GPUsPerNode
}

// NumRanks returns the total GPU count.
func (c *Cluster) NumRanks() int { return c.Cfg.Nodes * c.Cfg.GPUsPerNode }

// NVLinkPath returns the intra-node path GPU i -> GPU j on a host.
func (c *Cluster) NVLinkPath(node, i, j int) []int {
	if i == j {
		return nil
	}
	return []int{c.gpuToNVSw[node][i], c.nvswToGPU[node][j]}
}

// appendNetSegment appends NIC(a,plane) -> fabric -> NIC(b,plane) to p,
// choosing spine slot spine when the hosts sit under different leaves.
func (c *Cluster) appendNetSegment(p []int, a, b, plane, spine int) []int {
	leafA, leafB := c.LeafOf(a), c.LeafOf(b)
	p = append(p, c.nicToLeaf[a][plane])
	if leafA != leafB {
		up := c.leafUp[plane][leafA][spine]
		spineNode := c.G.Links[up].To
		p = append(p, up, c.spineDown[[2]int{spineNode, c.leaf[plane][leafB]}])
	}
	return append(p, c.leafToNIC[b][plane])
}

// cachedPaths returns the memoized path set for key, building and
// publishing it on first use. Safe for concurrent callers.
func (c *Cluster) cachedPaths(cache map[[4]int][][]int, key [4]int, build func() [][]int) [][]int {
	c.pathMu.RLock()
	p, ok := cache[key]
	c.pathMu.RUnlock()
	if ok {
		return p
	}
	p = build()
	c.pathMu.Lock()
	cache[key] = p
	c.pathMu.Unlock()
	return p
}

// PXNPaths returns the sender-side PXN paths from GPU (a,i) to GPU
// (b,j): the message moves over NVLink to local GPU j (the one whose
// NIC rail matches the destination), then through plane j. One path per
// spine slot is returned for multipathing; same-leaf pairs have exactly
// one path. The result is cached and must not be mutated.
func (c *Cluster) PXNPaths(a, i, b, j int) [][]int {
	return c.cachedPaths(c.pxnCache, [4]int{a, i, b, j}, func() [][]int {
		if a == b {
			return [][]int{c.NVLinkPath(a, i, j)}
		}
		var prefix []int
		if i != j {
			prefix = c.NVLinkPath(a, i, j)
		}
		plane := j
		return c.fanOut(prefix, a, b, plane, 1, func(seg []int) []int {
			seg = append(seg, c.nicToGPU[b][plane])
			return seg
		})
	})
}

// ForwardPaths returns the receiver-side forwarding paths used by
// DeepEP-style EP dispatch: GPU (a,i) sends through its own plane i to
// the peer GPU (b,i), which forwards over NVLink to GPU (b,j). The
// result is cached and must not be mutated.
func (c *Cluster) ForwardPaths(a, i, b, j int) [][]int {
	return c.cachedPaths(c.fwdCache, [4]int{a, i, b, j}, func() [][]int {
		if a == b {
			return [][]int{c.NVLinkPath(a, i, j)}
		}
		plane := i
		return c.fanOut(nil, a, b, plane, 3, func(seg []int) []int {
			seg = append(seg, c.nicToGPU[b][plane])
			if i != j {
				seg = append(seg, c.NVLinkPath(b, i, j)...)
			}
			return seg
		})
	})
}

// PXNPathsVia routes GPU (a,i) -> GPU (b,j) through an arbitrary plane:
// NVLink to the plane's local GPU, the plane's fabric, then NVLink at
// the receiver if the plane is not the destination GPU's own. This is
// the detour NCCL takes when a plane (or its NIC) has failed — the
// multi-plane robustness mechanism of §5.1.1 / Figure 4.
func (c *Cluster) PXNPathsVia(a, i, b, j, plane int) [][]int {
	if a == b {
		return [][]int{c.NVLinkPath(a, i, j)}
	}
	var prefix []int
	if i != plane {
		prefix = c.NVLinkPath(a, i, plane)
	}
	return c.fanOut(prefix, a, b, plane, 3, func(seg []int) []int {
		seg = append(seg, c.nicToGPU[b][plane])
		if plane != j {
			seg = append(seg, c.NVLinkPath(b, plane, j)...)
		}
		return seg
	})
}

// fanOut builds prefix + GPU(a)->NIC + net segment(spine) + suffix for
// every spine slot (or the single same-leaf path). suffixCap is an
// upper bound on the link IDs the suffix callback appends, so each path
// is built in exactly one allocation — path construction populates the
// per-cluster caches, and the first big sweep on a fresh cluster builds
// hundreds of thousands of these.
func (c *Cluster) fanOut(prefix []int, a, b, plane, suffixCap int, suffix func([]int) []int) [][]int {
	sameLeaf := c.LeafOf(a) == c.LeafOf(b)
	slots, segLen := 1, 2
	if !sameLeaf {
		slots = c.SpineSlots(plane)
		segLen = 4
	}
	paths := make([][]int, 0, slots)
	for s := 0; s < slots; s++ {
		p := make([]int, 0, len(prefix)+1+segLen+suffixCap)
		p = append(p, prefix...)
		p = append(p, c.gpuToNIC[a][plane])
		p = c.appendNetSegment(p, a, b, plane, s)
		paths = append(paths, suffix(p))
	}
	return paths
}
