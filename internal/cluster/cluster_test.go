package cluster

import (
	"math"
	"testing"

	"dsv3/internal/netsim"
	"dsv3/internal/units"
)

func TestBuildValidates(t *testing.T) {
	for _, kind := range []FabricKind{MPFT, MRFT} {
		c, err := Build(H800Config(4, kind))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.G.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if c.NumRanks() != 32 {
			t.Errorf("ranks = %d, want 32", c.NumRanks())
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("zero config must be rejected")
	}
}

func TestRankMapping(t *testing.T) {
	c, _ := Build(H800Config(2, MPFT))
	n, g := c.RankOf(0)
	if n != 0 || g != 0 {
		t.Error("rank 0 should be (0,0)")
	}
	n, g = c.RankOf(9)
	if n != 1 || g != 1 {
		t.Errorf("rank 9 -> (%d,%d), want (1,1)", n, g)
	}
}

func TestNVLinkPath(t *testing.T) {
	c, _ := Build(H800Config(1, MPFT))
	p := c.NVLinkPath(0, 0, 3)
	if len(p) != 2 {
		t.Fatalf("NVLink path should be 2 links, got %d", len(p))
	}
	if c.NVLinkPath(0, 2, 2) != nil {
		t.Error("self NVLink path should be nil")
	}
	// Path endpoints: GPU0 -> NVSwitch -> GPU3.
	g := c.G
	if g.Links[p[0]].From != c.GPUID(0, 0) || g.Links[p[1]].To != c.GPUID(0, 3) {
		t.Error("NVLink path endpoints wrong")
	}
}

func pathEnds(t *testing.T, c *Cluster, path []int, wantFrom, wantTo int) {
	t.Helper()
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	if c.G.Links[path[0]].From != wantFrom {
		t.Errorf("path starts at %d, want %d", c.G.Links[path[0]].From, wantFrom)
	}
	if c.G.Links[path[len(path)-1]].To != wantTo {
		t.Errorf("path ends at %d, want %d", c.G.Links[path[len(path)-1]].To, wantTo)
	}
	// Contiguity.
	for k := 1; k < len(path); k++ {
		if c.G.Links[path[k]].From != c.G.Links[path[k-1]].To {
			t.Fatalf("path not contiguous at hop %d", k)
		}
	}
}

func TestPXNPathsSameNode(t *testing.T) {
	c, _ := Build(H800Config(2, MPFT))
	paths := c.PXNPaths(0, 1, 0, 5)
	if len(paths) != 1 {
		t.Fatalf("same-node should have 1 path, got %d", len(paths))
	}
	pathEnds(t, c, paths[0], c.GPUID(0, 1), c.GPUID(0, 5))
}

func TestPXNPathsSameLeafCrossNode(t *testing.T) {
	// Nodes 0 and 1 share a leaf (NICsPerLeaf=4).
	c, _ := Build(H800Config(2, MPFT))
	paths := c.PXNPaths(0, 2, 1, 6)
	if len(paths) != 1 {
		t.Fatalf("same-leaf pair should have 1 path, got %d", len(paths))
	}
	pathEnds(t, c, paths[0], c.GPUID(0, 2), c.GPUID(1, 6))
	// The PXN path must traverse plane 6 (the destination GPU's plane):
	// check it passes through NIC (0,6).
	sawNIC := false
	for _, lid := range paths[0] {
		if c.G.Links[lid].From == c.nic[0][6] || c.G.Links[lid].To == c.nic[0][6] {
			sawNIC = true
		}
	}
	if !sawNIC {
		t.Error("PXN path should use the destination-plane NIC on the source host")
	}
}

func TestPXNPathsCrossLeafFanOut(t *testing.T) {
	cfg := H800Config(8, MPFT) // leaves of 4 nodes: nodes 0..3 and 4..7
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := c.PXNPaths(0, 0, 5, 0)
	if len(paths) != cfg.SpinesPerPlane {
		t.Fatalf("cross-leaf paths = %d, want %d (one per spine)", len(paths), cfg.SpinesPerPlane)
	}
	for _, p := range paths {
		pathEnds(t, c, p, c.GPUID(0, 0), c.GPUID(5, 0))
	}
}

func TestForwardPathsReceiverSide(t *testing.T) {
	c, _ := Build(H800Config(2, MPFT))
	paths := c.ForwardPaths(0, 3, 1, 7)
	if len(paths) != 1 {
		t.Fatalf("same-leaf: 1 path, got %d", len(paths))
	}
	pathEnds(t, c, paths[0], c.GPUID(0, 3), c.GPUID(1, 7))
	// Receiver-side forwarding uses the SOURCE plane (3), then NVLink on
	// the destination host.
	sawSrcNIC := false
	for _, lid := range paths[0] {
		if c.G.Links[lid].From == c.nic[0][3] {
			sawSrcNIC = true
		}
	}
	if !sawSrcNIC {
		t.Error("forward path should leave through the source GPU's own NIC")
	}
}

func TestMRFTSharedSpines(t *testing.T) {
	cfg := H800Config(8, MRFT)
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every plane's leaves reach all shared spines.
	want := cfg.SpinesPerPlane * cfg.GPUsPerNode
	if got := c.SpineSlots(0); got != want {
		t.Errorf("MRFT spine slots = %d, want %d", got, want)
	}
	// MPFT planes are isolated.
	c2, _ := Build(H800Config(8, MPFT))
	if got := c2.SpineSlots(0); got != cfg.SpinesPerPlane {
		t.Errorf("MPFT spine slots = %d, want %d", got, cfg.SpinesPerPlane)
	}
}

func TestMRFTAggregateUplinkMatchesMPFT(t *testing.T) {
	// Hardware parity: total uplink capacity per leaf must match.
	sum := func(c *Cluster) float64 {
		var total float64
		for _, lid := range c.leafUp[0][0] {
			total += c.G.Links[lid].Capacity
		}
		return total
	}
	a, _ := Build(H800Config(8, MPFT))
	b, _ := Build(H800Config(8, MRFT))
	if math.Abs(sum(a)-sum(b)) > 1 {
		t.Errorf("uplink capacity differs: MPFT %v vs MRFT %v", sum(a), sum(b))
	}
}

// A PXN path simulated end-to-end must be NIC-bound: a single flow
// should achieve the NIC effective rate.
func TestPXNPathFlowRate(t *testing.T) {
	c, _ := Build(H800Config(8, MPFT))
	paths := c.PXNPaths(0, 0, 5, 3)
	flow := netsim.Flow{Src: c.GPUID(0, 0), Dst: c.GPUID(5, 3), Bytes: 1 * units.GB, Paths: paths[:1]}
	res := netsim.Simulate(c.G, []netsim.Flow{flow})
	want := 1 * units.GB / NICEffective
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("PXN flow time = %v, want %v (NIC-bound)", res.Makespan, want)
	}
}

// Table 5: the latency model must reproduce the paper's values exactly.
func TestTable5Latencies(t *testing.T) {
	p := DefaultLatencyParams()
	cases := []struct {
		layer    LinkLayer
		sameLeaf bool
		want     units.Seconds
	}{
		{RoCE, true, 3.6 * units.Microsecond},
		{RoCE, false, 5.6 * units.Microsecond},
		{IB, true, 2.8 * units.Microsecond},
		{IB, false, 3.7 * units.Microsecond},
		{NVLink, true, 3.33 * units.Microsecond},
	}
	for _, cse := range cases {
		got := p.EndToEnd(cse.layer, cse.sameLeaf)
		if math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("%v sameLeaf=%v: %v, want %v", cse.layer, cse.sameLeaf, got, cse.want)
		}
	}
}

func TestIBBeatsRoCE(t *testing.T) {
	p := DefaultLatencyParams()
	if p.EndToEnd(IB, true) >= p.EndToEnd(RoCE, true) {
		t.Error("IB must have lower latency than RoCE (same leaf)")
	}
	if p.EndToEnd(IB, false) >= p.EndToEnd(RoCE, false) {
		t.Error("IB must have lower latency than RoCE (cross leaf)")
	}
}

func TestIBGDASaving(t *testing.T) {
	p := DefaultLatencyParams()
	with := p.EndToEnd(IB, true)
	proxy := p.EndToEndWithProxy(IB, true)
	if math.Abs((proxy-with)-CPUProxyOverhead) > 1e-15 {
		t.Error("proxy overhead accounting wrong")
	}
	if CPUProxyOverhead <= 0 {
		t.Error("IBGDA must save something")
	}
}

func TestFabricKindString(t *testing.T) {
	if MPFT.String() != "MPFT" || MRFT.String() != "MRFT" {
		t.Error("fabric names wrong")
	}
	if IB.String() != "InfiniBand" || RoCE.String() != "RoCE" || NVLink.String() != "NVLink" {
		t.Error("link layer names wrong")
	}
}

func TestClusterConstants(t *testing.T) {
	if NICLine != 50*units.GB {
		t.Error("400 Gbps = 50 GB/s")
	}
	if NVLinkEffective >= NVLinkLine {
		t.Error("effective NVLink must be below line rate")
	}
	if GB200NVL72Bandwidth/NICLine != 18 {
		t.Errorf("NVL72:NIC bandwidth ratio should be 18x, got %v", GB200NVL72Bandwidth/NICLine)
	}
}
