package cluster

import "dsv3/internal/units"

// LatencyParams decomposes the CPU-side end-to-end latency of a small
// (64 B) transfer into structural components. The defaults are
// calibrated so the composed values reproduce Table 5; the point of the
// decomposition is that the *differences* (per-hop cost, host stack) are
// physically meaningful and reusable by the netsim startup-latency path.
type LatencyParams struct {
	// HostOverhead is the sender+receiver software cost (post/poll,
	// completion handling) for the transport.
	HostOverheadIB     units.Seconds
	HostOverheadRoCE   units.Seconds
	HostOverheadNVLink units.Seconds

	// NICLat is the NIC traversal cost, paid once per side.
	NICLatIB   units.Seconds
	NICLatRoCE units.Seconds

	// SwitchHop is the per-switch forwarding cost, including the wire.
	SwitchHopIB   units.Seconds
	SwitchHopRoCE units.Seconds

	// NVLinkHop is the GPU->NVSwitch->GPU per-leg cost.
	NVLinkHop units.Seconds
}

// DefaultLatencyParams returns the calibrated Table 5 decomposition.
func DefaultLatencyParams() LatencyParams {
	return LatencyParams{
		HostOverheadIB:     0.85 * units.Microsecond,
		HostOverheadRoCE:   0.80 * units.Microsecond,
		HostOverheadNVLink: 3.13 * units.Microsecond,
		NICLatIB:           0.75 * units.Microsecond,
		NICLatRoCE:         0.90 * units.Microsecond,
		SwitchHopIB:        0.45 * units.Microsecond,
		SwitchHopRoCE:      1.00 * units.Microsecond,
		NVLinkHop:          0.10 * units.Microsecond,
	}
}

// LinkLayer identifies the transport of a point-to-point latency probe.
type LinkLayer int

const (
	// IB is 400G NDR InfiniBand.
	IB LinkLayer = iota
	// RoCE is 400G RDMA over Converged Ethernet.
	RoCE
	// NVLink is the intra-node fabric.
	NVLink
)

// String implements fmt.Stringer.
func (l LinkLayer) String() string {
	switch l {
	case IB:
		return "InfiniBand"
	case RoCE:
		return "RoCE"
	}
	return "NVLink"
}

// EndToEnd returns the CPU-side end-to-end latency of a 64 B transfer.
// sameLeaf selects the one-switch path; the cross-leaf path traverses
// leaf, spine, leaf (three switches). NVLink ignores sameLeaf.
func (p LatencyParams) EndToEnd(layer LinkLayer, sameLeaf bool) units.Seconds {
	switches := 3.0
	if sameLeaf {
		switches = 1
	}
	switch layer {
	case IB:
		return p.HostOverheadIB + 2*p.NICLatIB + switches*p.SwitchHopIB
	case RoCE:
		return p.HostOverheadRoCE + 2*p.NICLatRoCE + switches*p.SwitchHopRoCE
	default:
		return p.HostOverheadNVLink + 2*p.NVLinkHop
	}
}

// CPUProxyOverhead is the extra control-plane latency of the
// traditional CPU-proxy send path that IBGDA eliminates (§5.2.3): the
// GPU signals a CPU thread, which fills the work request and rings the
// NIC doorbell.
const CPUProxyOverhead = 1.5 * units.Microsecond

// EndToEndWithProxy returns the latency including the CPU proxy hop;
// comparing against EndToEnd shows the IBGDA saving.
func (p LatencyParams) EndToEndWithProxy(layer LinkLayer, sameLeaf bool) units.Seconds {
	return p.EndToEnd(layer, sameLeaf) + CPUProxyOverhead
}
