package cluster

import "sync"

var (
	cacheMu sync.Mutex
	cache   map[Config]*Cluster
)

// Cached returns a process-wide shared cluster for cfg, building it on
// first use. A built Cluster is immutable (every method only reads), so
// one graph can back any number of concurrent experiments — repeated
// Build(H800Config(...)) calls across the experiment suite were pure
// waste. Callers must not mutate the returned value; use Build for a
// private instance.
func Cached(cfg Config) (*Cluster, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if c, ok := cache[cfg]; ok {
		return c, nil
	}
	c, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = make(map[Config]*Cluster)
	}
	cache[cfg] = c
	return c, nil
}
