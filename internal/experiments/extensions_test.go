package experiments

import (
	"strings"
	"testing"
)

func TestBandwidthContention(t *testing.T) {
	rows, err := BandwidthContention()
	if err != nil {
		t.Fatal(err)
	}
	// TPOT under fair sharing must be monotone in KV pressure; the
	// prioritized column must stay flat at the baseline.
	for i := 1; i < len(rows); i++ {
		if rows[i].TPOTFairSharing < rows[i-1].TPOTFairSharing {
			t.Errorf("fair-sharing TPOT should not improve with more KV traffic: %+v", rows)
		}
		if rows[i].TPOTPrioritized != rows[0].TPOTPrioritized {
			t.Errorf("prioritized TPOT must be flat: %+v", rows)
		}
	}
	last := rows[len(rows)-1]
	if last.TPOTFairSharing < 1.5*last.TPOTPrioritized {
		t.Errorf("heavy contention should inflate TPOT substantially: %+v", last)
	}
}

func TestOverlapAblationPeaksAtTwo(t *testing.T) {
	rows, err := OverlapAblation()
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, r := range rows {
		if r.Speedup < 1 {
			t.Errorf("overlap must never lose: %+v", r)
		}
		if r.Speedup > peak {
			peak = r.Speedup
		}
		if r.ComputeCommRatio == 2 && r.Speedup < 1.99 {
			t.Errorf("balance point should reach 2x: %+v", r)
		}
	}
	if peak > 2+1e-9 {
		t.Errorf("speedup cannot exceed 2x: %v", peak)
	}
}

func TestSDCDetectionCatchesEverything(t *testing.T) {
	r, err := SDCDetection(31)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CleanVerified {
		t.Error("clean GEMM must verify")
	}
	if r.FaultsCaught != r.FaultsInjected {
		t.Errorf("detected %d of %d injected faults", r.FaultsCaught, r.FaultsInjected)
	}
}

func TestExtensionRenderers(t *testing.T) {
	if s, err := RenderContention(); err != nil || !strings.Contains(s, "PCIe") {
		t.Errorf("contention render: %v", err)
	}
	if s, err := RenderOverlap(); err != nil || !strings.Contains(s, "2.00x") {
		t.Errorf("overlap render: %v\n%s", err, s)
	}
	if s, err := RenderSDC(31); err != nil || !strings.Contains(s, "true") {
		t.Errorf("SDC render: %v", err)
	}
}
