package experiments

import (
	"fmt"

	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// kvTierArm is one point of the tiered-KV capacity frontier: a
// hierarchy (or the HBM-only baseline) at one offload chunk size.
type kvTierArm struct {
	Name        string
	ChunkTokens int
	Tiers       []servesim.KVTierConfig
	PrefixCache bool
}

// kvTierHierarchy is the below-HBM hierarchy every tiered arm shares:
// host DRAM over PCIe-class bandwidth, then a pooled flash tier with
// 10x the capacity at a tenth of the bandwidth and a flash-scale
// per-chunk access latency (the Ma & Patterson "high-bandwidth flash"
// shape).
func kvTierHierarchy() []servesim.KVTierConfig {
	return []servesim.KVTierConfig{
		{Name: "dram", CapacityBytes: 8 * units.GB, ReadBW: 24 * units.GB, WriteBW: 16 * units.GB, ChunkLatency: 50 * units.Microsecond},
		{Name: "flash", CapacityBytes: 64 * units.GB, ReadBW: 6 * units.GB, WriteBW: 3 * units.GB, ChunkLatency: 400 * units.Microsecond},
	}
}

func kvTierArms() []kvTierArm {
	tiers := kvTierHierarchy()
	return []kvTierArm{
		{Name: "hbm-only (recompute)"},
		{Name: "dram+flash", ChunkTokens: 64, Tiers: tiers, PrefixCache: true},
		{Name: "dram+flash", ChunkTokens: 256, Tiers: tiers, PrefixCache: true},
		{Name: "dram+flash", ChunkTokens: 1024, Tiers: tiers, PrefixCache: true},
	}
}

// kvTierWorkload is the multi-turn session traffic the frontier is
// measured under: Poisson session starts, 3 turns per session with a
// 2 s mean think time, and prompts that grow by the full prior context
// each turn — the returning-user traffic a prefix cache exists for.
func kvTierWorkload(quick bool) servesim.Workload {
	w := servesim.Workload{
		Arrival:    servesim.ArrivalPoisson,
		RatePerSec: 4,
		Requests:   300,
		// Narrow uniform lengths keep the single worst-case session close
		// to the mean, so the HBM pool can be sized tight enough that KV
		// pressure (not prefill latency) binds first — the regime the
		// hierarchy exists for.
		Prompt:    servesim.LengthDist{Kind: servesim.DistUniform, Mean: 256, Min: 192, Max: 320},
		Output:    servesim.LengthDist{Kind: servesim.DistUniform, Mean: 256, Min: 192, Max: 320},
		Turns:     3,
		ThinkTime: 2,
	}
	if quick {
		w.Requests = 120
	}
	return w
}

// KVTierStudyPoint is one arm's capacity-search outcome.
type KVTierStudyPoint struct {
	Arm         string
	ChunkTokens int
	Result      *servesim.CapacityResult
}

// KVTierStudy bisects each KV-hierarchy arm to its maximum sustainable
// session rate at 90% SLO attainment under multi-turn traffic on an
// HBM-starved fleet. The HBM-only baseline relieves KV pressure by
// recompute preemption; the tiered arms offload cold contexts to
// DRAM/flash and reload them, and cache each session's grown prefix so
// later turns skip the cached prefill — the capacity/TTFT frontier vs
// chunk size the ROADMAP's LMCache-style sweep asks for. Every arm
// runs the same seed, so the offered sessions are identical.
func KVTierStudy(seed int64, quick bool) ([]KVTierStudyPoint, error) {
	arms := kvTierArms()
	w := kvTierWorkload(quick)
	planner := servesim.DefaultCapacityPlanner()
	if quick {
		planner.Tolerance = 0.08
	}
	return parallel.Map(len(arms), func(i int) (KVTierStudyPoint, error) {
		a := arms[i]
		cfg := servesim.V3ServeConfig()
		cfg.Seed = seed
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 25
		// Interactive first-token SLO: the study measures how the
		// hierarchy relieves KV pressure, and both relief paths
		// (recompute prefill vs prefix-hit reload) surface in TTFT.
		// A TPOT-bound SLO would hide them behind decode step time.
		cfg.SLO = servesim.SLO{TTFT: 0.4, TPOT: 50 * units.Millisecond}
		cfg.KV.ChunkTokens = a.ChunkTokens
		cfg.KV.Tiers = a.Tiers
		cfg.KV.PrefixCache = a.PrefixCache
		res, err := planner.Find(cfg, w)
		if err != nil {
			return KVTierStudyPoint{}, fmt.Errorf("%s chunk=%d: %w", a.Name, a.ChunkTokens, err)
		}
		return KVTierStudyPoint{Arm: a.Name, ChunkTokens: a.ChunkTokens, Result: res}, nil
	})
}

// KVTierStudyResult returns the tiered-KV frontier as a structured
// table.
func KVTierStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := KVTierStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("Serving: tiered KV offload + prefix cache capacity frontier (0.08 GB HBM/instance, 3-turn sessions, 90% SLO target)",
		results.C("Hierarchy"), results.CU("Chunk", "tok"), results.CU("Knee", "req/s"),
		results.CU("SLO@knee", "%"), results.CU("TTFT p99", "ms"),
		results.CU("Hit rate", "%"), results.CU("Reload stall", "s"),
		results.C("Offloads"), results.C("Preempt"), results.CU("HBM out", "GB"))
	for _, p := range pts {
		r := p.Result.Report
		chunk := results.NA()
		if p.ChunkTokens > 0 {
			chunk = results.Int(p.ChunkTokens)
		}
		hitRate := results.NA()
		if lookups := r.PrefixHits + r.PrefixMisses; lookups > 0 {
			hitRate = results.Float("%.1f%%", 100*float64(r.PrefixHits)/float64(lookups))
		}
		offloaded := results.NA()
		if len(r.KVTierMoves) > 0 {
			offloaded = results.Float("%.2f", r.KVTierMoves[0].BytesOut/units.GB)
		}
		t.Row(results.Str(p.Arm), chunk,
			results.Float("%.2f", p.Result.MaxRate),
			results.Float("%.1f%%", p.Result.Attainment*100),
			results.Float("%.0f", r.TTFT.P99*1e3),
			hitRate,
			results.Float("%.2f", r.ReloadStall),
			results.Int(r.KVOffloads), results.Int(r.Preemptions),
			offloaded)
	}
	return t, nil
}

// RenderKVTierStudy renders the tiered-KV frontier.
func RenderKVTierStudy(seed int64, quick bool) (string, error) {
	t, err := KVTierStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
