package experiments

import (
	"dsv3/internal/obs"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// traceStudyConfig is the observability reference deployment: the
// tiered-KV fleet from the serve-kvtier study (HBM starved enough to
// offload, DRAM+flash below, prefix cache on) plus the serve-failure
// incident (decode instance 1 crashes at t=6 s, repaired at t=14 s)
// and the default retry policy. One traced run therefore exercises
// every span kind the tracer knows: queue, prefill, transfer, reload,
// decode, backoff, offload/preemption marks, crash/recover incidents
// and prefix hits.
func traceStudyConfig(seed int64) servesim.Config {
	cfg := servesim.V3ServeConfig()
	cfg.Seed = seed
	cfg.KV.HBM.CapacityBytes = 2 * units.GB / 25
	cfg.SLO = servesim.SLO{TTFT: 0.4, TPOT: 50 * units.Millisecond}
	cfg.KV.ChunkTokens = 256
	cfg.KV.Tiers = kvTierHierarchy()
	cfg.KV.PrefixCache = true
	cfg.Resilience.Faults = failurePlan()
	cfg.Resilience.Retry = servesim.DefaultRetryPolicy()
	return cfg
}

// TraceStudyInterval is the metrics sampling cadence of the serve-trace
// experiment: coarse enough that the sampled table stays readable over
// the ~30-75 s makespan.
const TraceStudyInterval units.Seconds = 2

// TraceStudy runs the reference deployment once with a trace recorder
// and a metrics registry attached and returns both plus the run's
// report. Unlike the sweep studies this is a single traced simulation:
// the per-request lifecycle is the output, not a summary statistic.
func TraceStudy(seed int64, quick bool) (*obs.TraceRecorder, *obs.Registry, *servesim.Report, error) {
	cfg := traceStudyConfig(seed)
	w := kvTierWorkload(quick)
	eng := servesim.NewEngine()
	rec := obs.NewTraceRecorder()
	reg := obs.NewRegistry(TraceStudyInterval)
	eng.AttachTracer(rec)
	eng.AttachMetrics(reg)
	rep, err := eng.Run(cfg, w)
	if err != nil {
		return nil, nil, nil, err
	}
	return rec, reg, rep, nil
}

// eventCountResult tabulates a trace's (kind, name) event tallies.
func eventCountResult(rec *obs.TraceRecorder) *results.Table {
	t := results.NewTable("Trace event counts",
		results.C("Kind"), results.C("Event"), results.C("Count"))
	for _, c := range rec.EventCounts() {
		t.Row(results.Str(c.Kind), results.Str(c.Name), results.Int(c.N))
	}
	return t
}

// TraceStudyResult returns the traced run as structured tables: the
// where-did-the-time-go phase totals, the per-request phase breakdown,
// the trace event tallies, and the sampled time-series metrics.
func TraceStudyResult(seed int64, quick bool) ([]*results.Table, error) {
	rec, reg, _, err := TraceStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	return []*results.Table{
		rec.PhaseTotalsTable(),
		rec.PhaseTable(),
		eventCountResult(rec),
		reg.Table(),
	}, nil
}

// RenderTraceStudy renders the traced-run tables as text.
func RenderTraceStudy(seed int64, quick bool) (string, error) {
	tables, err := TraceStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return results.New("serve-trace", "deterministic lifecycle trace of the tiered+faulted reference run", tables...).Text(), nil
}
