package experiments

// The determinism contract of the parallel engine (DESIGN.md): every
// sweep-shaped runner must render byte-identical output whether it runs
// serially or fanned out over the worker pool. These tests execute each
// parallel runner twice — workers=1 and workers=8 — and compare the
// rendered artifacts byte for byte.

import (
	"testing"

	"dsv3/internal/deepep"
	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

func renderWithWorkers(t *testing.T, workers int, f func() (string, error)) string {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	out, err := f()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return out
}

func assertParity(t *testing.T, f func() (string, error)) {
	t.Helper()
	serial := renderWithWorkers(t, 1, f)
	par := renderWithWorkers(t, 8, f)
	if serial != par {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	if len(serial) == 0 {
		t.Error("runner produced empty output")
	}
}

func TestParallelSerialParity(t *testing.T) {
	cases := []struct {
		name string
		f    func() (string, error)
	}{
		{"figure5", func() (string, error) {
			pts, err := Figure5([]int{16, 32}, []units.Bytes{128 * units.MiB, 1 * units.GiB})
			if err != nil {
				return "", err
			}
			return RenderFigure5(pts), nil
		}},
		{"figure6", func() (string, error) {
			pts, err := Figure6([]units.Bytes{64, 16 * units.MiB, 1 * units.GiB})
			if err != nil {
				return "", err
			}
			return RenderFigure6(pts), nil
		}},
		{"figure7", func() (string, error) {
			pts, err := Figure7()
			if err != nil {
				return "", err
			}
			return RenderFigure7(pts), nil
		}},
		{"figure8", func() (string, error) {
			pts, err := Figure8()
			if err != nil {
				return "", err
			}
			return RenderFigure8(pts), nil
		}},
		{"planefail", func() (string, error) {
			rows, err := PlaneFailure([]int{0, 2})
			if err != nil {
				return "", err
			}
			return RenderPlaneFailure(rows), nil
		}},
		{"table4", RenderTable4},
		{"fp8", RenderFP8Accuracy},
		{"accum", func() (string, error) { return RenderAccumulationAblation(13) }},
		{"logfmt", func() (string, error) { return RenderLogFMT(17) }},
		{"nodelimit", func() (string, error) { return RenderNodeLimited(19) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { assertParity(t, c.f) })
	}
}

// The worker count must never leak into the structured results either —
// spot-check the numeric (pre-render) layer on the heaviest runner.
func TestFigure7NumericParity(t *testing.T) {
	run := func(workers int) []deepep.EPSweepPoint {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		pts, err := Figure7()
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	serial := run(1)
	par := run(8)
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("EP%d: serial %+v != parallel %+v", serial[i].Ranks, serial[i], par[i])
		}
	}
}
