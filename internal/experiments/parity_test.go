package experiments

// The determinism contract of the parallel engine (DESIGN.md): every
// sweep-shaped runner must render byte-identical output whether it runs
// serially or fanned out over the worker pool. These tests execute each
// parallel runner twice — workers=1 and workers=8 — and compare the
// rendered artifacts byte for byte.

import (
	"bytes"
	"testing"

	"dsv3/internal/deepep"
	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/units"
)

func renderWithWorkers(t *testing.T, workers int, f func() (string, error)) string {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	out, err := f()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return out
}

func assertParity(t *testing.T, f func() (string, error)) {
	t.Helper()
	serial := renderWithWorkers(t, 1, f)
	par := renderWithWorkers(t, 8, f)
	if serial != par {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	if len(serial) == 0 {
		t.Error("runner produced empty output")
	}
}

func TestParallelSerialParity(t *testing.T) {
	cases := []struct {
		name string
		f    func() (string, error)
	}{
		{"figure5", func() (string, error) {
			pts, err := Figure5([]int{16, 32}, []units.Bytes{128 * units.MiB, 1 * units.GiB})
			if err != nil {
				return "", err
			}
			return RenderFigure5(pts), nil
		}},
		{"figure6", func() (string, error) {
			pts, err := Figure6([]units.Bytes{64, 16 * units.MiB, 1 * units.GiB})
			if err != nil {
				return "", err
			}
			return RenderFigure6(pts), nil
		}},
		{"figure7", func() (string, error) {
			pts, err := Figure7()
			if err != nil {
				return "", err
			}
			return RenderFigure7(pts), nil
		}},
		{"figure8", func() (string, error) {
			pts, err := Figure8()
			if err != nil {
				return "", err
			}
			return RenderFigure8(pts), nil
		}},
		{"planefail", func() (string, error) {
			rows, err := PlaneFailure([]int{0, 2})
			if err != nil {
				return "", err
			}
			return RenderPlaneFailure(rows), nil
		}},
		{"table4", RenderTable4},
		{"fp8", RenderFP8Accuracy},
		{"serve", func() (string, error) { return RenderServeLoadSweep(SeedServe, true) }},
		{"serve-disagg", func() (string, error) { return RenderDisaggRatioStudy(SeedServeDisagg, true) }},
		{"serve-spec", func() (string, error) { return RenderSpeculativeServing(SeedServeSpec, true) }},
		{"serve-router", func() (string, error) { return RenderRouterShootout(SeedServeRouter, true) }},
		{"serve-capacity", func() (string, error) { return RenderCapacityStudy(SeedServeCapacity, true) }},
		{"serve-failure", func() (string, error) { return RenderFailureStudy(SeedServeFailure, true) }},
		{"serve-shed", func() (string, error) { return RenderShedStudy(SeedServeShed, true) }},
		{"serve-kvtier", func() (string, error) { return RenderKVTierStudy(SeedServeKVTier, true) }},
		{"serve-trace", func() (string, error) { return RenderTraceStudy(SeedServeTrace, true) }},
		{"accum", func() (string, error) { return RenderAccumulationAblation(13) }},
		{"logfmt", func() (string, error) { return RenderLogFMT(17) }},
		{"nodelimit", func() (string, error) { return RenderNodeLimited(19) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { assertParity(t, c.f) })
	}
}

// The determinism contract extends to every emitter: the structured
// results (and hence the JSON and text encodings) of every catalogue
// runner must be byte-identical between serial and parallel execution.
func TestCatalogueEmitterParity(t *testing.T) {
	emitJSON := func(t *testing.T, workers int, r Runner) []byte {
		t.Helper()
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		res, err := r.Run(Options{Quick: true})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", r.Name, workers, err)
		}
		var buf bytes.Buffer
		if err := results.EmitJSON(&buf, res); err != nil {
			t.Fatalf("%s: emit: %v", r.Name, err)
		}
		return buf.Bytes()
	}
	for _, r := range Catalogue() {
		t.Run(r.Name, func(t *testing.T) {
			serial := emitJSON(t, 1, r)
			par := emitJSON(t, 8, r)
			if !bytes.Equal(serial, par) {
				t.Errorf("parallel JSON differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
			}
		})
	}
}

// Every catalogue result is well-formed: correctly labelled, at least
// one table, and rectangular rows. (Byte-level text fidelity against
// the pre-refactor rendering is pinned by the .txt golden corpus.)
func TestCatalogueStructure(t *testing.T) {
	for _, r := range Catalogue() {
		res, err := r.Run(Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if len(res.Tables) == 0 {
			t.Fatalf("%s: no tables", r.Name)
		}
		if res.Experiment != r.Name {
			t.Errorf("%s: result labelled %q", r.Name, res.Experiment)
		}
		if res.Meta.Seed != r.Seed {
			t.Errorf("%s: result seed %d != catalogue seed %d", r.Name, res.Meta.Seed, r.Seed)
		}
		for ti, tab := range res.Tables {
			for ri, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s table %d row %d: %d cells for %d columns",
						r.Name, ti, ri, len(row), len(tab.Columns))
				}
			}
		}
	}
}

// The worker count must never leak into the structured results either —
// spot-check the numeric (pre-render) layer on the heaviest runner.
func TestFigure7NumericParity(t *testing.T) {
	run := func(workers int) []deepep.EPSweepPoint {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		pts, err := Figure7()
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	serial := run(1)
	par := run(8)
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("EP%d: serial %+v != parallel %+v", serial[i].Ranks, serial[i], par[i])
		}
	}
}
