package experiments

import (
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// FleetConfig returns the 1000-instance reference deployment the
// fleet-scale experiment runs: 600 prefill + 400 decode instances
// behind power-of-two routing, the calendar-queue scheduler, and the
// sharded event loop. The ratio balances the pools for the short-output
// chat workload below (prefill caps at ~13.5K req/s, decode at ~13K),
// so both run hot at the study's rates. The shard count is a pure
// performance knob — output bytes are identical for any value — so it
// is pinned rather than derived from the host.
func FleetConfig(seed int64) servesim.Config {
	cfg := servesim.V3ServeConfig()
	cfg.Fleet.PrefillInstances = 600
	cfg.Fleet.DecodeInstances = 400
	cfg.Fleet.MaxBatch = 32
	cfg.Fleet.Router = servesim.RoutePowerOfTwo
	cfg.Fleet.Shards = 8
	cfg.Fleet.Scheduler = servesim.SchedCalendar
	cfg.KV.HBM.CapacityBytes = 4 * units.GB
	cfg.Seed = seed
	return cfg
}

// FleetWorkload is the million-request traffic the fleet absorbs:
// Poisson arrivals with short chat-shaped prompts and outputs, at a
// rate that keeps decode batches occupied without saturating prefill.
func FleetWorkload(rate float64) servesim.Workload {
	return servesim.Workload{
		Arrival:    servesim.ArrivalPoisson,
		RatePerSec: rate,
		Requests:   1_000_000,
		Prompt:     servesim.LogNormal(192, 0.4),
		Output:     servesim.LogNormal(64, 0.4),
	}
}

// FleetStudy runs the 1000-instance deployment under one million
// Poisson requests per arrival rate — the fleet-scale run the sharded
// event loop and calendar queue exist for. Quick mode runs the single
// reference rate; the full study adds a heavier point near the
// prefill-capacity knee.
func FleetStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	rates := []float64{11000, 12500}
	if quick {
		rates = rates[:1]
	}
	cfg := FleetConfig(seed)
	pts := make([]servesim.SweepPoint, 0, len(rates))
	for _, rate := range rates {
		rep, err := servesim.Run(cfg, FleetWorkload(rate))
		if err != nil {
			return nil, err
		}
		pts = append(pts, servesim.SweepPoint{RatePerSec: rate, Report: rep})
	}
	return pts, nil
}

// FleetStudyResult returns the fleet study as a structured table.
func FleetStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := FleetStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("Serving: 1000-instance fleet (600 prefill + 400 decode) under 1M Poisson requests, sharded event loop + calendar queue",
		results.CU("Rate", "req/s"), results.C("Completed"),
		results.CU("TTFT p50", "ms"), results.CU("TTFT p99", "ms"),
		results.CU("TPOT p50", "ms"), results.CU("TPOT p99", "ms"),
		results.CU("Goodput", "req/s"), results.CU("SLO", "%"),
		results.C("Batch"), results.CU("KV peak", "%"))
	for _, p := range pts {
		r := p.Report
		t.Row(results.Float("%.0f", p.RatePerSec), results.Int(r.Completed),
			results.Float("%.0f", r.TTFT.P50*1e3), results.Float("%.0f", r.TTFT.P99*1e3),
			results.Float("%.2f", r.TPOT.P50*1e3), results.Float("%.2f", r.TPOT.P99*1e3),
			results.Float("%.1f", r.GoodputRPS), results.Float("%.1f%%", r.SLOAttainment*100),
			results.Float("%.1f", r.MeanBatch), results.Float("%.1f%%", r.PeakKVOccupancy*100))
	}
	return t, nil
}

// RenderFleetStudy renders the fleet study.
func RenderFleetStudy(seed int64, quick bool) (string, error) {
	t, err := FleetStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
