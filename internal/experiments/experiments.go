// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus the in-text analyses (§2.2.2, §2.3.2,
// §2.3.3, §2.4, §3.2, §4.3) and the extension ablations listed in
// DESIGN.md. Each runner returns structured rows AND a rendered table
// with the paper's reference values beside the measured ones, so the
// CLI and the tests share one source of truth. Sweep-shaped runners
// fan out over internal/parallel with bit-identical serial/parallel
// output (see the parity tests).
package experiments

import (
	"dsv3/internal/model"
	"dsv3/internal/results"
	"dsv3/internal/topology"
)

// Table1Row is one model's KV cache footprint.
type Table1Row struct {
	Model      string
	KVCacheKB  float64
	Multiplier float64
	PaperKB    float64
	PaperMult  float64
}

// Table1 reproduces the KV-cache-per-token comparison.
func Table1() []Table1Row {
	configs := []struct {
		cfg       *model.Config
		paperKB   float64
		paperMult float64
	}{
		{model.DeepSeekV3(), 70.272, 1},
		{model.Qwen72B(), 327.680, 4.66},
		{model.LLaMA405B(), 516.096, 7.28},
	}
	base := configs[0].cfg.KVCacheBytesPerToken(2)
	rows := make([]Table1Row, 0, len(configs))
	for _, c := range configs {
		kv := c.cfg.KVCacheBytesPerToken(2)
		rows = append(rows, Table1Row{
			Model:      c.cfg.Name,
			KVCacheKB:  kv / 1e3,
			Multiplier: kv / base,
			PaperKB:    c.paperKB,
			PaperMult:  c.paperMult,
		})
	}
	return rows
}

// Table1Result returns Table 1 as a structured table.
func Table1Result() *results.Table {
	t := results.NewTable("Table 1: KV cache per token (BF16)",
		results.C("Model"), results.CU("KB/token", "KB"), results.C("Mult"),
		results.CU("paper KB", "KB"), results.C("paper mult"))
	for _, r := range Table1() {
		t.Row(results.Str(r.Model), results.Float("%.3f", r.KVCacheKB), results.Float("%.2fx", r.Multiplier),
			results.Float("%.3f", r.PaperKB), results.Float("%.2fx", r.PaperMult))
	}
	return t
}

// RenderTable1 renders Table 1 with paper references.
func RenderTable1() string { return Table1Result().Text() }

// Table2Row is one model's training cost.
type Table2Row struct {
	Model          string
	Size           string
	GFLOPsPerToken float64
	Paper          float64
}

// Table2 reproduces the training-cost comparison (seq 4096, causal).
func Table2() []Table2Row {
	rows := []struct {
		cfg   *model.Config
		size  string
		paper float64
	}{
		{model.DeepSeekV2(), "236B (21B act)", 155},
		{model.DeepSeekV3(), "671B (37B act)", 250},
		{model.Qwen72B(), "72B dense", 394},
		{model.LLaMA405B(), "405B dense", 2448},
	}
	out := make([]Table2Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Table2Row{
			Model:          r.cfg.Name,
			Size:           r.size,
			GFLOPsPerToken: r.cfg.TrainingFLOPsPerToken(4096, true) / 1e9,
			Paper:          r.paper,
		})
	}
	return out
}

// Table2Result returns Table 2 as a structured table.
func Table2Result() *results.Table {
	t := results.NewTable("Table 2: training cost per token (seq 4096, causal)",
		results.C("Model"), results.C("Size"), results.CU("GFLOPs/token", "GFLOPs"),
		results.CU("paper", "GFLOPs"))
	for _, r := range Table2() {
		t.Row(results.Str(r.Model), results.Str(r.Size),
			results.Float("%.0f", r.GFLOPsPerToken), results.Float("%.0f", r.Paper))
	}
	return t
}

// RenderTable2 renders Table 2 with paper references.
func RenderTable2() string { return Table2Result().Text() }

// Table3Row is one topology's cost breakdown.
type Table3Row struct {
	topology.Counts
	CostMDollar     float64
	CostPerEndpoint float64
	PaperCostM      float64
	PaperPerEp      float64
}

// Table3 reproduces the network cost comparison.
func Table3() ([]Table3Row, error) {
	counts, err := topology.Table3Topologies()
	if err != nil {
		return nil, err
	}
	paperCost := []float64{9, 72, 491, 146, 1522}
	paperPerEp := []float64{4.39e3, 4.39e3, 7.5e3, 4.4e3, 5.8e3}
	m := topology.DefaultCostModel()
	rows := make([]Table3Row, 0, len(counts))
	for i, c := range counts {
		rows = append(rows, Table3Row{
			Counts:          c,
			CostMDollar:     m.Cost(c) / 1e6,
			CostPerEndpoint: m.CostPerEndpoint(c),
			PaperCostM:      paperCost[i],
			PaperPerEp:      paperPerEp[i],
		})
	}
	return rows, nil
}

// Table3Result returns Table 3 as a structured table. The table is
// metric-major (one row per metric, one column per topology), matching
// the paper's layout.
func Table3Result() (*results.Table, error) {
	rows, err := Table3()
	if err != nil {
		return nil, err
	}
	t := results.NewTable("Table 3: network topology cost comparison",
		results.C("Metric"), results.C("FT2"), results.C("MPFT"),
		results.C("FT3"), results.C("SF"), results.C("DF"))
	add := func(name string, f func(Table3Row) results.Cell) {
		cells := []results.Cell{results.Str(name)}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		t.Row(cells...)
	}
	add("Endpoints", func(r Table3Row) results.Cell { return results.Int(r.Endpoints) })
	add("Switches", func(r Table3Row) results.Cell { return results.Int(r.Switches) })
	add("Links", func(r Table3Row) results.Cell { return results.Int(r.InterSwitchLinks) })
	add("Cost [M$]", func(r Table3Row) results.Cell { return results.Float("%.0f", r.CostMDollar) })
	add("paper [M$]", func(r Table3Row) results.Cell { return results.Float("%.0f", r.PaperCostM) })
	add("Cost/EP [k$]", func(r Table3Row) results.Cell { return results.Float("%.2f", r.CostPerEndpoint/1e3) })
	add("paper [k$]", func(r Table3Row) results.Cell { return results.Float("%.2f", r.PaperPerEp/1e3) })
	return t, nil
}

// RenderTable3 renders Table 3 with paper references.
func RenderTable3() (string, error) {
	t, err := Table3Result()
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// LocalDeploymentRow is one §2.2.2 scenario.
type LocalDeploymentRow struct {
	Deployment string
	Model      string
	TPS        float64
}

// LocalDeployment reproduces the §2.2.2 on-premises TPS comparison.
func LocalDeployment() []LocalDeploymentRow {
	var rows []LocalDeploymentRow
	soc := model.AISoC()
	srv := model.ConsumerGPUServer()
	for _, m := range []*model.Config{model.DeepSeekV2(), model.Dense70B()} {
		rows = append(rows, LocalDeploymentRow{soc.Name, m.Name, soc.DecodeTPS(m)})
	}
	rows = append(rows, LocalDeploymentRow{srv.Name, model.DeepSeekV3().Name, srv.DecodeTPS(model.DeepSeekV3())})
	return rows
}

// LocalDeploymentResult returns the §2.2.2 scenario table.
func LocalDeploymentResult() *results.Table {
	t := results.NewTable("§2.2.2: local deployment decode roofline (paper: ~20 TPS MoE, single-digit dense)",
		results.C("Deployment"), results.C("Model"), results.CU("TPS", "tokens/s"))
	for _, r := range LocalDeployment() {
		t.Row(results.Str(r.Deployment), results.Str(r.Model), results.Float("%.1f", r.TPS))
	}
	return t
}

// RenderLocalDeployment renders the §2.2.2 scenario table.
func RenderLocalDeployment() string { return LocalDeploymentResult().Text() }
