// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus the in-text analyses (§2.2.2, §2.3.2,
// §2.3.3, §2.4, §3.2, §4.3) and the extension ablations listed in
// DESIGN.md. Each runner returns structured rows AND a rendered table
// with the paper's reference values beside the measured ones, so the
// CLI and the tests share one source of truth. Sweep-shaped runners
// fan out over internal/parallel with bit-identical serial/parallel
// output (see the parity tests).
package experiments

import (
	"fmt"

	"dsv3/internal/model"
	"dsv3/internal/tablefmt"
	"dsv3/internal/topology"
)

// Table1Row is one model's KV cache footprint.
type Table1Row struct {
	Model      string
	KVCacheKB  float64
	Multiplier float64
	PaperKB    float64
	PaperMult  float64
}

// Table1 reproduces the KV-cache-per-token comparison.
func Table1() []Table1Row {
	configs := []struct {
		cfg       *model.Config
		paperKB   float64
		paperMult float64
	}{
		{model.DeepSeekV3(), 70.272, 1},
		{model.Qwen72B(), 327.680, 4.66},
		{model.LLaMA405B(), 516.096, 7.28},
	}
	base := configs[0].cfg.KVCacheBytesPerToken(2)
	rows := make([]Table1Row, 0, len(configs))
	for _, c := range configs {
		kv := c.cfg.KVCacheBytesPerToken(2)
		rows = append(rows, Table1Row{
			Model:      c.cfg.Name,
			KVCacheKB:  kv / 1e3,
			Multiplier: kv / base,
			PaperKB:    c.paperKB,
			PaperMult:  c.paperMult,
		})
	}
	return rows
}

// RenderTable1 renders Table 1 with paper references.
func RenderTable1() string {
	t := tablefmt.New("Table 1: KV cache per token (BF16)",
		"Model", "KB/token", "Mult", "paper KB", "paper mult")
	for _, r := range Table1() {
		t.AddRow(r.Model, fmt.Sprintf("%.3f", r.KVCacheKB), fmt.Sprintf("%.2fx", r.Multiplier),
			fmt.Sprintf("%.3f", r.PaperKB), fmt.Sprintf("%.2fx", r.PaperMult))
	}
	return t.String()
}

// Table2Row is one model's training cost.
type Table2Row struct {
	Model          string
	Size           string
	GFLOPsPerToken float64
	Paper          float64
}

// Table2 reproduces the training-cost comparison (seq 4096, causal).
func Table2() []Table2Row {
	rows := []struct {
		cfg   *model.Config
		size  string
		paper float64
	}{
		{model.DeepSeekV2(), "236B (21B act)", 155},
		{model.DeepSeekV3(), "671B (37B act)", 250},
		{model.Qwen72B(), "72B dense", 394},
		{model.LLaMA405B(), "405B dense", 2448},
	}
	out := make([]Table2Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Table2Row{
			Model:          r.cfg.Name,
			Size:           r.size,
			GFLOPsPerToken: r.cfg.TrainingFLOPsPerToken(4096, true) / 1e9,
			Paper:          r.paper,
		})
	}
	return out
}

// RenderTable2 renders Table 2 with paper references.
func RenderTable2() string {
	t := tablefmt.New("Table 2: training cost per token (seq 4096, causal)",
		"Model", "Size", "GFLOPs/token", "paper")
	for _, r := range Table2() {
		t.AddRow(r.Model, r.Size, fmt.Sprintf("%.0f", r.GFLOPsPerToken), fmt.Sprintf("%.0f", r.Paper))
	}
	return t.String()
}

// Table3Row is one topology's cost breakdown.
type Table3Row struct {
	topology.Counts
	CostMDollar     float64
	CostPerEndpoint float64
	PaperCostM      float64
	PaperPerEp      float64
}

// Table3 reproduces the network cost comparison.
func Table3() ([]Table3Row, error) {
	counts, err := topology.Table3Topologies()
	if err != nil {
		return nil, err
	}
	paperCost := []float64{9, 72, 491, 146, 1522}
	paperPerEp := []float64{4.39e3, 4.39e3, 7.5e3, 4.4e3, 5.8e3}
	m := topology.DefaultCostModel()
	rows := make([]Table3Row, 0, len(counts))
	for i, c := range counts {
		rows = append(rows, Table3Row{
			Counts:          c,
			CostMDollar:     m.Cost(c) / 1e6,
			CostPerEndpoint: m.CostPerEndpoint(c),
			PaperCostM:      paperCost[i],
			PaperPerEp:      paperPerEp[i],
		})
	}
	return rows, nil
}

// RenderTable3 renders Table 3 with paper references.
func RenderTable3() (string, error) {
	rows, err := Table3()
	if err != nil {
		return "", err
	}
	t := tablefmt.New("Table 3: network topology cost comparison",
		"Metric", "FT2", "MPFT", "FT3", "SF", "DF")
	add := func(name string, f func(Table3Row) string) {
		cells := []any{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		t.AddRow(cells...)
	}
	add("Endpoints", func(r Table3Row) string { return fmt.Sprint(r.Endpoints) })
	add("Switches", func(r Table3Row) string { return fmt.Sprint(r.Switches) })
	add("Links", func(r Table3Row) string { return fmt.Sprint(r.InterSwitchLinks) })
	add("Cost [M$]", func(r Table3Row) string { return fmt.Sprintf("%.0f", r.CostMDollar) })
	add("paper [M$]", func(r Table3Row) string { return fmt.Sprintf("%.0f", r.PaperCostM) })
	add("Cost/EP [k$]", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.CostPerEndpoint/1e3) })
	add("paper [k$]", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.PaperPerEp/1e3) })
	return t.String(), nil
}

// LocalDeploymentRow is one §2.2.2 scenario.
type LocalDeploymentRow struct {
	Deployment string
	Model      string
	TPS        float64
}

// LocalDeployment reproduces the §2.2.2 on-premises TPS comparison.
func LocalDeployment() []LocalDeploymentRow {
	var rows []LocalDeploymentRow
	soc := model.AISoC()
	srv := model.ConsumerGPUServer()
	for _, m := range []*model.Config{model.DeepSeekV2(), model.Dense70B()} {
		rows = append(rows, LocalDeploymentRow{soc.Name, m.Name, soc.DecodeTPS(m)})
	}
	rows = append(rows, LocalDeploymentRow{srv.Name, model.DeepSeekV3().Name, srv.DecodeTPS(model.DeepSeekV3())})
	return rows
}

// RenderLocalDeployment renders the §2.2.2 scenario table.
func RenderLocalDeployment() string {
	t := tablefmt.New("§2.2.2: local deployment decode roofline (paper: ~20 TPS MoE, single-digit dense)",
		"Deployment", "Model", "TPS")
	for _, r := range LocalDeployment() {
		t.AddRow(r.Deployment, r.Model, fmt.Sprintf("%.1f", r.TPS))
	}
	return t.String()
}
