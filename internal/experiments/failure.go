package experiments

import (
	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// failurePlan is the incident replayed by FailureStudy: decode
// instance 1 crashes mid-run and is repaired 8 seconds later. The
// window is short enough that even the quick workload (150 requests at
// 5 req/s, ~30 s of traffic) sees both the degraded epoch and the
// post-repair recovery.
func failurePlan() *servesim.FaultPlan {
	return &servesim.FaultPlan{
		Events: []servesim.FaultEvent{
			{At: 6, Kind: servesim.FaultCrash, Instance: 1},
			{At: 14, Kind: servesim.FaultRecover, Instance: 1},
		},
	}
}

// FailureStudy replays the same kill-an-instance incident across every
// router policy: identical traffic per arm (same seed), a decode crash
// at t=6s with repair at t=14s, and the default retry policy. The
// routers differ in how much work they concentrate on the doomed
// instance, so blast radius, retry amplification and recovery time all
// vary by policy — the incident-replay view of the paper's
// availability-under-component-failure concern.
func FailureStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := servesim.RouterPolicies()
	w := servingWorkload(quick)
	w.RatePerSec = 5
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		cfg := servesim.V3ServeConfig()
		cfg.Seed = seed
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 5
		cfg.Fleet.Router = arms[i]
		cfg.Resilience.Faults = failurePlan()
		cfg.Resilience.Retry = servesim.DefaultRetryPolicy()
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// FailureStudyResult returns the incident replay as a structured table.
func FailureStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := FailureStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := servesim.RouterPolicies()
	t := results.NewTable("Serving: kill-an-instance incident replay per router (2P+4D, 5 req/s, d1 down 6-14s, retries 3x backoff 0.25s)",
		results.C("Router"), results.C("Affected"), results.C("Failed"),
		results.C("Retry amp"), results.CU("KV lost", "tok"), results.CU("Recovery", "s"),
		results.CU("SLO healthy", "%"), results.CU("SLO faulted", "%"),
		results.CU("Goodput", "req/s"), results.CU("TTFT p99", "ms"))
	for i, p := range pts {
		r := p.Report
		rec := results.NA()
		if len(r.Incidents) > 0 {
			rec = results.Float("%.2f", r.Incidents[0].Recovery)
		}
		t.Row(results.Str(arms[i].String()),
			results.Int(r.AffectedRequests), results.Int(r.Failed),
			results.Float("%.3f", r.RetryAmplification), results.Int(r.KVTokensLost), rec,
			results.Float("%.1f%%", r.SLOHealthy*100), results.Float("%.1f%%", r.SLOFaulted*100),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.0f", r.TTFT.P99*1e3))
	}
	return t, nil
}

// shedArm is one admission policy of the shedding shoot-out.
type shedArm struct {
	Name      string
	Admission servesim.AdmissionPolicy
}

func shedArms() []shedArm {
	return []shedArm{
		{"admit-all", servesim.AdmissionPolicy{}},
		{"queue<=24", servesim.AdmissionPolicy{MaxQueueDepth: 24}},
		{"kv<=85%", servesim.AdmissionPolicy{MaxKVOccupancy: 0.85}},
		{"queue<=24 + kv<=85%", servesim.AdmissionPolicy{MaxQueueDepth: 24, MaxKVOccupancy: 0.85}},
	}
}

// ShedStudy pits admission policies against a diurnal overload ramp:
// mean 8 req/s swinging +-90% over the cycle, so the peak (~15 req/s)
// is far past the KV-constrained fleet's knee. Admit-all lets queues
// and TTFT collapse for everyone; the shedding policies trade a known
// fraction of rejected requests for bounded latency on the admitted
// ones — graceful degradation instead of congestion collapse.
func ShedStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := shedArms()
	w := servingWorkload(quick)
	w.Arrival = servesim.ArrivalDiurnal
	w.RatePerSec = 8
	w.DiurnalPeriod = 24
	w.DiurnalAmplitude = 0.9
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		cfg := servesim.V3ServeConfig()
		cfg.Seed = seed
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 5
		cfg.Resilience.Admission = arms[i].Admission
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// ShedStudyResult returns the admission shoot-out as a structured
// table.
func ShedStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := ShedStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := shedArms()
	t := results.NewTable("Serving: admission policy shoot-out under diurnal overload (2P+4D, mean 8 req/s +-90%, 0.4 GB KV/instance)",
		results.C("Admission"), results.C("Shed"), results.CU("Shed", "%"),
		results.CU("TTFT p50", "ms"), results.CU("TTFT p99", "ms"),
		results.CU("Goodput", "req/s"), results.CU("SLO", "%"),
		results.C("Preempt"), results.CU("KV peak", "%"))
	for i, p := range pts {
		r := p.Report
		shedPct := 0.0
		if r.Requests > 0 {
			shedPct = float64(r.Shed) / float64(r.Requests) * 100
		}
		t.Row(results.Str(arms[i].Name),
			results.Int(r.Shed), results.Float("%.1f%%", shedPct),
			results.Float("%.0f", r.TTFT.P50*1e3), results.Float("%.0f", r.TTFT.P99*1e3),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.1f%%", r.SLOAttainment*100),
			results.Int(r.Preemptions), results.Float("%.1f%%", r.PeakKVOccupancy*100))
	}
	return t, nil
}

// RenderFailureStudy renders the incident replay.
func RenderFailureStudy(seed int64, quick bool) (string, error) {
	t, err := FailureStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// RenderShedStudy renders the admission shoot-out.
func RenderShedStudy(seed int64, quick bool) (string, error) {
	t, err := ShedStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
