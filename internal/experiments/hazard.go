package experiments

import (
	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// hazardPlanes is the composed incident replayed by HazardStudy: decode
// instance 1 loses 6 of its 8 network planes at t=4s and gets them back
// at t=16s. Unlike a crash, the instance keeps serving — its EP
// all-to-all legs just run at 4x the latency, the gray-failure mode
// the paper's multi-plane fabric turns hard failures into.
func hazardPlanes() []servesim.PlaneHazardEvent {
	return []servesim.PlaneHazardEvent{
		{At: 4, Instance: 1, FailedPlanes: 6, TotalPlanes: 8},
		{At: 16, Heal: true, Instance: 1},
	}
}

// hazardArm is one (router, detection) cell of the hazard grid.
type hazardArm struct {
	Router servesim.RouterPolicy
	Detect bool
}

func hazardArms() []hazardArm {
	var arms []hazardArm
	for _, det := range []bool{false, true} {
		for _, r := range servesim.RouterPolicies() {
			arms = append(arms, hazardArm{Router: r, Detect: det})
		}
	}
	return arms
}

// HazardStudy replays the same composed incident — a plane-degraded
// decode instance plus a 0.1% silent-corruption rate on decode steps —
// across every router policy, with and without the detection stack
// (Freivalds verification + EWMA gray-failure draining). Without
// detection, corrupted steps taint every request in the batch and the
// degraded straggler keeps taking traffic; with it, verification
// converts corruption into retryable quarantines and the EWMA detector
// drains the straggler, trading a little verify latency and some
// retries for clean responses.
func HazardStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := hazardArms()
	w := servingWorkload(quick)
	w.RatePerSec = 5
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		cfg := servesim.V3ServeConfig()
		cfg.Seed = seed
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 5
		cfg.Fleet.Router = arms[i].Router
		cfg.Resilience.Retry = servesim.DefaultRetryPolicy()
		plan := &servesim.HazardPlan{
			Planes:  hazardPlanes(),
			SDCRate: 0.001,
		}
		if arms[i].Detect {
			plan.VerifyTrials = 8
			plan.Detect = servesim.DetectionConfig{Threshold: 1.25}
			plan.QuarantineRepair = 4
		}
		cfg.Resilience.Hazards = plan
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// HazardStudyResult returns the composed-hazard grid as a structured
// table.
func HazardStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := HazardStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := hazardArms()
	t := results.NewTable("Serving: plane degradation + SDC per router, detection off vs on (2P+4D, 5 req/s, d1 at 2/8 planes 4-16s, 0.1% SDC)",
		results.C("Router"), results.C("Detect"),
		results.C("SDC steps"), results.C("Caught"), results.C("Corrupt resp"),
		results.C("Gray drains"), results.C("Failed"),
		results.CU("Recovery", "s"), results.CU("SLO faulted", "%"),
		results.CU("Goodput", "req/s"), results.CU("E2E p99", "s"))
	for i, p := range pts {
		r := p.Report
		det := "off"
		if arms[i].Detect {
			det = "on"
		}
		rec := results.NA()
		var recSum float64
		var recN int
		for _, inc := range r.Incidents {
			if inc.Kind == "sdc" && inc.Recovery > 0 {
				recSum += inc.Recovery
				recN++
			}
		}
		if recN > 0 {
			rec = results.Float("%.2f", recSum/float64(recN))
		}
		t.Row(results.Str(arms[i].Router.String()), results.Str(det),
			results.Int(r.CorruptSteps), results.Int(r.SDCDetected), results.Int(r.CorruptResponses),
			results.Int(r.GrayDrained), results.Int(r.Failed),
			rec, results.Float("%.1f%%", r.SLOFaulted*100),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.2f", r.E2E.P99))
	}
	return t, nil
}

// hedgeArm is one hedging policy of the tail-tolerance shoot-out.
type hedgeArm struct {
	Name  string
	Hedge servesim.HedgePolicy
}

func hedgeArms() []hedgeArm {
	return []hedgeArm{
		{"no hedge", servesim.HedgePolicy{}},
		{"fixed 4s", servesim.HedgePolicy{Delay: 4}},
		{"fixed 7s", servesim.HedgePolicy{Delay: 7}},
		{"p95 (floor 4s)", servesim.HedgePolicy{Delay: 4, TrackP95: true}},
	}
}

// HedgeStudy pits hedging policies against a permanent gray straggler:
// decode instance 1 loses 7 of 8 planes at t=2s and never heals, so
// every EP all-to-all leg there runs at 8x latency for the whole run. Hedging fires a speculative duplicate to a different
// instance after the delay; first finisher wins, the loser is
// cancelled and its generated tokens charged as waste. Tighter delays
// buy more tail latency for more duplicated work — the classic
// tail-at-scale trade, measured here without any detection stack.
func HedgeStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := hedgeArms()
	w := servingWorkload(quick)
	w.RatePerSec = 4
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		cfg := servesim.V3ServeConfig()
		cfg.Seed = seed
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 5
		cfg.Resilience.Retry = servesim.DefaultRetryPolicy()
		cfg.Resilience.Hazards = &servesim.HazardPlan{
			Planes: []servesim.PlaneHazardEvent{
				{At: 2, Instance: 1, FailedPlanes: 7, TotalPlanes: 8},
			},
		}
		cfg.Resilience.Hedge = arms[i].Hedge
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// HedgeStudyResult returns the hedging shoot-out as a structured table.
func HedgeStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := HedgeStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := hedgeArms()
	t := results.NewTable("Serving: hedged requests vs a permanent gray straggler (2P+4D, 4 req/s, d1 at 1/8 planes from t=2s)",
		results.C("Policy"), results.CU("E2E p50", "s"), results.CU("E2E p95", "s"),
		results.CU("E2E p99", "s"), results.CU("Goodput", "req/s"),
		results.C("Hedges"), results.C("Wins"), results.CU("Wasted", "tok"),
		results.CU("SLO", "%"))
	for i, p := range pts {
		r := p.Report
		t.Row(results.Str(arms[i].Name),
			results.Float("%.2f", r.E2E.P50), results.Float("%.2f", r.E2E.P95),
			results.Float("%.2f", r.E2E.P99), results.Float("%.2f", r.GoodputRPS),
			results.Int(r.Hedges), results.Int(r.HedgeWins), results.Int(r.HedgeWastedTokens),
			results.Float("%.1f%%", r.SLOAttainment*100))
	}
	return t, nil
}

// RenderHazardStudy renders the composed-hazard grid.
func RenderHazardStudy(seed int64, quick bool) (string, error) {
	t, err := HazardStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// RenderHedgeStudy renders the hedging shoot-out.
func RenderHedgeStudy(seed int64, quick bool) (string, error) {
	t, err := HedgeStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
