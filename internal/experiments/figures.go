package experiments

import (
	"fmt"

	"dsv3/internal/cluster"
	"dsv3/internal/collective"
	"dsv3/internal/deepep"
	"dsv3/internal/netsim"
	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// Figure5Point is one (gpus, size) cell of the NCCL all-to-all sweep.
type Figure5Point struct {
	GPUs      int
	Size      units.Bytes
	MPFTAlgBW units.BytesPerSecond
	MRFTAlgBW units.BytesPerSecond
}

// Figure5 sweeps all-to-all algorithm bandwidth over GPU counts and
// message sizes on both fabrics. Every (gpus, size) cell is independent
// and runs on the parallel worker pool against the shared memoized
// clusters; each worker carries one collective.Scratch so the flow
// table and water-filling buffers are built once per worker, not per
// cell. Results come back in grid order, identical to the serial sweep.
func Figure5(gpuCounts []int, sizes []units.Bytes) ([]Figure5Point, error) {
	opts := collective.DefaultOptions()
	return parallel.MapScratch(len(gpuCounts)*len(sizes), collective.NewScratch,
		func(idx int, sc *collective.Scratch) (Figure5Point, error) {
			gpus := gpuCounts[idx/len(sizes)]
			size := sizes[idx%len(sizes)]
			mp, err := cluster.Cached(cluster.H800Config(gpus/cluster.GPUsPerNode, cluster.MPFT))
			if err != nil {
				return Figure5Point{}, err
			}
			mr, err := cluster.Cached(cluster.H800Config(gpus/cluster.GPUsPerNode, cluster.MRFT))
			if err != nil {
				return Figure5Point{}, err
			}
			a, err := sc.AllToAll(mp, gpus, size, opts)
			if err != nil {
				return Figure5Point{}, err
			}
			b, err := sc.AllToAll(mr, gpus, size, opts)
			if err != nil {
				return Figure5Point{}, err
			}
			return Figure5Point{GPUs: gpus, Size: size, MPFTAlgBW: a.AlgBW, MRFTAlgBW: b.AlgBW}, nil
		})
}

// DefaultFigure5Sizes returns a representative subset of the paper's
// 128 MiB - 16 GiB x-axis.
func DefaultFigure5Sizes() []units.Bytes {
	return []units.Bytes{128 * units.MiB, 512 * units.MiB, 2 * units.GiB, 8 * units.GiB, 16 * units.GiB}
}

// Figure5Result returns the sweep as a structured table.
func Figure5Result(points []Figure5Point) *results.Table {
	t := results.NewTable("Figure 5: NCCL all-to-all algorithm bandwidth, MPFT vs MRFT (paper: near-identical, up to ~60 GB/s)",
		results.C("GPUs"), results.CU("Size", "B"), results.CU("MPFT GB/s", "GB/s"),
		results.CU("MRFT GB/s", "GB/s"), results.CU("diff%", "%"))
	for _, p := range points {
		diff := 0.0
		if p.MRFTAlgBW > 0 {
			diff = (p.MPFTAlgBW - p.MRFTAlgBW) / p.MRFTAlgBW * 100
		}
		t.Row(results.Int(p.GPUs), results.Val(units.FormatBytes(p.Size), float64(p.Size)),
			results.Float("%.1f", p.MPFTAlgBW/units.GB),
			results.Float("%.1f", p.MRFTAlgBW/units.GB),
			results.Float("%+.2f", diff))
	}
	return t
}

// RenderFigure5 renders the sweep.
func RenderFigure5(points []Figure5Point) string { return Figure5Result(points).Text() }

// Figure6Point is one message size of the 16-GPU latency comparison.
type Figure6Point struct {
	Size        units.Bytes
	MPFTLatency units.Seconds
	MRFTLatency units.Seconds
	DiffPercent float64
}

// Figure6 compares all-to-all latency across message sizes on 16 GPUs,
// one worker task per message size.
func Figure6(sizes []units.Bytes) ([]Figure6Point, error) {
	mp, err := cluster.Cached(cluster.H800Config(2, cluster.MPFT))
	if err != nil {
		return nil, err
	}
	mr, err := cluster.Cached(cluster.H800Config(2, cluster.MRFT))
	if err != nil {
		return nil, err
	}
	opts := collective.DefaultOptions()
	return parallel.MapScratch(len(sizes), collective.NewScratch, func(si int, sc *collective.Scratch) (Figure6Point, error) {
		size := sizes[si]
		a, err := sc.AllToAll(mp, 16, size, opts)
		if err != nil {
			return Figure6Point{}, err
		}
		b, err := sc.AllToAll(mr, 16, size, opts)
		if err != nil {
			return Figure6Point{}, err
		}
		return Figure6Point{
			Size:        size,
			MPFTLatency: a.Time,
			MRFTLatency: b.Time,
			DiffPercent: (a.Time - b.Time) / b.Time * 100,
		}, nil
	})
}

// DefaultFigure6Sizes spans the paper's 64 B - 16 GiB log axis.
func DefaultFigure6Sizes() []units.Bytes {
	return []units.Bytes{64, 4 * units.KiB, 256 * units.KiB, 16 * units.MiB, 1 * units.GiB, 16 * units.GiB}
}

// Figure6Result returns the latency comparison as a structured table.
func Figure6Result(points []Figure6Point) *results.Table {
	t := results.NewTable("Figure 6: all-to-all latency on 16 GPUs, MPFT vs MRFT (paper: within ±1.5%)",
		results.CU("Size", "B"), results.CU("MPFT", "s"), results.CU("MRFT", "s"), results.CU("diff%", "%"))
	for _, p := range points {
		t.Row(results.Val(units.FormatBytes(p.Size), float64(p.Size)),
			results.Val(units.FormatSeconds(p.MPFTLatency), float64(p.MPFTLatency)),
			results.Val(units.FormatSeconds(p.MRFTLatency), float64(p.MRFTLatency)),
			results.Float("%+.2f", p.DiffPercent))
	}
	return t
}

// RenderFigure6 renders the latency comparison.
func RenderFigure6(points []Figure6Point) string { return Figure6Result(points).Text() }

// Figure7Paper holds the paper's measured DeepEP values (GB/s).
var Figure7Paper = map[int][2]float64{
	16:  {42.47, 43.05},
	32:  {58.02, 56.96},
	64:  {50.58, 48.54},
	128: {45.34, 41.60},
}

// Figure7 runs the DeepEP dispatch/combine sweep at the paper's EP
// sizes using the production batch (4096 tokens/GPU).
func Figure7() ([]deepep.EPSweepPoint, error) {
	cfg := deepep.V3Config()
	cfg.DeterministicTraffic = true
	cfg.SampleTokens = 512
	return deepep.Sweep(cfg, []int{16, 32, 64, 128}, 7)
}

// Figure7Result returns the sweep as a structured table with the
// paper's values beside the measured ones.
func Figure7Result(points []deepep.EPSweepPoint) *results.Table {
	t := results.NewTable("Figure 7: DeepEP dispatch/combine bandwidth on MPFT (4096 tokens/GPU)",
		results.C("EP"), results.CU("dispatch GB/s", "GB/s"), results.CU("paper", "GB/s"),
		results.CU("combine GB/s", "GB/s"), results.CU("paper", "GB/s"))
	for _, p := range points {
		paper := Figure7Paper[p.Ranks]
		t.Row(results.Int(p.Ranks),
			results.Float("%.2f", p.Dispatch.Bandwidth/units.GB), results.Float("%.2f", paper[0]),
			results.Float("%.2f", p.Combine.Bandwidth/units.GB), results.Float("%.2f", paper[1]))
	}
	return t
}

// RenderFigure7 renders the sweep with the paper's values.
func RenderFigure7(points []deepep.EPSweepPoint) string { return Figure7Result(points).Text() }

// Figure8Point is one (TP, policy) bar.
type Figure8Point struct {
	TP     int
	Policy netsim.Policy
	BusBW  units.BytesPerSecond
}

// Figure8 measures ring AllGather/ReduceScatter aggregate bandwidth
// under ECMP, adaptive routing, and static routing on a RoCE leaf-spine
// fabric with concurrent groups (the mechanism behind §5.2.2).
func Figure8() ([]Figure8Point, error) {
	opts := collective.DefaultOptions()
	opts.PerFlowOverheadBytes = 0
	tps := []int{8, 4, 2}
	policies := []netsim.Policy{netsim.PolicyECMP, netsim.PolicyAdaptive, netsim.PolicyStatic}
	// One worker task per (TP, policy) bar. Each task builds its own
	// RoCE fabric and router: the netsim Router caches shortest paths
	// mutably, so sharing one across tasks would race. The collective
	// scratch, by contrast, is fully reset per call, so it rides along
	// per worker.
	points, err := parallel.MapScratch(len(tps)*len(policies), collective.NewScratch, func(idx int, sc *collective.Scratch) (Figure8Point, error) {
		tp := tps[idx/len(policies)]
		pol := policies[idx%len(policies)]
		ft := topology.FatTree2{
			Leaves: 4, Spines: 4, EndpointsPerLeaf: 8,
			Params: topology.FabricParams{
				EndpointLinkCap: 22 * units.GB, // 200GbE effective
				SwitchLinkCap:   22 * units.GB,
				EndpointLinkLat: 1.2 * units.Microsecond,
				SwitchHopLat:    1.0 * units.Microsecond,
			},
		}
		router := netsim.NewRouter(ft.Build())
		groups := spreadGroups(router.Graph().Endpoints(), tp)
		res, err := sc.RingCollective(router, groups, units.Bytes(256*units.MiB), pol, opts)
		if err != nil {
			return Figure8Point{}, err
		}
		return Figure8Point{TP: tp, Policy: pol, BusBW: res.MeanBusBW}, nil
	})
	return points, err
}

// spreadGroups builds TP groups whose members sit under different
// leaves (member i of group g is endpoint g + i*groupCount).
func spreadGroups(eps []int, tp int) [][]int {
	count := len(eps) / tp
	groups := make([][]int, count)
	for gi := 0; gi < count; gi++ {
		for i := 0; i < tp; i++ {
			groups[gi] = append(groups[gi], eps[gi+i*count])
		}
	}
	return groups
}

// Figure8Result returns the routing-policy comparison as a structured
// table.
func Figure8Result(points []Figure8Point) *results.Table {
	t := results.NewTable("Figure 8: RoCE ring AG/RS aggregate bandwidth by routing policy (paper: AR ≈ Static >> ECMP)",
		results.C("TP"), results.C("Policy"), results.CU("GB/s", "GB/s"))
	for _, p := range points {
		t.Row(results.Int(p.TP), results.Str(p.Policy.String()), results.Float("%.1f", p.BusBW/units.GB))
	}
	return t
}

// RenderFigure8 renders the routing-policy comparison.
func RenderFigure8(points []Figure8Point) string { return Figure8Result(points).Text() }

// PlaneFailureRow is one plane-failure scenario (§5.1.1 robustness).
type PlaneFailureRow struct {
	FailedPlanes int
	Time         units.Seconds
	Slowdown     float64
}

// PlaneFailure reruns a 32-GPU all-to-all with k planes failed: traffic
// destined for a failed plane detours over a surviving plane (NVLink at
// both ends). Degradation should be graceful — roughly 8/(8-k) — rather
// than a connectivity loss.
func PlaneFailure(failedCounts []int) ([]PlaneFailureRow, error) {
	c, err := cluster.Cached(cluster.H800Config(4, cluster.MPFT))
	if err != nil {
		return nil, err
	}
	opts := collective.DefaultOptions()
	size := units.Bytes(1 * units.GiB)
	times, err := parallel.MapScratch(len(failedCounts), collective.NewScratch, func(i int, sc *collective.Scratch) (units.Seconds, error) {
		return allToAllWithFailedPlanes(sc, c, 32, size, failedCounts[i], opts)
	})
	if err != nil {
		return nil, err
	}
	// Slowdowns are derived serially so the baseline semantics (latest
	// failed==0 entry seen so far) match the original sweep exactly.
	rows := make([]PlaneFailureRow, 0, len(failedCounts))
	var baseline units.Seconds
	for i, failed := range failedCounts {
		if failed == 0 {
			baseline = times[i]
		}
		row := PlaneFailureRow{FailedPlanes: failed, Time: times[i]}
		if baseline > 0 {
			row.Slowdown = times[i] / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// allToAllWithFailedPlanes mirrors collective.AllToAll but reroutes
// traffic whose home plane failed onto surviving planes round-robin.
// It builds its own (detoured) flow set but borrows the worker's
// simulator context for the water-filling scratch.
func allToAllWithFailedPlanes(sc *collective.Scratch, c *cluster.Cluster, ranks int, perRank units.Bytes, failed int, opts collective.Options) (units.Seconds, error) {
	alive := make([]int, 0, c.Planes()-failed)
	for p := failed; p < c.Planes(); p++ {
		alive = append(alive, p)
	}
	if len(alive) == 0 {
		return 0, fmt.Errorf("experiments: all planes failed")
	}
	chunk := perRank / float64(ranks)
	var flows []netsim.Flow
	for r := 0; r < ranks; r++ {
		srcNode, srcGPU := c.RankOf(r)
		for q := 0; q < ranks; q++ {
			if q == r {
				continue
			}
			dstNode, dstGPU := c.RankOf(q)
			plane := dstGPU
			if plane < failed { // home plane down: detour
				plane = alive[(r+q)%len(alive)]
			}
			paths := c.PXNPathsVia(srcNode, srcGPU, dstNode, dstGPU, plane)
			flows = append(flows, netsim.Flow{
				Src:            c.GPUID(srcNode, srcGPU),
				Dst:            c.GPUID(dstNode, dstGPU),
				Bytes:          chunk,
				Paths:          paths,
				StartupLatency: opts.HostLatency + c.G.PathLatency(paths[0]),
			})
		}
	}
	res := sc.Sim().Simulate(c.G, flows)
	return res.Makespan + opts.LaunchOverhead, nil
}

// PlaneFailureResult returns the robustness table in structured form.
func PlaneFailureResult(rows []PlaneFailureRow) *results.Table {
	t := results.NewTable("§5.1.1: multi-plane robustness — all-to-all under plane failures (32 GPUs, 1 GiB/rank)",
		results.C("Failed planes"), results.CU("Time", "s"), results.C("Slowdown"))
	for _, r := range rows {
		t.Row(results.Int(r.FailedPlanes), results.Val(units.FormatSeconds(r.Time), float64(r.Time)),
			results.Float("%.2fx", r.Slowdown))
	}
	return t
}

// RenderPlaneFailure renders the robustness table.
func RenderPlaneFailure(rows []PlaneFailureRow) string { return PlaneFailureResult(rows).Text() }
