package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dsv3/internal/results"
)

// Base seeds for the randomized runners. They are part of the
// experiment definition — the golden corpus (testdata/golden) pins the
// outputs they produce.
const (
	SeedFigure7       = 7
	SeedMTP           = 7
	SeedAccum         = 13
	SeedLogFMT        = 17
	SeedNodeLimited   = 19
	SeedSDC           = 29
	SeedServe         = 41
	SeedServeDisagg   = 43
	SeedServeSpec     = 47
	SeedServeRouter   = 53
	SeedServeCapacity = 59
	SeedServeFailure  = 61
	SeedServeShed     = 67
	SeedServeKVTier   = 71
	SeedServeTrace    = 73
	SeedServeFleet    = 79
	SeedServeHazard   = 83
	SeedServeHedge    = 89
)

// Options configure one catalogue runner invocation.
type Options struct {
	// Quick shrinks the heavy sweeps (figure5) for a fast pass.
	Quick bool
}

// Runner is one catalogue entry: a named experiment producing a
// structured Result. Seed is the base RNG seed baked into the
// experiment definition (0 for deterministic runners); it is recorded
// in every Result's metadata and shown by dsv3bench -list.
type Runner struct {
	Name string
	Desc string
	Seed int64
	Run  func(Options) (*results.Result, error)
}

// Catalogue returns every experiment in presentation order — the
// single source of truth shared by cmd/dsv3bench, the golden-corpus
// tests, and the facade.
func Catalogue() []Runner {
	many := func(name, desc string, seed int64, f func(Options) ([]*results.Table, error)) Runner {
		return Runner{Name: name, Desc: desc, Seed: seed, Run: func(o Options) (*results.Result, error) {
			tables, err := f(o)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			r := results.New(name, desc, tables...).WithSeed(seed)
			r.Meta.Quick = o.Quick
			return r, nil
		}}
	}
	one := func(name, desc string, seed int64, f func(Options) (*results.Table, error)) Runner {
		return many(name, desc, seed, func(o Options) ([]*results.Table, error) {
			t, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*results.Table{t}, nil
		})
	}
	return []Runner{
		one("table1", "KV cache per token (MLA vs GQA)", 0,
			func(Options) (*results.Table, error) { return Table1Result(), nil }),
		one("table2", "training GFLOPs per token (MoE vs dense)", 0,
			func(Options) (*results.Table, error) { return Table2Result(), nil }),
		one("table3", "network topology cost comparison", 0,
			func(Options) (*results.Table, error) { return Table3Result() }),
		one("table4", "training metrics MPFT vs MRFT", 0,
			func(Options) (*results.Table, error) { return Table4Result() }),
		one("table5", "link-layer 64B latency", 0,
			func(Options) (*results.Table, error) { return Table5Result(), nil }),
		one("figure5", "NCCL all-to-all bandwidth MPFT vs MRFT", 0,
			func(o Options) (*results.Table, error) {
				gpus := []int{32, 64, 128}
				sizes := DefaultFigure5Sizes()
				if o.Quick {
					gpus = []int{32}
					sizes = sizes[:2]
				}
				pts, err := Figure5(gpus, sizes)
				if err != nil {
					return nil, err
				}
				return Figure5Result(pts), nil
			}),
		one("figure6", "all-to-all latency parity on 16 GPUs", 0,
			func(Options) (*results.Table, error) {
				pts, err := Figure6(DefaultFigure6Sizes())
				if err != nil {
					return nil, err
				}
				return Figure6Result(pts), nil
			}),
		one("figure7", "DeepEP dispatch/combine bandwidth", SeedFigure7,
			func(Options) (*results.Table, error) {
				pts, err := Figure7()
				if err != nil {
					return nil, err
				}
				return Figure7Result(pts), nil
			}),
		one("figure8", "RoCE routing policies (ECMP/AR/static)", 0,
			func(Options) (*results.Table, error) {
				pts, err := Figure8()
				if err != nil {
					return nil, err
				}
				return Figure8Result(pts), nil
			}),
		one("inference", "§2.3.2 EP inference speed limits", 0,
			func(Options) (*results.Table, error) { return InferenceLimitsResult() }),
		many("mtp", "§2.3.3 MTP speculative decoding speedup", SeedMTP,
			func(Options) ([]*results.Table, error) { return MTPResultTables(SeedMTP) }),
		one("local", "§2.2.2 local deployment rooflines", 0,
			func(Options) (*results.Table, error) { return LocalDeploymentResult(), nil }),
		one("fp8", "§2.4 FP8 vs BF16 toy-training accuracy", 0,
			func(Options) (*results.Table, error) { return FP8AccuracyResultTable() }),
		one("accum", "§3.1.1 accumulation precision ablation", SeedAccum,
			func(Options) (*results.Table, error) { return AccumulationAblationResult(SeedAccum) }),
		one("logfmt", "§3.2 LogFMT vs FP8/BF16 accuracy", SeedLogFMT,
			func(Options) (*results.Table, error) { return LogFMTAccuracyResult(SeedLogFMT) }),
		one("nodelimit", "§4.3 node-limited routing dedup", SeedNodeLimited,
			func(Options) (*results.Table, error) { return NodeLimitedRoutingResult(SeedNodeLimited) }),
		one("planefail", "§5.1.1 multi-plane failure robustness", 0,
			func(Options) (*results.Table, error) {
				rows, err := PlaneFailure([]int{0, 1, 2, 4})
				if err != nil {
					return nil, err
				}
				return PlaneFailureResult(rows), nil
			}),
		one("overlap", "§2.3.1 dual micro-batch overlap ablation", 0,
			func(Options) (*results.Table, error) { return OverlapAblationResult() }),
		one("contention", "§4.5 PCIe bandwidth contention", 0,
			func(Options) (*results.Table, error) { return BandwidthContentionResult() }),
		one("sdc", "§6.1.2 checksum-based SDC detection", SeedSDC,
			func(Options) (*results.Table, error) { return SDCDetectionResult(SeedSDC) }),
		one("serve", "serving simulator: Poisson load sweep", SeedServe,
			func(o Options) (*results.Table, error) { return ServeLoadSweepResult(SeedServe, o.Quick) }),
		one("serve-disagg", "serving: disaggregation vs colocation ratios", SeedServeDisagg,
			func(o Options) (*results.Table, error) { return DisaggRatioStudyResult(SeedServeDisagg, o.Quick) }),
		one("serve-spec", "serving: MTP speculative decoding under load", SeedServeSpec,
			func(o Options) (*results.Table, error) { return SpeculativeServingResult(SeedServeSpec, o.Quick) }),
		one("serve-router", "serving: router policy shoot-out at fixed load", SeedServeRouter,
			func(o Options) (*results.Table, error) { return RouterShootoutResult(SeedServeRouter, o.Quick) }),
		one("serve-capacity", "serving: SLO capacity knee vs fleet shape and router", SeedServeCapacity,
			func(o Options) (*results.Table, error) { return CapacityStudyResult(SeedServeCapacity, o.Quick) }),
		one("serve-failure", "serving: kill-an-instance incident replay per router", SeedServeFailure,
			func(o Options) (*results.Table, error) { return FailureStudyResult(SeedServeFailure, o.Quick) }),
		one("serve-shed", "serving: admission shedding under diurnal overload", SeedServeShed,
			func(o Options) (*results.Table, error) { return ShedStudyResult(SeedServeShed, o.Quick) }),
		one("serve-kvtier", "serving: tiered KV offload + prefix cache capacity frontier", SeedServeKVTier,
			func(o Options) (*results.Table, error) { return KVTierStudyResult(SeedServeKVTier, o.Quick) }),
		many("serve-trace", "serving: deterministic lifecycle trace of the tiered+faulted run", SeedServeTrace,
			func(o Options) ([]*results.Table, error) { return TraceStudyResult(SeedServeTrace, o.Quick) }),
		one("serve-fleet", "serving: 1000-instance fleet under 1M requests (sharded event loop)", SeedServeFleet,
			func(o Options) (*results.Table, error) { return FleetStudyResult(SeedServeFleet, o.Quick) }),
		one("serve-hazard", "serving: plane degradation + SDC per router, detection off vs on", SeedServeHazard,
			func(o Options) (*results.Table, error) { return HazardStudyResult(SeedServeHazard, o.Quick) }),
		one("serve-hedge", "serving: hedged requests vs a permanent gray straggler", SeedServeHedge,
			func(o Options) (*results.Table, error) { return HedgeStudyResult(SeedServeHedge, o.Quick) }),
	}
}

// Names returns the catalogue's experiment names in order.
func Names() []string {
	cat := Catalogue()
	names := make([]string, len(cat))
	for i, r := range cat {
		names[i] = r.Name
	}
	return names
}

// Find resolves a case-insensitive experiment name.
func Find(name string) (Runner, bool) {
	for _, r := range Catalogue() {
		if strings.EqualFold(r.Name, name) {
			return r, true
		}
	}
	return Runner{}, false
}

// SuggestNames returns the catalogue names sorted alphabetically — the
// list the CLI prints when -run names an unknown experiment.
func SuggestNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
