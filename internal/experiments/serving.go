package experiments

import (
	"dsv3/internal/mtp"
	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// servingWorkload is the reference traffic shape shared by the serving
// experiments: Poisson arrivals, heavy-tailed ~1K-token prompts and
// ~512-token outputs.
func servingWorkload(quick bool) servesim.Workload {
	requests := 400
	if quick {
		requests = 150
	}
	return servesim.Workload{
		Arrival:  servesim.ArrivalPoisson,
		Requests: requests,
		Prompt:   servesim.LogNormal(1024, 0.5),
		Output:   servesim.LogNormal(512, 0.5),
	}
}

// ServeLoadSweep drives the reference disaggregated deployment
// (2 prefill + 4 decode instances) across arrival rates and reports
// request-level latency percentiles, goodput and KV pressure — the
// "serving heavy traffic" view of the §2.3.2 decode analysis.
func ServeLoadSweep(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	cfg := servesim.V3ServeConfig()
	cfg.Seed = seed
	rates := []float64{2, 4, 6, 8}
	if quick {
		rates = []float64{4, 8}
	}
	return servesim.RateSweep(cfg, servingWorkload(quick), rates)
}

// ServeLoadSweepResult returns the load sweep as a structured table.
func ServeLoadSweepResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := ServeLoadSweep(seed, quick)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("Serving: Poisson load sweep on 2 prefill + 4 decode instances (V3 latency model, paper §2.3.2 step ceiling)",
		results.CU("Rate", "req/s"), results.CU("TTFT p50", "ms"), results.CU("TTFT p99", "ms"),
		results.CU("TPOT p50", "ms"), results.CU("TPOT p99", "ms"), results.CU("E2E p99", "s"),
		results.CU("Goodput", "req/s"), results.CU("SLO", "%"), results.C("Batch"), results.CU("KV peak", "%"))
	for _, p := range pts {
		r := p.Report
		t.Row(results.Float("%.0f", p.RatePerSec),
			results.Float("%.0f", r.TTFT.P50*1e3), results.Float("%.0f", r.TTFT.P99*1e3),
			results.Float("%.2f", r.TPOT.P50*1e3), results.Float("%.2f", r.TPOT.P99*1e3),
			results.Float("%.2f", r.E2E.P99),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.1f%%", r.SLOAttainment*100),
			results.Float("%.1f", r.MeanBatch), results.Float("%.1f%%", r.PeakKVOccupancy*100))
	}
	return t, nil
}

// disaggArm is one deployment shape of the ratio study.
type disaggArm struct {
	Name      string
	Colocated bool
	Stride    int
	Prefill   int
	Decode    int
}

// disaggArms enumerates the 8-instance deployments: colocation under
// both interference policies, then the prefill:decode ratio sweep.
func disaggArms() []disaggArm {
	return []disaggArm{
		{"colocated 8x (aggressive, stride 4)", true, 4, 4, 4},
		{"colocated 8x (protective, stride 128)", true, 128, 4, 4},
		{"disaggregated 2P:6D", false, 0, 2, 6},
		{"disaggregated 3P:5D", false, 0, 3, 5},
		{"disaggregated 4P:4D", false, 0, 4, 4},
		{"disaggregated 5P:3D", false, 0, 5, 3},
	}
}

// DisaggRatioStudy compares colocated continuous batching against
// disaggregated prefill:decode splits at a high arrival rate on a
// KV-constrained 8-instance cluster. Colocation must pick an
// interference policy — aggressive prefill admission inflates TPOT,
// decode-protective admission starves TTFT — while a balanced
// disaggregated ratio protects both, which is the qualitative argument
// for the paper's disaggregated production deployment.
func DisaggRatioStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := disaggArms()
	w := servingWorkload(quick)
	w.RatePerSec = 12
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		a := arms[i]
		cfg := servesim.V3ServeConfig()
		cfg.Seed = parallel.DeriveSeed(seed, i)
		cfg.KV.HBM.CapacityBytes = 2 * units.GB
		cfg.Fleet.Colocated = a.Colocated
		if a.Stride > 0 {
			cfg.Fleet.ColocatedStride = a.Stride
		}
		cfg.Fleet.PrefillInstances, cfg.Fleet.DecodeInstances = a.Prefill, a.Decode
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// DisaggRatioStudyResult returns the ratio study as a structured table.
func DisaggRatioStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := DisaggRatioStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := disaggArms()
	t := results.NewTable("Serving: prefill:decode disaggregation vs colocation (8 instances, 12 req/s, 2 GB KV/instance)",
		results.C("Deployment"), results.CU("TTFT p50", "ms"), results.CU("TTFT p99", "ms"),
		results.CU("TPOT p50", "ms"), results.CU("TPOT p99", "ms"),
		results.CU("Goodput", "req/s"), results.CU("SLO", "%"), results.C("Preempt"))
	for i, p := range pts {
		r := p.Report
		t.Row(results.Str(arms[i].Name),
			results.Float("%.0f", r.TTFT.P50*1e3), results.Float("%.0f", r.TTFT.P99*1e3),
			results.Float("%.2f", r.TPOT.P50*1e3), results.Float("%.2f", r.TPOT.P99*1e3),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.1f%%", r.SLOAttainment*100),
			results.Int(r.Preemptions))
	}
	return t, nil
}

// specArm is one speculative-decoding configuration.
type specArm struct {
	Name       string
	Acceptance float64 // 0 disables MTP
}

func specArms() []specArm {
	return []specArm{
		{"no MTP", 0},
		{"MTP k=1, accept 70%", 0.70},
		{"MTP k=1, accept 85% (paper)", 0.85},
		{"MTP k=1, accept 95%", 0.95},
	}
}

// SpeculativeServingStudy measures what §2.3.3's MTP acceptance rates
// buy at the serving level: tokens per step, TPOT and goodput on the
// reference deployment under fixed load.
func SpeculativeServingStudy(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := specArms()
	w := servingWorkload(quick)
	w.RatePerSec = 6
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		cfg := servesim.V3ServeConfig()
		cfg.Seed = parallel.DeriveSeed(seed, i)
		if arms[i].Acceptance > 0 {
			spec := mtp.V3Config()
			spec.Acceptance = arms[i].Acceptance
			cfg.MTP = &spec
		}
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// SpeculativeServingResult returns the MTP study as a structured table.
func SpeculativeServingResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := SpeculativeServingStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := specArms()
	t := results.NewTable("Serving: MTP speculative decoding under load (2P+4D, 6 req/s; paper §2.3.3: 80-90% acceptance -> 1.8x)",
		results.C("Config"), results.C("Tokens/step"), results.C("E[tokens/step]"),
		results.CU("TPOT p50", "ms"), results.CU("TPOT p99", "ms"), results.CU("TTFT p99", "ms"),
		results.CU("Goodput", "req/s"), results.CU("SLO", "%"))
	for i, p := range pts {
		r := p.Report
		analytic := results.NA()
		if arms[i].Acceptance > 0 {
			spec := mtp.V3Config()
			spec.Acceptance = arms[i].Acceptance
			analytic = results.Float("%.3f", spec.ExpectedTokensPerStep())
		}
		t.Row(results.Str(arms[i].Name),
			results.Float("%.3f", r.TokensPerStep), analytic,
			results.Float("%.2f", r.TPOT.P50*1e3), results.Float("%.2f", r.TPOT.P99*1e3),
			results.Float("%.0f", r.TTFT.P99*1e3),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.1f%%", r.SLOAttainment*100))
	}
	return t, nil
}

// RenderServeLoadSweep renders the load sweep.
func RenderServeLoadSweep(seed int64, quick bool) (string, error) {
	t, err := ServeLoadSweepResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// RenderDisaggRatioStudy renders the ratio study.
func RenderDisaggRatioStudy(seed int64, quick bool) (string, error) {
	t, err := DisaggRatioStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// RenderSpeculativeServing renders the MTP serving study.
func RenderSpeculativeServing(seed int64, quick bool) (string, error) {
	t, err := SpeculativeServingResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
