package experiments

import (
	"dsv3/internal/gemm"
	"dsv3/internal/inference"
	"dsv3/internal/parallel"
	"dsv3/internal/quant"
	"dsv3/internal/results"
	"dsv3/internal/units"
)

// ContentionRow is one KV-transfer-rate point of the §4.5 study.
type ContentionRow struct {
	KVRate          units.BytesPerSecond
	TPOTFairSharing units.Seconds
	TPOTPrioritized units.Seconds
}

// BandwidthContention sweeps KV-cache fetch demand against EP traffic
// on a shared PCIe 5.0 link (§4.5.1) and shows what §4.5.2's dynamic
// traffic prioritization recovers.
func BandwidthContention() ([]ContentionRow, error) {
	cfg := inference.V3EPConfig()
	var rows []ContentionRow
	for _, kv := range []float64{0, 10, 20, 40, 60} {
		cc := inference.ContentionConfig{
			PCIeBandwidth:  64 * units.GB,
			KVTransferRate: kv * units.GB,
			EPDemand:       50 * units.GB,
		}
		fair, err := cfg.TPOTUnderContention(50*units.GB, cc, false)
		if err != nil {
			return nil, err
		}
		prio, err := cfg.TPOTUnderContention(50*units.GB, cc, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ContentionRow{
			KVRate:          kv * units.GB,
			TPOTFairSharing: fair.TPOT,
			TPOTPrioritized: prio.TPOT,
		})
	}
	return rows, nil
}

// BandwidthContentionResult returns §4.5 as a structured table.
func BandwidthContentionResult() (*results.Table, error) {
	rows, err := BandwidthContention()
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§4.5: PCIe contention between KV-cache transfers and EP traffic (64 GB/s PCIe 5.0)",
		results.CU("KV fetch rate", "B/s"), results.CU("TPOT (fair sharing)", "s"),
		results.CU("TPOT (EP prioritized)", "s"))
	for _, r := range rows {
		t.Row(results.Val(units.FormatBandwidth(r.KVRate), float64(r.KVRate)),
			results.Val(units.FormatSeconds(r.TPOTFairSharing), float64(r.TPOTFairSharing)),
			results.Val(units.FormatSeconds(r.TPOTPrioritized), float64(r.TPOTPrioritized)))
	}
	return t, nil
}

// RenderContention renders §4.5.
func RenderContention() (string, error) {
	t, err := BandwidthContentionResult()
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// OverlapRow is one compute:comm ratio of the §2.3.1 ablation.
type OverlapRow struct {
	ComputeCommRatio float64
	Speedup          float64
}

// OverlapAblation quantifies dual micro-batch overlap vs serial
// execution across compute:comm balances.
func OverlapAblation() ([]OverlapRow, error) {
	cfg := inference.V3EPConfig()
	comm := cfg.CommTimePerStep(50 * units.GB)
	var rows []OverlapRow
	for _, ratio := range []float64{0.5, 1, 2, 4, 8} {
		r, err := cfg.AnalyzeOverlap(50*units.GB, ratio*comm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverlapRow{ComputeCommRatio: ratio, Speedup: r.SpeedupFactor})
	}
	return rows, nil
}

// OverlapAblationResult returns §2.3.1 as a structured table.
func OverlapAblationResult() (*results.Table, error) {
	rows, err := OverlapAblation()
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§2.3.1: dual micro-batch overlap vs serial execution (peak 2x at compute = 2x comm)",
		results.C("compute/comm"), results.C("speedup"))
	for _, r := range rows {
		t.Row(results.Float("%.1f", r.ComputeCommRatio), results.Float("%.2fx", r.Speedup))
	}
	return t, nil
}

// RenderOverlap renders §2.3.1.
func RenderOverlap() (string, error) {
	t, err := OverlapAblationResult()
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// SDCResult reports the §6.1.2 checksum-validation demo.
type SDCResult struct {
	CleanVerified  bool
	FaultsInjected int
	FaultsCaught   int
}

// SDCDetection runs Freivalds verification over repeated FP8 GEMMs with
// injected single-element corruptions.
func SDCDetection(seed int64) (SDCResult, error) {
	rng := parallel.NewRand(seed)
	a := quant.NewMatrix(16, 256)
	b := quant.NewMatrix(256, 16)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	c := gemm.FP8(a, b, gemm.DeepSeekV3Recipe())
	res := SDCResult{CleanVerified: gemm.VerifyGEMM(a, b, c, 8, 0.2, rng)}
	const faults = 50
	res.FaultsInjected = faults
	for i := 0; i < faults; i++ {
		// Faults are injected clearly above the FP8 quantization noise
		// floor (a corruption below the noise is information-
		// theoretically indistinguishable from honest rounding).
		bad := gemm.InjectFault(c, rng.Intn(c.Rows), rng.Intn(c.Cols), 500+rng.Float64()*1000)
		if !gemm.VerifyGEMM(a, b, bad, 8, 0.2, rng) {
			res.FaultsCaught++
		}
	}
	return res, nil
}

// SDCDetectionResult returns §6.1.2 as a structured table.
func SDCDetectionResult(seed int64) (*results.Table, error) {
	r, err := SDCDetection(seed)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§6.1.2: checksum-based SDC detection (Freivalds verification of FP8 GEMMs)",
		results.C("Quantity"), results.C("Value"))
	t.Row(results.Str("clean FP8 GEMM verifies"), results.Bool(r.CleanVerified))
	t.Row(results.Str("injected corruptions"), results.Int(r.FaultsInjected))
	t.Row(results.Str("corruptions detected"), results.Int(r.FaultsCaught))
	return t, nil
}

// RenderSDC renders §6.1.2.
func RenderSDC(seed int64) (string, error) {
	t, err := SDCDetectionResult(seed)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
