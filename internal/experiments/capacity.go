package experiments

import (
	"fmt"

	"dsv3/internal/parallel"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/units"
)

// RouterShootout compares the pluggable routing policies at a fixed
// arrival rate on a KV-constrained reference fleet. Every arm runs the
// identical traffic (same seed), so the only independent variable is
// the policy applied to prefill dispatch and the prefill->decode
// hand-off.
func RouterShootout(seed int64, quick bool) ([]servesim.SweepPoint, error) {
	arms := servesim.RouterPolicies()
	w := servingWorkload(quick)
	w.RatePerSec = 7
	return parallel.Map(len(arms), func(i int) (servesim.SweepPoint, error) {
		cfg := servesim.V3ServeConfig()
		cfg.Seed = seed
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 5
		cfg.Fleet.Router = arms[i]
		rep, err := servesim.Run(cfg, w)
		if err != nil {
			return servesim.SweepPoint{}, err
		}
		return servesim.SweepPoint{RatePerSec: w.RatePerSec, Report: rep}, nil
	})
}

// RouterShootoutResult returns the policy shoot-out as a structured
// table.
func RouterShootoutResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := RouterShootout(seed, quick)
	if err != nil {
		return nil, err
	}
	arms := servesim.RouterPolicies()
	t := results.NewTable("Serving: router policy shoot-out (2P+4D, 7 req/s, 0.4 GB KV/instance, identical traffic per arm)",
		results.C("Router"), results.CU("TTFT p50", "ms"), results.CU("TTFT p99", "ms"),
		results.CU("TPOT p50", "ms"), results.CU("TPOT p99", "ms"),
		results.CU("Goodput", "req/s"), results.CU("SLO", "%"), results.C("Preempt"), results.CU("KV peak", "%"))
	for i, p := range pts {
		r := p.Report
		t.Row(results.Str(arms[i].String()),
			results.Float("%.0f", r.TTFT.P50*1e3), results.Float("%.0f", r.TTFT.P99*1e3),
			results.Float("%.2f", r.TPOT.P50*1e3), results.Float("%.2f", r.TPOT.P99*1e3),
			results.Float("%.2f", r.GoodputRPS), results.Float("%.1f%%", r.SLOAttainment*100),
			results.Int(r.Preemptions), results.Float("%.1f%%", r.PeakKVOccupancy*100))
	}
	return t, nil
}

// capacityArm is one (fleet shape, router) point of the capacity study.
type capacityArm struct {
	Fleet   string
	Prefill int
	Decode  int
	Policy  servesim.RouterPolicy
	// shape indexes the fleet shape so both routers on a shape derive
	// the same seed and face identical traffic.
	shape int
}

func capacityArms(quick bool) []capacityArm {
	shapes := []struct {
		name            string
		prefill, decode int
	}{
		{"2P:4D", 2, 4},
		{"3P:5D", 3, 5},
		{"4P:4D", 4, 4},
	}
	if quick {
		shapes = shapes[:2]
	}
	var arms []capacityArm
	for si, s := range shapes {
		for _, p := range []servesim.RouterPolicy{servesim.RouteLeastKV, servesim.RoutePowerOfTwo} {
			arms = append(arms, capacityArm{Fleet: s.name, Prefill: s.prefill, Decode: s.decode, Policy: p, shape: si})
		}
	}
	return arms
}

// CapacityStudyPoint is one arm's capacity-search outcome.
type CapacityStudyPoint struct {
	Fleet  string
	Policy servesim.RouterPolicy
	Result *servesim.CapacityResult
}

// CapacityStudy bisects each (fleet shape, router) arm to its maximum
// sustainable Poisson rate at 90% SLO attainment — the goodput knee
// the paper's disaggregated deployment is sized against. Arms fan out
// over the worker pool; each planner runs sequentially inside its arm
// with a seed derived per fleet shape, so the knees are byte-identical
// for any worker count and the two routers on a shape see identical
// traffic.
func CapacityStudy(seed int64, quick bool) ([]CapacityStudyPoint, error) {
	arms := capacityArms(quick)
	w := servingWorkload(quick)
	w.Requests = 250
	if quick {
		w.Requests = 120
	}
	planner := servesim.DefaultCapacityPlanner()
	if quick {
		planner.Tolerance = 0.08
	}
	return parallel.Map(len(arms), func(i int) (CapacityStudyPoint, error) {
		a := arms[i]
		cfg := servesim.V3ServeConfig()
		cfg.Seed = parallel.DeriveSeed(seed, a.shape)
		cfg.KV.HBM.CapacityBytes = 2 * units.GB / 5
		cfg.Fleet.PrefillInstances, cfg.Fleet.DecodeInstances = a.Prefill, a.Decode
		cfg.Fleet.Router = a.Policy
		res, err := planner.Find(cfg, w)
		if err != nil {
			return CapacityStudyPoint{}, fmt.Errorf("%s %s: %w", a.Fleet, a.Policy, err)
		}
		return CapacityStudyPoint{Fleet: a.Fleet, Policy: a.Policy, Result: res}, nil
	})
}

// CapacityStudyResult returns the capacity study as a structured table.
func CapacityStudyResult(seed int64, quick bool) (*results.Table, error) {
	pts, err := CapacityStudy(seed, quick)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("Serving: SLO capacity knee per fleet shape and router (90% attainment target, 0.4 GB KV/instance)",
		results.C("Fleet"), results.C("Router"), results.CU("Knee", "req/s"),
		results.CU("SLO@knee", "%"), results.CU("Goodput", "req/s"),
		results.CU("TTFT p99", "ms"), results.CU("TPOT p99", "ms"), results.C("Preempt"), results.C("Probes"))
	for _, p := range pts {
		r := p.Result.Report
		t.Row(results.Str(p.Fleet), results.Str(p.Policy.String()),
			results.Float("%.2f", p.Result.MaxRate),
			results.Float("%.1f%%", p.Result.Attainment*100),
			results.Float("%.2f", r.GoodputRPS),
			results.Float("%.0f", r.TTFT.P99*1e3), results.Float("%.2f", r.TPOT.P99*1e3),
			results.Int(r.Preemptions), results.Int(len(p.Result.Probes)))
	}
	return t, nil
}

// RenderRouterShootout renders the policy shoot-out.
func RenderRouterShootout(seed int64, quick bool) (string, error) {
	t, err := RouterShootoutResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// RenderCapacityStudy renders the capacity study.
func RenderCapacityStudy(seed int64, quick bool) (string, error) {
	t, err := CapacityStudyResult(seed, quick)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
