package experiments

import (
	"math"
	"strings"
	"testing"

	"dsv3/internal/netsim"
	"dsv3/internal/units"
)

func TestTable1MatchesPaperExactly(t *testing.T) {
	for _, r := range Table1() {
		if math.Abs(r.KVCacheKB-r.PaperKB) > 1e-9 {
			t.Errorf("%s: %v KB vs paper %v KB", r.Model, r.KVCacheKB, r.PaperKB)
		}
	}
	if s := RenderTable1(); !strings.Contains(s, "70.272") {
		t.Error("render missing the V3 KV figure")
	}
}

func TestTable2WithinBands(t *testing.T) {
	tols := map[string]float64{
		"DeepSeek-V2 (MLA, MoE-236B)": 0.05,
		"DeepSeek-V3 (MLA, MoE-671B)": 0.05,
		"Qwen-2.5 72B (GQA, dense)":   0.12,
		"LLaMA-3.1 405B (GQA, dense)": 0.02,
	}
	for _, r := range Table2() {
		tol := tols[r.Model]
		if tol == 0 {
			t.Fatalf("missing tolerance for %q", r.Model)
		}
		if math.Abs(r.GFLOPsPerToken-r.Paper) > tol*r.Paper {
			t.Errorf("%s: %v GFLOPs vs paper %v (tol %v%%)", r.Model, r.GFLOPsPerToken, r.Paper, tol*100)
		}
	}
}

func TestTable3WithinBands(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.CostMDollar-r.PaperCostM) > 0.015*r.PaperCostM {
			t.Errorf("%s cost %vM vs paper %vM", r.Name, r.CostMDollar, r.PaperCostM)
		}
	}
	if _, err := RenderTable3(); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Render(t *testing.T) {
	s, err := RenderTable4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tokens/day", "MFU", "19.9"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 4 render missing %q:\n%s", want, s)
		}
	}
}

func TestTable5Render(t *testing.T) {
	s := RenderTable5()
	for _, want := range []string{"2.80us", "3.70us", "3.60us", "5.60us", "3.33us"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 5 render missing %q:\n%s", want, s)
		}
	}
}

func TestLocalDeployment(t *testing.T) {
	rows := LocalDeployment()
	if len(rows) != 3 {
		t.Fatalf("expected 3 scenarios, got %d", len(rows))
	}
	if rows[0].TPS < 15 || rows[0].TPS > 40 {
		t.Errorf("V2 on AI SoC should be ~20 TPS, got %v", rows[0].TPS)
	}
	if rows[1].TPS >= 10 {
		t.Errorf("dense 70B should be single-digit TPS, got %v", rows[1].TPS)
	}
}

func TestFigure5ParityAndShape(t *testing.T) {
	points, err := Figure5([]int{32}, []units.Bytes{128 * units.MiB, 8 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		diff := math.Abs(p.MPFTAlgBW-p.MRFTAlgBW) / p.MRFTAlgBW
		if diff > 0.015 {
			t.Errorf("GPUs=%d size=%v: MPFT/MRFT diff %.2f%% > 1.5%%", p.GPUs, p.Size, diff*100)
		}
	}
	if points[0].MPFTAlgBW >= points[1].MPFTAlgBW {
		t.Error("bandwidth should rise with message size")
	}
	if points[1].MPFTAlgBW < 45*units.GB {
		t.Errorf("large-message algbw %v should approach the paper's ~60 GB/s", points[1].MPFTAlgBW/units.GB)
	}
}

func TestFigure6Parity(t *testing.T) {
	points, err := Figure6([]units.Bytes{64, 16 * units.MiB, 1 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if math.Abs(p.DiffPercent) > 1.5 {
			t.Errorf("size %v: diff %v%% exceeds the paper's band", p.Size, p.DiffPercent)
		}
	}
	// Latency must grow with size (log-log curve of the paper).
	if points[0].MPFTLatency >= points[2].MPFTLatency {
		t.Error("latency should grow with message size")
	}
}

func TestFigure7AgainstPaper(t *testing.T) {
	points, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 EP sizes, got %d", len(points))
	}
	for _, p := range points {
		paper := Figure7Paper[p.Ranks]
		gotD := p.Dispatch.Bandwidth / units.GB
		gotC := p.Combine.Bandwidth / units.GB
		// Dispatch within 15% of the paper. Combine gets a wider band
		// (25%): the simulator does not model the SM-based reduction
		// work the paper's §4.4 attributes to the combine stage, which
		// costs real DeepEP extra time at large EP.
		if math.Abs(gotD-paper[0]) > 0.15*paper[0] {
			t.Errorf("EP%d dispatch %v vs paper %v", p.Ranks, gotD, paper[0])
		}
		if math.Abs(gotC-paper[1]) > 0.25*paper[1] {
			t.Errorf("EP%d combine %v vs paper %v", p.Ranks, gotC, paper[1])
		}
	}
	if !(points[1].Dispatch.Bandwidth > points[0].Dispatch.Bandwidth &&
		points[1].Dispatch.Bandwidth > points[2].Dispatch.Bandwidth &&
		points[2].Dispatch.Bandwidth > points[3].Dispatch.Bandwidth) {
		t.Error("Figure 7 shape (peak at EP32, decline to EP128) not reproduced")
	}
}

func TestFigure8Ordering(t *testing.T) {
	points, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	byTP := map[int]map[netsim.Policy]float64{}
	for _, p := range points {
		if byTP[p.TP] == nil {
			byTP[p.TP] = map[netsim.Policy]float64{}
		}
		byTP[p.TP][p.Policy] = p.BusBW
	}
	for tp, m := range byTP {
		if m[netsim.PolicyAdaptive] < 1.3*m[netsim.PolicyECMP] {
			t.Errorf("TP%d: AR (%v) should clearly beat ECMP (%v)", tp, m[netsim.PolicyAdaptive], m[netsim.PolicyECMP])
		}
		if m[netsim.PolicyStatic] < 0.5*m[netsim.PolicyAdaptive] {
			t.Errorf("TP%d: static (%v) should be near AR (%v)", tp, m[netsim.PolicyStatic], m[netsim.PolicyAdaptive])
		}
	}
	// Aggregate bandwidth grows with TP under AR.
	if byTP[8][netsim.PolicyAdaptive] <= byTP[2][netsim.PolicyAdaptive] {
		t.Error("TP8 aggregate should exceed TP2's")
	}
}

func TestInferenceLimitsPaperDigits(t *testing.T) {
	rows, err := InferenceLimits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rows[0].CommTime-120.96*units.Microsecond) > 1e-9 {
		t.Errorf("IB comm time %v != 120.96us", rows[0].CommTime)
	}
	if math.Abs(rows[0].TPS-67.8) > 1 {
		t.Errorf("IB TPS %v != ~67", rows[0].TPS)
	}
	if math.Abs(rows[1].TPS-1219.8) > 2 {
		t.Errorf("NVL72 TPS %v != ~1200", rows[1].TPS)
	}
}

func TestMTPSpeedupNear1Point8(t *testing.T) {
	r, err := MTPSpeedup(11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Analytic-1.8) > 0.05 || math.Abs(r.Simulated-1.8) > 0.06 {
		t.Errorf("MTP speedup should be ~1.8x: analytic %v, simulated %v", r.Analytic, r.Simulated)
	}
}

func TestAccumulationAblationOrdering(t *testing.T) {
	rows, err := AccumulationAblation(13)
	if err != nil {
		t.Fatal(err)
	}
	// raw FP22 > FP25 > FP32; promotion close to FP32.
	raw, promoted, fp25, fp32 := rows[0].RelError, rows[1].RelError, rows[2].RelError, rows[3].RelError
	if !(raw > fp25 && fp25 > fp32) {
		t.Errorf("accumulator sweep not monotone: %v", rows)
	}
	if promoted > raw/2 {
		t.Errorf("promotion (%v) should cut the raw FP22 error (%v) substantially", promoted, raw)
	}
}

func TestLogFMTOrdering(t *testing.T) {
	rows, err := LogFMTAccuracy(17)
	if err != nil {
		t.Fatal(err)
	}
	snr := map[string]float64{}
	for _, r := range rows {
		snr[r.Format] = r.SNRdB
	}
	if snr["LogFMT-8"] <= snr["E4M3 (tile-scaled)"] || snr["LogFMT-8"] <= snr["E5M2 (tile-scaled)"] {
		t.Errorf("LogFMT-8 must beat both FP8 formats: %+v", snr)
	}
	if snr["LogFMT-10"] <= snr["LogFMT-8"] {
		t.Error("LogFMT-10 must beat LogFMT-8")
	}
	if snr["BF16"] <= snr["LogFMT-10"]-8 {
		t.Error("BF16 should sit near or above LogFMT-10")
	}
}

func TestNodeLimitedRouting(t *testing.T) {
	rows, err := NodeLimitedRouting(19)
	if err != nil {
		t.Fatal(err)
	}
	limited, free := rows[0], rows[1]
	if limited.MaxNodes > 4 {
		t.Errorf("node-limited max M = %d > 4", limited.MaxNodes)
	}
	if free.MeanRemoteNodes <= limited.MeanRemoteNodes {
		t.Error("unrestricted routing must generate more IB traffic")
	}
}

func TestPlaneFailureGraceful(t *testing.T) {
	rows, err := PlaneFailure([]int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Slowdown != 1 {
		t.Errorf("baseline slowdown should be 1, got %v", rows[0].Slowdown)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Time <= rows[i-1].Time {
			t.Errorf("failures must monotonically slow the collective: %+v", rows)
		}
	}
	// Losing half the planes should roughly double the time, not break
	// connectivity: slowdown in [1.5, 3].
	last := rows[len(rows)-1]
	if last.FailedPlanes == 4 && (last.Slowdown < 1.5 || last.Slowdown > 3) {
		t.Errorf("4-plane failure slowdown %v outside graceful band", last.Slowdown)
	}
}

func TestFP8AccuracyExperiment(t *testing.T) {
	r, err := FP8Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if r.FineGapPct > 2 {
		t.Errorf("fine-grained FP8 gap %v%% too large", r.FineGapPct)
	}
	if r.CoarseGapPct <= r.FineGapPct {
		t.Errorf("coarse FP8 (%v%%) should be worse than fine (%v%%)", r.CoarseGapPct, r.FineGapPct)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if s := RenderLocalDeployment(); len(s) == 0 {
		t.Error("empty local deployment render")
	}
	if s, err := RenderInferenceLimits(); err != nil || !strings.Contains(s, "120.96us") {
		t.Errorf("inference limits render wrong: %v", err)
	}
	if s, err := RenderMTP(3); err != nil || !strings.Contains(s, "1.8") {
		t.Errorf("MTP render wrong: %v\n%s", err, s)
	}
	if s, err := RenderNodeLimited(3); err != nil || len(s) == 0 {
		t.Errorf("node-limited render wrong: %v", err)
	}
	if s, err := RenderLogFMT(3); err != nil || len(s) == 0 {
		t.Errorf("LogFMT render wrong: %v", err)
	}
	if s, err := RenderAccumulationAblation(3); err != nil || len(s) == 0 {
		t.Errorf("accumulation render wrong: %v", err)
	}
}
