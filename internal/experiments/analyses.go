package experiments

import (
	"dsv3/internal/cluster"
	"dsv3/internal/fp8train"
	"dsv3/internal/gemm"
	"dsv3/internal/inference"
	"dsv3/internal/logfmt"
	"dsv3/internal/moe"
	"dsv3/internal/mtp"
	"dsv3/internal/parallel"
	"dsv3/internal/quant"
	"dsv3/internal/results"
	"dsv3/internal/stats"
	"dsv3/internal/trainsim"
	"dsv3/internal/units"
)

// Table4Paper holds the paper's MPFT/MRFT measurements.
type Table4Paper struct {
	TokensPerDay float64
	TimePerStep  float64
	F1, Bubble   float64
	B1, W1, F1B1 float64
	Opt          float64
	TFLOPSNC     float64
	TFLOPSC      float64
	MFUNC, MFUC  float64
}

// PaperTable4MPFT returns the paper's MPFT column.
func PaperTable4MPFT() Table4Paper {
	return Table4Paper{
		TokensPerDay: 272.80e9, TimePerStep: 19.926,
		F1: 1.13, Bubble: 2.06, B1: 1.99, W1: 0.48, F1B1: 13.95, Opt: 0.29,
		TFLOPSNC: 432, TFLOPSC: 385, MFUNC: 0.4373, MFUC: 0.3894,
	}
}

// Table4 runs the production training-step model on both fabrics. The
// two columns are identical by construction: DualPipe fully overlaps EP
// communication, and Figures 5-7 show the fabrics deliver the same
// bandwidth — which is exactly the paper's conclusion (differences
// within measurement noise).
func Table4() (mpft, mrft trainsim.Metrics, err error) {
	cols, err := parallel.Map(2, func(int) (trainsim.Metrics, error) {
		return trainsim.V3Config().Run()
	})
	if err != nil {
		return
	}
	return cols[0], cols[1], nil
}

// Table4Result returns the training metric comparison as a structured
// table (metric-major, one column per fabric plus the paper reference).
func Table4Result() (*results.Table, error) {
	mpft, mrft, err := Table4()
	if err != nil {
		return nil, err
	}
	paper := PaperTable4MPFT()
	t := results.NewTable("Table 4: training metrics, MPFT vs MRFT (simulated | paper MPFT)",
		results.C("Metric"), results.C("MPFT"), results.C("MRFT"), results.C("paper"))
	row := func(name, format string, a, b, p float64) {
		t.Row(results.Str(name), results.Float(format, a), results.Float(format, b), results.Float(format, p))
	}
	row("tokens/day (B)", "%.2f", mpft.TokensPerDay/1e9, mrft.TokensPerDay/1e9, paper.TokensPerDay/1e9)
	row("time/step (s)", "%.3f", mpft.TimePerStep, mrft.TimePerStep, paper.TimePerStep)
	row("1F (s)", "%.2f", mpft.Phases.F1, mrft.Phases.F1, paper.F1)
	row("bubble (s)", "%.2f", mpft.Phases.Bubble, mrft.Phases.Bubble, paper.Bubble)
	row("1B (s)", "%.2f", mpft.Phases.B1, mrft.Phases.B1, paper.B1)
	row("1W (s)", "%.2f", mpft.Phases.W1, mrft.Phases.W1, paper.W1)
	row("1F1B (s)", "%.2f", mpft.Phases.F1B1, mrft.Phases.F1B1, paper.F1B1)
	row("opt (s)", "%.2f", float64(mpft.OptimizerTime), float64(mrft.OptimizerTime), paper.Opt)
	row("TFLOPS (non-causal)", "%.0f", mpft.TFLOPSNonCausal/1e12, mrft.TFLOPSNonCausal/1e12, paper.TFLOPSNC)
	row("TFLOPS (causal)", "%.0f", mpft.TFLOPSCausal/1e12, mrft.TFLOPSCausal/1e12, paper.TFLOPSC)
	row("MFU (non-causal)", "%.2f%%", mpft.MFUNonCausal*100, mrft.MFUNonCausal*100, paper.MFUNC*100)
	row("MFU (causal)", "%.2f%%", mpft.MFUCausal*100, mrft.MFUCausal*100, paper.MFUC*100)
	return t, nil
}

// RenderTable4 renders the training metric comparison.
func RenderTable4() (string, error) {
	t, err := Table4Result()
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// Table5Result returns the link-layer latency comparison. Cell values
// are seconds; the text keeps the human-scaled formatting.
func Table5Result() *results.Table {
	p := cluster.DefaultLatencyParams()
	sec := func(s units.Seconds) results.Cell { return results.Val(units.FormatSeconds(s), float64(s)) }
	t := results.NewTable("Table 5: CPU-side end-to-end latency, 64 B transfer",
		results.C("Link layer"), results.CU("Same leaf", "s"), results.CU("Cross leaf", "s"),
		results.CU("paper same", "s"), results.CU("paper cross", "s"))
	t.Row(results.Str("RoCE"), sec(p.EndToEnd(cluster.RoCE, true)), sec(p.EndToEnd(cluster.RoCE, false)),
		results.Val("3.60us", 3.60e-6), results.Val("5.60us", 5.60e-6))
	t.Row(results.Str("InfiniBand"), sec(p.EndToEnd(cluster.IB, true)), sec(p.EndToEnd(cluster.IB, false)),
		results.Val("2.80us", 2.80e-6), results.Val("3.70us", 3.70e-6))
	t.Row(results.Str("NVLink"), sec(p.EndToEnd(cluster.NVLink, true)), results.NA(),
		results.Val("3.33us", 3.33e-6), results.NA())
	return t
}

// RenderTable5 renders the link-layer latency comparison.
func RenderTable5() string { return Table5Result().Text() }

// InferenceLimitsRow is one interconnect of the §2.3.2 analysis.
type InferenceLimitsRow struct {
	Interconnect string
	Bandwidth    units.BytesPerSecond
	CommTime     units.Seconds
	TPOT         units.Seconds
	TPS          float64
}

// InferenceLimits reproduces the §2.3.2 derivation.
func InferenceLimits() ([]InferenceLimitsRow, error) {
	cfg := inference.V3EPConfig()
	systems := []struct {
		name string
		bw   units.BytesPerSecond
	}{
		{"CX7 400G IB (50 GB/s)", 50 * units.GB},
		{"GB200 NVL72 (900 GB/s)", 900 * units.GB},
	}
	var rows []InferenceLimitsRow
	for _, s := range systems {
		a, err := cfg.Analyze(s.bw)
		if err != nil {
			return nil, err
		}
		rows = append(rows, InferenceLimitsRow{
			Interconnect: s.name, Bandwidth: s.bw,
			CommTime: a.CommTime, TPOT: a.TPOT, TPS: a.TPS,
		})
	}
	return rows, nil
}

// InferenceLimitsResult returns §2.3.2 as a structured table.
func InferenceLimitsResult() (*results.Table, error) {
	rows, err := InferenceLimits()
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§2.3.2: EP inference speed limits (paper: 120.96us/14.76ms/67 TPS IB; 6.72us/0.82ms/~1200 TPS NVL72)",
		results.C("Interconnect"), results.CU("Comm/step", "s"), results.CU("TPOT", "s"),
		results.CU("TPS", "tokens/s"))
	for _, r := range rows {
		t.Row(results.Str(r.Interconnect),
			results.Val(units.FormatSeconds(r.CommTime), float64(r.CommTime)),
			results.Val(units.FormatSeconds(r.TPOT), float64(r.TPOT)),
			results.Float("%.0f", r.TPS))
	}
	return t, nil
}

// RenderInferenceLimits renders §2.3.2 with paper references.
func RenderInferenceLimits() (string, error) {
	t, err := InferenceLimitsResult()
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// MTPResult reports §2.3.3.
type MTPResult struct {
	Analytic  float64
	Simulated float64
}

// MTPSpeedup reproduces the 1.8x MTP figure.
func MTPSpeedup(seed int64) (MTPResult, error) {
	cfg := mtp.V3Config()
	sim, err := mtp.Simulate(cfg, 100000, parallel.NewRand(seed))
	if err != nil {
		return MTPResult{}, err
	}
	return MTPResult{Analytic: cfg.ExpectedSpeedup(), Simulated: sim.Speedup}, nil
}

// MTPResultTables returns §2.3.3 as structured tables: the headline
// speedups plus the depth/acceptance extension sweep.
func MTPResultTables(seed int64) ([]*results.Table, error) {
	r, err := MTPSpeedup(seed)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§2.3.3: MTP speculative decoding (paper: 80-90% acceptance -> 1.8x TPS)",
		results.C("Quantity"), results.C("Value"))
	t.Row(results.Str("analytic speedup"), results.Float("%.3fx", r.Analytic))
	t.Row(results.Str("simulated speedup"), results.Float("%.3fx", r.Simulated))
	sweep := results.NewTable("Extension: MTP depth x acceptance sweep (analytic)",
		results.C("Modules"), results.C("p=0.75"), results.C("p=0.85"), results.C("p=0.95"))
	for _, d := range []int{1, 2, 3, 4} {
		pts := mtp.Sweep([]int{d}, []float64{0.75, 0.85, 0.95}, 1.0/61, 0.03)
		sweep.Row(results.Int(d), results.Float("%.2fx", pts[0].Speedup),
			results.Float("%.2fx", pts[1].Speedup), results.Float("%.2fx", pts[2].Speedup))
	}
	return []*results.Table{t, sweep}, nil
}

// RenderMTP renders the MTP result plus the depth/acceptance sweep.
func RenderMTP(seed int64) (string, error) {
	tables, err := MTPResultTables(seed)
	if err != nil {
		return "", err
	}
	return tables[0].Text() + "\n" + tables[1].Text(), nil
}

// FP8AccuracyResult reports the §2.4 toy-training validation.
type FP8AccuracyResult struct {
	BF16Loss, FP8FineLoss, FP8CoarseLoss float64
	FineGapPct, CoarseGapPct             float64
}

// FP8Accuracy trains the toy MLP under BF16 and both FP8 variants. The
// table reports only FinalLoss, so the arms evaluate just the FinalLoss
// tail window — bit-identical losses, three quarters fewer eval GEMMs.
func FP8Accuracy() (FP8AccuracyResult, error) {
	cfg := fp8train.DefaultConfig()
	cfg.EvalTailOnly = true
	rs, err := fp8train.Compare(cfg, []fp8train.Precision{fp8train.BF16, fp8train.FP8Fine, fp8train.FP8Coarse})
	if err != nil {
		return FP8AccuracyResult{}, err
	}
	return FP8AccuracyResult{
		BF16Loss:      rs[0].FinalLoss,
		FP8FineLoss:   rs[1].FinalLoss,
		FP8CoarseLoss: rs[2].FinalLoss,
		FineGapPct:    fp8train.RelativeLossGap(rs[1], rs[0]) * 100,
		CoarseGapPct:  fp8train.RelativeLossGap(rs[2], rs[0]) * 100,
	}, nil
}

// FP8AccuracyResultTable returns §2.4 as a structured table.
func FP8AccuracyResultTable() (*results.Table, error) {
	r, err := FP8Accuracy()
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§2.4/§3.1: FP8 training accuracy at toy scale (paper: relative loss vs BF16 < 0.25%)",
		results.C("Precision"), results.C("Final loss"), results.CU("Gap vs BF16", "%"))
	t.Row(results.Str("BF16"), results.Float("%.6f", r.BF16Loss), results.NA())
	t.Row(results.Str("FP8 fine-grained + promoted"), results.Float("%.6f", r.FP8FineLoss), results.Float("%.3f%%", r.FineGapPct))
	t.Row(results.Str("FP8 per-tensor, no promotion"), results.Float("%.6f", r.FP8CoarseLoss), results.Float("%.3f%%", r.CoarseGapPct))
	return t, nil
}

// RenderFP8Accuracy renders §2.4.
func RenderFP8Accuracy() (string, error) {
	t, err := FP8AccuracyResultTable()
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// AccumulationRow is one accumulator configuration of the §3.1.1 sweep.
type AccumulationRow struct {
	Name     string
	RelError float64
}

// AccumulationAblation sweeps accumulator precision on a long-K FP8
// GEMM with exact inputs, isolating the FP22-vs-FP32 effect.
func AccumulationAblation(seed int64) ([]AccumulationRow, error) {
	rng := parallel.NewRand(seed)
	exact := func(rows, cols int) *quant.Matrix {
		m := quant.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = quant.E4M3.Quantize(rng.NormFloat64())
		}
		m.Data[0] = 448
		return m
	}
	a := exact(8, 8192)
	b := exact(8192, 8)
	ref := gemm.Ref(a, b)

	configs := []struct {
		name string
		cfg  gemm.FP8Config
	}{
		{"FP22 register, no promotion (Hopper raw)", gemm.FP8Config{Format: quant.E4M3, Acc: quant.HopperFP8(), PerTensorScales: true}},
		{"FP22 register + FP32 promotion every 128 (DeepGEMM)", gemm.FP8Config{Format: quant.E4M3, Acc: quant.HopperFP8(), PromoteEvery: 128, PerTensorScales: true}},
		{"FP25-style register (16 frac bits), no promotion", gemm.FP8Config{Format: quant.E4M3, Acc: quant.Accumulator{GroupSize: 32, AlignFracBits: 16, RegisterMantBits: 16}, PerTensorScales: true}},
		{"FP32 register (suggested hardware), no promotion", gemm.FP8Config{Format: quant.E4M3, Acc: quant.FP32Reference(), PerTensorScales: true}},
	}
	return parallel.Map(len(configs), func(ci int) (AccumulationRow, error) {
		got := gemm.FP8(a, b, configs[ci].cfg)
		rel, err := stats.RMSRelativeError(got.Data, ref.Data)
		if err != nil {
			return AccumulationRow{}, err
		}
		return AccumulationRow{Name: configs[ci].name, RelError: rel}, nil
	})
}

// AccumulationAblationResult returns §3.1.1 as a structured table.
func AccumulationAblationResult(seed int64) (*results.Table, error) {
	rows, err := AccumulationAblation(seed)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§3.1.1: accumulation precision ablation (K=8192 FP8 GEMM, exact inputs)",
		results.C("Accumulator"), results.C("RMS rel error"))
	for _, r := range rows {
		t.Row(results.Str(r.Name), results.Float("%.2e", r.RelError))
	}
	return t, nil
}

// RenderAccumulationAblation renders §3.1.1.
func RenderAccumulationAblation(seed int64) (string, error) {
	t, err := AccumulationAblationResult(seed)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// LogFMTRow is one format of the §3.2 comparison.
type LogFMTRow struct {
	Format string
	SNRdB  float64
}

// LogFMTAccuracy compares LogFMT against FP8/BF16 on gaussian tiles.
func LogFMTAccuracy(seed int64) ([]LogFMTRow, error) {
	rng := parallel.NewRand(seed)
	const trials = 200
	tiles := make([][]float64, trials)
	for i := range tiles {
		t := make([]float64, 128)
		for j := range t {
			t[j] = rng.NormFloat64()
		}
		tiles[i] = t
	}
	meanSNR := func(roundtrip func([]float64) []float64) (float64, error) {
		var sum float64
		for _, tile := range tiles {
			snr, err := stats.SNRdB(tile, roundtrip(tile))
			if err != nil {
				return 0, err
			}
			sum += snr
		}
		return sum / trials, nil
	}
	rows := []struct {
		name string
		fn   func([]float64) []float64
	}{
		{"E4M3 (tile-scaled)", func(t []float64) []float64 { return quant.QuantizeTile(quant.E4M3, t).Values }},
		{"E5M2 (tile-scaled)", func(t []float64) []float64 { return quant.QuantizeTile(quant.E5M2, t).Values }},
		{"LogFMT-8", func(t []float64) []float64 { return logfmt.New(8).Roundtrip(t) }},
		{"LogFMT-10", func(t []float64) []float64 { return logfmt.New(10).Roundtrip(t) }},
		{"BF16", func(t []float64) []float64 {
			out := make([]float64, len(t))
			quant.BF16.QuantizeSlice(out, t)
			return out
		}},
	}
	// The tile set is drawn once (serially) above; the per-format
	// Monte-Carlo sweeps over it are independent and fan out.
	return parallel.Map(len(rows), func(ri int) (LogFMTRow, error) {
		snr, err := meanSNR(rows[ri].fn)
		if err != nil {
			return LogFMTRow{}, err
		}
		return LogFMTRow{Format: rows[ri].name, SNRdB: snr}, nil
	})
}

// LogFMTAccuracyResult returns §3.2 as a structured table.
func LogFMTAccuracyResult(seed int64) (*results.Table, error) {
	rows, err := LogFMTAccuracy(seed)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§3.2: LogFMT vs FP8/BF16 on 1x128 gaussian activation tiles (paper: LogFMT-8 beats E4M3/E5M2; LogFMT-10 ~ BF16 combine)",
		results.C("Format"), results.CU("Mean SNR (dB)", "dB"))
	for _, r := range rows {
		t.Row(results.Str(r.Format), results.Float("%.2f", r.SNRdB))
	}
	return t, nil
}

// RenderLogFMT renders §3.2.
func RenderLogFMT(seed int64) (string, error) {
	t, err := LogFMTAccuracyResult(seed)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}

// NodeLimitedRow is one gate configuration of the §4.3 study.
type NodeLimitedRow struct {
	Gate            string
	MeanNodes       float64
	MeanRemoteNodes float64
	MaxNodes        int
}

// NodeLimitedRouting quantifies the §4.3 IB-traffic deduplication on
// the reference 8-node, 64-GPU, 256-expert deployment.
func NodeLimitedRouting(seed int64) ([]NodeLimitedRow, error) {
	place := moe.Placement{Experts: 256, Nodes: 8, GPUsPerNode: 8}
	if err := place.Validate(); err != nil {
		return nil, err
	}
	gates := []struct {
		name string
		g    moe.Gate
	}{
		{"node-limited (4 groups)", moe.V3Gate()},
		{"unrestricted top-8", func() moe.Gate { g := moe.V3Gate(); g.GroupTopK = 0; return g }()},
	}
	// Each gate's 4000 Monte-Carlo trials chunk out over the worker
	// pool inside CollectStatsSeeded; the two gates fan out above them.
	return parallel.Map(len(gates), func(i int) (NodeLimitedRow, error) {
		st := moe.CollectStatsSeeded(gates[i].g, place, 4000, 0, nil, seed+int64(i))
		return NodeLimitedRow{
			Gate:            gates[i].name,
			MeanNodes:       st.MeanNodes,
			MeanRemoteNodes: st.MeanRemoteNodes,
			MaxNodes:        st.MaxNodes,
		}, nil
	})
}

// NodeLimitedRoutingResult returns §4.3 as a structured table.
func NodeLimitedRoutingResult(seed int64) (*results.Table, error) {
	rows, err := NodeLimitedRouting(seed)
	if err != nil {
		return nil, err
	}
	t := results.NewTable("§4.3: node-limited routing — deduplicated IB cost factor M (paper: M <= 4 vs up to 8)",
		results.C("Gate"), results.C("E[M]"), results.C("E[remote]"), results.C("max M"))
	for _, r := range rows {
		t.Row(results.Str(r.Gate), results.Float("%.2f", r.MeanNodes),
			results.Float("%.2f", r.MeanRemoteNodes), results.Int(r.MaxNodes))
	}
	return t, nil
}

// RenderNodeLimited renders §4.3.
func RenderNodeLimited(seed int64) (string, error) {
	t, err := NodeLimitedRoutingResult(seed)
	if err != nil {
		return "", err
	}
	return t.Text(), nil
}
