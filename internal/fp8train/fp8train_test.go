package fp8train

import (
	"testing"
)

func TestTrainingConverges(t *testing.T) {
	// The task is deliberately ill-conditioned (features spanning 2.5
	// decades), so the quiet directions converge slowly; the loud ones
	// drive a solid early loss drop. Expect >=25% reduction in 120
	// steps and a monotonically helpful trend.
	res, err := Train(DefaultConfig(), FP64)
	if err != nil {
		t.Fatal(err)
	}
	first := res.LossCurve[0]
	if res.FinalLoss >= first*0.75 {
		t.Errorf("training did not converge: first %v, final %v", first, res.FinalLoss)
	}
	longer := DefaultConfig()
	longer.Steps = 240
	res2, err := Train(longer, FP64)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalLoss >= res.FinalLoss {
		t.Errorf("more steps should keep improving: %v vs %v", res2.FinalLoss, res.FinalLoss)
	}
}

func TestFP8FineTracksBF16(t *testing.T) {
	// §2.4 at toy scale: the fine-grained FP8 recipe must track BF16
	// closely. The paper reports <0.25% on full LM loss; the toy task
	// is noisier, so we assert a 2% band and report the actual value in
	// EXPERIMENTS.md (typically well under 1%).
	cfg := DefaultConfig()
	bf, err := Train(cfg, BF16)
	if err != nil {
		t.Fatal(err)
	}
	fp8, err := Train(cfg, FP8Fine)
	if err != nil {
		t.Fatal(err)
	}
	gap := RelativeLossGap(fp8, bf)
	if gap > 0.02 {
		t.Errorf("FP8-fine vs BF16 relative loss gap %v exceeds 2%%", gap)
	}
}

func TestCoarseFP8Worse(t *testing.T) {
	cfg := DefaultConfig()
	bf, _ := Train(cfg, BF16)
	fine, _ := Train(cfg, FP8Fine)
	coarse, err := Train(cfg, FP8Coarse)
	if err != nil {
		t.Fatal(err)
	}
	if RelativeLossGap(coarse, bf) <= RelativeLossGap(fine, bf) {
		t.Errorf("coarse FP8 (gap %v) should be worse than fine-grained (gap %v)",
			RelativeLossGap(coarse, bf), RelativeLossGap(fine, bf))
	}
}

func TestBF16TracksFP64(t *testing.T) {
	cfg := DefaultConfig()
	ref, _ := Train(cfg, FP64)
	bf, _ := Train(cfg, BF16)
	if RelativeLossGap(bf, ref) > 0.02 {
		t.Errorf("BF16 vs FP64 gap %v too large", RelativeLossGap(bf, ref))
	}
}

func TestCompareOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 10
	rs, err := Compare(cfg, []Precision{FP64, BF16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Precision != FP64 || rs[1].Precision != BF16 {
		t.Error("Compare must preserve order")
	}
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 0
	if _, err := Train(cfg, FP64); err == nil {
		t.Error("zero steps must fail")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 20
	a, _ := Train(cfg, FP8Fine)
	b, _ := Train(cfg, FP8Fine)
	if a.FinalLoss != b.FinalLoss {
		t.Error("same seed must reproduce the run exactly")
	}
}

func TestPrecisionString(t *testing.T) {
	if FP64.String() != "FP64" || BF16.String() != "BF16" ||
		FP8Fine.String() != "FP8-fine" || FP8Coarse.String() != "FP8-coarse" {
		t.Error("precision names wrong")
	}
}
