package fp8train

import (
	"math"
	"testing"
)

// TestCompareMatchesIndependentTrains pins the shared-dataset hoist:
// Compare (one dataset, slab-reusing arms) must reproduce each
// independent Train bit for bit.
func TestCompareMatchesIndependentTrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 40
	precs := []Precision{FP64, BF16, FP8Fine, FP8Coarse}
	rs, err := Compare(cfg, precs)
	if err != nil {
		t.Fatal(err)
	}
	for i, prec := range precs {
		solo, err := Train(cfg, prec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(rs[i].FinalLoss) != math.Float64bits(solo.FinalLoss) {
			t.Fatalf("%v: Compare FinalLoss %g != Train %g", prec, rs[i].FinalLoss, solo.FinalLoss)
		}
		if len(rs[i].LossCurve) != len(solo.LossCurve) {
			t.Fatalf("%v: curve lengths differ", prec)
		}
		for s := range solo.LossCurve {
			if math.Float64bits(rs[i].LossCurve[s]) != math.Float64bits(solo.LossCurve[s]) {
				t.Fatalf("%v: step %d loss %g != %g", prec, s, rs[i].LossCurve[s], solo.LossCurve[s])
			}
		}
	}
}

// TestEvalTailOnlyFinalLossIdentical: skipping the out-of-window evals
// must leave FinalLoss bit-identical (evaluation never feeds training)
// and shrink LossCurve to the tail window.
func TestEvalTailOnlyFinalLossIdentical(t *testing.T) {
	for _, prec := range []Precision{BF16, FP8Fine} {
		full := DefaultConfig()
		res, err := Train(full, prec)
		if err != nil {
			t.Fatal(err)
		}
		tail := full
		tail.EvalTailOnly = true
		tailRes, err := Train(tail, prec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.FinalLoss) != math.Float64bits(tailRes.FinalLoss) {
			t.Fatalf("%v: EvalTailOnly FinalLoss %g != full %g", prec, tailRes.FinalLoss, res.FinalLoss)
		}
		want := tailSteps(full)
		if len(tailRes.LossCurve) != want {
			t.Fatalf("%v: tail curve has %d entries, want %d", prec, len(tailRes.LossCurve), want)
		}
		// The tail entries are the same evals as the full run's tail.
		fullTail := res.LossCurve[len(res.LossCurve)-want:]
		for i := range fullTail {
			if math.Float64bits(fullTail[i]) != math.Float64bits(tailRes.LossCurve[i]) {
				t.Fatalf("%v: tail eval %d differs", prec, i)
			}
		}
	}
}
