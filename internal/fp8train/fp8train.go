// Package fp8train validates the paper's §2.4/§3.1 accuracy claim at a
// toy scale that fits a CPU: training runs whose matrix multiplies go
// through the emulated FP8 pipeline (1×128 tile scales, 128×128 block
// scales, FP22 tensor-core accumulation with per-128 FP32 promotion)
// must track BF16 training within a fraction of a percent of final
// loss, while coarse per-tensor FP8 drifts further.
//
// The model is a two-layer MLP regression against a fixed random
// teacher network — small enough to train in seconds, structured enough
// (two GEMMs per forward, three per backward) to exercise every code
// path of internal/gemm.
package fp8train

import (
	"fmt"
	"math"
	"math/rand"

	"dsv3/internal/gemm"
	"dsv3/internal/parallel"
	"dsv3/internal/quant"
)

// Precision selects the GEMM implementation used for every matmul in
// the forward and backward pass. Master weights stay float64 (the
// mixed-precision convention).
type Precision int

const (
	// FP64 is the exact reference.
	FP64 Precision = iota
	// BF16 rounds operands to BF16 with FP32 accumulation.
	BF16
	// FP8Fine is DeepSeek-V3's recipe: E4M3, tile/block scales, FP22
	// accumulation, per-128 promotion.
	FP8Fine
	// FP8Coarse is the ablation: per-tensor scales, no promotion.
	FP8Coarse
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "FP64"
	case BF16:
		return "BF16"
	case FP8Fine:
		return "FP8-fine"
	case FP8Coarse:
		return "FP8-coarse"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// matmulInto dispatches C = A·B into a pre-shaped output through the
// shared GEMM workspace — the allocation-free form the training loop
// runs; arithmetic is identical to the allocating entry points.
func (p Precision) matmulInto(c, a, b *quant.Matrix, ws *gemm.Workspace) {
	switch p {
	case BF16:
		gemm.BF16Into(c, a, b, ws)
	case FP8Fine:
		gemm.FP8Into(c, a, b, gemm.DeepSeekV3Recipe(), ws)
	case FP8Coarse:
		cfg := gemm.DeepSeekV3Recipe()
		cfg.PerTensorScales = true
		cfg.PromoteEvery = 0
		gemm.FP8Into(c, a, b, cfg, ws)
	default:
		gemm.RefInto(c, a, b)
	}
}

// Config sizes the experiment.
type Config struct {
	In, Hidden, Out int
	Batch           int
	Steps           int
	LR              float64
	Seed            int64
	// EvalTailOnly skips the per-step eval pass outside the FinalLoss
	// averaging window (the last quarter of training). Evaluation never
	// feeds back into training, so FinalLoss is bit-identical either
	// way; only LossCurve shrinks to the tail window. Sweeps that read
	// nothing but FinalLoss (the §2.4 accuracy table) set this to skip
	// three quarters of the exact-arithmetic eval GEMMs.
	EvalTailOnly bool
}

// DefaultConfig returns a configuration that trains in a few seconds.
func DefaultConfig() Config {
	return Config{In: 64, Hidden: 128, Out: 8, Batch: 32, Steps: 120, LR: 0.5, Seed: 61}
}

// featureScales gives input features magnitudes spanning several
// decades — the outlier-channel structure of real LLM activations that
// motivates fine-grained quantization (§3.1). Feature i has scale
// 10^(-2 + 2.5·i/(n-1)), i.e. 1e-2 up to ~3.
func featureScales(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Pow(10, -2+2.5*float64(i)/float64(n-1))
	}
	return s
}

// Result is one training run's outcome.
type Result struct {
	Precision Precision
	// FinalLoss is the mean eval MSE over the last quarter of training.
	FinalLoss float64
	// LossCurve holds the eval loss per step.
	LossCurve []float64
}

type mlp struct {
	w1, w2 *quant.Matrix
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) *quant.Matrix {
	m := quant.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

// transposeInto writes mᵀ into a pre-shaped (m.Cols × m.Rows) matrix.
func transposeInto(out, m *quant.Matrix) {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*m.Rows+r] = v
		}
	}
}

func relu(m *quant.Matrix) (*quant.Matrix, *quant.Matrix) {
	out := quant.NewMatrix(m.Rows, m.Cols)
	mask := quant.NewMatrix(m.Rows, m.Cols)
	reluInto(out, mask, m)
	return out, mask
}

// reluInto writes relu(m) and its 0/1 mask into pre-shaped matrices.
// Every element is assigned (zeros included), so reused buffers carry
// nothing over.
func reluInto(out, mask, m *quant.Matrix) {
	for i, v := range m.Data {
		if v > 0 {
			out.Data[i] = v
			mask.Data[i] = 1
		} else {
			out.Data[i] = 0
			mask.Data[i] = 0
		}
	}
}

// dataset is the precision-independent part of one training
// configuration: the per-step training batches and their teacher
// targets, the eval set, and the initial student weights. Every arm of
// a Compare consumes the identical dataset, so generating it once and
// sharing it (read-only) hoists the teacher forward passes and all
// input sampling out of the per-arm trial loop — the arms' results are
// byte-identical to each arm regenerating the data itself, because
// generation draws from the same seeded stream in the same order.
type dataset struct {
	studentW1, studentW2 *quant.Matrix
	evalX, evalY         *quant.Matrix
	x, y                 []*quant.Matrix // per-step batches and targets
	xT                   []*quant.Matrix // per-step input transposes (dW1's A operand)
}

// genDataset draws the dataset from cfg.Seed, in the exact stream order
// the original single-arm trainer used: teacher weights, student
// weights, eval inputs, then one input batch per step.
func genDataset(cfg Config) *dataset {
	rng := parallel.NewRand(cfg.Seed)
	scales := featureScales(cfg.In)
	// Inputs carry the heterogeneous per-feature magnitudes; the
	// teacher's first layer undoes them (the way normalization layers
	// rebalance channels), so every feature matters equally for the
	// target — quiet features included.
	drawInput := func(rows int) *quant.Matrix {
		x := quant.NewMatrix(rows, cfg.In)
		for r := 0; r < rows; r++ {
			for c := 0; c < cfg.In; c++ {
				x.Set(r, c, rng.NormFloat64()*scales[c])
			}
		}
		return x
	}

	teacher := mlp{
		w1: randMatrix(rng, cfg.In, cfg.Hidden, 1/math.Sqrt(float64(cfg.In))),
		w2: randMatrix(rng, cfg.Hidden, cfg.Out, 1/math.Sqrt(float64(cfg.Hidden))),
	}
	for r := 0; r < cfg.In; r++ {
		for c := 0; c < cfg.Hidden; c++ {
			teacher.w1.Set(r, c, teacher.w1.At(r, c)/scales[r])
		}
	}
	target := func(x *quant.Matrix) *quant.Matrix {
		h, _ := relu(gemm.Ref(x, teacher.w1))
		return gemm.Ref(h, teacher.w2)
	}

	ds := &dataset{
		studentW1: randMatrix(rng, cfg.In, cfg.Hidden, 0.5/math.Sqrt(float64(cfg.In))),
		studentW2: randMatrix(rng, cfg.Hidden, cfg.Out, 0.5/math.Sqrt(float64(cfg.Hidden))),
	}
	ds.evalX = drawInput(cfg.Batch * 2)
	ds.evalY = target(ds.evalX)
	ds.x = make([]*quant.Matrix, cfg.Steps)
	ds.y = make([]*quant.Matrix, cfg.Steps)
	ds.xT = make([]*quant.Matrix, cfg.Steps)
	for step := 0; step < cfg.Steps; step++ {
		ds.x[step] = drawInput(cfg.Batch)
		ds.y[step] = target(ds.x[step])
		ds.xT[step] = quant.NewMatrix(cfg.In, cfg.Batch)
		transposeInto(ds.xT[step], ds.x[step])
	}
	return ds
}

// Train runs one configuration and returns the loss trajectory.
func Train(cfg Config, prec Precision) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	return trainArm(cfg, prec, genDataset(cfg)), nil
}

func (cfg Config) validate() error {
	if cfg.In <= 0 || cfg.Hidden <= 0 || cfg.Out <= 0 || cfg.Batch <= 0 || cfg.Steps <= 0 {
		return fmt.Errorf("fp8train: non-positive dimensions %+v", cfg)
	}
	return nil
}

// trainArm runs one precision arm over a shared read-only dataset. All
// loop matrices — activations, gradients, transposes, eval scratch —
// are preallocated slabs, and the precision matmuls run through one
// reused gemm.Workspace, so a step allocates nothing.
func trainArm(cfg Config, prec Precision, ds *dataset) Result {
	student := mlp{w1: ds.studentW1.Clone(), w2: ds.studentW2.Clone()}

	var ws gemm.Workspace
	h0 := quant.NewMatrix(cfg.Batch, cfg.Hidden)
	h := quant.NewMatrix(cfg.Batch, cfg.Hidden)
	mask := quant.NewMatrix(cfg.Batch, cfg.Hidden)
	pred := quant.NewMatrix(cfg.Batch, cfg.Out)
	dPred := quant.NewMatrix(cfg.Batch, cfg.Out)
	hT := quant.NewMatrix(cfg.Hidden, cfg.Batch)
	w2T := quant.NewMatrix(cfg.Out, cfg.Hidden)
	dW2 := quant.NewMatrix(cfg.Hidden, cfg.Out)
	dH := quant.NewMatrix(cfg.Batch, cfg.Hidden)
	dW1 := quant.NewMatrix(cfg.In, cfg.Hidden)
	eh0 := quant.NewMatrix(cfg.Batch*2, cfg.Hidden)
	eh := quant.NewMatrix(cfg.Batch*2, cfg.Hidden)
	emask := quant.NewMatrix(cfg.Batch*2, cfg.Hidden)
	ep := quant.NewMatrix(cfg.Batch*2, cfg.Out)

	res := Result{Precision: prec, LossCurve: make([]float64, 0, cfg.Steps)}
	for step := 0; step < cfg.Steps; step++ {
		x, y := ds.x[step], ds.y[step]

		// Forward in the selected precision.
		prec.matmulInto(h0, x, student.w1, &ws)
		reluInto(h, mask, h0)
		prec.matmulInto(pred, h, student.w2, &ws)

		// MSE gradient.
		n := float64(cfg.Batch * cfg.Out)
		for i := range dPred.Data {
			dPred.Data[i] = 2 * (pred.Data[i] - y.Data[i]) / n
		}

		// Backward, all matmuls in the selected precision.
		transposeInto(hT, h)
		prec.matmulInto(dW2, hT, dPred, &ws)
		transposeInto(w2T, student.w2)
		prec.matmulInto(dH, dPred, w2T, &ws)
		for i := range dH.Data {
			dH.Data[i] *= mask.Data[i]
		}
		prec.matmulInto(dW1, ds.xT[step], dH, &ws)

		// SGD on float64 master weights.
		for i := range student.w1.Data {
			student.w1.Data[i] -= cfg.LR * dW1.Data[i]
		}
		for i := range student.w2.Data {
			student.w2.Data[i] -= cfg.LR * dW2.Data[i]
		}

		// Eval loss (always exact arithmetic on the quantized-trained
		// weights: we measure what the training did, not eval noise).
		// Evaluation is pure measurement — it never feeds back into the
		// weight trajectory — so EvalTailOnly runs may skip it outside
		// the FinalLoss window without perturbing any training result.
		if cfg.EvalTailOnly && step < cfg.Steps-tailSteps(cfg) {
			continue
		}
		gemm.RefInto(eh0, ds.evalX, student.w1)
		reluInto(eh, emask, eh0)
		gemm.RefInto(ep, eh, student.w2)
		var loss float64
		for i := range ep.Data {
			d := ep.Data[i] - ds.evalY.Data[i]
			loss += d * d
		}
		loss /= float64(len(ep.Data))
		res.LossCurve = append(res.LossCurve, loss)
	}

	tail := tailSteps(cfg)
	var sum float64
	for _, l := range res.LossCurve[len(res.LossCurve)-tail:] {
		sum += l
	}
	res.FinalLoss = sum / float64(tail)
	return res
}

// tailSteps is the width of the FinalLoss averaging window: the last
// quarter of training, at least one step.
func tailSteps(cfg Config) int {
	tail := cfg.Steps / 4
	if tail < 1 {
		tail = 1
	}
	return tail
}

// Compare trains the same configuration under several precisions and
// returns results keyed by precision, in the given order. The dataset
// is generated once and shared read-only across the arms, which are
// otherwise fully independent and fan out over the parallel worker
// pool — results are identical to sequential per-arm training.
func Compare(cfg Config, precs []Precision) ([]Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds := genDataset(cfg)
	return parallel.Map(len(precs), func(i int) (Result, error) {
		return trainArm(cfg, precs[i], ds), nil
	})
}

// RelativeLossGap returns |a-b| / b — the §2.4 metric ("relative
// accuracy loss compared to BF16 remains below 0.25%") transplanted to
// the toy task.
func RelativeLossGap(a, b Result) float64 {
	if b.FinalLoss == 0 {
		return 0
	}
	gap := a.FinalLoss - b.FinalLoss
	if gap < 0 {
		gap = -gap
	}
	return gap / b.FinalLoss
}
