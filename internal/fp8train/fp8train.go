// Package fp8train validates the paper's §2.4/§3.1 accuracy claim at a
// toy scale that fits a CPU: training runs whose matrix multiplies go
// through the emulated FP8 pipeline (1×128 tile scales, 128×128 block
// scales, FP22 tensor-core accumulation with per-128 FP32 promotion)
// must track BF16 training within a fraction of a percent of final
// loss, while coarse per-tensor FP8 drifts further.
//
// The model is a two-layer MLP regression against a fixed random
// teacher network — small enough to train in seconds, structured enough
// (two GEMMs per forward, three per backward) to exercise every code
// path of internal/gemm.
package fp8train

import (
	"fmt"
	"math"
	"math/rand"

	"dsv3/internal/gemm"
	"dsv3/internal/parallel"
	"dsv3/internal/quant"
)

// Precision selects the GEMM implementation used for every matmul in
// the forward and backward pass. Master weights stay float64 (the
// mixed-precision convention).
type Precision int

const (
	// FP64 is the exact reference.
	FP64 Precision = iota
	// BF16 rounds operands to BF16 with FP32 accumulation.
	BF16
	// FP8Fine is DeepSeek-V3's recipe: E4M3, tile/block scales, FP22
	// accumulation, per-128 promotion.
	FP8Fine
	// FP8Coarse is the ablation: per-tensor scales, no promotion.
	FP8Coarse
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "FP64"
	case BF16:
		return "BF16"
	case FP8Fine:
		return "FP8-fine"
	case FP8Coarse:
		return "FP8-coarse"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

func (p Precision) matmul(a, b *quant.Matrix) *quant.Matrix {
	switch p {
	case BF16:
		return gemm.BF16(a, b)
	case FP8Fine:
		return gemm.FP8(a, b, gemm.DeepSeekV3Recipe())
	case FP8Coarse:
		cfg := gemm.DeepSeekV3Recipe()
		cfg.PerTensorScales = true
		cfg.PromoteEvery = 0
		return gemm.FP8(a, b, cfg)
	default:
		return gemm.Ref(a, b)
	}
}

// Config sizes the experiment.
type Config struct {
	In, Hidden, Out int
	Batch           int
	Steps           int
	LR              float64
	Seed            int64
}

// DefaultConfig returns a configuration that trains in a few seconds.
func DefaultConfig() Config {
	return Config{In: 64, Hidden: 128, Out: 8, Batch: 32, Steps: 120, LR: 0.5, Seed: 61}
}

// featureScales gives input features magnitudes spanning several
// decades — the outlier-channel structure of real LLM activations that
// motivates fine-grained quantization (§3.1). Feature i has scale
// 10^(-2 + 2.5·i/(n-1)), i.e. 1e-2 up to ~3.
func featureScales(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Pow(10, -2+2.5*float64(i)/float64(n-1))
	}
	return s
}

// Result is one training run's outcome.
type Result struct {
	Precision Precision
	// FinalLoss is the mean eval MSE over the last quarter of training.
	FinalLoss float64
	// LossCurve holds the eval loss per step.
	LossCurve []float64
}

type mlp struct {
	w1, w2 *quant.Matrix
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) *quant.Matrix {
	m := quant.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

func transpose(m *quant.Matrix) *quant.Matrix {
	out := quant.NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

func relu(m *quant.Matrix) (*quant.Matrix, *quant.Matrix) {
	out := quant.NewMatrix(m.Rows, m.Cols)
	mask := quant.NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			out.Data[i] = v
			mask.Data[i] = 1
		}
	}
	return out, mask
}

// Train runs one configuration and returns the loss trajectory.
func Train(cfg Config, prec Precision) (Result, error) {
	if cfg.In <= 0 || cfg.Hidden <= 0 || cfg.Out <= 0 || cfg.Batch <= 0 || cfg.Steps <= 0 {
		return Result{}, fmt.Errorf("fp8train: non-positive dimensions %+v", cfg)
	}
	rng := parallel.NewRand(cfg.Seed)
	scales := featureScales(cfg.In)
	// Inputs carry the heterogeneous per-feature magnitudes; the
	// teacher's first layer undoes them (the way normalization layers
	// rebalance channels), so every feature matters equally for the
	// target — quiet features included.
	drawInput := func(rows int) *quant.Matrix {
		x := quant.NewMatrix(rows, cfg.In)
		for r := 0; r < rows; r++ {
			for c := 0; c < cfg.In; c++ {
				x.Set(r, c, rng.NormFloat64()*scales[c])
			}
		}
		return x
	}

	teacher := mlp{
		w1: randMatrix(rng, cfg.In, cfg.Hidden, 1/math.Sqrt(float64(cfg.In))),
		w2: randMatrix(rng, cfg.Hidden, cfg.Out, 1/math.Sqrt(float64(cfg.Hidden))),
	}
	for r := 0; r < cfg.In; r++ {
		for c := 0; c < cfg.Hidden; c++ {
			teacher.w1.Set(r, c, teacher.w1.At(r, c)/scales[r])
		}
	}
	target := func(x *quant.Matrix) *quant.Matrix {
		h, _ := relu(gemm.Ref(x, teacher.w1))
		return gemm.Ref(h, teacher.w2)
	}

	student := mlp{
		w1: randMatrix(rng, cfg.In, cfg.Hidden, 0.5/math.Sqrt(float64(cfg.In))),
		w2: randMatrix(rng, cfg.Hidden, cfg.Out, 0.5/math.Sqrt(float64(cfg.Hidden))),
	}

	evalX := drawInput(cfg.Batch * 2)
	evalY := target(evalX)

	res := Result{Precision: prec}
	for step := 0; step < cfg.Steps; step++ {
		x := drawInput(cfg.Batch)
		y := target(x)

		// Forward in the selected precision.
		h0 := prec.matmul(x, student.w1)
		h, mask := relu(h0)
		pred := prec.matmul(h, student.w2)

		// MSE gradient.
		dPred := quant.NewMatrix(cfg.Batch, cfg.Out)
		n := float64(cfg.Batch * cfg.Out)
		for i := range dPred.Data {
			dPred.Data[i] = 2 * (pred.Data[i] - y.Data[i]) / n
		}

		// Backward, all matmuls in the selected precision.
		dW2 := prec.matmul(transpose(h), dPred)
		dH := prec.matmul(dPred, transpose(student.w2))
		for i := range dH.Data {
			dH.Data[i] *= mask.Data[i]
		}
		dW1 := prec.matmul(transpose(x), dH)

		// SGD on float64 master weights.
		for i := range student.w1.Data {
			student.w1.Data[i] -= cfg.LR * dW1.Data[i]
		}
		for i := range student.w2.Data {
			student.w2.Data[i] -= cfg.LR * dW2.Data[i]
		}

		// Eval loss (always exact arithmetic on the quantized-trained
		// weights: we measure what the training did, not eval noise).
		eh, _ := relu(gemm.Ref(evalX, student.w1))
		ep := gemm.Ref(eh, student.w2)
		var loss float64
		for i := range ep.Data {
			d := ep.Data[i] - evalY.Data[i]
			loss += d * d
		}
		loss /= float64(len(ep.Data))
		res.LossCurve = append(res.LossCurve, loss)
	}

	tail := cfg.Steps / 4
	if tail < 1 {
		tail = 1
	}
	var sum float64
	for _, l := range res.LossCurve[cfg.Steps-tail:] {
		sum += l
	}
	res.FinalLoss = sum / float64(tail)
	return res, nil
}

// Compare trains the same configuration under several precisions and
// returns results keyed by precision, in the given order. The arms are
// fully independent (each Train seeds its own RNG from cfg.Seed), so
// they fan out over the parallel worker pool with results identical to
// sequential training.
func Compare(cfg Config, precs []Precision) ([]Result, error) {
	return parallel.Map(len(precs), func(i int) (Result, error) {
		return Train(cfg, precs[i])
	})
}

// RelativeLossGap returns |a-b| / b — the §2.4 metric ("relative
// accuracy loss compared to BF16 remains below 0.25%") transplanted to
// the toy task.
func RelativeLossGap(a, b Result) float64 {
	if b.FinalLoss == 0 {
		return 0
	}
	gap := a.FinalLoss - b.FinalLoss
	if gap < 0 {
		gap = -gap
	}
	return gap / b.FinalLoss
}
