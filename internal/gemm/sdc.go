package gemm

import (
	"math"
	"math/rand"

	"dsv3/internal/quant"
)

// This file implements the checksum-based validation the paper's §6.1.2
// recommends against silent data corruption (SDC): multi-bit flips and
// computational errors that slip past ECC and "propagate undetected and
// corrupt downstream computations". Freivalds' verification checks
// C = A·B in O(n²) — per-GEMM cost proportional to one extra GEMV —
// with failure probability ≤ 2^-trials for random sign vectors, which
// is exactly the application-level redundancy check a training job can
// afford to run continuously.

// VerifyGEMM probabilistically checks that c = a·b. It draws `trials`
// random ±1 vectors r and compares a·(b·r) against c·r. tol absorbs the
// floating-point noise of honest low-precision GEMMs: the comparison is
// |diff| <= tol·(|a||b||r| scale); corrupted entries produce residuals
// orders of magnitude above it.
func VerifyGEMM(a, b, c *quant.Matrix, trials int, tol float64, rng *rand.Rand) bool {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return false
	}
	n := b.Cols
	// The trial vectors are fully overwritten each round, so one
	// allocation serves every trial.
	r := make([]float64, n)
	br := make([]float64, b.Rows)
	for t := 0; t < trials; t++ {
		for i := range r {
			if rng.Intn(2) == 0 {
				r[i] = 1
			} else {
				r[i] = -1
			}
		}
		// br = b·r (k), then abr = a·br (m); cr = c·r (m).
		for i := 0; i < b.Rows; i++ {
			row := b.Row(i)
			var s float64
			for j, rv := range r {
				s += row[j] * rv
			}
			br[i] = s
		}
		// Scale reference for the tolerance: ||a||_inf ||b·r||_inf.
		var scale float64
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			var s, rowAbs float64
			for k, av := range row {
				s += av * br[k]
				rowAbs += math.Abs(av) * math.Abs(br[k])
			}
			crow := c.Row(i)
			var cr float64
			for j, rv := range r {
				cr += crow[j] * rv
			}
			scale = rowAbs + math.Abs(cr)
			if math.Abs(s-cr) > tol*scale+1e-30 {
				return false
			}
		}
	}
	return true
}

// InjectFault flips one value of the matrix to simulate a silent
// corruption (a large single-element error, the multi-bit-flip case the
// paper worries about). Returns the corrupted copy.
func InjectFault(m *quant.Matrix, row, col int, delta float64) *quant.Matrix {
	out := m.Clone()
	out.Set(row, col, out.At(row, col)+delta)
	return out
}
