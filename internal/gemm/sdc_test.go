package gemm

import (
	"math/rand"
	"testing"

	"dsv3/internal/quant"
)

func TestVerifyGEMMAcceptsCorrectProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := randMatrix(rng, 24, 96, 1)
	b := randMatrix(rng, 96, 24, 1)
	c := Ref(a, b)
	if !VerifyGEMM(a, b, c, 8, 1e-9, rng) {
		t.Error("exact product must verify")
	}
}

func TestVerifyGEMMAcceptsLowPrecisionProduct(t *testing.T) {
	// Honest BF16/FP8 rounding noise must pass with a matching
	// tolerance — SDC detection must not flag normal quantization.
	rng := rand.New(rand.NewSource(72))
	a := randMatrix(rng, 16, 256, 1)
	b := randMatrix(rng, 256, 16, 1)
	if !VerifyGEMM(a, b, BF16(a, b), 8, 1e-2, rng) {
		t.Error("BF16 product should verify at matching tolerance")
	}
	if !VerifyGEMM(a, b, FP8(a, b, DeepSeekV3Recipe()), 8, 0.2, rng) {
		t.Error("FP8 product should verify at matching tolerance")
	}
}

func TestVerifyGEMMDetectsInjectedFault(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := randMatrix(rng, 24, 96, 1)
	b := randMatrix(rng, 96, 24, 1)
	c := Ref(a, b)
	// A multi-bit-flip-sized corruption in one output element.
	bad := InjectFault(c, 5, 7, 1000)
	if VerifyGEMM(a, b, bad, 8, 1e-6, rng) {
		t.Error("large injected fault must be detected")
	}
	// Even a modest corruption is caught: Freivalds residuals of a
	// single corrupted element do not cancel across ±1 probes.
	small := InjectFault(c, 3, 3, 1.5)
	if VerifyGEMM(a, b, small, 8, 1e-6, rng) {
		t.Error("moderate injected fault must be detected")
	}
}

func TestVerifyGEMMDetectsInputCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := randMatrix(rng, 16, 64, 1)
	b := randMatrix(rng, 64, 16, 1)
	c := Ref(a, b)
	badA := InjectFault(a, 2, 2, 500)
	// C no longer matches the (corrupted) inputs.
	if VerifyGEMM(badA, b, c, 8, 1e-6, rng) {
		t.Error("input corruption must surface as verification failure")
	}
}

func TestVerifyGEMMRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	a := randMatrix(rng, 4, 8, 1)
	b := randMatrix(rng, 8, 4, 1)
	c := quant.NewMatrix(5, 4) // wrong rows
	if VerifyGEMM(a, b, c, 2, 1e-9, rng) {
		t.Error("shape mismatch must fail verification")
	}
}

func TestInjectFaultIsNonDestructive(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	m := randMatrix(rng, 4, 4, 1)
	orig := m.At(1, 1)
	out := InjectFault(m, 1, 1, 7)
	if m.At(1, 1) != orig {
		t.Error("InjectFault must not mutate the input")
	}
	if out.At(1, 1) != orig+7 {
		t.Error("InjectFault must apply the delta")
	}
}

// The trial vectors are hoisted out of the trial loop, so one verify
// pass allocates exactly its two scratch vectors no matter how many
// trials it runs.
func TestVerifyGEMMAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := randMatrix(rng, 24, 96, 1)
	b := randMatrix(rng, 96, 24, 1)
	c := Ref(a, b)
	allocs := testing.AllocsPerRun(10, func() {
		if !VerifyGEMM(a, b, c, 16, 1e-9, rng) {
			t.Fatal("exact product must verify")
		}
	})
	if allocs > 2 {
		t.Errorf("VerifyGEMM allocated %.0f times per call, want <= 2", allocs)
	}
}

// Verdicts are a pure function of the RNG stream: reseeding reproduces
// the same sign vectors and the same accept/reject outcome, so the
// buffer hoist cannot have changed the draw order.
func TestVerifyGEMMDeterministic(t *testing.T) {
	a := randMatrix(rand.New(rand.NewSource(75)), 24, 96, 1)
	b := randMatrix(rand.New(rand.NewSource(76)), 96, 24, 1)
	c := Ref(a, b)
	bad := InjectFault(c, 3, 3, 1e6)
	for i := 0; i < 4; i++ {
		if !VerifyGEMM(a, b, c, 8, 1e-9, rand.New(rand.NewSource(77))) {
			t.Fatal("exact product must verify")
		}
		if VerifyGEMM(a, b, bad, 8, 1e-9, rand.New(rand.NewSource(77))) {
			t.Fatal("corrupted product must fail")
		}
	}
}
