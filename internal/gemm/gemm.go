// Package gemm implements the matrix-multiplication paths used by the
// FP8 training study (§2.4, §3.1): a float64 reference, a BF16 path with
// FP32 accumulation, and an FP8 path that reproduces DeepSeek-V3's
// fine-grained recipe — 1×128 tile-wise activation scales, 128×128
// block-wise weight scales, simulated Hopper FP22 tensor-core partial
// sums, and per-128 promotion into an FP32 accumulator (the DeepGEMM
// strategy).
//
// The matrices here are small by GPU standards; the point is numerical
// fidelity, not speed. The error measurements these paths produce are
// the artifact the paper's accuracy claims rest on.
package gemm

import (
	"fmt"

	"dsv3/internal/quant"
)

// Ref computes C = A·B in float64. A is m×k, B is k×n.
func Ref(a, b *quant.Matrix) *quant.Matrix {
	checkShapes(a, b)
	c := quant.NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for kk := 0; kk < a.Cols; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Row(kk)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// BF16 computes C = quantize(A)·quantize(B) with float32 accumulation —
// the baseline precision DeepSeek-V3's FP8 recipe is compared against.
// The loop runs i-k-j over row slices with a reused float32 accumulator
// row; per output element the adds still happen in ascending-k order,
// so results are bit-identical to the naive i-j-k form.
func BF16(a, b *quant.Matrix) *quant.Matrix {
	checkShapes(a, b)
	qa := quantizeAll(quant.BF16, a)
	qb := quantizeAll(quant.BF16, b)
	c := quant.NewMatrix(a.Rows, b.Cols)
	acc := make([]float32, b.Cols)
	for i := 0; i < a.Rows; i++ {
		clear(acc)
		arow := qa.Row(i)
		for kk := 0; kk < a.Cols; kk++ {
			av := float32(arow[kk])
			brow := qb.Row(kk)
			for j, bv := range brow {
				acc[j] += av * float32(bv)
			}
		}
		crow := c.Row(i)
		for j, v := range acc {
			crow[j] = float64(v)
		}
	}
	return c
}

// FP8Config selects the quantization granularity and accumulation path
// of an FP8 GEMM.
type FP8Config struct {
	// Format is the FP8 element format (normally E4M3).
	Format quant.Format
	// Acc is the simulated tensor-core accumulator.
	Acc quant.Accumulator
	// PromoteEvery promotes tensor-core partials to FP32 every this many
	// K elements (128 in DeepGEMM). Zero disables promotion: the whole K
	// reduction stays in the tensor-core register, which is exactly the
	// hazardous configuration §3.1.1 warns about.
	PromoteEvery int
	// PerTensorScales switches to one scale per tensor instead of
	// tile/block scales — the coarse-granularity ablation.
	PerTensorScales bool
}

// DeepSeekV3Recipe returns the configuration matching the production
// recipe: E4M3, Hopper FP22 accumulation, promotion every 128.
func DeepSeekV3Recipe() FP8Config {
	return FP8Config{Format: quant.E4M3, Acc: quant.HopperFP8(), PromoteEvery: 128}
}

// Validate reports whether the configuration is self-consistent.
// Fine-grained (tile/block) scales require promotion chunks that never
// straddle a tile boundary: scaling factors can only be applied when a
// partial sum leaves the tensor core, which is precisely the hardware
// coupling §3.1.1 describes. Without promotion, only per-tensor scales
// are expressible.
func (cfg FP8Config) Validate() error {
	if cfg.PerTensorScales {
		return nil
	}
	if cfg.PromoteEvery <= 0 {
		return errNoPromotionNeedsPerTensor
	}
	if quant.TileWidth%cfg.PromoteEvery != 0 {
		return errChunkStraddlesTile
	}
	return nil
}

var (
	errNoPromotionNeedsPerTensor = fmt.Errorf("gemm: fine-grained scales require promotion (set PerTensorScales or PromoteEvery)")
	errChunkStraddlesTile        = fmt.Errorf("gemm: PromoteEvery must divide the %d-wide quantization tile", quant.TileWidth)
)

// FP8 computes C = A·B under the given FP8 configuration. Activations
// (A) are quantized per 1×128 tile along K; weights (B) per 128×128
// block. Partial products run through the simulated tensor-core
// accumulator; scales multiply each promoted partial on the simulated
// CUDA cores. The configuration must pass Validate.
func FP8(a, b *quant.Matrix, cfg FP8Config) *quant.Matrix {
	checkShapes(a, b)
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := a.Cols
	promote := cfg.PromoteEvery
	if promote <= 0 {
		promote = k
	}

	// Quantize A row-by-row into raw FP8 codes plus per-tile scales
	// (flat buffer, tilesPerRow entries per row). The raw (unscaled)
	// codes are what the tensor cores see.
	aCodes := quant.NewMatrix(a.Rows, a.Cols)
	tilesPerRow := (k + quant.TileWidth - 1) / quant.TileWidth
	aScales := make([]float64, a.Rows*tilesPerRow)
	if cfg.PerTensorScales {
		// One scale for the whole activation tensor — the coarse baseline.
		scale := quant.QuantizeTileCodes(cfg.Format, a.Data, aCodes.Data)
		for i := range aScales {
			aScales[i] = scale
		}
	} else {
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			codes := aCodes.Row(i)
			for ti := 0; ti < tilesPerRow; ti++ {
				lo := ti * quant.TileWidth
				hi := lo + quant.TileWidth
				if hi > k {
					hi = k
				}
				aScales[i*tilesPerRow+ti] = quant.QuantizeTileCodes(cfg.Format, row[lo:hi], codes[lo:hi])
			}
		}
	}

	// Quantize B per 128×128 block into raw codes; the block scale joins
	// the tile scale in the single per-promotion dequantization multiply.
	blockCols := quant.TileWidth
	if cfg.PerTensorScales {
		blockCols = b.Cols
	}
	blockRows := quant.TileWidth
	if cfg.PerTensorScales {
		blockRows = b.Rows
	}
	bCodes := quant.NewMatrix(b.Rows, b.Cols)
	bScales := quant.QuantizeBlockCodes(cfg.Format, b, blockRows, blockCols, bCodes)
	blocksPerRow := (b.Cols + blockCols - 1) / blockCols

	// Transpose the B codes so the inner dot products read both
	// operands contiguously instead of striding down a column.
	bT := quant.NewMatrix(b.Cols, b.Rows)
	for r := 0; r < b.Rows; r++ {
		row := bCodes.Row(r)
		for j, v := range row {
			bT.Data[j*b.Rows+r] = v
		}
	}

	groupSize := cfg.Acc.GroupSize
	if groupSize <= 0 {
		groupSize = 32
	}
	c := quant.NewMatrix(a.Rows, b.Cols)
	scratch := make([]float64, 0, groupSize)
	for i := 0; i < a.Rows; i++ {
		codesRow := aCodes.Row(i)
		cRow := c.Row(i)
		for j := 0; j < b.Cols; j++ {
			var acc float32
			jBlock := j / blockCols
			bCol := bT.Row(j)
			for start := 0; start < k; start += promote {
				end := start + promote
				if end > k {
					end = k
				}
				x := codesRow[start:end]
				yy := bCol[start:end]
				partial := cfg.Acc.DotProductScratch(x, yy, scratch)
				// Dequantize: tile and block scales are constant across a
				// 128-aligned chunk, so one multiply per promotion.
				scale := aScales[i*tilesPerRow+start/quant.TileWidth] * bScales[(start/blockRows)*blocksPerRow+jBlock]
				if cfg.PromoteEvery <= 0 {
					// No promotion: stay in the tensor-core register the
					// whole way; apply scale at the very end.
					acc = float32(partial * scale)
				} else {
					acc += float32(partial * scale)
				}
			}
			cRow[j] = float64(acc)
		}
	}
	return c
}

func checkShapes(a, b *quant.Matrix) {
	if a.Cols != b.Rows {
		panic("gemm: inner dimensions do not match")
	}
}

// quantizeAll rounds every element of m to the format, elementwise with
// no scaling — appropriate for BF16, whose dynamic range needs no scales.
func quantizeAll(f quant.Format, m *quant.Matrix) *quant.Matrix {
	out := quant.NewMatrix(m.Rows, m.Cols)
	f.QuantizeSlice(out.Data, m.Data)
	return out
}
