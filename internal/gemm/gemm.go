// Package gemm implements the matrix-multiplication paths used by the
// FP8 training study (§2.4, §3.1): a float64 reference, a BF16 path with
// FP32 accumulation, and an FP8 path that reproduces DeepSeek-V3's
// fine-grained recipe — 1×128 tile-wise activation scales, 128×128
// block-wise weight scales, simulated Hopper FP22 tensor-core partial
// sums, and per-128 promotion into an FP32 accumulator (the DeepGEMM
// strategy).
//
// The matrices here are small by GPU standards; the point is numerical
// fidelity, not speed. The error measurements these paths produce are
// the artifact the paper's accuracy claims rest on.
package gemm

import (
	"fmt"

	"dsv3/internal/quant"
)

// Workspace owns the intermediate buffers of the quantizing GEMM paths
// (quantized operand codes, scale vectors, the transposed-B layout, the
// accumulator rows), so a training loop can run thousands of matmuls
// without per-call matrix allocation. The zero value is ready to use;
// buffers grow to the largest shapes seen and are reused. A Workspace
// is not safe for concurrent use. Results are bit-identical to the
// workspace-free entry points — every buffer is fully overwritten (or
// explicitly cleared) before it is read.
type Workspace struct {
	qa, qb, aCodes, bCodes, bT quant.Matrix
	aScales, bScales           []float64
	acc                        []float32
	scratch                    []float64
}

// shape resizes m to rows×cols, reusing its backing array when large
// enough. The contents are unspecified; callers overwrite them fully.
func shape(m *quant.Matrix, rows, cols int) *quant.Matrix {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// growFloats returns s resized to n entries (contents unspecified).
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Ref computes C = A·B in float64. A is m×k, B is k×n.
func Ref(a, b *quant.Matrix) *quant.Matrix {
	c := quant.NewMatrix(a.Rows, b.Cols)
	RefInto(c, a, b)
	return c
}

// RefInto computes C = A·B in float64 into a caller-owned matrix, which
// must be pre-shaped to a.Rows × b.Cols (contents are overwritten).
func RefInto(c, a, b *quant.Matrix) {
	checkShapes(a, b)
	checkOut(c, a, b)
	clear(c.Data)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for kk := 0; kk < a.Cols; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Row(kk)[:len(crow)] // bounds-check hint: same length
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// BF16 computes C = quantize(A)·quantize(B) with float32 accumulation —
// the baseline precision DeepSeek-V3's FP8 recipe is compared against.
func BF16(a, b *quant.Matrix) *quant.Matrix {
	c := quant.NewMatrix(a.Rows, b.Cols)
	BF16Into(c, a, b, &Workspace{})
	return c
}

// BF16Into is BF16 with caller-owned output and workspace. The loop
// runs i-k-j over row slices with a reused float32 accumulator row; per
// output element the adds still happen in ascending-k order, so results
// are bit-identical to the naive i-j-k form.
func BF16Into(c, a, b *quant.Matrix, ws *Workspace) {
	checkShapes(a, b)
	checkOut(c, a, b)
	qa := shape(&ws.qa, a.Rows, a.Cols)
	quant.BF16.QuantizeSlice(qa.Data, a.Data)
	qb := shape(&ws.qb, b.Rows, b.Cols)
	quant.BF16.QuantizeSlice(qb.Data, b.Data)
	if cap(ws.acc) < b.Cols {
		ws.acc = make([]float32, b.Cols)
	}
	acc := ws.acc[:b.Cols]
	for i := 0; i < a.Rows; i++ {
		clear(acc)
		arow := qa.Row(i)
		for kk := 0; kk < a.Cols; kk++ {
			av := float32(arow[kk])
			brow := qb.Row(kk)
			for j, bv := range brow {
				acc[j] += av * float32(bv)
			}
		}
		crow := c.Row(i)
		for j, v := range acc {
			crow[j] = float64(v)
		}
	}
}

// FP8Config selects the quantization granularity and accumulation path
// of an FP8 GEMM.
type FP8Config struct {
	// Format is the FP8 element format (normally E4M3).
	Format quant.Format
	// Acc is the simulated tensor-core accumulator.
	Acc quant.Accumulator
	// PromoteEvery promotes tensor-core partials to FP32 every this many
	// K elements (128 in DeepGEMM). Zero disables promotion: the whole K
	// reduction stays in the tensor-core register, which is exactly the
	// hazardous configuration §3.1.1 warns about.
	PromoteEvery int
	// PerTensorScales switches to one scale per tensor instead of
	// tile/block scales — the coarse-granularity ablation.
	PerTensorScales bool
}

// DeepSeekV3Recipe returns the configuration matching the production
// recipe: E4M3, Hopper FP22 accumulation, promotion every 128.
func DeepSeekV3Recipe() FP8Config {
	return FP8Config{Format: quant.E4M3, Acc: quant.HopperFP8(), PromoteEvery: 128}
}

// Validate reports whether the configuration is self-consistent.
// Fine-grained (tile/block) scales require promotion chunks that never
// straddle a tile boundary: scaling factors can only be applied when a
// partial sum leaves the tensor core, which is precisely the hardware
// coupling §3.1.1 describes. Without promotion, only per-tensor scales
// are expressible.
func (cfg FP8Config) Validate() error {
	if cfg.PerTensorScales {
		return nil
	}
	if cfg.PromoteEvery <= 0 {
		return errNoPromotionNeedsPerTensor
	}
	if quant.TileWidth%cfg.PromoteEvery != 0 {
		return errChunkStraddlesTile
	}
	return nil
}

var (
	errNoPromotionNeedsPerTensor = fmt.Errorf("gemm: fine-grained scales require promotion (set PerTensorScales or PromoteEvery)")
	errChunkStraddlesTile        = fmt.Errorf("gemm: PromoteEvery must divide the %d-wide quantization tile", quant.TileWidth)
)

// FP8 computes C = A·B under the given FP8 configuration. Activations
// (A) are quantized per 1×128 tile along K; weights (B) per 128×128
// block. Partial products run through the simulated tensor-core
// accumulator; scales multiply each promoted partial on the simulated
// CUDA cores. The configuration must pass Validate.
func FP8(a, b *quant.Matrix, cfg FP8Config) *quant.Matrix {
	c := quant.NewMatrix(a.Rows, b.Cols)
	FP8Into(c, a, b, cfg, &Workspace{})
	return c
}

// FP8Into is FP8 with caller-owned output and workspace: the quantized
// code matrices, scale vectors, transposed-B layout and tensor-core
// scratch all live in ws and are reused across calls.
func FP8Into(c, a, b *quant.Matrix, cfg FP8Config, ws *Workspace) {
	checkShapes(a, b)
	checkOut(c, a, b)
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := a.Cols
	promote := cfg.PromoteEvery
	if promote <= 0 {
		promote = k
	}

	// Quantize A row-by-row into raw FP8 codes plus per-tile scales
	// (flat buffer, tilesPerRow entries per row). The raw (unscaled)
	// codes are what the tensor cores see.
	aCodes := shape(&ws.aCodes, a.Rows, a.Cols)
	tilesPerRow := (k + quant.TileWidth - 1) / quant.TileWidth
	ws.aScales = growFloats(ws.aScales, a.Rows*tilesPerRow)
	aScales := ws.aScales
	if cfg.PerTensorScales {
		// One scale for the whole activation tensor — the coarse baseline.
		scale := quant.QuantizeTileCodes(cfg.Format, a.Data, aCodes.Data)
		for i := range aScales {
			aScales[i] = scale
		}
	} else {
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			codes := aCodes.Row(i)
			for ti := 0; ti < tilesPerRow; ti++ {
				lo := ti * quant.TileWidth
				hi := lo + quant.TileWidth
				if hi > k {
					hi = k
				}
				aScales[i*tilesPerRow+ti] = quant.QuantizeTileCodes(cfg.Format, row[lo:hi], codes[lo:hi])
			}
		}
	}

	// Quantize B per 128×128 block into raw codes; the block scale joins
	// the tile scale in the single per-promotion dequantization multiply.
	blockCols := quant.TileWidth
	if cfg.PerTensorScales {
		blockCols = b.Cols
	}
	blockRows := quant.TileWidth
	if cfg.PerTensorScales {
		blockRows = b.Rows
	}
	bCodes := shape(&ws.bCodes, b.Rows, b.Cols)
	ws.bScales = quant.QuantizeBlockCodesScratch(cfg.Format, b, blockRows, blockCols, bCodes, ws.bScales)
	bScales := ws.bScales
	blocksPerRow := (b.Cols + blockCols - 1) / blockCols

	// Transpose the B codes so the inner dot products read both
	// operands contiguously instead of striding down a column.
	bT := shape(&ws.bT, b.Cols, b.Rows)
	for r := 0; r < b.Rows; r++ {
		row := bCodes.Row(r)
		for j, v := range row {
			bT.Data[j*b.Rows+r] = v
		}
	}

	groupSize := cfg.Acc.GroupSize
	if groupSize <= 0 {
		groupSize = 32
	}
	ws.scratch = growFloats(ws.scratch, groupSize)
	scratch := ws.scratch[:0]
	for i := 0; i < a.Rows; i++ {
		codesRow := aCodes.Row(i)
		cRow := c.Row(i)
		for j := 0; j < b.Cols; j++ {
			var acc float32
			jBlock := j / blockCols
			bCol := bT.Row(j)
			for start := 0; start < k; start += promote {
				end := start + promote
				if end > k {
					end = k
				}
				x := codesRow[start:end]
				yy := bCol[start:end]
				partial := cfg.Acc.DotProductScratch(x, yy, scratch)
				// Dequantize: tile and block scales are constant across a
				// 128-aligned chunk, so one multiply per promotion.
				scale := aScales[i*tilesPerRow+start/quant.TileWidth] * bScales[(start/blockRows)*blocksPerRow+jBlock]
				if cfg.PromoteEvery <= 0 {
					// No promotion: stay in the tensor-core register the
					// whole way; apply scale at the very end.
					acc = float32(partial * scale)
				} else {
					acc += float32(partial * scale)
				}
			}
			cRow[j] = float64(acc)
		}
	}
}

func checkShapes(a, b *quant.Matrix) {
	if a.Cols != b.Rows {
		panic("gemm: inner dimensions do not match")
	}
}

func checkOut(c, a, b *quant.Matrix) {
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic("gemm: output shape does not match operands")
	}
}
