package gemm

import (
	"math/rand"
	"testing"

	"dsv3/internal/quant"
	"dsv3/internal/stats"
)

func randMatrix(rng *rand.Rand, rows, cols int, sigma float64) *quant.Matrix {
	m := quant.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
	return m
}

func TestRefGEMMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randMatrix(rng, 8, 8, 1)
	id := quant.NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	c := Ref(a, id)
	for i := range c.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestRefGEMMKnownValues(t *testing.T) {
	a := quant.NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := quant.NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := Ref(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("C[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	Ref(quant.NewMatrix(2, 3), quant.NewMatrix(2, 2))
}

func TestBF16GEMMCloseToRef(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randMatrix(rng, 16, 512, 1)
	b := randMatrix(rng, 512, 16, 1)
	ref := Ref(a, b)
	got := BF16(a, b)
	rel, err := stats.RMSRelativeError(got.Data, ref.Data)
	if err != nil {
		t.Fatal(err)
	}
	// BF16 inputs carry ~2^-8 relative noise; the accumulated GEMM error
	// stays below ~1% on these shapes.
	if rel > 0.01 {
		t.Errorf("BF16 GEMM error %v too large", rel)
	}
}

func TestFP8RecipeCloseToBF16(t *testing.T) {
	// §2.4: the FP8 recipe (fine-grained scaling + promotion) keeps the
	// relative loss below 0.25% of BF16's result quality. At the GEMM
	// level, check the FP8 output is within a small factor of BF16's
	// distance from the float64 reference.
	rng := rand.New(rand.NewSource(33))
	a := randMatrix(rng, 32, 1024, 1)
	b := randMatrix(rng, 1024, 32, 1)
	ref := Ref(a, b)
	fp8 := FP8(a, b, DeepSeekV3Recipe())
	relFP8, _ := stats.RMSRelativeError(fp8.Data, ref.Data)
	if relFP8 > 0.05 {
		t.Errorf("FP8 recipe GEMM error %v too large", relFP8)
	}
}

func TestFP8FineGrainedBeatsPerTensorWithOutliers(t *testing.T) {
	// Activation outliers are why DeepSeek-V3 uses 1×128 tiles. The
	// damage mechanism is underflow: a shared scale pinned by an outlier
	// token pushes quiet tokens' activations into the FP8 subnormal
	// range. Quiet rows (tokens) of A must survive under fine-grained
	// scaling and be destroyed under per-tensor scaling.
	rng := rand.New(rand.NewSource(34))
	a := randMatrix(rng, 16, 512, 1)
	for i := 1; i < a.Rows; i += 2 { // half the tokens are quiet
		for c := 0; c < a.Cols; c++ {
			a.Set(i, c, a.At(i, c)*1e-4)
		}
	}
	a.Set(0, 0, 300) // outlier pinning the per-tensor scale
	b := randMatrix(rng, 512, 16, 1)
	ref := Ref(a, b)

	fine := FP8(a, b, DeepSeekV3Recipe())
	coarseCfg := DeepSeekV3Recipe()
	coarseCfg.PerTensorScales = true
	coarse := FP8(a, b, coarseCfg)

	// Compare per-row (per-token) relative errors so loud rows cannot
	// mask quiet rows' destruction.
	rowErr := func(c *quant.Matrix) float64 {
		var total float64
		for i := 0; i < c.Rows; i++ {
			rel, _ := stats.RMSRelativeError(c.Row(i), ref.Row(i))
			total += rel
		}
		return total / float64(c.Rows)
	}
	relFine, relCoarse := rowErr(fine), rowErr(coarse)
	if relFine*5 > relCoarse {
		t.Errorf("fine-grained (%v) should clearly beat per-tensor (%v) with outliers", relFine, relCoarse)
	}
}

func TestPromotionImprovesLongKGEMM(t *testing.T) {
	// §3.1.1 ablation at the GEMM level: without promotion the FP22
	// register accumulates truncation error across K=4096. To see the
	// accumulation error in isolation, feed the GEMM values that are
	// already exactly FP8-representable with the tensor max pinned to
	// the format max, forcing a scale of exactly 1 — then quantization
	// is lossless and any output error is the accumulator's.
	rng := rand.New(rand.NewSource(35))
	exactFP8 := func(rows, cols int) *quant.Matrix {
		m := quant.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = quant.E4M3.Quantize(rng.NormFloat64())
		}
		m.Data[0] = 448 // pins max|x| so the shared scale is exactly 1
		return m
	}
	a := exactFP8(8, 4096)
	b := exactFP8(4096, 8)
	ref := Ref(a, b)

	promoted := DeepSeekV3Recipe()
	promoted.PerTensorScales = true // isolate accumulation effects
	unpromoted := promoted
	unpromoted.PromoteEvery = 0

	relP, _ := stats.RMSRelativeError(FP8(a, b, promoted).Data, ref.Data)
	relU, _ := stats.RMSRelativeError(FP8(a, b, unpromoted).Data, ref.Data)
	if relP*2 > relU {
		t.Errorf("promotion should cut accumulation error: promoted %v vs unpromoted %v", relP, relU)
	}
}

func TestFP8ConfigValidate(t *testing.T) {
	good := DeepSeekV3Recipe()
	if err := good.Validate(); err != nil {
		t.Errorf("recipe should validate: %v", err)
	}
	bad := good
	bad.PromoteEvery = 0
	if err := bad.Validate(); err == nil {
		t.Error("fine-grained without promotion must be rejected")
	}
	bad = good
	bad.PromoteEvery = 96 // straddles the 128 tile
	if err := bad.Validate(); err == nil {
		t.Error("chunk straddling a tile must be rejected")
	}
	bad.PerTensorScales = true
	if err := bad.Validate(); err != nil {
		t.Errorf("per-tensor scales lift the restriction: %v", err)
	}
	sub := good
	sub.PromoteEvery = 64 // divides 128: allowed
	if err := sub.Validate(); err != nil {
		t.Errorf("PromoteEvery=64 should validate: %v", err)
	}
}

func TestFP8InvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := DeepSeekV3Recipe()
	cfg.PromoteEvery = 0
	FP8(quant.NewMatrix(4, 256), quant.NewMatrix(256, 4), cfg)
}

func TestFP8NonTileAlignedK(t *testing.T) {
	// K not a multiple of 128 exercises the short final tile.
	rng := rand.New(rand.NewSource(36))
	a := randMatrix(rng, 4, 200, 1)
	b := randMatrix(rng, 200, 4, 1)
	ref := Ref(a, b)
	got := FP8(a, b, DeepSeekV3Recipe())
	rel, _ := stats.RMSRelativeError(got.Data, ref.Data)
	if rel > 0.08 {
		t.Errorf("short-tile GEMM error %v too large", rel)
	}
}

func TestFP8ZeroMatrices(t *testing.T) {
	a := quant.NewMatrix(4, 128)
	b := quant.NewMatrix(128, 4)
	c := FP8(a, b, DeepSeekV3Recipe())
	for _, v := range c.Data {
		if v != 0 {
			t.Fatalf("zero GEMM produced %v", v)
		}
	}
}

func TestGEMMErrorOrdering(t *testing.T) {
	// Sanity ordering on plain gaussian data: ref(0) <= bf16 <= fp8.
	rng := rand.New(rand.NewSource(37))
	a := randMatrix(rng, 16, 1024, 1)
	b := randMatrix(rng, 1024, 16, 1)
	ref := Ref(a, b)
	relBF, _ := stats.RMSRelativeError(BF16(a, b).Data, ref.Data)
	relFP8, _ := stats.RMSRelativeError(FP8(a, b, DeepSeekV3Recipe()).Data, ref.Data)
	if relBF >= relFP8 {
		t.Errorf("BF16 (%v) should be more accurate than FP8 (%v)", relBF, relFP8)
	}
}
