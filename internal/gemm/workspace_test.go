package gemm

import (
	"math"
	"testing"

	"dsv3/internal/parallel"
	"dsv3/internal/quant"
)

func randMat(seed int64, rows, cols int) *quant.Matrix {
	rng := parallel.NewRand(seed)
	m := quant.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func mustEqual(t *testing.T, name string, got, want *quant.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d: %g != %g", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestIntoFormsMatchAllocating runs every Into form over a sequence of
// different shapes with ONE shared workspace and output buffers dirtied
// by the previous call — the exact reuse pattern of the training loop —
// and demands bit-identity with the fresh-allocation entry points.
func TestIntoFormsMatchAllocating(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{4, 8, 4},
		{32, 64, 128},
		{128, 32, 8},
		{8, 200, 16}, // K not a multiple of the tile width
		{32, 64, 128},
		{3, 1, 2}, // shrink
	}
	var ws Workspace
	coarse := DeepSeekV3Recipe()
	coarse.PerTensorScales = true
	coarse.PromoteEvery = 0
	out := quant.NewMatrix(1, 1)
	reshape := func(rows, cols int) *quant.Matrix {
		n := rows * cols
		if cap(out.Data) < n {
			out.Data = make([]float64, n)
		}
		out.Data = out.Data[:n]
		for i := range out.Data {
			out.Data[i] = math.NaN() // poison: every element must be written
		}
		out.Rows, out.Cols = rows, cols
		return out
	}
	for i, sh := range shapes {
		a := randMat(int64(100+i), sh.m, sh.k)
		b := randMat(int64(200+i), sh.k, sh.n)

		RefInto(reshape(sh.m, sh.n), a, b)
		mustEqual(t, "RefInto", out, Ref(a, b))

		BF16Into(reshape(sh.m, sh.n), a, b, &ws)
		mustEqual(t, "BF16Into", out, BF16(a, b))

		FP8Into(reshape(sh.m, sh.n), a, b, DeepSeekV3Recipe(), &ws)
		mustEqual(t, "FP8Into(fine)", out, FP8(a, b, DeepSeekV3Recipe()))

		FP8Into(reshape(sh.m, sh.n), a, b, coarse, &ws)
		mustEqual(t, "FP8Into(coarse)", out, FP8(a, b, coarse))
	}
}
