// Package tablefmt renders fixed-width text tables. Every experiment in
// this repository prints a "paper vs measured" table; this package keeps
// that rendering in one place so cmd/dsv3bench, the examples and the test
// logs all look the same.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with columns padded to the
// widest cell.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells are formatted with fmt.Sprint; floats keep
// their default formatting, so pre-format values that need fixed decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table.
func (t *Table) String() string {
	width := len(t.headers)
	for _, r := range t.rows {
		if len(r) > width {
			width = len(r)
		}
	}
	colw := make([]int, width)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > colw[i] {
				colw[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < width; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, colw[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for i, w := range colw {
			if i > 0 {
				total += 2
			}
			total += w
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
