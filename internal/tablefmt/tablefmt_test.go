package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := New("Table X", "Model", "Value")
	tb.AddRow("DeepSeek-V3", 70.272)
	tb.AddRow("Qwen-2.5 72B", 327.68)
	out := tb.String()
	if !strings.HasPrefix(out, "Table X\n") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "DeepSeek-V3") || !strings.Contains(out, "70.272") {
		t.Errorf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("expected 5 lines, got %d: %q", len(lines), out)
	}
	// All data rows align: each column starts at the same offset.
	if strings.Index(lines[3], "70.272") != strings.Index(lines[4], "327.68") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFloatTrimming(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{2, "2"},
		{0.25, "0.25"},
		{-0.5, "-0.5"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNoTitleNoHeaders(t *testing.T) {
	tb := New("")
	tb.AddRow("a", "b")
	out := tb.String()
	if strings.Contains(out, "-") {
		t.Errorf("rule should not render without headers: %q", out)
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("unexpected prefix: %q", out)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("wide rows must render all cells: %q", out)
	}
}

func TestRuleMatchesWidestRow(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("wide-cell-value", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header, rule, row
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d: %q", len(lines), out)
	}
	rule, row := lines[1], lines[2]
	if len(rule) != len(row) {
		t.Errorf("rule width %d != row width %d:\n%s", len(rule), len(row), out)
	}
	if strings.Trim(rule, "-") != "" {
		t.Errorf("rule contains non-dash characters: %q", rule)
	}
}

func TestHeaderWiderThanCells(t *testing.T) {
	tb := New("", "a-very-long-header", "h2")
	tb.AddRow("x", "y")
	tb.AddRow("zz", "w")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Column 2 starts at the same offset in every line, padded to the
	// header width.
	want := strings.Index(lines[0], "h2")
	if strings.Index(lines[2], "y") != want || strings.Index(lines[3], "w") != want {
		t.Errorf("second column misaligned under wide header:\n%s", out)
	}
}

func TestShortRowPadsMissingCells(t *testing.T) {
	tb := New("", "A", "B", "C")
	tb.AddRow("x")
	tb.AddRow("y", "mid", "z")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Index(lines[3], "z") <= strings.Index(lines[3], "mid") {
		t.Fatalf("sanity: %q", lines[3])
	}
	// The short row renders only padding where cells are missing.
	if got := strings.TrimRight(lines[2], " "); got != "x" {
		t.Errorf("short row = %q, want bare first cell", got)
	}
}

func TestEmptyTable(t *testing.T) {
	if out := New("").String(); out != "" {
		t.Errorf("empty table rendered %q", out)
	}
	if out := New("T").String(); out != "T\n" {
		t.Errorf("title-only table rendered %q", out)
	}
	// Headers with no rows still render the header and rule.
	out := New("", "A", "B").String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("header-only table rendered %q", out)
	}
}

func TestNegativeAndScientificFloats(t *testing.T) {
	tb := New("", "v")
	tb.AddRow(-12.125)
	tb.AddRow(0.0001) // below the %.4f trim floor
	out := tb.String()
	if !strings.Contains(out, "-12.125") || !strings.Contains(out, "0.0001") {
		t.Errorf("float edge cases wrong: %q", out)
	}
}

func TestIntsAndStrings(t *testing.T) {
	tb := New("", "n")
	tb.AddRow(42)
	tb.AddRow(float32(1.25))
	out := tb.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "1.25") {
		t.Errorf("cell formatting wrong: %q", out)
	}
}
