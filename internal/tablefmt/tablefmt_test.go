package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := New("Table X", "Model", "Value")
	tb.AddRow("DeepSeek-V3", 70.272)
	tb.AddRow("Qwen-2.5 72B", 327.68)
	out := tb.String()
	if !strings.HasPrefix(out, "Table X\n") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "DeepSeek-V3") || !strings.Contains(out, "70.272") {
		t.Errorf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("expected 5 lines, got %d: %q", len(lines), out)
	}
	// All data rows align: each column starts at the same offset.
	if strings.Index(lines[3], "70.272") != strings.Index(lines[4], "327.68") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFloatTrimming(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{2, "2"},
		{0.25, "0.25"},
		{-0.5, "-0.5"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNoTitleNoHeaders(t *testing.T) {
	tb := New("")
	tb.AddRow("a", "b")
	out := tb.String()
	if strings.Contains(out, "-") {
		t.Errorf("rule should not render without headers: %q", out)
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("unexpected prefix: %q", out)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("wide rows must render all cells: %q", out)
	}
}

func TestIntsAndStrings(t *testing.T) {
	tb := New("", "n")
	tb.AddRow(42)
	tb.AddRow(float32(1.25))
	out := tb.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "1.25") {
		t.Errorf("cell formatting wrong: %q", out)
	}
}
