package logfmt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dsv3/internal/quant"
	"dsv3/internal/stats"
)

func gaussTile(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestRoundtripZeroTile(t *testing.T) {
	c := New(8)
	out := c.Roundtrip(make([]float64, 16))
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero tile should decode to zeros, got %v", v)
		}
	}
}

func TestZeroCodeIsExact(t *testing.T) {
	c := New(8)
	tile := []float64{0, 1, -2, 0, 0.5}
	out := c.Roundtrip(tile)
	for i, x := range tile {
		if x == 0 && out[i] != 0 {
			t.Errorf("zero at %d decoded to %v", i, out[i])
		}
	}
}

func TestMinMaxEncodedExactly(t *testing.T) {
	// The tile min and max magnitudes sit exactly on grid points, so they
	// must round-trip to within floating-point noise.
	rng := rand.New(rand.NewSource(21))
	c := New(8)
	tile := gaussTile(rng, 128)
	minAbs, maxAbs := math.Inf(1), 0.0
	for _, x := range tile {
		a := math.Abs(x)
		minAbs = math.Min(minAbs, a)
		maxAbs = math.Max(maxAbs, a)
	}
	out := c.Roundtrip(tile)
	for i, x := range tile {
		a := math.Abs(x)
		if a == minAbs || a == maxAbs {
			if stats.RelativeError(math.Abs(out[i]), a) > 1e-12 {
				t.Errorf("extreme value %v decoded to %v", x, out[i])
			}
		}
	}
}

func TestSignPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := New(8)
	tile := gaussTile(rng, 128)
	out := c.Roundtrip(tile)
	for i := range tile {
		if tile[i]*out[i] < 0 {
			t.Errorf("sign flipped at %d: %v -> %v", i, tile[i], out[i])
		}
	}
}

func TestConstantTile(t *testing.T) {
	c := New(8)
	tile := []float64{2.5, 2.5, -2.5, 2.5}
	out := c.Roundtrip(tile)
	for i := range tile {
		if math.Abs(out[i]-tile[i]) > 1e-12*math.Abs(tile[i]) {
			t.Errorf("constant tile must be exact: %v -> %v", tile[i], out[i])
		}
	}
}

func TestRangeClamp(t *testing.T) {
	// A tile spanning more than 2^32 in magnitude has its min clamped;
	// the tiny value becomes representable only at the clamped floor.
	c := New(8)
	tile := []float64{1e10, 1e-10}
	enc := c.Encode(tile)
	if enc.Min < math.Log(1e10)-math.Log(math.Exp2(32))-1e-9 {
		t.Errorf("min not clamped: %v", enc.Min)
	}
	out := enc.Decode()
	if stats.RelativeError(out[0], 1e10) > 1e-9 {
		t.Errorf("max value should be exact, got %v", out[0])
	}
	// The small value is clamped up to the representable floor.
	if out[1] < 1e10/math.Exp2(32)*0.99 {
		t.Errorf("small value %v should be clamped to range floor", out[1])
	}
}

func TestMonotoneCodes(t *testing.T) {
	// Larger magnitudes must never get smaller codes.
	rng := rand.New(rand.NewSource(23))
	c := New(8)
	tile := gaussTile(rng, 128)
	enc := c.Encode(tile)
	type pair struct {
		a float64
		k uint16
	}
	var ps []pair
	magMask := uint16(1)<<7 - 1
	for i, x := range tile {
		ps = append(ps, pair{math.Abs(x), enc.Codes[i] & magMask})
	}
	for i := range ps {
		for j := range ps {
			if ps[i].a < ps[j].a && ps[i].k > ps[j].k {
				t.Fatalf("code ordering violated: |%v|->%d vs |%v|->%d", ps[i].a, ps[i].k, ps[j].a, ps[j].k)
			}
		}
	}
}

func TestLinearSpaceRounding(t *testing.T) {
	// Construct a two-point grid and check that the decision boundary is
	// the arithmetic midpoint, not the geometric one. Grid: min=log(1),
	// max=log(4) with 3 levels (use 3-bit codec: codes 1,2,3).
	c := New(3)
	// Tile containing 1 and 4 establishes the grid; levels are 1, 2, 4.
	probe := 1.45 // log-space midpoint of (1,2) is sqrt(2)≈1.414; linear is 1.5
	tile := []float64{1, 4, probe}
	out := c.Roundtrip(tile)
	// 1.45 > sqrt(2) (geometric midpoint) but < 1.5 (arithmetic): with
	// linear-space rounding it must map DOWN to 1.
	if out[2] != 1 {
		t.Errorf("1.45 should round to 1 under linear-space rounding, got %v", out[2])
	}
	tile2 := []float64{1, 4, 1.55}
	out2 := c.Roundtrip(tile2)
	if out2[2] != 2 {
		t.Errorf("1.55 should round to 2, got %v", out2[2])
	}
}

func TestLogFMT8BeatsFP8OnGaussianTiles(t *testing.T) {
	// §3.2's headline claim: at the same 8-bit width, LogFMT-8 has higher
	// accuracy than E4M3 or E5M2 (with per-tile scaling) on activations.
	rng := rand.New(rand.NewSource(24))
	var logErr, e4m3Err, e5m2Err float64
	for trial := 0; trial < 200; trial++ {
		tile := gaussTile(rng, 128)
		lg := New(8).Roundtrip(tile)
		q4 := quant.QuantizeTile(quant.E4M3, tile)
		q5 := quant.QuantizeTile(quant.E5M2, tile)
		a, _ := stats.RMSRelativeError(lg, tile)
		b, _ := stats.RMSRelativeError(q4.Values, tile)
		c, _ := stats.RMSRelativeError(q5.Values, tile)
		logErr += a
		e4m3Err += b
		e5m2Err += c
	}
	if logErr >= e4m3Err {
		t.Errorf("LogFMT-8 (%v) should beat E4M3 (%v)", logErr, e4m3Err)
	}
	if logErr >= e5m2Err {
		t.Errorf("LogFMT-8 (%v) should beat E5M2 (%v)", logErr, e5m2Err)
	}
}

func TestLogFMT10ApproachesBF16(t *testing.T) {
	// §3.2: at n=10 the combine stage behaves like BF16. Check the SNR
	// gap is small (LogFMT-10 within ~6 dB of BF16 on gaussian tiles).
	rng := rand.New(rand.NewSource(25))
	var snr10, snrBF float64
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		tile := gaussTile(rng, 128)
		lg := New(10).Roundtrip(tile)
		bf := make([]float64, len(tile))
		quant.BF16.QuantizeSlice(bf, tile)
		a, _ := stats.SNRdB(tile, lg)
		b, _ := stats.SNRdB(tile, bf)
		snr10 += a
		snrBF += b
	}
	snr10 /= trials
	snrBF /= trials
	// "Similar to BF16" in the paper means training-accuracy parity, not
	// identical SNR; empirically LogFMT-10 lands ~6 dB below BF16 on
	// gaussian tiles while LogFMT-8 is ~12 dB below. Require the 10-bit
	// variant to be within 8 dB — i.e. clearly in BF16's neighbourhood.
	if snr10 < snrBF-8 {
		t.Errorf("LogFMT-10 SNR %v dB too far below BF16 %v dB", snr10, snrBF)
	}
	snr8 := 0.0
	for trial := 0; trial < trials; trial++ {
		rng2 := rand.New(rand.NewSource(int64(trial)))
		tile := gaussTile(rng2, 128)
		lg := New(8).Roundtrip(tile)
		a, _ := stats.SNRdB(tile, lg)
		snr8 += a
	}
	snr8 /= trials
	if snr10 < snr8+6 {
		t.Errorf("LogFMT-10 (%v dB) should clearly beat LogFMT-8 (%v dB)", snr10, snr8)
	}
}

func TestQuantizationNearUnbiased(t *testing.T) {
	// Linear-space rounding keeps the quantizer's mean error near zero —
	// the "unbiased activation quantization" property the paper calls out.
	rng := rand.New(rand.NewSource(26))
	var sum, sumAbs float64
	n := 0
	for trial := 0; trial < 200; trial++ {
		tile := gaussTile(rng, 128)
		out := New(8).Roundtrip(tile)
		for i := range tile {
			sum += out[i] - tile[i]
			sumAbs += math.Abs(tile[i])
			n++
		}
	}
	meanErr := math.Abs(sum / float64(n))
	meanMag := sumAbs / float64(n)
	if meanErr > 0.002*meanMag {
		t.Errorf("mean quantization error %v too large vs mean magnitude %v", meanErr, meanMag)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Property: decode(encode(x)) has every element within one grid step
	// (in relative terms) of the original, unless range-clamped.
	rng := rand.New(rand.NewSource(27))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tile := gaussTile(r, 64)
		c := New(8)
		enc := c.Encode(tile)
		out := enc.Decode()
		relStep := math.Expm1(enc.Step) // exp(step)-1 ≈ max relative gap
		for i := range tile {
			if tile[i] == 0 {
				continue
			}
			if stats.RelativeError(out[i], tile[i]) > relStep+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, bits := range []int{0, 2, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", bits)
				}
			}()
			New(bits)
		}()
	}
}

func TestRoundtripTensorTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	xs := gaussTile(rng, 7168) // one DeepSeek-V3 hidden vector: 56 tiles
	out := New(8).RoundtripTensor(xs)
	if len(out) != len(xs) {
		t.Fatalf("length changed: %d vs %d", len(out), len(xs))
	}
	rel, _ := stats.RMSRelativeError(out, xs)
	if rel > 0.05 {
		t.Errorf("tensor roundtrip error too high: %v", rel)
	}
}
