// Package logfmt implements the Logarithmic Floating-Point Format
// (LogFMT-nBit) communication-compression codec from §3.2 of the paper.
//
// A tile of m elements (1×128 in DeepSeek-V3) is encoded with n bits per
// element: one sign bit plus an (n-1)-bit magnitude code. The codec maps
// |x| into log space, lays a uniform grid between the tile's min and max
// log-magnitudes, and rounds *in the original linear space* (the paper
// found linear-space rounding important for unbiased activation
// quantization). Zero has the dedicated code 0. The representable range
// is clamped so min >= max - log(2^32), mirroring the paper's constraint
// that the dynamic range not exceed a 5-bit-exponent float's.
package logfmt

import (
	"math"
)

// rangeCap is log(2^32): the maximum allowed spread between the tile's
// max and min log-magnitudes (§3.2).
var rangeCap = math.Log(math.Exp2(32))

// Codec holds the per-tile configuration of a LogFMT-nBit encoder.
type Codec struct {
	// Bits is the total width n (sign bit included). The paper evaluates
	// n = 8 (same width as FP8) and n = 10.
	Bits int
}

// New returns a codec for LogFMT-nBit. Bits must be in [3, 16]; the
// magnitude field needs at least 2 bits to hold zero, min and max codes.
func New(bits int) Codec {
	if bits < 3 || bits > 16 {
		panic("logfmt: bits must be in [3,16]")
	}
	return Codec{Bits: bits}
}

// maxCode returns the largest magnitude code: 2^(n-1) - 1.
func (c Codec) maxCode() int { return 1<<(c.Bits-1) - 1 }

// Encoded is one encoded tile: packed sign+magnitude codes plus the
// tile's dynamic grid parameters (transmitted as side information, like
// FP8 scaling factors).
type Encoded struct {
	Codes []uint16 // sign in the top used bit, magnitude in the low bits
	Min   float64  // log-magnitude mapped to code 1
	Step  float64  // log-space grid step
	Bits  int
}

// Encode quantizes tile into LogFMT codes.
func (c Codec) Encode(tile []float64) Encoded {
	enc := Encoded{Codes: make([]uint16, len(tile)), Bits: c.Bits}
	// Pass 1: log-range of the nonzero magnitudes.
	minLog, maxLog := math.Inf(1), math.Inf(-1)
	for _, x := range tile {
		if x == 0 {
			continue
		}
		l := math.Log(math.Abs(x))
		minLog = math.Min(minLog, l)
		maxLog = math.Max(maxLog, l)
	}
	if math.IsInf(minLog, 1) { // all-zero tile
		enc.Min, enc.Step = 0, 0
		return enc
	}
	// Clamp the representable range to log(2^32), as the paper does, so
	// the format's dynamic range matches a 5-bit-exponent float.
	if minLog < maxLog-rangeCap {
		minLog = maxLog - rangeCap
	}
	enc.Min = minLog
	levels := c.maxCode() // codes 1..maxCode carry magnitudes
	if levels > 1 && maxLog > minLog {
		enc.Step = (maxLog - minLog) / float64(levels-1)
	}
	signBit := uint16(1) << uint(c.Bits-1)
	for i, x := range tile {
		if x == 0 {
			enc.Codes[i] = 0
			continue
		}
		code := c.encodeMagnitude(math.Abs(x), enc.Min, enc.Step)
		if x < 0 {
			code |= signBit
		}
		enc.Codes[i] = code
	}
	return enc
}

// encodeMagnitude maps |x| to the nearest grid level *in linear space*:
// the boundary between adjacent codes is the arithmetic midpoint of their
// decoded values, not the log-space midpoint.
func (c Codec) encodeMagnitude(a, minLog, step float64) uint16 {
	maxCode := c.maxCode()
	if step == 0 {
		return 1
	}
	kf := (math.Log(a)-minLog)/step + 1
	lo := int(math.Floor(kf))
	if lo < 1 {
		return 1
	}
	if lo >= maxCode {
		return uint16(maxCode)
	}
	vLo := math.Exp(minLog + float64(lo-1)*step)
	vHi := math.Exp(minLog + float64(lo)*step)
	if a-vLo > vHi-a { // linear-space nearest
		return uint16(lo + 1)
	}
	return uint16(lo)
}

// Decode reconstructs the tile: sign × exp(min + (K-1)·step), zero for
// code 0.
func (e Encoded) Decode() []float64 {
	out := make([]float64, len(e.Codes))
	signBit := uint16(1) << uint(e.Bits-1)
	magMask := signBit - 1
	for i, code := range e.Codes {
		mag := code & magMask
		if mag == 0 {
			out[i] = 0
			continue
		}
		v := math.Exp(e.Min + float64(mag-1)*e.Step)
		if code&signBit != 0 {
			v = -v
		}
		out[i] = v
	}
	return out
}

// Roundtrip is a convenience helper: encode then decode a tile.
func (c Codec) Roundtrip(tile []float64) []float64 { return c.Encode(tile).Decode() }

// TileWidth is the tile size used by the paper's implementation.
const TileWidth = 128

// RoundtripTensor quantizes xs tile-by-tile (1×TileWidth), the way the
// combine-stage compression would run over a token's hidden vector.
func (c Codec) RoundtripTensor(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for start := 0; start < len(xs); start += TileWidth {
		end := start + TileWidth
		if end > len(xs) {
			end = len(xs)
		}
		out = append(out, c.Roundtrip(xs[start:end])...)
	}
	return out
}
