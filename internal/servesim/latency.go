package servesim

import (
	"fmt"

	"dsv3/internal/inference"
	"dsv3/internal/mla"
	"dsv3/internal/model"
	"dsv3/internal/units"
)

// LatencyModel composes the per-step serving latency of one expert-
// parallel device ("instance") from the repo's steady-state models:
// dispatch/combine traffic from inference.EPConfig (§2.3.2), attention
// FLOPs and KV-cache bytes from mla.AttentionDecodeCost (§2.1.2), and
// weight streaming / linear compute against the accelerator roofline.
// Decode follows the paper's dual-micro-batch overlap: a layer costs
// twice the max of its communication and computation.
type LatencyModel struct {
	Model *model.Config
	Accel mla.Accelerator
	EP    inference.EPConfig
	// InterconnectBW is the per-device all-to-all bandwidth (50 GB/s
	// for 400G IB).
	InterconnectBW units.BytesPerSecond
	// Efficiency is the achieved fraction of peak compute and memory
	// bandwidth (0..1].
	Efficiency float64
	// WeightBytes is the per-device resident model weight footprint
	// (attention + local experts, all layers) streamed once per decode
	// step.
	WeightBytes units.Bytes
	// KVBytesPerElem is the cached KV element width (1 for FP8).
	KVBytesPerElem float64
}

// V3LatencyModel returns the DeepSeek-V3 deployment point: H800
// roofline, the paper's EP traffic model on 400G IB (50 GB/s), FP8 KV,
// and an ~8 GB per-device weight shard (671B over a large EP group).
func V3LatencyModel() LatencyModel {
	return LatencyModel{
		Model:          model.DeepSeekV3(),
		Accel:          mla.H800(),
		EP:             inference.V3EPConfig(),
		InterconnectBW: 50 * units.GB,
		Efficiency:     0.85,
		WeightBytes:    8 * units.GB,
		KVBytesPerElem: 1,
	}
}

// Validate checks the model.
func (l LatencyModel) Validate() error {
	if l.Model == nil {
		return fmt.Errorf("servesim: latency model needs a model config")
	}
	if err := l.EP.Validate(); err != nil {
		return err
	}
	if l.InterconnectBW <= 0 || l.Efficiency <= 0 || l.Efficiency > 1 ||
		l.Accel.PeakFLOPS <= 0 || l.Accel.MemBandwidth <= 0 ||
		l.WeightBytes < 0 || l.KVBytesPerElem <= 0 {
		return fmt.Errorf("servesim: invalid latency model %+v", l)
	}
	return nil
}

// commBytesPerToken returns the dispatch+combine bytes one token moves
// per layer (the EPConfig step batch normalized out).
func (l LatencyModel) commBytesPerToken() units.Bytes {
	return l.EP.CommBytesPerStep() / float64(l.EP.TokensPerDevice)
}

// batchAttention accumulates the attention decode cost of a batch with
// per-request context lengths.
type batchAttention struct {
	FLOPs   float64
	KVBytes units.Bytes
}

// addContext folds one request at context length ctx into the batch.
func (l LatencyModel) addContext(b *batchAttention, ctx int) {
	dc := mla.AttentionDecodeCost(l.Model, ctx, l.KVBytesPerElem)
	b.FLOPs += dc.FLOPs
	b.KVBytes += dc.KVBytes
}

// DecodeStepTime returns the duration of one continuous-batching
// decode step that advances batch requests whose attention cost has
// been accumulated in attn. Per layer, communication is the all-to-all
// for the local batch and computation is attention (max of its compute
// and KV-read roofline legs) plus the linear path (max of GEMV FLOPs
// and weight streaming); the step costs 2 x max(comm, compute) per
// layer under dual-micro-batch overlap, matching
// inference.EPConfig.AnalyzeWithCompute.
func (l LatencyModel) DecodeStepTime(batch int, attn batchAttention) units.Seconds {
	if batch <= 0 {
		return 0
	}
	layers := float64(l.Model.Layers)
	peak := l.Accel.PeakFLOPS * l.Efficiency
	mem := l.Accel.MemBandwidth * l.Efficiency

	commPerLayer := l.commBytesPerToken() * float64(batch) / l.InterconnectBW

	attnTime := attn.FLOPs / peak
	if kv := attn.KVBytes / mem; kv > attnTime {
		attnTime = kv
	}
	linFLOPs := 2 * l.Model.Params().ActiveNonEmbedding * float64(batch)
	linTime := linFLOPs / peak
	if w := l.WeightBytes / mem; w > linTime {
		linTime = w
	}
	computePerLayer := (attnTime + linTime) / layers

	per := commPerLayer
	if computePerLayer > per {
		per = computePerLayer
	}
	return 2 * per * layers
}

// PrefillTime returns the duration of prefilling a prompt of the given
// length on one prefill instance: the max of the compute roofline
// (linear plus causal attention FLOPs), the weight-streaming roofline
// (the resident weights are read once regardless of prompt length — the
// same memory leg DecodeStepTime pays, which floors short-prompt
// prefills), and the expert-parallel dispatch/combine traffic for all
// prompt tokens.
func (l LatencyModel) PrefillTime(promptTokens int) units.Seconds {
	tokens := float64(promptTokens)
	a := l.Model.Attention
	linear := 2 * l.Model.Params().ActiveNonEmbedding * tokens
	attn := 2 * float64(a.NumQueryHeads) * float64(a.QKDim()+a.VDim()) *
		tokens * tokens / 2 * float64(l.Model.Layers)
	compute := (linear + attn) / (l.Accel.PeakFLOPS * l.Efficiency)
	if stream := l.WeightBytes / (l.Accel.MemBandwidth * l.Efficiency); stream > compute {
		compute = stream
	}

	comm := l.commBytesPerToken() * tokens * float64(l.Model.Layers) / l.InterconnectBW
	if comm > compute {
		return comm
	}
	return compute
}

// KVBytesForContext returns the KV-cache volume of a context, the
// payload a prefill->decode migration moves.
func (l LatencyModel) KVBytesForContext(tokens int) units.Bytes {
	return l.Model.KVCacheBytesPerToken(l.KVBytesPerElem) * float64(tokens)
}
