package servesim

import (
	"fmt"

	"dsv3/internal/inference"
	"dsv3/internal/mla"
	"dsv3/internal/model"
	"dsv3/internal/units"
)

// LatencyModel composes the per-step serving latency of one expert-
// parallel device ("instance") from the repo's steady-state models:
// dispatch/combine traffic from inference.EPConfig (§2.3.2), attention
// FLOPs and KV-cache bytes from mla.AttentionDecodeCost (§2.1.2), and
// weight streaming / linear compute against the accelerator roofline.
// Decode follows the paper's dual-micro-batch overlap: a layer costs
// twice the max of its communication and computation.
type LatencyModel struct {
	Model *model.Config
	Accel mla.Accelerator
	EP    inference.EPConfig
	// InterconnectBW is the per-device all-to-all bandwidth (50 GB/s
	// for 400G IB).
	InterconnectBW units.BytesPerSecond
	// Efficiency is the achieved fraction of peak compute and memory
	// bandwidth (0..1].
	Efficiency float64
	// WeightBytes is the per-device resident model weight footprint
	// (attention + local experts, all layers) streamed once per decode
	// step.
	WeightBytes units.Bytes
	// KVBytesPerElem is the cached KV element width (1 for FP8).
	KVBytesPerElem float64
}

// V3LatencyModel returns the DeepSeek-V3 deployment point: H800
// roofline, the paper's EP traffic model on 400G IB (50 GB/s), FP8 KV,
// and an ~8 GB per-device weight shard (671B over a large EP group).
func V3LatencyModel() LatencyModel {
	return LatencyModel{
		Model:          model.DeepSeekV3(),
		Accel:          mla.H800(),
		EP:             inference.V3EPConfig(),
		InterconnectBW: 50 * units.GB,
		Efficiency:     0.85,
		WeightBytes:    8 * units.GB,
		KVBytesPerElem: 1,
	}
}

// Validate checks the model.
func (l LatencyModel) Validate() error {
	if l.Model == nil {
		return fmt.Errorf("servesim: latency model needs a model config")
	}
	if err := l.EP.Validate(); err != nil {
		return err
	}
	if l.InterconnectBW <= 0 || l.Efficiency <= 0 || l.Efficiency > 1 ||
		l.Accel.PeakFLOPS <= 0 || l.Accel.MemBandwidth <= 0 ||
		l.WeightBytes < 0 || l.KVBytesPerElem <= 0 {
		return fmt.Errorf("servesim: invalid latency model %+v", l)
	}
	return nil
}

// commBytesPerToken returns the dispatch+combine bytes one token moves
// per layer (the EPConfig step batch normalized out).
func (l LatencyModel) commBytesPerToken() units.Bytes {
	return l.EP.CommBytesPerStep() / float64(l.EP.TokensPerDevice)
}

// latConsts caches every per-configuration constant of the latency
// formulas, so the event loop does not re-derive parameter counts, EP
// traffic and rooflines on every decode step. Each field holds exactly
// the value the corresponding sub-expression produced before hoisting
// (same operations, same order), so the cached formulas below are
// bit-identical to recomputing from the LatencyModel each call.
type latConsts struct {
	layers    float64
	peak, mem float64 // achieved FLOPS / memory bandwidth

	commPerToken       units.Bytes   // commBytesPerToken()
	activeNonEmbedding float64       // Model.Params().ActiveNonEmbedding
	weightStream       units.Seconds // WeightBytes / mem

	attnFlopsPerCtxLayer float64     // per-context-token per-layer decode attention FLOPs
	kvPerToken           units.Bytes // Model.KVCacheBytesPerToken(KVBytesPerElem)
	prefillAttnCoef      float64     // 2 · heads · (QKDim+VDim)
}

// consts derives the cached constants. One call per simulation run.
func (l LatencyModel) consts() latConsts {
	a := l.Model.Attention
	return latConsts{
		layers:               float64(l.Model.Layers),
		peak:                 l.Accel.PeakFLOPS * l.Efficiency,
		mem:                  l.Accel.MemBandwidth * l.Efficiency,
		commPerToken:         l.commBytesPerToken(),
		activeNonEmbedding:   l.Model.Params().ActiveNonEmbedding,
		weightStream:         l.WeightBytes / (l.Accel.MemBandwidth * l.Efficiency),
		attnFlopsPerCtxLayer: mla.DecodeFLOPsPerCtxTokenLayer(l.Model),
		kvPerToken:           l.Model.KVCacheBytesPerToken(l.KVBytesPerElem),
		prefillAttnCoef:      2 * float64(a.NumQueryHeads) * float64(a.QKDim()+a.VDim()),
	}
}

// batchAttention accumulates the attention decode cost of a batch with
// per-request context lengths.
type batchAttention struct {
	FLOPs   float64
	KVBytes units.Bytes
}

// addContext folds one request at context length ctx into the batch.
func (l LatencyModel) addContext(b *batchAttention, ctx int) {
	l.addContextC(l.consts(), b, ctx)
}

// addContextC is addContext over precomputed constants: the same
// flops-per-context-token-per-layer · ctx · layers and KV-bytes · ctx
// products mla.AttentionDecodeCost forms, without re-deriving the
// coefficients.
func (l LatencyModel) addContextC(lc latConsts, b *batchAttention, ctx int) {
	b.FLOPs += lc.attnFlopsPerCtxLayer * float64(ctx) * lc.layers
	b.KVBytes += lc.kvPerToken * float64(ctx)
}

// DecodeStepTime returns the duration of one continuous-batching
// decode step that advances batch requests whose attention cost has
// been accumulated in attn. Per layer, communication is the all-to-all
// for the local batch and computation is attention (max of its compute
// and KV-read roofline legs) plus the linear path (max of GEMV FLOPs
// and weight streaming); the step costs 2 x max(comm, compute) per
// layer under dual-micro-batch overlap, matching
// inference.EPConfig.AnalyzeWithCompute.
func (l LatencyModel) DecodeStepTime(batch int, attn batchAttention) units.Seconds {
	return l.decodeStepTime(l.consts(), batch, attn)
}

func (l LatencyModel) decodeStepTime(lc latConsts, batch int, attn batchAttention) units.Seconds {
	return l.decodeStepTimeComm(lc, batch, attn, 1)
}

// decodeStepTimeComm is decodeStepTime with the communication leg
// scaled by commScale — the plane-failure derating (hazard.go): k of T
// lost planes squeeze the all-to-all onto the survivors at T/(T-k) x
// the healthy duration. Multiplying by exactly 1 is a bit-exact
// identity, so the unscaled entry point above delegates here.
func (l LatencyModel) decodeStepTimeComm(lc latConsts, batch int, attn batchAttention, commScale float64) units.Seconds {
	if batch <= 0 {
		return 0
	}
	commPerLayer := lc.commPerToken * float64(batch) * commScale / l.InterconnectBW

	attnTime := attn.FLOPs / lc.peak
	if kv := attn.KVBytes / lc.mem; kv > attnTime {
		attnTime = kv
	}
	linFLOPs := 2 * lc.activeNonEmbedding * float64(batch)
	linTime := linFLOPs / lc.peak
	if lc.weightStream > linTime {
		linTime = lc.weightStream
	}
	computePerLayer := (attnTime + linTime) / lc.layers

	per := commPerLayer
	if computePerLayer > per {
		per = computePerLayer
	}
	return 2 * per * lc.layers
}

// PrefillTime returns the duration of prefilling a prompt of the given
// length on one prefill instance: the max of the compute roofline
// (linear plus causal attention FLOPs), the weight-streaming roofline
// (the resident weights are read once regardless of prompt length — the
// same memory leg DecodeStepTime pays, which floors short-prompt
// prefills), and the expert-parallel dispatch/combine traffic for all
// prompt tokens.
func (l LatencyModel) PrefillTime(promptTokens int) units.Seconds {
	return l.prefillTime(l.consts(), promptTokens)
}

func (l LatencyModel) prefillTime(lc latConsts, promptTokens int) units.Seconds {
	return l.prefillTimeComm(lc, promptTokens, 1)
}

// prefillTimeComm is prefillTime with the dispatch/combine leg scaled
// by commScale (see decodeStepTimeComm).
func (l LatencyModel) prefillTimeComm(lc latConsts, promptTokens int, commScale float64) units.Seconds {
	tokens := float64(promptTokens)
	linear := 2 * lc.activeNonEmbedding * tokens
	attn := lc.prefillAttnCoef * tokens * tokens / 2 * lc.layers
	compute := (linear + attn) / lc.peak
	if lc.weightStream > compute {
		compute = lc.weightStream
	}

	comm := lc.commPerToken * tokens * lc.layers * commScale / l.InterconnectBW
	if comm > compute {
		return comm
	}
	return compute
}

// KVBytesForContext returns the KV-cache volume of a context, the
// payload a prefill->decode migration moves.
func (l LatencyModel) KVBytesForContext(tokens int) units.Bytes {
	return l.Model.KVCacheBytesPerToken(l.KVBytesPerElem) * float64(tokens)
}

// kvBytesForContext is KVBytesForContext over the cached per-token
// footprint.
func (l LatencyModel) kvBytesForContext(lc latConsts, tokens int) units.Bytes {
	return lc.kvPerToken * float64(tokens)
}
