package servesim

import (
	"fmt"
	"math/rand"

	"dsv3/internal/parallel"
)

// RouterPolicy names a built-in instance-selection policy. The zero
// value (RouteLeastKV) is the pre-refactor behavior, so zero-value and
// historical configurations route identically.
type RouterPolicy int

const (
	// RouteLeastKV picks the candidate with the most free KV pages
	// (ties: lowest instance index) — the KV-pressure-aware default.
	RouteLeastKV RouterPolicy = iota
	// RouteRoundRobin cycles through instance indices, skipping
	// instances absent from the candidate set.
	RouteRoundRobin
	// RoutePowerOfTwo samples two distinct candidates from the policy's
	// seeded stream and keeps the less loaded one — the classic
	// load-balancing compromise between random and global scans.
	RoutePowerOfTwo
	// RouteShortestQueue picks the candidate with the fewest queued or
	// running requests (ties: most free KV, then lowest index).
	RouteShortestQueue
)

// String implements fmt.Stringer with the CLI spellings.
func (p RouterPolicy) String() string {
	switch p {
	case RouteLeastKV:
		return "least-kv"
	case RouteRoundRobin:
		return "round-robin"
	case RoutePowerOfTwo:
		return "p2c"
	case RouteShortestQueue:
		return "shortest-queue"
	}
	return fmt.Sprintf("RouterPolicy(%d)", int(p))
}

// RouterPolicies returns every built-in policy in definition order.
func RouterPolicies() []RouterPolicy {
	return []RouterPolicy{RouteLeastKV, RouteRoundRobin, RoutePowerOfTwo, RouteShortestQueue}
}

// ParseRouterPolicy resolves a policy by its String spelling.
func ParseRouterPolicy(s string) (RouterPolicy, error) {
	for _, p := range RouterPolicies() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("servesim: unknown router policy %q (want least-kv, round-robin, p2c, or shortest-queue)", s)
}

// Validate checks the policy is a known one.
func (p RouterPolicy) Validate() error {
	if p < RouteLeastKV || p > RouteShortestQueue {
		return fmt.Errorf("servesim: unknown router policy %d", int(p))
	}
	return nil
}

// InstanceLoad is the router-visible snapshot of one candidate
// instance at decision time.
type InstanceLoad struct {
	// Instance is the engine's instance index.
	Instance int
	// Queue counts requests queued or running on the instance
	// (pending + active batch for decode instances; 0 for the idle
	// prefill instances offered as candidates).
	Queue int
	// FreeKV is the instance's free KV pages (0 for prefill instances,
	// which hold no cache).
	FreeKV int
}

// Router is a deterministic instance-selection policy. The engine
// consults one router instance for prefill dispatch and another for the
// prefill->decode hand-off, so per-policy state (round-robin cursors,
// the power-of-two RNG stream) never couples the two decision points.
//
// Pick returns an index into loads (never an Instance id); loads is
// non-empty and ordered by ascending Instance. Implementations must be
// pure functions of (own state, loads) — any randomness has to come
// from a stream seeded at construction — so a (Config, Workload, Seed)
// triple keeps producing byte-identical reports.
type Router interface {
	Pick(loads []InstanceLoad) int
}

// NewRouter builds a fresh router for the policy. seed feeds the
// policies that randomize (power-of-two choices); deterministic
// policies ignore it.
func NewRouter(policy RouterPolicy, seed int64) Router {
	switch policy {
	case RouteRoundRobin:
		return &roundRobinRouter{last: -1}
	case RoutePowerOfTwo:
		return &p2cRouter{rng: parallel.NewRand(seed)}
	case RouteShortestQueue:
		return shortestQueueRouter{}
	default:
		return leastKVRouter{}
	}
}

// leastKVRouter picks the most free KV pages, first maximum on ties —
// exactly the scan the engine ran before routing became pluggable, so
// the serve* goldens are reproduced byte for byte.
type leastKVRouter struct{}

func (leastKVRouter) Pick(loads []InstanceLoad) int {
	best, bestFree := 0, -1
	for i, l := range loads {
		if l.FreeKV > bestFree {
			best, bestFree = i, l.FreeKV
		}
	}
	return best
}

// roundRobinRouter cycles over instance indices: the next pick is the
// smallest candidate Instance strictly greater than the last pick,
// wrapping to the smallest candidate overall. Cycling over Instance ids
// (not candidate positions) keeps the rotation meaningful when the
// candidate set shrinks, e.g. when only some prefill units are idle.
type roundRobinRouter struct {
	last int
}

func (r *roundRobinRouter) Pick(loads []InstanceLoad) int {
	pick := -1
	for i, l := range loads {
		if l.Instance > r.last {
			pick = i
			break
		}
	}
	if pick < 0 {
		pick = 0 // wrapped: loads is ascending, so [0] is the smallest
	}
	r.last = loads[pick].Instance
	return pick
}

// p2cRouter implements power-of-two choices: sample two distinct
// candidates, keep the less loaded. All randomness comes from the
// router's own seeded stream so the engine's RNG (MTP acceptance) is
// untouched by routing decisions.
type p2cRouter struct {
	rng *rand.Rand
}

func (r *p2cRouter) Pick(loads []InstanceLoad) int {
	if len(loads) == 1 {
		return 0
	}
	i := r.rng.Intn(len(loads))
	j := r.rng.Intn(len(loads) - 1)
	if j >= i {
		j++
	}
	if lessLoaded(loads[j], loads[i]) {
		return j
	}
	return i
}

// shortestQueueRouter picks the fewest queued/running requests, with
// free KV then instance index breaking ties.
type shortestQueueRouter struct{}

func (shortestQueueRouter) Pick(loads []InstanceLoad) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if lessLoaded(loads[i], loads[best]) {
			best = i
		}
	}
	return best
}

// lessLoaded orders candidates by queue length, then free KV pages
// (more is better), then instance index — strict, so every comparison
// is deterministic.
func lessLoaded(a, b InstanceLoad) bool {
	if a.Queue != b.Queue {
		return a.Queue < b.Queue
	}
	if a.FreeKV != b.FreeKV {
		return a.FreeKV > b.FreeKV
	}
	return a.Instance < b.Instance
}
