package servesim

import (
	"dsv3/internal/obs"
	"dsv3/internal/units"
)

// This file is the engine's entire coupling to the observability
// layer: two attach points plus nil-checked hook wrappers. With
// nothing attached every wrapper is one pointer comparison, so the
// disabled path executes the same instruction stream — and the same
// zero per-event allocations — as an engine built before internal/obs
// existed. Hooks fire at the engine's current simulated time inside
// the single-threaded event loop, which gives the tracer its ordering
// and determinism guarantees for free.
//
// Phase discipline: transitions always end the previous phase and
// begin the next at the same e.now, so a request's per-phase durations
// telescope exactly to its end-to-end latency (the reconciliation
// invariant trace_test.go pins).

// AttachTracer installs a request-lifecycle tracer on the engine (nil
// detaches). The tracer is reset (BeginRun) at the start of every Run,
// so one tracer follows one engine across pooled runs. Attach points
// live on the Engine, not the Config: configs are copied per sweep
// point, and a shared tracer pointer inside them would alias state
// across parallel workers.
func (e *Engine) AttachTracer(t obs.Tracer) { e.tracer = t }

// AttachMetrics installs a time-series metrics registry (nil
// detaches). Each Run resets the registry, registers the engine's
// metric set, and samples it on the registry's cadence.
func (e *Engine) AttachMetrics(m *obs.Registry) { e.metrics = m }

// metricIdx holds the registry column indices the engine fills each
// sample. Tier slices are engine-owned and recycled across runs.
type metricIdx struct {
	queue, batch, kvOcc, healthy               int
	completed, failed, shed, retries, preempts int
	offloads, reloads                          int
	sdcSteps, sdcDetected, grayDrains          int
	hedges, hedgeWins                          int
	tierOcc, tierIn, tierOut                   []int
}

func reqInfo(r *reqState) obs.ReqInfo {
	return obs.ReqInfo{
		ID:           r.ID,
		Session:      r.Session,
		PromptTokens: r.PromptTokens,
		OutputTokens: r.OutputTokens,
	}
}

// Hedge clones share their original's request ID, so their phase and
// mark hooks are suppressed: one ID must carry one phase timeline for
// the reconciliation invariant to hold. Hedge-specific marks (hedge,
// hedge-win, corrupt) fire on the arena original; clone compute still
// shows up in the per-instance compute slices, where it belongs.

func (e *Engine) trPhaseBegin(req *reqState, ph obs.Phase, inst int) {
	if e.tracer != nil && !req.isClone {
		e.tracer.PhaseBegin(e.now, reqInfo(req), ph, inst)
	}
}

func (e *Engine) trPhaseEnd(req *reqState) {
	if e.tracer != nil && !req.isClone {
		e.tracer.PhaseEnd(e.now, req.ID)
	}
}

func (e *Engine) trMark(req *reqState, m obs.Mark) {
	if e.tracer != nil && !req.isClone {
		e.tracer.Mark(e.now, reqInfo(req), m)
	}
}

func (e *Engine) trCompute(dur units.Seconds, prefill bool, inst int, kind obs.ComputeKind, v int) {
	if e.tracer != nil {
		e.tracer.Compute(e.now, dur, prefill, inst, kind, v)
	}
}

func (e *Engine) trIncident(prefill bool, inst int, kind string) {
	if e.tracer != nil {
		e.tracer.Incident(e.now, prefill, inst, kind)
	}
}

// obsBeginRun resets the attached tracer and registry for a new run
// and registers the engine's metric set. Called once per Run after the
// fleet shape is known; a no-op when nothing is attached.
func (e *Engine) obsBeginRun(nPrefill, nDecode int) {
	if e.tracer != nil {
		e.tracer.BeginRun(obs.RunInfo{
			Prefill:   nPrefill,
			Decode:    nDecode,
			Colocated: e.cfg.Fleet.Colocated,
		})
	}
	m := e.metrics
	if m == nil {
		return
	}
	m.Reset()
	mi := &e.mi
	mi.queue = m.Gauge("queue_depth", "req")
	mi.batch = m.Gauge("running_batch", "req")
	mi.kvOcc = m.Gauge("kv_occupancy", "frac")
	mi.healthy = m.Gauge("healthy_instances", "inst")
	mi.completed = m.Counter("completed", "req")
	mi.failed = m.Counter("failed", "req")
	mi.shed = m.Counter("shed", "req")
	mi.retries = m.Counter("retries", "")
	mi.preempts = m.Counter("preemptions", "")
	if e.hz.on {
		mi.sdcSteps = m.Counter("sdc_steps", "")
		mi.sdcDetected = m.Counter("sdc_detected", "")
		mi.grayDrains = m.Counter("gray_drains", "")
	}
	if e.hedge.on {
		mi.hedges = m.Counter("hedges", "")
		mi.hedgeWins = m.Counter("hedge_wins", "")
	}
	mi.tierOcc = mi.tierOcc[:0]
	mi.tierIn = mi.tierIn[:0]
	mi.tierOut = mi.tierOut[:0]
	if e.hier.on {
		mi.offloads = m.Counter("kv_offloads", "")
		mi.reloads = m.Counter("kv_reloads", "")
		for i := range e.cfg.KV.Tiers {
			label := e.cfg.KV.Tiers[i].label(i)
			mi.tierOcc = append(mi.tierOcc, m.Gauge(label+"_occupancy", "frac"))
			mi.tierIn = append(mi.tierIn, m.Counter(label+"_bytes_in", "B"))
			mi.tierOut = append(mi.tierOut, m.Counter(label+"_bytes_out", "B"))
		}
	}
}

// obsEndRun closes the trace at the final simulated time.
func (e *Engine) obsEndRun() {
	if e.tracer != nil {
		e.tracer.EndRun(e.now)
	}
}

// metricsUpTo commits one metrics sample for every registry grid
// instant that has passed. Like sampleUpTo, state is constant between
// events, so carrying the current snapshot onto the grid is exact.
func (e *Engine) metricsUpTo(t units.Seconds) {
	m := e.metrics
	if m == nil {
		return
	}
	for {
		ts, ok := m.Due(t)
		if !ok {
			return
		}
		e.fillMetrics(m.Scratch())
		m.Commit(ts)
	}
}

// fillMetrics snapshots the engine into one registry sample row.
func (e *Engine) fillMetrics(row []units.Seconds) {
	mi := &e.mi
	batch, used, total := e.fleetSnapshot()
	row[mi.queue] = float64(e.prefillQ.len())
	row[mi.batch] = float64(batch)
	if total > 0 {
		row[mi.kvOcc] = float64(used) / float64(total)
	}
	healthy := 0
	for i := range e.prefills {
		if e.prefills[i].health == healthUp {
			healthy++
		}
	}
	for i := range e.decodes {
		if e.decodes[i].health == healthUp {
			healthy++
		}
	}
	row[mi.healthy] = float64(healthy)
	row[mi.completed] = float64(len(e.completed))
	row[mi.failed] = float64(len(e.failed))
	row[mi.shed] = float64(e.shed)
	row[mi.retries] = float64(e.retries)
	row[mi.preempts] = float64(e.preempts)
	if e.hz.on {
		row[mi.sdcSteps] = float64(e.hz.sdcSteps)
		row[mi.sdcDetected] = float64(e.hz.sdcDetected)
		row[mi.grayDrains] = float64(e.hz.grayDrains)
	}
	if e.hedge.on {
		row[mi.hedges] = float64(e.hedge.hedged)
		row[mi.hedgeWins] = float64(e.hedge.wins)
	}
	if e.hier.on {
		h := &e.hier
		row[mi.offloads] = float64(h.offloads)
		row[mi.reloads] = float64(h.reloads)
		for i := range mi.tierOcc {
			if c := h.caps[i]; c > 0 {
				row[mi.tierOcc[i]] = float64(h.used[i]) / float64(c)
			}
			row[mi.tierIn[i]] = h.bytesIn[i+1]
			row[mi.tierOut[i]] = h.bytesOut[i+1]
		}
	}
}
