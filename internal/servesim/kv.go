package servesim

import (
	"fmt"

	"dsv3/internal/model"
	"dsv3/internal/units"
)

// KVConfig sizes the paged KV-cache pool of one decode (or colocated)
// instance. The per-token footprint comes from the model's attention
// design (model.Config.KVCacheBytesPerToken — Table 1), which is how
// MLA's compressed cache translates directly into serving capacity.
type KVConfig struct {
	// CapacityBytes is the HBM left for KV after weights and
	// activations.
	CapacityBytes units.Bytes
	// PageTokens is the allocation granularity in tokens (vLLM-style
	// paging; 64 by default).
	PageTokens int
	// BytesPerElem is the cached element width (1 for FP8 KV).
	BytesPerElem float64
}

// Validate checks the configuration.
func (k KVConfig) Validate() error {
	if k.CapacityBytes <= 0 || k.PageTokens <= 0 || k.BytesPerElem <= 0 {
		return fmt.Errorf("servesim: non-positive KV config %+v", k)
	}
	return nil
}

// PagesFor returns the pages a context of tokens occupies.
func (k KVConfig) PagesFor(tokens int) int {
	return (tokens + k.PageTokens - 1) / k.PageTokens
}

// TotalPages returns the pool size for the given model.
func (k KVConfig) TotalPages(m *model.Config) int {
	perToken := m.KVCacheBytesPerToken(k.BytesPerElem)
	pageBytes := perToken * float64(k.PageTokens)
	if pageBytes <= 0 {
		return 0
	}
	return int(k.CapacityBytes / pageBytes)
}

// kvPool is the page allocator of one instance: a counter, because
// pages are interchangeable — what matters for the simulation is
// exhaustion, admission, and occupancy, not page identity.
type kvPool struct {
	cfg   KVConfig
	total int
	used  int
}

func newKVPool(cfg KVConfig, m *model.Config) *kvPool {
	return &kvPool{cfg: cfg, total: cfg.TotalPages(m)}
}

// tryAlloc claims n pages, reporting whether they were available.
func (p *kvPool) tryAlloc(n int) bool {
	if p.used+n > p.total {
		return false
	}
	p.used += n
	return true
}

// release returns n pages to the pool.
func (p *kvPool) release(n int) {
	p.used -= n
	if p.used < 0 {
		panic("servesim: kv pool released more pages than allocated")
	}
}

// free returns the available pages.
func (p *kvPool) free() int { return p.total - p.used }

// occupancy returns the used fraction in [0,1].
func (p *kvPool) occupancy() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.used) / float64(p.total)
}
