package servesim

import (
	"errors"
	"fmt"

	"dsv3/internal/mtp"
	"dsv3/internal/units"
)

// Config describes the serving cluster as three cohesive sub-configs —
// Fleet (instance topology and batching), KV (the tiered cache
// hierarchy), and Resilience (faults, retries, admission) — plus the
// latency model, optional MTP speculation, the SLO, and the seed.
// Every sub-config's zero value preserves the historical semantics:
// no tiers, no faults, admit everything, least-KV routing.
type Config struct {
	Latency LatencyModel

	// Fleet shapes the deployment: instance counts, colocation,
	// batching, the prefill->decode hand-off, and routing.
	Fleet FleetConfig

	// KV is the tiered KV-cache hierarchy. KV.HBM is the legacy paged
	// pool (tier 0); KV.Tiers adds below-HBM offload targets and
	// KV.PrefixCache enables session prefix reuse. An HBM-only
	// hierarchy reproduces the historical allocator bit-for-bit.
	KV KVHierarchy

	// MTP enables speculative decoding: each step costs
	// MTP.StepCost() x the base step and every request draws up to
	// MTP.Modules extra accepted tokens per step. Nil disables.
	MTP *mtp.Config

	// Resilience groups fault injection, retry, and admission control.
	Resilience ResilienceConfig

	SLO  SLO
	Seed int64
}

// FleetConfig shapes the serving fleet: how many instances, whether
// prefill and decode are disaggregated or colocated, the continuous-
// batching cap, the KV hand-off bandwidth, and the routing policy.
type FleetConfig struct {
	// PrefillInstances and DecodeInstances size the disaggregated
	// deployment. Under Colocated the two pools merge into
	// PrefillInstances+DecodeInstances unified instances that both
	// prefill and decode.
	PrefillInstances int
	DecodeInstances  int
	Colocated        bool
	// ColocatedStride is the minimum number of decode steps a
	// colocated instance runs between stall-the-world prefills (the
	// decode-SLO-protecting policy; a prefill also runs whenever the
	// instance has nothing to decode). Default 4.
	ColocatedStride int

	// MaxBatch caps the continuous-batching decode batch per instance.
	MaxBatch int
	// TransferBW is the prefill->decode KV migration bandwidth; 0
	// makes the hand-off instantaneous.
	TransferBW units.BytesPerSecond

	// Router selects the instance-selection policy applied to both
	// prefill dispatch and the prefill->decode hand-off. The zero value
	// (RouteLeastKV) reproduces the historical routing. Colocated
	// instances pull work from the shared queue themselves, so the
	// policy has no effect under Colocated.
	Router RouterPolicy

	// Shards partitions the decode fleet across that many concurrently
	// advancing sub-engines synchronized at conservative time windows
	// (see shard.go / DESIGN.md "Fleet-scale execution"). Output bytes
	// are identical for every shard count — 0 and 1 mean serial, and
	// configurations the window scheme cannot cover (colocation, MTP,
	// KV tiers, instantaneous hand-off, trace-driven arrivals) silently
	// run serial as well. Values above the decode instance count clamp.
	Shards int

	// Scheduler selects the event-queue implementation (heap default,
	// calendar for fleet-scale runs). Pure performance profile: the pop
	// order, and therefore every output byte, is identical across kinds.
	Scheduler SchedulerKind
}

// shape resolves the fleet into (prefill, decode) unit counts; under
// Colocated the pools merge into unified decode-capable instances.
func (f FleetConfig) shape() (nPrefill, nDecode int) {
	if f.Colocated {
		return 0, f.PrefillInstances + f.DecodeInstances
	}
	return f.PrefillInstances, f.DecodeInstances
}

// Validate checks the fleet shape, reporting every problem at once.
func (f FleetConfig) Validate() error {
	var errs []error
	if f.MaxBatch <= 0 {
		errs = append(errs, fmt.Errorf("servesim: max batch must be positive, got %d", f.MaxBatch))
	}
	if f.PrefillInstances < 0 || f.DecodeInstances < 0 {
		errs = append(errs, fmt.Errorf("servesim: negative instance counts %d+%d", f.PrefillInstances, f.DecodeInstances))
	} else if f.Colocated {
		if f.PrefillInstances+f.DecodeInstances <= 0 {
			errs = append(errs, errors.New("servesim: colocated cluster needs at least one instance"))
		}
	} else if f.PrefillInstances <= 0 || f.DecodeInstances <= 0 {
		errs = append(errs, fmt.Errorf("servesim: disaggregated cluster needs prefill and decode instances, got %d+%d",
			f.PrefillInstances, f.DecodeInstances))
	}
	if f.TransferBW < 0 {
		errs = append(errs, fmt.Errorf("servesim: negative transfer bandwidth %v", f.TransferBW))
	}
	if f.Shards < 0 {
		errs = append(errs, fmt.Errorf("servesim: negative shard count %d", f.Shards))
	}
	if err := f.Scheduler.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := f.Router.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// ResilienceConfig groups the failure-handling knobs: fault injection,
// the retry policy for orphaned requests, and admission control. The
// zero value injects nothing, fails every orphan immediately, and
// admits everything — a fault-free build.
type ResilienceConfig struct {
	// Faults injects instance crash/recover/drain events (scheduled
	// and/or MTBF-random) into the run; nil disables fault injection
	// and the engine behaves exactly as a fault-free build.
	Faults *FaultPlan
	// Retry governs requests orphaned by crashes; the zero value fails
	// every orphan immediately (see DefaultRetryPolicy).
	Retry RetryPolicy
	// Admission sheds arriving requests under overload (queue-depth /
	// KV-occupancy gates); the zero value admits everything.
	Admission AdmissionPolicy
	// Hazards maps substrate faults — network plane loss, silent data
	// corruption — into the serving-layer fault model (hazard.go); nil
	// disables the hazard machinery entirely.
	Hazards *HazardPlan
	// Hedge dispatches speculative duplicate requests after a delay,
	// first-wins (hazard.go); the zero value never hedges.
	Hedge HedgePolicy
}

// validate checks the resilience knobs against the fleet they target
// (fault events name instances; colocated fleets have no prefill
// targets), reporting every problem at once.
func (r ResilienceConfig) validate(f FleetConfig) error {
	errs := []error{r.Retry.Validate(), r.Admission.Validate(), r.Hedge.Validate()}
	nPrefill, nDecode := f.shape()
	if r.Faults != nil {
		errs = append(errs, r.Faults.validate(nPrefill, nDecode, f.Colocated))
	}
	if r.Hazards != nil {
		errs = append(errs, r.Hazards.validate(nPrefill, nDecode, f.Colocated))
	}
	return errors.Join(errs...)
}

// V3ServeConfig returns a small reference deployment: the V3 latency
// model, 2 prefill + 4 decode instances, batch 64, FP8 paged KV in
// 64 GB of HBM per instance, no below-HBM tiers.
func V3ServeConfig() Config {
	l := V3LatencyModel()
	return Config{
		Latency: l,
		Fleet: FleetConfig{
			PrefillInstances: 2,
			DecodeInstances:  4,
			ColocatedStride:  4,
			MaxBatch:         64,
			TransferBW:       50 * units.GB,
		},
		KV: KVHierarchy{
			HBM: KVConfig{
				CapacityBytes: 64 * units.GB,
				PageTokens:    64,
				BytesPerElem:  l.KVBytesPerElem,
			},
		},
		SLO:  DefaultSLO(),
		Seed: 1,
	}
}

// Validate walks every sub-config — latency model, fleet, KV
// hierarchy, resilience, MTP — and returns all problems at once via
// errors.Join (nil when the configuration is sound). Workload-
// dependent checks (the worst-case-request fit) run in Run, which
// joins them with these.
func (c Config) Validate() error {
	errs := []error{
		c.Latency.Validate(),
		c.Fleet.Validate(),
		c.KV.Validate(),
		c.Resilience.validate(c.Fleet),
	}
	if c.MTP != nil {
		errs = append(errs, c.MTP.Validate())
	}
	return errors.Join(errs...)
}

// validateRun joins the static configuration and workload checks with
// the cross-cutting one: a single worst-case request must fit in one
// instance's HBM pool, or preemption could livelock with no victim to
// evict. (Below-HBM tiers hold offloaded chunks, not live batches, so
// the fit check stays on HBM.)
func (c Config) validateRun(w Workload) error {
	cfgErr := c.Validate()
	wErr := w.Validate()
	if cfgErr != nil || wErr != nil {
		return errors.Join(cfgErr, wErr)
	}
	total := c.KV.HBM.TotalPages(c.Latency.Model)
	if need := c.KV.HBM.PagesFor(w.maxContextTokens()); need > total {
		return fmt.Errorf("servesim: KV pool (%d pages) cannot hold one worst-case request (%d pages)", total, need)
	}
	return nil
}
