package servesim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dsv3/internal/units"
)

// FaultKind names one instance-level fault transition.
type FaultKind int

const (
	// FaultCrash kills an instance: its in-flight prefill/decode work is
	// orphaned, its KV pool is freed (the blast radius is reported in
	// tokens and affected requests), and it is excluded from routing
	// until a recover event.
	FaultCrash FaultKind = iota
	// FaultRecover returns a crashed or draining instance to service.
	FaultRecover
	// FaultDrain marks planned degradation: the instance finishes the
	// work it already holds but is excluded from new routing decisions.
	FaultDrain
)

// String implements fmt.Stringer with the CLI spellings.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRecover:
		return "recover"
	case FaultDrain:
		return "drain"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled fault: at time At, apply Kind to the
// Instance-th prefill (Prefill true) or decode/colocated instance.
type FaultEvent struct {
	At       units.Seconds
	Kind     FaultKind
	Prefill  bool
	Instance int
}

// FaultPlan drives deterministic failure injection: a fixed schedule of
// crash/recover/drain events plus optional MTBF-style random crashes.
// All randomness (crash times, instance picks, recovery delays) comes
// from a dedicated seed stream derived from Config.Seed, so a faulted
// run is as reproducible as a clean one and the workload, MTP and
// routing streams are untouched by the plan.
type FaultPlan struct {
	// Events is the scheduled fault script, applied in (time, order)
	// sequence. Events need not be sorted.
	Events []FaultEvent

	// MTBF is the fleet-wide mean time between random instance crashes
	// (exponential gaps; each crash picks a uniform random instance).
	// 0 disables random injection.
	MTBF units.Seconds
	// MTTR is the mean time to repair an MTBF-crashed instance
	// (exponential); 0 leaves random-crashed instances down for the
	// rest of the run. Scheduled FaultCrash events are not auto-repaired
	// — pair them with explicit FaultRecover events.
	MTTR units.Seconds

	// RecoveryWindow is the goodput averaging window of the per-incident
	// recovery-time metric (default 5 s): an incident has recovered at
	// the first instant the within-SLO completion rate over the next
	// window reaches RecoveryBand x its pre-crash level.
	RecoveryWindow units.Seconds
	// RecoveryBand is the recovered fraction of pre-crash goodput in
	// (0, 1] (default 0.8).
	RecoveryBand float64
}

// validate checks the plan against the cluster shape resolved from the
// configuration (colocated fleets have no separate prefill targets).
func (p *FaultPlan) validate(nPrefill, nDecode int, colocated bool) error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("servesim: fault event %d at negative time %v", i, ev.At)
		}
		if ev.Kind < FaultCrash || ev.Kind > FaultDrain {
			return fmt.Errorf("servesim: fault event %d has unknown kind %d", i, int(ev.Kind))
		}
		if ev.Prefill {
			if colocated {
				return fmt.Errorf("servesim: fault event %d targets a prefill instance but the cluster is colocated", i)
			}
			if ev.Instance < 0 || ev.Instance >= nPrefill {
				return fmt.Errorf("servesim: fault event %d targets prefill instance %d of %d", i, ev.Instance, nPrefill)
			}
		} else if ev.Instance < 0 || ev.Instance >= nDecode {
			return fmt.Errorf("servesim: fault event %d targets decode instance %d of %d", i, ev.Instance, nDecode)
		}
	}
	if p.MTBF < 0 || p.MTTR < 0 {
		return fmt.Errorf("servesim: negative MTBF/MTTR %v/%v", p.MTBF, p.MTTR)
	}
	if p.RecoveryWindow < 0 {
		return fmt.Errorf("servesim: negative recovery window %v", p.RecoveryWindow)
	}
	if p.RecoveryBand < 0 || p.RecoveryBand > 1 {
		return fmt.Errorf("servesim: recovery band %v outside [0,1]", p.RecoveryBand)
	}
	return nil
}

// recoveryWindow returns the configured window with the default
// applied. Nil-safe: SDC quarantines and gray-failure drains record
// incidents without a FaultPlan, and recovery resolution still runs
// over them with the defaults.
func (p *FaultPlan) recoveryWindow() units.Seconds {
	if p != nil && p.RecoveryWindow > 0 {
		return p.RecoveryWindow
	}
	return 5
}

// recoveryBand returns the configured band with the default applied
// (nil-safe, see recoveryWindow).
func (p *FaultPlan) recoveryBand() float64 {
	if p != nil && p.RecoveryBand > 0 {
		return p.RecoveryBand
	}
	return 0.8
}

// RetryPolicy governs requests orphaned by an instance crash (or by a
// hand-off that finds no healthy decode instance): each orphan re-enters
// prefill dispatch after an exponential backoff until its budget runs
// out, at which point it becomes a failed request. The zero value
// retries nothing — every orphan fails immediately.
type RetryPolicy struct {
	// MaxRetries is the per-request retry budget (0: fail on first
	// orphaning).
	MaxRetries int
	// Backoff delays the first retry; retry n waits
	// Backoff * BackoffFactor^(n-1), capped at MaxBackoff.
	Backoff units.Seconds
	// BackoffFactor multiplies the delay per retry (values <= 0 are
	// treated as 1: constant backoff).
	BackoffFactor float64
	// MaxBackoff caps the delay (0: uncapped).
	MaxBackoff units.Seconds
}

// DefaultRetryPolicy returns the reference policy: 3 retries starting
// at 250 ms, doubling, capped at 4 s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 0.25, BackoffFactor: 2, MaxBackoff: 4}
}

// Validate checks the policy.
func (r RetryPolicy) Validate() error {
	if r.MaxRetries < 0 {
		return fmt.Errorf("servesim: negative retry budget %d", r.MaxRetries)
	}
	if r.Backoff < 0 || r.MaxBackoff < 0 {
		return fmt.Errorf("servesim: negative retry backoff %v/%v", r.Backoff, r.MaxBackoff)
	}
	return nil
}

// delay returns the backoff before the n-th retry (n >= 1). The
// multiply loop stops as soon as the cap is passed, so a huge budget x
// factor product never walks the delay out to +Inf before capping.
func (r RetryPolicy) delay(n int) units.Seconds {
	d := r.Backoff
	if f := r.BackoffFactor; f > 0 {
		for i := 1; i < n; i++ {
			d *= f
			if r.MaxBackoff > 0 && d > r.MaxBackoff {
				break
			}
		}
	}
	if r.MaxBackoff > 0 && d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

// AdmissionPolicy sheds arriving requests under overload so the
// latency of admitted requests stays bounded instead of collapsing —
// graceful degradation for the fleet. The zero value admits everything.
type AdmissionPolicy struct {
	// MaxQueueDepth sheds an arrival when the shared prefill queue
	// already holds at least this many requests (0: unlimited).
	MaxQueueDepth int
	// MaxKVOccupancy sheds an arrival when the fleet-wide KV occupancy
	// of up instances exceeds this fraction (0: disabled).
	MaxKVOccupancy float64
}

// Validate checks the policy.
func (a AdmissionPolicy) Validate() error {
	if a.MaxQueueDepth < 0 {
		return fmt.Errorf("servesim: negative admission queue depth %d", a.MaxQueueDepth)
	}
	if a.MaxKVOccupancy < 0 || a.MaxKVOccupancy > 1 {
		return fmt.Errorf("servesim: admission KV occupancy %v outside [0,1]", a.MaxKVOccupancy)
	}
	return nil
}

// enabled reports whether the policy can ever shed.
func (a AdmissionPolicy) enabled() bool {
	return a.MaxQueueDepth > 0 || a.MaxKVOccupancy > 0
}

// String renders the policy in the CLI spec syntax.
func (a AdmissionPolicy) String() string {
	var parts []string
	if a.MaxQueueDepth > 0 {
		parts = append(parts, fmt.Sprintf("queue=%d", a.MaxQueueDepth))
	}
	if a.MaxKVOccupancy > 0 {
		parts = append(parts, fmt.Sprintf("kv=%g", a.MaxKVOccupancy))
	}
	if len(parts) == 0 {
		return "admit-all"
	}
	return strings.Join(parts, ",")
}

// Incident is the measured blast radius of one instance-level event
// that dropped work: a crash, a detected-SDC quarantine, or a
// gray-failure drain.
type Incident struct {
	// At is the incident time; Instance/Prefill identify the victim.
	At       units.Seconds
	Instance int
	Prefill  bool
	// Kind labels the incident: "crash", "sdc" (detected corruption
	// quarantined the instance), or "gray-drain" (EWMA straggler
	// detection drained it).
	Kind string
	// Orphaned counts the requests dropped with the instance (active
	// batch, landing queue, and any in-flight prefill).
	Orphaned int
	// KVTokensLost is the KV-resident context the crash destroyed, in
	// tokens (decode pool contents plus partially built prefill KV).
	KVTokensLost int
	// Recovery is the time from the crash until the fleet's within-SLO
	// completion rate regained RecoveryBand x its pre-crash level over a
	// RecoveryWindow (0 when there was no pre-crash goodput to regain;
	// censored at run end when goodput never returned to the band).
	Recovery units.Seconds
}

// ParseFaultEvents reads the CLI fault-script syntax: comma-separated
// "kind@seconds:target" items, where kind is crash, recover, or drain
// and target is dN (decode/colocated instance N) or pN (prefill
// instance N) — e.g. "crash@8:d1,recover@16:d1".
func ParseFaultEvents(s string) ([]FaultEvent, error) {
	var out []FaultEvent
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kindAt, target, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("servesim: fault %q: want kind@seconds:target", item)
		}
		kindStr, atStr, ok := strings.Cut(kindAt, "@")
		if !ok {
			return nil, fmt.Errorf("servesim: fault %q: want kind@seconds:target", item)
		}
		var kind FaultKind
		switch strings.TrimSpace(kindStr) {
		case "crash":
			kind = FaultCrash
		case "recover":
			kind = FaultRecover
		case "drain":
			kind = FaultDrain
		default:
			return nil, fmt.Errorf("servesim: fault %q: unknown kind %q (want crash, recover, or drain)", item, kindStr)
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(atStr), 64)
		if err != nil {
			return nil, fmt.Errorf("servesim: fault %q: bad time: %w", item, err)
		}
		if math.IsNaN(at) || math.IsInf(at, 0) {
			// ParseFloat accepts "NaN" and "Inf", and the plan's validate
			// only rejects At < 0 — a NaN-timed event would slip through
			// into the scheduler. Reject non-finite times here, naming
			// the offending item.
			return nil, fmt.Errorf("servesim: fault %q: non-finite time", item)
		}
		target = strings.TrimSpace(target)
		if len(target) < 2 || (target[0] != 'd' && target[0] != 'p') {
			return nil, fmt.Errorf("servesim: fault %q: bad target %q (want dN or pN)", item, target)
		}
		inst, err := strconv.Atoi(target[1:])
		if err != nil {
			return nil, fmt.Errorf("servesim: fault %q: bad target %q: %w", item, target, err)
		}
		out = append(out, FaultEvent{At: at, Kind: kind, Prefill: target[0] == 'p', Instance: inst})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("servesim: empty fault script %q", s)
	}
	return out, nil
}

// ParseAdmissionPolicy reads the CLI admission spec: comma-separated
// "queue=N" and/or "kv=F" clauses — e.g. "queue=32,kv=0.9".
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	var a AdmissionPolicy
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return a, fmt.Errorf("servesim: admission %q: want queue=N or kv=F", item)
		}
		switch strings.TrimSpace(key) {
		case "queue":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return a, fmt.Errorf("servesim: admission %q: %w", item, err)
			}
			a.MaxQueueDepth = n
		case "kv":
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return a, fmt.Errorf("servesim: admission %q: %w", item, err)
			}
			a.MaxKVOccupancy = f
		default:
			return a, fmt.Errorf("servesim: admission %q: unknown key %q (want queue or kv)", item, key)
		}
	}
	if err := a.Validate(); err != nil {
		return AdmissionPolicy{}, err
	}
	return a, nil
}
