package servesim

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// hazardTestPlan is the reference composed incident of the hazard
// tests: decode instance 1 loses 6 of 8 planes from t=4s to t=16s,
// plus a 0.1% per-step silent-corruption rate. With detect it adds the
// full detection stack (Freivalds verification, EWMA draining,
// quarantine repair).
func hazardTestPlan(detect bool) *HazardPlan {
	plan := &HazardPlan{
		Planes: []PlaneHazardEvent{
			{At: 4, Instance: 1, FailedPlanes: 6, TotalPlanes: 8},
			{At: 16, Heal: true, Instance: 1},
		},
		SDCRate: 0.001,
	}
	if detect {
		plan.VerifyTrials = 8
		plan.Detect = DetectionConfig{Threshold: 1.25}
		plan.QuarantineRepair = 4
	}
	return plan
}

func hazardTestConfig(detect bool) Config {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Retry = DefaultRetryPolicy()
	cfg.Resilience.Hazards = hazardTestPlan(detect)
	return cfg
}

func mustJSON(t *testing.T, r *Report) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The determinism contract extends to hazardous runs: same seed,
// config and plan reproduce the report byte for byte, and a hazardous
// run must differ from the clean one.
func TestHazardDeterminism(t *testing.T) {
	cfg := hazardTestConfig(true)
	w := testWorkload(5, 150)
	a := mustJSON(t, mustRun(t, cfg, w))
	if b := mustJSON(t, mustRun(t, cfg, w)); a != b {
		t.Fatalf("hazardous runs diverged:\n%s\n%s", a, b)
	}
	clean := cfg
	clean.Resilience.Hazards = nil
	if c := mustJSON(t, mustRun(t, clean, w)); a == c {
		t.Error("hazardous report identical to hazard-free report")
	}
}

// A pooled engine must behave exactly like a fresh one: a hazardous
// run must not leak state into a following clean run (the hazard
// counters are engine-owned and recycled), and re-running the
// hazardous config reproduces the first report.
func TestHazardPooledEngineReuse(t *testing.T) {
	hz := hazardTestConfig(true)
	hz.Resilience.Hedge = HedgePolicy{Delay: 4}
	clean := hz
	clean.Resilience.Hazards = nil
	clean.Resilience.Hedge = HedgePolicy{}
	w := testWorkload(5, 150)

	e := NewEngine()
	first, err := e.Run(hz, w)
	if err != nil {
		t.Fatal(err)
	}
	hazJSON := mustJSON(t, first)
	cleanPooled, err := e.Run(clean, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, cleanPooled); got != mustJSON(t, mustRun(t, clean, w)) {
		t.Error("clean run on a pooled engine differs from a fresh engine after a hazardous run")
	}
	if cleanPooled.CorruptSteps != 0 || cleanPooled.CorruptResponses != 0 ||
		cleanPooled.GrayDrained != 0 || cleanPooled.Hedges != 0 || cleanPooled.HedgeWastedTokens != 0 {
		t.Errorf("hazard counters leaked into the clean run: %+v", cleanPooled)
	}
	again, err := e.Run(hz, w)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, again) != hazJSON {
		t.Error("pooled hazardous re-run differs from the first run")
	}
}

// Hazardous configs must force the serial event loop: a sharded fleet
// request produces byte-identical output to the serial run.
func TestHazardShardedFallback(t *testing.T) {
	cfg := hazardTestConfig(true)
	w := testWorkload(5, 150)
	serial := mustJSON(t, mustRun(t, cfg, w))
	cfg.Fleet.Shards = 2
	if sharded := mustJSON(t, mustRun(t, cfg, w)); sharded != serial {
		t.Fatal("sharded hazardous run diverged from serial")
	}
}

// The detection stack is the point of the subsystem: without it,
// undetected corruption taints completed responses; with it, Freivalds
// verification catches corrupt steps (quarantining instead of
// completing) and the EWMA tracker drains the plane-degraded
// straggler.
func TestHazardDetectionCatchesCorruption(t *testing.T) {
	w := testWorkload(5, 150)
	off := mustRun(t, hazardTestConfig(false), w)
	on := mustRun(t, hazardTestConfig(true), w)

	if off.CorruptSteps == 0 {
		t.Fatal("no corrupt steps injected with detection off")
	}
	if off.SDCDetected != 0 {
		t.Errorf("detection off caught %d steps", off.SDCDetected)
	}
	if off.CorruptResponses == 0 {
		t.Error("undetected corruption produced no corrupt responses")
	}
	if on.SDCDetected == 0 {
		t.Error("detection on caught nothing")
	}
	if on.CorruptResponses >= off.CorruptResponses {
		t.Errorf("detection did not reduce corrupt responses: on %d, off %d",
			on.CorruptResponses, off.CorruptResponses)
	}
	if on.GrayDrained == 0 {
		t.Error("EWMA detection never drained the degraded straggler")
	}
	var sdc, gray bool
	for _, inc := range on.Incidents {
		sdc = sdc || inc.Kind == "sdc"
		gray = gray || inc.Kind == "gray-drain"
	}
	if !sdc || !gray {
		t.Errorf("incident log missing hazard kinds (sdc=%v gray-drain=%v)", sdc, gray)
	}
	// Corrupt completions never count as SLO-good.
	if off.GoodputRPS >= on.GoodputRPS && off.CorruptResponses > off.Completed/2 {
		// Heavy corruption with detection off must gut goodput even
		// though raw completion latency looks healthy.
		t.Logf("off goodput %.2f vs on %.2f", off.GoodputRPS, on.GoodputRPS)
	}
}

// Hedged requests race a duplicate against a permanently degraded
// straggler: some duplicates must win, losers are cancelled and
// charged as wasted work, and every request still resolves exactly
// once.
func TestHedgeFirstWins(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Retry = DefaultRetryPolicy()
	cfg.Resilience.Hazards = &HazardPlan{Planes: []PlaneHazardEvent{
		{At: 2, Instance: 1, FailedPlanes: 7, TotalPlanes: 8},
	}}
	cfg.Resilience.Hedge = HedgePolicy{Delay: 4}
	w := testWorkload(4, 150)
	r := mustRun(t, cfg, w)

	if r.Hedges == 0 {
		t.Fatal("no hedges fired")
	}
	if r.HedgeWins == 0 {
		t.Error("no hedge ever won against the straggler")
	}
	if r.HedgeWins > r.Hedges {
		t.Errorf("more wins (%d) than hedges (%d)", r.HedgeWins, r.Hedges)
	}
	if r.HedgeWastedTokens == 0 {
		t.Error("hedging reported zero wasted tokens")
	}
	if r.Completed+r.Failed+r.Shed != r.Requests {
		t.Errorf("request accounting broken: %d completed + %d failed + %d shed != %d offered",
			r.Completed, r.Failed, r.Shed, r.Requests)
	}
}

// The p95-tracked trigger must stay at the floor until enough
// completions accumulate, then follow the observed tail — and stay
// deterministic.
func TestHedgeP95Determinism(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Hazards = &HazardPlan{Planes: []PlaneHazardEvent{
		{At: 2, Instance: 1, FailedPlanes: 7, TotalPlanes: 8},
	}}
	cfg.Resilience.Hedge = HedgePolicy{Delay: 4, TrackP95: true}
	w := testWorkload(4, 150)
	a := mustJSON(t, mustRun(t, cfg, w))
	if b := mustJSON(t, mustRun(t, cfg, w)); a != b {
		t.Fatal("p95-hedged runs diverged")
	}
}

// Plane hazards alone (no SDC, no hedging) degrade and then restore
// service without dropping a single request.
func TestPlaneHazardDegradesWithoutDropping(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Hazards = &HazardPlan{Planes: hazardTestPlan(false).Planes}
	w := testWorkload(5, 150)
	r := mustRun(t, cfg, w)
	if r.Failed != 0 || r.Shed != 0 {
		t.Errorf("pure plane degradation dropped work: %d failed, %d shed", r.Failed, r.Shed)
	}
	if r.Completed != r.Requests {
		t.Errorf("completed %d of %d", r.Completed, r.Requests)
	}
	clean := cfg
	clean.Resilience.Hazards = nil
	if mustJSON(t, r) == mustJSON(t, mustRun(t, clean, w)) {
		t.Error("plane degradation left the report untouched")
	}
}

func TestParseHazardEvents(t *testing.T) {
	evs, err := ParseHazardEvents("degrade@4:d1:6/8, heal@16:d1")
	if err != nil {
		t.Fatal(err)
	}
	want := []PlaneHazardEvent{
		{At: 4, Instance: 1, FailedPlanes: 6, TotalPlanes: 8},
		{At: 16, Heal: true, Instance: 1},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	// Ranges expand to one event per instance; prefill targets and
	// defaulted totals parse too.
	evs, err = ParseHazardEvents("degrade@1:d0-2:1,degrade@2:p1:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("range expansion got %d events, want 4", len(evs))
	}
	for i, ev := range evs[:3] {
		if ev.Instance != i || ev.Prefill || ev.FailedPlanes != 1 || ev.TotalPlanes != 0 {
			t.Errorf("range event %d = %+v", i, ev)
		}
	}
	if p := evs[3]; !p.Prefill || p.Instance != 1 || p.FailedPlanes != 3 {
		t.Errorf("prefill event = %+v", p)
	}

	for _, bad := range []string{
		"", "melt@1:d0:1", "degrade@x:d0:1", "degrade@NaN:d0:1", "degrade@Inf:d0:1",
		"degrade@1:q0:1", "degrade@1:d0", "heal@1:d0:1", "degrade@1:d2-0:1",
		"degrade@1:d0:x", "degrade@1:d0:1/x",
	} {
		if _, err := ParseHazardEvents(bad); err == nil {
			t.Errorf("ParseHazardEvents(%q) accepted", bad)
		}
	}
}

func TestParseHedgePolicy(t *testing.T) {
	h, err := ParseHedgePolicy("0.5")
	if err != nil || h.Delay != 0.5 || h.TrackP95 {
		t.Errorf("ParseHedgePolicy(0.5) = %+v, %v", h, err)
	}
	h, err = ParseHedgePolicy("p95:0.3")
	if err != nil || h.Delay != 0.3 || !h.TrackP95 {
		t.Errorf("ParseHedgePolicy(p95:0.3) = %+v, %v", h, err)
	}
	for _, bad := range []string{"", "soon", "-1", "0", "p95", "p95:", "p95:-1", "p95:0", "NaN", "Inf"} {
		if _, err := ParseHedgePolicy(bad); err == nil {
			t.Errorf("ParseHedgePolicy(%q) accepted", bad)
		}
	}
}

// Invalid hazard plans must be rejected by Config.Validate against the
// resolved cluster shape.
func TestHazardPlanValidate(t *testing.T) {
	base := func() Config {
		cfg := V3ServeConfig()
		cfg.Resilience.Hazards = &HazardPlan{}
		return cfg
	}
	for name, mutate := range map[string]func(*Config){
		"decode instance out of range": func(c *Config) {
			c.Resilience.Hazards.Planes = []PlaneHazardEvent{{At: 1, Instance: 99, FailedPlanes: 1}}
		},
		"prefill instance out of range": func(c *Config) {
			c.Resilience.Hazards.Planes = []PlaneHazardEvent{{At: 1, Prefill: true, Instance: 99, FailedPlanes: 1}}
		},
		"prefill target on colocated cluster": func(c *Config) {
			c.Fleet.Colocated = true
			c.Resilience.Hazards.Planes = []PlaneHazardEvent{{At: 1, Prefill: true, Instance: 0, FailedPlanes: 1}}
		},
		"negative time": func(c *Config) {
			c.Resilience.Hazards.Planes = []PlaneHazardEvent{{At: -1, Instance: 0, FailedPlanes: 1}}
		},
		"all planes failed": func(c *Config) {
			c.Resilience.Hazards.Planes = []PlaneHazardEvent{{At: 1, Instance: 0, FailedPlanes: 8, TotalPlanes: 8}}
		},
		"zero planes failed": func(c *Config) {
			c.Resilience.Hazards.Planes = []PlaneHazardEvent{{At: 1, Instance: 0, FailedPlanes: 0, TotalPlanes: 8}}
		},
		"sdc rate above 1":  func(c *Config) { c.Resilience.Hazards.SDCRate = 1.5 },
		"negative trials":   func(c *Config) { c.Resilience.Hazards.VerifyTrials = -1 },
		"threshold below 1": func(c *Config) { c.Resilience.Hazards.Detect.Threshold = 0.9 },
		"alpha above 1":     func(c *Config) { c.Resilience.Hazards.Detect = DetectionConfig{Threshold: 1.5, EWMAAlpha: 2} },
		"negative repair":   func(c *Config) { c.Resilience.Hazards.QuarantineRepair = -1 },
		"negative hedge":    func(c *Config) { c.Resilience.Hedge.Delay = -1 },
		"p95 without floor": func(c *Config) { c.Resilience.Hedge = HedgePolicy{TrackP95: true} },
	} {
		cfg := base()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}
	ok := base()
	ok.Resilience.Hazards = hazardTestPlan(true)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// Satellite: a huge retry budget times a large backoff factor must not
// walk the delay past the cap (or to +Inf) before capping.
func TestRetryPolicyDelayLargeBudget(t *testing.T) {
	p := RetryPolicy{MaxRetries: 1 << 20, Backoff: 0.25, BackoffFactor: 10, MaxBackoff: 4}
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		d := p.delay(n)
		if d < 0 || d > p.MaxBackoff {
			t.Fatalf("delay(%d) = %v outside (0, %v]", n, d, p.MaxBackoff)
		}
	}
	if got := p.delay(1); got != 0.25 {
		t.Errorf("delay(1) = %v, want first backoff 0.25", got)
	}
	if got := p.delay(1 << 20); got != 4 {
		t.Errorf("delay(1<<20) = %v, want cap 4", got)
	}
}

// Satellite: AdmissionPolicy.String renders the CLI spec syntax, so
// every enabled policy must round-trip through ParseAdmissionPolicy.
func TestAdmissionPolicyStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 200; i++ {
		a := AdmissionPolicy{}
		switch rng.Intn(3) {
		case 0:
			a.MaxQueueDepth = 1 + rng.Intn(500)
		case 1:
			a.MaxKVOccupancy = 0.01 + 0.98*rng.Float64()
		default:
			a.MaxQueueDepth = 1 + rng.Intn(500)
			a.MaxKVOccupancy = 0.01 + 0.98*rng.Float64()
		}
		back, err := ParseAdmissionPolicy(a.String())
		if err != nil {
			t.Fatalf("ParseAdmissionPolicy(%q): %v", a.String(), err)
		}
		if back != a {
			t.Fatalf("round trip %q: got %+v, want %+v", a.String(), back, a)
		}
	}
	// The disabled policy renders a human label, not a parsable spec.
	if got := (AdmissionPolicy{}).String(); got != "admit-all" {
		t.Errorf("zero policy String() = %q", got)
	}
}

// Satellite: fault scripts with non-finite times must be rejected at
// parse, naming the offending item.
func TestParseFaultEventsNonFinite(t *testing.T) {
	for _, bad := range []string{"crash@NaN:d0", "crash@Inf:d1", "recover@-Inf:p0"} {
		_, err := ParseFaultEvents(bad)
		if err == nil {
			t.Errorf("ParseFaultEvents(%q) accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("error %q does not name the item %q", err, bad)
		}
	}
}

// Incidents recorded without a FaultPlan (quarantines, gray drains)
// must survive report building: recovery resolution reads the plan's
// window through nil-safe accessors.
func TestHazardIncidentsWithoutFaultPlan(t *testing.T) {
	cfg := hazardTestConfig(true)
	if cfg.Resilience.Faults != nil {
		t.Fatal("test premise broken: fault plan set")
	}
	r := mustRun(t, cfg, testWorkload(5, 150))
	if len(r.Incidents) == 0 {
		t.Fatal("no incidents recorded")
	}
	for _, inc := range r.Incidents {
		if inc.Kind != "sdc" && inc.Kind != "gray-drain" {
			t.Errorf("unexpected incident kind %q", inc.Kind)
		}
	}
}

// commScale must be exactly 1.0 on heal and T/(T-k) on degrade.
func TestPlaneHazardCommScale(t *testing.T) {
	for _, tc := range []struct {
		ev   PlaneHazardEvent
		want float64
	}{
		{PlaneHazardEvent{Heal: true}, 1},
		{PlaneHazardEvent{FailedPlanes: 6, TotalPlanes: 8}, 4},
		{PlaneHazardEvent{FailedPlanes: 4, TotalPlanes: 8}, 2},
		{PlaneHazardEvent{FailedPlanes: 4}, 2}, // default 8 planes
	} {
		if got := tc.ev.commScale(); got != tc.want {
			t.Errorf("commScale(%+v) = %v, want %v", tc.ev, got, tc.want)
		}
	}
}
