package servesim

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

// Request is one user request entering the serving cluster.
type Request struct {
	ID      int
	Arrival units.Seconds
	// PromptTokens is the context to prefill; OutputTokens the total
	// tokens to generate (>= 1; the first one is emitted by prefill).
	PromptTokens int
	OutputTokens int
	// Session groups multi-turn conversation requests (0 = sessionless);
	// Turn is the request's 0-based index within its session. Later
	// turns' prompts contain the grown conversation prefix, which the
	// prefix cache (KVHierarchy.PrefixCache) can skip re-prefetching.
	Session int
	Turn    int
}

// DistKind selects a token-length distribution.
type DistKind int

const (
	// DistFixed always returns Mean.
	DistFixed DistKind = iota
	// DistUniform draws uniformly from [Min, Max].
	DistUniform
	// DistLogNormal draws Mean * exp(Sigma * N(0,1)), clamped to
	// [Min, Max] — the heavy-tailed shape of real prompt/output lengths.
	DistLogNormal
)

// String implements fmt.Stringer.
func (k DistKind) String() string {
	switch k {
	case DistFixed:
		return "fixed"
	case DistUniform:
		return "uniform"
	case DistLogNormal:
		return "lognormal"
	}
	return fmt.Sprintf("DistKind(%d)", int(k))
}

// LengthDist is a bounded token-length distribution. Min and Max bound
// every sample (and size the simulator's worst-case KV admission
// check), so they must be set for non-fixed kinds.
type LengthDist struct {
	Kind  DistKind
	Mean  int
	Sigma float64 // DistLogNormal: std of the underlying normal
	Min   int
	Max   int
}

// Fixed returns a degenerate distribution.
func Fixed(n int) LengthDist { return LengthDist{Kind: DistFixed, Mean: n, Min: n, Max: n} }

// LogNormal returns a heavy-tailed distribution with median mean,
// clamped to [mean/4, 4*mean].
func LogNormal(mean int, sigma float64) LengthDist {
	return LengthDist{Kind: DistLogNormal, Mean: mean, Sigma: sigma, Min: (mean + 3) / 4, Max: 4 * mean}
}

// Validate checks the distribution.
func (d LengthDist) Validate() error {
	if d.Mean <= 0 {
		return fmt.Errorf("servesim: length mean must be positive, got %d", d.Mean)
	}
	if d.Kind != DistFixed && (d.Min <= 0 || d.Max < d.Min) {
		return fmt.Errorf("servesim: length bounds [%d,%d] invalid", d.Min, d.Max)
	}
	if d.Kind == DistLogNormal && d.Sigma < 0 {
		return fmt.Errorf("servesim: negative sigma %v", d.Sigma)
	}
	return nil
}

// MaxTokens returns the largest value Sample can return.
func (d LengthDist) MaxTokens() int {
	if d.Kind == DistFixed {
		return d.Mean
	}
	return d.Max
}

// Sample draws one length.
func (d LengthDist) Sample(rng *rand.Rand) int {
	switch d.Kind {
	case DistUniform:
		return d.Min + rng.Intn(d.Max-d.Min+1)
	case DistLogNormal:
		n := int(math.Round(float64(d.Mean) * math.Exp(d.Sigma*rng.NormFloat64())))
		if n < d.Min {
			return d.Min
		}
		if n > d.Max {
			return d.Max
		}
		return n
	default:
		return d.Mean
	}
}

// ArrivalKind selects the request arrival process.
type ArrivalKind int

const (
	// ArrivalPoisson draws i.i.d. exponential interarrival gaps at
	// RatePerSec — the memoryless heavy-traffic model.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalUniform spaces requests exactly 1/RatePerSec apart — a
	// deterministic load for calibration runs.
	ArrivalUniform
	// ArrivalTrace replays Workload.Trace verbatim.
	ArrivalTrace
	// ArrivalBursty is a Markov-modulated on/off Poisson process: the
	// source alternates between exponentially-dwelling ON periods
	// (mean BurstOnMean) that emit at an elevated rate and silent OFF
	// periods (mean BurstOffMean). The ON rate is scaled so the
	// time-averaged rate is still RatePerSec — bursty and Poisson
	// workloads at the same rate offer the same total traffic.
	ArrivalBursty
	// ArrivalDiurnal modulates the instantaneous rate sinusoidally
	// around RatePerSec, starting at the trough and ramping up — the
	// daily traffic ramp, generated as a thinned non-homogeneous
	// Poisson process. DiurnalPeriod sets the cycle length and
	// DiurnalAmplitude (0..1) the swing; the mean over a full period
	// is RatePerSec.
	ArrivalDiurnal
)

// String implements fmt.Stringer.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalUniform:
		return "uniform"
	case ArrivalTrace:
		return "trace"
	case ArrivalBursty:
		return "bursty"
	case ArrivalDiurnal:
		return "diurnal"
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(k))
}

// Workload describes the request traffic offered to the cluster.
type Workload struct {
	Arrival    ArrivalKind
	RatePerSec float64 // ArrivalPoisson / ArrivalUniform
	Requests   int     // number of requests to generate

	Prompt LengthDist
	Output LengthDist

	// BurstOnMean and BurstOffMean are the mean dwell times of the
	// ArrivalBursty on/off modulating chain (both must be positive for
	// that kind; ignored otherwise).
	BurstOnMean  units.Seconds
	BurstOffMean units.Seconds

	// DiurnalPeriod and DiurnalAmplitude shape ArrivalDiurnal: the
	// cycle length (positive) and the relative swing in [0, 1].
	DiurnalPeriod    units.Seconds
	DiurnalAmplitude float64

	// Trace is replayed verbatim under ArrivalTrace (sorted by arrival;
	// the other fields above are ignored).
	Trace []Request

	// Turns > 1 generates multi-turn sessions instead of independent
	// requests: the arrival process paces session starts, each session
	// runs Turns requests, and every later turn's prompt contains the
	// full prior context (previous prompt + output) plus a fresh
	// Prompt-sampled user message — the grown prefix a prefix cache can
	// reuse. 0 or 1 means independent single-turn requests.
	Turns int
	// ThinkTime is the mean exponential user think time between a
	// session's turns (ignored for Turns <= 1; 0 means back-to-back
	// turns). Turn gaps are open-loop — measured from the previous
	// turn's arrival, not its completion — so offered traffic stays a
	// pure function of the workload.
	ThinkTime units.Seconds
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.Turns < 0 {
		return fmt.Errorf("servesim: negative session turns %d", w.Turns)
	}
	if w.ThinkTime < 0 {
		return fmt.Errorf("servesim: negative think time %v", w.ThinkTime)
	}
	if w.Arrival == ArrivalTrace {
		if w.Turns > 1 {
			return fmt.Errorf("servesim: trace workloads cannot generate sessions (Turns=%d); encode sessions in the trace", w.Turns)
		}
		if len(w.Trace) == 0 {
			return fmt.Errorf("servesim: trace workload with empty trace")
		}
		for i, r := range w.Trace {
			if r.PromptTokens <= 0 || r.OutputTokens <= 0 || r.Arrival < 0 {
				return fmt.Errorf("servesim: trace entry %d invalid: %+v", i, r)
			}
		}
		return nil
	}
	if w.RatePerSec <= 0 {
		return fmt.Errorf("servesim: arrival rate must be positive, got %v", w.RatePerSec)
	}
	if w.Requests <= 0 {
		return fmt.Errorf("servesim: request count must be positive, got %d", w.Requests)
	}
	if w.Arrival == ArrivalBursty && (w.BurstOnMean <= 0 || w.BurstOffMean <= 0) {
		return fmt.Errorf("servesim: bursty arrivals need positive on/off dwell means, got %v/%v",
			w.BurstOnMean, w.BurstOffMean)
	}
	if w.Arrival == ArrivalDiurnal && (w.DiurnalPeriod <= 0 || w.DiurnalAmplitude < 0 || w.DiurnalAmplitude > 1) {
		return fmt.Errorf("servesim: diurnal arrivals need positive period and amplitude in [0,1], got %v/%v",
			w.DiurnalPeriod, w.DiurnalAmplitude)
	}
	if err := w.Prompt.Validate(); err != nil {
		return err
	}
	return w.Output.Validate()
}

// maxContextTokens returns the worst-case final context length
// (prompt + output) of any single request. Multi-turn sessions grow
// the prompt by the full prior context each turn, so the final turn
// bounds the whole session.
func (w Workload) maxContextTokens() int {
	if w.Arrival == ArrivalTrace {
		m := 0
		for _, r := range w.Trace {
			if c := r.PromptTokens + r.OutputTokens; c > m {
				m = c
			}
		}
		return m
	}
	perTurn := w.Prompt.MaxTokens() + w.Output.MaxTokens()
	if w.Turns > 1 {
		return perTurn * w.Turns
	}
	return perTurn
}

// Generate materializes the request stream. All randomness comes from
// the seeded stream, so a (workload, seed) pair always produces the
// same traffic; traces are returned as a sorted copy with IDs
// renumbered in arrival order.
func (w Workload) Generate(seed int64) []Request {
	return w.generateInto(seed, nil)
}

// generateInto is Generate into a reusable buffer (contents are fully
// overwritten; grown only when capacity falls short). The engine feeds
// its own scratch through here so steady-state runs allocate no request
// slice.
func (w Workload) generateInto(seed int64, buf []Request) []Request {
	if w.Arrival == ArrivalTrace {
		out := append(buf[:0], w.Trace...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
		for i := range out {
			out[i].ID = i
		}
		return out
	}
	rng := parallel.NewRand(seed)
	step := w.arrivalStepper(rng)
	out := buf[:0]
	if cap(out) < w.Requests {
		out = make([]Request, 0, w.Requests)
	}
	if w.Turns > 1 {
		// Multi-turn sessions: the arrival process paces session starts;
		// each turn's prompt carries the full prior context plus a fresh
		// user message, and turn gaps are exponential think times. The
		// interleaved stream is re-sorted by arrival and renumbered, like
		// a trace.
		var t units.Seconds
		session := 0
		for len(out) < w.Requests {
			session++
			t = step(t)
			at := t
			ctx := 0
			for turn := 0; turn < w.Turns && len(out) < w.Requests; turn++ {
				if turn > 0 && w.ThinkTime > 0 {
					at += rng.ExpFloat64() * w.ThinkTime
				}
				prompt := ctx + w.Prompt.Sample(rng)
				output := w.Output.Sample(rng)
				out = append(out, Request{
					Arrival:      at,
					PromptTokens: prompt,
					OutputTokens: output,
					Session:      session,
					Turn:         turn,
				})
				ctx = prompt + output
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
		for i := range out {
			out[i].ID = i
		}
		return out
	}
	var t units.Seconds
	for i := 0; i < w.Requests; i++ {
		t = step(t)
		out = append(out, Request{
			ID:           i,
			Arrival:      t,
			PromptTokens: w.Prompt.Sample(rng),
			OutputTokens: w.Output.Sample(rng),
		})
	}
	return out
}

// arrivalStepper returns the per-request arrival-time advance for the
// workload's arrival process. The closure owns the modulating state
// (burst phase budget, diurnal thinning) so Generate stays one flat
// loop, and every draw comes from the shared stream in a fixed order —
// one interarrival before each request's length samples.
func (w Workload) arrivalStepper(rng *rand.Rand) func(units.Seconds) units.Seconds {
	switch w.Arrival {
	case ArrivalUniform:
		return func(t units.Seconds) units.Seconds { return t + 1/w.RatePerSec }
	case ArrivalBursty:
		// On/off MMPP: requests are emitted only during ON dwell at a
		// rate elevated by the duty-cycle inverse, so the long-run mean
		// is RatePerSec. Gaps are drawn in ON-time; crossing an ON
		// boundary inserts the silent OFF dwell into wall-clock time.
		onRate := w.RatePerSec * (w.BurstOnMean + w.BurstOffMean) / w.BurstOnMean
		remOn := rng.ExpFloat64() * w.BurstOnMean
		return func(t units.Seconds) units.Seconds {
			gap := rng.ExpFloat64() / onRate
			for gap > remOn {
				gap -= remOn
				t += remOn + rng.ExpFloat64()*w.BurstOffMean
				remOn = rng.ExpFloat64() * w.BurstOnMean
			}
			remOn -= gap
			return t + gap
		}
	case ArrivalDiurnal:
		// Thinned non-homogeneous Poisson: candidates at the peak rate,
		// accepted with probability lambda(t)/peak. The phase starts at
		// the trough (-pi/2) so the run opens on the upward ramp.
		peak := w.RatePerSec * (1 + w.DiurnalAmplitude)
		return func(t units.Seconds) units.Seconds {
			for {
				t += rng.ExpFloat64() / peak
				lam := w.RatePerSec * (1 + w.DiurnalAmplitude*math.Sin(2*math.Pi*t/w.DiurnalPeriod-math.Pi/2))
				if rng.Float64()*peak <= lam {
					return t
				}
			}
		}
	default: // ArrivalPoisson
		return func(t units.Seconds) units.Seconds { return t + rng.ExpFloat64()/w.RatePerSec }
	}
}

// ParseTrace reads a replayable trace: one request per line as
// "arrival_seconds,prompt_tokens,output_tokens". Blank lines and
// #-comments are skipped.
func ParseTrace(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("servesim: trace line %d: want arrival,prompt,output, got %q", line, text)
		}
		arr, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("servesim: trace line %d: %w", line, err)
		}
		prompt, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("servesim: trace line %d: %w", line, err)
		}
		output, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("servesim: trace line %d: %w", line, err)
		}
		if arr < 0 {
			return nil, fmt.Errorf("servesim: trace line %d: negative arrival %v", line, arr)
		}
		if prompt < 0 {
			return nil, fmt.Errorf("servesim: trace line %d: negative prompt tokens %d", line, prompt)
		}
		if output < 0 {
			return nil, fmt.Errorf("servesim: trace line %d: negative output tokens %d", line, output)
		}
		out = append(out, Request{ID: len(out), Arrival: arr, PromptTokens: prompt, OutputTokens: output})
	}
	// A scanner error is a truncated read, not an empty tail — surface
	// it instead of replaying a silently shortened trace.
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("servesim: trace read: %w", err)
	}
	return out, nil
}
