package servesim

import (
	"reflect"
	"strings"
	"testing"

	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

// tieredConfig is the reference tiered deployment the tests exercise:
// an HBM pool small enough that multi-turn traffic forces offload, a
// DRAM tier, a flash tier, and the prefix cache.
func tieredConfig() Config {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 2 * units.GB / 25
	cfg.KV.ChunkTokens = 256
	cfg.KV.Tiers = []KVTierConfig{
		{Name: "dram", CapacityBytes: 8 * units.GB, ReadBW: 24 * units.GB, WriteBW: 16 * units.GB, ChunkLatency: 50 * units.Microsecond},
		{Name: "flash", CapacityBytes: 64 * units.GB, ReadBW: 6 * units.GB, WriteBW: 3 * units.GB, ChunkLatency: 400 * units.Microsecond},
	}
	cfg.KV.PrefixCache = true
	return cfg
}

// sessionWorkload is multi-turn traffic with narrow uniform lengths, so
// the tight HBM pool above admits every single request but not the
// steady-state concurrency — the offload regime.
func sessionWorkload(rate float64, n int) Workload {
	return Workload{
		Arrival:    ArrivalPoisson,
		RatePerSec: rate,
		Requests:   n,
		Prompt:     LengthDist{Kind: DistUniform, Mean: 256, Min: 192, Max: 320},
		Output:     LengthDist{Kind: DistUniform, Mean: 256, Min: 192, Max: 320},
		Turns:      3,
		ThinkTime:  2,
	}
}

// singleTurn strips the session structure from a workload.
func singleTurn(w Workload) Workload {
	w.Turns, w.ThinkTime = 0, 0
	return w
}

func TestParseKVTiers(t *testing.T) {
	tiers, err := ParseKVTiers("name=dram,cap=8,read=24,write=16,lat=0.05/name=flash,cap=64,read=6")
	if err != nil {
		t.Fatal(err)
	}
	want := []KVTierConfig{
		{Name: "dram", CapacityBytes: 8 * units.GB, ReadBW: 24 * units.GB, WriteBW: 16 * units.GB, ChunkLatency: 0.05 * units.Millisecond},
		{Name: "flash", CapacityBytes: 64 * units.GB, ReadBW: 6 * units.GB, WriteBW: 6 * units.GB},
	}
	if !reflect.DeepEqual(tiers, want) {
		t.Fatalf("parsed %+v, want %+v", tiers, want)
	}
}

// TestParseKVTiersRejects pins that malformed specs name the offending
// tier (and clause) instead of failing opaquely.
func TestParseKVTiersRejects(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"", "empty KV tier spec"},
		{"   ", "empty KV tier spec"},
		{"cap=8", "kv tier 1: needs cap and read"},
		{"cap=8,read=6/read=2", "kv tier 2: needs cap and read"},
		{"cap=8,read=x", `kv tier 1: bad read value "x"`},
		{"cap=8,read=6,zap=2", `kv tier 1: unknown key "zap"`},
		{"cap=8,,read=6", "kv tier 1: empty clause"},
		{"cap8,read=6", `clause "cap8" is not key=value`},
		{"cap=-3,read=6", "kv tier 1: non-positive capacity"},
		{"cap=8,read=6/cap=1,read=0", "kv tier 2: non-positive read bandwidth"},
	}
	for _, c := range cases {
		_, err := ParseKVTiers(c.spec)
		if err == nil {
			t.Errorf("ParseKVTiers(%q): expected error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseKVTiers(%q) = %q, want substring %q", c.spec, err, c.want)
		}
	}
}

// TestKVHierarchyValidate: the aggregate validator reports every
// problem at once, with tiers named by index and label.
func TestKVHierarchyValidate(t *testing.T) {
	k := KVHierarchy{
		HBM:         KVConfig{CapacityBytes: units.GB, PageTokens: 64, BytesPerElem: 1},
		ChunkTokens: -4,
		Tiers:       []KVTierConfig{{Name: "dram", CapacityBytes: units.GB, ReadBW: 0, WriteBW: units.GB}},
		PrefixCache: true,
	}
	err := k.Validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{
		"negative chunk tokens -4",
		"KV tier 1 (dram)",
		"non-positive read bandwidth",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate() = %q, missing %q", err, want)
		}
	}
	k.Tiers = nil
	k.ChunkTokens = 0
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "prefix cache needs") {
		t.Errorf("prefix cache without tiers not rejected: %v", err)
	}
}

// TestTieredEngineReuseMatchesFresh extends the PR-5 pooling contract
// to the hierarchy: tiered runs on a reused engine must be
// byte-identical to fresh engines, across configs that exercise
// offload, reload, demotion and drop back to back.
func TestTieredEngineReuseMatchesFresh(t *testing.T) {
	cfgA := tieredConfig()
	// cfgB forces demotions and drops: DRAM holds only a few chunks and
	// flash barely more, so prefix stores and offloads collide.
	cfgB := tieredConfig()
	cfgB.KV.Tiers = []KVTierConfig{
		{Name: "dram", CapacityBytes: 0.04 * units.GB, ReadBW: 24 * units.GB, WriteBW: 16 * units.GB},
		{Name: "flash", CapacityBytes: 0.08 * units.GB, ReadBW: 6 * units.GB, WriteBW: 3 * units.GB, ChunkLatency: 400 * units.Microsecond},
	}
	cfgB.Seed = 9
	// cfgC: plain single-turn traffic through a tiered config (prefix
	// cache idle, offload live), then shrink back to cfgA.
	cfgC := tieredConfig()
	cfgC.KV.PrefixCache = false
	runs := []struct {
		cfg Config
		w   Workload
	}{
		{cfgA, sessionWorkload(2.5, 120)},
		{cfgB, sessionWorkload(3, 150)},
		{cfgC, singleTurn(sessionWorkload(6, 80))},
		{cfgA, sessionWorkload(2.5, 120)},
	}
	eng := NewEngine()
	exercised := Report{}
	for i, run := range runs {
		pooled, err := eng.Run(run.cfg, run.w)
		if err != nil {
			t.Fatalf("run %d (pooled): %v", i, err)
		}
		fresh, err := Run(run.cfg, run.w)
		if err != nil {
			t.Fatalf("run %d (fresh): %v", i, err)
		}
		if !reflect.DeepEqual(pooled, fresh) {
			t.Fatalf("run %d: pooled tiered report differs from fresh engine", i)
		}
		if pj, fj := reportJSON(t, pooled), reportJSON(t, fresh); string(pj) != string(fj) {
			t.Fatalf("run %d: pooled JSON differs from fresh:\n%s\n%s", i, pj, fj)
		}
		exercised.KVOffloads += pooled.KVOffloads
		exercised.KVReloads += pooled.KVReloads
		exercised.TierDemotions += pooled.TierDemotions
		exercised.TierDrops += pooled.TierDrops
		exercised.PrefixHits += pooled.PrefixHits
	}
	// The parity above only means something if the tier machinery
	// actually ran.
	if exercised.KVOffloads == 0 || exercised.KVReloads == 0 {
		t.Errorf("offload/reload path not exercised: %+v", exercised)
	}
	if exercised.TierDemotions == 0 || exercised.TierDrops == 0 {
		t.Errorf("demotion/drop path not exercised: %+v", exercised)
	}
	if exercised.PrefixHits == 0 {
		t.Errorf("prefix cache not exercised: %+v", exercised)
	}
}

// TestTieredWorkerCountDeterminism: tier eviction and reload decisions
// must not observe the worker pool — a tiered rate sweep is
// point-by-point identical at any width.
func TestTieredWorkerCountDeterminism(t *testing.T) {
	cfg := tieredConfig()
	w := sessionWorkload(1, 90)
	rates := []float64{1.5, 2.5, 3.5}
	sweep := func(workers int) []SweepPoint {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		pts, err := RateSweep(cfg, w, rates)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	serial := sweep(1)
	par := sweep(8)
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Report, par[i].Report) {
			t.Errorf("rate %.1f: tiered report differs between worker counts", rates[i])
		}
		if serial[i].Report.KVOffloads == 0 && serial[i].Report.PrefixHits == 0 {
			t.Errorf("rate %.1f: hierarchy idle, determinism check vacuous", rates[i])
		}
	}
}

// TestHierarchyDisabledZeroFields: without tiers the report carries no
// hierarchy fields at all — the golden corpus depends on the disabled
// path being indistinguishable from the pre-hierarchy engine.
func TestHierarchyDisabledZeroFields(t *testing.T) {
	cfg := V3ServeConfig()
	rep, err := Run(cfg, sessionWorkload(3, 120))
	if err != nil {
		t.Fatal(err)
	}
	if rep.KVOffloads != 0 || rep.KVReloads != 0 || rep.TierDemotions != 0 ||
		rep.TierDrops != 0 || rep.ReloadStall != 0 ||
		rep.PrefixHits != 0 || rep.PrefixMisses != 0 || rep.PrefixHitTokens != 0 ||
		rep.KVTierMoves != nil {
		t.Fatalf("hierarchy fields non-zero with tiers disabled: %+v", rep)
	}
}

// TestPrefixHitAccounting bounds the cache: hits happen at low rate,
// and the tokens served from cache never exceed the chunk-floored
// prompts of the session turns that could have hit (turn >= 1).
func TestPrefixHitAccounting(t *testing.T) {
	cfg := tieredConfig()
	w := sessionWorkload(0.5, 90)
	rep, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefixHits == 0 {
		t.Fatal("expected prefix hits under light multi-turn traffic")
	}
	bound := 0
	for _, r := range w.Generate(parallel.DeriveSeed(cfg.Seed, 0)) {
		if r.Turn >= 1 {
			bound += r.PromptTokens - r.PromptTokens%cfg.KV.ChunkTokens
		}
	}
	if rep.PrefixHitTokens > bound {
		t.Fatalf("PrefixHitTokens %d exceeds chunk-floored later-turn prompts %d", rep.PrefixHitTokens, bound)
	}
	if rep.PrefixHits+rep.PrefixMisses == 0 || rep.PrefixHits > rep.PrefixHits+rep.PrefixMisses {
		t.Fatalf("inconsistent hit accounting: %d hits / %d misses", rep.PrefixHits, rep.PrefixMisses)
	}
}

// TestPrefixCacheControlledSession pins the exact hit arithmetic on a
// hand-built two-turn session: turn 1's prompt contains turn 0's full
// context (768 tokens = 3 exact chunks), so the cache serves precisely
// those chunks.
func TestPrefixCacheControlledSession(t *testing.T) {
	cfg := tieredConfig()
	cfg.KV.HBM = V3ServeConfig().KV.HBM // ample HBM: no offload noise
	w := Workload{
		Arrival: ArrivalTrace,
		Trace: []Request{
			{Arrival: 0, PromptTokens: 512, OutputTokens: 256, Session: 1, Turn: 0},
			{Arrival: 60, PromptTokens: 768, OutputTokens: 64, Session: 1, Turn: 1},
		},
	}
	rep, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefixHits != 1 || rep.PrefixMisses != 1 {
		t.Fatalf("got %d hits / %d misses, want 1 / 1", rep.PrefixHits, rep.PrefixMisses)
	}
	if rep.PrefixHitTokens != 768 {
		t.Fatalf("got %d hit tokens, want 768", rep.PrefixHitTokens)
	}
	if len(rep.KVTierMoves) != 3 || rep.KVTierMoves[0].Tier != "hbm" {
		t.Fatalf("unexpected tier moves: %+v", rep.KVTierMoves)
	}
	if rep.KVTierMoves[0].BytesOut == 0 || rep.KVTierMoves[1].BytesIn == 0 {
		t.Fatalf("prefix store moved no bytes: %+v", rep.KVTierMoves)
	}
}
