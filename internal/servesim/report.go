package servesim

import (
	"slices"
	"sort"

	"dsv3/internal/parallel"
	"dsv3/internal/stats"
	"dsv3/internal/units"
)

// timelineSamples is the nominal number of batch/KV-occupancy timeline
// points a run records. The grid is sized from the estimated horizon,
// so a short makespan records fewer points; the buffer is capped at
// 4*timelineSamples, and when an overloaded makespan would overflow it
// the sampler halves resolution in place (decimate + double the
// stride) so the timeline always spans the full run.
const timelineSamples = 64

// TimelinePoint is one sampled instant of cluster state.
type TimelinePoint struct {
	Time units.Seconds
	// ActiveBatch is the total decode batch across instances.
	ActiveBatch int
	// KVOccupancy is the used fraction of all KV pools.
	KVOccupancy float64
}

// Report is the request-level outcome of one simulation run. All
// fields are deterministic functions of (Config, Workload, Seed);
// encoding a Report as JSON is byte-stable across runs.
type Report struct {
	// Requests is the offered traffic; Completed the requests that
	// finished (Requests = Completed + Failed + Shed).
	Requests  int
	Completed int
	// Preemptions counts KV-exhaustion evictions (recompute restarts).
	Preemptions int

	// Failure and degradation metrics — all zero on a fault-free run
	// with admission disabled. Failed requests exhausted their retry
	// budget after crash orphaning; Shed requests were rejected at
	// arrival by the admission policy; Retried counts requests that
	// retried at least once and Retries the total retry attempts.
	Failed  int
	Shed    int
	Retried int
	Retries int
	// RetryAmplification is prefill dispatches per admitted request —
	// (admitted + retries) / admitted; 1.0 means no retry traffic.
	RetryAmplification float64
	// KVTokensLost is the KV-resident context destroyed by crashes, in
	// tokens; AffectedRequests the requests orphaned by crashes or
	// dead hand-offs.
	KVTokensLost     int
	AffectedRequests int
	// Incidents records each crash's blast radius and recovery time.
	Incidents []Incident
	// Cross-layer hazard metrics (hazard.go) — all zero unless
	// Resilience.Hazards is set. CorruptSteps counts silently corrupted
	// decode steps; SDCDetected those the Freivalds pass caught (each
	// quarantining its instance); CorruptResponses completed responses
	// tainted by undetected corruption (never SLO-good); GrayDrained
	// the straggler instances the EWMA detector drained.
	CorruptSteps     int
	SDCDetected      int
	CorruptResponses int
	GrayDrained      int
	// Hedging metrics (zero unless Resilience.Hedge is set): duplicates
	// dispatched, races the duplicate won, and tokens emitted by losing
	// copies — the discarded work the tail-latency win costs.
	Hedges            int
	HedgeWins         int
	HedgeWastedTokens int
	// SLOHealthy and SLOFaulted split SLO attainment by the fleet state
	// at arrival: requests arriving with every instance up vs during a
	// degraded span (an instance down or draining). Failed requests
	// count against their epoch; both are 0 when the epoch saw no
	// admitted requests.
	SLOHealthy float64
	SLOFaulted float64
	// DroppedSamples counts non-finite latency samples excluded from
	// the TTFT/TPOT/E2E summaries (stats.Histogram.Dropped; 0 in any
	// healthy run).
	DroppedSamples int
	// Makespan is the completion time of the last request.
	Makespan units.Seconds
	// OfferedRate is requests / last arrival; CompletedRate is
	// requests / makespan.
	OfferedRate   float64
	CompletedRate float64

	// TTFT, TPOT and E2E summarize per-request latency in seconds
	// (TPOT over requests with at least two output tokens).
	TTFT stats.Summary
	TPOT stats.Summary
	E2E  stats.Summary

	// GoodputRPS is completed-within-SLO requests per second of
	// makespan; SLOAttainment the within-SLO fraction of completions.
	GoodputRPS    float64
	SLOAttainment float64

	// MeanBatch is the decode batch averaged over steps; TokensPerStep
	// the tokens emitted per batch slot per decode step (1.0 exactly
	// without MTP, the speculative multiplier with it).
	MeanBatch     float64
	TokensPerStep float64
	DecodeSteps   int

	// PeakKVOccupancy is the high-water mark across allocations;
	// MeanKVOccupancy averages the sampled timeline.
	PeakKVOccupancy float64
	MeanKVOccupancy float64

	// Tiered-KV metrics — all zero (and KVTierMoves nil) when
	// Config.KV.Tiers is empty. KVOffloads counts preemption victims
	// whose KV moved down-tier instead of recomputing; KVReloads the
	// transfers back into HBM; TierDemotions/TierDrops the LRU
	// evictions within the hierarchy; ReloadStall the total time
	// requests waited on below-HBM transfers beyond overlapped compute.
	KVOffloads    int
	KVReloads     int
	TierDemotions int
	TierDrops     int
	ReloadStall   units.Seconds
	// Prefix-cache accounting: hits/misses count session lookups at
	// prefill dispatch; PrefixHitTokens is the total prompt tokens
	// whose prefill was skipped.
	PrefixHits      int
	PrefixMisses    int
	PrefixHitTokens int
	// KVTierMoves is the per-level traffic (level 0 = HBM, then the
	// configured tiers in order).
	KVTierMoves []TierStat

	Timeline []TimelinePoint
}

// report assembles the Report after the event loop drains. The sample
// vectors live in engine scratch and the percentile summaries sort them
// in place; only the Report itself (and its Timeline copy — the sample
// buffer is recycled) is allocated.
func (e *Engine) report() *Report {
	r := &Report{
		Requests:         len(e.arena),
		Completed:        len(e.completed),
		Preemptions:      e.preempts,
		Failed:           len(e.failed),
		Shed:             e.shed,
		Retried:          e.retried,
		Retries:          e.retries,
		KVTokensLost:     e.kvLost,
		AffectedRequests: e.affected,
		DecodeSteps:      e.steps,
		PeakKVOccupancy:  e.peakOcc,

		CorruptSteps:      e.hz.sdcSteps,
		SDCDetected:       e.hz.sdcDetected,
		CorruptResponses:  e.hz.corrupt,
		GrayDrained:       e.hz.grayDrains,
		Hedges:            e.hedge.hedged,
		HedgeWins:         e.hedge.wins,
		HedgeWastedTokens: e.hedge.wasted,
	}
	if admitted := r.Requests - r.Shed; admitted > 0 {
		r.RetryAmplification = float64(admitted+r.Retries) / float64(admitted)
	}
	if h := &e.hier; h.on {
		r.KVOffloads = h.offloads
		r.KVReloads = h.reloads
		r.TierDemotions = h.demotions
		r.TierDrops = h.drops
		r.ReloadStall = h.reloadStall
		r.PrefixHits = h.hits
		r.PrefixMisses = h.misses
		r.PrefixHitTokens = h.hitTokens
		r.KVTierMoves = make([]TierStat, len(h.bytesIn))
		r.KVTierMoves[0] = TierStat{Tier: "hbm", BytesIn: h.bytesIn[0], BytesOut: h.bytesOut[0]}
		for i := range e.cfg.KV.Tiers {
			r.KVTierMoves[i+1] = TierStat{
				Tier:     e.cfg.KV.Tiers[i].label(i),
				BytesIn:  h.bytesIn[i+1],
				BytesOut: h.bytesOut[i+1],
			}
		}
	}
	if len(e.samples) > 0 {
		r.Timeline = append([]TimelinePoint(nil), e.samples...)
	}
	// Completion order depends on scheduling; metrics are over the
	// request population, so sort by ID for a canonical view. IDs are
	// unique, so any sort algorithm yields the same order; SortFunc
	// avoids sort.Slice's closure boxing.
	slices.SortFunc(e.completed, func(a, b *reqState) int { return a.ID - b.ID })

	ttft := e.ttft[:0]
	tpot := e.tpot[:0]
	e2e := e.e2e[:0]
	goodDone := e.goodDone[:0]
	var lastArrival, lastDone units.Seconds
	meetsSLO := 0
	healthyGood, healthyTot, faultedGood, faultedTot := 0, 0, 0, 0
	for _, req := range e.completed {
		t := req.firstToken - req.Arrival
		ttft = append(ttft, t)
		e2e = append(e2e, req.done-req.Arrival)
		e.latHist.Add(t)
		e.latHist.Add(req.done - req.Arrival)
		perTok := -1.0
		if req.OutputTokens > 1 {
			perTok = (req.done - req.firstToken) / float64(req.OutputTokens-1)
			tpot = append(tpot, perTok)
			e.latHist.Add(perTok)
		}
		good := t <= e.cfg.SLO.TTFT && (perTok < 0 || perTok <= e.cfg.SLO.TPOT) && !req.corrupt
		if good {
			meetsSLO++
			if len(e.incidents) > 0 {
				goodDone = append(goodDone, req.done)
			}
		}
		if e.inDegraded(req.Arrival) {
			faultedTot++
			if good {
				faultedGood++
			}
		} else {
			healthyTot++
			if good {
				healthyGood++
			}
		}
		if req.Arrival > lastArrival {
			lastArrival = req.Arrival
		}
		if req.done > lastDone {
			lastDone = req.done
		}
	}
	// Failed requests count against their arrival epoch's attainment.
	for _, req := range e.failed {
		if req.Arrival > lastArrival {
			lastArrival = req.Arrival
		}
		if e.inDegraded(req.Arrival) {
			faultedTot++
		} else {
			healthyTot++
		}
	}
	if healthyTot > 0 {
		r.SLOHealthy = float64(healthyGood) / float64(healthyTot)
	}
	if faultedTot > 0 {
		r.SLOFaulted = float64(faultedGood) / float64(faultedTot)
	}
	r.Makespan = lastDone
	if lastArrival > 0 {
		r.OfferedRate = float64(r.Requests) / lastArrival
	}
	if r.Makespan > 0 {
		r.CompletedRate = float64(r.Completed) / r.Makespan
		r.GoodputRPS = float64(meetsSLO) / r.Makespan
	}
	if r.Completed > 0 {
		r.SLOAttainment = float64(meetsSLO) / float64(r.Completed)
	}
	if len(e.incidents) > 0 {
		// goodDone is in completion order, which is time order (requests
		// complete at monotonically non-decreasing e.now) before the
		// by-ID sort above reordered e.completed — re-establish it.
		sort.Float64s(goodDone)
		r.Incidents = append([]Incident(nil), e.incidents...)
		e.resolveRecovery(r.Incidents, goodDone, lastDone)
	}
	e.goodDone = goodDone[:0]
	e.ttft, e.tpot, e.e2e = ttft[:0], tpot[:0], e2e[:0]
	r.DroppedSamples = e.latHist.Dropped
	r.TTFT = stats.SummarizeSorting(ttft)
	r.TPOT = stats.SummarizeSorting(tpot)
	r.E2E = stats.SummarizeSorting(e2e)
	if e.steps > 0 {
		r.MeanBatch = float64(e.stepBatch) / float64(e.steps)
	}
	if e.stepBatch > 0 {
		r.TokensPerStep = float64(e.stepTokens) / float64(e.stepBatch)
	}
	if len(e.samples) > 0 {
		var sum float64
		for _, p := range e.samples {
			sum += p.KVOccupancy
		}
		r.MeanKVOccupancy = sum / float64(len(e.samples))
	}
	return r
}

// inDegraded reports whether any instance was down or draining at t.
// Spans are appended in open order and never overlap (a span closes
// before the next opens), so they are sorted by start.
func (e *Engine) inDegraded(t units.Seconds) bool {
	if len(e.spans) == 0 {
		return false
	}
	// First span starting after t; the candidate is the one before it.
	i := sort.Search(len(e.spans), func(i int) bool { return e.spans[i].start > t })
	return i > 0 && t < e.spans[i-1].end
}

// resolveRecovery fills each incident's Recovery time: the delay until
// the within-SLO completion rate, averaged over the trailing recovery
// window (clipped at the crash instant), regains the configured band of
// its pre-crash level. goodDone must be sorted; incidents with no
// pre-crash goodput recover instantly, and an incident whose goodput
// never returns is censored at the makespan.
func (e *Engine) resolveRecovery(incidents []Incident, goodDone []float64, makespan units.Seconds) {
	w := e.cfg.Resilience.Faults.recoveryWindow()
	band := e.cfg.Resilience.Faults.recoveryBand()
	countIn := func(lo, hi float64) int {
		return sort.SearchFloat64s(goodDone, hi) - sort.SearchFloat64s(goodDone, lo)
	}
	for i := range incidents {
		at := incidents[i].At
		pre := float64(countIn(at-w, at)) / w
		if pre == 0 {
			incidents[i].Recovery = 0
			continue
		}
		step := w / 8
		rec := makespan - at // censored unless the scan finds recovery
		for t := at + step; t <= makespan; t += step {
			lo := t - w
			if lo < at {
				lo = at
			}
			if float64(countIn(lo, t))/(t-lo) >= band*pre {
				rec = t - at
				break
			}
		}
		incidents[i].Recovery = rec
	}
}

// SweepPoint is one arrival rate of a load sweep.
type SweepPoint struct {
	RatePerSec float64
	Report     *Report
}

// RateSweep simulates the workload at each arrival rate, fanning the
// independent runs out over the deterministic worker pool with one
// reusable Engine per worker. Each point runs with a seed derived from
// (cfg.Seed, index), so the sweep is byte-identical for any worker
// count (and for pooled vs fresh engines).
func RateSweep(cfg Config, w Workload, rates []float64) ([]SweepPoint, error) {
	return parallel.MapScratch(len(rates), NewEngine, func(i int, eng *Engine) (SweepPoint, error) {
		pc := cfg
		pc.Seed = parallel.DeriveSeed(cfg.Seed, i)
		pw := w
		pw.RatePerSec = rates[i]
		rep, err := eng.Run(pc, pw)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{RatePerSec: rates[i], Report: rep}, nil
	})
}
