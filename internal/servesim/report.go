package servesim

import (
	"slices"

	"dsv3/internal/parallel"
	"dsv3/internal/stats"
	"dsv3/internal/units"
)

// timelineSamples is the nominal number of batch/KV-occupancy timeline
// points a run records. The grid is sized from the estimated horizon,
// so a short makespan records fewer points; the buffer is capped at
// 4*timelineSamples, and when an overloaded makespan would overflow it
// the sampler halves resolution in place (decimate + double the
// stride) so the timeline always spans the full run.
const timelineSamples = 64

// TimelinePoint is one sampled instant of cluster state.
type TimelinePoint struct {
	Time units.Seconds
	// ActiveBatch is the total decode batch across instances.
	ActiveBatch int
	// KVOccupancy is the used fraction of all KV pools.
	KVOccupancy float64
}

// Report is the request-level outcome of one simulation run. All
// fields are deterministic functions of (Config, Workload, Seed);
// encoding a Report as JSON is byte-stable across runs.
type Report struct {
	Requests  int
	Completed int
	// Preemptions counts KV-exhaustion evictions (recompute restarts).
	Preemptions int
	// Makespan is the completion time of the last request.
	Makespan units.Seconds
	// OfferedRate is requests / last arrival; CompletedRate is
	// requests / makespan.
	OfferedRate   float64
	CompletedRate float64

	// TTFT, TPOT and E2E summarize per-request latency in seconds
	// (TPOT over requests with at least two output tokens).
	TTFT stats.Summary
	TPOT stats.Summary
	E2E  stats.Summary

	// GoodputRPS is completed-within-SLO requests per second of
	// makespan; SLOAttainment the within-SLO fraction of completions.
	GoodputRPS    float64
	SLOAttainment float64

	// MeanBatch is the decode batch averaged over steps; TokensPerStep
	// the tokens emitted per batch slot per decode step (1.0 exactly
	// without MTP, the speculative multiplier with it).
	MeanBatch     float64
	TokensPerStep float64
	DecodeSteps   int

	// PeakKVOccupancy is the high-water mark across allocations;
	// MeanKVOccupancy averages the sampled timeline.
	PeakKVOccupancy float64
	MeanKVOccupancy float64

	Timeline []TimelinePoint
}

// report assembles the Report after the event loop drains. The sample
// vectors live in engine scratch and the percentile summaries sort them
// in place; only the Report itself (and its Timeline copy — the sample
// buffer is recycled) is allocated.
func (e *Engine) report() *Report {
	r := &Report{
		Requests:        len(e.completed),
		Completed:       len(e.completed),
		Preemptions:     e.preempts,
		DecodeSteps:     e.steps,
		PeakKVOccupancy: e.peakOcc,
	}
	if len(e.samples) > 0 {
		r.Timeline = append([]TimelinePoint(nil), e.samples...)
	}
	// Completion order depends on scheduling; metrics are over the
	// request population, so sort by ID for a canonical view. IDs are
	// unique, so any sort algorithm yields the same order; SortFunc
	// avoids sort.Slice's closure boxing.
	slices.SortFunc(e.completed, func(a, b *reqState) int { return a.ID - b.ID })

	ttft := e.ttft[:0]
	tpot := e.tpot[:0]
	e2e := e.e2e[:0]
	var lastArrival, lastDone units.Seconds
	meetsSLO := 0
	for _, req := range e.completed {
		t := req.firstToken - req.Arrival
		ttft = append(ttft, t)
		e2e = append(e2e, req.done-req.Arrival)
		perTok := -1.0
		if req.OutputTokens > 1 {
			perTok = (req.done - req.firstToken) / float64(req.OutputTokens-1)
			tpot = append(tpot, perTok)
		}
		if t <= e.cfg.SLO.TTFT && (perTok < 0 || perTok <= e.cfg.SLO.TPOT) {
			meetsSLO++
		}
		if req.Arrival > lastArrival {
			lastArrival = req.Arrival
		}
		if req.done > lastDone {
			lastDone = req.done
		}
	}
	r.Makespan = lastDone
	if lastArrival > 0 {
		r.OfferedRate = float64(r.Requests) / lastArrival
	}
	if r.Makespan > 0 {
		r.CompletedRate = float64(r.Completed) / r.Makespan
		r.GoodputRPS = float64(meetsSLO) / r.Makespan
	}
	if r.Completed > 0 {
		r.SLOAttainment = float64(meetsSLO) / float64(r.Completed)
	}
	e.ttft, e.tpot, e.e2e = ttft[:0], tpot[:0], e2e[:0]
	r.TTFT = stats.SummarizeSorting(ttft)
	r.TPOT = stats.SummarizeSorting(tpot)
	r.E2E = stats.SummarizeSorting(e2e)
	if e.steps > 0 {
		r.MeanBatch = float64(e.stepBatch) / float64(e.steps)
	}
	if e.stepBatch > 0 {
		r.TokensPerStep = float64(e.stepTokens) / float64(e.stepBatch)
	}
	if len(e.samples) > 0 {
		var sum float64
		for _, p := range e.samples {
			sum += p.KVOccupancy
		}
		r.MeanKVOccupancy = sum / float64(len(e.samples))
	}
	return r
}

// SweepPoint is one arrival rate of a load sweep.
type SweepPoint struct {
	RatePerSec float64
	Report     *Report
}

// RateSweep simulates the workload at each arrival rate, fanning the
// independent runs out over the deterministic worker pool with one
// reusable Engine per worker. Each point runs with a seed derived from
// (cfg.Seed, index), so the sweep is byte-identical for any worker
// count (and for pooled vs fresh engines).
func RateSweep(cfg Config, w Workload, rates []float64) ([]SweepPoint, error) {
	return parallel.MapScratch(len(rates), NewEngine, func(i int, eng *Engine) (SweepPoint, error) {
		pc := cfg
		pc.Seed = parallel.DeriveSeed(cfg.Seed, i)
		pw := w
		pw.RatePerSec = rates[i]
		rep, err := eng.Run(pc, pw)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{RatePerSec: rates[i], Report: rep}, nil
	})
}
