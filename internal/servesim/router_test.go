package servesim

import (
	"encoding/json"
	"testing"

	"dsv3/internal/units"
)

func TestParseRouterPolicyRoundTrip(t *testing.T) {
	for _, p := range RouterPolicies() {
		got, err := ParseRouterPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseRouterPolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("ParseRouterPolicy(%q) = %v", p.String(), got)
		}
	}
	if _, err := ParseRouterPolicy("no-such-policy"); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := RouterPolicy(99).Validate(); err == nil {
		t.Error("out-of-range policy validated")
	}
}

func TestLeastKVRouterPick(t *testing.T) {
	r := NewRouter(RouteLeastKV, 1)
	loads := []InstanceLoad{
		{Instance: 0, FreeKV: 3},
		{Instance: 1, FreeKV: 9},
		{Instance: 2, FreeKV: 9},
	}
	if got := r.Pick(loads); got != 1 {
		t.Errorf("least-kv picked %d, want first maximum 1", got)
	}
	// All-equal candidates (the prefill dispatch case, FreeKV 0) tie
	// to the lowest index — the pre-refactor scan order.
	flat := []InstanceLoad{{Instance: 2}, {Instance: 5}}
	if got := r.Pick(flat); got != 0 {
		t.Errorf("least-kv tie pick %d, want 0", got)
	}
}

func TestRoundRobinRouterCycles(t *testing.T) {
	r := NewRouter(RouteRoundRobin, 1)
	full := []InstanceLoad{{Instance: 0}, {Instance: 1}, {Instance: 2}}
	var got []int
	for i := 0; i < 7; i++ {
		k := r.Pick(full)
		got = append(got, full[k].Instance)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin sequence %v, want %v", got, want)
		}
	}
	// A shrunken candidate set still advances past the cursor.
	if k := r.Pick([]InstanceLoad{{Instance: 0}, {Instance: 2}}); k != 1 {
		t.Errorf("after instance 0, candidates {0,2} picked index %d, want 1 (instance 2)", k)
	}
}

func TestShortestQueueRouterPick(t *testing.T) {
	r := NewRouter(RouteShortestQueue, 1)
	loads := []InstanceLoad{
		{Instance: 0, Queue: 4, FreeKV: 10},
		{Instance: 1, Queue: 2, FreeKV: 1},
		{Instance: 2, Queue: 2, FreeKV: 8},
	}
	if got := r.Pick(loads); got != 2 {
		t.Errorf("shortest-queue picked %d, want 2 (queue tie broken by free KV)", got)
	}
}

// The p2c stream is seeded at construction: two routers with the same
// seed must produce the same pick sequence, different seeds must not.
func TestPowerOfTwoDeterministic(t *testing.T) {
	loads := []InstanceLoad{
		{Instance: 0, Queue: 1, FreeKV: 5},
		{Instance: 1, Queue: 3, FreeKV: 2},
		{Instance: 2, Queue: 0, FreeKV: 9},
		{Instance: 3, Queue: 2, FreeKV: 1},
	}
	seq := func(seed int64) []int {
		r := NewRouter(RoutePowerOfTwo, seed)
		out := make([]int, 64)
		for i := range out {
			out[i] = r.Pick(loads)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pick %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical p2c pick streams")
	}
}

// routerTestConfig squeezes KV so routing decisions matter: uneven
// placement shows up as preemptions and latency differences.
func routerTestConfig(policy RouterPolicy) Config {
	cfg := V3ServeConfig()
	cfg.Fleet.Router = policy
	cfg.KV.HBM.CapacityBytes = 2 * units.GB
	return cfg
}

// Least-KV must stay the zero value of RouterPolicy: zero-value and
// historical Configs route with the pre-refactor policy, which is what
// keeps the serve* golden corpus byte-identical across the refactor
// (the goldens, regenerated unchanged, are the actual equivalence
// oracle — this pins the default from drifting to another policy).
func TestLeastKVIsZeroValueDefault(t *testing.T) {
	var zero RouterPolicy
	if zero != RouteLeastKV {
		t.Fatalf("zero-value RouterPolicy is %v, want least-kv", zero)
	}
	if got := V3ServeConfig().Fleet.Router; got != RouteLeastKV {
		t.Errorf("V3ServeConfig routes with %v, want least-kv", got)
	}
}

// A single-candidate fleet leaves every policy exactly one legal
// answer: index 0 — the degenerate case the health-aware dispatch
// produces when crashes or drains whittle the candidate set down.
func TestRouterPickSingleCandidate(t *testing.T) {
	single := []InstanceLoad{{Instance: 3, Queue: 7, FreeKV: 2}}
	for _, p := range RouterPolicies() {
		r := NewRouter(p, 1)
		for i := 0; i < 3; i++ {
			if got := r.Pick(single); got != 0 {
				t.Errorf("%v picked %d from a single candidate, want 0", p, got)
			}
		}
	}
}

// Every policy yields a deterministic report, every request completes,
// and the policies genuinely route differently under KV pressure.
func TestRouterPoliciesDeterministicAndDistinct(t *testing.T) {
	w := testWorkload(10, 200)
	encodings := map[string]string{}
	for _, p := range RouterPolicies() {
		cfg := routerTestConfig(p)
		a, _ := json.Marshal(mustRun(t, cfg, w))
		b, _ := json.Marshal(mustRun(t, cfg, w))
		if string(a) != string(b) {
			t.Errorf("%v: same seed produced different reports", p)
		}
		var rep Report
		if err := json.Unmarshal(a, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Completed != w.Requests {
			t.Errorf("%v: completed %d of %d requests", p, rep.Completed, w.Requests)
		}
		encodings[string(a)] = p.String()
	}
	if len(encodings) < 2 {
		t.Errorf("all %d policies produced identical reports — routing is not pluggable", len(RouterPolicies()))
	}
}
