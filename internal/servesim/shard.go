// Sharded execution: a conservative parallel discrete-event engine
// whose output is byte-identical to the serial loop.
//
// The fleet splits along its natural boundary. Decode instances are
// partitioned round-robin across shards, each shard advancing its own
// event queue (decode lands, step completions) independently.
// Everything coupled through shared state stays on the coordinator:
// arrivals and admission, the shared prefill queue and prefill units,
// both routers, retries and fault injection, timeline sampling, the
// metrics registry, and the attached tracer.
//
// Time advances in conservative windows [W, H). H is chosen so no
// coordinator action inside the window can inject an event a shard
// should already have processed: H never exceeds W plus the minimum
// prefill duration (prefillTime floors at the weight-streaming roofline,
// so it is strictly positive), never exceeds any in-flight prefill's
// hand-off land time (prefillUnit.landAt), and never crosses a fault
// time. Each cycle, the coordinator (1) applies fault-class events at
// exactly W on the quiesced fleet, (2) releases the shards to run their
// events in [W, H) in parallel — each shard appends one replay record
// per event — and (3) merges the shard records with its own sources
// (the arrival cursor and its event queue) in canonical time order,
// applying records to a per-instance mirror of decode state and
// re-issuing buffered trace hooks, while routing, shedding, sampling and
// metrics run exactly as the serial loop would have run them.
//
// Determinism: events within one queue are totally ordered by (at, seq);
// across queues the merge orders by time with arrivals first, then
// coordinator events, then shard records by instance. Cross-queue ties
// at equal times are measure-zero for continuous (Poisson) arrival
// processes — the only arrival kind the sharded path accepts; every
// other configuration (colocation, MTP's per-step shared RNG draws, KV
// tiers' synchronous shared hierarchy, instantaneous hand-off,
// trace/uniform arrivals) falls back to the serial loop, which remains
// the general engine.
package servesim

import (
	"math"

	"dsv3/internal/obs"
	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

// fleetMirror is the coordinator's replay-maintained view of decode
// state: exact as of the last merged record, which is exactly the
// information a serial engine would have at the same simulated time.
type fleetMirror struct {
	active  []int // len(d.active) per decode instance
	pending []int // d.pending.len() per decode instance
	used    []int // d.kv.used per decode instance
	total   []int // d.kv.total per decode instance (static)

	batchSum, usedSum, totalSum int
}

func (m *fleetMirror) init(decodes []decodeUnit) {
	n := len(decodes)
	if cap(m.active) < n {
		m.active = make([]int, n)
		m.pending = make([]int, n)
		m.used = make([]int, n)
		m.total = make([]int, n)
	}
	m.active, m.pending = m.active[:n], m.pending[:n]
	m.used, m.total = m.used[:n], m.total[:n]
	m.batchSum, m.usedSum, m.totalSum = 0, 0, 0
	for i := range decodes {
		m.active[i], m.pending[i], m.used[i] = 0, 0, 0
		m.total[i] = decodes[i].kv.total
		m.totalSum += m.total[i]
	}
}

// resyncMirror rebuilds the mirror from the quiesced fleet — called
// after each fault-class event, which mutates shard-owned state
// directly (crashDecode frees a pool wholesale).
func (e *Engine) resyncMirror() {
	m := &e.mirror
	m.batchSum, m.usedSum = 0, 0
	for i := range e.decodes {
		d := &e.decodes[i]
		m.active[i] = len(d.active)
		m.pending[i] = d.pending.len()
		m.used[i] = d.kv.used
		m.batchSum += m.active[i]
		m.usedSum += m.used[i]
	}
}

// kvOp is one page-pool mutation on a shard, replayed into the mirror
// in order; peak marks the allocation instants where the serial engine
// samples peak occupancy (notePeakOcc).
type kvOp struct {
	delta int32
	peak  bool
}

// shardRec is one shard event's externally visible effect, applied by
// the coordinator during replay. Variable-length payloads live in the
// shard's flat buffers, addressed by [lo, hi) ranges, so a window of
// records costs no per-record allocation.
type shardRec struct {
	at   units.Seconds
	inst int

	kvLo, kvHi     int32 // into engShard.kvOps
	doneLo, doneHi int32 // into engShard.dones (completions, in order)
	reqLo, reqHi   int32 // into engShard.requeues (recompute preemptions)
	hookLo, hookHi int32 // into engShard.tlog (buffered tracer calls)

	steps, stepBatch, stepTokens int32

	// orphan is the hand-off that landed on a crashed instance (at most
	// one per record); the coordinator runs the retry policy for it.
	orphan *reqState

	activeAfter, pendingAfter int32
}

// engShard is one shard: a partition of the decode fleet plus its own
// event queue, record buffers, and trace log. Between barriers the
// shard exclusively owns its instances' mutable state (active set,
// pending queue, kv pool, stepping flag) and the per-request fields of
// requests resident on them.
type engShard struct {
	e   *Engine
	id  int
	n   int // shard count (markGen stride)
	now units.Seconds
	hi  units.Seconds // current window end (exclusive)
	seq int
	// markGen is this shard's preemption-victim generation, strided so
	// no two shards ever produce the same value (see servesim.go
	// markGen): shard id yields id+1, id+1+n, id+1+2n, ...
	markGen int
	events  eventQueue
	err     error

	recs     []shardRec
	kvOps    []kvOp
	dones    []*reqState
	requeues []*reqState
	tlog     *obs.TraceLog // nil when no tracer is attached
	cur      *shardRec     // record being built for the current event
}

func (s *engShard) init(e *Engine, id, n int) {
	s.e, s.id, s.n = e, id, n
	s.now, s.hi = 0, 0
	s.seq = 0
	s.markGen = id + 1 - n
	s.err = nil
	s.events = newEventQueue(e.cfg.Fleet.Scheduler, s.events)
	if c, ok := s.events.(*calendarQueue); ok {
		// A shard sees roughly its slice of the run's decode events.
		c.configure(e.reqs[len(e.reqs)-1].Arrival+1, 2*len(e.reqs)/n)
	} else {
		s.events.reset()
	}
	s.resetWindow()
	if e.tracer != nil {
		if s.tlog == nil {
			s.tlog = &obs.TraceLog{}
		}
		s.tlog.Reset()
	} else {
		s.tlog = nil
	}
}

// resetWindow clears the record buffers for the next window (their
// contents were fully consumed by the coordinator's replay).
func (s *engShard) resetWindow() {
	s.recs = s.recs[:0]
	s.kvOps = s.kvOps[:0]
	clearPtrs(s.dones)
	s.dones = s.dones[:0]
	clearPtrs(s.requeues)
	s.requeues = s.requeues[:0]
	if s.tlog != nil {
		s.tlog.Reset()
	}
	s.cur = nil
}

// scheduleLand enqueues a prefill->decode hand-off on this shard.
// Called by the coordinator during replay, while the shard is parked:
// the landAt window bound guarantees at >= the next window edge, so the
// shard has not advanced past it.
func (s *engShard) scheduleLand(at units.Seconds, inst int, req *reqState) {
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: evDecodeLand, inst: inst, req: req})
}

func (s *engShard) scheduleStep(at units.Seconds, inst, epoch int) {
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: evStepDone, inst: inst, epoch: epoch})
}

// shardFor returns the shard owning a decode instance (round-robin
// partition).
func (e *Engine) shardFor(inst int) *engShard { return &e.shards[inst%len(e.shards)] }

// landPush records a dispatched prefill's hand-off land time on the
// window-bound heap (plain sift-up on a timestamp slice).
func (e *Engine) landPush(at units.Seconds) {
	h := append(e.landHeap, at)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.landHeap = h
}

// landPop drops the earliest land time (its hand-off is already in a
// shard queue once the window edge reaches it).
func (e *Engine) landPop() {
	h := e.landHeap
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.landHeap = h
}

// shardable reports whether this run can take the sharded path: an
// explicit shard count and a configuration whose couplings all sit at
// the coordinator boundary. Everything else — including every
// pre-existing experiment and golden — runs the serial loop unchanged.
func (e *Engine) shardable(w Workload, nDecode int) bool {
	f := &e.cfg.Fleet
	return f.Shards > 1 &&
		!f.Colocated &&
		e.cfg.MTP == nil &&
		len(e.cfg.KV.Tiers) == 0 &&
		// Cross-layer hazards and hedging mutate cross-shard state
		// (per-instance comm scales, fleet-median detection, twin
		// cancellation) mid-window; they force the serial fallback.
		!e.cfg.Resilience.hazardous() &&
		f.TransferBW > 0 &&
		w.Arrival == ArrivalPoisson &&
		nDecode > 1 &&
		e.cfg.Latency.prefillTime(e.lc, 1) > 0
}

// openRec starts the record for one shard event.
func (s *engShard) openRec(at units.Seconds, inst int) {
	lo32 := int32(len(s.kvOps))
	d32 := int32(len(s.dones))
	r32 := int32(len(s.requeues))
	var h32 int32
	if s.tlog != nil {
		h32 = int32(s.tlog.Len())
	}
	s.recs = append(s.recs, shardRec{
		at: at, inst: inst,
		kvLo: lo32, kvHi: lo32,
		doneLo: d32, doneHi: d32,
		reqLo: r32, reqHi: r32,
		hookLo: h32, hookHi: h32,
	})
	s.cur = &s.recs[len(s.recs)-1]
}

// closeRec finalizes the current record's ranges and post-event
// instance snapshot.
func (s *engShard) closeRec(d *decodeUnit) {
	r := s.cur
	r.kvHi = int32(len(s.kvOps))
	r.doneHi = int32(len(s.dones))
	r.reqHi = int32(len(s.requeues))
	if s.tlog != nil {
		r.hookHi = int32(s.tlog.Len())
	}
	r.activeAfter = int32(len(d.active))
	r.pendingAfter = int32(d.pending.len())
	s.cur = nil
}

func (s *engShard) kvOp(delta int, peak bool) {
	s.kvOps = append(s.kvOps, kvOp{delta: int32(delta), peak: peak})
}

// Buffered tracer hooks — the shard-side mirrors of trPhaseBegin &co.
// They append to the shard's TraceLog; the coordinator replays each
// record's range into the real tracer in merge order.

func (s *engShard) hPhaseBegin(req *reqState, ph obs.Phase, inst int) {
	if s.tlog != nil {
		s.tlog.PhaseBegin(s.now, reqInfo(req), ph, inst)
	}
}

func (s *engShard) hPhaseEnd(req *reqState) {
	if s.tlog != nil {
		s.tlog.PhaseEnd(s.now, req.ID)
	}
}

func (s *engShard) hMark(req *reqState, m obs.Mark) {
	if s.tlog != nil {
		s.tlog.Mark(s.now, reqInfo(req), m)
	}
}

func (s *engShard) hCompute(dur units.Seconds, inst int, v int) {
	if s.tlog != nil {
		s.tlog.Compute(s.now, dur, false, inst, obs.ComputeDecodeStep, v)
	}
}

// runWindow advances the shard through every local event in [now, hi).
func (s *engShard) runWindow() {
	for s.err == nil && s.events.size() > 0 && s.events.nextAt() < s.hi {
		ev := s.events.pop()
		s.now = ev.at
		switch ev.kind {
		case evDecodeLand:
			s.land(&ev)
		case evStepDone:
			if s.e.decodes[ev.inst].epoch != ev.epoch {
				break // scheduled by a crashed incarnation
			}
			s.stepDone(ev.inst)
		}
	}
}

// land mirrors the serial evDecodeLand handler for the tier-free
// disaggregated path.
func (s *engShard) land(ev *event) {
	d := &s.e.decodes[ev.inst]
	s.openRec(ev.at, ev.inst)
	if d.health == healthDown {
		// Dead hand-off: the retry policy is coordinator state, so the
		// orphan is recorded and resolved during replay (its hooks fire
		// there, matching the serial call sequence).
		s.cur.orphan = ev.req
		s.closeRec(d)
		return
	}
	s.hPhaseEnd(ev.req)
	s.hPhaseBegin(ev.req, obs.PhaseQueue, ev.inst)
	d.pending.push(ev.req)
	if !d.stepping {
		s.startStep(ev.inst)
	}
	s.closeRec(d)
}

// startStep mirrors the serial startStep for the tier-free
// disaggregated path: FIFO admission while batch slots and pages allow,
// then one continuous-batching step.
func (s *engShard) startStep(inst int) {
	e := s.e
	d := &e.decodes[inst]
	for len(d.active) < e.cfg.Fleet.MaxBatch && d.pending.len() > 0 {
		req := d.pending.peek()
		pages := e.cfg.KV.HBM.PagesFor(req.ctx)
		if !d.kv.tryAlloc(pages) {
			break
		}
		req.pages = pages
		d.admitCounter++
		req.admitSeq = d.admitCounter
		d.pending.pop()
		s.hPhaseEnd(req)
		s.hPhaseBegin(req, obs.PhaseDecode, inst)
		d.active = append(d.active, req)
		s.kvOp(pages, true)
	}
	if len(d.active) == 0 {
		d.stepping = false
		return
	}

	var attn batchAttention
	for _, req := range d.active {
		e.cfg.Latency.addContextC(e.lc, &attn, req.ctx)
	}
	dt := e.cfg.Latency.decodeStepTime(e.lc, len(d.active), attn) * e.mtpFactor
	d.stepping = true
	d.sincePrefill++
	s.cur.steps++
	s.cur.stepBatch += int32(len(d.active))
	s.hCompute(dt, inst, len(d.active))
	s.scheduleStep(s.now+dt, inst, d.epoch)
}

// stepDone mirrors the serial stepDone for the tier-free disaggregated
// path (MTP is serial-only, so emission is exactly one token).
func (s *engShard) stepDone(inst int) {
	e := s.e
	d := &e.decodes[inst]
	s.openRec(s.now, inst)
	for _, req := range d.active {
		emitted := 1
		if emitted > req.remaining() {
			emitted = req.remaining()
		}
		req.generated += emitted
		s.cur.stepTokens += int32(emitted)
		req.ctx += emitted
	}

	unfinished := d.active[:0]
	for _, req := range d.active {
		if req.remaining() == 0 {
			d.kv.release(req.pages)
			s.kvOp(-req.pages, false)
			req.pages = 0
			req.done = s.now
			s.hPhaseEnd(req)
			s.hMark(req, obs.MarkComplete)
			s.dones = append(s.dones, req)
		} else {
			unfinished = append(unfinished, req)
		}
	}
	for i := len(unfinished); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = unfinished

	s.markGen += s.n
	gen := s.markGen
	nPreempted := 0
	for _, req := range d.active {
		if req.preemptMark == gen {
			continue
		}
		if need := e.cfg.KV.HBM.PagesFor(req.ctx) - req.pages; need > 0 {
			for !d.kv.tryAlloc(need) {
				victim := e.pickVictim(d, req, gen)
				if victim == nil {
					s.err = errNoVictim(inst)
					s.closeRec(d)
					return
				}
				victim.preemptMark = gen
				nPreempted++
				d.kv.release(victim.pages)
				s.kvOp(-victim.pages, false)
				victim.pages = 0
			}
			req.pages += need
			s.kvOp(need, true)
		}
	}

	if nPreempted > 0 {
		keep := d.active[:0]
		for _, req := range d.active {
			if req.preemptMark == gen {
				// Recompute preemption (tiers are off, so no offload):
				// the request rejoins the coordinator's prefill queue at
				// replay.
				req.resumed = true
				req.preempted++
				s.hPhaseEnd(req)
				s.hMark(req, obs.MarkPreempt)
				s.hPhaseBegin(req, obs.PhaseQueue, -1)
				req.ctx = req.ctxForPrefill()
				s.requeues = append(s.requeues, req)
			} else {
				keep = append(keep, req)
			}
		}
		for i := len(keep); i < len(d.active); i++ {
			d.active[i] = nil
		}
		d.active = keep
	}
	s.startStep(inst)
	s.closeRec(d)
}

// runSharded is the coordinator loop (see the package comment at the
// top of this file for the cycle structure). It leaves the engine in
// the same terminal state the serial loop would; Run calls finishRun
// for the common epilogue.
func (e *Engine) runSharded(nDecode int) error {
	nShards := e.cfg.Fleet.Shards
	if nShards > nDecode {
		nShards = nDecode
	}
	if nShards > maxShards {
		nShards = maxShards
	}
	e.sharded = true
	defer func() { e.sharded = false }()
	e.barrierQ.reset()
	e.landHeap = e.landHeap[:0]
	e.mirror.init(e.decodes)
	if cap(e.shards) < nShards {
		next := make([]engShard, nShards)
		copy(next, e.shards[:cap(e.shards)])
		e.shards = next
	}
	e.shards = e.shards[:nShards]
	for i := range e.shards {
		e.shards[i].init(e, i, nShards)
	}
	if plan := e.cfg.Resilience.Faults; plan != nil {
		e.faultReseed(parallel.DeriveSeed(e.cfg.Seed, 4))
		for i := range plan.Events {
			e.schedule(plan.Events[i].At, evFaultPlanned, i, nil)
		}
		if plan.MTBF > 0 {
			e.schedule(e.faultRng.ExpFloat64()*plan.MTBF, evFaultRandom, 0, nil)
		}
	}

	// The guaranteed window width: any prefill dispatched at or after W
	// lands no earlier than W + prefillTime(tokens) with tokens at least
	// the smallest prompt in the arena — fresh dispatches cover the full
	// prompt and resumed ones (retry, preemption recompute) at least that
	// (ctxForPrefill >= PromptTokens; prefillTime is monotone in tokens).
	minPrompt := 1
	if len(e.arena) > 0 {
		minPrompt = e.arena[0].PromptTokens
		for i := range e.arena {
			if p := e.arena[i].PromptTokens; p < minPrompt {
				minPrompt = p
			}
		}
	}
	floor := e.cfg.Latency.prefillTime(e.lc, minPrompt)
	inf := units.Seconds(math.Inf(1))
	group := parallel.NewShardGroup(nShards, func(si int) { e.shards[si].runWindow() })
	defer group.Close()

	arr := 0
	for {
		// Next pending activity across every source.
		next := inf
		if arr < len(e.arena) {
			next = e.arena[arr].Arrival
		}
		if e.events.size() > 0 {
			if t := e.events.nextAt(); t < next {
				next = t
			}
		}
		if e.barrierQ.size() > 0 {
			if t := e.barrierQ.nextAt(); t < next {
				next = t
			}
		}
		for i := range e.shards {
			if s := &e.shards[i]; s.events.size() > 0 {
				if t := s.events.nextAt(); t < next {
					next = t
				}
			}
		}
		if math.IsInf(float64(next), 1) {
			return nil // drained; finishRun reports any stall
		}
		w := next

		// (1) Fault-class events at exactly W, on the quiesced fleet.
		stop := false
		for e.barrierQ.size() > 0 && e.barrierQ.nextAt() == w {
			ev := e.barrierQ.pop()
			done, err := e.processEvent(&ev)
			if err != nil {
				return err
			}
			e.resyncMirror()
			if done {
				stop = true
				break
			}
		}
		if stop {
			return nil
		}

		// Window end: the prefill floor, capped by in-flight hand-off
		// land times and the next fault time. A busy prefill's land is
		// strictly after W (its completion event is at or after W, the
		// transfer strictly positive), so popping stale entries at or
		// before W never discards a live bound.
		h := w + floor
		if e.barrierQ.size() > 0 {
			if t := e.barrierQ.nextAt(); t < h {
				h = t
			}
		}
		for len(e.landHeap) > 0 && e.landHeap[0] <= w {
			e.landPop()
		}
		if len(e.landHeap) > 0 && e.landHeap[0] < h {
			h = e.landHeap[0]
		}

		// (2) Parallel shard phase over [W, H).
		work := false
		for i := range e.shards {
			s := &e.shards[i]
			s.hi = h
			s.resetWindow()
			if s.events.size() > 0 && s.events.nextAt() < h {
				work = true
			}
		}
		if work {
			group.Step()
			for i := range e.shards {
				if err := e.shards[i].err; err != nil {
					return err
				}
			}
		}

		// (3) Canonical-order replay of [W, H).
		stop, err := e.replayWindow(h, &arr)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
}

// maxShards caps the shard count (replay cursors live in a fixed-size
// stack array); far beyond any sensible core count.
const maxShards = 64

// shardCursors tracks per-shard replay positions without allocating.
type shardCursors struct{ pos [maxShards]int }

// replayWindow merges the window's shard records with the coordinator's
// own sources — the arrival cursor and its event queue — in time order
// (ties: arrivals, then coordinator events, then shard records by
// instance) and applies each item exactly as the serial loop would.
func (e *Engine) replayWindow(hi units.Seconds, arr *int) (bool, error) {
	var cur shardCursors
	for {
		bestT := hi
		src := -1 // 0 arrival, 1 events, 2+i shard i
		if *arr < len(e.arena) && e.arena[*arr].Arrival < bestT {
			bestT = e.arena[*arr].Arrival
			src = 0
		}
		if e.events.size() > 0 {
			if t := e.events.nextAt(); t < bestT {
				bestT = t
				src = 1
			}
		}
		bestInst := -1
		for i := range e.shards {
			s := &e.shards[i]
			if cur.pos[i] >= len(s.recs) {
				continue
			}
			r := &s.recs[cur.pos[i]]
			if r.at < bestT || (src >= 2 && r.at == bestT && r.inst < bestInst) {
				bestT = r.at
				src = 2 + i
				bestInst = r.inst
			}
		}
		if src < 0 {
			return false, nil
		}
		switch src {
		case 0:
			ev := event{at: bestT, kind: evArrival, req: &e.arena[*arr]}
			*arr++
			if stop, err := e.processEvent(&ev); err != nil || stop {
				return stop, err
			}
		case 1:
			ev := e.events.pop()
			if stop, err := e.processEvent(&ev); err != nil || stop {
				return stop, err
			}
		default:
			s := &e.shards[src-2]
			rec := &s.recs[cur.pos[src-2]]
			cur.pos[src-2]++
			if stop, err := e.replayRec(s, rec); err != nil || stop {
				return stop, err
			}
		}
	}
}

// replayRec applies one shard record at the coordinator: grids, trace
// hooks, mirror and counter deltas, completions, requeues, orphans —
// then the dispatch pass and termination check, exactly like
// processEvent.
func (e *Engine) replayRec(s *engShard, rec *shardRec) (bool, error) {
	e.now = rec.at
	e.sampleUpTo(e.now)
	e.metricsUpTo(e.now)
	if e.tracer != nil && s.tlog != nil {
		s.tlog.Replay(e.tracer, int(rec.hookLo), int(rec.hookHi))
	}
	m := &e.mirror
	inst := rec.inst
	for i := rec.kvLo; i < rec.kvHi; i++ {
		op := &s.kvOps[i]
		m.used[inst] += int(op.delta)
		m.usedSum += int(op.delta)
		if op.peak && m.totalSum > 0 {
			if occ := float64(m.usedSum) / float64(m.totalSum); occ > e.peakOcc {
				e.peakOcc = occ
			}
		}
	}
	for i := rec.doneLo; i < rec.doneHi; i++ {
		e.completed = append(e.completed, s.dones[i])
	}
	for i := rec.reqLo; i < rec.reqHi; i++ {
		req := s.requeues[i]
		e.preempts++
		e.prefillQ.push(req)
	}
	e.steps += int(rec.steps)
	e.stepBatch += int(rec.stepBatch)
	e.stepTokens += int(rec.stepTokens)
	m.batchSum += int(rec.activeAfter) - m.active[inst]
	m.active[inst] = int(rec.activeAfter)
	m.pending[inst] = int(rec.pendingAfter)
	if rec.orphan != nil {
		e.orphan(rec.orphan)
	}
	e.dispatch()
	return len(e.completed)+len(e.failed)+e.shed == len(e.arena), nil
}
