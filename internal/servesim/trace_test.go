package servesim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dsv3/internal/obs"
	"dsv3/internal/parallel"
)

// tracedConfig is the observability reference run: the tiered
// deployment under multi-turn traffic with a crash mid-run, so one
// trace exercises offload, reload, prefix hits, orphaning and retries.
func tracedConfig() (Config, Workload) {
	cfg := tieredConfig()
	cfg.Resilience.Faults = crashPlan(1, 6, 14)
	cfg.Resilience.Retry = DefaultRetryPolicy()
	return cfg, sessionWorkload(4, 150)
}

// traceRun executes the reference run on eng with rec attached and
// returns the exported trace bytes.
func traceRun(t *testing.T, eng *Engine, rec *obs.TraceRecorder) ([]byte, *Report) {
	t.Helper()
	cfg, w := tracedConfig()
	eng.AttachTracer(rec)
	rep, err := eng.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestTraceDeterminism pins the issue's headline guarantee: the
// trace-event JSON of the tiered+faulted reference run is
// byte-identical across worker-pool widths and across pooled vs fresh
// engines — and actually contains the interesting events.
func TestTraceDeterminism(t *testing.T) {
	run := func(workers int, eng *Engine) ([]byte, *Report) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		return traceRun(t, eng, obs.NewTraceRecorder())
	}
	base, rep := run(1, NewEngine())
	wide, _ := run(8, NewEngine())
	if !bytes.Equal(base, wide) {
		t.Error("trace differs between worker counts 1 and 8")
	}
	// A pooled engine that already ran something else re-traces
	// identically: BeginRun must fully reset recorder and hooks.
	pooled := NewEngine()
	if _, err := pooled.Run(V3ServeConfig(), testWorkload(5, 60)); err != nil {
		t.Fatal(err)
	}
	again, _ := run(4, pooled)
	if !bytes.Equal(base, again) {
		t.Error("trace differs between pooled and fresh engines")
	}
	// The guarantee is vacuous unless the run exercised the machinery.
	if rep.KVOffloads == 0 || rep.KVReloads == 0 {
		t.Errorf("offload/reload idle: %d/%d", rep.KVOffloads, rep.KVReloads)
	}
	if len(rep.Incidents) == 0 || rep.Retries == 0 {
		t.Errorf("faults idle: %d incidents, %d retries", len(rep.Incidents), rep.Retries)
	}
	if rep.PrefixHits == 0 {
		t.Errorf("prefix cache idle")
	}
	for _, want := range []string{
		`"name":"prefill"`, `"name":"decode-step"`, `"name":"reload"`,
		`"name":"transfer"`, `"name":"retry"`, `"name":"offload"`,
		`"name":"crash"`, `"name":"recover"`, `"name":"prefix-hit"`,
		`"name":"complete"`,
	} {
		if !bytes.Contains(base, []byte(want)) {
			t.Errorf("trace missing %s event", want)
		}
	}
}

// TestTraceDoesNotPerturb: attaching a tracer and a metrics registry
// must not change the simulation — the report is byte-identical to an
// untraced run's.
func TestTraceDoesNotPerturb(t *testing.T) {
	cfg, w := tracedConfig()
	plain := reportJSON(t, mustRun(t, cfg, w))
	eng := NewEngine()
	eng.AttachTracer(obs.NewTraceRecorder())
	eng.AttachMetrics(obs.NewRegistry(0.5))
	rep, err := eng.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if traced := reportJSON(t, rep); !bytes.Equal(plain, traced) {
		t.Error("attaching observability changed the report")
	}
	// Detaching restores the plain path on the same engine.
	eng.AttachTracer(nil)
	eng.AttachMetrics(nil)
	rep, err = eng.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if detached := reportJSON(t, rep); !bytes.Equal(plain, detached) {
		t.Error("detached engine report differs from plain run")
	}
}

// TestTracePhaseReconciliation pins the phase-attribution invariant:
// every resolved request's queue+prefill+transfer+reload+decode+backoff
// spans sum to its end-to-end latency, because consecutive phases share
// their boundary instants.
func TestTracePhaseReconciliation(t *testing.T) {
	rec := obs.NewTraceRecorder()
	_, rep := traceRun(t, NewEngine(), rec)
	bds := rec.Breakdowns()
	if len(bds) != rep.Completed+rep.Failed+rep.Shed {
		t.Fatalf("breakdowns %d, want %d resolved requests",
			len(bds), rep.Completed+rep.Failed+rep.Shed)
	}
	for _, b := range bds {
		e2e, sum := b.E2E(), b.PhaseSum()
		tol := 1e-9 * math.Max(1, e2e)
		if math.Abs(e2e-sum) > tol {
			t.Errorf("req %d (%s): phases sum to %.12f, e2e %.12f", b.ID, b.Outcome, sum, e2e)
		}
	}
	counts := rec.EventCounts()
	total := 0
	for _, c := range counts {
		total += c.N
	}
	if total == 0 || rec.Events() == 0 {
		t.Fatal("no events recorded")
	}
}

// TestTraceMetrics checks the sampled series: a fixed grid, counters
// monotone non-decreasing, final counter values matching the report,
// and byte-identical CSV across engines.
func TestTraceMetrics(t *testing.T) {
	cfg, w := tracedConfig()
	run := func() (*obs.Registry, *Report) {
		eng := NewEngine()
		reg := obs.NewRegistry(0.5)
		eng.AttachMetrics(reg)
		rep, err := eng.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return reg, rep
	}
	reg, rep := run()
	if reg.Samples() < 10 {
		t.Fatalf("only %d samples", reg.Samples())
	}
	names := map[string]int{}
	tab := reg.Table()
	for j, col := range tab.Columns {
		names[col.Name] = j - 1 // skip the Time column
	}
	for _, name := range []string{"queue_depth", "running_batch", "kv_occupancy",
		"healthy_instances", "completed", "retries", "dram_occupancy", "flash_bytes_in"} {
		if _, ok := names[name]; !ok {
			t.Errorf("metric %q not registered", name)
		}
	}
	last := reg.Samples() - 1
	for _, c := range []struct {
		name string
		want float64
	}{
		{"completed", float64(rep.Completed)},
		{"failed", float64(rep.Failed)},
		{"kv_offloads", float64(rep.KVOffloads)},
		{"kv_reloads", float64(rep.KVReloads)},
	} {
		// The last grid instant precedes the final events, so the sampled
		// counter is a lower bound on the report total.
		if got := reg.Value(last, names[c.name]); got > c.want {
			t.Errorf("%s: sampled %v exceeds report total %v", c.name, got, c.want)
		}
	}
	for _, name := range []string{"completed", "retries", "kv_offloads", "kv_reloads",
		"dram_bytes_in", "flash_bytes_out"} {
		j := names[name]
		for i := 1; i < reg.Samples(); i++ {
			if reg.Value(i, j) < reg.Value(i-1, j) {
				t.Errorf("counter %s decreases at sample %d", name, i)
			}
		}
	}
	var a, b strings.Builder
	if err := reg.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	reg2, _ := run()
	if err := reg2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("metrics CSV differs between identical runs")
	}
}
