package servesim

import (
	"fmt"
)

// CapacityPlanner searches for the maximum sustainable arrival rate of
// a (Config, Workload) pair: the highest Poisson (or bursty/diurnal)
// rate whose SLO attainment still meets Target — the "goodput knee"
// that answers how much traffic a given fleet shape can serve within
// SLO. The search doubles HiRate until attainment drops below Target,
// then bisects the bracket.
//
// Every probe runs the workload at a candidate rate with the
// configuration's own seed, so the search is a pure function of
// (Config, Workload): probes at the same rate see identical traffic,
// attainment is (near-)monotone in rate, and the result is
// byte-identical on every run and for any worker count when fanned out
// by an experiment sweep.
type CapacityPlanner struct {
	// Target is the required SLO attainment in (0, 1].
	Target float64
	// LoRate seeds the bracket: the search assumes (and verifies) this
	// rate is sustainable; if it is not, the planner reports MaxRate 0.
	LoRate float64
	// HiRate is the first overload probe; it is doubled until
	// unsustainable, capped at MaxRate.
	HiRate float64
	// MaxRate bounds the doubling phase.
	MaxRate float64
	// Tolerance is the relative bracket width (hi-lo)/hi at which
	// bisection stops.
	Tolerance float64
	// MaxIters caps the number of bisection steps.
	MaxIters int
}

// DefaultCapacityPlanner returns the reference search: 90% attainment,
// bracket seeded at [1, 4] req/s, 4% resolution.
func DefaultCapacityPlanner() CapacityPlanner {
	return CapacityPlanner{
		Target:    0.9,
		LoRate:    1,
		HiRate:    4,
		MaxRate:   4096,
		Tolerance: 0.04,
		MaxIters:  32,
	}
}

// CapacityProbe is one evaluated rate of a capacity search.
type CapacityProbe struct {
	RatePerSec  float64
	Attainment  float64
	Sustainable bool
}

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// MaxRate is the highest rate verified to meet Target (the knee);
	// 0 when even LoRate misses it.
	MaxRate float64
	// Attainment is the SLO attainment measured at MaxRate.
	Attainment float64
	// Saturated marks a search that hit MaxRate while still meeting
	// Target — the true knee lies above the configured ceiling.
	Saturated bool
	// Report is the full simulation report at MaxRate (at LoRate when
	// MaxRate is 0, so the caller can inspect why admission failed).
	Report *Report
	// Probes lists every evaluated rate in evaluation order.
	Probes []CapacityProbe
	// Iterations counts the simulation runs the search spent.
	Iterations int
}

// Validate checks the planner parameters.
func (p CapacityPlanner) Validate() error {
	if p.Target <= 0 || p.Target > 1 {
		return fmt.Errorf("servesim: capacity target must be in (0,1], got %v", p.Target)
	}
	if p.LoRate <= 0 || p.HiRate <= p.LoRate || p.MaxRate < p.HiRate {
		return fmt.Errorf("servesim: capacity bracket invalid: lo %v, hi %v, max %v", p.LoRate, p.HiRate, p.MaxRate)
	}
	if p.Tolerance <= 0 || p.Tolerance >= 1 {
		return fmt.Errorf("servesim: capacity tolerance must be in (0,1), got %v", p.Tolerance)
	}
	if p.MaxIters <= 0 {
		return fmt.Errorf("servesim: capacity iteration cap must be positive, got %d", p.MaxIters)
	}
	return nil
}

// Find runs the capacity search on the cluster and workload. The
// workload's RatePerSec is overridden by each probe; trace workloads
// have no rate to search over and are rejected.
func (p CapacityPlanner) Find(cfg Config, w Workload) (*CapacityResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if w.Arrival == ArrivalTrace {
		return nil, fmt.Errorf("servesim: capacity search needs a rate-parameterized workload, not a trace")
	}

	res := &CapacityResult{}
	// One engine serves every probe of the search: the doubling and
	// bisection trail reuses the event heap, request arena and metric
	// buffers run after run, so a probe allocates only its Report.
	eng := NewEngine()
	probe := func(rate float64) (*Report, bool, error) {
		pw := w
		pw.RatePerSec = rate
		rep, err := eng.Run(cfg, pw)
		if err != nil {
			return nil, false, err
		}
		ok := rep.SLOAttainment >= p.Target
		res.Probes = append(res.Probes, CapacityProbe{RatePerSec: rate, Attainment: rep.SLOAttainment, Sustainable: ok})
		res.Iterations++
		return rep, ok, nil
	}

	lo := p.LoRate
	loRep, ok, err := probe(lo)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Even the bracket floor misses the target: report MaxRate 0
		// with the floor's report attached for diagnosis.
		res.Attainment = loRep.SLOAttainment
		res.Report = loRep
		return res, nil
	}
	best, bestRep := lo, loRep

	// Doubling phase: push hi until the SLO breaks or the ceiling hits.
	hi := p.HiRate
	for {
		rep, ok, err := probe(hi)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		best, bestRep = hi, rep
		lo = hi
		if hi >= p.MaxRate {
			res.Saturated = true
			res.MaxRate = best
			res.Attainment = bestRep.SLOAttainment
			res.Report = bestRep
			return res, nil
		}
		hi *= 2
		if hi > p.MaxRate {
			hi = p.MaxRate
		}
	}

	// Bisection phase: [lo sustainable, hi unsustainable].
	for i := 0; i < p.MaxIters && (hi-lo) > p.Tolerance*hi; i++ {
		mid := (lo + hi) / 2
		rep, ok, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			best, bestRep = mid, rep
			lo = mid
		} else {
			hi = mid
		}
	}
	res.MaxRate = best
	res.Attainment = bestRep.SLOAttainment
	res.Report = bestRep
	return res, nil
}
