package servesim

import (
	"fmt"
	"testing"

	"dsv3/internal/units"
)

// BenchmarkEventQueue compares the two eventQueue implementations under
// the classic hold model at fleet-scale pending counts: the queue is
// pre-filled with n events (a long ribbon of pre-scheduled arrivals plus
// a dense cluster of near-term step completions, the shape a fleet run
// produces), then each op pops the minimum and pushes a replacement a
// few milliseconds ahead. The binary heap pays O(log n) per op against
// the full pending count; the calendar queue pays the occupancy of the
// current bucket, which its adaptive resize keeps at a handful of
// events no matter how many far-future arrivals are parked behind it.
func BenchmarkEventQueue(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedHeap, SchedCalendar} {
		for _, n := range []int{100_000, 1_000_000} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				const horizon = units.Seconds(3600)
				q := newEventQueue(kind, nil)
				if c, ok := q.(*calendarQueue); ok {
					c.configure(horizon, n)
				} else {
					q.reset()
				}
				// splitmix-style generator: deterministic, no shared state.
				rng := uint64(0x9e3779b97f4a7c15)
				next := func() float64 {
					rng += 0x9e3779b97f4a7c15
					x := rng
					x ^= x >> 30
					x *= 0xbf58476d1ce4e5b9
					x ^= x >> 27
					return float64(x>>11) / (1 << 53)
				}
				seq := 0
				// 90% arrivals spread over the horizon, 10% step events
				// packed into the next 30ms — the head-density mismatch
				// that defeats a one-width calendar.
				for i := 0; i < n; i++ {
					at := units.Seconds(next()) * horizon
					if i%10 == 0 {
						at = units.Seconds(next()) * 0.03
					}
					seq++
					q.push(event{at: at, seq: seq, kind: evStepDone})
				}
				// One hold before the timer: the calendar's first pop
				// meets the dense head cluster and re-buckets itself;
				// that one-time adaptation is setup, not steady state.
				warm := q.pop()
				seq++
				warm.seq = seq
				q.push(warm)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := q.pop()
					ev.at += units.Seconds(0.001 + 0.009*next())
					seq++
					ev.seq = seq
					q.push(ev)
				}
				if q.size() != n {
					b.Fatalf("queue size drifted: %d != %d", q.size(), n)
				}
			})
		}
	}
}
