package servesim

import (
	"bytes"
	"encoding/json"
	"testing"

	"dsv3/internal/obs"
	"dsv3/internal/units"
)

// shardParityFleet is a disaggregated fleet wide enough for 8 real
// shards, under enough load to exercise routing, preemption, admission
// shedding, crashes, retries and recovery on the sharded path.
func shardParityConfig() Config {
	cfg := V3ServeConfig()
	cfg.Fleet.PrefillInstances = 4
	cfg.Fleet.DecodeInstances = 12
	cfg.Fleet.MaxBatch = 24
	cfg.Fleet.Router = RoutePowerOfTwo
	cfg.KV.HBM.CapacityBytes = 0.5 * units.GB // tight pool: preemption pressure
	cfg.Resilience.Retry = DefaultRetryPolicy()
	cfg.Resilience.Admission = AdmissionPolicy{MaxQueueDepth: 600, MaxKVOccupancy: 0.995}
	cfg.Resilience.Faults = &FaultPlan{
		Events: []FaultEvent{
			{At: 4, Kind: FaultCrash, Instance: 3},
			{At: 6, Kind: FaultDrain, Instance: 7},
			{At: 9, Kind: FaultRecover, Instance: 3},
			{At: 11, Kind: FaultRecover, Instance: 7},
			{At: 5, Kind: FaultCrash, Prefill: true, Instance: 1},
			{At: 8, Kind: FaultRecover, Prefill: true, Instance: 1},
		},
	}
	cfg.Seed = 11
	return cfg
}

func shardParityWorkload() Workload {
	return Workload{
		Arrival:    ArrivalPoisson,
		RatePerSec: 40,
		Requests:   900,
		Prompt:     LogNormal(640, 0.6),
		Output:     LogNormal(192, 0.5),
	}
}

// runOutputs executes one run with tracer + metrics attached and
// returns (report JSON, trace JSON, metrics CSV) bytes.
func runOutputs(t *testing.T, e *Engine, cfg Config, w Workload) ([]byte, []byte, []byte) {
	t.Helper()
	rec := obs.NewTraceRecorder()
	reg := obs.NewRegistry(0.25)
	e.AttachTracer(rec)
	e.AttachMetrics(reg)
	rep, err := e.Run(cfg, w)
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", cfg.Fleet.Shards, err)
	}
	repJS, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var tr, ms bytes.Buffer
	if err := rec.WriteJSON(&tr); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := reg.WriteCSV(&ms); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return repJS, tr.Bytes(), ms.Bytes()
}

// TestShardCountParity pins the tentpole determinism contract: report,
// trace, and metrics bytes are identical for shards ∈ {serial, 1, 2, 8}
// on a genuinely parallel configuration (faults, retries, shedding,
// preemption, tracing and metrics all active).
func TestShardCountParity(t *testing.T) {
	w := shardParityWorkload()
	base := shardParityConfig()
	wantRep, wantTr, wantMs := runOutputs(t, NewEngine(), base, w)

	for _, shards := range []int{1, 2, 8} {
		cfg := base
		cfg.Fleet.Shards = shards
		gotRep, gotTr, gotMs := runOutputs(t, NewEngine(), cfg, w)
		if !bytes.Equal(wantRep, gotRep) {
			t.Errorf("shards=%d: report bytes differ from serial", shards)
		}
		if !bytes.Equal(wantTr, gotTr) {
			t.Errorf("shards=%d: trace bytes differ from serial", shards)
		}
		if !bytes.Equal(wantMs, gotMs) {
			t.Errorf("shards=%d: metrics bytes differ from serial", shards)
		}
	}
}

// TestShardParityPooledEngine reruns the sharded configuration on one
// pooled engine, interleaved with a serial run, and requires every
// output byte to match a fresh engine's.
func TestShardParityPooledEngine(t *testing.T) {
	w := shardParityWorkload()
	cfg := shardParityConfig()
	cfg.Fleet.Shards = 8

	wantRep, wantTr, wantMs := runOutputs(t, NewEngine(), cfg, w)
	pooled := NewEngine()
	for round := 0; round < 2; round++ {
		gotRep, gotTr, gotMs := runOutputs(t, pooled, cfg, w)
		if !bytes.Equal(wantRep, gotRep) || !bytes.Equal(wantTr, gotTr) || !bytes.Equal(wantMs, gotMs) {
			t.Fatalf("pooled round %d: output bytes differ from fresh engine", round)
		}
		serial := cfg
		serial.Fleet.Shards = 0
		if _, err := pooled.Run(serial, w); err != nil {
			t.Fatalf("interleaved serial run: %v", err)
		}
	}
}

// TestShardParityTiered pins the fallback contract: with KV tiers +
// prefix cache + fault plan + tracing enabled the engine runs serial
// regardless of Shards, so outputs are trivially identical across shard
// counts — and the run must still succeed with Shards set.
func TestShardParityTiered(t *testing.T) {
	cfg := shardParityConfig()
	cfg.KV.ChunkTokens = 256
	cfg.KV.Tiers = []KVTierConfig{
		{Name: "dram", CapacityBytes: 2 * units.GB, ReadBW: 80 * units.GB, WriteBW: 80 * units.GB},
		{Name: "flash", CapacityBytes: 8 * units.GB, ReadBW: 8 * units.GB, WriteBW: 8 * units.GB},
	}
	cfg.KV.PrefixCache = true
	w := shardParityWorkload()
	w.Turns = 3
	w.ThinkTime = 1.5

	wantRep, wantTr, wantMs := runOutputs(t, NewEngine(), cfg, w)
	for _, shards := range []int{1, 2, 8} {
		c := cfg
		c.Fleet.Shards = shards
		gotRep, gotTr, gotMs := runOutputs(t, NewEngine(), c, w)
		if !bytes.Equal(wantRep, gotRep) || !bytes.Equal(wantTr, gotTr) || !bytes.Equal(wantMs, gotMs) {
			t.Errorf("tiered shards=%d: output bytes differ", shards)
		}
	}
}

// TestShardSchedulerParity: the calendar queue produces the same bytes
// as the heap on both the serial and the sharded paths.
func TestShardSchedulerParity(t *testing.T) {
	w := shardParityWorkload()
	for _, shards := range []int{0, 8} {
		cfg := shardParityConfig()
		cfg.Fleet.Shards = shards
		wantRep, wantTr, wantMs := runOutputs(t, NewEngine(), cfg, w)
		cal := cfg
		cal.Fleet.Scheduler = SchedCalendar
		gotRep, gotTr, gotMs := runOutputs(t, NewEngine(), cal, w)
		if !bytes.Equal(wantRep, gotRep) || !bytes.Equal(wantTr, gotTr) || !bytes.Equal(wantMs, gotMs) {
			t.Errorf("shards=%d: calendar scheduler bytes differ from heap", shards)
		}
	}
}

// TestShardClampAndFallback: shard counts beyond the decode fleet
// clamp; unshardable configurations run serial and still succeed.
func TestShardClampAndFallback(t *testing.T) {
	w := shardParityWorkload()
	cfg := shardParityConfig()
	cfg.Fleet.Shards = 100 // > 12 decodes: clamps
	if _, err := NewEngine().Run(cfg, w); err != nil {
		t.Fatalf("clamped shards: %v", err)
	}

	colo := V3ServeConfig()
	colo.Fleet.Colocated = true
	colo.Fleet.Shards = 4
	cw := Workload{Arrival: ArrivalPoisson, RatePerSec: 4, Requests: 60,
		Prompt: LogNormal(256, 0.4), Output: LogNormal(64, 0.4)}
	if _, err := NewEngine().Run(colo, cw); err != nil {
		t.Fatalf("colocated fallback: %v", err)
	}

	if err := (FleetConfig{PrefillInstances: 1, DecodeInstances: 1, MaxBatch: 1, Shards: -1}).Validate(); err == nil {
		t.Fatal("negative shard count passed validation")
	}
}
