package servesim

import (
	"encoding/json"
	"reflect"
	"testing"

	"dsv3/internal/parallel"
)

// poolWorkload is a small but non-trivial workload: heavy-tailed
// lengths and enough pressure that batching, routing and (at high
// rates) preemption all engage.
func poolWorkload(rate float64, n int) Workload {
	return Workload{
		Arrival:    ArrivalPoisson,
		RatePerSec: rate,
		Requests:   n,
		Prompt:     LogNormal(1024, 0.5),
		Output:     LogNormal(512, 0.5),
	}
}

func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEngineReuseMatchesFresh pins the pooling contract: a Report from
// a reused engine must be byte-identical (JSON encoding included) to
// one from a fresh engine, across heterogeneous configurations run
// back to back on the same pools.
func TestEngineReuseMatchesFresh(t *testing.T) {
	cfgA := V3ServeConfig()
	cfgB := V3ServeConfig()
	cfgB.Fleet.Colocated = true
	cfgB.Seed = 9
	cfgC := V3ServeConfig()
	cfgC.Fleet.Router = RoutePowerOfTwo
	cfgC.Fleet.PrefillInstances = 3
	cfgC.Fleet.DecodeInstances = 2
	runs := []struct {
		cfg Config
		w   Workload
	}{
		{cfgA, poolWorkload(6, 120)},
		{cfgB, poolWorkload(9, 80)},
		{cfgC, poolWorkload(4, 60)},
		{cfgA, poolWorkload(6, 120)}, // shrink back after the bigger runs
	}
	eng := NewEngine()
	for i, run := range runs {
		pooled, err := eng.Run(run.cfg, run.w)
		if err != nil {
			t.Fatalf("run %d (pooled): %v", i, err)
		}
		fresh, err := Run(run.cfg, run.w)
		if err != nil {
			t.Fatalf("run %d (fresh): %v", i, err)
		}
		if !reflect.DeepEqual(pooled, fresh) {
			t.Fatalf("run %d: pooled report differs from fresh engine", i)
		}
		if pj, fj := reportJSON(t, pooled), reportJSON(t, fresh); string(pj) != string(fj) {
			t.Fatalf("run %d: pooled JSON differs from fresh:\n%s\n%s", i, pj, fj)
		}
	}
}

// TestEngineReuseNoBleed runs the same simulation twice in a row on one
// engine: if any pooled state (arena marks, queues, KV accounting,
// metric buffers) leaked across runs, the second report would drift.
func TestEngineReuseNoBleed(t *testing.T) {
	cfg := V3ServeConfig()
	// Crank the rate so preemption marks and long queues populate the
	// pools on the first run.
	w := poolWorkload(20, 150)
	eng := NewEngine()
	first, err := eng.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := reportJSON(t, first), reportJSON(t, second); string(a) != string(b) {
		t.Fatalf("consecutive runs on one engine diverged:\n%s\n%s", a, b)
	}
}

// TestRateSweepPooledParity pins that the per-worker engine pooling in
// RateSweep cannot change results: the sweep must equal point-by-point
// fresh runs with the same derived seeds.
func TestRateSweepPooledParity(t *testing.T) {
	cfg := V3ServeConfig()
	w := poolWorkload(1, 80)
	rates := []float64{2, 6, 10, 14}
	pts, err := RateSweep(cfg, w, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		pc := cfg
		pc.Seed = parallel.DeriveSeed(cfg.Seed, i)
		pw := w
		pw.RatePerSec = rate
		want, err := Run(pc, pw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pts[i].Report, want) {
			t.Fatalf("sweep point %d differs from fresh run", i)
		}
	}
}

// TestCapacityPlannerPooledDeterminism: the planner's pooled engine
// must make Find a pure function — identical trails on every call.
func TestCapacityPlannerPooledDeterminism(t *testing.T) {
	cfg := V3ServeConfig()
	w := poolWorkload(1, 60)
	p := DefaultCapacityPlanner()
	a, err := p.Find(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Find(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("capacity search not deterministic across pooled runs: %+v vs %+v", a, b)
	}
	if a.MaxRate <= 0 {
		t.Fatalf("expected a positive capacity knee, got %+v", a)
	}
}
