package servesim

import (
	"fmt"

	"dsv3/internal/units"
)

// SchedulerKind selects the event-queue implementation behind the
// engine's (time, seq)-ordered scheduler. Because event order is a
// strict total order — seq values are unique — every correct
// implementation pops the exact same sequence, so the choice is a pure
// performance profile: reports, traces and metrics are byte-identical
// across kinds.
type SchedulerKind int

const (
	// SchedHeap is the slice-backed binary min-heap — the parity
	// baseline. O(log n) push/pop; best when few events are pending.
	SchedHeap SchedulerKind = iota
	// SchedCalendar is a calendar queue: events bucketed by time with a
	// scan for the minimum inside the current bucket. O(1) push and
	// O(bucket) pop regardless of the total pending count — the fleet-
	// scale profile, where a million pre-scheduled arrivals would
	// otherwise put 20 levels under every heap operation.
	SchedCalendar
)

// String implements fmt.Stringer with the CLI spellings.
func (k SchedulerKind) String() string {
	switch k {
	case SchedHeap:
		return "heap"
	case SchedCalendar:
		return "calendar"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// ParseScheduler resolves a scheduler kind by its String spelling.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch s {
	case "heap":
		return SchedHeap, nil
	case "calendar":
		return SchedCalendar, nil
	}
	return 0, fmt.Errorf("servesim: unknown scheduler %q (want heap or calendar)", s)
}

// Validate checks the kind is a known one.
func (k SchedulerKind) Validate() error {
	if k < SchedHeap || k > SchedCalendar {
		return fmt.Errorf("servesim: unknown scheduler %d", int(k))
	}
	return nil
}

// eventQueue is the pluggable scheduler contract: a priority queue of
// events under the strict (at, seq) order. size/nextAt let the sharded
// engine peek window boundaries without disturbing the queue.
type eventQueue interface {
	push(ev event)
	pop() event
	// nextAt returns the minimum pending event time; only valid when
	// size() > 0.
	nextAt() units.Seconds
	size() int
	reset()
}

// eventHeap implements eventQueue (push/pop live in servesim.go).

func (h *eventHeap) nextAt() units.Seconds { return (*h)[0].at }

func (h *eventHeap) size() int { return len(*h) }

func (h *eventHeap) reset() {
	s := *h
	for i := range s {
		s[i] = event{}
	}
	*h = s[:0]
}

// calendarQueue is a classic calendar queue specialized for the
// engine's workload shape: a long ribbon of width-w time buckets, a
// cursor at the earliest possibly-nonempty bucket, and an overflow
// ("far") slice for events beyond the bucketed horizon. Push appends to
// the target bucket in O(1); pop scans the first nonempty bucket for
// the (at, seq) minimum, so its cost is the bucket occupancy — sized so
// a handful of events share a bucket — independent of how many far-
// future arrivals are parked further along the ribbon.
//
// Determinism: pop always returns the global (at, seq) minimum (every
// event in a later bucket is strictly later than every event in an
// earlier one, and the in-bucket scan breaks ties on seq), so the pop
// sequence is identical to eventHeap's.
type calendarQueue struct {
	width   units.Seconds
	base    int // global bucket index of buckets[0]
	cur     int // first possibly-nonempty local bucket
	n       int
	buckets [][]event
	far     []event // global bucket index >= base+len(buckets)

	// cachedAt memoizes nextAt between mutations: a pop invalidates it,
	// a push only lowers it. The merge loops peek far more often than
	// they mutate, so this turns their repeated bucket scans into O(1).
	cachedAt units.Seconds
	cached   bool

	spill []event // resize scratch
}

// calendarMaxScan bounds the in-bucket scan: when pop meets a bucket
// holding more events than this, the width is wrong for the head-of-
// queue event density (e.g. one pending step per decode instance packed
// into a few milliseconds while the width was sized for arrivals spread
// over the whole horizon), and the queue re-buckets itself narrower.
const calendarMaxScan = 24

// calendarBuckets sizes the ribbon for a run with nEvents expected
// scheduled events: roughly a few events per bucket, clamped so small
// runs stay cheap to reset and huge runs stay cheap to hold.
func calendarBuckets(nEvents int) int {
	nb := 256
	for nb < nEvents/4 && nb < 1<<19 {
		nb *= 2
	}
	return nb
}

// configure re-initializes the queue for a run spanning roughly
// horizon seconds with nEvents expected events. Bucket storage is
// retained across runs.
func (c *calendarQueue) configure(horizon units.Seconds, nEvents int) {
	c.reset()
	nb := calendarBuckets(nEvents)
	if cap(c.buckets) < nb {
		next := make([][]event, nb)
		copy(next, c.buckets[:cap(c.buckets)])
		c.buckets = next
	}
	c.buckets = c.buckets[:nb]
	if horizon <= 0 {
		horizon = 1
	}
	// The makespan routinely outruns the arrival horizon (that is what
	// overload looks like), so spread the ribbon over a few horizons;
	// later events still land in-range instead of in the far slice.
	c.width = 4 * horizon / units.Seconds(nb)
}

func (c *calendarQueue) bucketOf(at units.Seconds) int {
	if at <= 0 {
		return 0
	}
	return int(at / c.width)
}

func (c *calendarQueue) push(ev event) {
	if c.cached && ev.at < c.cachedAt {
		c.cachedAt = ev.at
	}
	idx := c.bucketOf(ev.at) - c.base
	if idx >= len(c.buckets) {
		c.far = append(c.far, ev)
		c.n++
		return
	}
	if idx < 0 {
		idx = 0
	}
	if idx < c.cur {
		c.cur = idx
	}
	c.buckets[idx] = append(c.buckets[idx], ev)
	c.n++
}

// advance moves the cursor to the first nonempty bucket, rebasing the
// ribbon onto the far slice when every bucketed event is consumed.
func (c *calendarQueue) advance() {
	for {
		for c.cur < len(c.buckets) && len(c.buckets[c.cur]) == 0 {
			c.cur++
		}
		if c.cur < len(c.buckets) {
			return
		}
		// Only far events remain: rebase the ribbon at the earliest one
		// and redistribute. Rare — it takes a run outliving 4x its
		// arrival horizon — and amortized by the events it re-homes.
		minIdx := c.bucketOf(c.far[0].at)
		for i := 1; i < len(c.far); i++ {
			if idx := c.bucketOf(c.far[i].at); idx < minIdx {
				minIdx = idx
			}
		}
		c.base = minIdx
		c.cur = 0
		far := c.far
		c.far = c.far[:0]
		c.n -= len(far)
		// c.far shares far's backing array, and push may re-file events
		// that are still beyond the ribbon right back into it — writing
		// slots this loop has already consumed, never ones it has yet to
		// read (at most i+1 events can have been re-filed after i+1
		// iterations). Only the tail past the new length is stale.
		for i := range far {
			c.push(far[i])
		}
		for i := len(c.far); i < len(far); i++ {
			far[i] = event{}
		}
	}
}

func (c *calendarQueue) nextAt() units.Seconds {
	if c.cached {
		return c.cachedAt
	}
	c.advance()
	b := c.buckets[c.cur]
	at := b[0].at
	for i := 1; i < len(b); i++ {
		if b[i].at < at {
			at = b[i].at
		}
	}
	c.cachedAt, c.cached = at, true
	return at
}

// resize narrows the bucket width and re-homes every ribbon event (the
// far slice is untouched — push re-files anything now beyond the
// shorter span there). The new width spreads the offending bucket's
// occupancy across ~4-event buckets in one shot, so a queue whose
// initial width misjudged the head density converges in a single
// O(ribbon) pass instead of a geometric cascade of them.
func (c *calendarQueue) resize() {
	occ := len(c.buckets[c.cur])
	evs := c.spill[:0]
	for i := c.cur; i < len(c.buckets); i++ {
		b := c.buckets[i]
		for j := range b {
			evs = append(evs, b[j])
			b[j] = event{}
		}
		c.buckets[i] = b[:0]
	}
	c.n -= len(evs)
	c.width = c.width * 4 / units.Seconds(occ)
	min := evs[0].at
	for i := 1; i < len(evs); i++ {
		if evs[i].at < min {
			min = evs[i].at
		}
	}
	c.base = c.bucketOf(min)
	c.cur = 0
	for i := range evs {
		c.push(evs[i])
		evs[i] = event{}
	}
	c.spill = evs[:0]
}

func (c *calendarQueue) pop() event {
	c.advance()
	for len(c.buckets[c.cur]) > calendarMaxScan && c.width > 1e-9 {
		c.resize()
		c.advance()
	}
	b := c.buckets[c.cur]
	best := 0
	for i := 1; i < len(b); i++ {
		if eventLess(&b[i], &b[best]) {
			best = i
		}
	}
	ev := b[best]
	last := len(b) - 1
	b[best] = b[last]
	b[last] = event{} // drop the req pointer
	c.buckets[c.cur] = b[:last]
	c.n--
	c.cached = false
	return ev
}

func (c *calendarQueue) size() int { return c.n }

func (c *calendarQueue) reset() {
	for i := range c.buckets {
		b := c.buckets[i]
		for j := range b {
			b[j] = event{}
		}
		c.buckets[i] = b[:0]
	}
	for i := range c.far {
		c.far[i] = event{}
	}
	c.far = c.far[:0]
	c.base, c.cur, c.n = 0, 0, 0
	c.cached = false
}

// newEventQueue returns the engine- or shard-local queue for the kind,
// reusing prev when it is already the right implementation.
func newEventQueue(kind SchedulerKind, prev eventQueue) eventQueue {
	switch kind {
	case SchedCalendar:
		if q, ok := prev.(*calendarQueue); ok {
			return q
		}
		return &calendarQueue{}
	default:
		if q, ok := prev.(*eventHeap); ok {
			return q
		}
		h := make(eventHeap, 0, 64)
		return &h
	}
}
