package servesim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dsv3/internal/obs"
	"dsv3/internal/units"
)

// DefaultChunkTokens is the offload granularity used when a hierarchy
// enables tiers without setting ChunkTokens (LMCache-style 256-token
// chunks).
const DefaultChunkTokens = 256

// KVTierConfig describes one below-HBM KV tier (host DRAM, pooled
// flash, ...): its capacity and the charge model for moving chunks in
// and out — a per-chunk fixed latency plus bandwidth-proportional
// transfer time.
type KVTierConfig struct {
	// Name labels the tier in reports ("dram", "flash"); empty names
	// render as "tierN".
	Name string
	// CapacityBytes is the KV capacity of this tier per... the tier is
	// modeled as a single shared pool across the fleet (host memory and
	// disaggregated flash are not per-accelerator resources).
	CapacityBytes units.Bytes
	// ReadBW and WriteBW are the tier's transfer bandwidths toward and
	// from HBM. WriteBW defaults to ReadBW when parsed from a spec.
	ReadBW  units.BytesPerSecond
	WriteBW units.BytesPerSecond
	// ChunkLatency is the fixed per-chunk access latency added to every
	// chunk moved (submission + lookup overhead; the knee the chunk-size
	// sweep exposes).
	ChunkLatency units.Seconds
}

// Validate checks the tier parameters, reporting every problem at once.
func (t KVTierConfig) Validate() error {
	var errs []error
	if t.CapacityBytes <= 0 {
		errs = append(errs, fmt.Errorf("non-positive capacity %v", t.CapacityBytes))
	}
	if t.ReadBW <= 0 {
		errs = append(errs, fmt.Errorf("non-positive read bandwidth %v", t.ReadBW))
	}
	if t.WriteBW <= 0 {
		errs = append(errs, fmt.Errorf("non-positive write bandwidth %v", t.WriteBW))
	}
	if t.ChunkLatency < 0 {
		errs = append(errs, fmt.Errorf("negative chunk latency %v", t.ChunkLatency))
	}
	return errors.Join(errs...)
}

// label returns the tier's report name; i is its index in KVHierarchy.Tiers.
func (t KVTierConfig) label(i int) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("tier%d", i+1)
}

// KVHierarchy is the tiered KV-cache configuration: the legacy paged
// HBM pool as tier 0, optional below-HBM tiers ordered fast-to-slow,
// the chunk granularity cold KV moves at, and the session prefix
// cache. The zero value of everything but HBM — no tiers, no prefix
// cache — reproduces the historical single-pool allocator bit-for-bit.
type KVHierarchy struct {
	// HBM sizes the per-instance paged KV pool (tier 0).
	HBM KVConfig
	// ChunkTokens is the offload/reload granularity in tokens; 0 means
	// DefaultChunkTokens when tiers are enabled.
	ChunkTokens int
	// Tiers are the below-HBM offload targets, fastest first (DRAM
	// before flash). Empty disables offload: KV pressure falls back to
	// recompute preemption exactly as before.
	Tiers []KVTierConfig
	// PrefixCache retains each session's grown KV prefix in the tiers
	// after a turn completes, so the next turn's prefill skips the
	// cached prefix. Requires at least one tier.
	PrefixCache bool
}

// Validate checks the hierarchy, reporting every problem at once.
func (k KVHierarchy) Validate() error {
	errs := []error{k.HBM.Validate()}
	if k.ChunkTokens < 0 {
		errs = append(errs, fmt.Errorf("servesim: negative chunk tokens %d", k.ChunkTokens))
	}
	for i, t := range k.Tiers {
		if err := t.Validate(); err != nil {
			errs = append(errs, fmt.Errorf("servesim: KV tier %d (%s): %w", i+1, t.label(i), err))
		}
	}
	if k.PrefixCache && len(k.Tiers) == 0 {
		errs = append(errs, errors.New("servesim: prefix cache needs at least one below-HBM tier"))
	}
	return errors.Join(errs...)
}

// ParseKVTiers parses a below-HBM tier spec such as
//
//	"name=dram,cap=8,read=24,write=16,lat=0.05/name=flash,cap=64,read=6,lat=0.4"
//
// Tiers are "/"-separated, ordered fast-to-slow; each tier is a
// comma-separated list of key=value clauses: cap (GB, required), read
// (GB/s, required), write (GB/s, defaults to read), lat (per-chunk
// fixed latency in ms, default 0), and name. Malformed specs are
// rejected with the offending tier and clause named.
func ParseKVTiers(spec string) ([]KVTierConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("servesim: empty KV tier spec")
	}
	parts := strings.Split(spec, "/")
	tiers := make([]KVTierConfig, 0, len(parts))
	for i, part := range parts {
		var t KVTierConfig
		var haveCap, haveRead, haveWrite bool
		for _, clause := range strings.Split(part, ",") {
			clause = strings.TrimSpace(clause)
			if clause == "" {
				return nil, fmt.Errorf("servesim: kv tier %d: empty clause in %q", i+1, part)
			}
			key, val, ok := strings.Cut(clause, "=")
			if !ok {
				return nil, fmt.Errorf("servesim: kv tier %d: clause %q is not key=value", i+1, clause)
			}
			if key == "name" {
				t.Name = val
				continue
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("servesim: kv tier %d: bad %s value %q", i+1, key, val)
			}
			switch key {
			case "cap":
				t.CapacityBytes = f * units.GB
				haveCap = true
			case "read":
				t.ReadBW = f * units.GB
				haveRead = true
			case "write":
				t.WriteBW = f * units.GB
				haveWrite = true
			case "lat":
				t.ChunkLatency = f * units.Millisecond
			default:
				return nil, fmt.Errorf("servesim: kv tier %d: unknown key %q (want name, cap, read, write, lat)", i+1, key)
			}
		}
		if !haveCap || !haveRead {
			return nil, fmt.Errorf("servesim: kv tier %d: needs cap and read, got %q", i+1, part)
		}
		if !haveWrite {
			t.WriteBW = t.ReadBW
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("servesim: kv tier %d: %w", i+1, err)
		}
		tiers = append(tiers, t)
	}
	return tiers, nil
}

// TierStat is the traffic one level of the hierarchy saw during a run.
// Level 0 is HBM; below-HBM levels carry the configured tier names.
type TierStat struct {
	Tier     string
	BytesIn  units.Bytes // written into this level
	BytesOut units.Bytes // read out of this level
}

// offEntry is one resident chunk run in the below-HBM tiers: either an
// offloaded preemption victim (req != nil, reloaded when the request
// is re-admitted) or a cached session prefix (session > 0, req == nil,
// hit by the session's next turn). Entries live in an engine-owned
// free-listed arena.
type offEntry struct {
	req     *reqState
	session int
	tokens  int
	chunks  int
	tier    int // index into KVHierarchy.Tiers
	touch   int // LRU clock (hierState.touchSeq at last use)
	// ready is when the entry's chunks are fully resident at its tier
	// (write-back and demotions are asynchronous; a read that arrives
	// earlier waits).
	ready units.Seconds
	// dropped marks an offload entry whose chunks were evicted off the
	// bottom tier; the owning request recomputes at admission instead
	// of reloading. (Dropped prefix entries are freed immediately.)
	dropped bool
	free    bool
}

// hierState is the engine's per-run view of the below-HBM hierarchy:
// chunk-counter occupancy per tier (chunks are interchangeable within
// a tier, like pages within the HBM pool), the entry arena, the
// session->entry prefix index, and the traffic/stall accumulators.
// Everything is recycled across runs and stays zero when no tiers are
// configured.
type hierState struct {
	on       bool
	prefixOn bool

	chunkTokens int
	chunkBytes  units.Bytes
	caps        []int // per tier, in chunks
	used        []int

	entries   []offEntry
	freeSlots []int
	bySession map[int]int // session -> entry index (prefix cache)
	touchSeq  int

	// bytesIn/bytesOut are indexed by level: 0 = HBM, i+1 = Tiers[i].
	bytesIn  []units.Bytes
	bytesOut []units.Bytes

	reloadStall units.Seconds
	offloads    int
	reloads     int
	demotions   int
	drops       int
	hits        int
	misses      int
	hitTokens   int
}

// resetHier re-initializes the hierarchy state for a new run, keeping
// the arena and per-tier buffers. Must run after e.cfg and e.lc are
// set.
func (e *Engine) resetHier() {
	h := &e.hier
	tiers := e.cfg.KV.Tiers
	h.on = len(tiers) > 0
	h.prefixOn = h.on && e.cfg.KV.PrefixCache
	h.chunkTokens = e.cfg.KV.ChunkTokens
	if h.chunkTokens <= 0 {
		h.chunkTokens = DefaultChunkTokens
	}
	h.chunkBytes = e.lc.kvPerToken * float64(h.chunkTokens)
	for i := range h.entries {
		h.entries[i] = offEntry{}
	}
	h.entries = h.entries[:0]
	h.freeSlots = h.freeSlots[:0]
	h.touchSeq = 0
	h.reloadStall = 0
	h.offloads, h.reloads, h.demotions, h.drops = 0, 0, 0, 0
	h.hits, h.misses, h.hitTokens = 0, 0, 0
	n := len(tiers)
	if cap(h.caps) < n {
		h.caps = make([]int, n)
		h.used = make([]int, n)
	}
	h.caps, h.used = h.caps[:n], h.used[:n]
	if cap(h.bytesIn) < n+1 {
		h.bytesIn = make([]units.Bytes, n+1)
		h.bytesOut = make([]units.Bytes, n+1)
	}
	h.bytesIn, h.bytesOut = h.bytesIn[:n+1], h.bytesOut[:n+1]
	for i := range tiers {
		h.caps[i] = int(tiers[i].CapacityBytes / h.chunkBytes)
		h.used[i] = 0
	}
	for i := range h.bytesIn {
		h.bytesIn[i], h.bytesOut[i] = 0, 0
	}
	if h.bySession != nil {
		clear(h.bySession)
	}
	if h.prefixOn && h.bySession == nil {
		h.bySession = make(map[int]int)
	}
}

func (h *hierState) chunksFor(tokens int) int {
	return (tokens + h.chunkTokens - 1) / h.chunkTokens
}

func (h *hierState) allocEntry(ent offEntry) int {
	if n := len(h.freeSlots); n > 0 {
		idx := h.freeSlots[n-1]
		h.freeSlots = h.freeSlots[:n-1]
		h.entries[idx] = ent
		return idx
	}
	h.entries = append(h.entries, ent)
	return len(h.entries) - 1
}

func (h *hierState) freeEntry(idx int) {
	h.entries[idx] = offEntry{free: true}
	h.freeSlots = append(h.freeSlots, idx)
}

// forget releases the below-HBM residency a request still owns (if
// any): crash-orphaned or recompute-fallback requests abandon their
// offloaded chunks. No-op when the request holds no entry or the
// hierarchy is off.
func (h *hierState) forget(req *reqState) {
	if req.entry == 0 {
		return
	}
	idx := req.entry - 1
	if ent := &h.entries[idx]; !ent.dropped {
		h.used[ent.tier] -= ent.chunks
	}
	h.freeEntry(idx)
	req.entry = 0
}

// tierXfer is the charge model for moving chunks across one tier
// boundary: a fixed per-chunk latency plus bandwidth-proportional
// transfer time.
func (e *Engine) tierXfer(tier, chunks int, read bool) units.Seconds {
	t := &e.cfg.KV.Tiers[tier]
	bw := t.WriteBW
	if read {
		bw = t.ReadBW
	}
	n := float64(chunks)
	return n*t.ChunkLatency + n*e.hier.chunkBytes/bw
}

// lruVictim returns the least-recently-touched resident entry at the
// tier, or -1 if none. touch values are unique, so the choice is
// deterministic.
func (h *hierState) lruVictim(tier int) int {
	victim := -1
	for i := range h.entries {
		ent := &h.entries[i]
		if ent.free || ent.dropped || ent.tier != tier {
			continue
		}
		if victim < 0 || ent.touch < h.entries[victim].touch {
			victim = i
		}
	}
	return victim
}

// tierEnsure makes room for chunks at the tier by demoting (or, off
// the bottom tier, dropping) LRU entries. The caller must have checked
// chunks <= caps[tier]; recursion is bounded by the tier count.
func (e *Engine) tierEnsure(tier, chunks int) {
	h := &e.hier
	for h.used[tier]+chunks > h.caps[tier] {
		v := h.lruVictim(tier)
		if v < 0 {
			panic("servesim: kv tier occupancy with no resident entry")
		}
		e.tierEvict(v)
	}
}

// tierEvict pushes one entry down a level if the next tier can ever
// hold it, else drops it. Demotion charges the lower tier's write
// model onto the entry's ready time (the move is asynchronous — only
// a subsequent read waits on it).
func (e *Engine) tierEvict(v int) {
	h := &e.hier
	ent := &h.entries[v]
	from := ent.tier
	if to := from + 1; to < len(h.caps) && ent.chunks <= h.caps[to] {
		e.tierEnsure(to, ent.chunks)
		h.used[from] -= ent.chunks
		h.used[to] += ent.chunks
		b := float64(ent.chunks) * h.chunkBytes
		h.bytesOut[from+1] += b
		h.bytesIn[to+1] += b
		ready := ent.ready
		if e.now > ready {
			ready = e.now
		}
		ent.ready = ready + e.tierXfer(to, ent.chunks, false)
		ent.tier = to
		h.demotions++
		return
	}
	h.used[from] -= ent.chunks
	h.drops++
	if ent.session > 0 && ent.req == nil {
		delete(h.bySession, ent.session)
		h.freeEntry(v)
		return
	}
	// An offload entry's owner still queues on it: keep the slot,
	// flagged, so admission falls back to recompute.
	ent.dropped = true
}

// offloadVictim moves a preemption victim's KV down the hierarchy
// instead of discarding it for recompute: the request's chunks are
// written to the first tier that can hold them and the request waits
// in the instance's landing queue for pages and a reload. Returns
// false — recompute fallback — when tiers are off, the deployment is
// colocated (colocated instances have no landing queue), or no tier
// can hold the context. The caller has already released the victim's
// HBM pages.
func (e *Engine) offloadVictim(d *decodeUnit, req *reqState) bool {
	h := &e.hier
	if !h.on || e.cfg.Fleet.Colocated {
		return false
	}
	chunks := h.chunksFor(req.ctx)
	tier := -1
	for i := range h.caps {
		if chunks <= h.caps[i] {
			tier = i
			break
		}
	}
	if tier < 0 {
		return false
	}
	e.tierEnsure(tier, chunks)
	h.used[tier] += chunks
	b := float64(chunks) * h.chunkBytes
	h.bytesOut[0] += b
	h.bytesIn[tier+1] += b
	h.touchSeq++
	idx := h.allocEntry(offEntry{
		req:    req,
		tokens: req.ctx,
		chunks: chunks,
		tier:   tier,
		touch:  h.touchSeq,
		ready:  e.now + e.tierXfer(tier, chunks, false),
	})
	req.entry = idx + 1
	h.offloads++
	d.pending.push(req)
	return true
}

// startReload begins pulling an offloaded request's KV back into HBM:
// the admission loop has granted its pages; the request joins the
// batch when the transfer lands (evReloadDone). The reload waits for
// any in-flight write-back/demotion of its chunks, and the whole wait
// plus transfer is accounted as reload stall.
func (e *Engine) startReload(inst int, req *reqState) {
	h := &e.hier
	d := &e.decodes[inst]
	e.trPhaseEnd(req)
	e.trPhaseBegin(req, obs.PhaseReload, inst)
	ent := &h.entries[req.entry-1]
	b := float64(ent.chunks) * h.chunkBytes
	h.bytesOut[ent.tier+1] += b
	h.bytesIn[0] += b
	start := ent.ready
	if e.now > start {
		start = e.now
	}
	dur := e.tierXfer(ent.tier, ent.chunks, true)
	h.reloadStall += (start - e.now) + dur
	h.used[ent.tier] -= ent.chunks
	h.freeEntry(req.entry - 1)
	req.entry = 0
	h.reloads++
	d.reloads = append(d.reloads, req)
	e.scheduleEpoch(start+dur, evReloadDone, inst, d.epoch, req)
}

// reloadDone lands a reloaded request into its instance's batch.
func (e *Engine) reloadDone(inst int, req *reqState) {
	d := &e.decodes[inst]
	for i, r := range d.reloads {
		if r == req {
			copy(d.reloads[i:], d.reloads[i+1:])
			d.reloads[len(d.reloads)-1] = nil
			d.reloads = d.reloads[:len(d.reloads)-1]
			break
		}
	}
	if req.hstate == hzLost {
		d.kv.release(req.pages)
		req.pages = 0
		e.hedgeDrop(req)
		if !d.stepping && !d.prefilling {
			e.startStep(inst)
		}
		return
	}
	d.admitCounter++
	req.admitSeq = d.admitCounter
	e.trPhaseEnd(req)
	e.trPhaseBegin(req, obs.PhaseDecode, inst)
	d.active = append(d.active, req)
	if !d.stepping && !d.prefilling {
		e.startStep(inst)
	}
}

// prefixStore caches a completed session turn's full KV context in the
// first tier that can hold it, replacing the session's previous entry.
// The write-back is asynchronous (charged onto the entry's ready
// time), so completion latency is untouched.
func (e *Engine) prefixStore(req *reqState) {
	h := &e.hier
	if !h.prefixOn || req.Session <= 0 {
		return
	}
	if old, ok := h.bySession[req.Session]; ok {
		ent := &h.entries[old]
		if !ent.dropped {
			h.used[ent.tier] -= ent.chunks
		}
		delete(h.bySession, req.Session)
		h.freeEntry(old)
	}
	chunks := h.chunksFor(req.ctx)
	tier := -1
	for i := range h.caps {
		if chunks <= h.caps[i] {
			tier = i
			break
		}
	}
	if tier < 0 {
		return
	}
	e.tierEnsure(tier, chunks)
	h.used[tier] += chunks
	b := float64(chunks) * h.chunkBytes
	h.bytesOut[0] += b
	h.bytesIn[tier+1] += b
	h.touchSeq++
	h.bySession[req.Session] = h.allocEntry(offEntry{
		session: req.Session,
		tokens:  req.ctx,
		chunks:  chunks,
		tier:    tier,
		touch:   h.touchSeq,
		ready:   e.now + e.tierXfer(tier, chunks, false),
	})
}

// prefillCost is the prefill duration for a request, with the prefix
// cache applied: a session hit skips the chunk-aligned cached prefix
// and overlaps fetching it from its tier with computing the rest; the
// prefill costs the slower of the two legs, and any excess fetch time
// is accounted as reload stall. Misses (and recompute re-prefills,
// which rebuild mid-generation state the cache does not hold) pay the
// full prefill.
func (e *Engine) prefillCost(req *reqState, commScale float64) units.Seconds {
	full := req.ctxForPrefill()
	base := e.cfg.Latency.prefillTimeComm(e.lc, full, commScale)
	h := &e.hier
	if !h.prefixOn || req.Session <= 0 || req.resumed {
		return base
	}
	idx, ok := h.bySession[req.Session]
	if !ok {
		h.misses++
		return base
	}
	ent := &h.entries[idx]
	hit := ent.tokens
	if hit > req.PromptTokens {
		hit = req.PromptTokens
	}
	hit -= hit % h.chunkTokens
	if hit <= 0 {
		h.misses++
		return base
	}
	h.hits++
	h.hitTokens += hit
	e.trMark(req, obs.MarkPrefixHit)
	h.touchSeq++
	ent.touch = h.touchSeq
	chunks := hit / h.chunkTokens
	b := float64(chunks) * h.chunkBytes
	h.bytesOut[ent.tier+1] += b
	h.bytesIn[0] += b
	wait := ent.ready - e.now
	if wait < 0 {
		wait = 0
	}
	fetch := wait + e.tierXfer(ent.tier, chunks, true)
	compute := e.cfg.Latency.prefillTimeComm(e.lc, full-hit, commScale)
	if fetch > compute {
		h.reloadStall += fetch - compute
		return fetch
	}
	return compute
}
