package servesim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dsv3/internal/inference"
	"dsv3/internal/mtp"
	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

func testWorkload(rate float64, requests int) Workload {
	return Workload{
		Arrival:    ArrivalPoisson,
		RatePerSec: rate,
		Requests:   requests,
		Prompt:     LogNormal(1024, 0.5),
		Output:     LogNormal(512, 0.5),
	}
}

func mustRun(t *testing.T, cfg Config, w Workload) *Report {
	t.Helper()
	rep, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Same seed + config must reproduce the report byte for byte — the
// package determinism contract.
func TestRunDeterminism(t *testing.T) {
	cfg := V3ServeConfig()
	w := testWorkload(8, 150)
	a, err := json.Marshal(mustRun(t, cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mustRun(t, cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := V3ServeConfig()
	w := testWorkload(8, 150)
	a := mustRun(t, cfg, w)
	cfg.Seed = 99
	b := mustRun(t, cfg, w)
	if a.TTFT.Mean == b.TTFT.Mean && a.E2E.Mean == b.E2E.Mean {
		t.Error("different seeds produced identical latency distributions")
	}
}

// The rate sweep must be byte-identical for any worker count: each
// point's engine derives its own seed and shares nothing.
func TestRateSweepWorkerParity(t *testing.T) {
	cfg := V3ServeConfig()
	w := testWorkload(0, 100)
	rates := []float64{2, 5, 8}
	run := func(workers int) string {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		pts, err := RateSweep(cfg, w, rates)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if serial, par := run(1), run(8); serial != par {
		t.Error("rate sweep differs between serial and parallel execution")
	}
}

// With negligible compute the decode step must land exactly on the
// paper's §2.3.2 headline: 32 tokens/device on 400G IB (50 GB/s) ->
// 120.96 us of communication per layer, 14.76 ms TPOT under
// dual-micro-batch overlap.
func TestDecodeStepReproducesPaperTPOT(t *testing.T) {
	l := V3LatencyModel()
	l.Efficiency = 1
	l.WeightBytes = 0
	got := l.DecodeStepTime(32, batchAttention{})
	ep := inference.V3EPConfig()
	a, err := ep.Analyze(50 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-a.TPOT) / a.TPOT; rel > 1e-12 {
		t.Errorf("step time %.6fms, want paper TPOT %.6fms (rel %.2e)", got*1e3, a.TPOT*1e3, rel)
	}
	if math.Abs(a.TPOT-14.76e-3) > 0.01e-3 {
		t.Errorf("paper TPOT drifted: %.4fms", a.TPOT*1e3)
	}
}

// Larger batches and longer contexts never make a step faster, and the
// KV-read leg must eventually dominate at long context.
func TestDecodeStepMonotonic(t *testing.T) {
	l := V3LatencyModel()
	prev := 0.0
	for _, b := range []int{1, 4, 16, 64} {
		var attn batchAttention
		for i := 0; i < b; i++ {
			l.addContext(&attn, 4096)
		}
		dt := l.DecodeStepTime(b, attn)
		if dt <= prev {
			t.Errorf("step time not increasing at batch %d: %v <= %v", b, dt, prev)
		}
		prev = dt
	}
	var short, long batchAttention
	l.addContext(&short, 512)
	l.addContext(&long, 131072)
	if l.DecodeStepTime(1, long) <= l.DecodeStepTime(1, short) {
		t.Error("long context no slower than short")
	}
}

func TestPrefillTime(t *testing.T) {
	l := V3LatencyModel()
	if l.PrefillTime(1024) <= l.PrefillTime(256) {
		t.Error("prefill time not increasing in prompt length")
	}
	// At moderate prompt lengths prefill is dispatch/combine-bound:
	// per-token comm bytes x tokens x layers / bandwidth.
	want := l.commBytesPerToken() * 512 * float64(l.Model.Layers) / l.InterconnectBW
	if got := l.PrefillTime(512); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("prefill(512) = %v, want comm-bound %v", got, want)
	}
}

// A prefill can never finish faster than the resident weights can be
// streamed from HBM — the same memory-roofline leg DecodeStepTime pays.
// For a one-token prompt both the compute and comm legs are negligible,
// so the weight-streaming floor is the exact answer.
func TestPrefillTimeWeightStreamingFloor(t *testing.T) {
	l := V3LatencyModel()
	floor := l.WeightBytes / (l.Accel.MemBandwidth * l.Efficiency)
	if got := l.PrefillTime(1); math.Abs(got-floor)/floor > 1e-12 {
		t.Errorf("prefill(1) = %v, want weight-streaming floor %v", got, floor)
	}
	for _, tokens := range []int{1, 8, 64, 512, 4096} {
		if got := l.PrefillTime(tokens); got < floor {
			t.Errorf("prefill(%d) = %v beats the weight-streaming floor %v", tokens, got, floor)
		}
	}
}

func TestKVConfigPaging(t *testing.T) {
	k := KVConfig{CapacityBytes: 1 << 30, PageTokens: 64, BytesPerElem: 1}
	if got := k.PagesFor(1); got != 1 {
		t.Errorf("PagesFor(1) = %d", got)
	}
	if got := k.PagesFor(64); got != 1 {
		t.Errorf("PagesFor(64) = %d", got)
	}
	if got := k.PagesFor(65); got != 2 {
		t.Errorf("PagesFor(65) = %d", got)
	}
	m := V3LatencyModel().Model
	total := k.TotalPages(m)
	// 576 latent+rope elements x 61 layers x 64 tokens per page.
	wantPage := 576.0 * 61 * 64
	if want := int((1 << 30) / wantPage); total != want {
		t.Errorf("TotalPages = %d, want %d", total, want)
	}
	p := newKVPool(k, m)
	if !p.tryAlloc(total) || p.tryAlloc(1) {
		t.Error("pool over- or under-allocates")
	}
	p.release(total)
	if p.used != 0 || p.occupancy() != 0 {
		t.Errorf("release did not restore pool: %+v", p)
	}
}

// A KV pool sized just above one worst-case request forces constant
// eviction; every request must still complete, via recompute.
func TestPreemptionUnderKVPressure(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.Fleet.PrefillInstances, cfg.Fleet.DecodeInstances = 1, 1
	w := Workload{
		Arrival:    ArrivalPoisson,
		RatePerSec: 20,
		Requests:   40,
		Prompt:     Fixed(512),
		Output:     Fixed(512),
	}
	perToken := cfg.Latency.Model.KVCacheBytesPerToken(cfg.KV.HBM.BytesPerElem)
	// Room for ~1.5 worst-case contexts: admission succeeds, growth evicts.
	cfg.KV.HBM.CapacityBytes = perToken * 1024 * 1.5
	rep := mustRun(t, cfg, w)
	if rep.Preemptions == 0 {
		t.Error("expected preemptions under KV pressure")
	}
	if rep.Completed != w.Requests {
		t.Errorf("completed %d of %d requests", rep.Completed, w.Requests)
	}
	if rep.PeakKVOccupancy < 0.6 {
		t.Errorf("peak KV occupancy %.2f suspiciously low for a pressured pool", rep.PeakKVOccupancy)
	}
}

// Too-small pools must be rejected up front rather than livelocking.
func TestValidateRejectsImpossibleKV(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 1 << 20
	_, err := Run(cfg, testWorkload(5, 10))
	if err == nil || !strings.Contains(err.Error(), "worst-case request") {
		t.Fatalf("want worst-case KV error, got %v", err)
	}
}

// The disaggregation headline: at high arrival rates a balanced
// prefill:decode split improves p99 TTFT over decode-SLO-protecting
// colocation without degrading TPOT, and beats aggressive colocation
// on TPOT interference.
func TestDisaggregationImprovesTTFTWithoutTPOTRegression(t *testing.T) {
	w := testWorkload(12, 400)
	base := V3ServeConfig()
	base.KV.HBM.CapacityBytes = 2 * units.GB

	protective := base
	protective.Fleet.Colocated = true
	protective.Fleet.ColocatedStride = 128
	protective.Fleet.PrefillInstances, protective.Fleet.DecodeInstances = 4, 4

	aggressive := base
	aggressive.Fleet.Colocated = true
	aggressive.Fleet.ColocatedStride = 4
	aggressive.Fleet.PrefillInstances, aggressive.Fleet.DecodeInstances = 4, 4

	disagg := base
	disagg.Fleet.PrefillInstances, disagg.Fleet.DecodeInstances = 4, 4

	prot := mustRun(t, protective, w)
	aggr := mustRun(t, aggressive, w)
	dis := mustRun(t, disagg, w)

	if dis.TTFT.P99 >= prot.TTFT.P99 {
		t.Errorf("disagg p99 TTFT %.3fs not better than protective colocated %.3fs", dis.TTFT.P99, prot.TTFT.P99)
	}
	if dis.TPOT.P99 > prot.TPOT.P99*1.05 {
		t.Errorf("disagg p99 TPOT %.4fs degrades vs protective colocated %.4fs", dis.TPOT.P99, prot.TPOT.P99)
	}
	if dis.TPOT.P99 >= aggr.TPOT.P99 {
		t.Errorf("disagg p99 TPOT %.4fs not better than aggressive colocated %.4fs (prefill interference should hurt colocated)",
			dis.TPOT.P99, aggr.TPOT.P99)
	}
}

// A single traced request has fully analytic latency: TTFT is exactly
// the prefill time, and each decode step advances one token.
func TestTraceReplayAnalytic(t *testing.T) {
	cfg := V3ServeConfig()
	const prompt, output = 600, 4
	w := Workload{Arrival: ArrivalTrace, Trace: []Request{{Arrival: 0.5, PromptTokens: prompt, OutputTokens: output}}}
	rep := mustRun(t, cfg, w)
	wantTTFT := cfg.Latency.PrefillTime(prompt)
	if math.Abs(rep.TTFT.Mean-wantTTFT) > 1e-9 {
		t.Errorf("TTFT %.6f, want prefill time %.6f", rep.TTFT.Mean, wantTTFT)
	}
	if rep.DecodeSteps != output-1 {
		t.Errorf("decode steps %d, want %d", rep.DecodeSteps, output-1)
	}
	if rep.Completed != 1 || rep.Preemptions != 0 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

// MTP must lift tokens/step toward the analytic expectation and cut
// TPOT accordingly.
func TestMTPSpeculativeDecoding(t *testing.T) {
	cfg := V3ServeConfig()
	w := testWorkload(6, 200)
	off := mustRun(t, cfg, w)

	spec := mtp.V3Config()
	cfg.MTP = &spec
	on := mustRun(t, cfg, w)

	if off.TokensPerStep != 1 {
		t.Errorf("baseline tokens/step = %v, want 1", off.TokensPerStep)
	}
	want := spec.ExpectedTokensPerStep()
	// Finishing requests truncate the last draft, so the simulated
	// value sits slightly below the infinite-stream expectation.
	if on.TokensPerStep < want-0.05 || on.TokensPerStep > want {
		t.Errorf("MTP tokens/step = %.3f, want ~%.3f", on.TokensPerStep, want)
	}
	if on.TPOT.P50 >= off.TPOT.P50 {
		t.Errorf("MTP did not improve median TPOT: %.4f vs %.4f", on.TPOT.P50, off.TPOT.P50)
	}
}

// An overloaded run outlives the traffic-estimated horizon many times
// over. The sampler must decimate (halve resolution, double the
// stride) rather than stop at the old 4x cap, which froze the timeline
// mid-run and biased MeanKVOccupancy toward the warm-up window.
func TestTimelineCoversOverloadedMakespan(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.Fleet.PrefillInstances, cfg.Fleet.DecodeInstances = 1, 1
	w := Workload{
		Arrival:    ArrivalPoisson,
		RatePerSec: 100,
		Requests:   200,
		Prompt:     Fixed(512),
		Output:     Fixed(256),
	}
	rep := mustRun(t, cfg, w)
	// The scenario must actually exceed the old sampling cap
	// (4 x the horizon estimated from the arrival window).
	lastArrival := float64(rep.Requests) / rep.OfferedRate
	if rep.Makespan <= 4*(lastArrival+1) {
		t.Fatalf("run not overloaded enough to exercise decimation: makespan %.1fs, horizon %.1fs",
			rep.Makespan, lastArrival+1)
	}
	// At least one decimation leaves the buffer between half-full and
	// the cap.
	if n := len(rep.Timeline); n < 2*timelineSamples || n > 4*timelineSamples {
		t.Errorf("timeline has %d points, want within [%d, %d]", n, 2*timelineSamples, 4*timelineSamples)
	}
	last := rep.Timeline[len(rep.Timeline)-1].Time
	if last < 0.8*rep.Makespan {
		t.Errorf("timeline stops at %.1fs of a %.1fs makespan (sampler froze)", last, rep.Makespan)
	}
	prev := -1.0
	for _, p := range rep.Timeline {
		if p.Time <= prev {
			t.Fatalf("decimated timeline not strictly increasing at %v", p.Time)
		}
		prev = p.Time
	}
}

func TestTimelineWellFormed(t *testing.T) {
	rep := mustRun(t, V3ServeConfig(), testWorkload(8, 150))
	if len(rep.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	prev := -1.0
	for _, p := range rep.Timeline {
		if p.Time <= prev {
			t.Fatalf("timeline not strictly increasing at %v", p.Time)
		}
		prev = p.Time
		if p.KVOccupancy < 0 || p.KVOccupancy > 1 || p.ActiveBatch < 0 {
			t.Fatalf("malformed timeline point %+v", p)
		}
	}
	if rep.MeanKVOccupancy < 0 || rep.MeanKVOccupancy > rep.PeakKVOccupancy {
		t.Errorf("mean occupancy %v inconsistent with peak %v", rep.MeanKVOccupancy, rep.PeakKVOccupancy)
	}
}
