package servesim

import (
	"reflect"
	"testing"
)

// quickPlanner is a coarse, fast search for tests.
func quickPlanner() CapacityPlanner {
	p := DefaultCapacityPlanner()
	p.Tolerance = 0.1
	return p
}

func TestCapacityPlannerValidate(t *testing.T) {
	bad := []CapacityPlanner{
		{Target: 0, LoRate: 1, HiRate: 2, MaxRate: 10, Tolerance: 0.1, MaxIters: 8},
		{Target: 0.9, LoRate: 0, HiRate: 2, MaxRate: 10, Tolerance: 0.1, MaxIters: 8},
		{Target: 0.9, LoRate: 2, HiRate: 1, MaxRate: 10, Tolerance: 0.1, MaxIters: 8},
		{Target: 0.9, LoRate: 1, HiRate: 2, MaxRate: 1, Tolerance: 0.1, MaxIters: 8},
		{Target: 0.9, LoRate: 1, HiRate: 2, MaxRate: 10, Tolerance: 0, MaxIters: 8},
		{Target: 0.9, LoRate: 1, HiRate: 2, MaxRate: 10, Tolerance: 0.1, MaxIters: 0},
	}
	for i, p := range bad {
		if _, err := p.Find(V3ServeConfig(), testWorkload(1, 10)); err == nil {
			t.Errorf("case %d: invalid planner %+v accepted", i, p)
		}
	}
	if _, err := quickPlanner().Find(V3ServeConfig(), Workload{Arrival: ArrivalTrace,
		Trace: []Request{{PromptTokens: 1, OutputTokens: 1}}}); err == nil {
		t.Error("trace workload accepted by capacity search")
	}
}

// The search must converge: a sustainable knee bracketed from above by
// an unsustainable probe within the configured tolerance.
func TestCapacityPlannerConvergence(t *testing.T) {
	p := quickPlanner()
	res, err := p.Find(V3ServeConfig(), testWorkload(0, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate <= 0 {
		t.Fatalf("no sustainable rate found: %+v", res)
	}
	if res.Attainment < p.Target {
		t.Errorf("knee attainment %.3f below target %.2f", res.Attainment, p.Target)
	}
	if res.Report == nil || res.Report.SLOAttainment != res.Attainment {
		t.Error("knee report missing or inconsistent with attainment")
	}
	// The final bracket is [MaxRate, smallest unsustainable probe].
	hi := 0.0
	for _, pr := range res.Probes {
		if !pr.Sustainable && (hi == 0 || pr.RatePerSec < hi) {
			hi = pr.RatePerSec
		}
	}
	if hi == 0 {
		t.Fatal("search never probed an unsustainable rate (knee unbounded?)")
	}
	if res.MaxRate >= hi {
		t.Fatalf("knee %.3f not below the unsustainable bracket %.3f", res.MaxRate, hi)
	}
	if (hi-res.MaxRate)/hi > p.Tolerance+1e-9 {
		t.Errorf("bracket [%.3f, %.3f] wider than tolerance %.2f", res.MaxRate, hi, p.Tolerance)
	}
	if res.Iterations != len(res.Probes) {
		t.Errorf("iterations %d != probes %d", res.Iterations, len(res.Probes))
	}
}

// The same search on the same inputs must reproduce every probe — the
// planner inherits the simulator's determinism contract.
func TestCapacityPlannerDeterministic(t *testing.T) {
	p := quickPlanner()
	w := testWorkload(0, 120)
	a, err := p.Find(V3ServeConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Find(V3ServeConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxRate != b.MaxRate || !reflect.DeepEqual(a.Probes, b.Probes) {
		t.Errorf("capacity search not deterministic:\n%+v\n%+v", a.Probes, b.Probes)
	}
}

// More hardware sustains more traffic: doubling the fleet must not
// shrink the knee.
func TestCapacityPlannerMonotoneInFleet(t *testing.T) {
	p := quickPlanner()
	w := testWorkload(0, 120)
	small := V3ServeConfig()
	big := V3ServeConfig()
	big.Fleet.PrefillInstances *= 2
	big.Fleet.DecodeInstances *= 2
	rs, err := p.Find(small, w)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.Find(big, w)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MaxRate < rs.MaxRate {
		t.Errorf("doubled fleet knee %.2f below base fleet knee %.2f", rb.MaxRate, rs.MaxRate)
	}
}

// An unreachable target reports MaxRate 0 with the floor probe's
// report attached for diagnosis.
func TestCapacityPlannerUnsustainableFloor(t *testing.T) {
	p := quickPlanner()
	p.LoRate, p.HiRate = 64, 128
	cfg := V3ServeConfig()
	cfg.Fleet.PrefillInstances, cfg.Fleet.DecodeInstances = 1, 1
	res, err := p.Find(cfg, testWorkload(0, 80))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRate != 0 {
		t.Errorf("64 req/s on a 1P+1D fleet reported sustainable: %+v", res)
	}
	if res.Report == nil || len(res.Probes) != 1 || res.Probes[0].Sustainable {
		t.Errorf("floor-failure result malformed: %+v", res)
	}
}
