package servesim

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dsv3/internal/units"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestPoissonArrivalRate(t *testing.T) {
	w := Workload{Arrival: ArrivalPoisson, RatePerSec: 10, Requests: 5000, Prompt: Fixed(8), Output: Fixed(8)}
	reqs := w.Generate(7)
	if len(reqs) != 5000 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs))
	if math.Abs(mean-0.1) > 0.01 {
		t.Errorf("mean interarrival %.4fs, want ~0.1s", mean)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
		if reqs[i].ID != i {
			t.Fatal("IDs not sequential")
		}
	}
}

func TestUniformArrivalSpacing(t *testing.T) {
	w := Workload{Arrival: ArrivalUniform, RatePerSec: 4, Requests: 9, Prompt: Fixed(8), Output: Fixed(8)}
	reqs := w.Generate(1)
	for i, r := range reqs {
		if want := float64(i+1) / 4; math.Abs(r.Arrival-want) > 1e-12 {
			t.Errorf("request %d at %v, want %v", i, r.Arrival, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := Workload{Arrival: ArrivalPoisson, RatePerSec: 5, Requests: 100, Prompt: LogNormal(256, 0.5), Output: LogNormal(64, 0.5)}
	a, b := w.Generate(3), w.Generate(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := w.Generate(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestLengthDistBounds(t *testing.T) {
	d := LogNormal(256, 1.0)
	rng := testRNG()
	for i := 0; i < 10000; i++ {
		n := d.Sample(rng)
		if n < d.Min || n > d.Max {
			t.Fatalf("sample %d outside [%d,%d]", n, d.Min, d.Max)
		}
	}
	u := LengthDist{Kind: DistUniform, Mean: 10, Min: 5, Max: 15}
	for i := 0; i < 1000; i++ {
		if n := u.Sample(rng); n < 5 || n > 15 {
			t.Fatalf("uniform sample %d outside [5,15]", n)
		}
	}
	if Fixed(7).Sample(rng) != 7 {
		t.Error("fixed distribution not fixed")
	}
}

// Bursty arrivals preserve the offered mean rate (the ON rate is
// scaled by the duty-cycle inverse) while being far more variable than
// Poisson: the squared coefficient of variation of the interarrival
// gaps must exceed the memoryless value of 1.
func TestBurstyArrivals(t *testing.T) {
	w := Workload{
		Arrival: ArrivalBursty, RatePerSec: 10, Requests: 20000,
		BurstOnMean: 1, BurstOffMean: 4,
		Prompt: Fixed(8), Output: Fixed(8),
	}
	reqs := w.Generate(7)
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs))
	if math.Abs(mean-0.1)/0.1 > 0.1 {
		t.Errorf("bursty mean interarrival %.4fs, want ~0.1s", mean)
	}
	var sum, ss float64
	prev := 0.0
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("bursty arrivals not monotone")
		}
		gap := r.Arrival - prev
		sum += gap
		ss += gap * gap
		prev = r.Arrival
	}
	n := float64(len(reqs))
	m := sum / n
	cv2 := (ss/n - m*m) / (m * m)
	if cv2 < 1.3 {
		t.Errorf("bursty interarrival CV^2 = %.2f, want clearly above the Poisson value 1", cv2)
	}
	// Determinism.
	again := w.Generate(7)
	for i := range reqs {
		if reqs[i] != again[i] {
			t.Fatal("bursty generation not deterministic")
		}
	}
}

// Diurnal arrivals ramp up from the trough: the second quarter of the
// first period must carry clearly more traffic than the first quarter,
// and the long-run mean rate is preserved.
func TestDiurnalArrivals(t *testing.T) {
	w := Workload{
		Arrival: ArrivalDiurnal, RatePerSec: 10, Requests: 20000,
		DiurnalPeriod: 100, DiurnalAmplitude: 0.8,
		Prompt: Fixed(8), Output: Fixed(8),
	}
	reqs := w.Generate(7)
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs))
	if math.Abs(mean-0.1)/0.1 > 0.1 {
		t.Errorf("diurnal mean interarrival %.4fs, want ~0.1s", mean)
	}
	var q1, q2 int
	for _, r := range reqs {
		switch {
		case r.Arrival < 25:
			q1++
		case r.Arrival < 50:
			q2++
		}
	}
	if float64(q2) < 1.5*float64(q1) {
		t.Errorf("no upward ramp: %d arrivals in [0,25) vs %d in [25,50)", q1, q2)
	}
}

func TestTraceSortedAndRenumbered(t *testing.T) {
	w := Workload{Arrival: ArrivalTrace, Trace: []Request{
		{ID: 9, Arrival: 2, PromptTokens: 10, OutputTokens: 1},
		{ID: 4, Arrival: 1, PromptTokens: 20, OutputTokens: 2},
	}}
	reqs := w.Generate(0)
	if reqs[0].Arrival != 1 || reqs[0].ID != 0 || reqs[1].Arrival != 2 || reqs[1].ID != 1 {
		t.Errorf("trace not sorted/renumbered: %+v", reqs)
	}
	// The input slice is untouched.
	if w.Trace[0].ID != 9 {
		t.Error("Generate mutated the input trace")
	}
}

func TestParseTrace(t *testing.T) {
	in := "# arrival,prompt,output\n0.0, 128, 32\n\n1.5,256,64\n"
	reqs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[0].PromptTokens != 128 || reqs[1].Arrival != 1.5 || reqs[1].OutputTokens != 64 {
		t.Errorf("parsed %+v", reqs)
	}
	for _, bad := range []string{"1.0,2", "x,1,2", "1,1.5,2", "1,2,z"} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) succeeded, want error", bad)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	cases := []Workload{
		{Arrival: ArrivalPoisson, RatePerSec: 0, Requests: 1, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalPoisson, RatePerSec: 1, Requests: 0, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalPoisson, RatePerSec: 1, Requests: 1, Prompt: Fixed(0), Output: Fixed(1)},
		{Arrival: ArrivalTrace},
		{Arrival: ArrivalTrace, Trace: []Request{{Arrival: -1, PromptTokens: 1, OutputTokens: 1}}},
		{Arrival: ArrivalBursty, RatePerSec: 1, Requests: 1, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalBursty, RatePerSec: 1, Requests: 1, BurstOnMean: 1, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalDiurnal, RatePerSec: 1, Requests: 1, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalDiurnal, RatePerSec: 1, Requests: 1, DiurnalPeriod: 10, DiurnalAmplitude: 1.5, Prompt: Fixed(1), Output: Fixed(1)},
	}
	for i, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: want validation error for %+v", i, w)
		}
	}
}

// TestSingleTurnGenerationUnchanged: Turns <= 1 must take the legacy
// generation path exactly — same draws, same stream order — so every
// existing seeded workload is untouched by the session machinery.
func TestSingleTurnGenerationUnchanged(t *testing.T) {
	base := Workload{Arrival: ArrivalPoisson, RatePerSec: 5, Requests: 200, Prompt: LogNormal(512, 0.5), Output: LogNormal(256, 0.5)}
	for _, turns := range []int{0, 1} {
		w := base
		w.Turns = turns
		w.ThinkTime = 3 // ignored for Turns <= 1
		got := w.Generate(11)
		want := base.Generate(11)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Turns=%d changed single-turn generation", turns)
		}
	}
}

// TestMultiTurnGenerationShape pins the session structure: sessions
// numbered from 1, turns indexed from 0, each later turn's prompt
// equal to the session's full prior context plus a fresh user message,
// and the stream sorted by arrival with sequential IDs.
func TestMultiTurnGenerationShape(t *testing.T) {
	w := Workload{
		Arrival: ArrivalPoisson, RatePerSec: 2, Requests: 120,
		Prompt: LengthDist{Kind: DistUniform, Mean: 256, Min: 192, Max: 320},
		Output: LengthDist{Kind: DistUniform, Mean: 128, Min: 96, Max: 160},
		Turns:  3, ThinkTime: 2,
	}
	reqs := w.Generate(5)
	if len(reqs) != 120 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	type turnRec struct {
		prompt, output int
		arrival        units.Seconds
	}
	sessions := map[int][]turnRec{}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatal("IDs not sequential in arrival order")
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
		if r.Session <= 0 {
			t.Fatalf("request %d has no session", i)
		}
		if len(sessions[r.Session]) != r.Turn {
			t.Fatalf("session %d turn %d seen out of order", r.Session, r.Turn)
		}
		sessions[r.Session] = append(sessions[r.Session], turnRec{r.PromptTokens, r.OutputTokens, r.Arrival})
	}
	grown := false
	for sess, turns := range sessions {
		ctx := 0
		for i, tr := range turns {
			fresh := tr.prompt - ctx
			if fresh < w.Prompt.Min || fresh > w.Prompt.Max {
				t.Fatalf("session %d turn %d: fresh prompt %d outside [%d,%d] (prior ctx %d)",
					sess, i, fresh, w.Prompt.Min, w.Prompt.Max, ctx)
			}
			if i > 0 && tr.arrival < turns[i-1].arrival {
				t.Fatalf("session %d: turn arrivals not monotone", sess)
			}
			if i > 0 {
				grown = true
			}
			ctx = tr.prompt + tr.output
		}
	}
	if !grown {
		t.Fatal("no session reached a second turn")
	}
}

// TestMultiTurnValidate rejects the session knobs' invalid corners.
func TestMultiTurnValidate(t *testing.T) {
	ok := Workload{Arrival: ArrivalPoisson, RatePerSec: 1, Requests: 10, Prompt: Fixed(8), Output: Fixed(8)}
	cases := []func(*Workload){
		func(w *Workload) { w.Turns = -1 },
		func(w *Workload) { w.ThinkTime = -2 },
		func(w *Workload) {
			w.Arrival, w.Trace = ArrivalTrace, []Request{{PromptTokens: 1, OutputTokens: 1}}
			w.Turns = 2
		},
	}
	for i, mutate := range cases {
		w := ok
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: want validation error for %+v", i, w)
		}
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline workload invalid: %v", err)
	}
}
