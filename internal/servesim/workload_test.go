package servesim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestPoissonArrivalRate(t *testing.T) {
	w := Workload{Arrival: ArrivalPoisson, RatePerSec: 10, Requests: 5000, Prompt: Fixed(8), Output: Fixed(8)}
	reqs := w.Generate(7)
	if len(reqs) != 5000 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	mean := reqs[len(reqs)-1].Arrival / float64(len(reqs))
	if math.Abs(mean-0.1) > 0.01 {
		t.Errorf("mean interarrival %.4fs, want ~0.1s", mean)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
		if reqs[i].ID != i {
			t.Fatal("IDs not sequential")
		}
	}
}

func TestUniformArrivalSpacing(t *testing.T) {
	w := Workload{Arrival: ArrivalUniform, RatePerSec: 4, Requests: 9, Prompt: Fixed(8), Output: Fixed(8)}
	reqs := w.Generate(1)
	for i, r := range reqs {
		if want := float64(i+1) / 4; math.Abs(r.Arrival-want) > 1e-12 {
			t.Errorf("request %d at %v, want %v", i, r.Arrival, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := Workload{Arrival: ArrivalPoisson, RatePerSec: 5, Requests: 100, Prompt: LogNormal(256, 0.5), Output: LogNormal(64, 0.5)}
	a, b := w.Generate(3), w.Generate(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := w.Generate(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestLengthDistBounds(t *testing.T) {
	d := LogNormal(256, 1.0)
	rng := testRNG()
	for i := 0; i < 10000; i++ {
		n := d.Sample(rng)
		if n < d.Min || n > d.Max {
			t.Fatalf("sample %d outside [%d,%d]", n, d.Min, d.Max)
		}
	}
	u := LengthDist{Kind: DistUniform, Mean: 10, Min: 5, Max: 15}
	for i := 0; i < 1000; i++ {
		if n := u.Sample(rng); n < 5 || n > 15 {
			t.Fatalf("uniform sample %d outside [5,15]", n)
		}
	}
	if Fixed(7).Sample(rng) != 7 {
		t.Error("fixed distribution not fixed")
	}
}

func TestTraceSortedAndRenumbered(t *testing.T) {
	w := Workload{Arrival: ArrivalTrace, Trace: []Request{
		{ID: 9, Arrival: 2, PromptTokens: 10, OutputTokens: 1},
		{ID: 4, Arrival: 1, PromptTokens: 20, OutputTokens: 2},
	}}
	reqs := w.Generate(0)
	if reqs[0].Arrival != 1 || reqs[0].ID != 0 || reqs[1].Arrival != 2 || reqs[1].ID != 1 {
		t.Errorf("trace not sorted/renumbered: %+v", reqs)
	}
	// The input slice is untouched.
	if w.Trace[0].ID != 9 {
		t.Error("Generate mutated the input trace")
	}
}

func TestParseTrace(t *testing.T) {
	in := "# arrival,prompt,output\n0.0, 128, 32\n\n1.5,256,64\n"
	reqs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[0].PromptTokens != 128 || reqs[1].Arrival != 1.5 || reqs[1].OutputTokens != 64 {
		t.Errorf("parsed %+v", reqs)
	}
	for _, bad := range []string{"1.0,2", "x,1,2", "1,1.5,2", "1,2,z"} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) succeeded, want error", bad)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	cases := []Workload{
		{Arrival: ArrivalPoisson, RatePerSec: 0, Requests: 1, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalPoisson, RatePerSec: 1, Requests: 0, Prompt: Fixed(1), Output: Fixed(1)},
		{Arrival: ArrivalPoisson, RatePerSec: 1, Requests: 1, Prompt: Fixed(0), Output: Fixed(1)},
		{Arrival: ArrivalTrace},
		{Arrival: ArrivalTrace, Trace: []Request{{Arrival: -1, PromptTokens: 1, OutputTokens: 1}}},
	}
	for i, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: want validation error for %+v", i, w)
		}
	}
}
