// Cross-layer hazards: substrate faults mapped into the serving-layer
// fault model instead of being injected directly (ROADMAP's composed-
// faults clause). A plane failure (§5.1.1) does not kill an instance —
// it derates the EP all-to-all bandwidth of the instances riding the
// degraded planes, so their decode/prefill steps slow proportionally
// (the netsim bandwidth ratio T/(T-k) applied to the comm leg of the
// latency model). Silent data corruption (§6.1.2) does not raise an
// error — it corrupts a step's outputs, which either propagates into a
// corrupt completed response or, with a Freivalds-style verification
// pass (cost charged into every step per gemm.VerifyGEMM's O(n²)
// model), is caught with probability 1-2^-trials and converted into a
// retryable fault plus an instance quarantine.
//
// The router side closes the loop: per-instance EWMA step-latency
// tracking against the fleet median detects gray failures — instances
// that are slow, not down — and drains persistent stragglers; hedged
// requests dispatch a speculative duplicate after a delay (fixed or
// p95-tracked) with first-wins cancellation, trading duplicate work for
// tail latency on a degraded fleet.
//
// Determinism: hazard randomness (SDC draws, detection draws) lives on
// its own seed stream (5), hedging draws no randomness at all, and every
// hazard buffer is engine-owned and allocated only when a plan is
// configured — a run with Hazards nil and Hedge disabled executes the
// historical instruction stream byte-for-byte.

package servesim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dsv3/internal/obs"
	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

// defaultTotalPlanes is the paper's multi-plane fat-tree plane count
// (§5.1.1): eight independent network planes per deployment.
const defaultTotalPlanes = 8

// PlaneHazardEvent degrades (or heals) the EP communication bandwidth
// of one instance at a scheduled time: FailedPlanes of TotalPlanes
// network planes are lost, so the instance's all-to-all traffic crosses
// the survivors at TotalPlanes/(TotalPlanes-FailedPlanes) x the healthy
// duration — the serving-layer image of experiments.PlaneFailure.
type PlaneHazardEvent struct {
	At units.Seconds
	// Heal restores the instance to full bandwidth (FailedPlanes is
	// ignored); false degrades it.
	Heal     bool
	Prefill  bool
	Instance int
	// FailedPlanes is the number of lost planes (degrade only); must be
	// at least 1 and strictly below TotalPlanes.
	FailedPlanes int
	// TotalPlanes is the plane count of the deployment (default 8).
	TotalPlanes int
}

// commScale returns the comm-leg slowdown the event applies (1 for
// heal).
func (ev PlaneHazardEvent) commScale() float64 {
	if ev.Heal {
		return 1
	}
	t := ev.TotalPlanes
	if t <= 0 {
		t = defaultTotalPlanes
	}
	return float64(t) / float64(t-ev.FailedPlanes)
}

// DetectionConfig tunes router-side gray-failure detection: every
// decode instance's observed-vs-expected step-time ratio (observed
// step latency over the model's healthy-interconnect prediction at the
// same batch size) is EWMA-tracked and compared against the fleet
// median; a persistent straggler is drained. The zero value disables
// detection.
type DetectionConfig struct {
	// Threshold drains an instance whose EWMA step-time ratio exceeds
	// Threshold x the fleet median ratio (values <= 0 disable
	// detection; sensible values are > 1 — a healthy instance's ratio
	// is 1.0 at any occupancy).
	Threshold float64
	// EWMAAlpha is the smoothing factor in (0, 1]; 0 means the default
	// 0.2.
	EWMAAlpha float64
	// MinSteps is the warm-up: an instance (and the median pool) needs
	// this many steps before it can be judged; 0 means the default 8.
	MinSteps int
}

func (d DetectionConfig) enabled() bool { return d.Threshold > 0 }

func (d DetectionConfig) alpha() float64 {
	if d.EWMAAlpha > 0 {
		return d.EWMAAlpha
	}
	return 0.2
}

func (d DetectionConfig) minSteps() int {
	if d.MinSteps > 0 {
		return d.MinSteps
	}
	return 8
}

// HazardPlan composes the cross-layer hazards of one run: plane-failure
// bandwidth derates, silent data corruption with optional Freivalds
// verification, gray-failure detection, and quarantine repair. Nil (on
// ResilienceConfig) disables everything.
type HazardPlan struct {
	// Planes is the scheduled plane degrade/heal script.
	Planes []PlaneHazardEvent

	// SDCRate is the per-decode-step probability that an instance's step
	// silently corrupts its outputs (0 disables SDC injection).
	SDCRate float64
	// VerifyTrials enables a Freivalds verification pass on every decode
	// step: the step pays trials extra GEMV-equivalent passes of latency
	// and a corrupt step is detected with probability 1-2^-trials,
	// quarantining the instance and retrying its requests instead of
	// completing corrupt responses. 0 disables verification — corruption
	// propagates.
	VerifyTrials int

	// Detect tunes gray-failure detection (zero value: disabled).
	Detect DetectionConfig

	// QuarantineRepair returns an SDC-quarantined instance to service
	// after this dwell; 0 leaves it quarantined for the rest of the run.
	QuarantineRepair units.Seconds
}

// validate checks the plan against the resolved cluster shape.
func (h *HazardPlan) validate(nPrefill, nDecode int, colocated bool) error {
	for i, ev := range h.Planes {
		if ev.At < 0 || math.IsNaN(float64(ev.At)) || math.IsInf(float64(ev.At), 0) {
			return fmt.Errorf("servesim: plane hazard %d at invalid time %v", i, ev.At)
		}
		if ev.Prefill {
			if colocated {
				return fmt.Errorf("servesim: plane hazard %d targets a prefill instance but the cluster is colocated", i)
			}
			if ev.Instance < 0 || ev.Instance >= nPrefill {
				return fmt.Errorf("servesim: plane hazard %d targets prefill instance %d of %d", i, ev.Instance, nPrefill)
			}
		} else if ev.Instance < 0 || ev.Instance >= nDecode {
			return fmt.Errorf("servesim: plane hazard %d targets decode instance %d of %d", i, ev.Instance, nDecode)
		}
		if !ev.Heal {
			total := ev.TotalPlanes
			if total == 0 {
				total = defaultTotalPlanes
			}
			if total < 2 {
				return fmt.Errorf("servesim: plane hazard %d has %d total planes (want >= 2)", i, total)
			}
			if ev.FailedPlanes < 1 || ev.FailedPlanes >= total {
				return fmt.Errorf("servesim: plane hazard %d fails %d of %d planes (want 1..%d)", i, ev.FailedPlanes, total, total-1)
			}
		}
	}
	if h.SDCRate < 0 || h.SDCRate > 1 || math.IsNaN(h.SDCRate) {
		return fmt.Errorf("servesim: SDC rate %v outside [0,1]", h.SDCRate)
	}
	if h.VerifyTrials < 0 {
		return fmt.Errorf("servesim: negative verify trials %d", h.VerifyTrials)
	}
	if d := h.Detect; d.enabled() {
		if d.Threshold <= 1 {
			return fmt.Errorf("servesim: gray-detection threshold %v must exceed 1", d.Threshold)
		}
		if d.EWMAAlpha < 0 || d.EWMAAlpha > 1 {
			return fmt.Errorf("servesim: gray-detection EWMA alpha %v outside [0,1]", d.EWMAAlpha)
		}
		if d.MinSteps < 0 {
			return fmt.Errorf("servesim: negative gray-detection warm-up %d", d.MinSteps)
		}
	}
	if h.QuarantineRepair < 0 {
		return fmt.Errorf("servesim: negative quarantine repair %v", h.QuarantineRepair)
	}
	return nil
}

// HedgePolicy dispatches a speculative duplicate of a request that has
// not completed after a hedge delay: the copies race on distinct decode
// instances where possible, the first completion wins, and the loser is
// cancelled (its pages freed, its emitted tokens counted as wasted
// work). The zero value disables hedging.
type HedgePolicy struct {
	// Delay is the hedge trigger: a request still in flight this long
	// after arrival dispatches its duplicate. With TrackP95 it is the
	// floor (and the delay used until enough completions accumulate).
	Delay units.Seconds
	// TrackP95 adapts the delay to the observed p95 end-to-end latency
	// of completed requests (never below Delay) — the classic
	// tail-tolerant hedging trigger.
	TrackP95 bool
}

func (h HedgePolicy) enabled() bool { return h.Delay > 0 || h.TrackP95 }

// Validate checks the policy.
func (h HedgePolicy) Validate() error {
	if h.Delay < 0 || math.IsNaN(float64(h.Delay)) || math.IsInf(float64(h.Delay), 0) {
		return fmt.Errorf("servesim: invalid hedge delay %v", h.Delay)
	}
	if h.TrackP95 && h.Delay <= 0 {
		return fmt.Errorf("servesim: p95-tracked hedging needs a positive floor delay")
	}
	return nil
}

// hazardous reports whether any cross-layer hazard machinery is active
// — the sharded coordinator falls back to the serial loop when it is.
func (r *ResilienceConfig) hazardous() bool {
	return r.Hazards != nil || r.Hedge.enabled()
}

// Hedge race states (reqState.hstate).
const (
	hzNone int8 = iota
	// hzRacing: this copy is one side of a live hedge race.
	hzRacing
	// hzLost: the other copy won (or superseded this one); every
	// touchpoint drops a lost copy lazily, releasing its resources.
	hzLost
	// hzAbandoned (originals only): this copy's own execution failed
	// while its clone still races; the request's fate is the clone's.
	hzAbandoned
	// hzDone: the request resolved (completed or failed) — a late hedge
	// timer finds nothing to do.
	hzDone
)

// hazardState is the engine's per-run hazard machinery. Everything is
// engine-owned, recycled across runs, and allocated only when a plan is
// configured; a hazard-free run writes one bool.
type hazardState struct {
	on     bool
	detect bool    // gray-failure detection enabled
	sdc    float64 // per-step corruption probability
	// detectP is the Freivalds detection probability 1-2^-trials (0 when
	// verification is off).
	detectP float64
	// verifyFactor is the per-batch-slot verification latency numerator:
	// trials x 2 x activeNonEmbedding params (one GEMV-equivalent pass
	// per trial), divided by achieved FLOPS at charge time.
	verifyFactor float64
	repair       units.Seconds
	alpha        float64
	minSteps     int
	threshold    float64

	// Per-instance comm-leg slowdowns (1 = healthy).
	scaleP []float64 // prefill instances
	scaleD []float64 // decode instances

	// Gray-failure detection state per decode instance.
	ewma        []float64 // EWMA observed-vs-expected step-time ratio
	ewmaSteps   []int
	stepCost    []float64 // current step's observed/expected ratio (set at startStep)
	grayDrained []bool    // drained by detection (restored on plane heal)
	medScratch  []float64

	// Counters surfaced in the Report.
	corrupt     int // corrupt completed responses
	sdcSteps    int // silently corrupted steps (detected + not)
	sdcDetected int // detected-and-quarantined corrupt steps
	grayDrains  int
}

// hedgeState is the engine's per-run hedging machinery: the clone
// arena (pointer-stable across a run, recycled across runs) and the
// win/waste accounting.
type hedgeState struct {
	on       bool
	delay    units.Seconds
	trackP95 bool

	// clones is a pool of individually heap-allocated request states
	// reused across runs (hedge copies live outside the arena).
	clones  []*reqState
	nClones int

	// e2e is the sorted end-to-end latency record feeding the p95 delay.
	e2e []float64

	hedged int // duplicates dispatched
	wins   int // races won by the hedge copy
	// wasted is the tokens emitted by losing copies — discarded work.
	wasted int
}

// resetHazards re-initializes hazard and hedge state for a run. On the
// disabled path this writes two bools and leaves every buffer alone.
func (e *Engine) resetHazards(nPrefill, nDecode int) {
	hz := &e.hz
	plan := e.cfg.Resilience.Hazards
	hz.on = plan != nil
	hg := &e.hedge
	hg.on = e.cfg.Resilience.Hedge.enabled()
	// Counters zero unconditionally: a pooled engine may have run a
	// hazardous config before this one, and the report reads them
	// regardless of enablement.
	hz.corrupt, hz.sdcSteps, hz.sdcDetected, hz.grayDrains = 0, 0, 0, 0
	hg.hedged, hg.wins, hg.wasted = 0, 0, 0
	if !hz.on && !hg.on {
		return
	}
	if hz.on {
		hz.sdc = plan.SDCRate
		hz.detectP = 0
		hz.verifyFactor = 0
		if plan.VerifyTrials > 0 {
			hz.detectP = 1 - math.Pow(2, -float64(plan.VerifyTrials))
			hz.verifyFactor = float64(plan.VerifyTrials) * 2 * e.lc.activeNonEmbedding
		}
		hz.repair = plan.QuarantineRepair
		hz.detect = plan.Detect.enabled()
		hz.alpha = plan.Detect.alpha()
		hz.minSteps = plan.Detect.minSteps()
		hz.threshold = plan.Detect.Threshold
		hz.scaleP = growFloats(hz.scaleP, nPrefill)
		hz.scaleD = growFloats(hz.scaleD, nDecode)
		for i := range hz.scaleP {
			hz.scaleP[i] = 1
		}
		for i := range hz.scaleD {
			hz.scaleD[i] = 1
		}
		hz.ewma = growFloats(hz.ewma, nDecode)
		hz.stepCost = growFloats(hz.stepCost, nDecode)
		if cap(hz.ewmaSteps) < nDecode {
			hz.ewmaSteps = make([]int, nDecode)
			hz.grayDrained = make([]bool, nDecode)
		}
		hz.ewmaSteps = hz.ewmaSteps[:nDecode]
		hz.grayDrained = hz.grayDrained[:nDecode]
		for i := 0; i < nDecode; i++ {
			hz.ewma[i], hz.stepCost[i] = 0, 0
			hz.ewmaSteps[i] = 0
			hz.grayDrained[i] = false
		}
		if cap(hz.medScratch) < nDecode {
			hz.medScratch = make([]float64, 0, nDecode)
		}
	}
	if hg.on {
		hg.delay = e.cfg.Resilience.Hedge.Delay
		hg.trackP95 = e.cfg.Resilience.Hedge.TrackP95
		hg.nClones = 0
		for _, c := range hg.clones {
			*c = reqState{}
		}
		hg.e2e = hg.e2e[:0]
	}
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// commScaleD / commScaleP return the comm-leg slowdown of an instance
// (exactly 1 — a bit-exact multiplication identity — when hazards are
// off).
func (e *Engine) commScaleD(inst int) float64 {
	if !e.hz.on {
		return 1
	}
	return e.hz.scaleD[inst]
}

func (e *Engine) commScaleP(inst int) float64 {
	if !e.hz.on {
		return 1
	}
	return e.hz.scaleP[inst]
}

// scheduleHazards seeds the hazard RNG stream and schedules the plane
// script. Serial path only — hazardous configs never shard.
func (e *Engine) scheduleHazards() {
	plan := e.cfg.Resilience.Hazards
	if plan == nil {
		return
	}
	e.hazardReseed(parallel.DeriveSeed(e.cfg.Seed, 5))
	for i := range plan.Planes {
		e.schedule(plan.Planes[i].At, evHazard, i, nil)
	}
}

// applyHazard applies one plane degrade/heal event: the instance's comm
// scale changes and its health moves between up and degraded. A heal
// also restores a gray-drained instance and resets its detection state
// (the straggling had a known, now-removed cause).
func (e *Engine) applyHazard(i int) {
	ev := &e.cfg.Resilience.Hazards.Planes[i]
	hz := &e.hz
	scale := ev.commScale()
	if ev.Prefill {
		p := &e.prefills[ev.Instance]
		hz.scaleP[ev.Instance] = scale
		if ev.Heal {
			if p.health == healthDegraded {
				e.trIncident(true, ev.Instance, "heal")
				e.noteHealth(healthDegraded, healthUp)
				p.health = healthUp
			}
		} else if p.health == healthUp {
			e.trIncident(true, ev.Instance, "degrade")
			e.noteHealth(healthUp, healthDegraded)
			p.health = healthDegraded
		}
		e.recountIdlePrefills()
		return
	}
	d := &e.decodes[ev.Instance]
	hz.scaleD[ev.Instance] = scale
	if ev.Heal {
		switch {
		case d.health == healthDegraded:
			e.trIncident(false, ev.Instance, "heal")
			e.noteHealth(healthDegraded, healthUp)
			d.health = healthUp
		case hz.grayDrained[ev.Instance] && d.health == healthDraining:
			// The detector drained this straggler; with the plane healed
			// the cause is gone — return it to service.
			e.trIncident(false, ev.Instance, "heal")
			e.noteHealth(healthDraining, healthUp)
			d.health = healthUp
		}
		hz.grayDrained[ev.Instance] = false
		hz.ewma[ev.Instance] = 0
		hz.ewmaSteps[ev.Instance] = 0
		if !d.stepping && !d.prefilling {
			e.startStep(ev.Instance)
		}
	} else if d.health == healthUp {
		e.trIncident(false, ev.Instance, "degrade")
		e.noteHealth(healthUp, healthDegraded)
		d.health = healthDegraded
	}
}

// verifyCost is the Freivalds verification latency charged onto one
// decode step: trials GEMV-equivalent passes over the active batch
// (O(n²) per gemm.VerifyGEMM — one extra matrix-vector product per
// trial), against the achieved compute roofline.
func (e *Engine) verifyCost(batch int) units.Seconds {
	if !e.hz.on || e.hz.verifyFactor == 0 {
		return 0
	}
	return units.Seconds(e.hz.verifyFactor * float64(batch) / e.lc.peak)
}

// sdcStep draws this step's corruption outcome for an instance.
// Returns (corrupted, detected): a detected corruption quarantines the
// instance; an undetected one taints every active request. At most two
// draws per corrupt step, one per clean step, always in the same order
// — the stream is a pure function of the event sequence.
func (e *Engine) sdcStep() (corrupt, detected bool) {
	hz := &e.hz
	if !hz.on || hz.sdc == 0 {
		return false, false
	}
	if e.hazardRng.Float64() >= hz.sdc {
		return false, false
	}
	hz.sdcSteps++
	if hz.detectP > 0 && e.hazardRng.Float64() < hz.detectP {
		hz.sdcDetected++
		return true, true
	}
	return true, false
}

// quarantine takes a decode instance out of service after a detected
// SDC: active, pending, reloading and in-flight-prefill requests are
// orphaned into the retry path (their outputs cannot be trusted), the
// KV pool is freed wholesale, and the instance waits for an optional
// repair. Structurally a crash with a different health terminal and an
// "sdc" incident kind.
func (e *Engine) quarantine(inst int) {
	d := &e.decodes[inst]
	e.trIncident(false, inst, "quarantine")
	inc := Incident{At: e.now, Instance: inst, Kind: "sdc"}
	for _, req := range d.active {
		inc.Orphaned++
		inc.KVTokensLost += req.ctx
		e.orphan(req)
	}
	clearPtrs(d.active)
	d.active = d.active[:0]
	for _, req := range d.reloads {
		inc.Orphaned++
		inc.KVTokensLost += req.ctx
		e.orphan(req)
	}
	clearPtrs(d.reloads)
	d.reloads = d.reloads[:0]
	for d.pending.len() > 0 {
		inc.Orphaned++
		e.orphan(d.pending.pop())
	}
	d.pending.reset()
	if d.prefilling && d.prefillReq != nil {
		inc.Orphaned++
		inc.KVTokensLost += d.prefillReq.ctxForPrefill()
		e.orphan(d.prefillReq)
	}
	d.prefillReq = nil
	d.prefilling = false
	d.stepping = false
	d.kv.used = 0
	d.epoch++
	e.noteHealth(d.health, healthQuarantined)
	d.health = healthQuarantined
	e.kvLost += inc.KVTokensLost
	e.incidents = append(e.incidents, inc)
	if e.hz.repair > 0 {
		e.schedule(e.now+e.hz.repair, evFaultRecover, inst, nil)
	}
}

// noteStepEWMA folds a completed step's observed-vs-expected time
// ratio into the instance's gray-failure tracker and drains the
// instance if its EWMA stands out against the fleet median.
func (e *Engine) noteStepEWMA(inst int) {
	hz := &e.hz
	if !hz.on || !hz.detect {
		return
	}
	x := hz.stepCost[inst]
	if x <= 0 {
		return
	}
	if hz.ewmaSteps[inst] == 0 {
		hz.ewma[inst] = x
	} else {
		hz.ewma[inst] = hz.alpha*x + (1-hz.alpha)*hz.ewma[inst]
	}
	hz.ewmaSteps[inst]++
	d := &e.decodes[inst]
	if hz.ewmaSteps[inst] < hz.minSteps || hz.grayDrained[inst] || !d.health.servable() {
		return
	}
	// Fleet median over warmed-up, servable instances. Fewer than two
	// eligible peers means no basis for comparison.
	med := hz.medScratch[:0]
	for i := range e.decodes {
		if hz.ewmaSteps[i] >= hz.minSteps && e.decodes[i].health.servable() {
			med = append(med, hz.ewma[i])
		}
	}
	hz.medScratch = med
	if len(med) < 2 {
		return
	}
	sort.Float64s(med)
	median := med[(len(med)-1)/2]
	if median <= 0 || hz.ewma[inst] <= hz.threshold*median {
		return
	}
	e.trIncident(false, inst, "gray-drain")
	e.noteHealth(d.health, healthDraining)
	d.health = healthDraining
	hz.grayDrained[inst] = true
	hz.grayDrains++
	e.incidents = append(e.incidents, Incident{At: e.now, Instance: inst, Kind: "gray-drain"})
}

// hedgeDelay resolves the hedge trigger for a request arriving now:
// the fixed delay, lifted to the observed p95 end-to-end latency once
// enough completions have accumulated.
func (e *Engine) hedgeDelay() units.Seconds {
	hg := &e.hedge
	d := hg.delay
	if hg.trackP95 && len(hg.e2e) >= 16 {
		if p := units.Seconds(hg.e2e[(len(hg.e2e)-1)*95/100]); p > d {
			d = p
		}
	}
	return d
}

// noteHedgeE2E records a completion's end-to-end latency for the p95
// tracker (sorted insert into an engine-owned buffer).
func (e *Engine) noteHedgeE2E(lat units.Seconds) {
	hg := &e.hedge
	if !hg.on || !hg.trackP95 {
		return
	}
	x := float64(lat)
	i := sort.SearchFloat64s(hg.e2e, x)
	hg.e2e = append(hg.e2e, 0)
	copy(hg.e2e[i+1:], hg.e2e[i:])
	hg.e2e[i] = x
}

// hedgeFire triggers one request's hedge timer: if the request is
// still unresolved and unhedged, a clone enters prefill dispatch and
// the two copies race.
func (e *Engine) hedgeFire(req *reqState) {
	if req.hstate != hzNone {
		return
	}
	hg := &e.hedge
	var c *reqState
	if hg.nClones < len(hg.clones) {
		c = hg.clones[hg.nClones]
	} else {
		c = &reqState{}
		hg.clones = append(hg.clones, c)
	}
	hg.nClones++
	*c = reqState{Request: req.Request, isClone: true, inst: -1}
	c.twin = req
	c.hstate = hzRacing
	req.twin = c
	req.hstate = hzRacing
	hg.hedged++
	e.trMark(req, obs.MarkHedge)
	e.prefillQ.push(c)
}

// hedgeDrop finalizes a losing copy at a touchpoint: its emitted
// tokens are discarded work. Pages (if any) are the caller's to
// release — queue-resident copies hold none.
func (e *Engine) hedgeDrop(req *reqState) {
	e.hedge.wasted += req.generated
	req.hstate = hzDone
}

// hedgeWin settles the race when one copy completes: the loser is
// marked for lazy cancellation at its next touchpoint, and the winner
// — clone or original, whichever finished first — becomes the
// request's completion record. The user-visible first token is the
// earlier of the two copies' (both stream until cancellation).
func (e *Engine) hedgeWin(winner *reqState) {
	loser := winner.twin
	if winner.isClone {
		e.hedge.wins++
		e.trMark(loser, obs.MarkHedgeWin)
	}
	if loser.generated > 0 && loser.firstToken < winner.firstToken {
		winner.firstToken = loser.firstToken
	}
	switch loser.hstate {
	case hzRacing:
		loser.hstate = hzLost
	case hzAbandoned:
		// The loser's own execution already failed; nothing remains to
		// cancel.
		loser.hstate = hzDone
	}
}

// hedgeSweep charges the wasted work of copies still marked lost when
// the run terminates (their lazy-drop touchpoint never fired because
// every arena request had already resolved).
func (e *Engine) hedgeSweep() {
	hg := &e.hedge
	if !hg.on {
		return
	}
	for _, c := range hg.clones[:hg.nClones] {
		if c.hstate == hzLost {
			e.hedgeDrop(c)
		}
	}
}

// hedgeOrphanAbsorbed handles a racing copy whose own execution just
// failed terminally (retry budget exhausted): while its twin still
// races the request is not yet failed — the dying copy is absorbed and
// the twin carries the request alone. Returns true when absorbed;
// false means the request has truly failed.
func (e *Engine) hedgeOrphanAbsorbed(req *reqState) bool {
	twin := req.twin
	if req.hstate != hzRacing || twin == nil || twin.hstate != hzRacing {
		return false
	}
	e.hedge.wasted += req.generated
	if req.isClone {
		// The clone dissolves; the original runs on alone.
		req.hstate = hzDone
		twin.hstate = hzNone
		twin.twin = nil
		return true
	}
	// The original's execution died but its clone races on; the clone's
	// outcome becomes the request's outcome.
	req.hstate = hzAbandoned
	return true
}

// ParseHazardEvents reads the CLI plane-hazard syntax: comma-separated
// "degrade@seconds:target:k[/T]" and "heal@seconds:target" items, where
// target is dN, pN, or a dN-M / pN-M range, k is the failed plane count
// and T the total plane count (default 8) — e.g.
// "degrade@4:d1:2,degrade@4:d2-3:1/8,heal@20:d1".
func ParseHazardEvents(s string) ([]PlaneHazardEvent, error) {
	var out []PlaneHazardEvent
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		fields := strings.Split(item, ":")
		kindStr, atStr, ok := strings.Cut(fields[0], "@")
		if !ok {
			return nil, fmt.Errorf("servesim: hazard %q: want kind@seconds:target[:planes]", item)
		}
		var heal bool
		switch strings.TrimSpace(kindStr) {
		case "degrade":
		case "heal":
			heal = true
		default:
			return nil, fmt.Errorf("servesim: hazard %q: unknown kind %q (want degrade or heal)", item, kindStr)
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(atStr), 64)
		if err != nil {
			return nil, fmt.Errorf("servesim: hazard %q: bad time: %w", item, err)
		}
		if math.IsNaN(at) || math.IsInf(at, 0) {
			return nil, fmt.Errorf("servesim: hazard %q: non-finite time", item)
		}
		want := 3
		if heal {
			want = 2
		}
		if len(fields) != want {
			return nil, fmt.Errorf("servesim: hazard %q: want %d ':'-separated parts", item, want)
		}
		lo, hi, prefill, err := parseInstRange(item, strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, err
		}
		failed, total := 0, 0
		if !heal {
			kStr, tStr, hasTotal := strings.Cut(strings.TrimSpace(fields[2]), "/")
			if failed, err = strconv.Atoi(strings.TrimSpace(kStr)); err != nil {
				return nil, fmt.Errorf("servesim: hazard %q: bad plane count %q: %w", item, kStr, err)
			}
			if hasTotal {
				if total, err = strconv.Atoi(strings.TrimSpace(tStr)); err != nil {
					return nil, fmt.Errorf("servesim: hazard %q: bad total planes %q: %w", item, tStr, err)
				}
			}
		}
		for inst := lo; inst <= hi; inst++ {
			out = append(out, PlaneHazardEvent{
				At: units.Seconds(at), Heal: heal, Prefill: prefill,
				Instance: inst, FailedPlanes: failed, TotalPlanes: total,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("servesim: empty hazard script %q", s)
	}
	return out, nil
}

// parseInstRange reads a dN / pN / dN-M / pN-M instance target.
func parseInstRange(item, target string) (lo, hi int, prefill bool, err error) {
	if len(target) < 2 || (target[0] != 'd' && target[0] != 'p') {
		return 0, 0, false, fmt.Errorf("servesim: hazard %q: bad target %q (want dN, pN, dN-M, or pN-M)", item, target)
	}
	prefill = target[0] == 'p'
	loStr, hiStr, isRange := strings.Cut(target[1:], "-")
	if lo, err = strconv.Atoi(loStr); err != nil {
		return 0, 0, false, fmt.Errorf("servesim: hazard %q: bad target %q: %w", item, target, err)
	}
	hi = lo
	if isRange {
		if hi, err = strconv.Atoi(hiStr); err != nil {
			return 0, 0, false, fmt.Errorf("servesim: hazard %q: bad target %q: %w", item, target, err)
		}
		if hi < lo {
			return 0, 0, false, fmt.Errorf("servesim: hazard %q: inverted range %q", item, target)
		}
	}
	return lo, hi, prefill, nil
}

// ParseHedgePolicy reads the CLI hedge spec: a fixed delay in seconds
// ("0.5"), or "p95:floor" for p95-tracked delays with the given floor
// ("p95:0.3").
func ParseHedgePolicy(s string) (HedgePolicy, error) {
	s = strings.TrimSpace(s)
	var h HedgePolicy
	if rest, ok := strings.CutPrefix(s, "p95:"); ok {
		h.TrackP95 = true
		s = rest
	} else if s == "p95" {
		return HedgePolicy{}, fmt.Errorf("servesim: hedge %q: p95 tracking needs a floor (p95:seconds)", s)
	}
	d, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return HedgePolicy{}, fmt.Errorf("servesim: hedge delay %q: %w", s, err)
	}
	h.Delay = units.Seconds(d)
	if err := h.Validate(); err != nil {
		return HedgePolicy{}, err
	}
	if !h.enabled() {
		return HedgePolicy{}, fmt.Errorf("servesim: hedge delay must be positive, got %v", h.Delay)
	}
	return h, nil
}
