// Package servesim is a deterministic discrete-event simulator of an
// LLM serving cluster under request-level traffic — the paper's
// inference analyses (§2.1.2 KV pressure, §2.3.2 EP decode ceiling,
// §2.3.3 MTP) lifted from steady-state formulas to TTFT/TPOT/goodput
// under load, in the spirit of the DeepSeek-V3 production deployment:
// disaggregated prefill and decode instances, continuous batching, and
// a paged MLA-sized KV cache with admission and preemption.
//
// Determinism contract: a (Config, Workload) pair with a fixed Seed
// produces a byte-identical Report (and JSON encoding) on every run.
// The event loop is single-threaded, events are ordered by (time,
// sequence), every scheduling decision is a pure function of simulator
// state, and all randomness flows from parallel.NewRand streams.
// Sweeps fan the per-point engines out over internal/parallel with
// seeds derived per index, so parallel sweep execution is invisible —
// the same guarantee the experiment suite asserts byte-for-byte.
package servesim

import (
	"fmt"
	"math/rand"

	"dsv3/internal/obs"
	"dsv3/internal/parallel"
	"dsv3/internal/stats"
	"dsv3/internal/units"
)

// SLO is the latency service-level objective a request must meet to
// count toward goodput.
type SLO struct {
	TTFT units.Seconds // time to first token
	TPOT units.Seconds // mean time per output token
}

// DefaultSLO returns the evaluation SLO: first token within 1 s, then
// at least 50 tokens/s sustained.
func DefaultSLO() SLO { return SLO{TTFT: 1.0, TPOT: 20 * units.Millisecond} }

// Event kinds, processed in (time, seq) order.
type eventKind int

const (
	evArrival eventKind = iota
	evPrefillDone
	evDecodeLand
	evStepDone
	// evFaultPlanned applies Config.Faults.Events[inst]; evFaultRandom
	// fires one MTBF-drawn crash and re-arms itself; evFaultRecover
	// repairs an MTBF-crashed instance after its MTTR dwell (inst >= 0
	// is a decode index, inst < 0 encodes prefill index -(inst+1)).
	evFaultPlanned
	evFaultRandom
	evFaultRecover
	// evRetry re-enters an orphaned request into prefill dispatch after
	// its backoff.
	evRetry
	// evReloadDone lands an offloaded request's KV back in HBM: the
	// request joins its instance's batch (tiered hierarchy only).
	evReloadDone
	// evHazard applies Config.Resilience.Hazards.Planes[inst]; evHedge
	// fires a request's hedge timer (hazard.go). Both exist only on the
	// serial path — hazardous configs never shard, so neither kind can
	// reach the coordinator's barrier-class range check.
	evHazard
	evHedge
)

type event struct {
	at   units.Seconds
	seq  int
	kind eventKind
	inst int // prefill instance (evPrefillDone), decode instance (evDecodeLand, evStepDone)
	// epoch pins evPrefillDone/evStepDone to the owning instance's
	// incarnation: a crash bumps the instance epoch, so events the dead
	// incarnation scheduled are recognized as stale and dropped.
	epoch int
	req   *reqState
}

// eventHeap is a slice-backed binary min-heap of event values ordered
// by (at, seq): no interface boxing on push, no type assertion on pop,
// no per-event allocation. seq is unique, so the order is strict and
// total — the pop sequence (and therefore the whole simulation) is
// identical to any other heap implementation over the same comparator.
type eventHeap []event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the req pointer so the arena can be collected
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(&s[l], &s[smallest]) {
			smallest = l
		}
		if r < n && eventLess(&s[r], &s[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

// reqState tracks one request through the pipeline. States live in an
// engine-owned arena, fully re-initialized per run.
type reqState struct {
	Request
	// generated counts emitted tokens (the prefill-produced first
	// token included); remaining = OutputTokens - generated.
	generated int
	// ctx is the KV-resident context length (prompt + generated-1
	// decode-written tokens, approximated as prompt + generated).
	ctx   int
	pages int
	// resumed marks a preempted request re-running prefill to rebuild
	// its KV (recompute); its first token was already emitted.
	resumed   bool
	preempted int
	// retries counts crash-orphaning retries spent (RetryPolicy budget).
	retries    int
	firstToken units.Seconds
	done       units.Seconds
	admitSeq   int // admission order on the decode instance (preemption priority)
	// entry is 1 + the request's offEntry index while its KV lives in a
	// below-HBM tier (0 = none).
	entry int
	// preemptMark carries the engine's step generation when this request
	// was chosen as a preemption victim — the allocation-free stand-in
	// for the per-step victim set.
	preemptMark int
	// corrupt marks a response tainted by undetected silent data
	// corruption (hazard.go); a corrupt completion never counts as
	// SLO-good.
	corrupt bool
	// Hedging state (hazard.go). isClone marks a speculative duplicate
	// living outside the arena; twin links the two racing copies; hstate
	// is the race state (hzNone..hzDone); inst is the decode instance
	// the copy was last routed to (-1 before any hand-off) — the twin's
	// routing anti-affinity.
	isClone bool
	hstate  int8
	twin    *reqState
	inst    int
}

func (r *reqState) remaining() int { return r.OutputTokens - r.generated }

// healthState is an instance's availability: up instances take new
// work, degraded instances serve at derated bandwidth, draining
// instances finish what they hold but are excluded from routing, down
// and quarantined instances hold nothing and take nothing.
type healthState int8

const (
	healthUp healthState = iota
	// healthDegraded: a plane hazard derated the instance's comm
	// bandwidth. It still takes and holds work — a degraded instance is
	// precisely the gray failure the router's detection exists to catch,
	// so it stays in the routing candidate set until drained.
	healthDegraded
	healthDraining
	healthDown
	// healthQuarantined: removed after a detected SDC; crash-like (holds
	// nothing, takes nothing) until an optional repair recovers it.
	healthQuarantined
)

// servable reports whether the instance can take and hold new work.
func (h healthState) servable() bool { return h == healthUp || h == healthDegraded }

// dead reports whether the instance holds nothing (crash-like states).
func (h healthState) dead() bool { return h == healthDown || h == healthQuarantined }

// prefillUnit is one prefill (or the prefill half of a colocated)
// instance.
type prefillUnit struct {
	busy bool
	// cur is the in-flight prefill (orphaned if the instance crashes);
	// epoch invalidates the matching evPrefillDone after a crash.
	cur    *reqState
	epoch  int
	health healthState
	// landAt (sharded runs only) bounds when cur's decode hand-off can
	// land: prefill completion plus the KV transfer. The coordinator's
	// conservative window never extends past any busy unit's landAt, so
	// a land is always scheduled before the window it falls in opens.
	landAt units.Seconds
}

// decodeUnit is one decode (or colocated) instance.
type decodeUnit struct {
	active  []*reqState
	pending fifo // landed, waiting for batch slot + KV pages
	// reloads holds admitted requests whose offloaded KV is in flight
	// back to HBM; they occupy batch slots and pages but do not step
	// until evReloadDone.
	reloads  []*reqState
	kv       kvPool
	stepping bool
	epoch    int
	health   healthState
	// colocated bookkeeping
	prefilling   bool
	prefillReq   *reqState // in-flight stall-the-world prefill
	sincePrefill int
	admitCounter int
}

// reset re-initializes the unit for a new run, keeping the batch-queue
// buffers.
func (d *decodeUnit) reset(kv kvPool) {
	clearPtrs(d.active)
	d.active = d.active[:0]
	clearPtrs(d.reloads)
	d.reloads = d.reloads[:0]
	d.pending.reset()
	d.kv = kv
	d.stepping = false
	d.epoch = 0
	d.health = healthUp
	d.prefilling = false
	d.prefillReq = nil
	d.sincePrefill = 0
	d.admitCounter = 0
}

func clearPtrs(rs []*reqState) {
	for i := range rs {
		rs[i] = nil
	}
}

// fifo is a head-indexed FIFO of request states. Unlike the q = q[1:]
// re-slicing idiom, popping never sheds backing-array capacity: the
// buffer rewinds to its start whenever the queue drains, so a steady-
// state run enqueues and dequeues thousands of times with zero
// allocations.
type fifo struct {
	buf  []*reqState
	head int
}

func (f *fifo) push(r *reqState) { f.buf = append(f.buf, r) }

func (f *fifo) pop() *reqState {
	r := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return r
}

func (f *fifo) peek() *reqState { return f.buf[f.head] }

func (f *fifo) len() int { return len(f.buf) - f.head }

func (f *fifo) reset() {
	clearPtrs(f.buf)
	f.buf = f.buf[:0]
	f.head = 0
}

// Engine is a reusable serving-simulation engine: the event heap, the
// request-state arena, the per-instance queues and every metrics buffer
// are owned by the Engine and recycled across Run calls, so sweeps and
// capacity searches that run hundreds of simulations allocate only the
// Reports they return. An Engine is not safe for concurrent use — fan
// sweeps out with one Engine per worker (parallel.MapScratch). Every
// run fully re-initializes the recycled state, so a reused Engine's
// reports are byte-identical to a fresh one's.
type Engine struct {
	cfg    Config
	rng    *rand.Rand
	reseed func(int64)
	now    units.Seconds
	seq    int
	events eventQueue // scheduler selected by Fleet.Scheduler (heap default)

	reqs     []Request  // generated workload scratch
	arena    []reqState // one entry per request, pointer-stable within a run
	prefillQ fifo
	prefills []prefillUnit // empty when colocated
	decodes  []decodeUnit
	// idlePrefills counts prefill units that are idle and healthy — the
	// dispatch candidate set size — so the post-event dispatch call can
	// skip its O(nPrefill) scan when nothing can possibly pair. Kept
	// exact: ±1 at dispatch/prefillDone, recounted on fault transitions.
	idlePrefills int

	// One router instance per decision point, so per-policy state
	// (round-robin cursors, the p2c stream) never couples prefill
	// dispatch to the decode hand-off.
	prefillRouter Router
	decodeRouter  Router
	loads         []InstanceLoad // candidate scratch, reused per decision

	mtpFactor float64
	lc        latConsts // per-run latency constants (see LatencyModel.consts)
	markGen   int       // preemption-victim generation (see reqState.preemptMark)
	hier      hierState // below-HBM tier state (zero when KV.Tiers is empty)

	// Observability hooks (see trace.go). Both stay nil unless attached,
	// so the disabled path costs one nil check per hook site and zero
	// allocations.
	tracer  obs.Tracer
	metrics *obs.Registry
	mi      metricIdx

	// Fault-injection state. The fault RNG is its own reseedable stream
	// (seed stream 4), so injected randomness never perturbs the
	// workload, MTP, or routing draws; every field below stays zero on a
	// fault-free run and adds no per-run allocation.
	faultRng      *rand.Rand
	faultReseed   func(int64)
	downCount     int           // instances not healthUp (degraded-span tracking)
	degradedSince units.Seconds // start of the currently open degraded span

	// Cross-layer hazard state (hazard.go). The hazard RNG is its own
	// reseedable stream (seed stream 5) covering SDC and detection
	// draws; hedging draws no randomness. hz and hedge are recycled
	// across runs and cost one bool write each on a hazard-free run.
	hazardRng    *rand.Rand
	hazardReseed func(int64)
	hz           hazardState
	hedge        hedgeState

	// metrics accumulation
	completed  []*reqState
	failed     []*reqState
	shed       int
	retries    int // total retry attempts across requests
	retried    int // requests that retried at least once
	affected   int // requests orphaned by crashes or dead hand-offs
	kvLost     int // KV-resident tokens destroyed by crashes
	incidents  []Incident
	spans      []faultSpan // closed degraded intervals
	goodDone   []float64   // within-SLO completion times (incident recovery scan)
	preempts   int
	steps      int
	stepBatch  int
	stepTokens int
	peakOcc    float64
	samples    []TimelinePoint
	nextSample units.Seconds
	sampleStep units.Seconds

	latHist         stats.Histogram // latency-sample tally (surfaces Dropped)
	ttft, tpot, e2e []float64       // report percentile scratch

	// Sharded-execution state (see shard.go). sharded is true only while
	// runSharded is driving the run; every serial run leaves it false, so
	// the serial path is untouched.
	sharded  bool
	shards   []engShard
	mirror   fleetMirror
	barrierQ eventHeap // fault-class events, processed only at window edges
	// landHeap holds the land times of dispatched prefills (a min-heap of
	// plain timestamps), so the coordinator can bound each window by the
	// earliest in-flight hand-off in O(1) instead of scanning every
	// prefill unit. Entries are popped lazily once the window edge passes
	// them; a stale entry (its prefill already done, its land already
	// delivered to a shard) only shrinks a window, never corrupts one.
	landHeap []units.Seconds
}

// faultSpan is one interval during which at least one instance was
// degraded (down or draining).
type faultSpan struct {
	start, end units.Seconds
}

// NewEngine returns an empty engine; buffers grow to the largest run it
// executes.
func NewEngine() *Engine {
	e := &Engine{}
	e.rng, e.reseed = parallel.NewReseedable(0)
	e.faultRng, e.faultReseed = parallel.NewReseedable(0)
	e.hazardRng, e.hazardReseed = parallel.NewReseedable(0)
	return e
}

// Run simulates the workload on the cluster and reports request-level
// latency, goodput, and occupancy metrics. Equivalent to calling Run on
// a fresh Engine — reuse recycles buffers, never state.
func Run(cfg Config, w Workload) (*Report, error) {
	return NewEngine().Run(cfg, w)
}

// Run simulates the workload, reusing the engine's buffers.
func (e *Engine) Run(cfg Config, w Workload) (*Report, error) {
	if cfg.Fleet.ColocatedStride <= 0 {
		cfg.Fleet.ColocatedStride = 4
	}
	if len(cfg.KV.Tiers) > 0 && cfg.KV.ChunkTokens <= 0 {
		cfg.KV.ChunkTokens = DefaultChunkTokens
	}
	if err := cfg.validateRun(w); err != nil {
		return nil, err
	}
	e.reqs = w.generateInto(parallel.DeriveSeed(cfg.Seed, 0), e.reqs)
	reqs := e.reqs

	// Seed-stream layout: 0 workload, 1 engine (MTP acceptance), 2/3
	// the routing streams, 4 fault injection. Routing and fault draws
	// never touch the engine stream, so switching policies (or adding a
	// fault plan) cannot perturb speculative decoding.
	e.cfg = cfg
	e.reseed(parallel.DeriveSeed(cfg.Seed, 1))
	e.prefillRouter = NewRouter(cfg.Fleet.Router, parallel.DeriveSeed(cfg.Seed, 2))
	e.decodeRouter = NewRouter(cfg.Fleet.Router, parallel.DeriveSeed(cfg.Seed, 3))
	e.lc = cfg.Latency.consts()
	e.resetHier()
	e.now = 0
	e.seq = 0
	e.mtpFactor = 1
	e.markGen = 0
	e.prefillQ.reset()
	clearPtrs(e.completed)
	e.completed = e.completed[:0]
	clearPtrs(e.failed)
	e.failed = e.failed[:0]
	e.shed, e.retries, e.retried, e.affected, e.kvLost = 0, 0, 0, 0, 0
	e.downCount = 0
	e.incidents = e.incidents[:0]
	e.spans = e.spans[:0]
	e.goodDone = e.goodDone[:0]
	e.latHist = stats.Histogram{}
	e.preempts, e.steps, e.stepBatch, e.stepTokens = 0, 0, 0, 0
	e.peakOcc = 0
	e.samples = e.samples[:0]
	if cfg.MTP != nil {
		e.mtpFactor = cfg.MTP.StepCost()
	}
	nPrefill, nDecode := cfg.Fleet.shape()
	if cap(e.prefills) < nPrefill {
		e.prefills = make([]prefillUnit, nPrefill)
	}
	e.prefills = e.prefills[:nPrefill]
	for i := range e.prefills {
		e.prefills[i] = prefillUnit{}
	}
	e.idlePrefills = nPrefill
	if cap(e.decodes) < nDecode {
		next := make([]decodeUnit, nDecode)
		copy(next, e.decodes[:cap(e.decodes)])
		e.decodes = next
	}
	e.decodes = e.decodes[:nDecode]
	kv := kvPool{cfg: cfg.KV.HBM, total: cfg.KV.HBM.TotalPages(cfg.Latency.Model)}
	for i := range e.decodes {
		e.decodes[i].reset(kv)
	}
	e.resetHazards(nPrefill, nDecode)
	e.obsBeginRun(nPrefill, nDecode)

	// Sample the batch/occupancy timeline on a horizon estimated from
	// the offered traffic; sampling is clocked off event times only, so
	// it never perturbs the simulation.
	horizon := reqs[len(reqs)-1].Arrival + 1
	e.sampleStep = horizon / timelineSamples
	if e.sampleStep <= 0 {
		e.sampleStep = 1
	}
	e.nextSample = e.sampleStep

	e.events = newEventQueue(cfg.Fleet.Scheduler, e.events)
	if c, ok := e.events.(*calendarQueue); ok {
		c.configure(horizon, 2*len(reqs))
	} else {
		e.events.reset()
	}

	if cap(e.arena) < len(reqs) {
		e.arena = make([]reqState, len(reqs))
	}
	e.arena = e.arena[:len(reqs)]
	for i := range reqs {
		e.arena[i] = reqState{Request: reqs[i], inst: -1}
	}

	if e.shardable(w, nDecode) {
		if err := e.runSharded(nDecode); err != nil {
			return nil, err
		}
		return e.finishRun()
	}

	for i := range e.arena {
		e.schedule(e.arena[i].Arrival, evArrival, 0, &e.arena[i])
	}
	if plan := cfg.Resilience.Faults; plan != nil {
		e.faultReseed(parallel.DeriveSeed(cfg.Seed, 4))
		for i := range plan.Events {
			e.schedule(plan.Events[i].At, evFaultPlanned, i, nil)
		}
		if plan.MTBF > 0 {
			e.schedule(e.faultRng.ExpFloat64()*plan.MTBF, evFaultRandom, 0, nil)
		}
	}
	e.scheduleHazards()
	for e.events.size() > 0 {
		ev := e.events.pop()
		stop, err := e.processEvent(&ev)
		if err != nil {
			return nil, err
		}
		// Every request resolved: only maintenance events (fault
		// schedule entries, MTBF re-arms, repairs) can remain, and the
		// MTBF chain re-arms itself forever — stop here, not on queue
		// drain.
		if stop {
			break
		}
	}
	return e.finishRun()
}

// processEvent advances the simulation through one event: clock, the
// sampling and metrics grids, the event's handler, then a dispatch
// pass. It returns stop=true once every request is resolved. The serial
// loop and the sharded coordinator's replay both funnel coordinator
// events through here, so the two modes cannot drift.
func (e *Engine) processEvent(ev *event) (stop bool, err error) {
	e.now = ev.at
	e.sampleUpTo(e.now)
	e.metricsUpTo(e.now)
	switch ev.kind {
	case evArrival:
		if e.shouldShed() {
			e.shed++
			e.trMark(ev.req, obs.MarkShed)
		} else {
			e.trMark(ev.req, obs.MarkArrival)
			e.trPhaseBegin(ev.req, obs.PhaseQueue, -1)
			e.prefillQ.push(ev.req)
			if e.hedge.on {
				e.schedule(e.now+e.hedgeDelay(), evHedge, 0, ev.req)
			}
		}
	case evPrefillDone:
		e.prefillDone(ev)
	case evDecodeLand:
		if ev.req.hstate == hzLost {
			e.hedgeDrop(ev.req)
			break
		}
		d := &e.decodes[ev.inst]
		if d.health.dead() {
			// The KV migration arrived at a crashed host: the
			// request is orphaned mid-hand-off.
			e.orphan(ev.req)
			break
		}
		e.trPhaseEnd(ev.req)
		e.trPhaseBegin(ev.req, obs.PhaseQueue, ev.inst)
		d.pending.push(ev.req)
		if !d.stepping && !d.prefilling {
			e.startStep(ev.inst)
		}
	case evStepDone:
		if e.decodes[ev.inst].epoch != ev.epoch {
			break // scheduled by a crashed incarnation
		}
		if err := e.stepDone(ev.inst); err != nil {
			return false, err
		}
	case evFaultPlanned:
		fe := e.cfg.Resilience.Faults.Events[ev.inst]
		e.applyFault(fe.Kind, fe.Prefill, fe.Instance)
	case evFaultRandom:
		e.randomCrash()
	case evFaultRecover:
		if ev.inst >= 0 {
			e.applyFault(FaultRecover, false, ev.inst)
		} else {
			e.applyFault(FaultRecover, true, -(ev.inst + 1))
		}
	case evRetry:
		req := ev.req
		if req.hstate == hzLost {
			e.hedgeDrop(req)
			break
		}
		req.resumed = req.generated > 0
		req.ctx = req.ctxForPrefill()
		e.trPhaseEnd(req)
		e.trMark(req, obs.MarkRetry)
		e.trPhaseBegin(req, obs.PhaseQueue, -1)
		e.prefillQ.push(req)
	case evReloadDone:
		if e.decodes[ev.inst].epoch != ev.epoch {
			break // scheduled by a crashed incarnation
		}
		e.reloadDone(ev.inst, ev.req)
	case evHazard:
		e.applyHazard(ev.inst)
	case evHedge:
		e.hedgeFire(ev.req)
	}
	e.dispatch()
	return len(e.completed)+len(e.failed)+e.shed == len(e.arena), nil
}

// finishRun closes the run out after the event loop: the open degraded
// span, the stall check, and report assembly.
func (e *Engine) finishRun() (*Report, error) {
	if e.downCount > 0 {
		e.spans = append(e.spans, faultSpan{start: e.degradedSince, end: e.now})
		e.downCount = 0
	}
	if n := len(e.completed) + len(e.failed) + e.shed; n != len(e.arena) {
		return nil, fmt.Errorf("servesim: %d of %d requests never completed (scheduling stall)",
			len(e.arena)-n, len(e.arena))
	}
	e.hedgeSweep()
	e.obsEndRun()
	return e.report(), nil
}

func (e *Engine) schedule(at units.Seconds, kind eventKind, inst int, req *reqState) {
	e.seq++
	ev := event{at: at, seq: e.seq, kind: kind, inst: inst, req: req}
	if e.sharded && kind >= evFaultPlanned && kind <= evFaultRecover {
		// Fault transitions are barrier-class under sharding: they mutate
		// shard-owned instance state, so the coordinator chops windows at
		// their times and applies them on a quiesced fleet (shard.go).
		e.barrierQ.push(ev)
		return
	}
	e.events.push(ev)
}

// scheduleEpoch is schedule for events that must die with the target
// instance's current incarnation (evStepDone, evPrefillDone).
func (e *Engine) scheduleEpoch(at units.Seconds, kind eventKind, inst, epoch int, req *reqState) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, kind: kind, inst: inst, epoch: epoch, req: req})
}

// shouldShed applies the admission policy to one arrival: shed when the
// shared prefill queue is too deep or the up-fleet KV occupancy too
// high — the graceful-degradation gate that keeps admitted requests'
// latency bounded under overload.
func (e *Engine) shouldShed() bool {
	a := e.cfg.Resilience.Admission
	if !a.enabled() {
		return false
	}
	if a.MaxQueueDepth > 0 && e.prefillQ.len() >= a.MaxQueueDepth {
		return true
	}
	if a.MaxKVOccupancy > 0 {
		var used, total int
		for i := range e.decodes {
			if d := &e.decodes[i]; !d.health.dead() {
				if e.sharded {
					used += e.mirror.used[i]
					total += e.mirror.total[i]
				} else {
					used += d.kv.used
					total += d.kv.total
				}
			}
		}
		if total > 0 && float64(used)/float64(total) > a.MaxKVOccupancy {
			return true
		}
	}
	return false
}

// dispatch hands queued prefill work to idle capacity. It runs after
// every event so newly queued (or preempted) requests and newly idle
// instances always meet. Disaggregated prefill assignment goes through
// the prefill router over the idle candidate set; colocated instances
// pull from the shared queue themselves (startStep), so only the fixed
// scan order applies there. Every path is deterministic.
func (e *Engine) dispatch() {
	e.purgeLostHead()
	if e.prefillQ.len() == 0 {
		return
	}
	if e.cfg.Fleet.Colocated {
		for i := range e.decodes {
			if e.prefillQ.len() == 0 {
				return
			}
			if d := &e.decodes[i]; d.health.servable() && !d.stepping && !d.prefilling {
				e.startStep(i)
			}
		}
		return
	}
	if e.idlePrefills == 0 {
		return
	}
	// Health-aware candidate set: crashed and draining prefill units are
	// invisible to the router (degraded ones still serve, slower).
	idle := e.loads[:0]
	for i := range e.prefills {
		if p := &e.prefills[i]; !p.busy && p.health.servable() {
			idle = append(idle, InstanceLoad{Instance: i})
		}
	}
	for e.prefillQ.len() > 0 && len(idle) > 0 {
		k := e.prefillRouter.Pick(idle)
		inst := idle[k].Instance
		idle = append(idle[:k], idle[k+1:]...)
		req := e.prefillQ.pop()
		p := &e.prefills[inst]
		p.busy = true
		e.idlePrefills--
		p.cur = req
		cost := e.prefillCost(req, e.commScaleP(inst))
		if e.sharded {
			// The post-prefill context is already determined (see
			// emitFirstToken), so the hand-off's land time is known now.
			ctxAtDone := req.ctxForPrefill()
			if !req.resumed {
				ctxAtDone = req.PromptTokens + 1
			}
			transfer := e.cfg.Latency.kvBytesForContext(e.lc, ctxAtDone) / e.cfg.Fleet.TransferBW
			p.landAt = e.now + cost + transfer
			e.landPush(p.landAt)
		}
		e.trPhaseEnd(req)
		e.trPhaseBegin(req, obs.PhasePrefill, inst)
		e.trCompute(cost, true, inst, obs.ComputePrefill, req.ID)
		e.scheduleEpoch(e.now+cost, evPrefillDone, inst, p.epoch, req)
		e.purgeLostHead()
	}
	e.loads = idle[:0]
}

// purgeLostHead drops losing hedge copies off the head of the shared
// prefill queue before dispatch commits capacity to them (hazard.go).
func (e *Engine) purgeLostHead() {
	if !e.hedge.on {
		return
	}
	for e.prefillQ.len() > 0 && e.prefillQ.peek().hstate == hzLost {
		e.hedgeDrop(e.prefillQ.pop())
	}
}

// ctxForPrefill is the context a (re-)prefill must process: the prompt
// plus, after a preemption, every token generated so far (recompute).
func (r *reqState) ctxForPrefill() int {
	return r.PromptTokens + r.generated
}

// prefillDone completes a prefill: the request's first token is
// emitted here (prefill computes the logits of token one), then the
// KV moves to a decode instance.
func (e *Engine) prefillDone(ev *event) {
	req := ev.req
	if e.cfg.Fleet.Colocated {
		if e.decodes[ev.inst].epoch != ev.epoch {
			return // the instance crashed mid-prefill; req was orphaned then
		}
		e.colocatedPrefillDone(ev.inst, req)
		return
	}
	p := &e.prefills[ev.inst]
	if p.epoch != ev.epoch {
		return // the instance crashed mid-prefill; req was orphaned then
	}
	p.busy = false
	p.cur = nil
	if p.health.servable() {
		e.idlePrefills++
	}
	if req.hstate == hzLost {
		// The twin completed while this copy prefilled: the work is
		// discarded and the unit freed.
		e.hedgeDrop(req)
		return
	}
	e.trPhaseEnd(req)
	e.emitFirstToken(req)
	if req.remaining() == 0 {
		e.complete(req)
		return
	}
	// Route to a decode instance via the configured policy (least-KV
	// by default), after the KV migration delay. Crashed and draining
	// instances are excluded; a fleet with no healthy decode instance
	// orphans the request into the retry path.
	loads := e.loads[:0]
	for i := range e.decodes {
		d := &e.decodes[i]
		if !d.health.servable() {
			continue
		}
		if e.sharded {
			// Decode state is shard-owned mid-window; the coordinator
			// routes off its replay-maintained mirror, which is exact as
			// of the last merged shard record.
			loads = append(loads, InstanceLoad{
				Instance: i,
				Queue:    e.mirror.pending[i] + e.mirror.active[i],
				FreeKV:   e.mirror.total[i] - e.mirror.used[i],
			})
			continue
		}
		loads = append(loads, InstanceLoad{
			Instance: i,
			Queue:    d.pending.len() + len(d.active),
			FreeKV:   d.kv.free(),
		})
	}
	if len(loads) == 0 {
		e.loads = loads[:0]
		e.orphan(req)
		return
	}
	// Hedge anti-affinity: a racing copy avoids its twin's decode
	// instance when any alternative exists, so the race spans failure
	// domains instead of queueing twice on the same straggler.
	if t := req.twin; t != nil && req.hstate == hzRacing && len(loads) > 1 {
		for k := range loads {
			if loads[k].Instance == t.inst {
				loads = append(loads[:k], loads[k+1:]...)
				break
			}
		}
	}
	best := loads[e.decodeRouter.Pick(loads)].Instance
	req.inst = best
	e.loads = loads[:0]
	var transfer units.Seconds
	if e.cfg.Fleet.TransferBW > 0 {
		transfer = e.cfg.Latency.kvBytesForContext(e.lc, req.ctx) / e.cfg.Fleet.TransferBW
	}
	e.trPhaseBegin(req, obs.PhaseTransfer, best)
	if e.sharded {
		// The land belongs to the owning shard's queue. Shards are parked
		// while the coordinator replays, so the push is race-free, and the
		// land time is at or past the next window edge by the landAt bound.
		e.shardFor(best).scheduleLand(e.now+transfer, best, req)
		return
	}
	e.schedule(e.now+transfer, evDecodeLand, best, req)
}

func (e *Engine) emitFirstToken(req *reqState) {
	req.ctx = req.ctxForPrefill()
	if !req.resumed {
		req.firstToken = e.now
		req.generated = 1
		req.ctx = req.PromptTokens + 1
	}
}

func (e *Engine) complete(req *reqState) {
	if req.hstate == hzRacing {
		e.hedgeWin(req)
	}
	req.done = e.now
	if e.hedge.on {
		req.hstate = hzDone
		e.noteHedgeE2E(req.done - req.Arrival)
	}
	if req.corrupt {
		e.hz.corrupt++
		e.trMark(req, obs.MarkCorrupt)
	}
	e.trPhaseEnd(req)
	e.trMark(req, obs.MarkComplete)
	e.completed = append(e.completed, req)
	e.prefixStore(req)
}

// startStep begins the next unit of work on a decode instance: for a
// colocated instance possibly a stall-the-world prefill, otherwise
// admission plus one continuous-batching decode step.
func (e *Engine) startStep(inst int) {
	d := &e.decodes[inst]
	e.purgeLostHead()

	if e.cfg.Fleet.Colocated && d.health.servable() && e.prefillQ.len() > 0 && len(d.active) < e.cfg.Fleet.MaxBatch &&
		(len(d.active) == 0 || d.sincePrefill >= e.cfg.Fleet.ColocatedStride) {
		req := e.prefillQ.peek()
		// A colocated request decodes in place, so reserve its full
		// final context up front (conservative policy: a stall-the-
		// world prefill must never later become an unpreemptable
		// grower). If the pool is full the prefill waits for
		// completions to free pages.
		pages := e.cfg.KV.HBM.PagesFor(req.PromptTokens + req.OutputTokens)
		if d.kv.tryAlloc(pages) {
			e.prefillQ.pop()
			req.pages = pages
			d.prefilling = true
			d.prefillReq = req
			e.notePeakOcc()
			cost := e.prefillCost(req, e.commScaleD(inst))
			e.trPhaseEnd(req)
			e.trPhaseBegin(req, obs.PhasePrefill, inst)
			e.trCompute(cost, false, inst, obs.ComputePrefill, req.ID)
			e.scheduleEpoch(e.now+cost, evPrefillDone, inst, d.epoch, req)
			return
		}
	}

	// Admit landed requests in FIFO order while batch slots and KV
	// pages allow; the head of the queue blocks (no reordering). Only
	// disaggregated instances have a landing queue — colocated requests
	// join the batch directly from their stall-the-world prefill
	// (colocatedPrefillDone), so d.pending is never populated under
	// Colocated.
	if !e.cfg.Fleet.Colocated {
		for len(d.active)+len(d.reloads) < e.cfg.Fleet.MaxBatch && d.pending.len() > 0 {
			req := d.pending.peek()
			if req.hstate == hzLost {
				d.pending.pop()
				e.hedgeDrop(req)
				continue
			}
			if req.entry != 0 && e.hier.entries[req.entry-1].dropped {
				// The offloaded chunks were evicted off the bottom tier
				// while the request queued: recompute preemption after
				// all, exactly as if the tiers were absent.
				d.pending.pop()
				e.hier.forget(req)
				req.resumed = true
				req.preempted++
				e.preempts++
				// The queue phase continues: the request rejoins the shared
				// prefill queue without leaving the queued state.
				e.trMark(req, obs.MarkPreempt)
				req.ctx = req.ctxForPrefill()
				e.prefillQ.push(req)
				continue
			}
			pages := e.cfg.KV.HBM.PagesFor(req.ctx)
			if !d.kv.tryAlloc(pages) {
				break
			}
			req.pages = pages
			if req.entry != 0 {
				d.pending.pop()
				e.notePeakOcc()
				e.startReload(inst, req)
				continue
			}
			d.admitCounter++
			req.admitSeq = d.admitCounter
			d.pending.pop()
			e.trPhaseEnd(req)
			e.trPhaseBegin(req, obs.PhaseDecode, inst)
			d.active = append(d.active, req)
			e.notePeakOcc()
		}
	}
	if len(d.active) == 0 {
		d.stepping = false
		return
	}

	var attn batchAttention
	for _, req := range d.active {
		e.cfg.Latency.addContextC(e.lc, &attn, req.ctx)
	}
	dt := e.cfg.Latency.decodeStepTimeComm(e.lc, len(d.active), attn, e.commScaleD(inst)) * e.mtpFactor
	if e.hz.on {
		// Every step pays the Freivalds verification pass (when
		// configured). The gray-failure tracker records the step's
		// observed-vs-expected ratio — observed time over the model's
		// healthy-interconnect prediction for the same batch — so the
		// signal sits at 1.0 for a clean instance at any occupancy and
		// rises only with genuine slowdown; raw per-slot cost would
		// confuse a lightly-loaded instance with a degraded one.
		dt += e.verifyCost(len(d.active))
		if e.hz.detect {
			base := e.cfg.Latency.decodeStepTimeComm(e.lc, len(d.active), attn, 1)*e.mtpFactor + e.verifyCost(len(d.active))
			e.hz.stepCost[inst] = dt / base
		}
	}
	d.stepping = true
	d.sincePrefill++
	e.steps++
	e.stepBatch += len(d.active)
	e.trCompute(dt, false, inst, obs.ComputeDecodeStep, len(d.active))
	e.scheduleEpoch(e.now+dt, evStepDone, inst, d.epoch, nil)
}

// colocatedPrefillDone finishes a stall-the-world prefill on a
// colocated instance: the request joins that instance's batch directly
// (its KV pages were reserved at prefill start).
func (e *Engine) colocatedPrefillDone(inst int, req *reqState) {
	d := &e.decodes[inst]
	d.prefilling = false
	d.prefillReq = nil
	d.sincePrefill = 0
	if req.hstate == hzLost {
		d.kv.release(req.pages)
		req.pages = 0
		e.hedgeDrop(req)
		e.startStep(inst)
		return
	}
	e.trPhaseEnd(req)
	e.emitFirstToken(req)
	if req.remaining() == 0 {
		d.kv.release(req.pages)
		req.pages = 0
		e.complete(req)
	} else {
		d.admitCounter++
		req.admitSeq = d.admitCounter
		e.trPhaseBegin(req, obs.PhaseDecode, inst)
		d.active = append(d.active, req)
	}
	e.startStep(inst)
}

// stepDone advances every active request by one decode iteration:
// token emission (plus MTP-accepted drafts), then completion, then KV
// growth with preemption on pool exhaustion. Finished requests release
// their pages before anyone grows, so a request that just emitted its
// last token can never be chosen as a preemption victim.
func (e *Engine) stepDone(inst int) error {
	d := &e.decodes[inst]
	if e.hedge.on {
		// Drop copies whose twin resolved mid-step before they emit:
		// their pages free now, their tokens are discarded work.
		keep := d.active[:0]
		for _, req := range d.active {
			if req.hstate == hzLost {
				d.kv.release(req.pages)
				req.pages = 0
				e.hedgeDrop(req)
			} else {
				keep = append(keep, req)
			}
		}
		for i := len(keep); i < len(d.active); i++ {
			d.active[i] = nil
		}
		d.active = keep
	}
	if e.hz.on {
		corrupt, detected := e.sdcStep()
		if detected {
			// Verification caught the corruption: the step's outputs are
			// discarded and the instance leaves service — a retryable
			// fault instead of a corrupt completed response.
			e.quarantine(inst)
			return nil
		}
		if corrupt {
			for _, req := range d.active {
				req.corrupt = true
			}
		}
		e.noteStepEWMA(inst)
	}
	for _, req := range d.active {
		emitted := 1
		if c := e.cfg.MTP; c != nil {
			for i := 0; i < c.Modules && req.generated+emitted < req.OutputTokens; i++ {
				if e.rng.Float64() >= c.Acceptance {
					break
				}
				emitted++
			}
		}
		if emitted > req.remaining() {
			emitted = req.remaining()
		}
		req.generated += emitted
		e.stepTokens += emitted
		req.ctx += emitted
	}

	unfinished := d.active[:0]
	for _, req := range d.active {
		if req.remaining() == 0 {
			d.kv.release(req.pages)
			req.pages = 0
			e.complete(req)
		} else {
			unfinished = append(unfinished, req)
		}
	}
	for i := len(unfinished); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = unfinished

	// Victim bookkeeping rides on a per-step generation mark instead of
	// a freshly allocated set: a request is "preempted this step" iff
	// its mark equals the current generation.
	e.markGen++
	gen := e.markGen
	nPreempted := 0
	for _, req := range d.active {
		if req.preemptMark == gen {
			continue
		}
		if need := e.cfg.KV.HBM.PagesFor(req.ctx) - req.pages; need > 0 {
			for !d.kv.tryAlloc(need) {
				victim := e.pickVictim(d, req, gen)
				if victim == nil {
					return errNoVictim(inst)
				}
				victim.preemptMark = gen
				nPreempted++
				d.kv.release(victim.pages)
				victim.pages = 0
			}
			req.pages += need
			e.notePeakOcc()
		}
	}

	if nPreempted > 0 {
		keep := d.active[:0]
		for _, req := range d.active {
			if req.preemptMark == gen {
				if e.offloadVictim(d, req) {
					// The victim's KV moved down the hierarchy intact;
					// it waits in the landing queue for pages and a
					// reload instead of recomputing.
					e.trPhaseEnd(req)
					e.trMark(req, obs.MarkOffload)
					e.trPhaseBegin(req, obs.PhaseQueue, inst)
					continue
				}
				// Recompute-style preemption: pages are gone, the
				// request re-prefills prompt + generated tokens, then
				// resumes.
				req.resumed = true
				req.preempted++
				e.preempts++
				e.trPhaseEnd(req)
				e.trMark(req, obs.MarkPreempt)
				e.trPhaseBegin(req, obs.PhaseQueue, -1)
				req.ctx = req.ctxForPrefill()
				e.prefillQ.push(req)
			} else {
				keep = append(keep, req)
			}
		}
		for i := len(keep); i < len(d.active); i++ {
			d.active[i] = nil
		}
		d.active = keep
	}
	e.startStep(inst)
	return nil
}

func errNoVictim(inst int) error {
	return fmt.Errorf("servesim: KV exhausted with no preemption victim on instance %d", inst)
}

// pickVictim selects the latest-admitted unfinished active request
// other than the growing one (and not already preempted this step,
// i.e. not carrying the current generation mark) — the vLLM recompute
// policy: evict the newest work, keep the oldest streams running.
func (e *Engine) pickVictim(d *decodeUnit, grower *reqState, gen int) *reqState {
	var victim *reqState
	for _, req := range d.active {
		if req == grower || req.preemptMark == gen || req.pages == 0 {
			continue
		}
		if victim == nil || req.admitSeq > victim.admitSeq {
			victim = req
		}
	}
	return victim
}

func (e *Engine) notePeakOcc() {
	var used, total int
	for i := range e.decodes {
		used += e.decodes[i].kv.used
		total += e.decodes[i].kv.total
	}
	if total == 0 {
		return
	}
	if occ := float64(used) / float64(total); occ > e.peakOcc {
		e.peakOcc = occ
	}
}

// noteHealth tracks fleet degradation across one instance's health
// transition, opening/closing the degraded span that splits SLO
// attainment by fault epoch.
func (e *Engine) noteHealth(from, to healthState) {
	wasUp, isUp := from == healthUp, to == healthUp
	if wasUp == isUp {
		return
	}
	if isUp {
		e.downCount--
		if e.downCount == 0 {
			e.spans = append(e.spans, faultSpan{start: e.degradedSince, end: e.now})
		}
		return
	}
	if e.downCount == 0 {
		e.degradedSince = e.now
	}
	e.downCount++
}

// applyFault applies one fault transition to an instance. Crashing a
// down instance, recovering an up one, or draining a non-up one are
// no-ops, so fault scripts compose without ordering hazards.
func (e *Engine) applyFault(kind FaultKind, prefill bool, inst int) {
	if prefill {
		p := &e.prefills[inst]
		switch kind {
		case FaultCrash:
			if !p.health.dead() {
				e.crashPrefill(inst)
			}
		case FaultRecover:
			if p.health != healthUp {
				e.trIncident(true, inst, "recover")
			}
			e.noteHealth(p.health, healthUp)
			p.health = healthUp
		case FaultDrain:
			if p.health.servable() {
				e.trIncident(true, inst, "drain")
				e.noteHealth(p.health, healthDraining)
				p.health = healthDraining
			}
		}
		e.recountIdlePrefills()
		return
	}
	d := &e.decodes[inst]
	switch kind {
	case FaultCrash:
		if !d.health.dead() {
			e.crashDecode(inst)
		}
	case FaultRecover:
		if d.health != healthUp {
			e.trIncident(false, inst, "recover")
		}
		e.noteHealth(d.health, healthUp)
		d.health = healthUp
		if e.hz.on {
			// A repaired instance re-earns its reputation: stale EWMA
			// state must not re-drain it on its first steps back.
			e.hz.grayDrained[inst] = false
			e.hz.ewma[inst] = 0
			e.hz.ewmaSteps[inst] = 0
		}
	case FaultDrain:
		if d.health.servable() {
			e.trIncident(false, inst, "drain")
			e.noteHealth(d.health, healthDraining)
			d.health = healthDraining
		}
	}
}

// randomCrash fires one MTBF-drawn crash: a uniform random instance
// (already-down victims waste the draw — the hazard does not
// concentrate on survivors), auto-repaired after an MTTR dwell, then
// re-arms the next crash. All draws come from the fault stream in a
// fixed order, so the schedule is a pure function of the seed.
func (e *Engine) randomCrash() {
	plan := e.cfg.Resilience.Faults
	n := len(e.prefills) + len(e.decodes)
	pick := e.faultRng.Intn(n)
	var repair units.Seconds
	if plan.MTTR > 0 {
		repair = e.faultRng.ExpFloat64() * plan.MTTR
	}
	if pick < len(e.prefills) {
		if p := &e.prefills[pick]; !p.health.dead() {
			e.crashPrefill(pick)
			if repair > 0 {
				e.schedule(e.now+repair, evFaultRecover, -(pick + 1), nil)
			}
		}
	} else {
		pick -= len(e.prefills)
		if d := &e.decodes[pick]; !d.health.dead() {
			e.crashDecode(pick)
			if repair > 0 {
				e.schedule(e.now+repair, evFaultRecover, pick, nil)
			}
		}
	}
	e.schedule(e.now+e.faultRng.ExpFloat64()*plan.MTBF, evFaultRandom, 0, nil)
}

// crashPrefill kills a prefill instance: the in-flight prefill (if any)
// is orphaned — its partially built KV counts as lost tokens — and the
// epoch bump invalidates the matching evPrefillDone still in the heap.
func (e *Engine) crashPrefill(inst int) {
	p := &e.prefills[inst]
	e.trIncident(true, inst, "crash")
	inc := Incident{At: e.now, Instance: inst, Prefill: true, Kind: "crash"}
	if p.busy && p.cur != nil {
		inc.Orphaned++
		inc.KVTokensLost += p.cur.ctxForPrefill()
		e.orphan(p.cur)
	}
	p.cur = nil
	p.busy = false
	p.epoch++
	e.noteHealth(p.health, healthDown)
	p.health = healthDown
	e.kvLost += inc.KVTokensLost
	e.incidents = append(e.incidents, inc)
	e.recountIdlePrefills()
}

// recountIdlePrefills rebuilds the dispatch candidate count after a
// fault transition (rare; the hot paths maintain it incrementally).
func (e *Engine) recountIdlePrefills() {
	n := 0
	for i := range e.prefills {
		if p := &e.prefills[i]; !p.busy && p.health.servable() {
			n++
		}
	}
	e.idlePrefills = n
}

// crashDecode kills a decode (or colocated) instance: the active batch,
// the landing queue and any stall-the-world prefill are orphaned, the
// KV pool is freed wholesale, and the epoch bump invalidates the
// instance's in-flight evStepDone/evPrefillDone events.
func (e *Engine) crashDecode(inst int) {
	d := &e.decodes[inst]
	e.trIncident(false, inst, "crash")
	inc := Incident{At: e.now, Instance: inst, Kind: "crash"}
	for _, req := range d.active {
		inc.Orphaned++
		inc.KVTokensLost += req.ctx
		e.orphan(req)
	}
	clearPtrs(d.active)
	d.active = d.active[:0]
	for _, req := range d.reloads {
		// In-flight reloads hold pages on the crashed pool and count as
		// KV-resident context lost.
		inc.Orphaned++
		inc.KVTokensLost += req.ctx
		e.orphan(req)
	}
	clearPtrs(d.reloads)
	d.reloads = d.reloads[:0]
	for d.pending.len() > 0 {
		// Landed requests hold no pages yet; they are affected but add
		// no KV loss.
		inc.Orphaned++
		e.orphan(d.pending.pop())
	}
	d.pending.reset()
	if d.prefilling && d.prefillReq != nil {
		inc.Orphaned++
		inc.KVTokensLost += d.prefillReq.ctxForPrefill()
		e.orphan(d.prefillReq)
	}
	d.prefillReq = nil
	d.prefilling = false
	d.stepping = false
	d.kv.used = 0
	d.epoch++
	e.noteHealth(d.health, healthDown)
	d.health = healthDown
	e.kvLost += inc.KVTokensLost
	e.incidents = append(e.incidents, inc)
}

// orphan routes one crash-dropped request through the retry policy:
// requeue after backoff while budget remains, otherwise fail it. The
// request's pages are gone either way (the crashed pool was freed
// wholesale), so a retried request re-prefills its whole context —
// recompute, exactly like a preemption victim.
func (e *Engine) orphan(req *reqState) {
	if req.hstate == hzLost {
		// A losing hedge copy swept up in a crash: its race already
		// resolved, so it just disappears (pages were freed wholesale).
		e.hier.forget(req)
		req.pages = 0
		e.hedgeDrop(req)
		return
	}
	e.hier.forget(req)
	req.pages = 0
	e.affected++
	e.trPhaseEnd(req)
	e.trMark(req, obs.MarkOrphan)
	if req.retries < e.cfg.Resilience.Retry.MaxRetries {
		if req.retries == 0 {
			e.retried++
		}
		req.retries++
		e.retries++
		e.trPhaseBegin(req, obs.PhaseBackoff, -1)
		e.schedule(e.now+e.cfg.Resilience.Retry.delay(req.retries), evRetry, 0, req)
		return
	}
	// Retry budget exhausted. A copy whose twin still races is absorbed
	// — the request's fate rides on the surviving copy — instead of
	// failing a request that may yet complete.
	if e.hedgeOrphanAbsorbed(req) {
		return
	}
	req.done = e.now
	if e.hedge.on {
		req.hstate = hzDone
		if t := req.twin; t != nil && t.hstate == hzAbandoned {
			t.hstate = hzDone
		}
	}
	e.trMark(req, obs.MarkFailed)
	e.failed = append(e.failed, req)
}

// sampleUpTo records timeline points for every sampling instant that
// has passed; state between events is constant, so carrying the
// current snapshot forward is exact.
//
// The horizon is only an estimate from the offered traffic, so an
// overloaded run can outlive it many times over. When the buffer fills,
// resolution is halved in place — keep every second point, double the
// stride — rather than truncating: a truncated timeline stops mid-run
// and biases MeanKVOccupancy toward the warm-up window, while
// decimation keeps the samples spanning the whole makespan at a coarser
// (still uniform) grid.
func (e *Engine) sampleUpTo(t units.Seconds) {
	for e.nextSample <= t {
		if len(e.samples) >= 4*timelineSamples {
			keep := len(e.samples) / 2
			for i := 0; i < keep; i++ {
				e.samples[i] = e.samples[2*i+1]
			}
			e.samples = e.samples[:keep]
			e.sampleStep *= 2
			e.nextSample = e.samples[keep-1].Time + e.sampleStep
			continue
		}
		batch, used, total := e.fleetSnapshot()
		occ := 0.0
		if total > 0 {
			occ = float64(used) / float64(total)
		}
		e.samples = append(e.samples, TimelinePoint{
			Time:        e.nextSample,
			ActiveBatch: batch,
			KVOccupancy: occ,
		})
		e.nextSample += e.sampleStep
	}
}

// fleetSnapshot totals the decode fleet's instantaneous state — the
// running batch and KV pool usage — shared by the timeline sampler and
// the metrics registry (fillMetrics).
func (e *Engine) fleetSnapshot() (batch, used, total int) {
	if e.sharded {
		m := &e.mirror
		return m.batchSum, m.usedSum, m.totalSum
	}
	for i := range e.decodes {
		d := &e.decodes[i]
		batch += len(d.active)
		used += d.kv.used
		total += d.kv.total
	}
	return batch, used, total
}
