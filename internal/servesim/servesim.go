// Package servesim is a deterministic discrete-event simulator of an
// LLM serving cluster under request-level traffic — the paper's
// inference analyses (§2.1.2 KV pressure, §2.3.2 EP decode ceiling,
// §2.3.3 MTP) lifted from steady-state formulas to TTFT/TPOT/goodput
// under load, in the spirit of the DeepSeek-V3 production deployment:
// disaggregated prefill and decode instances, continuous batching, and
// a paged MLA-sized KV cache with admission and preemption.
//
// Determinism contract: a (Config, Workload) pair with a fixed Seed
// produces a byte-identical Report (and JSON encoding) on every run.
// The event loop is single-threaded, events are ordered by (time,
// sequence), every scheduling decision is a pure function of simulator
// state, and all randomness flows from parallel.NewRand streams.
// Sweeps fan the per-point engines out over internal/parallel with
// seeds derived per index, so parallel sweep execution is invisible —
// the same guarantee the experiment suite asserts byte-for-byte.
package servesim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"dsv3/internal/mtp"
	"dsv3/internal/parallel"
	"dsv3/internal/units"
)

// SLO is the latency service-level objective a request must meet to
// count toward goodput.
type SLO struct {
	TTFT units.Seconds // time to first token
	TPOT units.Seconds // mean time per output token
}

// DefaultSLO returns the evaluation SLO: first token within 1 s, then
// at least 50 tokens/s sustained.
func DefaultSLO() SLO { return SLO{TTFT: 1.0, TPOT: 20 * units.Millisecond} }

// Config describes the serving cluster.
type Config struct {
	Latency LatencyModel

	// PrefillInstances and DecodeInstances size the disaggregated
	// deployment. Under Colocated the two pools merge into
	// PrefillInstances+DecodeInstances unified instances that both
	// prefill and decode.
	PrefillInstances int
	DecodeInstances  int
	Colocated        bool
	// ColocatedStride is the minimum number of decode steps a
	// colocated instance runs between stall-the-world prefills (the
	// decode-SLO-protecting policy; a prefill also runs whenever the
	// instance has nothing to decode). Default 4.
	ColocatedStride int

	// MaxBatch caps the continuous-batching decode batch per instance.
	MaxBatch int
	// KV sizes the per-instance paged KV pool.
	KV KVConfig
	// TransferBW is the prefill->decode KV migration bandwidth; 0
	// makes the hand-off instantaneous.
	TransferBW units.BytesPerSecond

	// MTP enables speculative decoding: each step costs
	// MTP.StepCost() x the base step and every request draws up to
	// MTP.Modules extra accepted tokens per step. Nil disables.
	MTP *mtp.Config

	// Router selects the instance-selection policy applied to both
	// prefill dispatch and the prefill->decode hand-off. The zero value
	// (RouteLeastKV) reproduces the historical routing. Colocated
	// instances pull work from the shared queue themselves, so the
	// policy has no effect under Colocated.
	Router RouterPolicy

	SLO  SLO
	Seed int64
}

// V3ServeConfig returns a small reference deployment: the V3 latency
// model, 2 prefill + 4 decode instances, batch 64, FP8 paged KV in
// 64 GB of HBM per instance.
func V3ServeConfig() Config {
	l := V3LatencyModel()
	return Config{
		Latency:          l,
		PrefillInstances: 2,
		DecodeInstances:  4,
		ColocatedStride:  4,
		MaxBatch:         64,
		KV: KVConfig{
			CapacityBytes: 64 * units.GB,
			PageTokens:    64,
			BytesPerElem:  l.KVBytesPerElem,
		},
		TransferBW: 50 * units.GB,
		SLO:        DefaultSLO(),
		Seed:       1,
	}
}

// Validate checks the configuration against a workload.
func (c Config) Validate(w Workload) error {
	if err := c.Latency.Validate(); err != nil {
		return err
	}
	if err := c.KV.Validate(); err != nil {
		return err
	}
	if err := w.Validate(); err != nil {
		return err
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("servesim: max batch must be positive, got %d", c.MaxBatch)
	}
	if c.PrefillInstances < 0 || c.DecodeInstances < 0 {
		return fmt.Errorf("servesim: negative instance counts %d+%d", c.PrefillInstances, c.DecodeInstances)
	}
	if c.Colocated {
		if c.PrefillInstances+c.DecodeInstances <= 0 {
			return fmt.Errorf("servesim: colocated cluster needs at least one instance")
		}
	} else if c.PrefillInstances <= 0 || c.DecodeInstances <= 0 {
		return fmt.Errorf("servesim: disaggregated cluster needs prefill and decode instances, got %d+%d",
			c.PrefillInstances, c.DecodeInstances)
	}
	if c.MTP != nil {
		if err := c.MTP.Validate(); err != nil {
			return err
		}
	}
	if err := c.Router.Validate(); err != nil {
		return err
	}
	// A single worst-case request must fit in one instance's KV pool,
	// or preemption could livelock with no victim to evict.
	total := c.KV.TotalPages(c.Latency.Model)
	if need := c.KV.PagesFor(w.maxContextTokens()); need > total {
		return fmt.Errorf("servesim: KV pool (%d pages) cannot hold one worst-case request (%d pages)", total, need)
	}
	return nil
}

// Event kinds, processed in (time, seq) order.
type eventKind int

const (
	evArrival eventKind = iota
	evPrefillDone
	evDecodeLand
	evStepDone
)

type event struct {
	at   units.Seconds
	seq  int
	kind eventKind
	inst int // prefill instance (evPrefillDone), decode instance (evDecodeLand, evStepDone)
	req  *reqState
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// reqState tracks one request through the pipeline.
type reqState struct {
	Request
	// generated counts emitted tokens (the prefill-produced first
	// token included); remaining = OutputTokens - generated.
	generated int
	// ctx is the KV-resident context length (prompt + generated-1
	// decode-written tokens, approximated as prompt + generated).
	ctx   int
	pages int
	// resumed marks a preempted request re-running prefill to rebuild
	// its KV (recompute); its first token was already emitted.
	resumed    bool
	preempted  int
	firstToken units.Seconds
	done       units.Seconds
	admitSeq   int // admission order on the decode instance (preemption priority)
}

func (r *reqState) remaining() int { return r.OutputTokens - r.generated }

// prefillUnit is one prefill (or the prefill half of a colocated)
// instance.
type prefillUnit struct {
	busy bool
}

// decodeUnit is one decode (or colocated) instance.
type decodeUnit struct {
	active   []*reqState
	pending  []*reqState // landed, waiting for batch slot + KV pages
	kv       *kvPool
	stepping bool
	// colocated bookkeeping
	prefilling   bool
	sincePrefill int
	admitCounter int
}

type engine struct {
	cfg  Config
	rng  *rand.Rand
	now  units.Seconds
	seq  int
	heap eventHeap

	prefillQ []*reqState
	prefills []*prefillUnit // empty when colocated
	decodes  []*decodeUnit

	// One router instance per decision point, so per-policy state
	// (round-robin cursors, the p2c stream) never couples prefill
	// dispatch to the decode hand-off.
	prefillRouter Router
	decodeRouter  Router
	loads         []InstanceLoad // candidate scratch, reused per decision

	mtpFactor float64

	// metrics accumulation
	completed  []*reqState
	preempts   int
	steps      int
	stepBatch  int
	stepTokens int
	peakOcc    float64
	samples    []TimelinePoint
	nextSample units.Seconds
	sampleStep units.Seconds
}

// Run simulates the workload on the cluster and reports request-level
// latency, goodput, and occupancy metrics.
func Run(cfg Config, w Workload) (*Report, error) {
	if cfg.ColocatedStride <= 0 {
		cfg.ColocatedStride = 4
	}
	if err := cfg.Validate(w); err != nil {
		return nil, err
	}
	reqs := w.Generate(parallel.DeriveSeed(cfg.Seed, 0))

	// Seed-stream layout: 0 workload, 1 engine (MTP acceptance), 2/3
	// the routing streams. Routing draws never touch the engine stream,
	// so switching policies cannot perturb speculative decoding.
	e := &engine{
		cfg:           cfg,
		rng:           parallel.NewRand(parallel.DeriveSeed(cfg.Seed, 1)),
		prefillRouter: NewRouter(cfg.Router, parallel.DeriveSeed(cfg.Seed, 2)),
		decodeRouter:  NewRouter(cfg.Router, parallel.DeriveSeed(cfg.Seed, 3)),
		mtpFactor:     1,
	}
	if cfg.MTP != nil {
		e.mtpFactor = cfg.MTP.StepCost()
	}
	nPrefill, nDecode := cfg.PrefillInstances, cfg.DecodeInstances
	if cfg.Colocated {
		nDecode = cfg.PrefillInstances + cfg.DecodeInstances
		nPrefill = 0
	}
	for i := 0; i < nPrefill; i++ {
		e.prefills = append(e.prefills, &prefillUnit{})
	}
	for i := 0; i < nDecode; i++ {
		e.decodes = append(e.decodes, &decodeUnit{kv: newKVPool(cfg.KV, cfg.Latency.Model)})
	}

	// Sample the batch/occupancy timeline on a horizon estimated from
	// the offered traffic; sampling is clocked off event times only, so
	// it never perturbs the simulation.
	horizon := reqs[len(reqs)-1].Arrival + 1
	e.sampleStep = horizon / timelineSamples
	if e.sampleStep <= 0 {
		e.sampleStep = 1
	}
	e.nextSample = e.sampleStep

	for i := range reqs {
		rs := &reqState{Request: reqs[i]}
		e.schedule(rs.Arrival, evArrival, 0, rs)
	}
	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(*event)
		e.now = ev.at
		e.sampleUpTo(e.now)
		switch ev.kind {
		case evArrival:
			e.prefillQ = append(e.prefillQ, ev.req)
		case evPrefillDone:
			e.prefillDone(ev)
		case evDecodeLand:
			d := e.decodes[ev.inst]
			d.pending = append(d.pending, ev.req)
			if !d.stepping && !d.prefilling {
				e.startStep(ev.inst)
			}
		case evStepDone:
			if err := e.stepDone(ev.inst); err != nil {
				return nil, err
			}
		}
		e.dispatch()
	}
	if len(e.completed) != len(reqs) {
		return nil, fmt.Errorf("servesim: %d of %d requests never completed (scheduling stall)",
			len(reqs)-len(e.completed), len(reqs))
	}
	return e.report(), nil
}

func (e *engine) schedule(at units.Seconds, kind eventKind, inst int, req *reqState) {
	e.seq++
	heap.Push(&e.heap, &event{at: at, seq: e.seq, kind: kind, inst: inst, req: req})
}

// dispatch hands queued prefill work to idle capacity. It runs after
// every event so newly queued (or preempted) requests and newly idle
// instances always meet. Disaggregated prefill assignment goes through
// the prefill router over the idle candidate set; colocated instances
// pull from the shared queue themselves (startStep), so only the fixed
// scan order applies there. Every path is deterministic.
func (e *engine) dispatch() {
	if e.cfg.Colocated {
		for i, d := range e.decodes {
			if len(e.prefillQ) == 0 {
				return
			}
			if !d.stepping && !d.prefilling {
				e.startStep(i)
			}
		}
		return
	}
	idle := e.loads[:0]
	for i, p := range e.prefills {
		if !p.busy {
			idle = append(idle, InstanceLoad{Instance: i})
		}
	}
	for len(e.prefillQ) > 0 && len(idle) > 0 {
		k := e.prefillRouter.Pick(idle)
		inst := idle[k].Instance
		idle = append(idle[:k], idle[k+1:]...)
		req := e.prefillQ[0]
		e.prefillQ = e.prefillQ[1:]
		e.prefills[inst].busy = true
		e.schedule(e.now+e.cfg.Latency.PrefillTime(req.ctxForPrefill()), evPrefillDone, inst, req)
	}
	e.loads = idle[:0]
}

// ctxForPrefill is the context a (re-)prefill must process: the prompt
// plus, after a preemption, every token generated so far (recompute).
func (r *reqState) ctxForPrefill() int {
	return r.PromptTokens + r.generated
}

// prefillDone completes a prefill: the request's first token is
// emitted here (prefill computes the logits of token one), then the
// KV moves to a decode instance.
func (e *engine) prefillDone(ev *event) {
	req := ev.req
	if e.cfg.Colocated {
		e.colocatedPrefillDone(ev.inst, req)
		return
	}
	e.prefills[ev.inst].busy = false
	e.emitFirstToken(req)
	if req.remaining() == 0 {
		e.complete(req)
		return
	}
	// Route to a decode instance via the configured policy (least-KV
	// by default), after the KV migration delay.
	loads := e.loads[:0]
	for i, d := range e.decodes {
		loads = append(loads, InstanceLoad{
			Instance: i,
			Queue:    len(d.pending) + len(d.active),
			FreeKV:   d.kv.free(),
		})
	}
	best := loads[e.decodeRouter.Pick(loads)].Instance
	e.loads = loads[:0]
	var transfer units.Seconds
	if e.cfg.TransferBW > 0 {
		transfer = e.cfg.Latency.KVBytesForContext(req.ctx) / e.cfg.TransferBW
	}
	e.schedule(e.now+transfer, evDecodeLand, best, req)
}

func (e *engine) emitFirstToken(req *reqState) {
	req.ctx = req.ctxForPrefill()
	if !req.resumed {
		req.firstToken = e.now
		req.generated = 1
		req.ctx = req.PromptTokens + 1
	}
}

func (e *engine) complete(req *reqState) {
	req.done = e.now
	e.completed = append(e.completed, req)
}

// startStep begins the next unit of work on a decode instance: for a
// colocated instance possibly a stall-the-world prefill, otherwise
// admission plus one continuous-batching decode step.
func (e *engine) startStep(inst int) {
	d := e.decodes[inst]

	if e.cfg.Colocated && len(e.prefillQ) > 0 && len(d.active) < e.cfg.MaxBatch &&
		(len(d.active) == 0 || d.sincePrefill >= e.cfg.ColocatedStride) {
		req := e.prefillQ[0]
		// A colocated request decodes in place, so reserve its full
		// final context up front (conservative policy: a stall-the-
		// world prefill must never later become an unpreemptable
		// grower). If the pool is full the prefill waits for
		// completions to free pages.
		pages := e.cfg.KV.PagesFor(req.PromptTokens + req.OutputTokens)
		if d.kv.tryAlloc(pages) {
			e.prefillQ = e.prefillQ[1:]
			req.pages = pages
			d.prefilling = true
			e.notePeakOcc()
			e.schedule(e.now+e.cfg.Latency.PrefillTime(req.ctxForPrefill()), evPrefillDone, inst, req)
			return
		}
	}

	// Admit landed requests in FIFO order while batch slots and KV
	// pages allow; the head of the queue blocks (no reordering). Only
	// disaggregated instances have a landing queue — colocated requests
	// join the batch directly from their stall-the-world prefill
	// (colocatedPrefillDone), so d.pending is never populated under
	// Colocated.
	if !e.cfg.Colocated {
		for len(d.active) < e.cfg.MaxBatch && len(d.pending) > 0 {
			req := d.pending[0]
			pages := e.cfg.KV.PagesFor(req.ctx)
			if !d.kv.tryAlloc(pages) {
				break
			}
			req.pages = pages
			d.admitCounter++
			req.admitSeq = d.admitCounter
			d.pending = d.pending[1:]
			d.active = append(d.active, req)
			e.notePeakOcc()
		}
	}
	if len(d.active) == 0 {
		d.stepping = false
		return
	}

	var attn batchAttention
	for _, req := range d.active {
		e.cfg.Latency.addContext(&attn, req.ctx)
	}
	dt := e.cfg.Latency.DecodeStepTime(len(d.active), attn) * e.mtpFactor
	d.stepping = true
	d.sincePrefill++
	e.steps++
	e.stepBatch += len(d.active)
	e.schedule(e.now+dt, evStepDone, inst, nil)
}

// colocatedPrefillDone finishes a stall-the-world prefill on a
// colocated instance: the request joins that instance's batch directly
// (its KV pages were reserved at prefill start).
func (e *engine) colocatedPrefillDone(inst int, req *reqState) {
	d := e.decodes[inst]
	d.prefilling = false
	d.sincePrefill = 0
	e.emitFirstToken(req)
	if req.remaining() == 0 {
		d.kv.release(req.pages)
		req.pages = 0
		e.complete(req)
	} else {
		d.admitCounter++
		req.admitSeq = d.admitCounter
		d.active = append(d.active, req)
	}
	e.startStep(inst)
}

// stepDone advances every active request by one decode iteration:
// token emission (plus MTP-accepted drafts), then completion, then KV
// growth with preemption on pool exhaustion. Finished requests release
// their pages before anyone grows, so a request that just emitted its
// last token can never be chosen as a preemption victim.
func (e *engine) stepDone(inst int) error {
	d := e.decodes[inst]
	for _, req := range d.active {
		emitted := 1
		if c := e.cfg.MTP; c != nil {
			for i := 0; i < c.Modules && req.generated+emitted < req.OutputTokens; i++ {
				if e.rng.Float64() >= c.Acceptance {
					break
				}
				emitted++
			}
		}
		if emitted > req.remaining() {
			emitted = req.remaining()
		}
		req.generated += emitted
		e.stepTokens += emitted
		req.ctx += emitted
	}

	unfinished := d.active[:0]
	for _, req := range d.active {
		if req.remaining() == 0 {
			d.kv.release(req.pages)
			req.pages = 0
			e.complete(req)
		} else {
			unfinished = append(unfinished, req)
		}
	}
	for i := len(unfinished); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = unfinished

	preempted := make(map[*reqState]bool)
	for _, req := range d.active {
		if preempted[req] {
			continue
		}
		if need := e.cfg.KV.PagesFor(req.ctx) - req.pages; need > 0 {
			for !d.kv.tryAlloc(need) {
				victim := e.pickVictim(d, req, preempted)
				if victim == nil {
					return fmt.Errorf("servesim: KV exhausted with no preemption victim on instance %d", inst)
				}
				preempted[victim] = true
				d.kv.release(victim.pages)
				victim.pages = 0
			}
			req.pages += need
			e.notePeakOcc()
		}
	}

	if len(preempted) > 0 {
		keep := d.active[:0]
		for _, req := range d.active {
			if preempted[req] {
				// Recompute-style preemption: pages are gone, the
				// request re-prefills prompt + generated tokens, then
				// resumes.
				req.resumed = true
				req.preempted++
				e.preempts++
				req.ctx = req.ctxForPrefill()
				e.prefillQ = append(e.prefillQ, req)
			} else {
				keep = append(keep, req)
			}
		}
		for i := len(keep); i < len(d.active); i++ {
			d.active[i] = nil
		}
		d.active = keep
	}
	e.startStep(inst)
	return nil
}

// pickVictim selects the latest-admitted unfinished active request
// other than the growing one (and not already preempted this step) —
// the vLLM recompute policy: evict the newest work, keep the oldest
// streams running.
func (e *engine) pickVictim(d *decodeUnit, grower *reqState, preempted map[*reqState]bool) *reqState {
	var victim *reqState
	for _, req := range d.active {
		if req == grower || preempted[req] || req.pages == 0 {
			continue
		}
		if victim == nil || req.admitSeq > victim.admitSeq {
			victim = req
		}
	}
	return victim
}

func (e *engine) notePeakOcc() {
	var used, total int
	for _, d := range e.decodes {
		used += d.kv.used
		total += d.kv.total
	}
	if total == 0 {
		return
	}
	if occ := float64(used) / float64(total); occ > e.peakOcc {
		e.peakOcc = occ
	}
}

// sampleUpTo records timeline points for every sampling instant that
// has passed; state between events is constant, so carrying the
// current snapshot forward is exact.
//
// The horizon is only an estimate from the offered traffic, so an
// overloaded run can outlive it many times over. When the buffer fills,
// resolution is halved in place — keep every second point, double the
// stride — rather than truncating: a truncated timeline stops mid-run
// and biases MeanKVOccupancy toward the warm-up window, while
// decimation keeps the samples spanning the whole makespan at a coarser
// (still uniform) grid.
func (e *engine) sampleUpTo(t units.Seconds) {
	for e.nextSample <= t {
		if len(e.samples) >= 4*timelineSamples {
			keep := len(e.samples) / 2
			for i := 0; i < keep; i++ {
				e.samples[i] = e.samples[2*i+1]
			}
			e.samples = e.samples[:keep]
			e.sampleStep *= 2
			e.nextSample = e.samples[keep-1].Time + e.sampleStep
			continue
		}
		var batch int
		var used, total int
		for _, d := range e.decodes {
			batch += len(d.active)
			used += d.kv.used
			total += d.kv.total
		}
		occ := 0.0
		if total > 0 {
			occ = float64(used) / float64(total)
		}
		e.samples = append(e.samples, TimelinePoint{
			Time:        e.nextSample,
			ActiveBatch: batch,
			KVOccupancy: occ,
		})
		e.nextSample += e.sampleStep
	}
}
