package servesim

import (
	"encoding/json"
	"strings"
	"testing"

	"dsv3/internal/units"
)

// crashPlan schedules one decode crash with repair — the reference
// incident used across the fault tests.
func crashPlan(inst int, at, repair units.Seconds) *FaultPlan {
	return &FaultPlan{Events: []FaultEvent{
		{At: at, Kind: FaultCrash, Instance: inst},
		{At: repair, Kind: FaultRecover, Instance: inst},
	}}
}

// The determinism contract extends to faulted runs: same seed, config
// and plan must reproduce the report — incidents included — byte for
// byte, and a faulted run must differ from the clean one.
func TestFaultDeterminism(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Faults = crashPlan(1, 6, 14)
	cfg.Resilience.Retry = DefaultRetryPolicy()
	w := testWorkload(5, 150)
	a, err := json.Marshal(mustRun(t, cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mustRun(t, cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("faulted runs diverged:\n%s\n%s", a, b)
	}
	clean := cfg
	clean.Resilience.Faults = nil
	c, err := json.Marshal(mustRun(t, clean, w))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Error("faulted report identical to fault-free report")
	}
}

// MTBF-style random injection must also reproduce byte for byte: the
// fault RNG is its own seed stream, untouched by workload and routing.
func TestRandomFaultDeterminism(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.Resilience.Faults = &FaultPlan{MTBF: 8, MTTR: 2}
	cfg.Resilience.Retry = DefaultRetryPolicy()
	w := testWorkload(5, 120)
	a, err := json.Marshal(mustRun(t, cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mustRun(t, cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("random-fault runs diverged")
	}
}

// Every offered request must be accounted for across completion,
// failure and shedding, and the crash's blast radius must show up in
// the incident log and the KV-loss counters.
func TestCrashBlastRadiusAccounting(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Faults = crashPlan(1, 6, 14)
	w := testWorkload(6, 150)
	r := mustRun(t, cfg, w)
	if r.Requests != w.Requests {
		t.Fatalf("offered %d, want %d", r.Requests, w.Requests)
	}
	if r.Completed+r.Failed+r.Shed != r.Requests {
		t.Fatalf("conservation: %d completed + %d failed + %d shed != %d offered",
			r.Completed, r.Failed, r.Shed, r.Requests)
	}
	if len(r.Incidents) != 1 {
		t.Fatalf("incidents %d, want 1", len(r.Incidents))
	}
	in := r.Incidents[0]
	if in.At != 6 || in.Instance != 1 || in.Prefill {
		t.Errorf("incident %+v, want d1 at t=6", in)
	}
	if in.Orphaned == 0 || in.KVTokensLost == 0 {
		t.Errorf("crash under load orphaned %d requests / %d tokens, want > 0", in.Orphaned, in.KVTokensLost)
	}
	if r.AffectedRequests < in.Orphaned || r.KVTokensLost != in.KVTokensLost {
		t.Errorf("report affected=%d kvLost=%d vs incident orphaned=%d kvLost=%d",
			r.AffectedRequests, r.KVTokensLost, in.Orphaned, in.KVTokensLost)
	}
	// Without a retry policy every orphan fails.
	if r.Failed != r.AffectedRequests {
		t.Errorf("no-retry run failed %d of %d affected", r.Failed, r.AffectedRequests)
	}
}

// A retry budget converts failures into retries: same incident, zero
// failed requests, amplification above 1.
func TestRetrySalvagesOrphans(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Faults = crashPlan(1, 6, 14)
	w := testWorkload(6, 150)
	base := mustRun(t, cfg, w)
	if base.Failed == 0 {
		t.Skip("crash orphaned nothing at this seed; accounting covered elsewhere")
	}
	cfg.Resilience.Retry = DefaultRetryPolicy()
	r := mustRun(t, cfg, w)
	if r.Failed != 0 {
		t.Errorf("failed %d with a 3-retry budget, want 0", r.Failed)
	}
	if r.Retried == 0 || r.Retries < r.Retried {
		t.Errorf("retried=%d retries=%d, want retried > 0 and retries >= retried", r.Retried, r.Retries)
	}
	if r.RetryAmplification <= 1 {
		t.Errorf("retry amplification %v, want > 1", r.RetryAmplification)
	}
	if r.Completed != r.Requests {
		t.Errorf("completed %d of %d with retries", r.Completed, r.Requests)
	}
}

// Draining is planned degradation: held work finishes (no orphans, no
// KV loss, no incident), but the instance takes no new work while
// drained, so load shifts relative to the clean run.
func TestDrainFinishesHeldWork(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	cfg.Resilience.Faults = &FaultPlan{Events: []FaultEvent{
		{At: 5, Kind: FaultDrain, Instance: 1},
		{At: 15, Kind: FaultRecover, Instance: 1},
	}}
	w := testWorkload(6, 150)
	r := mustRun(t, cfg, w)
	if len(r.Incidents) != 0 {
		t.Errorf("drain produced %d incidents, want 0", len(r.Incidents))
	}
	if r.Failed != 0 || r.AffectedRequests != 0 || r.KVTokensLost != 0 {
		t.Errorf("drain lost work: failed=%d affected=%d kvLost=%d", r.Failed, r.AffectedRequests, r.KVTokensLost)
	}
	if r.Completed != r.Requests {
		t.Errorf("completed %d of %d under drain", r.Completed, r.Requests)
	}
}

// Queue-depth admission keeps the prefill backlog bounded under
// overload: arrivals past the cap are shed, and the admitted requests'
// TTFT tail stays below the admit-all run's.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.KV.HBM.CapacityBytes = 0.4e9
	w := testWorkload(14, 200)
	base := mustRun(t, cfg, w)
	cfg.Resilience.Admission = AdmissionPolicy{MaxQueueDepth: 16}
	r := mustRun(t, cfg, w)
	if r.Shed == 0 {
		t.Fatal("overloaded run shed nothing at queue cap 16")
	}
	if r.Completed+r.Shed != r.Requests {
		t.Errorf("conservation: %d completed + %d shed != %d", r.Completed, r.Shed, r.Requests)
	}
	if r.TTFT.P99 >= base.TTFT.P99 {
		t.Errorf("shedding TTFT p99 %v not below admit-all %v", r.TTFT.P99, base.TTFT.P99)
	}
}

// A fully-drained fleet must not stall the simulator: requests whose
// prefill completes while every decode instance is unavailable are
// orphaned, and without retries they fail deterministically.
func TestFullyDrainedFleetFailsFast(t *testing.T) {
	cfg := V3ServeConfig()
	cfg.Fleet.PrefillInstances, cfg.Fleet.DecodeInstances = 1, 2
	cfg.Resilience.Faults = &FaultPlan{Events: []FaultEvent{
		{At: 0, Kind: FaultDrain, Instance: 0},
		{At: 0, Kind: FaultDrain, Instance: 1},
	}}
	w := testWorkload(4, 20)
	r := mustRun(t, cfg, w)
	if r.Completed != 0 || r.Failed != r.Requests {
		t.Errorf("drained fleet completed %d / failed %d of %d, want 0 / all", r.Completed, r.Failed, r.Requests)
	}
}

// Crashing an instance drains its pending fifo mid-queue; the fifo's
// clearPtrs/reset teardown must leave no request pointers behind in the
// recycled buffer.
func TestFifoTeardownLeavesNoPointers(t *testing.T) {
	var f fifo
	reqs := make([]reqState, 6)
	for i := range reqs {
		f.push(&reqs[i])
	}
	f.pop()
	f.pop() // head advanced mid-buffer, as after a partial drain
	f.reset()
	if f.len() != 0 || f.head != 0 {
		t.Fatalf("reset left len=%d head=%d", f.len(), f.head)
	}
	for i, p := range f.buf[:cap(f.buf)] {
		if p != nil {
			t.Fatalf("reset left request pointer at slot %d", i)
		}
	}
	// pop also nils the vacated slot so a long-lived queue never pins
	// request state it has already handed out.
	f.push(&reqs[0])
	f.push(&reqs[1])
	f.pop()
	if f.buf[0] != nil {
		t.Error("pop left the vacated slot pointing at a request")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Events: []FaultEvent{{At: -1, Kind: FaultCrash}}},
		{Events: []FaultEvent{{Kind: FaultKind(9)}}},
		{Events: []FaultEvent{{Kind: FaultCrash, Instance: 4}}},                // decode out of range
		{Events: []FaultEvent{{Kind: FaultCrash, Prefill: true, Instance: 2}}}, // prefill out of range
		{MTBF: -1},
		{RecoveryWindow: -1},
		{RecoveryBand: 1.5},
	}
	for i := range bad {
		cfg := V3ServeConfig()
		cfg.Resilience.Faults = &bad[i]
		if err := cfg.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, bad[i])
		}
	}
	// Colocated fleets have no prefill targets.
	cfg := V3ServeConfig()
	cfg.Fleet.Colocated = true
	cfg.Resilience.Faults = &FaultPlan{Events: []FaultEvent{{Kind: FaultCrash, Prefill: true}}}
	if err := cfg.Validate(); err == nil {
		t.Error("prefill fault target accepted on a colocated cluster")
	}
	// ...but their merged instance space covers prefill+decode.
	cfg.Resilience.Faults = &FaultPlan{Events: []FaultEvent{{Kind: FaultCrash, Instance: 5}}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("colocated instance 5 of 2P+4D rejected: %v", err)
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := DefaultRetryPolicy()
	want := []units.Seconds{0.25, 0.5, 1, 2, 4, 4}
	for i, w := range want {
		if got := p.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if (RetryPolicy{MaxRetries: -1}).Validate() == nil {
		t.Error("negative retry budget validated")
	}
	if (RetryPolicy{Backoff: -1}).Validate() == nil {
		t.Error("negative backoff validated")
	}
}

func TestParseFaultEvents(t *testing.T) {
	evs, err := ParseFaultEvents("crash@8:d1, recover@16:d1, drain@2:p0")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{At: 8, Kind: FaultCrash, Instance: 1},
		{At: 16, Kind: FaultRecover, Instance: 1},
		{At: 2, Kind: FaultDrain, Prefill: true},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	for _, bad := range []string{"", "crash@8", "melt@8:d1", "crash@x:d1", "crash@8:q1", "crash@8:d"} {
		if _, err := ParseFaultEvents(bad); err == nil {
			t.Errorf("ParseFaultEvents(%q) succeeded, want error", bad)
		}
	}
}

func TestParseAdmissionPolicy(t *testing.T) {
	a, err := ParseAdmissionPolicy("queue=32, kv=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxQueueDepth != 32 || a.MaxKVOccupancy != 0.9 {
		t.Errorf("parsed %+v", a)
	}
	if a.String() != "queue=32,kv=0.9" {
		t.Errorf("String() = %q", a.String())
	}
	if (AdmissionPolicy{}).String() != "admit-all" {
		t.Errorf("zero policy String() = %q", AdmissionPolicy{}.String())
	}
	for _, bad := range []string{"queue", "depth=3", "queue=x", "kv=2", "queue=-1"} {
		if _, err := ParseAdmissionPolicy(bad); err == nil {
			t.Errorf("ParseAdmissionPolicy(%q) succeeded, want error", bad)
		}
	}
}

// ParseTrace rejects negative fields with the offending line number and
// surfaces scanner read errors instead of truncating silently.
func TestParseTraceRejectsNegativesAndReadErrors(t *testing.T) {
	cases := []struct{ in, frag string }{
		{"0,128,32\n-1,128,32\n", "line 2"},
		{"0,128,32\n1,-5,32\n", "line 2"},
		{"# header\n0,128,-2\n", "line 2"},
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseTrace(%q) err = %v, want mention of %s", c.in, err, c.frag)
		}
	}
	if _, err := ParseTrace(errReader{}); err == nil {
		t.Error("read error swallowed")
	}
}

// errReader fails after the first read, exercising the sc.Err() path.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errTruncated }

var errTruncated = &truncErr{}

type truncErr struct{}

func (*truncErr) Error() string { return "simulated read failure" }
