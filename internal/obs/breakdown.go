package obs

import (
	"dsv3/internal/results"
	"dsv3/internal/units"
)

// ReqBreakdown is one request's phase attribution: where its
// end-to-end latency went. Phases tile the request's lifetime
// contiguously, so the per-phase durations sum to Done-Arrival (exact
// up to float summation).
type ReqBreakdown struct {
	ID           int
	Session      int
	PromptTokens int
	OutputTokens int
	Arrival      units.Seconds
	Done         units.Seconds
	// Phases is indexed by Phase (PhaseQueue..PhaseBackoff).
	Phases [NumPhases]units.Seconds
	// Outcome is "completed", "failed", or "shed".
	Outcome string
	// Retries counts crash-orphaning retries; Preempts counts
	// preemption evictions (recompute or offload).
	Retries  int
	Preempts int
}

// E2E returns the request's end-to-end latency.
func (b *ReqBreakdown) E2E() units.Seconds { return b.Done - b.Arrival }

// PhaseSum returns the total attributed time across phases.
func (b *ReqBreakdown) PhaseSum() units.Seconds {
	var s units.Seconds
	for _, d := range b.Phases {
		s += d
	}
	return s
}

func outcomeName(m Mark) string {
	switch m {
	case MarkComplete:
		return "completed"
	case MarkFailed:
		return "failed"
	case MarkShed:
		return "shed"
	}
	return "unresolved"
}

// Breakdowns returns the per-request phase attribution for every
// resolved request of the traced run, ordered by request ID.
func (r *TraceRecorder) Breakdowns() []ReqBreakdown {
	out := make([]ReqBreakdown, 0, len(r.reqs))
	for i := range r.reqs {
		tr := &r.reqs[i]
		if !tr.seen || !tr.resolved {
			continue
		}
		out = append(out, ReqBreakdown{
			ID:           tr.info.ID,
			Session:      tr.info.Session,
			PromptTokens: tr.info.PromptTokens,
			OutputTokens: tr.info.OutputTokens,
			Arrival:      tr.arrival,
			Done:         tr.done,
			Phases:       tr.phases,
			Outcome:      outcomeName(tr.outcome),
			Retries:      tr.retries,
			Preempts:     tr.preempts,
		})
	}
	return out
}

// PhaseTable renders the per-request phase breakdown as a structured
// table (milliseconds per phase), the compact complement to the full
// trace-event export.
func (r *TraceRecorder) PhaseTable() *results.Table {
	t := results.NewTable("Per-request phase breakdown",
		results.C("Req"), results.C("Session"),
		results.CU("Prompt", "tok"), results.CU("Output", "tok"),
		results.CU("Queue", "ms"), results.CU("Prefill", "ms"),
		results.CU("Transfer", "ms"), results.CU("Reload", "ms"),
		results.CU("Decode", "ms"), results.CU("Backoff", "ms"),
		results.CU("E2E", "ms"), results.C("Retries"), results.C("Preempt"),
		results.C("Outcome"))
	ms := func(s units.Seconds) results.Cell { return results.Float("%.2f", s*1e3) }
	for _, b := range r.Breakdowns() {
		session := results.NA()
		if b.Session > 0 {
			session = results.Int(b.Session)
		}
		t.Row(results.Int(b.ID), session,
			results.Int(b.PromptTokens), results.Int(b.OutputTokens),
			ms(b.Phases[PhaseQueue]), ms(b.Phases[PhasePrefill]),
			ms(b.Phases[PhaseTransfer]), ms(b.Phases[PhaseReload]),
			ms(b.Phases[PhaseDecode]), ms(b.Phases[PhaseBackoff]),
			ms(b.E2E()), results.Int(b.Retries), results.Int(b.Preempts),
			results.Str(b.Outcome))
	}
	return t
}

// PhaseTotalsTable aggregates the breakdown across resolved requests:
// total and mean time per phase, plus the share of all attributed
// time — the where-did-the-time-go headline.
func (r *TraceRecorder) PhaseTotalsTable() *results.Table {
	t := results.NewTable("Phase totals across resolved requests",
		results.C("Phase"), results.CU("Total", "s"), results.CU("Mean", "ms"),
		results.CU("Share", "%"))
	var totals [NumPhases]units.Seconds
	n := 0
	for i := range r.reqs {
		tr := &r.reqs[i]
		if !tr.seen || !tr.resolved || tr.outcome == MarkShed {
			continue
		}
		n++
		for p := 0; p < NumPhases; p++ {
			totals[p] += tr.phases[p]
		}
	}
	var all units.Seconds
	for _, d := range totals {
		all += d
	}
	for p := 0; p < NumPhases; p++ {
		mean := results.NA()
		if n > 0 {
			mean = results.Float("%.2f", totals[p]/float64(n)*1e3)
		}
		share := results.NA()
		if all > 0 {
			share = results.Float("%.1f%%", totals[p]/all*100)
		}
		t.Row(results.Str(Phase(p).String()),
			results.Float("%.3f", totals[p]), mean, share)
	}
	return t
}
