package obs

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"dsv3/internal/results"
	"dsv3/internal/units"
)

// MetricKind distinguishes sampled metric semantics.
type MetricKind uint8

const (
	// Gauge samples an instantaneous level (queue depth, occupancy).
	Gauge MetricKind = iota
	// Counter samples a cumulative, monotonically non-decreasing total
	// (completions, retries, bytes moved).
	Counter
)

// String returns the kind's emitter name.
func (k MetricKind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// DefaultMetricsInterval is the sampling cadence used when a Registry
// is built with a non-positive interval.
const DefaultMetricsInterval units.Seconds = 0.5

// Registry is the time-series half of the observability layer: a flat
// set of gauges and counters sampled on a fixed simulated-time grid.
// The producer (the serving engine) registers its metric set at run
// start, then fills one row per grid instant via Due/Scratch/Commit;
// state between simulation events is constant, so carrying the current
// snapshot onto the grid is exact, not an approximation. Buffers are
// reused across runs (Reset), and all emitters format with fixed
// strconv rules, so output is byte-identical for identical runs.
type Registry struct {
	interval units.Seconds
	names    []string
	units    []string
	kinds    []MetricKind
	times    []units.Seconds
	data     []units.Seconds // row-major: sample i, metric j at i*len(names)+j
	scratch  []units.Seconds
	next     units.Seconds
}

// NewRegistry returns a registry sampling every interval simulated
// seconds (DefaultMetricsInterval when interval <= 0).
func NewRegistry(interval units.Seconds) *Registry {
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	return &Registry{interval: interval, next: interval}
}

// Interval returns the sampling cadence.
func (r *Registry) Interval() units.Seconds { return r.interval }

// Reset drops the metric definitions and samples for a new run,
// keeping the buffers. The producer re-registers its metrics after
// Reset; the first sample lands at one interval.
func (r *Registry) Reset() {
	r.names = r.names[:0]
	r.units = r.units[:0]
	r.kinds = r.kinds[:0]
	r.times = r.times[:0]
	r.data = r.data[:0]
	r.next = r.interval
}

func (r *Registry) register(name, unit string, kind MetricKind) int {
	r.names = append(r.names, name)
	r.units = append(r.units, unit)
	r.kinds = append(r.kinds, kind)
	return len(r.names) - 1
}

// Gauge registers a gauge and returns its column index.
func (r *Registry) Gauge(name, unit string) int { return r.register(name, unit, Gauge) }

// Counter registers a counter and returns its column index.
func (r *Registry) Counter(name, unit string) int { return r.register(name, unit, Counter) }

// Metrics returns the number of registered metrics.
func (r *Registry) Metrics() int { return len(r.names) }

// Samples returns the number of committed sample rows.
func (r *Registry) Samples() int { return len(r.times) }

// Due reports whether a grid instant at or before t is pending, and
// which. The producer loops Due/Scratch/Commit until Due returns
// false, so a long gap between events commits every covered instant.
func (r *Registry) Due(t units.Seconds) (units.Seconds, bool) {
	return r.next, r.next <= t
}

// Scratch returns the row to fill for the next Commit, zeroed, with
// one slot per registered metric.
func (r *Registry) Scratch() []units.Seconds {
	if cap(r.scratch) < len(r.names) {
		r.scratch = make([]units.Seconds, len(r.names))
	}
	r.scratch = r.scratch[:len(r.names)]
	for i := range r.scratch {
		r.scratch[i] = 0
	}
	return r.scratch
}

// Commit appends the filled Scratch row as the sample at grid time ts
// and advances the grid.
func (r *Registry) Commit(ts units.Seconds) {
	r.times = append(r.times, ts)
	r.data = append(r.data, r.scratch...)
	r.next += r.interval
}

// Value returns sample row i's value for metric j.
func (r *Registry) Value(i, j int) float64 { return r.data[i*len(r.names)+j] }

// format renders one metric value: counters as integers, gauges with
// three decimals.
func (r *Registry) format(j int, v float64) string {
	if r.kinds[j] == Counter {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// Table renders the sampled series as a structured table: one row per
// grid instant, one column per metric.
func (r *Registry) Table() *results.Table {
	cols := make([]results.Column, 0, len(r.names)+1)
	cols = append(cols, results.CU("Time", "s"))
	for j := range r.names {
		cols = append(cols, results.CU(r.names[j], r.units[j]))
	}
	t := results.NewTable(fmt.Sprintf("Sampled metrics (every %g s)", r.interval), cols...)
	for i := range r.times {
		row := make([]results.Cell, 0, len(cols))
		row = append(row, results.Float("%.2f", r.times[i]))
		for j := range r.names {
			v := r.Value(i, j)
			row = append(row, results.Cell{Text: r.format(j, v), Value: v})
		}
		t.Row(row...)
	}
	return t
}

// WriteCSV emits the series as CSV: a "time" column plus one column
// per metric, counters as integers, gauges with three decimals.
func (r *Registry) WriteCSV(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("time")
	for _, name := range r.names {
		buf.WriteByte(',')
		buf.WriteString(name)
	}
	buf.WriteByte('\n')
	for i := range r.times {
		buf.Write(strconv.AppendFloat(nil, r.times[i], 'f', 3, 64))
		for j := range r.names {
			buf.WriteByte(',')
			buf.WriteString(r.format(j, r.Value(i, j)))
		}
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteJSON emits the series as a compact JSON document:
//
//	{"interval":0.5,
//	 "metrics":[{"name":"queue_depth","kind":"gauge","unit":"req"},...],
//	 "times":[...],"samples":[[...],...]}
//
// samples[i][j] is metric j at times[i].
func (r *Registry) WriteJSON(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("{\"interval\":")
	buf.Write(strconv.AppendFloat(nil, r.interval, 'g', -1, 64))
	buf.WriteString(",\"metrics\":[")
	for j, name := range r.names {
		if j > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "{\"name\":%q,\"kind\":%q,\"unit\":%q}", name, r.kinds[j].String(), r.units[j])
	}
	buf.WriteString("],\"times\":[")
	for i, t := range r.times {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(strconv.AppendFloat(nil, t, 'f', 3, 64))
	}
	buf.WriteString("],\"samples\":[")
	for i := range r.times {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('[')
		for j := range r.names {
			if j > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(r.format(j, r.Value(i, j)))
		}
		buf.WriteByte(']')
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
