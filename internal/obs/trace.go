package obs

import (
	"bytes"
	"io"
	"sort"
	"strconv"

	"dsv3/internal/units"
)

// argKind selects the single optional argument a trace event carries.
type argKind uint8

const (
	argNone  argKind = iota
	argInst          // {"inst":N} — the instance a request phase runs on
	argReq           // {"req":N}  — the request a prefill slice computes
	argBatch         // {"batch":N} — the decode step's batch size
)

// pid 0 is the synthetic "requests" process; instance processes start
// at pidInstBase (prefill instances first, then decode).
const pidInstBase = 1

// traceEvent is one recorded event. Names are static strings and the
// optional argument is a plain int, so a warm recorder appends events
// with no per-event allocation; all JSON formatting happens at export.
type traceEvent struct {
	name string
	cat  string
	ph   byte // 'b'/'e' async span, 'n' async instant, 'X' slice, 'i' instant
	ts   units.Seconds
	dur  units.Seconds // 'X' only
	pid  int
	id   int // async event id ('b'/'e'/'n'): the request ID
	arg  int
	kind argKind
}

// reqTrack is the per-request accumulator behind the phase-breakdown
// table, indexed by the dense request ID.
type reqTrack struct {
	info      ReqInfo
	seen      bool
	open      Phase
	openSet   bool
	openStart units.Seconds
	arrival   units.Seconds
	done      units.Seconds
	resolved  bool
	outcome   Mark // MarkComplete, MarkFailed or MarkShed once resolved
	retries   int
	preempts  int
	phases    [NumPhases]units.Seconds
}

// TraceRecorder implements Tracer: it records the run as Chrome
// trace_event JSON (WriteJSON) and accumulates per-request phase
// durations (Breakdowns, PhaseTable). The recorder reuses its buffers
// across runs — BeginRun resets it — and records only simulated time,
// so its output is a pure function of the traced run.
type TraceRecorder struct {
	run    RunInfo
	begun  bool
	endAt  units.Seconds
	events []traceEvent
	reqs   []reqTrack
}

// NewTraceRecorder returns an empty recorder; buffers grow to the
// largest run it traces.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// BeginRun implements Tracer.
func (r *TraceRecorder) BeginRun(run RunInfo) {
	r.run = run
	r.begun = true
	r.endAt = 0
	r.events = r.events[:0]
	for i := range r.reqs {
		r.reqs[i] = reqTrack{}
	}
	r.reqs = r.reqs[:0]
}

// track returns the request's accumulator, growing the arena to cover
// its dense ID.
func (r *TraceRecorder) track(req ReqInfo) *reqTrack {
	for len(r.reqs) <= req.ID {
		r.reqs = append(r.reqs, reqTrack{})
	}
	t := &r.reqs[req.ID]
	if !t.seen {
		t.seen = true
		t.info = req
	}
	return t
}

// instPid maps an instance to its trace process ID.
func (r *TraceRecorder) instPid(prefill bool, inst int) int {
	if prefill {
		return pidInstBase + inst
	}
	return pidInstBase + r.run.Prefill + inst
}

// PhaseBegin implements Tracer.
func (r *TraceRecorder) PhaseBegin(t units.Seconds, req ReqInfo, ph Phase, inst int) {
	tr := r.track(req)
	if tr.openSet {
		// Defensive: the engine always closes the previous phase first.
		r.PhaseEnd(t, req.ID)
	}
	tr.open = ph
	tr.openSet = true
	tr.openStart = t
	ev := traceEvent{name: ph.String(), cat: "req", ph: 'b', ts: t, id: req.ID}
	if inst >= 0 {
		ev.arg = inst
		ev.kind = argInst
	}
	r.events = append(r.events, ev)
}

// PhaseEnd implements Tracer.
func (r *TraceRecorder) PhaseEnd(t units.Seconds, reqID int) {
	if reqID < 0 || reqID >= len(r.reqs) {
		return
	}
	tr := &r.reqs[reqID]
	if !tr.openSet {
		return
	}
	tr.phases[tr.open] += t - tr.openStart
	r.events = append(r.events, traceEvent{name: tr.open.String(), cat: "req", ph: 'e', ts: t, id: reqID})
	tr.openSet = false
}

// Mark implements Tracer.
func (r *TraceRecorder) Mark(t units.Seconds, req ReqInfo, m Mark) {
	tr := r.track(req)
	switch m {
	case MarkArrival:
		tr.arrival = t
	case MarkShed:
		tr.arrival = t
		tr.done = t
		tr.resolved = true
		tr.outcome = MarkShed
	case MarkComplete, MarkFailed:
		tr.done = t
		tr.resolved = true
		tr.outcome = m
	case MarkRetry:
		tr.retries++
	case MarkPreempt, MarkOffload:
		tr.preempts++
	}
	r.events = append(r.events, traceEvent{name: m.String(), cat: "mark", ph: 'n', ts: t, id: req.ID})
}

// Compute implements Tracer.
func (r *TraceRecorder) Compute(start, dur units.Seconds, prefill bool, inst int, kind ComputeKind, v int) {
	ev := traceEvent{name: kind.String(), ph: 'X', ts: start, dur: dur, pid: r.instPid(prefill, inst), arg: v}
	if kind == ComputeDecodeStep {
		ev.kind = argBatch
	} else {
		ev.kind = argReq
	}
	r.events = append(r.events, ev)
}

// Incident implements Tracer.
func (r *TraceRecorder) Incident(t units.Seconds, prefill bool, inst int, kind string) {
	r.events = append(r.events, traceEvent{name: kind, ph: 'i', ts: t, pid: r.instPid(prefill, inst)})
}

// EndRun implements Tracer.
func (r *TraceRecorder) EndRun(t units.Seconds) { r.endAt = t }

// Events returns the number of recorded events.
func (r *TraceRecorder) Events() int { return len(r.events) }

// EventCount is one (kind, name) tally of a trace.
type EventCount struct {
	// Kind groups the trace-event type: "span" (request phases),
	// "mark" (request instants), "compute" (instance slices), or
	// "incident" (instance health transitions).
	Kind string
	Name string
	N    int
}

// EventCounts tallies the recorded events by kind and name, sorted by
// (kind, name) — a deterministic one-table summary of a trace.
func (r *TraceRecorder) EventCounts() []EventCount {
	kind := func(ev *traceEvent) string {
		switch ev.ph {
		case 'b':
			return "span"
		case 'n':
			return "mark"
		case 'X':
			return "compute"
		case 'i':
			return "incident"
		}
		return ""
	}
	counts := map[[2]string]int{}
	for i := range r.events {
		k := kind(&r.events[i])
		if k == "" {
			continue // 'e' ends pair with the counted 'b'
		}
		counts[[2]string{k, r.events[i].name}]++
	}
	out := make([]EventCount, 0, len(counts))
	for key, n := range counts {
		out = append(out, EventCount{Kind: key[0], Name: key[1], N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// usec appends a simulated-seconds timestamp as microseconds with
// fixed millinanosecond precision — the trace_event time unit,
// formatted identically on every platform.
func usec(b []byte, t units.Seconds) []byte {
	return strconv.AppendFloat(b, t*1e6, 'f', 3, 64)
}

// WriteJSON exports the recorded run as Chrome trace_event JSON. Load
// the file at ui.perfetto.dev (or chrome://tracing): requests render
// as async span tracks under the "requests" process, each instance is
// its own process with compute slices and incident instants. The
// output is byte-identical for identical runs.
func (r *TraceRecorder) WriteJSON(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	writeMeta := func(pid int, name string, first bool) {
		if !first {
			buf.WriteString(",\n")
		}
		buf.WriteString("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":")
		buf.Write(strconv.AppendInt(nil, int64(pid), 10))
		buf.WriteString(",\"tid\":0,\"args\":{\"name\":\"")
		buf.WriteString(name)
		buf.WriteString("\"}}")
	}
	writeMeta(0, "requests", true)
	scratch := make([]byte, 0, 32)
	for i := 0; i < r.run.Prefill; i++ {
		scratch = append(scratch[:0], "prefill-"...)
		writeMeta(pidInstBase+i, string(strconv.AppendInt(scratch, int64(i), 10)), false)
	}
	decodeName := "decode-"
	if r.run.Colocated {
		decodeName = "instance-"
	}
	for i := 0; i < r.run.Decode; i++ {
		scratch = append(scratch[:0], decodeName...)
		writeMeta(pidInstBase+r.run.Prefill+i, string(strconv.AppendInt(scratch, int64(i), 10)), false)
	}
	line := make([]byte, 0, 160)
	for i := range r.events {
		ev := &r.events[i]
		line = append(line[:0], ",\n{\"name\":\""...)
		line = append(line, ev.name...)
		line = append(line, '"')
		if ev.cat != "" {
			line = append(line, ",\"cat\":\""...)
			line = append(line, ev.cat...)
			line = append(line, '"')
		}
		line = append(line, ",\"ph\":\""...)
		line = append(line, ev.ph)
		line = append(line, '"')
		if ev.ph == 'i' {
			// Process-scoped instant: renders across the instance track.
			line = append(line, ",\"s\":\"p\""...)
		}
		if ev.ph == 'b' || ev.ph == 'e' || ev.ph == 'n' {
			line = append(line, ",\"id\":"...)
			line = strconv.AppendInt(line, int64(ev.id), 10)
		}
		line = append(line, ",\"pid\":"...)
		line = strconv.AppendInt(line, int64(ev.pid), 10)
		line = append(line, ",\"tid\":0,\"ts\":"...)
		line = usec(line, ev.ts)
		if ev.ph == 'X' {
			line = append(line, ",\"dur\":"...)
			line = usec(line, ev.dur)
		}
		switch ev.kind {
		case argInst:
			line = append(line, ",\"args\":{\"inst\":"...)
		case argReq:
			line = append(line, ",\"args\":{\"req\":"...)
		case argBatch:
			line = append(line, ",\"args\":{\"batch\":"...)
		}
		if ev.kind != argNone {
			line = strconv.AppendInt(line, int64(ev.arg), 10)
			line = append(line, '}')
		}
		line = append(line, '}')
		buf.Write(line)
	}
	buf.WriteString("\n]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
