package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// script drives one small synthetic request lifecycle through a
// recorder: queue -> prefill -> transfer -> queue -> decode, preempted
// into backoff-free completion, plus a shed arrival and an incident.
func script(r *TraceRecorder) {
	r.BeginRun(RunInfo{Prefill: 1, Decode: 2})
	a := ReqInfo{ID: 0, Session: 1, PromptTokens: 128, OutputTokens: 64}
	r.Mark(0.5, a, MarkArrival)
	r.PhaseBegin(0.5, a, PhaseQueue, -1)
	r.PhaseEnd(1.0, 0)
	r.PhaseBegin(1.0, a, PhasePrefill, 0)
	r.Compute(1.0, 0.25, true, 0, ComputePrefill, 0)
	r.PhaseEnd(1.25, 0)
	r.PhaseBegin(1.25, a, PhaseTransfer, 1)
	r.PhaseEnd(1.5, 0)
	r.PhaseBegin(1.5, a, PhaseQueue, 1)
	r.PhaseEnd(1.5, 0)
	r.PhaseBegin(1.5, a, PhaseDecode, 1)
	r.Compute(1.5, 0.05, false, 1, ComputeDecodeStep, 3)
	r.PhaseEnd(2.0, 0)
	r.Mark(2.0, a, MarkComplete)
	b := ReqInfo{ID: 1, PromptTokens: 64, OutputTokens: 8}
	r.Mark(0.75, b, MarkShed)
	r.Incident(1.75, false, 0, "crash")
	r.EndRun(2.0)
}

func TestRecorderBreakdown(t *testing.T) {
	rec := NewTraceRecorder()
	script(rec)
	bds := rec.Breakdowns()
	if len(bds) != 2 {
		t.Fatalf("breakdowns: got %d, want 2", len(bds))
	}
	a := bds[0]
	if a.Outcome != "completed" {
		t.Errorf("req 0 outcome %q", a.Outcome)
	}
	if got, want := a.PhaseSum(), a.E2E(); math.Abs(got-want) > 1e-12 {
		t.Errorf("phase sum %v != e2e %v", got, want)
	}
	if a.Phases[PhaseQueue] != 0.5 || a.Phases[PhasePrefill] != 0.25 ||
		a.Phases[PhaseTransfer] != 0.25 || a.Phases[PhaseDecode] != 0.5 {
		t.Errorf("phase attribution %v", a.Phases)
	}
	if bds[1].Outcome != "shed" || bds[1].E2E() != 0 {
		t.Errorf("shed breakdown %+v", bds[1])
	}
	if pt := rec.PhaseTable(); len(pt.Rows) != 2 {
		t.Errorf("phase table rows: %d", len(pt.Rows))
	}
	if tt := rec.PhaseTotalsTable(); len(tt.Rows) != NumPhases {
		t.Errorf("totals rows: %d", len(tt.Rows))
	}
}

func TestRecorderJSONValidAndDeterministic(t *testing.T) {
	rec := NewTraceRecorder()
	script(rec)
	var one bytes.Buffer
	if err := rec.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(one.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	want := map[string]bool{
		"queue": false, "prefill": false, "transfer": false, "decode": false,
		"decode-step": false, "complete": false, "shed": false, "crash": false,
		"process_name": false,
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace missing %q event", name)
		}
	}
	// A pooled recorder re-traces the same run byte-identically.
	script(rec)
	var two bytes.Buffer
	if err := rec.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("re-traced run differs from first trace")
	}
	counts := rec.EventCounts()
	if len(counts) == 0 {
		t.Fatal("no event counts")
	}
	for i := 1; i < len(counts); i++ {
		a, b := counts[i-1], counts[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Name >= b.Name) {
			t.Errorf("event counts not sorted: %v before %v", a, b)
		}
	}
}

func TestRegistrySampling(t *testing.T) {
	r := NewRegistry(0.5)
	r.Reset()
	q := r.Gauge("queue_depth", "req")
	c := r.Counter("completed", "req")
	fill := func(t, depth, done float64) {
		for {
			ts, ok := r.Due(t)
			if !ok {
				return
			}
			row := r.Scratch()
			row[q] = depth
			row[c] = done
			r.Commit(ts)
		}
	}
	fill(0.4, 3, 0)  // nothing due yet
	fill(1.6, 5, 2)  // commits 0.5, 1.0, 1.5
	fill(2.05, 1, 7) // commits 2.0
	if r.Samples() != 4 {
		t.Fatalf("samples: got %d, want 4", r.Samples())
	}
	if got := r.Value(3, c); got != 7 {
		t.Errorf("counter at last sample: %v", got)
	}
	if got := r.Value(1, q); got != 5 {
		t.Errorf("gauge carried forward: %v", got)
	}
	tab := r.Table()
	if len(tab.Rows) != 4 || len(tab.Columns) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Rows must not alias each other: each carries its own grid time.
	if tab.Rows[0][0].Text != "0.50" || tab.Rows[3][0].Text != "2.00" {
		t.Errorf("table times %q..%q, want 0.50..2.00", tab.Rows[0][0].Text, tab.Rows[3][0].Text)
	}
	if tab.Rows[1][2].Text != "2" || tab.Rows[3][2].Text != "7" {
		t.Errorf("table counter values %q, %q", tab.Rows[1][2].Text, tab.Rows[3][2].Text)
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 || lines[0] != "time,queue_depth,completed" {
		t.Fatalf("csv: %q", csv.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval float64 `json:"interval"`
		Metrics  []struct {
			Name, Kind, Unit string
		} `json:"metrics"`
		Times   []float64   `json:"times"`
		Samples [][]float64 `json:"samples"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if doc.Interval != 0.5 || len(doc.Times) != 4 || len(doc.Samples) != 4 {
		t.Errorf("metrics doc shape: %+v", doc)
	}
	if doc.Metrics[1].Kind != "counter" {
		t.Errorf("kind: %+v", doc.Metrics[1])
	}
	// Reset drops definitions and samples for the next run.
	r.Reset()
	if r.Metrics() != 0 || r.Samples() != 0 {
		t.Error("reset kept state")
	}
}

func TestNames(t *testing.T) {
	phases := map[string]bool{}
	for p := 0; p < NumPhases; p++ {
		name := Phase(p).String()
		if name == "unknown" || phases[name] {
			t.Errorf("phase %d name %q", p, name)
		}
		phases[name] = true
	}
	marks := []Mark{MarkArrival, MarkShed, MarkPreempt, MarkOffload, MarkOrphan,
		MarkRetry, MarkPrefixHit, MarkComplete, MarkFailed}
	seen := map[string]bool{}
	for _, m := range marks {
		name := m.String()
		if name == "unknown" || seen[name] {
			t.Errorf("mark %d name %q", m, name)
		}
		seen[name] = true
	}
	if ComputePrefill.String() != "prefill" || ComputeDecodeStep.String() != "decode-step" {
		t.Error("compute kind names")
	}
	if NewRegistry(0).Interval() != DefaultMetricsInterval {
		t.Error("default interval")
	}
}
