// Package obs is the observability layer of the serving simulator: a
// zero-cost-when-disabled tracer contract for request lifecycles plus a
// time-series metrics registry, both deterministic by construction.
//
// The engine in internal/servesim drives everything through nil-checked
// hooks, so an engine with no tracer or registry attached executes the
// exact same instruction stream as before this package existed — the
// disabled path adds one nil check per hook site and zero allocations.
// When enabled, every event carries explicit simulated time (never wall
// clock), call order follows the engine's (time, seq)-ordered event
// loop, and the exporters format numbers with fixed strconv rules, so
// trace and metrics output is byte-identical across runs, worker
// counts, and pooled-vs-fresh engines.
//
// The two halves:
//
//   - Tracer (implemented by TraceRecorder) observes request lifecycle
//     transitions — queue wait, prefill, KV transfer, tier reload,
//     decode residency, retry backoff — plus instant marks (arrival,
//     shed, preemption, offload, crash-orphaning, retry, completion)
//     and per-instance compute slices and incidents. TraceRecorder
//     exports Chrome trace_event JSON (load it at ui.perfetto.dev) and
//     per-request phase breakdowns that tile the request's end-to-end
//     latency exactly.
//
//   - Registry samples counters and gauges (queue depth, running
//     batch, per-tier KV occupancy and traffic, healthy instances,
//     retry/shed totals) on a fixed simulated-time cadence and emits
//     them as a results.Table, CSV, or JSON.
package obs

import "dsv3/internal/units"

// Phase is one exclusive state of a request's lifecycle. At any
// instant a live request is in at most one phase, phases change only
// at event times, and consecutive phases share their boundary instant,
// so per-phase durations sum exactly to the request's end-to-end
// latency (the reconciliation invariant the servesim tests pin).
type Phase uint8

const (
	// PhaseQueue covers both the shared arrival queue before prefill
	// dispatch and the per-instance landing queue before batch
	// admission.
	PhaseQueue Phase = iota
	// PhasePrefill is prefill compute residency (including recompute
	// re-prefills after a preemption or crash).
	PhasePrefill
	// PhaseTransfer is the prefill-to-decode KV migration.
	PhaseTransfer
	// PhaseReload is a below-HBM tier reload back into HBM.
	PhaseReload
	// PhaseDecode is decode batch residency.
	PhaseDecode
	// PhaseBackoff is the retry backoff dwell after crash orphaning.
	PhaseBackoff

	// NumPhases sizes per-phase accumulators.
	NumPhases = int(PhaseBackoff) + 1
)

// String returns the phase's trace-event name.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhasePrefill:
		return "prefill"
	case PhaseTransfer:
		return "transfer"
	case PhaseReload:
		return "reload"
	case PhaseDecode:
		return "decode"
	case PhaseBackoff:
		return "backoff"
	}
	return "unknown"
}

// Mark is an instantaneous request event.
type Mark uint8

const (
	// MarkArrival is an admitted request entering the system.
	MarkArrival Mark = iota
	// MarkShed is an arrival rejected by the admission policy.
	MarkShed
	// MarkPreempt is a recompute preemption (KV discarded).
	MarkPreempt
	// MarkOffload is a preemption whose KV moved down-tier intact.
	MarkOffload
	// MarkOrphan is a request dropped by an instance crash or a dead
	// hand-off.
	MarkOrphan
	// MarkRetry is an orphaned request re-entering dispatch after
	// backoff.
	MarkRetry
	// MarkPrefixHit is a session prefix-cache hit at prefill dispatch.
	MarkPrefixHit
	// MarkComplete is a request finishing its last token.
	MarkComplete
	// MarkFailed is a request exhausting its retry budget.
	MarkFailed
	// MarkCorrupt is a completion tainted by undetected silent data
	// corruption.
	MarkCorrupt
	// MarkHedge is a speculative duplicate dispatched after the hedge
	// delay; MarkHedgeWin records the duplicate finishing first.
	MarkHedge
	MarkHedgeWin
)

// String returns the mark's trace-event name.
func (m Mark) String() string {
	switch m {
	case MarkArrival:
		return "arrival"
	case MarkShed:
		return "shed"
	case MarkPreempt:
		return "preempt"
	case MarkOffload:
		return "offload"
	case MarkOrphan:
		return "orphan"
	case MarkRetry:
		return "retry"
	case MarkPrefixHit:
		return "prefix-hit"
	case MarkComplete:
		return "complete"
	case MarkFailed:
		return "failed"
	case MarkCorrupt:
		return "corrupt"
	case MarkHedge:
		return "hedge"
	case MarkHedgeWin:
		return "hedge-win"
	}
	return "unknown"
}

// ComputeKind labels a per-instance compute slice.
type ComputeKind uint8

const (
	// ComputePrefill is one prefill's compute residency on an instance.
	ComputePrefill ComputeKind = iota
	// ComputeDecodeStep is one continuous-batching decode step.
	ComputeDecodeStep
)

// String returns the slice's trace-event name.
func (k ComputeKind) String() string {
	if k == ComputeDecodeStep {
		return "decode-step"
	}
	return "prefill"
}

// ReqInfo identifies a request to the tracer. IDs are dense (0..N-1 in
// arrival order), so implementations may index by ID.
type ReqInfo struct {
	ID           int
	Session      int // 0 for single-turn traffic
	PromptTokens int
	OutputTokens int
}

// RunInfo describes the fleet a run traces: the process layout of the
// exported trace.
type RunInfo struct {
	// Prefill and Decode are the instance counts; Prefill is 0 for a
	// colocated deployment (Decode then counts unified instances).
	Prefill   int
	Decode    int
	Colocated bool
}

// Tracer observes one serving-simulation run. The engine calls it
// single-threaded in simulated-time order; every timestamp is
// simulated seconds. BeginRun resets the tracer, so one tracer follows
// one engine across pooled runs. Implementations must not read wall
// clocks or global RNGs — trace output must be a pure function of the
// run.
type Tracer interface {
	// BeginRun starts (and resets to) a new run over the given fleet.
	BeginRun(run RunInfo)
	// PhaseBegin opens a phase for the request at time t. inst is the
	// instance the phase runs on, -1 when not instance-bound (the
	// shared arrival queue, retry backoff). At most one phase is open
	// per request; the engine closes the previous phase at the same
	// instant it opens the next.
	PhaseBegin(t units.Seconds, req ReqInfo, ph Phase, inst int)
	// PhaseEnd closes the request's open phase at time t; it is a
	// no-op if no phase is open.
	PhaseEnd(t units.Seconds, reqID int)
	// Mark records an instantaneous request event.
	Mark(t units.Seconds, req ReqInfo, m Mark)
	// Compute records one compute slice [start, start+dur) on an
	// instance. v is the request ID for ComputePrefill and the batch
	// size for ComputeDecodeStep. Slices are recorded when scheduled,
	// so start equals the current simulated time and the end lies in
	// the future.
	Compute(start, dur units.Seconds, prefill bool, inst int, kind ComputeKind, v int)
	// Incident records an instance health transition ("crash",
	// "recover", "drain").
	Incident(t units.Seconds, prefill bool, inst int, kind string)
	// EndRun closes the run at the final simulated time.
	EndRun(t units.Seconds)
}
