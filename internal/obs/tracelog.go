package obs

import "dsv3/internal/units"

// TraceLog is a deterministic record-and-replay buffer for Tracer
// calls. The sharded serving engine gives each shard its own TraceLog:
// shards append concurrently (each to its own log, never sharing one),
// and the coordinator replays contiguous ranges into the real Tracer in
// canonical merge order — so the attached tracer observes the exact
// call sequence a serial run would have made, while the shards never
// touch it directly.
//
// A TraceLog is itself a Tracer, so it buffers anything the engine can
// emit; run-scoped calls (BeginRun/EndRun) are recorded like any other
// entry for completeness, though the sharded engine issues those on the
// real tracer directly.
type TraceLog struct {
	entries []logEntry
}

type logKind uint8

const (
	logPhaseBegin logKind = iota
	logPhaseEnd
	logMark
	logCompute
	logIncident
	logBeginRun
	logEndRun
)

// logEntry is one buffered Tracer call. A flat union keeps replay
// allocation-free; kindStr is only populated for incidents.
type logEntry struct {
	kind    logKind
	t       units.Seconds
	dur     units.Seconds
	req     ReqInfo
	phase   Phase
	mark    Mark
	ck      ComputeKind
	inst    int
	v       int
	prefill bool
	run     RunInfo
	kindStr string
}

var _ Tracer = (*TraceLog)(nil)

// Reset drops every buffered entry, retaining capacity.
func (l *TraceLog) Reset() { l.entries = l.entries[:0] }

// Len returns the number of buffered entries — callers snapshot it
// before and after an event to delimit that event's replay range.
func (l *TraceLog) Len() int { return len(l.entries) }

// BeginRun implements Tracer.
func (l *TraceLog) BeginRun(run RunInfo) {
	l.entries = append(l.entries, logEntry{kind: logBeginRun, run: run})
}

// PhaseBegin implements Tracer.
func (l *TraceLog) PhaseBegin(t units.Seconds, req ReqInfo, ph Phase, inst int) {
	l.entries = append(l.entries, logEntry{kind: logPhaseBegin, t: t, req: req, phase: ph, inst: inst})
}

// PhaseEnd implements Tracer.
func (l *TraceLog) PhaseEnd(t units.Seconds, reqID int) {
	l.entries = append(l.entries, logEntry{kind: logPhaseEnd, t: t, v: reqID})
}

// Mark implements Tracer.
func (l *TraceLog) Mark(t units.Seconds, req ReqInfo, m Mark) {
	l.entries = append(l.entries, logEntry{kind: logMark, t: t, req: req, mark: m})
}

// Compute implements Tracer.
func (l *TraceLog) Compute(start, dur units.Seconds, prefill bool, inst int, kind ComputeKind, v int) {
	l.entries = append(l.entries, logEntry{
		kind: logCompute, t: start, dur: dur, prefill: prefill, inst: inst, ck: kind, v: v,
	})
}

// Incident implements Tracer.
func (l *TraceLog) Incident(t units.Seconds, prefill bool, inst int, kind string) {
	l.entries = append(l.entries, logEntry{kind: logIncident, t: t, prefill: prefill, inst: inst, kindStr: kind})
}

// EndRun implements Tracer.
func (l *TraceLog) EndRun(t units.Seconds) {
	l.entries = append(l.entries, logEntry{kind: logEndRun, t: t})
}

// Replay re-issues the buffered entries in [lo, hi) against dst in
// recording order.
func (l *TraceLog) Replay(dst Tracer, lo, hi int) {
	for i := lo; i < hi; i++ {
		e := &l.entries[i]
		switch e.kind {
		case logPhaseBegin:
			dst.PhaseBegin(e.t, e.req, e.phase, e.inst)
		case logPhaseEnd:
			dst.PhaseEnd(e.t, e.v)
		case logMark:
			dst.Mark(e.t, e.req, e.mark)
		case logCompute:
			dst.Compute(e.t, e.dur, e.prefill, e.inst, e.ck, e.v)
		case logIncident:
			dst.Incident(e.t, e.prefill, e.inst, e.kindStr)
		case logBeginRun:
			dst.BeginRun(e.run)
		case logEndRun:
			dst.EndRun(e.t)
		}
	}
}
