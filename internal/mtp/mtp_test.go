package mtp

import (
	"math"
	"math/rand"
	"testing"
)

func TestV3SpeedupIs1Point8(t *testing.T) {
	// §2.3.3: one MTP module at 80-90% acceptance gives ~1.8x TPS.
	s := V3Config().ExpectedSpeedup()
	if math.Abs(s-1.8) > 0.05 {
		t.Errorf("expected ~1.8x speedup, got %v", s)
	}
}

func TestAcceptanceRangeBrackets(t *testing.T) {
	lo := V3Config()
	lo.Acceptance = 0.80
	hi := V3Config()
	hi.Acceptance = 0.90
	if lo.ExpectedSpeedup() < 1.7 || hi.ExpectedSpeedup() > 1.95 {
		t.Errorf("80-90%% acceptance should span ~1.7-1.9x: %v, %v",
			lo.ExpectedSpeedup(), hi.ExpectedSpeedup())
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	cfg := V3Config()
	rng := rand.New(rand.NewSource(51))
	res, err := Simulate(cfg, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Speedup-cfg.ExpectedSpeedup()) > 0.01 {
		t.Errorf("simulated speedup %v vs analytic %v", res.Speedup, cfg.ExpectedSpeedup())
	}
	if math.Abs(res.TokensPerStep-cfg.ExpectedTokensPerStep()) > 0.01 {
		t.Errorf("simulated tokens/step %v vs analytic %v", res.TokensPerStep, cfg.ExpectedTokensPerStep())
	}
}

func TestZeroModulesIsBaseline(t *testing.T) {
	cfg := Config{Modules: 0, Acceptance: 0.9}
	if s := cfg.ExpectedSpeedup(); s != 1 {
		t.Errorf("no modules must give exactly 1.0x, got %v", s)
	}
}

func TestDeeperChainsGeometric(t *testing.T) {
	cfg := Config{Modules: 3, Acceptance: 0.5}
	want := 1 + 0.5 + 0.25 + 0.125
	if got := cfg.ExpectedTokensPerStep(); math.Abs(got-want) > 1e-12 {
		t.Errorf("tokens/step = %v, want %v", got, want)
	}
}

func TestDiminishingReturnsWithDepth(t *testing.T) {
	// The extension sweep: with realistic acceptance, marginal gain per
	// extra module shrinks.
	pts := Sweep([]int{1, 2, 3, 4}, []float64{0.85}, 1.0/61, 0.03)
	if len(pts) != 4 {
		t.Fatalf("expected 4 points, got %d", len(pts))
	}
	gain1 := pts[1].Speedup - pts[0].Speedup
	gain3 := pts[3].Speedup - pts[2].Speedup
	if gain3 >= gain1 {
		t.Errorf("marginal gains should shrink: %v vs %v", gain1, gain3)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Errorf("speedup should still grow with depth at 85%%: %+v", pts)
		}
	}
}

func TestLowAcceptanceCanHurt(t *testing.T) {
	// With terrible acceptance and nonzero costs, deep chains lose.
	cfg := Config{Modules: 4, Acceptance: 0.05, DraftCost: 0.05, VerifyOverhead: 0.05}
	if cfg.ExpectedSpeedup() >= 1 {
		t.Errorf("bad acceptance should not speed up: %v", cfg.ExpectedSpeedup())
	}
}

func TestValidation(t *testing.T) {
	bad := Config{Modules: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative modules must fail")
	}
	bad = Config{Modules: 1, Acceptance: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("acceptance > 1 must fail")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(V3Config(), 0, rng); err == nil {
		t.Error("zero tokens must fail")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	a, _ := Simulate(V3Config(), 10000, rand.New(rand.NewSource(9)))
	b, _ := Simulate(V3Config(), 10000, rand.New(rand.NewSource(9)))
	if a.Steps != b.Steps {
		t.Error("same seed must give identical trajectories")
	}
}

func TestBatchAmplification(t *testing.T) {
	res, _ := Simulate(V3Config(), 1000, rand.New(rand.NewSource(3)))
	if res.BatchAmplification != 2 {
		t.Errorf("one MTP module doubles the verification batch, got %v", res.BatchAmplification)
	}
}
