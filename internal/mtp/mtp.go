// Package mtp simulates Multi-Token Prediction speculative decoding
// (§2.3.3): lightweight single-layer draft modules propose the next
// 2..k tokens, the main model verifies them in parallel, and accepted
// tokens skip full decode steps. The paper reports an 80-90% acceptance
// rate for the second token and a 1.8x generation speedup; this package
// reproduces that number from the stochastic process and exposes the
// depth/acceptance sweep as an extension study.
package mtp

import (
	"fmt"
	"math/rand"
)

// Config describes an MTP inference setup.
type Config struct {
	// Modules is the number of chained MTP modules (draft depth);
	// DeepSeek-V3 ships with 1.
	Modules int
	// Acceptance is the probability that a drafted token is accepted,
	// conditioned on all earlier drafts in the chain being accepted
	// (the paper quotes 80-90% for the first draft).
	Acceptance float64
	// DraftCost is the per-module cost relative to a full decode step;
	// each module is a single transformer layer, so ~1/61 for V3.
	DraftCost float64
	// VerifyOverhead is the extra cost of verifying the drafted tokens
	// alongside the regular forward (decode is memory-bound, so a
	// slightly larger effective batch is nearly free: a few percent).
	VerifyOverhead float64
}

// V3Config returns DeepSeek-V3's production setting: one module, the
// midpoint 85% acceptance, 1/61 draft cost, 3% verify overhead.
func V3Config() Config {
	return Config{Modules: 1, Acceptance: 0.85, DraftCost: 1.0 / 61, VerifyOverhead: 0.03}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Modules < 0 || c.Acceptance < 0 || c.Acceptance > 1 {
		return fmt.Errorf("mtp: bad config %+v", c)
	}
	return nil
}

// StepCost returns the cost of one decoding step relative to a plain
// step: the main forward plus draft modules plus verification overhead.
func (c Config) StepCost() float64 {
	return 1 + float64(c.Modules)*c.DraftCost + c.VerifyOverhead
}

// ExpectedTokensPerStep returns E[tokens emitted per step]: 1 for the
// main model plus a geometric chain of accepted drafts.
func (c Config) ExpectedTokensPerStep() float64 {
	tokens := 1.0
	p := 1.0
	for i := 0; i < c.Modules; i++ {
		p *= c.Acceptance
		tokens += p
	}
	return tokens
}

// ExpectedSpeedup returns the analytic TPS ratio vs no-MTP decoding.
func (c Config) ExpectedSpeedup() float64 {
	return c.ExpectedTokensPerStep() / c.StepCost()
}

// SimResult is a Monte-Carlo run's outcome.
type SimResult struct {
	Tokens        int
	Steps         int
	TokensPerStep float64
	// Speedup is the simulated TPS ratio vs plain decoding (which costs
	// exactly 1.0 per token).
	Speedup float64
	// BatchAmplification is the mean number of tokens entering each
	// verification forward — the EP batch-size boost the paper credits
	// MTP with (§2.3.3).
	BatchAmplification float64
}

// Simulate decodes until at least tokens tokens are produced, drawing
// acceptances from rng.
func Simulate(c Config, tokens int, rng *rand.Rand) (SimResult, error) {
	if err := c.Validate(); err != nil {
		return SimResult{}, err
	}
	if tokens <= 0 {
		return SimResult{}, fmt.Errorf("mtp: tokens must be positive")
	}
	produced, steps := 0, 0
	var cost float64
	for produced < tokens {
		steps++
		cost += c.StepCost()
		produced++ // the main model's token
		for i := 0; i < c.Modules; i++ {
			if rng.Float64() >= c.Acceptance {
				break
			}
			produced++
		}
	}
	res := SimResult{
		Tokens:             produced,
		Steps:              steps,
		TokensPerStep:      float64(produced) / float64(steps),
		Speedup:            float64(produced) / cost,
		BatchAmplification: float64(c.Modules + 1),
	}
	return res, nil
}

// SweepPoint is one (depth, acceptance) cell of the extension study.
type SweepPoint struct {
	Modules    int
	Acceptance float64
	Speedup    float64
}

// Sweep evaluates the analytic speedup over module depths and
// acceptance rates — the "how far can MTP go" extension ablation.
func Sweep(depths []int, acceptances []float64, draftCost, verifyOverhead float64) []SweepPoint {
	var out []SweepPoint
	for _, d := range depths {
		for _, p := range acceptances {
			c := Config{Modules: d, Acceptance: p, DraftCost: draftCost, VerifyOverhead: verifyOverhead}
			out = append(out, SweepPoint{Modules: d, Acceptance: p, Speedup: c.ExpectedSpeedup()})
		}
	}
	return out
}
