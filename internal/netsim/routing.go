package netsim

import (
	"fmt"

	"dsv3/internal/topology"
)

// Policy selects how a flow is mapped onto the equal-cost shortest
// paths between its endpoints (§5.2.2, Figure 8).
type Policy int

const (
	// PolicyECMP hashes each flow onto one path — the default RoCE
	// behaviour whose collisions Figure 8 demonstrates.
	PolicyECMP Policy = iota
	// PolicyAdaptive sprays a flow across all equal-cost paths
	// (adaptive routing / packet spraying).
	PolicyAdaptive
	// PolicyStatic pins each flow to an explicitly chosen path index
	// (manually configured route tables).
	PolicyStatic
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyECMP:
		return "ECMP"
	case PolicyAdaptive:
		return "AR"
	case PolicyStatic:
		return "Static"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Router caches shortest-path enumeration per endpoint pair and applies
// a routing policy to pick the path set of each flow.
type Router struct {
	g     *topology.Graph
	cache map[[2]int][][]int
}

// NewRouter wraps a graph. The graph must not be mutated afterwards.
func NewRouter(g *topology.Graph) *Router {
	return &Router{g: g, cache: make(map[[2]int][][]int)}
}

// Graph returns the underlying graph.
func (r *Router) Graph() *topology.Graph { return r.g }

// Paths returns (and caches) all equal-cost shortest paths src→dst.
func (r *Router) Paths(src, dst int) ([][]int, error) {
	key := [2]int{src, dst}
	if p, ok := r.cache[key]; ok {
		return p, nil
	}
	p, err := r.g.ShortestPaths(src, dst)
	if err != nil {
		return nil, err
	}
	r.cache[key] = p
	return p, nil
}

// Select returns the path set a flow uses under the policy. flowKey
// seeds the ECMP hash (stand-in for the 5-tuple) and doubles as the
// path index under PolicyStatic.
func (r *Router) Select(src, dst int, policy Policy, flowKey uint64) ([][]int, error) {
	paths, err := r.Paths(src, dst)
	if err != nil {
		return nil, err
	}
	if len(paths) <= 1 {
		return paths, nil
	}
	switch policy {
	case PolicyAdaptive:
		return paths, nil
	case PolicyECMP:
		idx := int(splitmix64(flowKey) % uint64(len(paths)))
		return paths[idx : idx+1], nil
	case PolicyStatic:
		idx := int(flowKey) % len(paths)
		return paths[idx : idx+1], nil
	}
	return nil, fmt.Errorf("netsim: unknown policy %v", policy)
}

// splitmix64 is the standard 64-bit mix function: deterministic,
// well-distributed, and cheap — a good stand-in for a NIC's ECMP hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
