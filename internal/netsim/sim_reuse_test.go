package netsim

import (
	"reflect"
	"testing"

	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// reuseFixtures builds a few deliberately different flow sets — sizes,
// rate caps, staged starts, multipath — over two different graphs, so
// reusing one Sim across them exercises every grow/reset path.
func reuseFixtures() []struct {
	g     *topology.Graph
	flows []Flow
} {
	small := topology.FatTree2{
		Leaves: 2, Spines: 2, EndpointsPerLeaf: 2,
		Params: topology.FabricParams{
			EndpointLinkCap: 10, SwitchLinkCap: 10,
			EndpointLinkLat: 1e-6, SwitchHopLat: 1e-6,
		},
	}.Build()
	big := topology.FatTree2{
		Leaves: 4, Spines: 4, EndpointsPerLeaf: 4,
		Params: topology.FabricParams{
			EndpointLinkCap: 25, SwitchLinkCap: 25,
			EndpointLinkLat: 1e-6, SwitchHopLat: 1e-6,
		},
	}.Build()
	smallRouter := NewRouter(small)
	bigRouter := NewRouter(big)
	pick := func(r *Router, src, dst int) [][]int {
		paths, err := r.Select(src, dst, PolicyAdaptive, 0)
		if err != nil {
			panic(err)
		}
		return paths
	}
	sEps := small.Endpoints()
	bEps := big.Endpoints()
	return []struct {
		g     *topology.Graph
		flows []Flow
	}{
		{small, []Flow{
			{Src: sEps[0], Dst: sEps[2], Bytes: 100, Paths: pick(smallRouter, sEps[0], sEps[2])},
			{Src: sEps[1], Dst: sEps[3], Bytes: 50, Paths: pick(smallRouter, sEps[1], sEps[3]), RateCap: 3},
			{Src: sEps[0], Dst: sEps[0], Bytes: 10}, // loopback
		}},
		{big, []Flow{
			{Src: bEps[0], Dst: bEps[9], Bytes: 400, Paths: pick(bigRouter, bEps[0], bEps[9])},
			{Src: bEps[1], Dst: bEps[8], Bytes: 200, Paths: pick(bigRouter, bEps[1], bEps[8]), StartTime: 2},
			{Src: bEps[2], Dst: bEps[12], Bytes: 300, Paths: pick(bigRouter, bEps[2], bEps[12]), RateCap: 5},
			{Src: bEps[3], Dst: bEps[15], Bytes: 100, Paths: pick(bigRouter, bEps[3], bEps[15]), StartTime: 1},
		}},
		{small, []Flow{
			{Src: sEps[2], Dst: sEps[1], Bytes: 75, Paths: pick(smallRouter, sEps[2], sEps[1])},
		}},
	}
}

func cloneResult(r Result) Result {
	r.FlowFinish = append([]units.Seconds(nil), r.FlowFinish...)
	return r
}

// TestSimReuseMatchesSimulate runs heterogeneous flow sets through one
// Sim (twice over, so shrink-then-grow and grow-then-shrink both
// happen) and checks every result against the allocation-per-call
// package function.
func TestSimReuseMatchesSimulate(t *testing.T) {
	fixtures := reuseFixtures()
	sim := NewSim()
	for round := 0; round < 2; round++ {
		for i, fx := range fixtures {
			got := cloneResult(sim.Simulate(fx.g, fx.flows))
			want := Simulate(fx.g, fx.flows)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d fixture %d: reused Sim diverged\n got %+v\nwant %+v", round, i, got, want)
			}
		}
	}
}

// TestSimReuseNoBleed pins that two consecutive runs of the same flow
// set on one Sim are identical — stale scratch (water-filling counts,
// subflow tables, finish times) must not leak into the next run.
func TestSimReuseNoBleed(t *testing.T) {
	fx := reuseFixtures()[1]
	sim := NewSim()
	first := cloneResult(sim.Simulate(fx.g, fx.flows))
	second := cloneResult(sim.Simulate(fx.g, fx.flows))
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("consecutive Sim runs diverged:\n%+v\n%+v", first, second)
	}
}
