package netsim

import (
	"math"
	"testing"

	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// lineGraph builds a -- sw -- b with the given capacities.
func lineGraph(capacity units.BytesPerSecond) (*topology.Graph, int, int) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Endpoint, "a", 0, -1)
	sw := g.AddNode(topology.Switch, "sw", 1, -1)
	b := g.AddNode(topology.Endpoint, "b", 0, -1)
	g.AddDuplex(a, sw, capacity, 1e-6)
	g.AddDuplex(sw, b, capacity, 1e-6)
	return g, a, b
}

func pathsOf(t *testing.T, g *topology.Graph, src, dst int) [][]int {
	t.Helper()
	p, err := g.ShortestPaths(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleFlowCompletionTime(t *testing.T) {
	g, a, b := lineGraph(100)
	flows := []Flow{{Src: a, Dst: b, Bytes: 1000, Paths: pathsOf(t, g, a, b)[:1]}}
	res := Simulate(g, flows)
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Errorf("1000 B at 100 B/s should take 10 s, got %v", res.Makespan)
	}
}

func TestStartupLatencyAdds(t *testing.T) {
	g, a, b := lineGraph(100)
	flows := []Flow{{Src: a, Dst: b, Bytes: 1000, Paths: pathsOf(t, g, a, b)[:1], StartupLatency: 2.5}}
	res := Simulate(g, flows)
	if math.Abs(res.Makespan-12.5) > 1e-9 {
		t.Errorf("expected 12.5 s, got %v", res.Makespan)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	g, a, b := lineGraph(100)
	p := pathsOf(t, g, a, b)[:1]
	flows := []Flow{
		{Src: a, Dst: b, Bytes: 1000, Paths: p},
		{Src: a, Dst: b, Bytes: 1000, Paths: p},
	}
	res := Simulate(g, flows)
	// Both share 100 B/s: each runs at 50 => 20 s.
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Errorf("two equal flows should take 20 s, got %v", res.Makespan)
	}
}

func TestShortFlowFinishesThenLongSpeedsUp(t *testing.T) {
	g, a, b := lineGraph(100)
	p := pathsOf(t, g, a, b)[:1]
	flows := []Flow{
		{Src: a, Dst: b, Bytes: 500, Paths: p},
		{Src: a, Dst: b, Bytes: 1500, Paths: p},
	}
	res := Simulate(g, flows)
	// Phase 1: both at 50 B/s for 10 s (short one done, long has 1000
	// left). Phase 2: long one at 100 B/s for 10 s. Total 20 s.
	if math.Abs(res.FlowFinish[0]-10) > 1e-9 {
		t.Errorf("short flow finish = %v, want 10", res.FlowFinish[0])
	}
	if math.Abs(res.FlowFinish[1]-20) > 1e-9 {
		t.Errorf("long flow finish = %v, want 20", res.FlowFinish[1])
	}
}

func TestZeroByteFlow(t *testing.T) {
	g, a, b := lineGraph(100)
	flows := []Flow{{Src: a, Dst: b, Bytes: 0, Paths: pathsOf(t, g, a, b)[:1], StartupLatency: 3e-6}}
	res := Simulate(g, flows)
	if res.Makespan != 3e-6 {
		t.Errorf("zero-byte flow should finish at startup latency, got %v", res.Makespan)
	}
}

func TestLoopbackFlow(t *testing.T) {
	g, a, _ := lineGraph(100)
	flows := []Flow{{Src: a, Dst: a, Bytes: 1e12, Paths: [][]int{nil}, StartupLatency: 1e-6}}
	res := Simulate(g, flows)
	if res.Makespan != 1e-6 {
		t.Errorf("loopback should not consume network time, got %v", res.Makespan)
	}
}

func TestDelayedStart(t *testing.T) {
	g, a, b := lineGraph(100)
	p := pathsOf(t, g, a, b)[:1]
	flows := []Flow{
		{Src: a, Dst: b, Bytes: 1000, Paths: p},
		{Src: a, Dst: b, Bytes: 1000, Paths: p, StartTime: 10},
	}
	res := Simulate(g, flows)
	// Flow 0 runs alone at 100 B/s, finishing exactly when flow 1
	// starts; flow 1 then runs alone: 10 + 10.
	if math.Abs(res.FlowFinish[0]-10) > 1e-9 || math.Abs(res.FlowFinish[1]-20) > 1e-9 {
		t.Errorf("staged flows wrong: %v", res.FlowFinish)
	}
}

func TestDelayedStartContention(t *testing.T) {
	g, a, b := lineGraph(100)
	p := pathsOf(t, g, a, b)[:1]
	flows := []Flow{
		{Src: a, Dst: b, Bytes: 1500, Paths: p},
		{Src: a, Dst: b, Bytes: 500, Paths: p, StartTime: 5},
	}
	res := Simulate(g, flows)
	// 0-5 s: flow 0 alone at 100 (500 done, 1000 left). 5-15 s: both at
	// 50 (flow 1 done at 15, flow 0 has 500 left). 15-20: flow 0 at 100.
	if math.Abs(res.FlowFinish[1]-15) > 1e-9 {
		t.Errorf("flow 1 finish = %v, want 15", res.FlowFinish[1])
	}
	if math.Abs(res.FlowFinish[0]-20) > 1e-9 {
		t.Errorf("flow 0 finish = %v, want 20", res.FlowFinish[0])
	}
}

// multiPathGraph: a - leaf1 - {s1, s2} - leaf2 - b (two equal paths).
func multiPathGraph() (*topology.Graph, int, int) {
	ft := topology.FatTree2{Leaves: 2, Spines: 2, EndpointsPerLeaf: 1,
		Params: topology.FabricParams{EndpointLinkCap: 1000, SwitchLinkCap: 100, EndpointLinkLat: 0, SwitchHopLat: 0}}
	g := ft.Build()
	eps := g.Endpoints()
	return g, eps[0], eps[1]
}

func TestMultipathSpraying(t *testing.T) {
	g, a, b := multiPathGraph()
	paths := pathsOf(t, g, a, b)
	if len(paths) != 2 {
		t.Fatalf("expected 2 paths, got %d", len(paths))
	}
	flows := []Flow{{Src: a, Dst: b, Bytes: 1000, Paths: paths}}
	res := Simulate(g, flows)
	// Sprayed over two 100 B/s spine paths: 200 B/s aggregate => 5 s.
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Errorf("sprayed flow should take 5 s, got %v", res.Makespan)
	}
}

func TestSinglePathUsesOneSpine(t *testing.T) {
	g, a, b := multiPathGraph()
	paths := pathsOf(t, g, a, b)
	flows := []Flow{{Src: a, Dst: b, Bytes: 1000, Paths: paths[:1]}}
	res := Simulate(g, flows)
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Errorf("single-path flow should take 10 s, got %v", res.Makespan)
	}
}

func TestECMPCollisionSlowsFlows(t *testing.T) {
	// Two flows hashed onto the same spine run at half rate; adaptive
	// routing spreads them and restores full rate. This is Figure 8's
	// mechanism in miniature.
	g, a, b := multiPathGraph()
	paths := pathsOf(t, g, a, b)
	collide := []Flow{
		{Src: a, Dst: b, Bytes: 1000, Paths: paths[:1]},
		{Src: a, Dst: b, Bytes: 1000, Paths: paths[:1]},
	}
	spread := []Flow{
		{Src: a, Dst: b, Bytes: 1000, Paths: paths[:1]},
		{Src: a, Dst: b, Bytes: 1000, Paths: paths[1:2]},
	}
	tCollide := Simulate(g, collide).Makespan
	tSpread := Simulate(g, spread).Makespan
	if math.Abs(tCollide-2*tSpread) > 1e-9 {
		t.Errorf("collision should halve throughput: %v vs %v", tCollide, tSpread)
	}
}

func TestMaxLinkBytesHotspot(t *testing.T) {
	g, a, b := multiPathGraph()
	paths := pathsOf(t, g, a, b)
	flows := []Flow{
		{Src: a, Dst: b, Bytes: 600, Paths: paths[:1]},
		{Src: a, Dst: b, Bytes: 400, Paths: paths[:1]},
	}
	res := Simulate(g, flows)
	if res.MaxLinkBytes != 1000 {
		t.Errorf("hotspot bytes = %v, want 1000", res.MaxLinkBytes)
	}
}

func TestInvalidLinkPanics(t *testing.T) {
	g, a, b := lineGraph(100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid link ID")
		}
	}()
	Simulate(g, []Flow{{Src: a, Dst: b, Bytes: 1, Paths: [][]int{{9999}}}})
}

func TestRouterPolicies(t *testing.T) {
	g, a, b := multiPathGraph()
	r := NewRouter(g)

	// Adaptive: all paths.
	ps, err := r.Select(a, b, PolicyAdaptive, 0)
	if err != nil || len(ps) != 2 {
		t.Fatalf("adaptive should return 2 paths: %v, %v", ps, err)
	}
	// ECMP: deterministic single path for a given key.
	p1, _ := r.Select(a, b, PolicyECMP, 42)
	p2, _ := r.Select(a, b, PolicyECMP, 42)
	if len(p1) != 1 || len(p2) != 1 || &p1[0][0] != &p2[0][0] {
		t.Error("ECMP must be deterministic per key")
	}
	// ECMP: different keys eventually use different paths. The paths
	// differ at the leaf→spine hop (index 1); the first hop is the
	// shared endpoint→leaf link.
	seen := map[int]bool{}
	for key := uint64(0); key < 32; key++ {
		p, _ := r.Select(a, b, PolicyECMP, key)
		seen[p[0][1]] = true
	}
	if len(seen) < 2 {
		t.Error("ECMP hash never spread across paths")
	}
	// Static: index selects the path directly.
	s0, _ := r.Select(a, b, PolicyStatic, 0)
	s1, _ := r.Select(a, b, PolicyStatic, 1)
	if s0[0][1] == s1[0][1] {
		t.Error("static indices 0 and 1 should pick distinct paths")
	}
}

func TestRouterCaching(t *testing.T) {
	g, a, b := multiPathGraph()
	r := NewRouter(g)
	first, err := r.Paths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := r.Paths(a, b)
	if &first[0][0] != &second[0][0] {
		t.Error("second lookup should hit the cache")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyECMP.String() != "ECMP" || PolicyAdaptive.String() != "AR" || PolicyStatic.String() != "Static" {
		t.Error("policy names wrong")
	}
}

// Conservation sanity: simulating N identical flows through one link
// takes N times the single-flow time.
func TestLinearScalingOnSharedLink(t *testing.T) {
	g, a, b := lineGraph(100)
	p := pathsOf(t, g, a, b)[:1]
	for _, n := range []int{1, 3, 7} {
		flows := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{Src: a, Dst: b, Bytes: 100, Paths: p}
		}
		res := Simulate(g, flows)
		want := float64(n)
		if math.Abs(res.Makespan-want) > 1e-9 {
			t.Errorf("n=%d: makespan %v, want %v", n, res.Makespan, want)
		}
	}
}
