package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dsv3/internal/topology"
)

// This file checks the fluid simulator's conservation and fairness
// invariants under randomized workloads — the properties the figure
// reproductions silently rely on.

// randomFabric builds a random small leaf-spine fabric.
func randomFabric(rng *rand.Rand) (*topology.Graph, []int) {
	ft := topology.FatTree2{
		Leaves:           2 + rng.Intn(3),
		Spines:           1 + rng.Intn(3),
		EndpointsPerLeaf: 2 + rng.Intn(3),
		Params: topology.FabricParams{
			EndpointLinkCap: 50 + rng.Float64()*100,
			SwitchLinkCap:   50 + rng.Float64()*100,
		},
	}
	g := ft.Build()
	return g, g.Endpoints()
}

// Property: makespan is at least the lower bound implied by any single
// link's total byte load divided by its capacity.
func TestMakespanAboveLinkLoadBound(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, eps := randomFabric(r)
		router := NewRouter(g)
		linkBytes := make([]float64, len(g.Links))
		var flows []Flow
		for i := 0; i < 4+r.Intn(8); i++ {
			src := eps[r.Intn(len(eps))]
			dst := eps[r.Intn(len(eps))]
			if src == dst {
				continue
			}
			paths, err := router.Select(src, dst, PolicyECMP, uint64(i))
			if err != nil {
				return false
			}
			bytes := 100 + r.Float64()*1000
			flows = append(flows, Flow{Src: src, Dst: dst, Bytes: bytes, Paths: paths})
			for _, lid := range paths[0] {
				linkBytes[lid] += bytes
			}
		}
		if len(flows) == 0 {
			return true
		}
		res := Simulate(g, flows)
		for lid, bytes := range linkBytes {
			bound := bytes / g.Links[lid].Capacity
			if res.Makespan < bound-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: every flow finishes no earlier than its own serialization
// time on its slowest link (running alone is the best case).
func TestFlowFinishAboveSoloBound(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, eps := randomFabric(r)
		router := NewRouter(g)
		var flows []Flow
		for i := 0; i < 3+r.Intn(6); i++ {
			src, dst := eps[r.Intn(len(eps))], eps[r.Intn(len(eps))]
			if src == dst {
				continue
			}
			paths, err := router.Select(src, dst, PolicyECMP, uint64(i*7))
			if err != nil {
				return false
			}
			flows = append(flows, Flow{Src: src, Dst: dst, Bytes: 100 + r.Float64()*500, Paths: paths})
		}
		if len(flows) == 0 {
			return true
		}
		res := Simulate(g, flows)
		for fi, fl := range flows {
			minCap := math.Inf(1)
			for _, lid := range fl.Paths[0] {
				minCap = math.Min(minCap, g.Links[lid].Capacity)
			}
			solo := fl.Bytes / minCap
			if res.FlowFinish[fi] < solo-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all byte counts scales all finish times linearly
// (fluid model homogeneity).
func TestFluidHomogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g, eps := randomFabric(rng)
	router := NewRouter(g)
	var flows, scaled []Flow
	const k = 3.5
	for i := 0; i < 6; i++ {
		src, dst := eps[i%len(eps)], eps[(i*3+1)%len(eps)]
		if src == dst {
			continue
		}
		paths, err := router.Select(src, dst, PolicyECMP, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		bytes := 100 + rng.Float64()*900
		flows = append(flows, Flow{Src: src, Dst: dst, Bytes: bytes, Paths: paths})
		scaled = append(scaled, Flow{Src: src, Dst: dst, Bytes: bytes * k, Paths: paths})
	}
	a := Simulate(g, flows)
	b := Simulate(g, scaled)
	for i := range a.FlowFinish {
		if math.Abs(b.FlowFinish[i]-k*a.FlowFinish[i]) > 1e-6*(1+b.FlowFinish[i]) {
			t.Fatalf("homogeneity violated at flow %d: %v vs %v", i, b.FlowFinish[i], k*a.FlowFinish[i])
		}
	}
}

// Property: on a single shared bottleneck, adding a flow never speeds
// up existing flows. (The unrestricted version of this property is
// FALSE for max-min fairness — throttling a competitor on a different
// link can legitimately speed up a flow — so the invariant is only
// asserted in its single-bottleneck form.)
func TestMonotoneUnderLoadSingleBottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 30; trial++ {
		g, eps := randomFabric(rng)
		router := NewRouter(g)
		src, dst := eps[0], eps[len(eps)-1]
		paths, err := router.Select(src, dst, PolicyECMP, 1)
		if err != nil {
			t.Fatal(err)
		}
		var flows []Flow
		for i := 0; i < 5; i++ {
			flows = append(flows, Flow{Src: src, Dst: dst, Bytes: 100 + rng.Float64()*900, Paths: paths})
		}
		base := Simulate(g, flows[:len(flows)-1])
		more := Simulate(g, flows)
		for i := range base.FlowFinish {
			if more.FlowFinish[i] < base.FlowFinish[i]-1e-9 {
				t.Fatalf("adding load sped up flow %d: %v -> %v", i, base.FlowFinish[i], more.FlowFinish[i])
			}
		}
	}
}

// RateCap behaviour: a capped flow alone takes bytes/cap; the cap never
// helps and caps compose with congestion.
func TestRateCapProperty(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Endpoint, "a", 0, -1)
	sw := g.AddNode(topology.Switch, "sw", 1, -1)
	b := g.AddNode(topology.Endpoint, "b", 0, -1)
	g.AddDuplex(a, sw, 100, 0)
	g.AddDuplex(sw, b, 100, 0)
	paths, err := g.ShortestPaths(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Cap below link rate binds.
	res := Simulate(g, []Flow{{Src: a, Dst: b, Bytes: 1000, Paths: paths, RateCap: 25}})
	if math.Abs(res.Makespan-40) > 1e-9 {
		t.Errorf("capped solo flow should take 40s, got %v", res.Makespan)
	}
	// Cap above link rate is inert.
	res = Simulate(g, []Flow{{Src: a, Dst: b, Bytes: 1000, Paths: paths, RateCap: 1000}})
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Errorf("loose cap should not bind: %v", res.Makespan)
	}
	// Capped + uncapped sharing: capped flow at 25, uncapped gets 75.
	res = Simulate(g, []Flow{
		{Src: a, Dst: b, Bytes: 1000, Paths: paths, RateCap: 25},
		{Src: a, Dst: b, Bytes: 750, Paths: paths},
	})
	if math.Abs(res.FlowFinish[1]-10) > 1e-9 {
		t.Errorf("uncapped flow should absorb headroom: %v", res.FlowFinish[1])
	}
	if math.Abs(res.FlowFinish[0]-40) > 1e-9 {
		t.Errorf("capped flow stays capped: %v", res.FlowFinish[0])
	}
}
