// Package netsim is a flow-level discrete-event network simulator: the
// substitute for the real 2,048-GPU cluster the paper measured on.
//
// Traffic is modelled as fluid flows over the directed link graph from
// internal/topology. At any instant, active flows receive max-min fair
// rates (progressive filling — the equilibrium a congestion-controlled
// fabric approximates); the simulator advances directly from one flow
// completion to the next, recomputing rates at each event. A flow may
// be split over several equal-cost paths ("subflows") to model adaptive
// routing / packet spraying; single-path flows model ECMP-hashed or
// statically routed traffic.
//
// Small-message behaviour is captured by a per-flow startup latency
// (path propagation + NIC/software overheads), which the latency
// experiments (Table 5, Figure 6) are built on.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// Flow is one logical transfer.
type Flow struct {
	// Src and Dst are node IDs; informational (paths define routing).
	Src, Dst int
	// Bytes is the payload size. Zero-byte flows complete at their
	// startup latency.
	Bytes units.Bytes
	// Paths lists one or more link-ID paths. With several paths the
	// bytes are split evenly (fluid packet-spraying). An empty path
	// (nil or zero-length inner slice) is a loopback that completes at
	// the startup latency.
	Paths [][]int
	// StartupLatency is added to the flow's completion time: path
	// propagation plus endpoint software/NIC overheads.
	StartupLatency units.Seconds
	// StartTime lets staged collectives inject flows later than t=0.
	StartTime units.Seconds
	// RateCap, when positive, bounds the flow's aggregate rate
	// regardless of link headroom — modelling per-QP / per-peer
	// pipelining limits of RDMA endpoints. With multiple paths the cap
	// is split evenly across subflows.
	RateCap units.BytesPerSecond
}

// Result summarizes one simulation run.
type Result struct {
	// Makespan is the completion time of the last flow.
	Makespan units.Seconds
	// FlowFinish holds each flow's completion time, indexed like the
	// input slice.
	FlowFinish []units.Seconds
	// MaxLinkBytes is the largest per-link byte total — useful for
	// hotspot analysis in the routing experiments.
	MaxLinkBytes units.Bytes
}

type subflow struct {
	flow int
	// pathStart/pathEnd delimit the subflow's link-ID path inside the
	// simulation's flat path arena (Sim.paths): the water-filling loops
	// walk paths every epoch, and one contiguous arena keeps those scans
	// sequential instead of chasing per-flow slice headers.
	pathStart, pathEnd int
	remaining          units.Bytes
	rate               float64
	cap                float64 // per-subflow rate cap; 0 = uncapped
}

// Simulate runs the fluid simulation to completion and returns per-flow
// finish times. It panics on malformed paths (link IDs out of range),
// since those are programming errors in the collective layer. Each call
// allocates fresh scratch; hot loops that simulate many flow sets should
// hold a Sim and call its Simulate method instead.
func Simulate(g *topology.Graph, flows []Flow) Result {
	return NewSim().Simulate(g, flows)
}

// Sim is a reusable simulation context: it owns every scratch buffer
// the fluid simulation needs (subflow table, water-filling state,
// admission order, per-flow finish times), so repeated runs — the
// all-to-all rounds of a collective sweep, the probes of a capacity
// search — are allocation-free at steady state. A Sim is not safe for
// concurrent use; sweeps thread one Sim per worker through
// parallel.MapScratch. Results are byte-identical to the package-level
// Simulate function: scratch reuse never changes the arithmetic, only
// where the buffers live.
type Sim struct {
	subs          []subflow
	paths         []int // flat path arena, indexed by subflow.pathStart/End
	flowRemaining []int // unfinished subflows per flow
	flowNetDone   []units.Seconds
	linkBytes     []units.Bytes
	bySID         []int
	active        []int
	flowFinish    []units.Seconds
	pf            filler
}

// NewSim returns an empty simulation context. Buffers grow to the
// high-water mark of the flow sets it simulates and are reused across
// calls.
func NewSim() *Sim { return &Sim{} }

// grow returns s resized to n entries, all zero-valued, reusing the
// backing array when it is large enough.
func grow[E any](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Simulate runs the fluid simulation on the context's reused scratch.
// The returned Result's FlowFinish slice aliases a buffer owned by the
// Sim: it is valid until the next Simulate call on the same Sim.
// Callers that need the finish times beyond that must copy them.
func (s *Sim) Simulate(g *topology.Graph, flows []Flow) Result {
	s.flowFinish = grow(s.flowFinish, len(flows))
	res := Result{FlowFinish: s.flowFinish}
	s.linkBytes = grow(s.linkBytes, len(g.Links))
	linkBytes := s.linkBytes

	// Explode flows into subflows. Counting subflows first sizes the
	// reused tables exactly, so even the cold first call allocates once
	// instead of append-doubling.
	nsubs, npath := 0, 0
	for _, f := range flows {
		if len(f.Paths) > 0 && f.Bytes > 0 {
			nsubs += len(f.Paths)
			for _, p := range f.Paths {
				npath += len(p)
			}
		}
	}
	if cap(s.subs) < nsubs {
		s.subs = make([]subflow, 0, nsubs)
	}
	subs := s.subs[:0]
	if cap(s.paths) < npath {
		s.paths = make([]int, 0, npath)
	}
	arena := s.paths[:0]
	s.flowRemaining = grow(s.flowRemaining, len(flows))
	flowRemaining := s.flowRemaining
	s.flowNetDone = grow(s.flowNetDone, len(flows))
	flowNetDone := s.flowNetDone
	for fi, f := range flows {
		paths := f.Paths
		if len(paths) == 0 {
			paths = [][]int{nil}
		}
		share := f.Bytes / float64(len(paths))
		if f.StartTime > flowNetDone[fi] {
			flowNetDone[fi] = f.StartTime
		}
		for _, p := range paths {
			for _, lid := range p {
				if lid < 0 || lid >= len(g.Links) {
					panic(fmt.Sprintf("netsim: flow %d references invalid link %d", fi, lid))
				}
				linkBytes[lid] += share
			}
			if len(p) == 0 || share == 0 {
				continue // loopback or zero bytes: done at StartTime
			}
			var subCap float64
			if f.RateCap > 0 {
				subCap = f.RateCap / float64(len(paths))
			}
			start := len(arena)
			arena = append(arena, p...)
			subs = append(subs, subflow{flow: fi, pathStart: start, pathEnd: len(arena), remaining: share, cap: subCap})
			flowRemaining[fi]++
		}
	}
	s.subs = subs
	s.paths = arena
	for _, b := range linkBytes {
		if b > res.MaxLinkBytes {
			res.MaxLinkBytes = b
		}
	}

	// Group subflows by start time. Most collectives launch everything
	// at t=0, in which case creation order is already sorted.
	if cap(s.bySID) < len(subs) {
		s.bySID = make([]int, len(subs))
	}
	bySID := s.bySID[:len(subs)]
	staged := false
	for i := range bySID {
		bySID[i] = i
		if flows[subs[i].flow].StartTime != 0 {
			staged = true
		}
	}
	if staged {
		sort.SliceStable(bySID, func(a, b int) bool {
			return flows[subs[bySID[a]].flow].StartTime < flows[subs[bySID[b]].flow].StartTime
		})
	}

	now := 0.0
	nextStart := 0
	active := s.active[:0]
	pf := &s.pf
	pf.reset(g, subs, arena)

	for {
		// Admit subflows whose start time has arrived.
		for nextStart < len(bySID) {
			si := bySID[nextStart]
			if flows[subs[si].flow].StartTime > now+1e-15 {
				break
			}
			active = append(active, si)
			nextStart++
		}
		if len(active) == 0 {
			if nextStart < len(bySID) {
				now = flows[subs[bySID[nextStart]].flow].StartTime
				continue
			}
			break
		}

		pf.assign(subs, active, arena)

		// Advance to the next event: earliest subflow completion or the
		// next admission.
		dt := math.Inf(1)
		for _, si := range active {
			s := &subs[si]
			if s.rate > 0 {
				if t := s.remaining / s.rate; t < dt {
					dt = t
				}
			}
		}
		if nextStart < len(bySID) {
			if t := flows[subs[bySID[nextStart]].flow].StartTime - now; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			panic("netsim: deadlock — active subflows with zero rate")
		}
		if dt < 0 {
			dt = 0
		}

		now += dt
		// Drain and retire completed subflows.
		stillActive := active[:0]
		for _, si := range active {
			s := &subs[si]
			s.remaining -= s.rate * dt
			if s.remaining <= 1e-9 {
				fi := s.flow
				flowRemaining[fi]--
				if flowRemaining[fi] == 0 && now > flowNetDone[fi] {
					flowNetDone[fi] = now
				}
			} else {
				stillActive = append(stillActive, si)
			}
		}
		active = stillActive
	}
	s.active = active[:0]

	for fi, f := range flows {
		res.FlowFinish[fi] = flowNetDone[fi] + f.StartupLatency
		if res.FlowFinish[fi] > res.Makespan {
			res.Makespan = res.FlowFinish[fi]
		}
	}
	return res
}

// filler holds the scratch buffers of progressive filling so the event
// loop does not reallocate per epoch — and, embedded in a Sim, not per
// run either. Rate-capped subflows are modelled by a private virtual
// link (IDs beyond the real link range) with the cap as its capacity.
type filler struct {
	g        *topology.Graph
	residual []float64
	count    []int
	touched  []int
	frozen   []bool
	vlink    []int // subflow -> virtual link ID this epoch (-1 none)

	// Per-link subflow lists in CSR form over one flat arena: link lid's
	// list lives in entries[listStart[lid] : next[lid]], where next is
	// the write cursor the epoch rebuild advances (rewound to listStart
	// when a link is first touched in an epoch). reset sizes the arena
	// from the run's total path footprint (an upper bound on any epoch's
	// lists), so epoch rebuilds write straight into place — no per-link
	// slice growth, ever.
	listStart []int
	next      []int
	entries   []int
}

// reset prepares the filler for one simulation run, growing (and
// re-zeroing) the link-indexed scratch as needed. assign relies on
// count being all-zero between epochs; reset re-establishes that
// invariant explicitly so an abandoned run (panic) cannot poison the
// next one.
func (pf *filler) reset(g *topology.Graph, subs []subflow, arena []int) {
	// Virtual links exist only for rate-capped subflows; sizing the
	// link-indexed scratch to links+capped (not links+len(subs)) keeps
	// the allocation proportional to the real problem — collectives
	// typically cap nothing.
	capped := 0
	for i := range subs {
		if subs[i].cap > 0 {
			capped++
		}
	}
	pf.g = g
	nLinks := len(g.Links)
	total := nLinks + capped
	pf.residual = grow(pf.residual, total)
	pf.count = grow(pf.count, total)
	pf.frozen = grow(pf.frozen, len(subs))
	pf.vlink = grow(pf.vlink, len(subs))

	// Lay out the CSR arena: count every subflow traversal per link —
	// an upper bound on any single epoch's list, since an epoch's active
	// set is a subset of all subflows — then prefix-sum into start
	// offsets. Virtual links get one slot each (a virtual link carries
	// exactly its own capped subflow).
	pf.listStart = grow(pf.listStart, total)
	if cap(pf.next) < total {
		pf.next = make([]int, total)
	} else {
		pf.next = pf.next[:total] // stale cursors fine: rewound on touch
	}
	counts := pf.listStart
	for _, lid := range arena {
		counts[lid]++
	}
	sum := 0
	for lid := 0; lid < nLinks; lid++ {
		c := counts[lid]
		counts[lid] = sum
		sum += c
	}
	for vid := nLinks; vid < total; vid++ {
		counts[vid] = sum
		sum++
	}
	if cap(pf.entries) < sum {
		pf.entries = make([]int, sum)
	} else {
		pf.entries = pf.entries[:sum]
	}
}

// assign computes the (unique) max-min fair allocation for the active
// subflows. Ties are broken by lowest link ID for determinism.
func (pf *filler) assign(subs []subflow, active []int, arena []int) {
	nLinks := len(pf.g.Links)
	pf.touched = pf.touched[:0]
	nextVirtual := nLinks
	for _, si := range active {
		sub := &subs[si]
		sub.rate = 0
		pf.frozen[si] = false
		pf.vlink[si] = -1
		for _, lid := range arena[sub.pathStart:sub.pathEnd] {
			if pf.count[lid] == 0 {
				pf.residual[lid] = pf.g.Links[lid].Capacity
				pf.next[lid] = pf.listStart[lid]
				pf.touched = append(pf.touched, lid)
			}
			pf.count[lid]++
			pf.entries[pf.next[lid]] = si
			pf.next[lid]++
		}
		if sub.cap > 0 {
			vid := nextVirtual
			nextVirtual++
			pf.residual[vid] = sub.cap
			pf.count[vid] = 1
			start := pf.listStart[vid]
			pf.entries[start] = si
			pf.next[vid] = start + 1
			pf.touched = append(pf.touched, vid)
			pf.vlink[si] = vid
		}
	}

	undetermined := len(active)
	for undetermined > 0 {
		// Water-filling level: the minimum per-subflow share over all
		// still-loaded links.
		minShare := math.Inf(1)
		for _, lid := range pf.touched {
			if pf.count[lid] <= 0 {
				continue
			}
			if share := pf.residual[lid] / float64(pf.count[lid]); share < minShare {
				minShare = share
			}
		}
		if math.IsInf(minShare, 1) {
			panic("netsim: progressive filling found no bottleneck")
		}
		rate := minShare
		if rate < 0 {
			rate = 0
		}
		// Freeze every link sitting at the level in one batch. Removing
		// a subflow at exactly the bottleneck rate keeps a same-level
		// link at that level (residual −= r, count −= 1 preserves
		// residual/count = r), so batch-freezing equals the classic
		// one-link-per-iteration filling while doing O(levels) instead
		// of O(links) selection sweeps.
		for _, lid := range pf.touched {
			if pf.count[lid] <= 0 || pf.residual[lid]/float64(pf.count[lid]) != minShare {
				continue
			}
			for _, si := range pf.entries[pf.listStart[lid]:pf.next[lid]] {
				if pf.frozen[si] {
					continue
				}
				pf.frozen[si] = true
				sub := &subs[si]
				sub.rate = rate
				undetermined--
				for _, plid := range arena[sub.pathStart:sub.pathEnd] {
					pf.residual[plid] -= rate
					pf.count[plid]--
				}
				if v := pf.vlink[si]; v >= 0 {
					pf.residual[v] -= rate
					pf.count[v]--
				}
			}
		}
	}
	// Reset counters for the next epoch.
	for _, lid := range pf.touched {
		pf.count[lid] = 0
	}
}
