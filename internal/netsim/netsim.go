// Package netsim is a flow-level discrete-event network simulator: the
// substitute for the real 2,048-GPU cluster the paper measured on.
//
// Traffic is modelled as fluid flows over the directed link graph from
// internal/topology. At any instant, active flows receive max-min fair
// rates (progressive filling — the equilibrium a congestion-controlled
// fabric approximates); the simulator advances directly from one flow
// completion to the next, recomputing rates at each event. A flow may
// be split over several equal-cost paths ("subflows") to model adaptive
// routing / packet spraying; single-path flows model ECMP-hashed or
// statically routed traffic.
//
// Small-message behaviour is captured by a per-flow startup latency
// (path propagation + NIC/software overheads), which the latency
// experiments (Table 5, Figure 6) are built on.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"dsv3/internal/topology"
	"dsv3/internal/units"
)

// Flow is one logical transfer.
type Flow struct {
	// Src and Dst are node IDs; informational (paths define routing).
	Src, Dst int
	// Bytes is the payload size. Zero-byte flows complete at their
	// startup latency.
	Bytes units.Bytes
	// Paths lists one or more link-ID paths. With several paths the
	// bytes are split evenly (fluid packet-spraying). An empty path
	// (nil or zero-length inner slice) is a loopback that completes at
	// the startup latency.
	Paths [][]int
	// StartupLatency is added to the flow's completion time: path
	// propagation plus endpoint software/NIC overheads.
	StartupLatency units.Seconds
	// StartTime lets staged collectives inject flows later than t=0.
	StartTime units.Seconds
	// RateCap, when positive, bounds the flow's aggregate rate
	// regardless of link headroom — modelling per-QP / per-peer
	// pipelining limits of RDMA endpoints. With multiple paths the cap
	// is split evenly across subflows.
	RateCap units.BytesPerSecond
}

// Result summarizes one simulation run.
type Result struct {
	// Makespan is the completion time of the last flow.
	Makespan units.Seconds
	// FlowFinish holds each flow's completion time, indexed like the
	// input slice.
	FlowFinish []units.Seconds
	// MaxLinkBytes is the largest per-link byte total — useful for
	// hotspot analysis in the routing experiments.
	MaxLinkBytes units.Bytes
}

type subflow struct {
	flow      int
	path      []int
	remaining units.Bytes
	rate      float64
	cap       float64 // per-subflow rate cap; 0 = uncapped
}

// Simulate runs the fluid simulation to completion and returns per-flow
// finish times. It panics on malformed paths (link IDs out of range),
// since those are programming errors in the collective layer.
func Simulate(g *topology.Graph, flows []Flow) Result {
	res := Result{FlowFinish: make([]units.Seconds, len(flows))}
	linkBytes := make([]units.Bytes, len(g.Links))

	// Explode flows into subflows.
	var subs []subflow
	flowRemaining := make([]int, len(flows)) // unfinished subflows per flow
	flowNetDone := make([]units.Seconds, len(flows))
	for fi, f := range flows {
		paths := f.Paths
		if len(paths) == 0 {
			paths = [][]int{nil}
		}
		share := f.Bytes / float64(len(paths))
		if f.StartTime > flowNetDone[fi] {
			flowNetDone[fi] = f.StartTime
		}
		for _, p := range paths {
			for _, lid := range p {
				if lid < 0 || lid >= len(g.Links) {
					panic(fmt.Sprintf("netsim: flow %d references invalid link %d", fi, lid))
				}
				linkBytes[lid] += share
			}
			if len(p) == 0 || share == 0 {
				continue // loopback or zero bytes: done at StartTime
			}
			var subCap float64
			if f.RateCap > 0 {
				subCap = f.RateCap / float64(len(paths))
			}
			subs = append(subs, subflow{flow: fi, path: p, remaining: share, cap: subCap})
			flowRemaining[fi]++
		}
	}
	for _, b := range linkBytes {
		if b > res.MaxLinkBytes {
			res.MaxLinkBytes = b
		}
	}

	// Group subflows by start time. Most collectives launch everything
	// at t=0, in which case creation order is already sorted.
	bySID := make([]int, len(subs))
	staged := false
	for i := range bySID {
		bySID[i] = i
		if flows[subs[i].flow].StartTime != 0 {
			staged = true
		}
	}
	if staged {
		sort.SliceStable(bySID, func(a, b int) bool {
			return flows[subs[bySID[a]].flow].StartTime < flows[subs[bySID[b]].flow].StartTime
		})
	}

	now := 0.0
	nextStart := 0
	var active []int
	pf := newFiller(g, subs)

	for {
		// Admit subflows whose start time has arrived.
		for nextStart < len(bySID) {
			si := bySID[nextStart]
			if flows[subs[si].flow].StartTime > now+1e-15 {
				break
			}
			active = append(active, si)
			nextStart++
		}
		if len(active) == 0 {
			if nextStart < len(bySID) {
				now = flows[subs[bySID[nextStart]].flow].StartTime
				continue
			}
			break
		}

		pf.assign(subs, active)

		// Advance to the next event: earliest subflow completion or the
		// next admission.
		dt := math.Inf(1)
		for _, si := range active {
			s := &subs[si]
			if s.rate > 0 {
				if t := s.remaining / s.rate; t < dt {
					dt = t
				}
			}
		}
		if nextStart < len(bySID) {
			if t := flows[subs[bySID[nextStart]].flow].StartTime - now; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			panic("netsim: deadlock — active subflows with zero rate")
		}
		if dt < 0 {
			dt = 0
		}

		now += dt
		// Drain and retire completed subflows.
		stillActive := active[:0]
		for _, si := range active {
			s := &subs[si]
			s.remaining -= s.rate * dt
			if s.remaining <= 1e-9 {
				fi := s.flow
				flowRemaining[fi]--
				if flowRemaining[fi] == 0 && now > flowNetDone[fi] {
					flowNetDone[fi] = now
				}
			} else {
				stillActive = append(stillActive, si)
			}
		}
		active = stillActive
	}

	for fi, f := range flows {
		res.FlowFinish[fi] = flowNetDone[fi] + f.StartupLatency
		if res.FlowFinish[fi] > res.Makespan {
			res.Makespan = res.FlowFinish[fi]
		}
	}
	return res
}

// filler holds the scratch buffers of progressive filling so the event
// loop does not reallocate per epoch. Rate-capped subflows are modelled
// by a private virtual link (IDs beyond the real link range) with the
// cap as its capacity.
type filler struct {
	g        *topology.Graph
	residual []float64
	count    []int
	linkSubs [][]int
	touched  []int
	frozen   []bool
	vlink    []int // subflow -> virtual link ID this epoch (-1 none)
}

func newFiller(g *topology.Graph, subs []subflow) *filler {
	// Virtual links exist only for rate-capped subflows; sizing the
	// link-indexed scratch to links+capped (not links+len(subs)) keeps
	// the allocation proportional to the real problem — collectives
	// typically cap nothing.
	capped := 0
	for i := range subs {
		if subs[i].cap > 0 {
			capped++
		}
	}
	pf := &filler{g: g}
	total := len(g.Links) + capped
	pf.residual = make([]float64, total)
	pf.count = make([]int, total)
	pf.linkSubs = make([][]int, total)
	pf.frozen = make([]bool, len(subs))
	pf.vlink = make([]int, len(subs))
	return pf
}

// assign computes the (unique) max-min fair allocation for the active
// subflows. Ties are broken by lowest link ID for determinism.
func (pf *filler) assign(subs []subflow, active []int) {
	nLinks := len(pf.g.Links)
	pf.touched = pf.touched[:0]
	nextVirtual := nLinks
	for _, si := range active {
		subs[si].rate = 0
		pf.frozen[si] = false
		pf.vlink[si] = -1
		for _, lid := range subs[si].path {
			if pf.count[lid] == 0 {
				pf.residual[lid] = pf.g.Links[lid].Capacity
				pf.linkSubs[lid] = pf.linkSubs[lid][:0]
				pf.touched = append(pf.touched, lid)
			}
			pf.count[lid]++
			pf.linkSubs[lid] = append(pf.linkSubs[lid], si)
		}
		if subs[si].cap > 0 {
			vid := nextVirtual
			nextVirtual++
			pf.residual[vid] = subs[si].cap
			pf.count[vid] = 1
			pf.linkSubs[vid] = append(pf.linkSubs[vid][:0], si)
			pf.touched = append(pf.touched, vid)
			pf.vlink[si] = vid
		}
	}

	undetermined := len(active)
	for undetermined > 0 {
		// Water-filling level: the minimum per-subflow share over all
		// still-loaded links.
		minShare := math.Inf(1)
		for _, lid := range pf.touched {
			if pf.count[lid] <= 0 {
				continue
			}
			if share := pf.residual[lid] / float64(pf.count[lid]); share < minShare {
				minShare = share
			}
		}
		if math.IsInf(minShare, 1) {
			panic("netsim: progressive filling found no bottleneck")
		}
		rate := minShare
		if rate < 0 {
			rate = 0
		}
		// Freeze every link sitting at the level in one batch. Removing
		// a subflow at exactly the bottleneck rate keeps a same-level
		// link at that level (residual −= r, count −= 1 preserves
		// residual/count = r), so batch-freezing equals the classic
		// one-link-per-iteration filling while doing O(levels) instead
		// of O(links) selection sweeps.
		for _, lid := range pf.touched {
			if pf.count[lid] <= 0 || pf.residual[lid]/float64(pf.count[lid]) != minShare {
				continue
			}
			for _, si := range pf.linkSubs[lid] {
				if pf.frozen[si] {
					continue
				}
				pf.frozen[si] = true
				subs[si].rate = rate
				undetermined--
				for _, plid := range subs[si].path {
					pf.residual[plid] -= rate
					pf.count[plid]--
				}
				if v := pf.vlink[si]; v >= 0 {
					pf.residual[v] -= rate
					pf.count[v]--
				}
			}
		}
	}
	// Reset counters for the next epoch.
	for _, lid := range pf.touched {
		pf.count[lid] = 0
	}
}
