package results

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleResult() *Result {
	t := NewTable("Sample: speeds",
		C("Name"), CU("BW", "GB/s"), C("Count"), C("OK"), C("Note"))
	t.Row(Str("alpha"), Float("%.2f", 41.237), Int(3), Bool(true), NA())
	t.Row(Str("beta,quoted"), Float("%.1fx", 2.5), Int(-1), Bool(false), Val("1KiB", 1024.0))
	r := New("sample", "emitter test fixture", t).WithSeed(42)
	r.Meta.Quick = true
	return r
}

func TestTextMatchesCellText(t *testing.T) {
	out := sampleResult().Text()
	for _, want := range []string{"Sample: speeds", "41.24", "2.5x", "alpha", "1KiB", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Units are metadata, not display: the text header is the bare name.
	if strings.Contains(out, "GB/s]") {
		t.Errorf("text output leaked unit annotations:\n%s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sampleResult()
	var first bytes.Buffer
	if err := EmitJSON(&first, r); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := EmitJSON(&second, dec); err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 || first.String() != second.String() {
		t.Errorf("encode/decode/encode not a fixed point:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
}

func TestJSONRoundTripPreservesTypesAndMeta(t *testing.T) {
	r := sampleResult()
	// Not an integral number of milliseconds: the decode must round,
	// not truncate, to land back on the original duration.
	r.Meta.WallTime = 1234567 * time.Nanosecond
	var buf bytes.Buffer
	if err := EmitJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Experiment != "sample" || dec.Desc != "emitter test fixture" {
		t.Errorf("identity lost: %+v", dec)
	}
	if dec.Meta.Seed != 42 || !dec.Meta.Quick || dec.Meta.WallTime != 1234567*time.Nanosecond {
		t.Errorf("meta lost: %+v", dec.Meta)
	}
	row := dec.Tables[0].Rows[0]
	if _, ok := row[0].Value.(string); !ok {
		t.Errorf("string cell decoded as %T", row[0].Value)
	}
	if v, ok := row[1].Value.(float64); !ok || v != 41.237 {
		t.Errorf("float cell decoded as %T %v", row[1].Value, row[1].Value)
	}
	if v, ok := row[2].Value.(int); !ok || v != 3 {
		t.Errorf("int cell decoded as %T %v", row[2].Value, row[2].Value)
	}
	if v, ok := row[3].Value.(bool); !ok || !v {
		t.Errorf("bool cell decoded as %T %v", row[3].Value, row[3].Value)
	}
	if row[4].Value != nil {
		t.Errorf("NA cell decoded as %T %v", row[4].Value, row[4].Value)
	}
}

// Column names and units are API surface consumed by downstream
// tooling; they must survive the round trip exactly.
func TestJSONColumnAndUnitStability(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := EmitJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Tables[0].Columns
	got := dec.Tables[0].Columns
	if len(got) != len(want) {
		t.Fatalf("column count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("column %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONOmitsVolatileWallTimeWhenZero(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitJSON(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall_ms") {
		t.Errorf("zero wall time must not be emitted (golden determinism):\n%s", buf.String())
	}
}

func TestJSONRejectsUnknownSchemaVersion(t *testing.T) {
	doc := strings.Replace(`{"experiment":"x","schema_version":1,"quick":false,"tables":[]}`,
		`"schema_version":1`, `"schema_version":99`, 1)
	if _, err := DecodeJSON(strings.NewReader(doc)); err == nil {
		t.Error("expected schema version error")
	}
}

func TestCSVEmitter(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "# experiment: sample" {
		t.Errorf("missing experiment comment: %q", lines[0])
	}
	if lines[2] != "Name,BW [GB/s],Count,OK,Note" {
		t.Errorf("header = %q", lines[2])
	}
	// Values are canonical, not display text: 41.237 not "41.24",
	// comma-bearing strings quoted, NA empty.
	if lines[3] != "alpha,41.237,3,true," {
		t.Errorf("row 1 = %q", lines[3])
	}
	if lines[4] != `"beta,quoted",2.5,-1,false,1024` {
		t.Errorf("row 2 = %q", lines[4])
	}
}

func TestCSVMultiTableAndAll(t *testing.T) {
	r := sampleResult()
	second := NewTable("Second table", C("k"), C("v"))
	second.Row(Str("x"), Int(1))
	r.Tables = append(r.Tables, second)
	var buf bytes.Buffer
	if err := EmitCSVAll(&buf, []*Result{r, sampleResult()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# experiment: sample") != 3 {
		t.Errorf("expected 3 table blocks:\n%s", out)
	}
	if !strings.Contains(out, "\n\n# experiment") && !strings.Contains(out, "\n\n# table") {
		t.Errorf("blocks must be blank-line separated:\n%s", out)
	}
}

func TestEmitJSONAllIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitJSONAll(&buf, []*Result{sampleResult(), sampleResult()}); err != nil {
		t.Fatal(err)
	}
	s := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		t.Errorf("expected JSON array, got:\n%s", s)
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "json", "csv"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat(yaml) should fail")
	}
	if FormatJSON.Ext() != "json" || FormatCSV.Ext() != "csv" || FormatText.Ext() != "txt" {
		t.Error("Ext() mapping wrong")
	}
}
