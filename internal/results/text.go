package results

import (
	"strings"

	"dsv3/internal/tablefmt"
)

// Text renders the table through the fixed-width tablefmt renderer.
// Cell texts are passed through verbatim, so output is byte-identical
// to the historical per-runner tablefmt rendering.
func (t *Table) Text() string {
	headers := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		headers[i] = c.Name
	}
	tf := tablefmt.New(t.Title, headers...)
	for _, row := range t.Rows {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = c.Text
		}
		tf.AddRow(cells...)
	}
	return tf.String()
}

// Text renders every table of the result, blank-line separated — the
// exact concatenation the historical Render helpers produced.
func (r *Result) Text() string {
	parts := make([]string, len(r.Tables))
	for i, t := range r.Tables {
		parts[i] = t.Text()
	}
	return strings.Join(parts, "\n")
}
