package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// The JSON document layout. Field order is fixed by the struct
// definitions, so encoding is deterministic — a requirement of the
// golden corpus (testdata/golden) that CI diffs byte-for-byte.
type jsonResult struct {
	Experiment    string      `json:"experiment"`
	Description   string      `json:"description,omitempty"`
	SchemaVersion int         `json:"schema_version"`
	Seed          int64       `json:"seed,omitempty"`
	Quick         bool        `json:"quick"`
	WallMS        float64     `json:"wall_ms,omitempty"`
	Tables        []jsonTable `json:"tables"`
}

type jsonTable struct {
	Title   string       `json:"title"`
	Columns []jsonColumn `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

type jsonColumn struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

func toJSON(r *Result) jsonResult {
	out := jsonResult{
		Experiment:    r.Experiment,
		Description:   r.Desc,
		SchemaVersion: SchemaVersion,
		Seed:          r.Meta.Seed,
		Quick:         r.Meta.Quick,
		WallMS:        float64(r.Meta.WallTime) / float64(time.Millisecond),
		Tables:        make([]jsonTable, 0, len(r.Tables)),
	}
	for _, t := range r.Tables {
		jt := jsonTable{
			Title:   t.Title,
			Columns: make([]jsonColumn, 0, len(t.Columns)),
			Rows:    make([][]any, 0, len(t.Rows)),
		}
		for _, c := range t.Columns {
			jt.Columns = append(jt.Columns, jsonColumn{Name: c.Name, Unit: c.Unit})
		}
		for _, row := range t.Rows {
			vals := make([]any, len(row))
			for i, c := range row {
				vals[i] = c.Value
			}
			jt.Rows = append(jt.Rows, vals)
		}
		out.Tables = append(out.Tables, jt)
	}
	return out
}

// EmitJSON writes the result as an indented JSON document ending in a
// newline.
func EmitJSON(w io.Writer, r *Result) error {
	return encodeJSON(w, toJSON(r))
}

// EmitJSONAll writes the results as one indented JSON array.
func EmitJSONAll(w io.Writer, rs []*Result) error {
	docs := make([]jsonResult, 0, len(rs))
	for _, r := range rs {
		docs = append(docs, toJSON(r))
	}
	return encodeJSON(w, docs)
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// DecodeJSON parses a document written by EmitJSON back into a Result.
// Cell texts are not part of the JSON schema, so decoded cells carry
// values only — re-encoding a decoded result reproduces the input
// bytes (the round-trip property the emitter tests assert).
func DecodeJSON(r io.Reader) (*Result, error) {
	var doc jsonResult
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("results: decode: %w", err)
	}
	if doc.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("results: schema version %d, want %d", doc.SchemaVersion, SchemaVersion)
	}
	out := &Result{
		Experiment: doc.Experiment,
		Desc:       doc.Description,
		Meta: Meta{
			Seed:     doc.Seed,
			Quick:    doc.Quick,
			WallTime: time.Duration(math.Round(doc.WallMS * float64(time.Millisecond))),
		},
	}
	for _, jt := range doc.Tables {
		t := NewTable(jt.Title)
		for _, c := range jt.Columns {
			t.Columns = append(t.Columns, Column{Name: c.Name, Unit: c.Unit})
		}
		for _, row := range jt.Rows {
			cells := make([]Cell, len(row))
			for i, v := range row {
				cells[i] = Cell{Value: normalizeJSONValue(v)}
			}
			t.Rows = append(t.Rows, cells)
		}
		out.Tables = append(out.Tables, t)
	}
	return out, nil
}

// normalizeJSONValue maps decoded JSON values onto the cell value
// types the builders produce: json.Number becomes int when the text
// has no fraction or exponent, float64 otherwise.
func normalizeJSONValue(v any) any {
	n, ok := v.(json.Number)
	if !ok {
		return v
	}
	if !bytes.ContainsAny([]byte(n.String()), ".eE") {
		if i, err := n.Int64(); err == nil {
			return int(i)
		}
	}
	f, err := n.Float64()
	if err != nil {
		return n.String()
	}
	return f
}
