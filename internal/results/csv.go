package results

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// EmitCSV writes the result as RFC-4180 CSV. Each table is preceded by
// `# experiment:` / `# table:` comment lines and a header row; numeric
// cells are written in canonical shortest round-trip form (the typed
// value, not the display text), so downstream tooling parses exact
// values. Multiple tables are separated by a blank line.
func EmitCSV(w io.Writer, r *Result) error {
	for ti, t := range r.Tables {
		if ti > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# experiment: %s\n# table: %s\n", r.Experiment, t.Title); err != nil {
			return err
		}
		cw := csv.NewWriter(w)
		header := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			header[i] = c.Name
			if c.Unit != "" {
				header[i] += " [" + c.Unit + "]"
			}
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		record := make([]string, 0, len(header))
		for _, row := range t.Rows {
			record = record[:0]
			for _, cell := range row {
				record = append(record, csvValue(cell))
			}
			if err := cw.Write(record); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// EmitCSVAll concatenates the results' CSV blocks, blank-line separated.
func EmitCSVAll(w io.Writer, rs []*Result) error {
	for i, r := range rs {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := EmitCSV(w, r); err != nil {
			return err
		}
	}
	return nil
}

func csvValue(c Cell) string {
	switch v := c.Value.(type) {
	case nil:
		return ""
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case int:
		return strconv.Itoa(v)
	case bool:
		return strconv.FormatBool(v)
	default:
		return fmt.Sprint(v)
	}
}
