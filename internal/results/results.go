// Package results is the structured carrier for experiment output. A
// runner produces a Result — one or more typed Tables plus metadata
// (seed, quick mode, wall time) — and rendering is split into pluggable
// emitters: the fixed-width text renderer (byte-identical to the
// historical tablefmt output, see the parity and golden tests), JSON,
// and CSV. The structured layer is the substrate for CI regression
// gating (testdata/golden), result serving, and what-if sweeps; the
// text layer stays the human-facing view.
package results

import (
	"fmt"
	"time"
)

// SchemaVersion identifies the JSON document layout. Bump it whenever
// a field is renamed, removed, or changes meaning; additions are
// backward-compatible and do not require a bump.
const SchemaVersion = 1

// Column describes one typed column of a Table. Name is the exact
// header the text renderer prints; Unit is machine-readable metadata
// ("KB", "GB/s", "s", "%", ...) and is empty for dimensionless or
// string columns.
type Column struct {
	Name string
	Unit string
}

// C builds a dimensionless column.
func C(name string) Column { return Column{Name: name} }

// CU builds a column with a unit annotation.
func CU(name, unit string) Column { return Column{Name: name, Unit: unit} }

// Cell is one table cell: the exact text the fixed-width renderer
// prints, plus the underlying typed value (string, float64, int or
// bool; nil for not-applicable cells) that the JSON and CSV emitters
// serialize.
type Cell struct {
	Text  string
	Value any
}

// Str builds a string cell.
func Str(s string) Cell { return Cell{Text: s, Value: s} }

// Float builds a float cell whose text is Sprintf(format, v). Display
// suffixes in the format ("%.2fx", "%.2f%%") are fine: the text keeps
// them, the value stays numeric.
func Float(format string, v float64) Cell {
	return Cell{Text: fmt.Sprintf(format, v), Value: v}
}

// Int builds an integer cell.
func Int(v int) Cell { return Cell{Text: fmt.Sprint(v), Value: v} }

// Bool builds a boolean cell.
func Bool(v bool) Cell { return Cell{Text: fmt.Sprint(v), Value: v} }

// Val builds a cell whose text is not a plain Sprintf of the value
// (pre-formatted sizes like "128MiB" with the raw byte count behind).
func Val(text string, v any) Cell { return Cell{Text: text, Value: v} }

// NA builds a not-applicable cell: rendered as "-", serialized as null.
func NA() Cell { return Cell{Text: "-", Value: nil} }

// Table is one titled table of typed rows.
type Table struct {
	Title   string
	Columns []Column
	Rows    [][]Cell
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, cols ...Column) *Table {
	return &Table{Title: title, Columns: cols}
}

// Row appends a row of cells.
func (t *Table) Row(cells ...Cell) { t.Rows = append(t.Rows, cells) }

// Meta records how a Result was produced.
type Meta struct {
	// Seed is the base RNG seed for randomized runners, 0 when unused.
	Seed int64
	// Quick reports whether the runner used the reduced -quick sweep.
	Quick bool
	// WallTime is the measured runner wall time. It is volatile: the
	// deterministic emitters (golden corpus) zero it before encoding.
	WallTime time.Duration
}

// Result is the structured output of one experiment runner.
type Result struct {
	// Experiment is the catalogue name ("table1", "figure7", ...).
	Experiment string
	// Desc is the one-line catalogue description.
	Desc   string
	Tables []*Table
	Meta   Meta
}

// New builds a Result over the given tables.
func New(experiment, desc string, tables ...*Table) *Result {
	return &Result{Experiment: experiment, Desc: desc, Tables: tables}
}

// WithSeed records the base seed and returns the result for chaining.
func (r *Result) WithSeed(seed int64) *Result {
	r.Meta.Seed = seed
	return r
}

// Format selects an emitter.
type Format string

const (
	FormatText Format = "text"
	FormatJSON Format = "json"
	FormatCSV  Format = "csv"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, FormatJSON, FormatCSV:
		return Format(s), nil
	}
	return "", fmt.Errorf("results: unknown format %q (valid: text, json, csv)", s)
}

// Ext returns the file extension the format writes under -out.
func (f Format) Ext() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatCSV:
		return "csv"
	default:
		return "txt"
	}
}
