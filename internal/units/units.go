// Package units provides the physical quantities used throughout the
// simulator: byte sizes, bandwidths and durations, together with the
// formatting helpers the experiment tables rely on.
//
// Simulated time is carried as float64 seconds everywhere inside the
// simulator; this package owns the conversions at the edges.
package units

import "fmt"

// Common byte sizes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	KB = 1e3
	MB = 1e6
	GB = 1e9
)

// Common time scales, expressed in seconds.
const (
	Second      = 1.0
	Millisecond = 1e-3
	Microsecond = 1e-6
	Nanosecond  = 1e-9
)

// Bytes is a data size in bytes. Sizes in the simulator can be fractional
// (e.g. average per-token traffic), so float64 is used rather than an
// integer type.
type Bytes = float64

// BytesPerSecond is a bandwidth. The paper (and this repo) always quotes
// decimal GB/s for link rates: a 400 Gbps NIC is 50 GB/s.
type BytesPerSecond = float64

// Seconds is a duration in seconds.
type Seconds = float64

// GbpsToBytes converts a line rate in gigabits per second to bytes per
// second (decimal): 400 Gbps -> 50e9 B/s.
func GbpsToBytes(gbps float64) BytesPerSecond { return gbps * 1e9 / 8 }

// BytesToGB converts bytes to decimal gigabytes.
func BytesToGB(b Bytes) float64 { return b / GB }

// FormatBytes renders a size with a binary-prefix unit, matching the axis
// labels used in the paper's figures (128MiB, 1GiB, ...).
func FormatBytes(b Bytes) string {
	switch {
	case b >= GiB:
		return trimUnit(b/GiB, "GiB")
	case b >= MiB:
		return trimUnit(b/MiB, "MiB")
	case b >= KiB:
		return trimUnit(b/KiB, "KiB")
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// FormatSeconds renders a duration using the most natural unit.
// Negative durations format as |s| with a sign prefix (a bare negative
// would fall through every unit threshold to the ns branch).
func FormatSeconds(s Seconds) string {
	if s < 0 {
		return "-" + FormatSeconds(-s)
	}
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= Millisecond:
		return fmt.Sprintf("%.3fms", s/Millisecond)
	case s >= Microsecond:
		return fmt.Sprintf("%.2fus", s/Microsecond)
	default:
		return fmt.Sprintf("%.0fns", s/Nanosecond)
	}
}

// FormatBandwidth renders a bandwidth in GB/s, the unit used by every
// figure in the paper.
func FormatBandwidth(bw BytesPerSecond) string {
	return fmt.Sprintf("%.2fGB/s", bw/GB)
}

func trimUnit(v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%.0f%s", v, unit)
	}
	return fmt.Sprintf("%.2f%s", v, unit)
}
