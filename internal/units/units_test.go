package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGbpsToBytes(t *testing.T) {
	cases := []struct {
		gbps float64
		want BytesPerSecond
	}{
		{400, 50e9}, // CX7 NIC: the paper's 50 GB/s
		{200, 25e9},
		{8, 1e9},
	}
	for _, c := range cases {
		if got := GbpsToBytes(c.gbps); got != c.want {
			t.Errorf("GbpsToBytes(%v) = %v, want %v", c.gbps, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{64, "64B"},
		{128 * MiB, "128MiB"},
		{16 * GiB, "16GiB"},
		{1536, "1.50KiB"},
		{1 * KiB, "1KiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{19.926, "19.926s"},
		{14.76e-3, "14.760ms"},
		{120.96e-6, "120.96us"},
		{3.6e-6, "3.60us"},
		{5e-9, "5ns"},
		{0, "0ns"},
		{-1.5e-3, "-1.500ms"},
		{-19.926, "-19.926s"},
		{-120.96e-6, "-120.96us"},
		{-5e-9, "-5ns"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatBandwidth(t *testing.T) {
	if got := FormatBandwidth(50 * GB); got != "50.00GB/s" {
		t.Errorf("FormatBandwidth = %q", got)
	}
}

func TestBytesToGBRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		b := math.Abs(raw)
		if math.IsInf(b, 0) || math.IsNaN(b) {
			return true
		}
		return math.Abs(BytesToGB(b)*GB-b) <= 1e-9*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
