package dsv3

import (
	"math"
	"testing"
)

// The facade must expose a coherent, working API: this exercises the
// aliases end to end the way examples/quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	v3 := DeepSeekV3()
	if math.Abs(v3.KVCacheBytesPerToken(2)-70272) > 1e-9 {
		t.Error("facade model analytics broken")
	}
	if got := E4M3.Quantize(500); got != 448 {
		t.Error("facade quantization broken")
	}
	c, err := BuildCluster(H800Config(2, MPFT))
	if err != nil {
		t.Fatal(err)
	}
	res, err := AllToAll(c, 16, 1<<26, DefaultCollectiveOpts())
	if err != nil || res.AlgBW <= 0 {
		t.Fatalf("facade collective broken: %v", err)
	}
	if rows := Table1(); len(rows) != 3 {
		t.Error("facade experiment runner broken")
	}
	g := V3Gate()
	if err := g.Validate(); err != nil {
		t.Error("facade gate broken")
	}
	if PolicyECMP.String() != "ECMP" {
		t.Error("facade policy broken")
	}
}

func TestFacadeTrainingConfig(t *testing.T) {
	m, err := TrainingConfig().Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TimePerStep-19.926) > 0.2 {
		t.Errorf("Table 4 step time via facade = %v", m.TimePerStep)
	}
}
