// Package dsv3 is the public facade of the DeepSeek-V3 ISCA'25 paper
// reproduction: a pure-Go modelling and simulation library for the
// hardware/model co-design analyses in "Insights into DeepSeek-V3:
// Scaling Challenges and Reflections on Hardware for AI Architectures".
//
// The library is organized as a set of substrates (bit-exact FP8/LogFMT
// numerics, a flow-level network simulator, fabric topologies, an H800
// cluster model) with the paper's systems built on top (DeepSeekMoE
// node-limited routing, DeepEP dispatch/combine, MLA decode analysis,
// MTP speculative decoding, the DualPipe training-step model). Every
// table and figure of the paper's evaluation can be regenerated through
// the runners in this facade. Sweep-shaped runners fan out over a
// deterministic worker pool whose output is bit-identical to serial
// execution; see DESIGN.md for the experiment index and the
// concurrency/determinism model.
//
// Quick start:
//
//	fmt.Println(dsv3.RenderTable1())            // KV cache comparison
//	rows, _ := dsv3.Figure7()                   // DeepEP bandwidth sweep
//	m, _ := dsv3.TrainingConfig().Run()         // Table 4 metrics
//
// The cmd/dsv3bench binary prints every experiment; the examples/
// directory walks through the main APIs.
package dsv3

import (
	"dsv3/internal/cluster"
	"dsv3/internal/collective"
	"dsv3/internal/deepep"
	"dsv3/internal/experiments"
	"dsv3/internal/fp8train"
	"dsv3/internal/gemm"
	"dsv3/internal/inference"
	"dsv3/internal/logfmt"
	"dsv3/internal/mla"
	"dsv3/internal/model"
	"dsv3/internal/moe"
	"dsv3/internal/mtp"
	"dsv3/internal/netsim"
	"dsv3/internal/obs"
	"dsv3/internal/parallel"
	"dsv3/internal/pipeline"
	"dsv3/internal/quant"
	"dsv3/internal/results"
	"dsv3/internal/servesim"
	"dsv3/internal/topology"
	"dsv3/internal/trainsim"
)

// Structured experiment results. Every catalogue runner produces a
// Result — typed tables (columns with units, typed cells) plus
// metadata (seed, quick mode, wall time) — and the emitters render it
// as fixed-width text (byte-identical to the historical tables), JSON,
// or CSV. The golden corpus under testdata/golden pins the quick-mode
// JSON/CSV/text output of every experiment; see scripts/golden.sh.
type (
	// ExperimentResult is one experiment's structured output.
	ExperimentResult = results.Result
	// ExperimentTable is one typed table of a result.
	ExperimentTable = results.Table
	// ExperimentColumn describes one typed, unit-annotated column.
	ExperimentColumn = results.Column
	// ExperimentCell is one typed cell (display text plus raw value).
	ExperimentCell = results.Cell
	// ExperimentRunner is one catalogue entry (name, description, runner).
	ExperimentRunner = experiments.Runner
	// RunOptions configures a catalogue runner invocation.
	RunOptions = experiments.Options
	// ResultFormat selects an emitter (FormatText, FormatJSON, FormatCSV).
	ResultFormat = results.Format
)

// Emitter formats.
const (
	FormatText = results.FormatText
	FormatJSON = results.FormatJSON
	FormatCSV  = results.FormatCSV
)

// Catalogue access and emitters.
var (
	// Experiments returns the full experiment catalogue in
	// presentation order.
	Experiments = experiments.Catalogue
	// ExperimentNames returns the catalogue names sorted
	// alphabetically.
	ExperimentNames = experiments.SuggestNames
	// FindExperiment resolves a case-insensitive experiment name.
	FindExperiment = experiments.Find
	// EmitJSON / EmitJSONAll / EmitCSV / EmitCSVAll serialize results;
	// DecodeResultJSON parses an EmitJSON document back.
	EmitJSON          = results.EmitJSON
	EmitJSONAll       = results.EmitJSONAll
	EmitCSV           = results.EmitCSV
	EmitCSVAll        = results.EmitCSVAll
	DecodeResultJSON  = results.DecodeJSON
	ParseResultFormat = results.ParseFormat
	// Builders for constructing results outside the catalogue (used by
	// cmd/dsv3serve and custom tooling).
	NewExperimentResult = results.New
	NewExperimentTable  = results.NewTable
	StrCell             = results.Str
	IntCell             = results.Int
	FloatCell           = results.Float
)

// Parallel execution engine. Every sweep-shaped runner fans out over a
// bounded worker pool; per-task RNG streams derive from DeriveSeed, so
// results are bit-identical for any worker count. SetParallelWorkers(1)
// forces serial execution (the parity baseline).
var (
	SetParallelWorkers = parallel.SetWorkers
	ParallelWorkers    = parallel.Workers
	DeriveSeed         = parallel.DeriveSeed
	// NewSeededRand / TaskRand are the sanctioned seeded-RNG
	// constructors: explicit deterministic streams, never the global
	// source (a guard test rejects bare rand.NewSource elsewhere).
	NewSeededRand = parallel.NewRand
	TaskRand      = parallel.TaskRand
)

// Model configurations (Table 1 / Table 2 subjects).
type ModelConfig = model.Config

// Published model configurations.
var (
	DeepSeekV3 = model.DeepSeekV3
	DeepSeekV2 = model.DeepSeekV2
	Qwen72B    = model.Qwen72B
	LLaMA405B  = model.LLaMA405B
)

// Deployment rooflines (§2.2.2).
type Deployment = model.Deployment

var (
	AISoC             = model.AISoC
	ConsumerGPUServer = model.ConsumerGPUServer
)

// Numerics (§3).
type (
	// Format is a bit-exact minifloat format (E4M3, E5M2, BF16, ...).
	Format = quant.Format
	// Accumulator simulates the tensor-core accumulation data path.
	Accumulator = quant.Accumulator
	// Matrix is the dense matrix carrier used by the GEMM paths.
	Matrix = quant.Matrix
	// LogFMTCodec is the §3.2 logarithmic communication format.
	LogFMTCodec = logfmt.Codec
	// FP8GEMMConfig selects quantization granularity and accumulation.
	FP8GEMMConfig = gemm.FP8Config
)

// Format instances and numerics constructors.
var (
	E4M3             = quant.E4M3
	E5M2             = quant.E5M2
	BF16             = quant.BF16
	HopperFP8        = quant.HopperFP8
	NewLogFMT        = logfmt.New
	DeepSeekV3Recipe = gemm.DeepSeekV3Recipe
	FP8GEMM          = gemm.FP8
	BF16GEMM         = gemm.BF16
	RefGEMM          = gemm.Ref
	NewMatrix        = quant.NewMatrix
)

// Topologies and cost model (Table 3, §5.1).
type (
	TopologyCounts = topology.Counts
	CostModel      = topology.CostModel
	FatTree2       = topology.FatTree2
	SlimFly        = topology.SlimFly
	Dragonfly      = topology.Dragonfly
	Graph          = topology.Graph
)

var (
	FT2Counts        = topology.FT2Counts
	FT3Counts        = topology.FT3Counts
	MPFTCounts       = topology.MPFTCounts
	SlimFlyCounts    = topology.SlimFlyCounts
	DragonflyCounts  = topology.DragonflyCounts
	DefaultCostModel = topology.DefaultCostModel
)

// Network simulation (§5).
type (
	Flow          = netsim.Flow
	SimResult     = netsim.Result
	Router        = netsim.Router
	RoutingPolicy = netsim.Policy
)

const (
	PolicyECMP     = netsim.PolicyECMP
	PolicyAdaptive = netsim.PolicyAdaptive
	PolicyStatic   = netsim.PolicyStatic
)

var (
	SimulateFlows = netsim.Simulate
	NewRouter     = netsim.NewRouter
)

// Cluster model (§4.1) and collectives (Figures 5, 6, 8).
type (
	Cluster        = cluster.Cluster
	ClusterConfig  = cluster.Config
	FabricKind     = cluster.FabricKind
	CollectiveOpts = collective.Options
	LatencyParams  = cluster.LatencyParams
)

const (
	MPFT = cluster.MPFT
	MRFT = cluster.MRFT
)

var (
	H800Config   = cluster.H800Config
	BuildCluster = cluster.Build
	// CachedCluster returns a shared immutable cluster, memoized by
	// configuration — the builder the experiment suite uses so repeated
	// sweeps share one graph.
	CachedCluster         = cluster.Cached
	AllToAll              = collective.AllToAll
	RingCollective        = collective.RingCollective
	DefaultCollectiveOpts = collective.DefaultOptions
	DefaultLatencyParams  = cluster.DefaultLatencyParams
)

// MoE routing (§4.3) and DeepEP (Figure 7).
type (
	Gate            = moe.Gate
	ExpertPlacement = moe.Placement
	// MoERouter is the allocation-free router used by the routing hot
	// paths: reusable scratch lives in the Router value.
	MoERouter    = moe.Router
	DeepEPConfig = deepep.Config
	DeepEPResult = deepep.Result
)

var (
	V3Gate         = moe.V3Gate
	NewMoERouter   = moe.NewRouter
	DeepEPV3Config = deepep.V3Config
	DeepEPDispatch = deepep.Dispatch
	DeepEPCombine  = deepep.Combine
	DeepEPSweep    = deepep.Sweep
)

// Inference analyses (§2.1.2, §2.3.2, §2.3.3).
type (
	EPInferenceConfig = inference.EPConfig
	MTPConfig         = mtp.Config
	DecodeAccelerator = mla.Accelerator
)

var (
	V3EPInference       = inference.V3EPConfig
	MTPV3               = mtp.V3Config
	SimulateMTP         = mtp.Simulate
	H800Accelerator     = mla.H800
	AttentionDecodeCost = mla.AttentionDecodeCost
)

// Serving simulator (request-level traffic over the inference models):
// discrete-event prefill/decode cluster with continuous batching, a
// paged MLA-sized KV cache, and optional MTP speculation. Deterministic
// by construction — see internal/servesim and DESIGN.md.
type (
	ServeConfig       = servesim.Config
	ServeWorkload     = servesim.Workload
	ServeReport       = servesim.Report
	ServeRequest      = servesim.Request
	ServeSLO          = servesim.SLO
	ServeLatencyModel = servesim.LatencyModel
	ServeLengthDist   = servesim.LengthDist
	ServeSweepPoint   = servesim.SweepPoint
	// The redesigned config groups: ServeConfig.Fleet owns deployment
	// shape and routing, ServeConfig.KV the tiered cache hierarchy
	// (HBM tier 0 plus optional DRAM/flash spill tiers and the prefix
	// cache), and ServeConfig.Resilience the fault/retry/admission
	// knobs. Zero values reproduce the legacy flat-config semantics.
	ServeFleetConfig      = servesim.FleetConfig
	ServeKVHierarchy      = servesim.KVHierarchy
	ServeKVTierConfig     = servesim.KVTierConfig
	ServeResilienceConfig = servesim.ResilienceConfig
	// ServeTierStat reports bytes moved in/out of one tier
	// (ServeReport.KVTierMoves; index 0 is HBM).
	ServeTierStat = servesim.TierStat

	// ServeKVConfig configures one pool tier; ServeConfig.KV.HBM is the
	// resident tier 0.
	//
	// Deprecated: ServeKVConfig now names only a single tier. Configure
	// the cache through ServeKVHierarchy (ServeConfig.KV), which wraps
	// the legacy pool as its HBM field.
	ServeKVConfig = servesim.KVConfig
	// ServeRouter is the pluggable instance-selection policy interface;
	// ServeRouterPolicy names the built-ins (ServeConfig.Fleet.Router), and
	// ServeInstanceLoad is the candidate snapshot a router picks over.
	ServeRouter       = servesim.Router
	ServeRouterPolicy = servesim.RouterPolicy
	ServeInstanceLoad = servesim.InstanceLoad
	// ServeScheduler selects the event-queue implementation
	// (ServeConfig.Fleet.Scheduler); ServeConfig.Fleet.Shards partitions
	// the decode fleet across concurrent sub-engines. Both are pure
	// performance knobs — output bytes are identical for every setting.
	ServeScheduler = servesim.SchedulerKind
	// ServeCapacityPlanner bisects for the max sustainable arrival rate
	// meeting a target SLO attainment — the per-fleet goodput knee.
	ServeCapacityPlanner = servesim.CapacityPlanner
	ServeCapacityResult  = servesim.CapacityResult
	ServeCapacityProbe   = servesim.CapacityProbe
	// ServeEngine is the reusable simulation engine: one engine recycles
	// its event heap, request arena and metric buffers across Run calls
	// (byte-identical to fresh construction). Not safe for concurrent
	// use; sweeps thread one per worker.
	ServeEngine = servesim.Engine
	// Fault injection and graceful degradation (ServeConfig.Resilience
	// .Faults / .Retry / .Admission): a seeded crash/recover/drain schedule plus
	// MTBF-style random injection, retry-with-backoff for orphaned
	// requests, and queue-depth/KV-occupancy admission shedding.
	// ServeIncident records each crash's blast radius in the report.
	ServeFaultPlan       = servesim.FaultPlan
	ServeFaultEvent      = servesim.FaultEvent
	ServeFaultKind       = servesim.FaultKind
	ServeRetryPolicy     = servesim.RetryPolicy
	ServeAdmissionPolicy = servesim.AdmissionPolicy
	ServeIncident        = servesim.Incident
	// Cross-layer hazards (ServeConfig.Resilience.Hazards / .Hedge):
	// plane-failure bandwidth derates on the EP interconnect, silent
	// data corruption on decode steps with Freivalds verification and
	// quarantine, EWMA gray-failure draining, and hedged requests
	// (speculative duplicates racing the straggling original).
	ServeHazardPlan       = servesim.HazardPlan
	ServePlaneHazardEvent = servesim.PlaneHazardEvent
	ServeDetectionConfig  = servesim.DetectionConfig
	ServeHedgePolicy      = servesim.HedgePolicy
)

const (
	ArrivalPoisson = servesim.ArrivalPoisson
	ArrivalUniform = servesim.ArrivalUniform
	ArrivalTrace   = servesim.ArrivalTrace
	ArrivalBursty  = servesim.ArrivalBursty
	ArrivalDiurnal = servesim.ArrivalDiurnal

	DistFixed     = servesim.DistFixed
	DistUniform   = servesim.DistUniform
	DistLogNormal = servesim.DistLogNormal

	RouteLeastKV       = servesim.RouteLeastKV
	RouteRoundRobin    = servesim.RouteRoundRobin
	RoutePowerOfTwo    = servesim.RoutePowerOfTwo
	RouteShortestQueue = servesim.RouteShortestQueue

	ServeSchedHeap     = servesim.SchedHeap
	ServeSchedCalendar = servesim.SchedCalendar

	FaultCrash   = servesim.FaultCrash
	FaultRecover = servesim.FaultRecover
	FaultDrain   = servesim.FaultDrain

	// DefaultServeChunkTokens is the offload/prefix-cache chunk
	// granularity used when ServeConfig.KV.ChunkTokens is zero.
	DefaultServeChunkTokens = servesim.DefaultChunkTokens
)

var (
	RunServe                    = servesim.Run
	NewServeEngine              = servesim.NewEngine
	ServeRateSweep              = servesim.RateSweep
	V3ServeConfig               = servesim.V3ServeConfig
	V3ServeLatency              = servesim.V3LatencyModel
	DefaultServeSLO             = servesim.DefaultSLO
	ParseServeTrace             = servesim.ParseTrace
	FixedLength                 = servesim.Fixed
	LogNormalLength             = servesim.LogNormal
	NewServeRouter              = servesim.NewRouter
	ParseServeRouterPolicy      = servesim.ParseRouterPolicy
	ServeRouterPolicies         = servesim.RouterPolicies
	DefaultServeCapacityPlanner = servesim.DefaultCapacityPlanner
	DefaultServeRetryPolicy     = servesim.DefaultRetryPolicy
	ParseServeFaultEvents       = servesim.ParseFaultEvents
	ParseServeAdmissionPolicy   = servesim.ParseAdmissionPolicy
	// ParseServeKVTiers parses a "/"-separated KV tier spec
	// ("name=dram,cap=8,read=24,write=16,lat=0.05/...") into the spill
	// tiers of a ServeKVHierarchy — the format behind dsv3serve's
	// -kv-tiers flag.
	ParseServeKVTiers = servesim.ParseKVTiers
	// ParseServeScheduler resolves "heap" or "calendar" — the format
	// behind dsv3serve's -sched flag.
	ParseServeScheduler = servesim.ParseScheduler
	// ParseServeHazardEvents parses a comma-separated plane-hazard spec
	// ("degrade@4:d1:6/8,heal@16:d1") and ParseServeHedgePolicy a hedge
	// spec ("0.5" fixed delay or "p95:0.3" tracked with a floor) — the
	// formats behind dsv3serve's -hazard and -hedge flags.
	ParseServeHazardEvents = servesim.ParseHazardEvents
	ParseServeHedgePolicy  = servesim.ParseHedgePolicy
)

// Training (Table 4).
type (
	TrainingMetrics = trainsim.Metrics
	PipelineCosts   = pipeline.Costs
	PipelineResult  = pipeline.Result
)

var (
	TrainingConfig   = trainsim.V3Config
	SimulatePipeline = pipeline.Simulate
	AnalyticDualPipe = pipeline.AnalyticDualPipe
)

// FP8 training validation (§2.4).
type FP8TrainConfig = fp8train.Config

var (
	FP8TrainDefault = fp8train.DefaultConfig
	FP8Train        = fp8train.Train
)

// Experiment runners: regenerate every table and figure.
var (
	Table1                = experiments.Table1
	Table2                = experiments.Table2
	Table3                = experiments.Table3
	Table4                = experiments.Table4
	Figure5               = experiments.Figure5
	Figure6               = experiments.Figure6
	Figure7               = experiments.Figure7
	Figure8               = experiments.Figure8
	InferenceLimits       = experiments.InferenceLimits
	MTPSpeedup            = experiments.MTPSpeedup
	LocalDeployment       = experiments.LocalDeployment
	FP8Accuracy           = experiments.FP8Accuracy
	AccumulationAblation  = experiments.AccumulationAblation
	LogFMTAccuracy        = experiments.LogFMTAccuracy
	NodeLimitedRouting    = experiments.NodeLimitedRouting
	PlaneFailure          = experiments.PlaneFailure
	RenderTable1          = experiments.RenderTable1
	RenderTable2          = experiments.RenderTable2
	RenderTable3          = experiments.RenderTable3
	RenderTable4          = experiments.RenderTable4
	RenderTable5          = experiments.RenderTable5
	RenderFigure5         = experiments.RenderFigure5
	RenderFigure6         = experiments.RenderFigure6
	RenderFigure7         = experiments.RenderFigure7
	RenderFigure8         = experiments.RenderFigure8
	RenderInferenceLimits = experiments.RenderInferenceLimits
	RenderMTP             = experiments.RenderMTP
	RenderLocalDeploy     = experiments.RenderLocalDeployment
	RenderFP8Accuracy     = experiments.RenderFP8Accuracy
	RenderAccumulation    = experiments.RenderAccumulationAblation
	RenderLogFMT          = experiments.RenderLogFMT
	RenderNodeLimited     = experiments.RenderNodeLimited
	RenderPlaneFailure    = experiments.RenderPlaneFailure
	DefaultFigure5Sizes   = experiments.DefaultFigure5Sizes
	DefaultFigure6Sizes   = experiments.DefaultFigure6Sizes
	BandwidthContention   = experiments.BandwidthContention
	OverlapStudy          = experiments.OverlapAblation
	SDCDetection          = experiments.SDCDetection
	RenderContention      = experiments.RenderContention
	RenderOverlap         = experiments.RenderOverlap
	RenderSDC             = experiments.RenderSDC
)

// Structured-table builders: the typed layer behind the Render
// helpers. Each returns results.Table(s) carrying units and raw values
// alongside the display text.
var (
	Table1Result           = experiments.Table1Result
	Table2Result           = experiments.Table2Result
	Table3Result           = experiments.Table3Result
	Table4Result           = experiments.Table4Result
	Table5Result           = experiments.Table5Result
	Figure5Result          = experiments.Figure5Result
	Figure6Result          = experiments.Figure6Result
	Figure7Result          = experiments.Figure7Result
	Figure8Result          = experiments.Figure8Result
	InferenceLimitsResult  = experiments.InferenceLimitsResult
	MTPResultTables        = experiments.MTPResultTables
	LocalDeploymentResult  = experiments.LocalDeploymentResult
	FP8AccuracyResultTable = experiments.FP8AccuracyResultTable
	AccumulationResult     = experiments.AccumulationAblationResult
	LogFMTResult           = experiments.LogFMTAccuracyResult
	NodeLimitedResult      = experiments.NodeLimitedRoutingResult
	PlaneFailureResult     = experiments.PlaneFailureResult
	OverlapResult          = experiments.OverlapAblationResult
	ContentionResult       = experiments.BandwidthContentionResult
	SDCResultTable         = experiments.SDCDetectionResult
)

// Serving studies: the router shoot-out and the SLO capacity knee per
// fleet shape (serve-router / serve-capacity catalogue entries).
type ServeCapacityStudyPoint = experiments.CapacityStudyPoint

var (
	ServeRouterShootout       = experiments.RouterShootout
	ServeCapacityStudy        = experiments.CapacityStudy
	ServeRouterShootoutResult = experiments.RouterShootoutResult
	ServeCapacityStudyResult  = experiments.CapacityStudyResult
	RenderServeRouters        = experiments.RenderRouterShootout
	RenderServeCapacity       = experiments.RenderCapacityStudy
)

// Failure studies: the kill-an-instance incident replay per router and
// the admission shedding shoot-out under diurnal overload
// (serve-failure / serve-shed catalogue entries).
var (
	ServeFailureStudy       = experiments.FailureStudy
	ServeShedStudy          = experiments.ShedStudy
	ServeFailureStudyResult = experiments.FailureStudyResult
	ServeShedStudyResult    = experiments.ShedStudyResult
	RenderServeFailure      = experiments.RenderFailureStudy
	RenderServeShed         = experiments.RenderShedStudy
)

// Tiered-KV study: the capacity/TTFT frontier of DRAM/flash KV offload
// plus prefix caching vs recompute preemption under multi-turn session
// traffic (serve-kvtier catalogue entry).
type ServeKVTierStudyPoint = experiments.KVTierStudyPoint

var (
	ServeKVTierStudy       = experiments.KVTierStudy
	ServeKVTierStudyResult = experiments.KVTierStudyResult
	RenderServeKVTier      = experiments.RenderKVTierStudy
)

// Observability: deterministic request-lifecycle tracing and sampled
// time-series metrics for the serving simulator. Attach a recorder
// and/or registry to a ServeEngine (AttachTracer / AttachMetrics)
// before Run; with neither attached every hook is a nil-checked no-op,
// so the instrumented engine's output and allocation profile are
// byte-identical to an uninstrumented one. Trace and metrics output is
// deterministic: identical runs emit identical bytes for any worker
// count and for pooled vs fresh engines.
type (
	// ServeTracer is the lifecycle hook interface the engine drives;
	// ServeTraceRecorder is the standard implementation (Chrome
	// trace_event JSON via WriteJSON — load in Perfetto — plus
	// per-request phase breakdowns).
	ServeTracer        = obs.Tracer
	ServeTraceRecorder = obs.TraceRecorder
	// ServePhase / ServeTraceMark name the lifecycle phases (queue,
	// prefill, transfer, reload, decode, backoff) and instant events
	// (arrival, shed, preempt, offload, orphan, retry, ...).
	ServePhase     = obs.Phase
	ServeTraceMark = obs.Mark
	// ServeReqBreakdown is one resolved request's per-phase time split;
	// the phase durations tile [arrival, done] exactly.
	ServeReqBreakdown = obs.ReqBreakdown
	// ServeMetricsRegistry samples engine gauges/counters on a fixed
	// simulated-time grid (Table / WriteCSV / WriteJSON emitters).
	ServeMetricsRegistry = obs.Registry
)

// DefaultServeMetricsInterval is the sampling cadence used when a
// metrics registry is built with a non-positive interval.
const DefaultServeMetricsInterval = obs.DefaultMetricsInterval

// Lifecycle phases a traced request moves through. The phase durations
// of a resolved request tile [arrival, done] exactly.
const (
	ServePhaseQueue    = obs.PhaseQueue
	ServePhasePrefill  = obs.PhasePrefill
	ServePhaseTransfer = obs.PhaseTransfer
	ServePhaseReload   = obs.PhaseReload
	ServePhaseDecode   = obs.PhaseDecode
	ServePhaseBackoff  = obs.PhaseBackoff
)

var (
	NewServeTraceRecorder   = obs.NewTraceRecorder
	NewServeMetricsRegistry = obs.NewRegistry
	// ServeTraceStudy runs the tiered+faulted reference configuration
	// with tracing and metrics attached (serve-trace catalogue entry).
	ServeTraceStudy       = experiments.TraceStudy
	ServeTraceStudyResult = experiments.TraceStudyResult
	RenderServeTrace      = experiments.RenderTraceStudy
	// ServeFleetStudy runs the 1000-instance fleet under one million
	// Poisson requests on the sharded event loop (serve-fleet entry);
	// ServeFleetConfig1000 is the deployment it runs.
	ServeFleetStudy       = experiments.FleetStudy
	ServeFleetStudyResult = experiments.FleetStudyResult
	RenderServeFleet      = experiments.RenderFleetStudy
	ServeFleetConfig1000  = experiments.FleetConfig
	ServeFleetWorkload    = experiments.FleetWorkload
	// ServeHazardStudy replays a composed plane-degradation + SDC
	// incident per router with detection off vs on (serve-hazard entry);
	// ServeHedgeStudy races hedging policies against a permanent gray
	// straggler (serve-hedge entry).
	ServeHazardStudy       = experiments.HazardStudy
	ServeHazardStudyResult = experiments.HazardStudyResult
	RenderServeHazard      = experiments.RenderHazardStudy
	ServeHedgeStudy        = experiments.HedgeStudy
	ServeHedgeStudyResult  = experiments.HedgeStudyResult
	RenderServeHedge       = experiments.RenderHedgeStudy
)
