// Command topoplan explores fabric cost/scale trade-offs with the
// Table 3 cost model: given a switch radix and plane count it prints
// endpoint capacity, switch/link counts and dollar cost for two- and
// three-layer fat-trees, the multi-plane variant, Slim Fly and a
// canonical dragonfly.
//
// Usage:
//
//	topoplan -radix 64 -planes 8
//	topoplan -radix 128 -planes 4 -switch-cost 80000
package main

import (
	"flag"
	"fmt"
	"os"

	"dsv3/internal/tablefmt"
	"dsv3/internal/topology"
)

func main() {
	radix := flag.Int("radix", 64, "switch port count")
	planes := flag.Int("planes", 8, "multi-plane plane count")
	sfq := flag.Int("sf-q", 28, "Slim Fly MMS parameter q")
	epCost := flag.Float64("endpoint-cost", 514, "$ per endpoint (NIC + cable share)")
	swCost := flag.Float64("switch-cost", 50000, "$ per switch")
	linkCost := flag.Float64("link-cost", 1536, "$ per inter-switch optical link")
	flag.Parse()

	model := topology.CostModel{EndpointCost: *epCost, SwitchCost: *swCost, LinkCost: *linkCost}
	sf, err := topology.SlimFlyCounts(*sfq)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rows := []topology.Counts{
		topology.FT2Counts(*radix),
		topology.MPFTCounts(*radix, *planes),
		topology.FT3Counts(*radix),
		sf,
		topology.DragonflyCounts(*radix/4, *radix/2, *radix/4, *radix/2**radix/4+1),
	}
	t := tablefmt.New(fmt.Sprintf("Topology plan (radix %d, %d planes)", *radix, *planes),
		"Topology", "Endpoints", "Switches", "Links", "Cost [M$]", "Cost/EP [k$]")
	for _, c := range rows {
		t.AddRow(c.Name, c.Endpoints, c.Switches, c.InterSwitchLinks,
			fmt.Sprintf("%.1f", model.Cost(c)/1e6),
			fmt.Sprintf("%.2f", model.CostPerEndpoint(c)/1e3))
	}
	fmt.Print(t.String())
}
