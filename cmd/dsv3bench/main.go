// Command dsv3bench regenerates every table and figure of the paper's
// evaluation and prints them with the paper's reference values.
//
// Experiments run concurrently on the deterministic worker pool by
// default; the rendered tables are byte-identical to a serial run
// (-parallel=false) and always print in catalogue order on stdout. A
// per-experiment wall-time report goes to stderr so stdout stays
// comparable across modes.
//
// Usage:
//
//	dsv3bench                 # run everything, in parallel
//	dsv3bench -parallel=false # serial execution (identical output)
//	dsv3bench -run table3     # run one experiment
//	dsv3bench -list           # list experiment names
//	dsv3bench -quick          # smaller sweeps for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dsv3"
	"dsv3/internal/parallel"
)

type experiment struct {
	name string
	desc string
	run  func(quick bool) (string, error)
}

func catalogue() []experiment {
	return []experiment{
		{"table1", "KV cache per token (MLA vs GQA)", func(bool) (string, error) { return dsv3.RenderTable1(), nil }},
		{"table2", "training GFLOPs per token (MoE vs dense)", func(bool) (string, error) { return dsv3.RenderTable2(), nil }},
		{"table3", "network topology cost comparison", func(bool) (string, error) { return dsv3.RenderTable3() }},
		{"table4", "training metrics MPFT vs MRFT", func(bool) (string, error) { return dsv3.RenderTable4() }},
		{"table5", "link-layer 64B latency", func(bool) (string, error) { return dsv3.RenderTable5(), nil }},
		{"figure5", "NCCL all-to-all bandwidth MPFT vs MRFT", func(quick bool) (string, error) {
			gpus := []int{32, 64, 128}
			sizes := dsv3.DefaultFigure5Sizes()
			if quick {
				gpus = []int{32}
				sizes = sizes[:2]
			}
			pts, err := dsv3.Figure5(gpus, sizes)
			if err != nil {
				return "", err
			}
			return dsv3.RenderFigure5(pts), nil
		}},
		{"figure6", "all-to-all latency parity on 16 GPUs", func(bool) (string, error) {
			pts, err := dsv3.Figure6(dsv3.DefaultFigure6Sizes())
			if err != nil {
				return "", err
			}
			return dsv3.RenderFigure6(pts), nil
		}},
		{"figure7", "DeepEP dispatch/combine bandwidth", func(bool) (string, error) {
			pts, err := dsv3.Figure7()
			if err != nil {
				return "", err
			}
			return dsv3.RenderFigure7(pts), nil
		}},
		{"figure8", "RoCE routing policies (ECMP/AR/static)", func(bool) (string, error) {
			pts, err := dsv3.Figure8()
			if err != nil {
				return "", err
			}
			return dsv3.RenderFigure8(pts), nil
		}},
		{"inference", "§2.3.2 EP inference speed limits", func(bool) (string, error) { return dsv3.RenderInferenceLimits() }},
		{"mtp", "§2.3.3 MTP speculative decoding speedup", func(bool) (string, error) { return dsv3.RenderMTP(7) }},
		{"local", "§2.2.2 local deployment rooflines", func(bool) (string, error) { return dsv3.RenderLocalDeploy(), nil }},
		{"fp8", "§2.4 FP8 vs BF16 toy-training accuracy", func(bool) (string, error) { return dsv3.RenderFP8Accuracy() }},
		{"accum", "§3.1.1 accumulation precision ablation", func(bool) (string, error) { return dsv3.RenderAccumulation(13) }},
		{"logfmt", "§3.2 LogFMT vs FP8/BF16 accuracy", func(bool) (string, error) { return dsv3.RenderLogFMT(17) }},
		{"nodelimit", "§4.3 node-limited routing dedup", func(bool) (string, error) { return dsv3.RenderNodeLimited(19) }},
		{"planefail", "§5.1.1 multi-plane failure robustness", func(bool) (string, error) {
			rows, err := dsv3.PlaneFailure([]int{0, 1, 2, 4})
			if err != nil {
				return "", err
			}
			return dsv3.RenderPlaneFailure(rows), nil
		}},
		{"overlap", "§2.3.1 dual micro-batch overlap ablation", func(bool) (string, error) { return dsv3.RenderOverlap() }},
		{"contention", "§4.5 PCIe bandwidth contention", func(bool) (string, error) { return dsv3.RenderContention() }},
		{"sdc", "§6.1.2 checksum-based SDC detection", func(bool) (string, error) { return dsv3.RenderSDC(29) }},
	}
}

func main() {
	runName := flag.String("run", "", "run a single experiment by name")
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "smaller sweeps")
	par := flag.Bool("parallel", true, "run experiments on the worker pool (output is byte-identical to serial)")
	flag.Parse()

	if !*par {
		parallel.SetWorkers(1)
	}

	exps := catalogue()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	var selected []experiment
	for _, e := range exps {
		if *runName == "" || strings.EqualFold(e.name, *runName) {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *runName)
		os.Exit(1)
	}

	// Fan the experiment list out over the same pool the sweeps use
	// internally; outputs return in catalogue order regardless of which
	// experiment finishes first.
	start := time.Now()
	type outcome struct {
		out     string
		elapsed time.Duration
	}
	results, err := parallel.Map(len(selected), func(i int) (outcome, error) {
		t0 := time.Now()
		out, err := selected[i].run(*quick)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", selected[i].name, err)
		}
		return outcome{out: out, elapsed: time.Since(t0)}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, e := range selected {
		fmt.Printf("=== %s — %s ===\n%s\n", e.name, e.desc, results[i].out)
	}
	fmt.Fprintf(os.Stderr, "--- wall time (workers=%d) ---\n", parallel.Workers())
	for i, e := range selected {
		fmt.Fprintf(os.Stderr, "%-10s %8.1fms\n", e.name, float64(results[i].elapsed.Microseconds())/1e3)
	}
	fmt.Fprintf(os.Stderr, "%-10s %8.1fms\n", "total", float64(time.Since(start).Microseconds())/1e3)
}
