// Command dsv3bench regenerates every table and figure of the paper's
// evaluation and emits them with the paper's reference values.
//
// Experiments run concurrently on the deterministic worker pool by
// default; emitted results are byte-identical to a serial run
// (-parallel=false) and always appear in catalogue order. A
// per-experiment wall-time report goes to stderr so stdout stays
// comparable across modes.
//
// Output is structured: every runner produces a results.Result (typed
// columns, units, metadata) and -format selects the emitter. The text
// emitter reproduces the historical fixed-width tables byte for byte;
// json and csv carry the typed values. -out writes one file per
// experiment instead of streaming to stdout — the layout the golden
// corpus under testdata/golden is built from (see scripts/golden.sh).
//
// Usage:
//
//	dsv3bench                          # run everything, in parallel
//	dsv3bench -parallel=false          # serial execution (identical output)
//	dsv3bench -run table3              # run one experiment
//	dsv3bench -list                    # list experiment names
//	dsv3bench -quick                   # smaller sweeps for a fast pass
//	dsv3bench -format json             # JSON array on stdout
//	dsv3bench -format csv -out dir/    # one CSV file per experiment
//	dsv3bench -quick -deterministic -format json -out testdata/golden
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dsv3"
	"dsv3/internal/parallel"
	"dsv3/internal/results"
)

func main() {
	runName := flag.String("run", "", "run a single experiment by name")
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "smaller sweeps")
	par := flag.Bool("parallel", true, "run experiments on the worker pool (output is byte-identical to serial)")
	formatName := flag.String("format", "text", "output format: text, json, or csv")
	outDir := flag.String("out", "", "write one <experiment>.<ext> file per experiment into this directory instead of stdout")
	deterministic := flag.Bool("deterministic", false, "omit volatile metadata (wall time) from emitted results, for golden-corpus comparison")
	flag.Parse()

	format, err := results.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if !*par {
		parallel.SetWorkers(1)
	}

	exps := dsv3.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-14s seed=%-3d %s\n", e.Name, e.Seed, e.Desc)
		}
		return
	}
	var selected []dsv3.ExperimentRunner
	for _, e := range exps {
		if *runName == "" || strings.EqualFold(e.Name, *runName) {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid experiments:\n", *runName)
		for _, name := range dsv3.ExperimentNames() {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(1)
	}

	// Fan the experiment list out over the same pool the sweeps use
	// internally; results return in catalogue order regardless of which
	// experiment finishes first.
	start := time.Now()
	opts := dsv3.RunOptions{Quick: *quick}
	res, err := parallel.Map(len(selected), func(i int) (*results.Result, error) {
		t0 := time.Now()
		r, err := selected[i].Run(opts)
		if err != nil {
			return nil, err
		}
		if !*deterministic {
			r.Meta.WallTime = time.Since(t0)
		}
		return r, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *outDir != "" {
		if err := writeFiles(*outDir, format, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if err := emit(format, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "--- wall time (workers=%d) ---\n", parallel.Workers())
	for i, e := range selected {
		fmt.Fprintf(os.Stderr, "%-10s %8.1fms\n", e.Name, float64(res[i].Meta.WallTime.Microseconds())/1e3)
	}
	fmt.Fprintf(os.Stderr, "%-10s %8.1fms\n", "total", float64(time.Since(start).Microseconds())/1e3)
}

// emit streams the selected results to stdout in the chosen format.
// Text output frames each experiment with the historical `=== name —
// desc ===` banner; json emits one array; csv concatenates per-table
// blocks.
func emit(format results.Format, res []*results.Result) error {
	switch format {
	case results.FormatJSON:
		return results.EmitJSONAll(os.Stdout, res)
	case results.FormatCSV:
		return results.EmitCSVAll(os.Stdout, res)
	default:
		for _, r := range res {
			fmt.Printf("=== %s — %s ===\n%s\n", r.Experiment, r.Desc, r.Text())
		}
		return nil
	}
}

// writeFiles writes one <experiment>.<ext> per result into dir.
func writeFiles(dir string, format results.Format, res []*results.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range res {
		var buf bytes.Buffer
		var err error
		switch format {
		case results.FormatJSON:
			err = results.EmitJSON(&buf, r)
		case results.FormatCSV:
			err = results.EmitCSV(&buf, r)
		default:
			_, err = buf.WriteString(r.Text())
		}
		if err != nil {
			return fmt.Errorf("%s: %w", r.Experiment, err)
		}
		path := filepath.Join(dir, r.Experiment+"."+format.Ext())
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}
